(* msql_server — serve the demo federation to concurrent clients over a
   local (Unix-domain) socket, speaking the newline-framed Wire
   protocol:

     $ dune exec bin/msql_server.exe -- --socket /tmp/msql.sock &
     $ printf 'HELLO\nSTMT USE continental; SELECT * FROM flights\n' \
         | nc -U /tmp/msql.sock

   The daemon is a single-threaded select loop: it reads request lines
   from every connected client, feeds them to the transport-free
   Msql.Wire state machine, then runs the server's wave scheduler to
   completion and routes each completion line back to the session's
   owning client. Concurrency lives in the scheduler (shared pool,
   shared caches, domain-parallel waves), not in the socket loop. *)

module S = Msql.Server
module W = Msql.Wire

type client = { fd : Unix.file_descr; conn : W.conn; buf : Buffer.t }

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off < Bytes.length data then
      let n = Unix.write fd data off (Bytes.length data - off) in
      go (off + n)
  in
  try go 0 with Unix.Unix_error _ -> ()

let main socket_path max_sessions max_queue domains pool_cap verbose =
  let fx = Msql.Fixtures.make () in
  let base = S.default_config () in
  let config =
    {
      base with
      S.max_sessions;
      max_queue;
      domains = (if domains >= 0 then max 1 domains else base.S.domains);
      pool_cap = (if pool_cap > 0 then Some pool_cap else None);
    }
  in
  let server = S.of_fixtures ~config fx in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX socket_path);
  Unix.listen lfd 16;
  Printf.printf
    "msql_server: demo federation on %s (max %d sessions, queue %d, %d \
     domains)\n\
     %!"
    socket_path config.S.max_sessions config.S.max_queue config.S.domains;
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  let close_client c =
    (match W.sid c.conn with
    | Some sid -> ignore (S.disconnect server sid)
    | None -> ());
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_input c data =
    Buffer.add_string c.buf data;
    let rec drain_lines () =
      let s = Buffer.contents c.buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear c.buf;
          Buffer.add_string c.buf
            (String.sub s (i + 1) (String.length s - i - 1));
          List.iter (send_line c.fd) (W.on_line c.conn line);
          drain_lines ()
    in
    drain_lines ()
  in
  let running = ref true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> running := false));
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  while !running do
    let fds = lfd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    match Unix.select fds [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = lfd then begin
              match Unix.accept lfd with
              | cfd, _ ->
                  Hashtbl.replace clients cfd
                    { fd = cfd; conn = W.create server;
                      buf = Buffer.create 256 }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some c -> (
                  let b = Bytes.create 4096 in
                  match Unix.read fd b 0 4096 with
                  | 0 -> close_client c
                  | n -> handle_input c (Bytes.sub_string b 0 n)
                  | exception Unix.Unix_error _ -> close_client c))
          readable;
        let completions = S.drain server in
        List.iter
          (fun comp ->
            let owner =
              Hashtbl.fold
                (fun _ c acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                      if W.sid c.conn = Some comp.S.c_sid then Some c
                      else None)
                clients None
            in
            match owner with
            | Some c -> send_line c.fd (W.completion_line comp)
            | None -> () (* client left before its statement completed *))
          completions;
        if verbose && completions <> [] then
          Printf.printf "%s\n%!" (S.stats_json server)
  done;
  Hashtbl.iter (fun _ c -> close_client c) (Hashtbl.copy clients);
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  0

open Cmdliner

let socket =
  let doc = "Listen on the Unix-domain socket at $(docv)." in
  Arg.(
    value
    & opt string "/tmp/msql_server.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let max_sessions =
  let doc = "Refuse HELLO beyond $(docv) concurrent sessions." in
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)

let max_queue =
  let doc = "Shed STMT beyond $(docv) queued statements per session." in
  Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N" ~doc)

let domains =
  let doc =
    "Run service-disjoint statements of a wave on $(docv) OCaml domains \
     (negative: use MSQL_TEST_DOMAINS; 0 or 1: serial)."
  in
  Arg.(value & opt int (-1) & info [ "domains" ] ~docv:"N" ~doc)

let pool_cap =
  let doc =
    "Cap the shared connection pool at $(docv) live connections per \
     service (0: unlimited)."
  in
  Arg.(value & opt int 0 & info [ "pool-cap" ] ~docv:"N" ~doc)

let verbose =
  let doc = "Print server stats after every completed batch." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let cmd =
  let doc = "serve extended multidatabase SQL over a local socket" in
  let info = Cmd.info "msql_server" ~doc in
  Cmd.v info
    Term.(
      const main $ socket $ max_sessions $ max_queue $ domains $ pool_cap
      $ verbose)

let () = exit (Cmd.eval' cmd)
