(* msql_shell — execute extended MSQL against the demo federation.

   Usage:
     dune exec bin/msql_shell.exe                      # REPL on stdin
     dune exec bin/msql_shell.exe -- --script q.msql   # run a script file
     dune exec bin/msql_shell.exe -- --translate       # print DOL, don't run
     dune exec bin/msql_shell.exe -- --stats           # show network stats

   Statements are separated by `;;` on its own line in the REPL (a single
   `;` belongs to the MSQL grammar, e.g. inside multitransactions). *)

module F = Msql.Fixtures
module M = Msql.Msession

(* [true] when the statement succeeded; diagnostics go to stderr so a
   script's data output stays clean and exit codes can reflect failure *)
let process session ~translate ~stats world text =
  let text = String.trim text in
  if text = "" then true
  else if translate then
    match M.translate session text with
    | Ok prog ->
        print_string (Narada.Dol_pp.program_to_string prog);
        true
    | Error m ->
        Printf.eprintf "error: %s\n%!" m;
        false
  else begin
    let ok =
      match M.exec session text with
      | Ok r ->
          print_endline (M.result_to_string r);
          true
      | Error m ->
          Printf.eprintf "error: %s\n%!" m;
          false
    in
    if stats then begin
      let st = Netsim.World.stats world in
      Printf.printf "[net: %d messages, %d bytes, clock %.2f ms]\n"
        st.Netsim.World.messages st.Netsim.World.bytes_moved
        (Netsim.World.now_ms world)
    end;
    ok
  end

let repl session ~translate ~stats world =
  print_endline
    "MSQL shell — demo federation: continental delta united avis national";
  print_endline "End a statement with `;;` on its own line; ctrl-d quits.";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "msql> " else "  ... ");
    match read_line () with
    | exception End_of_file -> ()
    | line when String.trim line = ";;" ->
        ignore (process session ~translate ~stats world (Buffer.contents buf));
        Buffer.clear buf;
        loop ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop ()
  in
  loop ()

let run_script session ~translate ~stats world path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  if translate then
    match Msql.Mparser.parse_script text with
    | exception Msql.Mparser.Error (m, l, c) ->
        Printf.eprintf "parse error at %d:%d: %s\n%!" l c m;
        false
    | _ ->
        (* translate statement by statement is not possible from the parsed
           list without re-printing MSQL; run the whole script through the
           single-statement path instead *)
        process session ~translate ~stats world text
  else
    match M.exec_script session text with
    | Ok results ->
        List.iter (fun r -> print_endline (M.result_to_string r)) results;
        if stats then begin
          let st = Netsim.World.stats world in
          Printf.printf "[net: %d messages, %d bytes, clock %.2f ms]\n"
            st.Netsim.World.messages st.Netsim.World.bytes_moved
            (Netsim.World.now_ms world)
        end;
        true
    | Error m ->
        Printf.eprintf "error: %s\n%!" m;
        false

let main script translate stats optimize trace verbose loss loss_seed =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let fx = F.make () in
  let session = fx.F.session and world = fx.F.world in
  M.set_optimize session optimize;
  if trace then M.set_trace session (Some (fun line -> print_endline ("  " ^ line)));
  if loss > 0.0 then begin
    Netsim.World.set_loss world ~seed:loss_seed ~prob:loss;
    Printf.printf "[chaos: losing messages with p=%.3f, seed %d]\n" loss
      loss_seed
  end;
  match script with
  | Some path ->
      (* a failed script run must be visible to the calling shell *)
      if run_script session ~translate ~stats world path then 0 else 1
  | None ->
      repl session ~translate ~stats world;
      0

open Cmdliner

let script =
  let doc = "Execute the MSQL statements in $(docv) instead of reading stdin." in
  Arg.(value & opt (some file) None & info [ "script"; "s" ] ~docv:"FILE" ~doc)

let translate =
  let doc = "Print the generated DOL evaluation plan instead of executing." in
  Arg.(value & flag & info [ "translate"; "t" ] ~doc)

let stats =
  let doc = "Print simulated-network statistics after each statement." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let optimize =
  let doc = "Run generated DOL plans through the optimizer (parallel opens, \
             task merging)." in
  Arg.(value & flag & info [ "optimize"; "O" ] ~doc)

let trace =
  let doc = "Print the DOL engine's coordination trace while executing." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let verbose =
  let doc = "Enable debug logging of the MSQL pipeline and the DOL engine." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let loss =
  let doc = "Lose each simulated network message with probability $(docv) \
             (deterministic chaos; pair with $(b,--trace) to watch the \
             engine retry and recover)." in
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"PROB" ~doc)

let loss_seed =
  let doc = "Seed for the message-loss generator, so chaos runs replay \
             identically." in
  Arg.(value & opt int 42 & info [ "loss-seed" ] ~docv:"N" ~doc)

let cmd =
  let doc = "execute extended multidatabase SQL against the demo federation" in
  let info = Cmd.info "msql_shell" ~doc in
  Cmd.v info
    Term.(
      const main $ script $ translate $ stats $ optimize $ trace $ verbose
      $ loss $ loss_seed)

let () = exit (Cmd.eval' cmd)
