(** The simulated distributed environment: a set of sites, a virtual clock
    and message accounting.

    Everything runs in one OS process; "remote" execution means charging
    this clock. {!parallel} models concurrent task execution: each branch
    starts from the same virtual instant and the clock ends at the latest
    branch finish — the quantity the paper says loosely coupled execution
    should optimize (§4.3, §5).

    Failures come in two flavours, both deterministic:
    - {e outages}: windows of virtual time during which a site is
      unreachable ({!Site_down}); recovery is implicit once the clock
      passes the window's end, so transient failures need no callback.
    - {e message loss}: individual messages dropped on a link
      ({!Lost_message}), either queued one-shot or drawn from a seeded
      PRNG, so chaos runs replay identically for the same seed. *)

type t

exception Unknown_site of string

exception Site_down of string
(** The named site is inside an outage window: nothing was delivered and
    the destination did no work. *)

exception Lost_message of string * string
(** [Lost_message (src, dst)]: both sites are up but this particular
    message vanished in transit. Unlike {!Site_down} the sender cannot
    distinguish a slow reply from a lost one except by timeout — retry
    policies treat both as transient. *)

type stats = {
  mutable messages : int;   (** messages delivered *)
  mutable bytes_moved : int;
  mutable lost : int;       (** messages dropped by loss injection *)
}

type site_stat = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
  mutable recv_bytes : int;
}
(** Per-site view of delivered traffic. Lost messages are charged to
    neither side (mirroring {!stats}, which counts delivered messages
    only), so summing [sent_msgs]/[sent_bytes] over all sites reproduces
    [stats.messages]/[stats.bytes_moved] exactly. *)

val create : unit -> t
(** Contains one built-in site ["mdbs"] (latency 0): the multidatabase
    engine's own node. *)

val add_site : t -> Site.t -> unit
val find_site : t -> string -> Site.t
val site_names : t -> string list

val now_ms : t -> float
(** The current virtual time {e as seen by the calling branch}: inside a
    clock frame (see {!in_frame}, {!parallel}) this is the frame's private
    clock; outside any frame it is the world's global clock. *)

val advance_ms : t -> float -> unit
(** Advance the caller's clock (frame clock inside a frame, global clock
    otherwise). Frames are domain-local, so branches running on separate
    domains advance independent clocks with no synchronization. *)

val in_frame : t -> start_ms:float -> (unit -> 'a) -> 'a * float
(** [in_frame t ~start_ms f] runs [f] inside a fresh clock frame that
    starts at [start_ms]: within [f], {!now_ms}/{!advance_ms} read and
    move the frame's private clock. Returns [f]'s result together with the
    frame's finish time. The global clock (or enclosing frame) is
    untouched — merging the finish times back is the caller's job, as
    {!parallel} does with a max. Frames nest, and are domain-local: this
    is the primitive that lets logically concurrent branches execute on
    separate domains while keeping virtual-time accounting identical to a
    sequential run. *)

val reset_clock : t -> unit
val stats : t -> stats
val reset_stats : t -> unit
(** Also clears the per-site ledger. *)

val per_site : t -> (string * site_stat) list
(** Per-site traffic counters for every site that has sent or received at
    least one delivered message, sorted by (lowercased) site name. *)

val set_down : t -> string -> bool -> unit
(** [set_down t name true] marks the site permanently unreachable
    (replacing any scheduled outages); [false] clears all outages. *)

val set_down_until : t -> string -> float -> unit
(** [set_down_until t name until_ms] starts a transient outage now; the
    site recovers automatically when the virtual clock reaches
    [until_ms]. *)

val schedule_outage : t -> string -> from_ms:float -> until_ms:float -> unit
(** Schedule an outage window at absolute virtual times, e.g. to take a
    site down between a future prepare and commit. Windows may overlap. *)

val is_down : t -> string -> bool
(** Whether the site is inside an outage window at the current virtual
    time. *)

val down_during : t -> string -> since_ms:float -> bool
(** Whether the site was inside an outage window at any virtual instant in
    [[since_ms, now]] — including windows that have since expired or been
    cleared with {!set_down}[ false]/{!clear_faults}. This is the staleness
    test a connection pool needs: a session checked in at [since_ms] whose
    site went down (and possibly recovered) in between is broken even
    though the site answers now. Conservative at the boundary: an outage
    ending exactly at [since_ms] counts. History is forgotten by
    {!reset_clock} (a new timeline). *)

val next_recovery_ms : t -> string -> float option
(** If the site is currently down, the virtual time at which it recovers
    ([Some infinity] for a permanent outage); [None] if it is up. *)

val set_loss : t -> seed:int -> prob:float -> unit
(** Drop every message with probability [prob], drawn from a private PRNG
    seeded with [seed] (links with a {!set_link_loss} entry use their own
    source instead). [prob <= 0] clears the default loss. *)

val set_link_loss : t -> src:string -> dst:string -> seed:int -> prob:float -> unit
(** Per-link loss probability with its own seeded PRNG. *)

val lose_next : t -> src:string -> dst:string -> unit
(** Queue a one-shot loss: the next message on [src -> dst] vanishes.
    Multiple calls stack. Takes precedence over probabilistic loss and
    consumes no PRNG draw, so deterministic tests stay deterministic. *)

val has_loss : t -> bool
(** Whether any message-loss source is configured (default or per-link
    probability, or a queued one-shot loss). Loss draws consume shared
    PRNG state whose order is interleaving-dependent, so the engine falls
    back to sequential branch execution while this holds. *)

val clear_faults : t -> unit
(** Remove all outages, loss sources and queued losses. *)

val send : t -> src:string -> dst:string -> bytes:int -> unit
(** Charge one message from [src] to [dst]: advances the caller's clock by
    both sites' message costs and updates the statistics. Raises
    {!Unknown_site}, {!Site_down} or {!Lost_message}; a lost message
    charges the sender's cost only and counts in [stats.lost]. The shared
    counters are mutex-protected, so [send] may be called concurrently
    from branches running on separate domains. *)

val send_chunked : t -> src:string -> dst:string -> chunks:int list -> float list
(** [send_chunked t ~src ~dst ~chunks] ships one logical message whose
    payload arrives in [chunks] byte installments. Failure semantics (one
    loss draw, same exceptions), the message count, the total bytes and
    the clock advance are {e identical} to
    {!send}[ ~bytes:(sum chunks)] — chunking sits below the accounting
    granularity, so statistics and virtual time are chunk-size-invariant
    by construction. Each installment feeds the per-site byte ledger
    separately (installments sum exactly to the total). Returns the
    virtual completion instant of each chunk — the linear serialization
    schedule of the transfer — the last equal to the post-send clock. *)

val parallel : t -> (unit -> 'a) list -> 'a list
(** Run the thunks as logically concurrent branches: each runs in its own
    clock frame starting at the current virtual time; afterwards the
    clock is the maximum finish time. Results are returned in order. The
    thunks execute serially on the calling domain — real domain-parallel
    execution is built on {!in_frame} directly by the DOL engine. *)

val parallel_timed : t -> (unit -> 'a) list -> 'a list * float list
(** {!parallel}, additionally returning each branch's virtual duration
    (finish minus the block's start), in thunk order — the per-wave
    accounting (critical path = max, serial estimate = sum) the dataflow
    scheduler records. *)
