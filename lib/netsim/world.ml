(* An outage is a window of virtual time during which a site is
   unreachable; [until_ms = infinity] models a permanent failure. Recovery
   is implicit: the site answers again once the clock passes [until_ms]. *)
type outage = { from_ms : float; until_ms : float }

type loss = { prob : float; rng : Random.State.t }

type t = {
  sites : (string, Site.t) Hashtbl.t;
  outages : (string, outage list) Hashtbl.t;
  down_history : (string, float) Hashtbl.t;
      (* site -> latest virtual instant the site is known to have been
         down, over windows already pruned or cleared; live windows are
         consulted directly. Lets connection pools ask "was this site
         ever down since I last used it?" after the window itself is
         gone. *)
  mutable clock_ms : float;
  stats : stats;
  site_stats : (string, site_stat) Hashtbl.t;
      (* per-site ledger of delivered traffic; the sums over all sites
         equal [stats.messages]/[stats.bytes_moved] *)
  link_loss : (string * string, loss) Hashtbl.t;
  mutable default_loss : loss option;
  lose_next : (string * string, int) Hashtbl.t;  (* queued one-shot losses *)
}

and stats = {
  mutable messages : int;
  mutable bytes_moved : int;
  mutable lost : int;
}

and site_stat = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
  mutable recv_bytes : int;
}

exception Unknown_site of string
exception Site_down of string
exception Lost_message of string * string

let key = String.lowercase_ascii

let create () =
  let t =
    {
      sites = Hashtbl.create 16;
      outages = Hashtbl.create 4;
      down_history = Hashtbl.create 4;
      clock_ms = 0.0;
      stats = { messages = 0; bytes_moved = 0; lost = 0 };
      site_stats = Hashtbl.create 8;
      link_loss = Hashtbl.create 4;
      default_loss = None;
      lose_next = Hashtbl.create 4;
    }
  in
  Hashtbl.replace t.sites (key "mdbs")
    (Site.make ~latency_ms:0.0 ~per_byte_ms:0.0 "mdbs");
  t

let add_site t site = Hashtbl.replace t.sites (key site.Site.site_name) site

let find_site t name =
  match Hashtbl.find_opt t.sites (key name) with
  | Some s -> s
  | None -> raise (Unknown_site name)

let site_names t =
  Hashtbl.fold (fun _ s acc -> s.Site.site_name :: acc) t.sites []
  |> List.sort String.compare

let now_ms t = t.clock_ms
let advance_ms t d = t.clock_ms <- t.clock_ms +. d
let reset_clock t =
  t.clock_ms <- 0.0;
  (* history instants belong to the old timeline *)
  Hashtbl.reset t.down_history
let stats t = t.stats

let reset_stats t =
  t.stats.messages <- 0;
  t.stats.bytes_moved <- 0;
  t.stats.lost <- 0;
  Hashtbl.reset t.site_stats

let site_stat_of t name =
  let k = key name in
  match Hashtbl.find_opt t.site_stats k with
  | Some s -> s
  | None ->
      let s = { sent_msgs = 0; sent_bytes = 0; recv_msgs = 0; recv_bytes = 0 } in
      Hashtbl.replace t.site_stats k s;
      s

let per_site t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.site_stats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- failures ------------------------------------------------------------ *)

let add_outage t name o =
  ignore (find_site t name);
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.outages (key name)) in
  Hashtbl.replace t.outages (key name) (o :: prev)

let note_down_until t name inst =
  let prev =
    Option.value ~default:neg_infinity
      (Hashtbl.find_opt t.down_history (key name))
  in
  if inst > prev then Hashtbl.replace t.down_history (key name) inst

(* record the portion of [name]'s windows that already lies in the past,
   before those windows are discarded *)
let remember_past_windows t name =
  match Hashtbl.find_opt t.outages (key name) with
  | None -> ()
  | Some windows ->
      List.iter
        (fun o ->
          if o.from_ms <= t.clock_ms && o.until_ms > o.from_ms then
            note_down_until t name (min o.until_ms t.clock_ms))
        windows

let set_down t name down =
  ignore (find_site t name);
  if down then
    Hashtbl.replace t.outages (key name)
      [ { from_ms = neg_infinity; until_ms = infinity } ]
  else begin
    (* clearing ends any ongoing outage now; the fact that the site was
       down until this instant stays observable to down_during *)
    remember_past_windows t name;
    Hashtbl.remove t.outages (key name)
  end

let set_down_until t name until_ms =
  add_outage t name { from_ms = t.clock_ms; until_ms }

let schedule_outage t name ~from_ms ~until_ms =
  add_outage t name { from_ms; until_ms }

let is_down t name =
  match Hashtbl.find_opt t.outages (key name) with
  | None -> false
  | Some windows ->
      (* prune windows the clock has passed so long runs stay cheap,
         remembering their end instants for down_during *)
      let live, expired =
        List.partition (fun o -> t.clock_ms < o.until_ms) windows
      in
      List.iter
        (fun o ->
          if o.until_ms > o.from_ms then note_down_until t name o.until_ms)
        expired;
      if live = [] then Hashtbl.remove t.outages (key name)
      else Hashtbl.replace t.outages (key name) live;
      List.exists
        (fun o -> o.from_ms <= t.clock_ms && t.clock_ms < o.until_ms)
        live

let down_during t name ~since_ms =
  (match Hashtbl.find_opt t.down_history (key name) with
  | Some e -> e >= since_ms
  | None -> false)
  ||
  match Hashtbl.find_opt t.outages (key name) with
  | None -> false
  | Some windows ->
      List.exists
        (fun o -> o.from_ms <= t.clock_ms && o.until_ms > since_ms)
        windows

let next_recovery_ms t name =
  match Hashtbl.find_opt t.outages (key name) with
  | None -> None
  | Some windows -> (
      match
        List.filter
          (fun o -> o.from_ms <= t.clock_ms && t.clock_ms < o.until_ms)
          windows
      with
      | [] -> None
      | live ->
          let u = List.fold_left (fun acc o -> max acc o.until_ms) neg_infinity live in
          if u = infinity then Some infinity else Some u)

let mk_loss ~seed ~prob = { prob; rng = Random.State.make [| seed |] }

let set_loss t ~seed ~prob =
  t.default_loss <- (if prob <= 0.0 then None else Some (mk_loss ~seed ~prob))

let set_link_loss t ~src ~dst ~seed ~prob =
  if prob <= 0.0 then Hashtbl.remove t.link_loss (key src, key dst)
  else Hashtbl.replace t.link_loss (key src, key dst) (mk_loss ~seed ~prob)

let lose_next t ~src ~dst =
  let k = (key src, key dst) in
  let n = Option.value ~default:0 (Hashtbl.find_opt t.lose_next k) in
  Hashtbl.replace t.lose_next k (n + 1)

let clear_faults t =
  Hashtbl.iter (fun name _ -> remember_past_windows t name)
    (Hashtbl.copy t.outages);
  Hashtbl.reset t.outages;
  Hashtbl.reset t.link_loss;
  Hashtbl.reset t.lose_next;
  t.default_loss <- None

(* one PRNG draw per loss source per message keeps chaos runs replayable:
   the firing sequence is a pure function of the seed and the message
   sequence, independent of wall time *)
let message_lost t ~src ~dst =
  let k = (key src, key dst) in
  match Hashtbl.find_opt t.lose_next k with
  | Some n ->
      if n <= 1 then Hashtbl.remove t.lose_next k
      else Hashtbl.replace t.lose_next k (n - 1);
      true
  | None -> (
      match Hashtbl.find_opt t.link_loss k with
      | Some l -> Random.State.float l.rng 1.0 < l.prob
      | None -> (
          match t.default_loss with
          | Some l -> Random.State.float l.rng 1.0 < l.prob
          | None -> false))

let send t ~src ~dst ~bytes =
  let s = find_site t src and d = find_site t dst in
  if is_down t src then raise (Site_down src);
  if is_down t dst then raise (Site_down dst);
  if message_lost t ~src ~dst then begin
    (* the message left the wire and vanished: the sender still pays the
       send cost (and will pay again to detect the loss via its retry
       timeout), but nothing arrives *)
    advance_ms t (Site.message_cost_ms s ~bytes);
    t.stats.lost <- t.stats.lost + 1;
    raise (Lost_message (src, dst))
  end;
  advance_ms t (Site.message_cost_ms s ~bytes +. Site.message_cost_ms d ~bytes);
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes_moved <- t.stats.bytes_moved + bytes;
  (* only delivered traffic enters the per-site ledger, mirroring the
     global counters above *)
  let ss = site_stat_of t src and ds = site_stat_of t dst in
  ss.sent_msgs <- ss.sent_msgs + 1;
  ss.sent_bytes <- ss.sent_bytes + bytes;
  ds.recv_msgs <- ds.recv_msgs + 1;
  ds.recv_bytes <- ds.recv_bytes + bytes

let parallel t thunks =
  let t0 = t.clock_ms in
  let finishes = ref [] in
  let results =
    List.map
      (fun thunk ->
        t.clock_ms <- t0;
        let r = thunk () in
        finishes := t.clock_ms :: !finishes;
        r)
      thunks
  in
  t.clock_ms <- List.fold_left max t0 !finishes;
  results
