(* An outage is a window of virtual time during which a site is
   unreachable; [until_ms = infinity] models a permanent failure. Recovery
   is implicit: the site answers again once the clock passes [until_ms]. *)
type outage = { from_ms : float; until_ms : float }

type loss = { prob : float; rng : Random.State.t }

type t = {
  sites : (string, Site.t) Hashtbl.t;
  outages : (string, outage list) Hashtbl.t;
  down_history : (string, float) Hashtbl.t;
      (* site -> latest virtual instant the site is known to have been
         down, over windows cleared with set_down/clear_faults; live
         windows are consulted directly. Lets connection pools ask "was
         this site ever down since I last used it?" after the window
         itself is gone. *)
  mutable clock_ms : float;
  stats : stats;
  site_stats : (string, site_stat) Hashtbl.t;
      (* per-site ledger of delivered traffic; the sums over all sites
         equal [stats.messages]/[stats.bytes_moved] *)
  link_loss : (string * string, loss) Hashtbl.t;
  mutable default_loss : loss option;
  lose_next : (string * string, int) Hashtbl.t;  (* queued one-shot losses *)
  lock : Mutex.t;
      (* guards the accounting state (stats, site_stats, loss sources)
         when parallel branches run on separate domains; the clock needs
         no lock because each branch advances its own frame *)
}

and stats = {
  mutable messages : int;
  mutable bytes_moved : int;
  mutable lost : int;
}

and site_stat = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
  mutable recv_bytes : int;
}

exception Unknown_site of string
exception Site_down of string
exception Lost_message of string * string

let key = String.lowercase_ascii

let create () =
  let t =
    {
      sites = Hashtbl.create 16;
      outages = Hashtbl.create 4;
      down_history = Hashtbl.create 4;
      clock_ms = 0.0;
      stats = { messages = 0; bytes_moved = 0; lost = 0 };
      site_stats = Hashtbl.create 8;
      link_loss = Hashtbl.create 4;
      default_loss = None;
      lose_next = Hashtbl.create 4;
      lock = Mutex.create ();
    }
  in
  Hashtbl.replace t.sites (key "mdbs")
    (Site.make ~latency_ms:0.0 ~per_byte_ms:0.0 "mdbs");
  t

let add_site t site = Hashtbl.replace t.sites (key site.Site.site_name) site

let find_site t name =
  match Hashtbl.find_opt t.sites (key name) with
  | Some s -> s
  | None -> raise (Unknown_site name)

let site_names t =
  Hashtbl.fold (fun _ s acc -> s.Site.site_name :: acc) t.sites []
  |> List.sort String.compare

(* ---- clock frames --------------------------------------------------------
   A frame is a private view of the virtual clock for one logically
   concurrent branch: it starts at the branch's fork instant and advances
   independently of every sibling. Frames live in domain-local storage, so
   branches executing on separate domains each read and advance their own
   clock without synchronization; the sequential [parallel] combinator uses
   the same mechanism, entering and leaving one frame per branch on the
   calling domain. Frames nest (a PARBEGIN inside a PARBEGIN forks from the
   enclosing frame's clock). *)

type frame = { fworld : t; mutable fclock : float }

let frame_key : frame list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let current_frame t =
  match Domain.DLS.get frame_key with
  | f :: _ when f.fworld == t -> Some f
  | _ -> None

let now_ms t =
  match current_frame t with Some f -> f.fclock | None -> t.clock_ms

let set_now t v =
  match current_frame t with
  | Some f -> f.fclock <- v
  | None -> t.clock_ms <- v

let advance_ms t d = set_now t (now_ms t +. d)

let in_frame t ~start_ms f =
  let frame = { fworld = t; fclock = start_ms } in
  let outer = Domain.DLS.get frame_key in
  Domain.DLS.set frame_key (frame :: outer);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set frame_key outer)
    (fun () ->
      let r = f () in
      (r, frame.fclock))

let reset_clock t =
  t.clock_ms <- 0.0;
  (* history instants belong to the old timeline *)
  Hashtbl.reset t.down_history
let stats t = t.stats

let reset_stats t =
  t.stats.messages <- 0;
  t.stats.bytes_moved <- 0;
  t.stats.lost <- 0;
  Hashtbl.reset t.site_stats

let site_stat_of t name =
  let k = key name in
  match Hashtbl.find_opt t.site_stats k with
  | Some s -> s
  | None ->
      let s = { sent_msgs = 0; sent_bytes = 0; recv_msgs = 0; recv_bytes = 0 } in
      Hashtbl.replace t.site_stats k s;
      s

let per_site t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.site_stats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- failures ------------------------------------------------------------ *)

let add_outage t name o =
  ignore (find_site t name);
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.outages (key name)) in
  Hashtbl.replace t.outages (key name) (o :: prev)

let note_down_until t name inst =
  let prev =
    Option.value ~default:neg_infinity
      (Hashtbl.find_opt t.down_history (key name))
  in
  if inst > prev then Hashtbl.replace t.down_history (key name) inst

(* record the portion of [name]'s windows that already lies in the past,
   before those windows are discarded *)
let remember_past_windows t name =
  match Hashtbl.find_opt t.outages (key name) with
  | None -> ()
  | Some windows ->
      List.iter
        (fun o ->
          if o.from_ms <= now_ms t && o.until_ms > o.from_ms then
            note_down_until t name (min o.until_ms (now_ms t)))
        windows

let set_down t name down =
  ignore (find_site t name);
  if down then
    Hashtbl.replace t.outages (key name)
      [ { from_ms = neg_infinity; until_ms = infinity } ]
  else begin
    (* clearing ends any ongoing outage now; the fact that the site was
       down until this instant stays observable to down_during *)
    remember_past_windows t name;
    Hashtbl.remove t.outages (key name)
  end

let set_down_until t name until_ms =
  add_outage t name { from_ms = now_ms t; until_ms }

let schedule_outage t name ~from_ms ~until_ms =
  add_outage t name { from_ms; until_ms }

(* Pure: a read of the outage schedule at the caller's (frame) clock.
   Expired windows are NOT pruned here — pruning driven by one parallel
   branch's clock could discard a window still live at a sibling branch's
   earlier instant. Windows are only retired by the explicit clears
   (set_down false, clear_faults), which record them in down_history. *)
let is_down t name =
  match Hashtbl.find_opt t.outages (key name) with
  | None -> false
  | Some windows ->
      List.exists
        (fun o -> o.from_ms <= now_ms t && now_ms t < o.until_ms)
        windows

let down_during t name ~since_ms =
  (match Hashtbl.find_opt t.down_history (key name) with
  | Some e -> e >= since_ms
  | None -> false)
  ||
  match Hashtbl.find_opt t.outages (key name) with
  | None -> false
  | Some windows ->
      List.exists
        (fun o -> o.from_ms <= now_ms t && o.until_ms >= since_ms)
        windows

let next_recovery_ms t name =
  match Hashtbl.find_opt t.outages (key name) with
  | None -> None
  | Some windows -> (
      match
        List.filter
          (fun o -> o.from_ms <= now_ms t && now_ms t < o.until_ms)
          windows
      with
      | [] -> None
      | live ->
          let u = List.fold_left (fun acc o -> max acc o.until_ms) neg_infinity live in
          if u = infinity then Some infinity else Some u)

let mk_loss ~seed ~prob = { prob; rng = Random.State.make [| seed |] }

let set_loss t ~seed ~prob =
  t.default_loss <- (if prob <= 0.0 then None else Some (mk_loss ~seed ~prob))

let set_link_loss t ~src ~dst ~seed ~prob =
  if prob <= 0.0 then Hashtbl.remove t.link_loss (key src, key dst)
  else Hashtbl.replace t.link_loss (key src, key dst) (mk_loss ~seed ~prob)

let lose_next t ~src ~dst =
  let k = (key src, key dst) in
  let n = Option.value ~default:0 (Hashtbl.find_opt t.lose_next k) in
  Hashtbl.replace t.lose_next k (n + 1)

let has_loss t =
  t.default_loss <> None
  || Hashtbl.length t.link_loss > 0
  || Hashtbl.length t.lose_next > 0

let clear_faults t =
  Hashtbl.iter (fun name _ -> remember_past_windows t name)
    (Hashtbl.copy t.outages);
  Hashtbl.reset t.outages;
  Hashtbl.reset t.link_loss;
  Hashtbl.reset t.lose_next;
  t.default_loss <- None

(* one PRNG draw per loss source per message keeps chaos runs replayable:
   the firing sequence is a pure function of the seed and the message
   sequence, independent of wall time *)
let message_lost t ~src ~dst =
  let k = (key src, key dst) in
  match Hashtbl.find_opt t.lose_next k with
  | Some n ->
      if n <= 1 then Hashtbl.remove t.lose_next k
      else Hashtbl.replace t.lose_next k (n - 1);
      true
  | None -> (
      match Hashtbl.find_opt t.link_loss k with
      | Some l -> Random.State.float l.rng 1.0 < l.prob
      | None -> (
          match t.default_loss with
          | Some l -> Random.State.float l.rng 1.0 < l.prob
          | None -> false))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let send t ~src ~dst ~bytes =
  let s = find_site t src and d = find_site t dst in
  if is_down t src then raise (Site_down src);
  if is_down t dst then raise (Site_down dst);
  (* the clock advances on the caller's own frame; only the shared
     counters (and the loss PRNG draw) need the lock *)
  if locked t (fun () -> message_lost t ~src ~dst) then begin
    (* the message left the wire and vanished: the sender still pays the
       send cost (and will pay again to detect the loss via its retry
       timeout), but nothing arrives *)
    advance_ms t (Site.message_cost_ms s ~bytes);
    locked t (fun () -> t.stats.lost <- t.stats.lost + 1);
    raise (Lost_message (src, dst))
  end;
  advance_ms t (Site.message_cost_ms s ~bytes +. Site.message_cost_ms d ~bytes);
  locked t (fun () ->
      t.stats.messages <- t.stats.messages + 1;
      t.stats.bytes_moved <- t.stats.bytes_moved + bytes;
      (* only delivered traffic enters the per-site ledger, mirroring the
         global counters above *)
      let ss = site_stat_of t src and ds = site_stat_of t dst in
      ss.sent_msgs <- ss.sent_msgs + 1;
      ss.sent_bytes <- ss.sent_bytes + bytes;
      ds.recv_msgs <- ds.recv_msgs + 1;
      ds.recv_bytes <- ds.recv_bytes + bytes)

(* A chunk-streamed logical message. Failure semantics, loss draws, the
   message count, the total bytes and the clock advance are all identical
   to [send ~bytes:(sum chunks)] — chunking is a transport detail below
   the accounting granularity, which is what makes results and metrics
   chunk-size-invariant by construction. The differences are observational:
   each chunk's bytes enter the per-site ledgers as a separate installment
   (summing exactly to the total), and the returned list gives each
   chunk's completion instant — the linear serialization schedule of the
   total transfer cost over the cumulative payload, for per-chunk trace
   events. An empty/zero-byte stream completes at [t0 + cost] like the
   monolithic send. *)
let send_chunked t ~src ~dst ~chunks =
  let s = find_site t src and d = find_site t dst in
  let total = List.fold_left ( + ) 0 chunks in
  if is_down t src then raise (Site_down src);
  if is_down t dst then raise (Site_down dst);
  if locked t (fun () -> message_lost t ~src ~dst) then begin
    advance_ms t (Site.message_cost_ms s ~bytes:total);
    locked t (fun () -> t.stats.lost <- t.stats.lost + 1);
    raise (Lost_message (src, dst))
  end;
  let t0 = now_ms t in
  let cost =
    Site.message_cost_ms s ~bytes:total +. Site.message_cost_ms d ~bytes:total
  in
  advance_ms t cost;
  locked t (fun () ->
      t.stats.messages <- t.stats.messages + 1;
      t.stats.bytes_moved <- t.stats.bytes_moved + total;
      let ss = site_stat_of t src and ds = site_stat_of t dst in
      ss.sent_msgs <- ss.sent_msgs + 1;
      ds.recv_msgs <- ds.recv_msgs + 1;
      List.iter
        (fun b ->
          ss.sent_bytes <- ss.sent_bytes + b;
          ds.recv_bytes <- ds.recv_bytes + b)
        chunks);
  let _, rev_times =
    List.fold_left
      (fun (cum, acc) b ->
        let cum = cum + b in
        let frac =
          if total = 0 then 1.0 else float_of_int cum /. float_of_int total
        in
        (cum, (t0 +. (frac *. cost)) :: acc))
      (0, []) chunks
  in
  List.rev rev_times

let parallel t thunks =
  let t0 = now_ms t in
  let finishes = ref [] in
  let results =
    List.map
      (fun thunk ->
        let r, fin = in_frame t ~start_ms:t0 thunk in
        finishes := fin :: !finishes;
        r)
      thunks
  in
  set_now t (List.fold_left max t0 !finishes);
  results

(* [parallel] plus each branch's individual virtual duration, in thunk
   order — the dataflow scheduler's wave accounting (critical path = max,
   serial estimate = sum) reads these without re-deriving frames. *)
let parallel_timed t thunks =
  let t0 = now_ms t in
  let finishes = ref [] in
  let results =
    List.map
      (fun thunk ->
        let r, fin = in_frame t ~start_ms:t0 thunk in
        finishes := fin :: !finishes;
        r)
      thunks
  in
  set_now t (List.fold_left max t0 !finishes);
  (results, List.rev_map (fun fin -> fin -. t0) !finishes)
