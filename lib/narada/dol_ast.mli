(** Abstract syntax of DOL, Narada's task specification language.

    The constructs follow the program listing in §4.3 of the paper
    (OPEN/TASK/NOCOMMIT/IF on task statuses/COMMIT/ABORT/DOLSTATUS/CLOSE),
    plus the facilities the paper attributes to DOL without showing
    syntax: parallel task execution ([PARBEGIN]/[PAREND]), direct
    LAM-to-LAM data transfer ([MOVE]) and compensation tasks ([COMP]). *)

type mode =
  | With_commit  (** commit as soon as the task's commands succeed *)
  | No_commit  (** leave the task in the prepared-to-commit state *)

(** Runtime status of a task; the letters are the ones DOL conditions
    use: [P]repared, [C]ommitted, [A]borted, [E]rror (infrastructure
    failure, e.g. site down), [N]ot run, [X] compensated. *)
type status = P | C | A | E | N | X

type cond =
  | Status_is of string * status  (** [(T1 = P)] *)
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type task = {
  tname : string;
  mode : mode;
  target : string;  (** alias bound by OPEN *)
  commands : string;  (** raw SQL script shipped to the LAM *)
}

type stmt =
  | Open of { service : string; open_site : string option; alias : string }
  | Close of string list
  | Task of task
  | Parallel of stmt list
      (** branches execute logically concurrently; only [Task] and [Move]
          are allowed inside *)
  | If of cond * stmt list * stmt list
  | Commit_tasks of string list
  | Abort_tasks of string list
  | Comp of {
      cname : string;
      compensates : string option;  (** task whose effects this undoes *)
      target : string;
      commands : string;
    }
  | Move of {
      mname : string;
      src : string;
      dst : string;
      dest_table : string;
      query : string;
      reduce : (string * string) option;
          (** semijoin reduction: [(col, probe)] where [probe] is a SQL
              query evaluated at [dst] and the MOVE's query is restricted
              to [col IN (distinct probe values)] before shipping.
              Syntax: [SEMIJOIN { col } PROBE { probe }] before ENDMOVE. *)
    }
  | Set_status of int  (** [DOLSTATUS = n] *)

type program = stmt list

val status_to_string : status -> string
val status_of_string : string -> status option

val task_names : program -> string list
(** Names of all tasks, moves and compensations, in order of appearance. *)
