module World = Netsim.World

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable discarded : int;
}

type entry = {
  lam : Lam.t;
  since_ms : float;  (* virtual checkin instant, for staleness tests *)
}

type t = {
  world : World.t;
  conns : (string, entry list) Hashtbl.t;  (* service key -> idle stack *)
  pstats : stats;
  mutable on_trace : Trace.event -> unit;
}

let key = String.lowercase_ascii

let create world =
  {
    world;
    conns = Hashtbl.create 8;
    pstats = { hits = 0; misses = 0; discarded = 0 };
    on_trace = ignore;
  }

let set_trace t sink = t.on_trace <- sink

let tell t kind = t.on_trace { Trace.at_ms = World.now_ms t.world; kind }

let stats t = t.pstats

let size t = Hashtbl.fold (fun _ es acc -> acc + List.length es) t.conns 0

(* A stale connection is one whose transport broke while it idled: the
   real LDBMS notices the broken session and aborts its orphaned {e
   active} transaction autonomously, which we model here. A {e prepared}
   transaction must survive at the site (it awaits the coordinator's
   verdict), so it is simply left alone. No goodbye message is charged —
   there is no connection left to say goodbye on. *)
let abandon lam =
  match Ldbms.Session.txn_state (Lam.session lam) with
  | Some Ldbms.Txn.Active -> ignore (Ldbms.Session.rollback (Lam.session lam))
  | Some _ | None -> ()

let healthy t e =
  let site = Lam.site e.lam in
  (not (World.is_down t.world site))
  && (not (World.down_during t.world site ~since_ms:e.since_ms))
  && Ldbms.Session.txn_state (Lam.session e.lam) = None

let checkout ?retry ?on_retry ?on_trace t (svc : Service.t) =
  let k = key svc.Service.service_name in
  let rec pick () =
    match Hashtbl.find_opt t.conns k with
    | Some (e :: rest) ->
        Hashtbl.replace t.conns k rest;
        if healthy t e then begin
          t.pstats.hits <- t.pstats.hits + 1;
          Ok (Lam.with_policy ?retry ?on_retry ?on_trace e.lam)
        end
        else begin
          t.pstats.discarded <- t.pstats.discarded + 1;
          tell t
            (Trace.Pool_stale
               {
                 service = svc.Service.service_name;
                 site = Lam.site e.lam;
               });
          abandon e.lam;
          pick ()
        end
    | Some [] | None ->
        t.pstats.misses <- t.pstats.misses + 1;
        Lam.connect ?retry ?on_retry ?on_trace t.world svc
  in
  pick ()

let checkin t lam =
  let usable =
    (not (World.is_down t.world (Lam.site lam)))
    && Ldbms.Session.txn_state (Lam.session lam) = None
  in
  if usable then begin
    let k = key (Lam.service lam).Service.service_name in
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.conns k) in
    Hashtbl.replace t.conns k
      ({ lam; since_ms = World.now_ms t.world } :: prev)
  end
  else
    (* an unreachable site or an open transaction disqualifies the
       session from reuse; Lam.disconnect applies the proper farewell
       semantics (abort active, preserve prepared, skip the goodbye when
       the site is down) *)
    Lam.disconnect lam

let drain t =
  Hashtbl.iter
    (fun _ es -> List.iter (fun e -> Lam.disconnect e.lam) es)
    t.conns;
  Hashtbl.reset t.conns
