module World = Netsim.World

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable discarded : int;
  mutable conflicts : int;
}

type entry = {
  lam : Lam.t;
  since_ms : float;  (* virtual checkin instant, for staleness tests *)
}

type t = {
  world : World.t;
  conns : (string, entry list) Hashtbl.t;  (* service key -> idle stack *)
  in_use : (string, int) Hashtbl.t;  (* service key -> checked out *)
  mutable cap : int option;  (* per-service checkout ceiling *)
  pstats : stats;
  mutable on_trace : Trace.event -> unit;
  m : Mutex.t;
      (* one pool may serve many sessions stepping on separate domains;
         every entry point locks, so idle stacks and the in-use ledger
         never race. Lam dials happen under the lock — connection setup
         is cheap in virtual time, and a lock-free dial would let two
         sessions both slip past the cap. *)
}

let key = String.lowercase_ascii

let create world =
  {
    world;
    conns = Hashtbl.create 8;
    in_use = Hashtbl.create 8;
    cap = None;
    pstats = { hits = 0; misses = 0; discarded = 0; conflicts = 0 };
    on_trace = ignore;
    m = Mutex.create ();
  }

let set_trace t sink = t.on_trace <- sink

let set_cap t n =
  t.cap <- (match n with Some n when n >= 1 -> Some n | _ -> None)

let cap t = t.cap

let tell t kind =
  t.on_trace { Trace.at_ms = World.now_ms t.world; kind; tag = None }

let stats t = t.pstats

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let size t =
  locked t (fun () ->
      Hashtbl.fold (fun _ es acc -> acc + List.length es) t.conns 0)

let checked_out_unlocked t k =
  Option.value ~default:0 (Hashtbl.find_opt t.in_use k)

let checked_out t svc = locked t (fun () -> checked_out_unlocked t (key svc))

(* The marker a capped-out checkout carries; the server's scheduler
   recognizes it in [Trace.Open_failed] reasons and requeues the
   statement instead of reporting the failure to the client. *)
let busy_tag = "(pool busy)"

let busy_message svc =
  Printf.sprintf "connection cap reached at %s %s" svc busy_tag

let is_busy_message m =
  (* substring search: the engine wraps the failure text on its way into
     Open_failed reasons *)
  let n = String.length busy_tag and l = String.length m in
  let rec go i = i + n <= l && (String.sub m i n = busy_tag || go (i + 1)) in
  go 0

(* A stale connection is one whose transport broke while it idled: the
   real LDBMS notices the broken session and aborts its orphaned {e
   active} transaction autonomously, which we model here. A {e prepared}
   transaction must survive at the site (it awaits the coordinator's
   verdict), so it is simply left alone. No goodbye message is charged —
   there is no connection left to say goodbye on. *)
let abandon lam =
  match Ldbms.Session.txn_state (Lam.session lam) with
  | Some Ldbms.Txn.Active -> ignore (Ldbms.Session.rollback (Lam.session lam))
  | Some _ | None -> ()

let healthy t e =
  let site = Lam.site e.lam in
  (not (World.is_down t.world site))
  && (not (World.down_during t.world site ~since_ms:e.since_ms))
  && Ldbms.Session.txn_state (Lam.session e.lam) = None

let checkout ?retry ?on_retry ?on_trace t (svc : Service.t) =
  locked t (fun () ->
      let k = key svc.Service.service_name in
      (* the cap bounds live connections per service across every session
         sharing the pool; a capped-out checkout fails immediately with a
         transient failure — retrying in place cannot succeed while the
         holder's statement is still running under the same schedule, so
         the caller (the server's scheduler) retries the whole statement
         after the holder has checked its connection back in *)
      match t.cap with
      | Some cap when checked_out_unlocked t k >= cap ->
          t.pstats.conflicts <- t.pstats.conflicts + 1;
          Error (Lam.Network (busy_message svc.Service.service_name))
      | Some _ | None ->
          let rec pick () =
            match Hashtbl.find_opt t.conns k with
            | Some (e :: rest) ->
                Hashtbl.replace t.conns k rest;
                if healthy t e then begin
                  t.pstats.hits <- t.pstats.hits + 1;
                  Ok (Lam.with_policy ?retry ?on_retry ?on_trace e.lam)
                end
                else begin
                  t.pstats.discarded <- t.pstats.discarded + 1;
                  tell t
                    (Trace.Pool_stale
                       {
                         service = svc.Service.service_name;
                         site = Lam.site e.lam;
                       });
                  abandon e.lam;
                  pick ()
                end
            | Some [] | None ->
                t.pstats.misses <- t.pstats.misses + 1;
                Lam.connect ?retry ?on_retry ?on_trace t.world svc
          in
          let r = pick () in
          (match r with
          | Ok _ -> Hashtbl.replace t.in_use k (checked_out_unlocked t k + 1)
          | Error _ -> ());
          r)

let checkin t lam =
  locked t (fun () ->
      let k = key (Lam.service lam).Service.service_name in
      Hashtbl.replace t.in_use k (max 0 (checked_out_unlocked t k - 1));
      let usable =
        (not (World.is_down t.world (Lam.site lam)))
        && Ldbms.Session.txn_state (Lam.session lam) = None
      in
      if usable then
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.conns k) in
        Hashtbl.replace t.conns k
          ({ lam; since_ms = World.now_ms t.world } :: prev)
      else
        (* an unreachable site or an open transaction disqualifies the
           session from reuse; Lam.disconnect applies the proper farewell
           semantics (abort active, preserve prepared, skip the goodbye when
           the site is down) *)
        Lam.disconnect lam)

let drain t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ es -> List.iter (fun e -> Lam.disconnect e.lam) es)
        t.conns;
      Hashtbl.reset t.conns)
