(* Dataflow analysis of DOL programs.

   A DOL program is a statement list the engine executes in order; only
   explicit [PARBEGIN] blocks overlap in virtual time. This module derives
   the overlap automatically: it computes a per-statement read/write
   summary (connection aliases, task-status dataflow, MOVE destination
   tables, order-sensitive globals), builds the dependency DAG over a
   statement sequence, and regroups the sequence into maximal waves of
   pairwise-independent statements.

   Wave formation is deliberately *order-preserving*: a wave is a maximal
   run of consecutive statements with no dependency among them, wrapped in
   one [Parallel] block. Under the engine's sequential combinator a
   [Parallel] block executes its branches in declaration order (each in
   its own virtual-clock frame starting at the block's t0, finish times
   max-merged), so the scheduled program performs *exactly the same
   effects in exactly the same order* as the serial one — statuses,
   results, database writes, message sequence and loss draws are all
   byte-identical; only the virtual-time accounting changes. Waves that
   additionally satisfy [Engine.domain_eligible] run on real domains with
   buffered effects replayed in declaration order, which is again
   observationally the same stream. *)

open Dol_ast

let akey = String.lowercase_ascii

(* ---- per-statement read/write summary ------------------------------------- *)

type rw = {
  status_reads : string list;  (* task/move statuses consulted *)
  status_writes : string list; (* statuses (and namespaced resources) set *)
  aliases : (string * bool) list;
      (* connection aliases used; [true] = shareable MOVE-destination use
         (concurrent MOVEs may funnel into one destination alias — the
         per-connection mutex serializes the receiving side), [false] =
         exclusive use (OPEN/CLOSE lifecycle, task session, MOVE source) *)
  decision : bool;  (* COMMIT/ABORT: appends to the global recovery log *)
  dolstatus : bool; (* SET DOLSTATUS: last-writer-wins global *)
}

let rw_empty =
  {
    status_reads = [];
    status_writes = [];
    aliases = [];
    decision = false;
    dolstatus = false;
  }

let rw_union a b =
  {
    status_reads = a.status_reads @ b.status_reads;
    status_writes = a.status_writes @ b.status_writes;
    aliases = a.aliases @ b.aliases;
    decision = a.decision || b.decision;
    dolstatus = a.dolstatus || b.dolstatus;
  }

let rec cond_reads = function
  | Status_is (t, _) -> [ akey t ]
  | Not c -> cond_reads c
  | And (a, b) | Or (a, b) -> cond_reads a @ cond_reads b

(* name -> connection alias, for resolving which connection a COMMIT/ABORT
   list touches; collected over the whole program, nested blocks included *)
let rec collect_targets tbl = function
  | Task t -> Hashtbl.replace tbl (akey t.tname) (akey t.target)
  | Move m -> Hashtbl.replace tbl (akey m.mname) (akey m.src)
  | Comp c -> Hashtbl.replace tbl (akey c.cname) (akey c.target)
  | Parallel ss -> List.iter (collect_targets tbl) ss
  | If (_, a, b) ->
      List.iter (collect_targets tbl) a;
      List.iter (collect_targets tbl) b
  | Open _ | Close _ | Commit_tasks _ | Abort_tasks _ | Set_status _ -> ()

let rec stmt_rw tmap = function
  | Open { alias; _ } -> { rw_empty with aliases = [ (akey alias, false) ] }
  | Close als ->
      { rw_empty with aliases = List.map (fun a -> (akey a, false)) als }
  | Task t ->
      {
        rw_empty with
        status_writes = [ akey t.tname ];
        aliases = [ (akey t.target, false) ];
      }
  | Move m ->
      {
        rw_empty with
        status_writes =
          [
            akey m.mname;
            (* two MOVEs landing in the same destination table must not
               overlap; the ':' makes the key disjoint from task names *)
            "tbl:" ^ akey m.dst ^ ":" ^ akey m.dest_table;
          ];
        aliases = [ (akey m.src, false); (akey m.dst, true) ];
      }
  | Comp c ->
      let compensated =
        Option.fold ~none:[] ~some:(fun t -> [ akey t ]) c.compensates
      in
      {
        rw_empty with
        status_reads = compensated;
        (* a firing compensation rewrites the compensated status to X *)
        status_writes = akey c.cname :: compensated;
        aliases = [ (akey c.target, false) ];
      }
  | If (c, a, b) ->
      let body =
        List.fold_left
          (fun acc s -> rw_union acc (stmt_rw tmap s))
          rw_empty (a @ b)
      in
      { body with status_reads = cond_reads c @ body.status_reads }
  | Commit_tasks ns | Abort_tasks ns ->
      let ns = List.map akey ns in
      {
        rw_empty with
        status_reads = ns;
        status_writes = ns;
        aliases =
          List.filter_map
            (fun n ->
              Option.map (fun a -> (a, false)) (Hashtbl.find_opt tmap n))
            ns;
        decision = true;
      }
  | Parallel ss ->
      List.fold_left (fun acc s -> rw_union acc (stmt_rw tmap s)) rw_empty ss
  | Set_status _ -> { rw_empty with dolstatus = true }

(* Do two statements interfere? Order-sensitive whenever one writes what
   the other reads or writes, they share a connection in a non-shareable
   way, or both touch an order-sensitive global. *)
let conflicts a b =
  let inter xs ys = List.exists (fun x -> List.mem x ys) xs in
  inter a.status_writes b.status_writes
  || inter a.status_writes b.status_reads
  || inter a.status_reads b.status_writes
  || (a.decision && b.decision)
  || (a.dolstatus && b.dolstatus)
  || List.exists
       (fun (al, a_shared) ->
         List.exists
           (fun (bl, b_shared) ->
             String.equal al bl && not (a_shared && b_shared))
           b.aliases)
       a.aliases

(* ---- DAG over one statement sequence --------------------------------------- *)

type node = { idx : int; stmt : stmt; rw : rw }

type t = {
  nodes : node array;
  edges : (int * int) list;  (* transitively reduced, i < j *)
  waves : int list list;     (* order-preserving grouping, node indices *)
  critical_path : int list;  (* one longest dependency chain, in order *)
}

type stats = {
  nodes : int;
  edges : int;
  waves : int;  (* waves of >= 2 statements formed *)
  critical_path_len : int;
}

(* nested PARBEGIN blocks dissolve into their members: plangen's
   one-block-per-query boundaries are exactly what the DAG is meant to see
   through. IF statements stay opaque nodes here (their branches carry
   their own DAGs — see [schedule]). A multi-alias CLOSE splits into
   singleton closes: the engine releases its aliases one at a time in list
   order, which is exactly how the sequential combinator runs the split
   statements, so the split is effect-for-effect identical (including the
   unopened-alias error case) while letting independent closes share a
   wave. Duplicate aliases conflict with themselves and stay serial. *)
let rec flatten stmts =
  List.concat_map
    (function
      | Parallel inner -> flatten inner
      | Close (_ :: _ :: _ as als) -> List.map (fun a -> Close [ a ]) als
      | s -> [ s ])
    stmts

let analyze_seq tmap stmts =
  let nodes =
    Array.of_list
      (List.mapi (fun i s -> { idx = i; stmt = s; rw = stmt_rw tmap s }) stmts)
  in
  let n = Array.length nodes in
  let dep = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      dep.(i).(j) <- conflicts nodes.(i).rw nodes.(j).rw
    done
  done;
  (* transitive reduction: drop i->j when some k between them carries it *)
  let reduced = Array.map Array.copy dep in
  for i = 0 to n - 1 do
    for j = i + 2 to n - 1 do
      if reduced.(i).(j) then
        let k = ref (i + 1) in
        let implied = ref false in
        while (not !implied) && !k < j do
          if dep.(i).(!k) && dep.(!k).(j) then implied := true;
          incr k
        done;
        if !implied then reduced.(i).(j) <- false
    done
  done;
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if reduced.(i).(j) then edges := (i, j) :: !edges
    done
  done;
  (* order-preserving maximal waves: extend the current wave while the
     next statement is independent of every member. Weightless statements
     (SET DOLSTATUS advances no clock and talks to no site) stay solo:
     serializing them is free, and pulling one into a wave of tasks would
     cost the block its domain eligibility (Task/Move members only). *)
  let weightless = function Set_status _ -> true | _ -> false in
  let waves = ref [] and wave = ref [] in
  let flush () =
    if !wave <> [] then begin
      waves := List.rev !wave :: !waves;
      wave := []
    end
  in
  for j = 0 to n - 1 do
    if weightless nodes.(j).stmt then begin
      flush ();
      waves := [ j ] :: !waves
    end
    else begin
      if List.exists (fun i -> dep.(i).(j)) !wave then flush ();
      wave := j :: !wave
    end
  done;
  flush ();
  let waves = List.rev !waves in
  (* longest chain through the full dependency relation *)
  let len = Array.make n 1 and pred = Array.make n (-1) in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if dep.(i).(j) && len.(i) + 1 > len.(j) then begin
        len.(j) <- len.(i) + 1;
        pred.(j) <- i
      end
    done
  done;
  let tail = ref 0 in
  for j = 1 to n - 1 do
    if len.(j) > len.(!tail) then tail := j
  done;
  let critical_path =
    if n = 0 then []
    else begin
      let path = ref [] and j = ref !tail in
      while !j >= 0 do
        path := !j :: !path;
        j := pred.(!j)
      done;
      !path
    end
  in
  { nodes; edges = !edges; waves; critical_path }

let analyze program =
  let tmap = Hashtbl.create 16 in
  List.iter (collect_targets tmap) program;
  analyze_seq tmap (flatten program)

(* ---- wave scheduling -------------------------------------------------------- *)

let zero_stats = { nodes = 0; edges = 0; waves = 0; critical_path_len = 0 }

let add_stats a b =
  {
    nodes = a.nodes + b.nodes;
    edges = a.edges + b.edges;
    waves = a.waves + b.waves;
    critical_path_len = max a.critical_path_len b.critical_path_len;
  }

(* Regroup [program] into waves, recursing into IF branches (each branch
   is its own sequence: it runs only when the condition says so, and
   always after the condition's inputs settled). The critical-path length
   reported is the top-level program's. *)
let schedule program =
  let tmap = Hashtbl.create 16 in
  List.iter (collect_targets tmap) program;
  let acc = ref zero_stats in
  let rec go ~top stmts =
    let stmts =
      List.map
        (function If (c, a, b) -> If (c, go ~top:false a, go ~top:false b) | s -> s)
        (flatten stmts)
    in
    let g = analyze_seq tmap stmts in
    let wide = List.length (List.filter (fun w -> List.length w >= 2) g.waves) in
    let here =
      {
        nodes = Array.length g.nodes;
        edges = List.length g.edges;
        waves = wide;
        critical_path_len =
          (if top then List.length g.critical_path else 0);
      }
    in
    acc := add_stats !acc here;
    List.map
      (fun w ->
        match List.map (fun i -> g.nodes.(i).stmt) w with
        | [ single ] -> single
        | members -> Parallel members)
      g.waves
  in
  let program = go ~top:true program in
  (program, !acc)

(* ---- rendering (EXPLAIN MULTIPLE) ------------------------------------------ *)

let label = function
  | Open { service; alias; _ } -> Printf.sprintf "OPEN %s AS %s" service alias
  | Close als -> "CLOSE " ^ String.concat ", " als
  | Task t -> Printf.sprintf "TASK %s FOR %s" t.tname t.target
  | Parallel ss -> Printf.sprintf "PARBEGIN[%d]" (List.length ss)
  | If (c, _, _) -> Printf.sprintf "IF %s" (Dol_pp.cond_to_string c)
  | Commit_tasks ns -> "COMMIT " ^ String.concat ", " ns
  | Abort_tasks ns -> "ABORT " ^ String.concat ", " ns
  | Comp c -> Printf.sprintf "COMP %s FOR %s" c.cname c.target
  | Move m -> Printf.sprintf "MOVE %s %s -> %s.%s" m.mname m.src m.dst m.dest_table
  | Set_status n -> Printf.sprintf "DOLSTATUS %d" n

let describe program =
  let g = analyze program in
  let b = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "nodes: %d, edges: %d, waves: %d, critical path: %d stage(s)\n"
    (Array.length g.nodes) (List.length g.edges) (List.length g.waves)
    (List.length g.critical_path);
  Array.iter
    (fun nd ->
      let deps = List.filter_map (fun (i, j) -> if j = nd.idx then Some i else None) g.edges in
      addf "  [%d] %s%s\n" nd.idx (label nd.stmt)
        (match deps with
        | [] -> ""
        | deps ->
            "  <- " ^ String.concat ", " (List.map string_of_int deps)))
    g.nodes;
  List.iteri
    (fun k w ->
      addf "wave %d: {%s}\n" (k + 1)
        (String.concat ", " (List.map string_of_int w)))
    g.waves;
  if g.critical_path <> [] then
    addf "critical path: %s\n"
      (String.concat " -> " (List.map string_of_int g.critical_path));
  Buffer.contents b
