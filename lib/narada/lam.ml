module World = Netsim.World
module Inject = Ldbms.Failure_injector

type on_retry =
  op:string -> attempt:int -> delay_ms:float -> reason:string -> unit

type t = {
  service : Service.t;
  session : Ldbms.Session.t;
  world : World.t;
  policy : Retry_policy.t;
  on_retry : on_retry;
  on_trace : (Trace.event -> unit) option;
      (* sink for the session's MVCC observations (snapshots, write-write
         conflicts), translated into typed trace events *)
  lock : Mutex.t;
      (* serializes local work on this connection when parallel MOVE
         branches on separate domains share it as their destination: the
         semijoin probe reads and the materialize writes the same
         database. [with_policy] copies share the mutex. *)
}

(* The session cannot name Trace (layering: ldbms knows nothing of the
   multidatabase), so it reports through its own observation type and the
   LAM translates at the transport boundary, stamping the virtual clock. *)
let install_observer t =
  Ldbms.Session.set_observer t.session
    (match t.on_trace with
    | None -> None
    | Some sink ->
        let s = t.service.Service.site in
        Some
          (fun obs ->
            let kind =
              match obs with
              | Ldbms.Session.Obs_snapshot ts -> Trace.Snapshot { site = s; ts }
              | Ldbms.Session.Obs_conflict { table; op } ->
                  Trace.Conflict { site = s; table; op }
              | Ldbms.Session.Obs_parallel
                  { op; partitions; build_rows; probe_rows } ->
                  Trace.Parallel
                    { site = s; op; partitions; build_rows; probe_rows }
            in
            sink { Trace.at_ms = World.now_ms t.world; kind; tag = None }))

type failure =
  | Local of string
  | Network of string
  | Lost of string
  | In_doubt of string

let failure_message = function
  | Local m -> m
  | Network m -> m
  | Lost m -> m
  | In_doubt m -> m

(* transport failures are always worth another attempt; local aborts only
   when the LDBMS marked them transient (deadlock victim, lock timeout).
   In_doubt failures are never retried: effects may already be durable. *)
let classify_io = function
  | Network m | Lost m -> Retry_policy.Retryable m
  | Local m | In_doubt m -> Retry_policy.Terminal m

let classify_local_aware = function
  | Network m | Lost m -> Retry_policy.Retryable m
  | In_doubt m -> Retry_policy.Terminal m
  | Local m ->
      if Inject.is_transient_message m then Retry_policy.Retryable m
      else Retry_policy.Terminal m

let handshake_bytes = 64
let ack_bytes = 16

let guard_site f =
  match f () with
  | r -> r
  | exception World.Site_down s ->
      Error (Network (Printf.sprintf "site %s is down" s))
  | exception World.Unknown_site s ->
      Error (Network (Printf.sprintf "unknown site %s" s))
  | exception World.Lost_message (src, dst) ->
      Error (Lost (Printf.sprintf "message %s -> %s lost" src dst))

let no_on_retry ~op:_ ~attempt:_ ~delay_ms:_ ~reason:_ = ()

let connect ?(retry = Retry_policy.default) ?(on_retry = no_on_retry) ?on_trace
    world service =
  let dst = service.Service.site in
  Retry_policy.run retry world
    ~key:("connect:" ^ dst)
    ~classify:classify_local_aware
    ~on_retry:(fun ~attempt ~delay_ms ~reason ->
      on_retry ~op:"connect" ~attempt ~delay_ms ~reason)
    (fun () ->
      guard_site (fun () ->
          World.send world ~src:"mdbs" ~dst ~bytes:handshake_bytes;
          match Inject.fires_kind service.Service.injector Inject.At_connect with
          | Some Inject.Transient ->
              Error
                (Local (Inject.transient_marker ^ " connection refused by service"))
          | Some Inject.Fatal -> Error (Local "connection refused by service")
          | None ->
              let t =
                {
                  service;
                  session =
                    Ldbms.Session.connect ~injector:service.Service.injector
                      service.Service.database service.Service.caps;
                  world;
                  policy = retry;
                  on_retry;
                  on_trace;
                  lock = Mutex.create ();
                }
              in
              install_observer t;
              Ok t))

let connect_exn world service =
  match connect ~retry:Retry_policy.none world service with
  | Ok t -> t
  | Error f -> failwith (failure_message f)

let service t = t.service
let session t = t.session
let site t = t.service.Service.site
let world t = t.world

let with_policy ?(retry = Retry_policy.default) ?(on_retry = no_on_retry)
    ?on_trace t =
  (* a pooled connection outlives the engine run that opened it: rebind
     the policy and observers so retries and MVCC observations are charged
     to the current run, not to the defunct one that originally connected *)
  let t = { t with policy = retry; on_retry; on_trace } in
  install_observer t;
  t

let with_retry t ~op ~classify f =
  Retry_policy.run t.policy t.world
    ~key:(op ^ ":" ^ site t)
    ~classify
    ~on_retry:(fun ~attempt ~delay_ms ~reason ->
      t.on_retry ~op ~attempt ~delay_ms ~reason)
    f

let result_bytes = function
  | Ldbms.Session.Rows r -> Sqlcore.Relation.size_bytes r + ack_bytes
  | Ldbms.Session.Affected _ | Ldbms.Session.Done -> ack_bytes

let exec_script t script =
  (* A retry is only sound when the site's state is known: either the
     command never arrived, or the LDBMS rolled the work back (local abort,
     or the orphaned-transaction abort it performs on connection loss).
     When effects may already be durable (autocommit engine, or a script
     that committed/prepared) a transport failure is terminal. *)
  let unsafe = ref false in
  let r =
    with_retry t ~op:"exec"
      ~classify:(fun f ->
        if !unsafe then Retry_policy.Terminal (failure_message f)
        else classify_local_aware f)
      (fun () ->
      unsafe := false;
      let executed = ref false in
      let r =
        guard_site (fun () ->
            World.send t.world ~src:"mdbs" ~dst:(site t)
              ~bytes:(String.length script);
            match Ldbms.Session.exec_script t.session script with
            | Ok results ->
                executed := true;
                let bytes =
                  List.fold_left (fun a r -> a + result_bytes r) 0 results
                in
                World.send t.world ~src:(site t) ~dst:"mdbs" ~bytes;
                Ok results
            | Error m ->
                World.send t.world ~src:(site t) ~dst:"mdbs" ~bytes:ack_bytes;
                Error (Local m))
      in
      (match r with
      | Error (Network _ | Lost _) when !executed -> (
          match Ldbms.Session.txn_state t.session with
          | Some Ldbms.Txn.Active ->
              (* connection lost with an uncommitted transaction open: the
                 LDBMS aborts it autonomously, so re-execution is clean *)
              ignore (Ldbms.Session.rollback t.session)
          | Some _ | None ->
              (* committed or prepared work may survive at the site *)
              unsafe := true)
      | Ok _ | Error _ -> ());
      r)
  in
  (* when effects may already be durable at the site, a transport failure
     leaves the local state genuinely unknown — report it as such, so the
     caller does not treat it as a clean (presumed-abort) failure *)
  match r with
  | Error (Network m | Lost m) when !unsafe -> Error (In_doubt m)
  | r -> r

let last_relation results =
  List.fold_left
    (fun acc r ->
      match r with Ldbms.Session.Rows rel -> Some rel | _ -> acc)
    None results

(* 2PC verbs are idempotent at the session (prepare of a prepared
   transaction, commit/rollback with no open transaction all succeed), so
   a lost acknowledgement is retried blindly. *)
let round_trip t ~op f =
  with_retry t ~op ~classify:classify_io (fun () ->
      guard_site (fun () ->
          World.send t.world ~src:"mdbs" ~dst:(site t) ~bytes:ack_bytes;
          let r = f () in
          World.send t.world ~src:(site t) ~dst:"mdbs" ~bytes:ack_bytes;
          match r with Ok () -> Ok () | Error m -> Error (Local m)))

let prepare t = round_trip t ~op:"prepare" (fun () -> Ldbms.Session.prepare t.session)
let commit t = round_trip t ~op:"commit" (fun () -> Ldbms.Session.commit t.session)
let rollback t = round_trip t ~op:"rollback" (fun () -> Ldbms.Session.rollback t.session)

let fetch t query =
  match exec_script t query with
  | Error f -> Error f
  | Ok results -> (
      match last_relation results with
      | Some rel -> Ok rel
      | None -> Error (Local "query did not produce rows"))

(* Restrict [query] to rows whose [col] is among [keys]: parse, conjoin an
   IN list onto the WHERE clause, print back. An empty key set means no
   source row can join, so the restriction becomes a contradiction and the
   source ships nothing but the (empty) relation's schema. *)
let restrict_query ~col keys query =
  let module A = Sqlfront.Ast in
  match Sqlfront.Parser.parse_select query with
  | exception _ -> query
  | sel ->
      let col_expr =
        match String.index_opt col '.' with
        | Some i ->
            A.Col
              {
                qualifier = Some (String.sub col 0 i);
                name = String.sub col (i + 1) (String.length col - i - 1);
              }
        | None -> A.Col { qualifier = None; name = col }
      in
      let restriction =
        match keys with
        | [] -> A.Binop (A.Eq, A.lit_int 0, A.lit_int 1)
        | ks ->
            A.In_list
              {
                arg = col_expr;
                items = List.map (fun v -> A.Lit v) ks;
                negated = false;
              }
      in
      let where =
        match sel.A.where with
        | None -> Some restriction
        | Some w -> Some (A.Binop (A.And, w, restriction))
      in
      Sqlfront.Sql_pp.select_to_string { sel with A.where }

(* ---- MOVE chunk streaming -------------------------------------------------

   A shipped subrelation no longer travels as one opaque message: the
   source serializes fixed-size row groups and streams them under a
   credit-based flow-control window — the destination grants [window]
   chunk credits up front and refreshes each credit with the (free,
   piggybacked) acknowledgement of a consumed chunk, so at most [window]
   chunks are in flight or buffered at the receiver and a slow destination
   backpressures the source instead of absorbing the whole relation.
   Materialization happens as chunks arrive; the engine's single
   destination-table load at stream end keeps the transfer idempotent
   under retry.

   In virtual time the stream is ONE logical message ({!World.send_chunked}):
   the loss draw, message count, total bytes and clock advance are exactly
   the monolithic send's, so results, traffic and metrics are invariant in
   both the chunk size and the window — only the typed [Trace.Chunk]
   events observe the schedule. *)

let move_chunk_rows = ref 512  (* rows per chunk; <= 0 restores monolithic *)
let move_window = ref 4  (* in-flight chunk credits *)

let set_move_streaming ?chunk_rows ?window () =
  Option.iter (fun v -> move_chunk_rows := v) chunk_rows;
  Option.iter (fun v -> move_window := max 1 v) window

let move_streaming () = (!move_chunk_rows, !move_window)

type chunk_note = {
  ck_seq : int;  (* 1-based *)
  ck_total : int;
  ck_rows : int;
  ck_bytes : int;
  ck_at_ms : float;  (* virtual completion instant of this chunk *)
  ck_window : int;
}

(* row groups of at most [chunk_rows] rows as (bytes, rows) pairs, bytes
   being the exact sum of the member rows' wire sizes — the installments
   sum to [Relation.size_bytes] by construction. An empty relation still
   ships one (schema-only) chunk so the stream has a final installment to
   carry the ack. *)
let chunk_groups ~chunk_rows rel =
  let groups = ref [] and cur_b = ref 0 and cur_n = ref 0 in
  List.iter
    (fun r ->
      cur_b := !cur_b + Sqlcore.Row.size_bytes r;
      incr cur_n;
      if !cur_n = chunk_rows then begin
        groups := (!cur_b, !cur_n) :: !groups;
        cur_b := 0;
        cur_n := 0
      end)
    (Sqlcore.Relation.rows rel);
  if !cur_n > 0 then groups := (!cur_b, !cur_n) :: !groups;
  match List.rev !groups with [] -> [ (0, 0) ] | gs -> gs

type transfer_cache = {
  tc_lookup :
    src:string -> dst:string -> query:string -> Sqlcore.Relation.t option;
  tc_store :
    src:string -> dst:string -> query:string -> Sqlcore.Relation.t -> unit;
}

type transfer_stats = {
  moved_rows : int;
  moved_bytes : int;
  reduced : bool;
  cached : bool;
}

let transfer ~on_chunk ~cache ~reduce ~src ~dst ~query ~dest_table =
  (* Semijoin reduction: fetch the distinct join-key values from the
     destination (the coordinator already holds its side of the join) and
     rewrite the shipped query's WHERE with them. The probe's cost — query
     to [dst], key set back — is charged to the network like any fetch, so
     the bytes_moved ledger reflects the real SDD-1 tradeoff. Best-effort:
     if the probe fails, the MOVE proceeds unreduced. *)
  (* parallel MOVEs into the same coordinator run on separate domains but
     share [dst]: its session (probe) and database (materialize) are
     serialized under the connection's mutex. Virtual time is unaffected —
     each branch charges its own clock frame. *)
  let locked_dst f =
    Mutex.lock dst.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock dst.lock) f
  in
  let query, reduced =
    match reduce with
    | None -> (query, false)
    | Some (col, probe) -> (
        match locked_dst (fun () -> fetch dst probe) with
        | Error _ -> (query, false)
        | Ok rel ->
            let keys =
              List.filter_map
                (fun row ->
                  let v = Sqlcore.Row.get row 0 in
                  if Sqlcore.Value.is_null v then None else Some v)
                (Sqlcore.Relation.rows rel)
            in
            (restrict_query ~col keys query, true))
  in
  let src_name = src.service.Service.service_name in
  let dst_name = dst.service.Service.service_name in
  let materialize rel =
    locked_dst (fun () ->
        Ldbms.Database.load
          dst.service.Service.database
          ~name:dest_table
          (Sqlcore.Relation.schema rel)
          (Sqlcore.Relation.rows rel));
    Sqlcore.Relation.cardinality rel
  in
  (* Shipped-result cache: the key is the final query text — after the
     semijoin rewrite, so the key set is part of the key — plus both
     endpoints. A hit re-materializes the relation at the destination
     without touching the network or the source at all: zero messages,
     zero bytes, zero virtual time. The destination must still be
     reachable (the engine is about to run the coordinator join there). *)
  let cached =
    match cache with
    | Some c when not (World.is_down dst.world (site dst)) ->
        c.tc_lookup ~src:src_name ~dst:dst_name ~query
    | Some _ | None -> None
  in
  match cached with
  | Some rel ->
      Ok { moved_rows = materialize rel; moved_bytes = 0; reduced; cached = true }
  | None ->
      (* command goes engine -> src; data goes src -> dst directly. The
         source query is a SELECT and the destination load replaces the
         table, so the whole transfer is idempotent and retried as a
         unit. *)
      with_retry src ~op:"transfer" ~classify:classify_local_aware (fun () ->
          match
            guard_site (fun () ->
                World.send src.world ~src:"mdbs" ~dst:(site src)
                  ~bytes:(String.length query);
                match Ldbms.Session.exec_sql src.session query with
                | Ok (Ldbms.Session.Rows rel) -> Ok rel
                | Ok _ -> Error (Local "MOVE query did not produce rows")
                | Error m -> Error (Local m))
          with
          | Error f -> Error f
          | Ok rel -> (
              let chunk_rows = !move_chunk_rows and window = !move_window in
              match
                guard_site (fun () ->
                    if chunk_rows <= 0 then begin
                      (* monolithic legacy path *)
                      World.send dst.world ~src:(site src) ~dst:(site dst)
                        ~bytes:(Sqlcore.Relation.size_bytes rel + ack_bytes);
                      Ok ()
                    end
                    else begin
                      let groups = chunk_groups ~chunk_rows rel in
                      (* the final installment carries the stream ack *)
                      let rec with_ack = function
                        | [ (b, n) ] -> [ (b + ack_bytes, n) ]
                        | g :: rest -> g :: with_ack rest
                        | [] -> assert false
                      in
                      let groups = with_ack groups in
                      let times =
                        World.send_chunked dst.world ~src:(site src)
                          ~dst:(site dst) ~chunks:(List.map fst groups)
                      in
                      (* chunk observations only for a delivered stream: a
                         loss raises above, before any chunk completed *)
                      (match on_chunk with
                      | Some f ->
                          let total = List.length groups in
                          List.iteri
                            (fun i ((bytes, rows), at_ms) ->
                              f
                                {
                                  ck_seq = i + 1;
                                  ck_total = total;
                                  ck_rows = rows;
                                  ck_bytes = bytes;
                                  ck_at_ms = at_ms;
                                  ck_window = window;
                                })
                            (List.combine groups times)
                      | None -> ());
                      Ok ()
                    end)
              with
              | Error f -> Error f
              | Ok () ->
                  (match cache with
                  | Some c -> c.tc_store ~src:src_name ~dst:dst_name ~query rel
                  | None -> ());
                  Ok
                    {
                      moved_rows = materialize rel;
                      moved_bytes = Sqlcore.Relation.size_bytes rel;
                      reduced;
                      cached = false;
                    }))

let disconnect t =
  (* The LDBMS aborts an orphaned {e active} transaction when the session
     goes away; a {e prepared} transaction must survive — the participant
     promised to await the coordinator's decision, and unilaterally
     rolling it back could contradict a commit verdict already logged.
     Undecided prepared work is the engine's to settle (presumed abort). *)
  (match Ldbms.Session.txn_state t.session with
  | Some Ldbms.Txn.Active -> ignore (Ldbms.Session.rollback t.session)
  | Some _ | None -> ());
  if not (World.is_down t.world (site t)) then
    match
      guard_site (fun () ->
          World.send t.world ~src:"mdbs" ~dst:(site t) ~bytes:ack_bytes;
          Ok ())
    with
    | Ok () | Error _ -> ()
