(** Retry with exponential backoff against the virtual clock.

    Transient failures (a site inside an outage window, a lost message, a
    deadlock-victim abort) deserve another attempt; terminal ones (a
    semantic error, a genuine local abort) do not. The policy bounds both
    the number of attempts and the total virtual time an operation may
    consume, and its jitter is a deterministic function of the operation
    key — the same program against the same seeded world always produces
    the same schedule. *)

type t = {
  max_attempts : int;  (** total attempts, including the first *)
  base_backoff_ms : float;  (** delay before the second attempt *)
  multiplier : float;  (** backoff growth per attempt *)
  max_backoff_ms : float;  (** cap on a single delay *)
  jitter : float;  (** +- fraction applied deterministically per key/attempt *)
  budget_ms : float;  (** max virtual time from first attempt to last retry *)
}

type classification = Retryable of string | Terminal of string

val default : t
(** 4 attempts, 5 ms base, x2 growth capped at 80 ms, 25% jitter, 250 ms
    budget. *)

val none : t
(** A single attempt: disables retry. *)

val aggressive : t
(** 6 attempts and a 1 s budget, for chaos benchmarking. *)

val backoff_ms : t -> key:string -> attempt:int -> float
(** The (jittered) delay charged before attempt [attempt + 1]. *)

val run :
  t ->
  Netsim.World.t ->
  key:string ->
  classify:('e -> classification) ->
  ?on_retry:(attempt:int -> delay_ms:float -> reason:string -> unit) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e) result
(** [run p world ~key ~classify f] calls [f] until it succeeds, fails
    terminally, exhausts [p.max_attempts], or would exceed [p.budget_ms]
    of virtual time. Each backoff advances [world]'s clock; [on_retry]
    fires once per re-attempt (after the delay is charged). *)
