open Dol_ast

let rec cond_to_string = function
  | Status_is (t, s) -> Printf.sprintf "(%s=%s)" t (status_to_string s)
  | Not c -> Printf.sprintf "NOT %s" (cond_to_string c)
  | And (a, b) -> Printf.sprintf "%s AND %s" (cond_to_string a) (cond_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (cond_to_string a) (cond_to_string b)

let rec emit_stmt buf indent stmt =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match stmt with
  | Open { service; open_site; alias } -> (
      match open_site with
      | Some site -> line "OPEN %s AT %s AS %s;" service site alias
      | None -> line "OPEN %s AS %s;" service alias)
  | Close aliases -> line "CLOSE %s;" (String.concat " " aliases)
  | Task { tname; mode; target; commands } ->
      line "TASK %s%s FOR %s" tname
        (match mode with No_commit -> " NOCOMMIT" | With_commit -> "")
        target;
      line "  { %s }" commands;
      line "ENDTASK;"
  | Parallel stmts ->
      line "PARBEGIN";
      List.iter (emit_stmt buf (indent + 2)) stmts;
      line "PAREND;"
  | If (cond, then_b, else_b) ->
      line "IF %s THEN" (cond_to_string cond);
      line "BEGIN";
      List.iter (emit_stmt buf (indent + 2)) then_b;
      line "END;";
      if else_b <> [] then begin
        line "ELSE";
        line "BEGIN";
        List.iter (emit_stmt buf (indent + 2)) else_b;
        line "END;"
      end
  | Commit_tasks names -> line "COMMIT %s;" (String.concat ", " names)
  | Abort_tasks names -> line "ABORT %s;" (String.concat ", " names)
  | Comp { cname; compensates; target; commands } ->
      line "COMP %s%s FOR %s" cname
        (match compensates with Some t -> " COMPENSATES " ^ t | None -> "")
        target;
      line "  { %s }" commands;
      line "ENDCOMP;"
  | Move { mname; src; dst; dest_table; query; reduce } ->
      line "MOVE %s FROM %s TO %s TABLE %s" mname src dst dest_table;
      line "  { %s }" query;
      (match reduce with
      | None -> ()
      | Some (col, probe) ->
          line "  SEMIJOIN { %s } PROBE { %s }" col probe);
      line "ENDMOVE;"
  | Set_status n -> line "DOLSTATUS = %d; -- return code" n

let program_to_string prog =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "DOLBEGIN\n";
  List.iter (emit_stmt buf 2) prog;
  Buffer.add_string buf "DOLEND\n";
  Buffer.contents buf

let pp_program ppf prog = Format.pp_print_string ppf (program_to_string prog)
