(** Typed trace events emitted by the engine, the connection pool and the
    LAM layer, timestamped with the virtual clock.

    The engine's historical string trace ([Engine.run ~on_event]) is now a
    {!render}ing of this stream: every string the engine ever printed is
    [render] of some event, so textual consumers are unaffected while
    structured consumers ([Engine.run ~on_trace], the [Msql.Metrics]
    registry) can match on {!kind} instead of parsing. *)

type verdict = Commit | Abort

type kind =
  | Opened of { service : string; site : string; alias : string; pooled : bool }
      (** OPEN established a session; [pooled] when it was an idle pool
          connection rather than a fresh dial. *)
  | Open_failed of { service : string; reason : string }
  | Closed of { alias : string }
      (** The session behind [alias] was released — by CLOSE or by the
          end-of-program epilogue. *)
  | Status of { task : string; status : Dol_ast.status }
      (** A task status transition (the [t1 -> P] lines). *)
  | Branch of { cond : string; taken : bool }  (** An IF was evaluated. *)
  | Moved of {
      mname : string;
      src : string;
      dst : string;
      dest_table : string;
      rows : int;
      bytes : int;  (** payload bytes shipped; [0] on a cache hit *)
      reduced : bool;  (** the semijoin rewrite restricted the query *)
      cached : bool;  (** served from the shipped-result cache *)
    }  (** A MOVE completed. *)
  | Chunk of {
      mname : string;
      src : string;
      dst : string;
      seq : int;  (** 1-based position in the stream *)
      total : int;  (** chunks in the stream *)
      rows : int;
      bytes : int;  (** this installment's payload *)
      window : int;  (** the sender's in-flight credit window *)
    }
      (** One installment of a chunk-streamed MOVE was delivered,
          timestamped with its virtual completion instant. Emitted only
          for streams that complete — a lost message aborts the logical
          transfer before any chunk is observable — and always followed
          by the stream's {!Moved} summary, which carries the totals the
          metrics fold on. *)
  | Retry of {
      op : string;
      site : string;
      attempt : int;
      delay_ms : float;
      reason : string;
    }  (** A retried operation, as observed via [Lam]'s retry callback. *)
  | Decision of { verdict : verdict; tasks : string list }
      (** The coordinator logged its global 2PC verdict over the prepared
          tasks, before driving the second phase. *)
  | Recovered of { task : string; site : string; verdict : verdict }
      (** An in-doubt transaction was driven to its logged verdict. *)
  | Pool_stale of { service : string; site : string }
      (** The pool discarded an idle connection that went stale. *)
  | Cache of { layer : string; hit : bool; key : string }
      (** A cache consultation; [layer] is ["pool"], ["plan"] or
          ["result"]. *)
  | Snapshot of { site : string; ts : int }
      (** A local transaction began and acquired an MVCC snapshot at the
          site ([ts] is the site-local commit timestamp it reads at). *)
  | Conflict of { site : string; table : string; op : string }
      (** A local transaction lost a first-committer-wins write-write race
          on [table]; [op] is where the race was detected (["write"],
          ["prepare"] or ["commit"]). The victim was rolled back. *)
  | Conflict_abort of { task : string; site : string }
      (** A task aborted terminally because of a write-write conflict (its
          retries, if any, were exhausted). *)
  | Parallel of {
      site : string;
      op : string;  (** ["join"] or ["filter"] *)
      partitions : int;
      build_rows : int;  (** [0] for a filter *)
      probe_rows : int;  (** input rows for a filter *)
    }
      (** The site's executor ran an intra-operator parallel hash join or
          chunked WHERE scan. Emitted only when the parallel path actually
          ran; the partition count is a pure function of the data and the
          executor knobs, so the event stream is byte-identical at any
          pool width. *)
  | Wave of {
      branches : int;
      crit_ms : float;  (** slowest branch: the wave's critical path *)
      serial_ms : float;
          (** sum of branch durations: what serial execution would cost *)
    }
      (** A [PARBEGIN] block of two or more branches joined. Durations are
          virtual and derived from each branch's clock frame, so the event
          is byte-identical whether the wave ran on the sequential
          combinator or on a domain pool of any width. *)
  | Dolstatus of int
  | Note of string
      (** Free-form diagnostics that have no structured shape (recovery
          narration, split settlement, ...). *)

type event = {
  at_ms : float;
  kind : kind;
  tag : string option;
      (** Attribution label, e.g. the server's session id. [None] for
          every event emitted by a bare session — the field exists so a
          multi-session consumer (the MSQL server) can stamp each event
          with the session that produced it before the streams merge.
          {!render} ignores it, keeping the historical text stable. *)
}

val make : ?tag:string -> at_ms:float -> kind -> event

val with_tag : string -> event -> event
(** Stamp the tag unless one is already present (first writer wins: an
    event attributed by an inner layer keeps its attribution). *)

val verdict_to_string : verdict -> string
val status_of_verdict : verdict -> Dol_ast.status

val render_kind : kind -> string
(** The message text without the timestamp prefix. *)

val render : event -> string
(** The full historical line: [Printf.sprintf "[%8.2f ms] %s"]. *)
