(** LAM connection pool: amortizes the per-statement OPEN/CLOSE round
    trips of a long-lived session.

    Every generated DOL program begins by OPENing its participating
    services and ends by CLOSEing them, so a stream of statements pays a
    connect handshake per service per statement. A pool owned by the
    multidatabase session turns that into one handshake per service per
    {e lifetime}: {!checkout} hands back an idle healthy connection
    instead of dialing, and {!checkin} parks the connection instead of
    hanging up.

    Health of an idle connection is validated at checkout, never assumed:
    the site must be up {e now}, must not have been down at any point
    since the connection was parked ({!Netsim.World.down_during} — an
    outage while idle breaks the transport even if the site has since
    recovered), and the session must hold no transaction. Stale
    connections are discarded (their orphaned active transaction rolled
    back, as the LDBMS does autonomously when a session dies) and a fresh
    connection is dialed transparently.

    A pool may be shared by many sessions (the MSQL server checks every
    session's OPENs out of one pool): all entry points are serialized by
    an internal mutex, and an optional per-service {!set_cap} bounds how
    many connections to one service can be live at once across all
    sharers — the resource limit of the member database. A capped-out
    checkout fails with a {e transient} failure carrying a recognizable
    marker ({!is_busy_message}); the server's scheduler requeues the
    whole statement and retries it after the holder's statement has
    released its connection. *)

type t

type stats = {
  mutable hits : int;  (** checkouts served by an idle pooled connection *)
  mutable misses : int;  (** checkouts that had to dial *)
  mutable discarded : int;  (** idle connections dropped as stale *)
  mutable conflicts : int;
      (** checkouts refused because the service was at its cap *)
}

val create : Netsim.World.t -> t

val set_trace : t -> (Trace.event -> unit) -> unit
(** Install a typed-event sink; the pool reports discarded stale
    connections ({!Trace.Pool_stale}) through it. Replaces any previous
    sink. *)

val set_cap : t -> int option -> unit
(** Bound concurrent checkouts per service ([None] — the default — is
    unlimited; values below 1 clear the cap). With a cap of [n], the
    [n+1]-th simultaneous checkout of the same service returns a
    transient [Lam.Network] failure whose text satisfies
    {!is_busy_message}. *)

val cap : t -> int option

val checked_out : t -> string -> int
(** Connections to the named service currently checked out. *)

val stats : t -> stats

val size : t -> int
(** Idle connections currently parked. *)

val is_busy_message : string -> bool
(** Whether a failure (or [Trace.Open_failed] reason) text carries the
    cap-conflict marker — the signal that the statement merely raced
    another session for a capped connection and is worth retrying. *)

val checkout :
  ?retry:Retry_policy.t ->
  ?on_retry:Lam.on_retry ->
  ?on_trace:(Trace.event -> unit) ->
  t ->
  Service.t ->
  (Lam.t, Lam.failure) result
(** An idle healthy connection to the service if one is parked (rebound
    to the given retry policy and observers), else a fresh
    {!Lam.connect}. Stale parked connections encountered on the way are
    discarded and counted. With a cap set and the service fully checked
    out, fails fast instead (see {!set_cap}). *)

val checkin : t -> Lam.t -> unit
(** Park the connection for reuse. Refused — with full
    {!Lam.disconnect} semantics instead — when the site is currently
    down or the session still holds a transaction. Either way the
    connection leaves the in-use ledger. *)

val drain : t -> unit
(** Disconnect and forget every idle connection. *)
