(** LAM connection pool: amortizes the per-statement OPEN/CLOSE round
    trips of a long-lived session.

    Every generated DOL program begins by OPENing its participating
    services and ends by CLOSEing them, so a stream of statements pays a
    connect handshake per service per statement. A pool owned by the
    multidatabase session turns that into one handshake per service per
    {e lifetime}: {!checkout} hands back an idle healthy connection
    instead of dialing, and {!checkin} parks the connection instead of
    hanging up.

    Health of an idle connection is validated at checkout, never assumed:
    the site must be up {e now}, must not have been down at any point
    since the connection was parked ({!Netsim.World.down_during} — an
    outage while idle breaks the transport even if the site has since
    recovered), and the session must hold no transaction. Stale
    connections are discarded (their orphaned active transaction rolled
    back, as the LDBMS does autonomously when a session dies) and a fresh
    connection is dialed transparently. *)

type t

type stats = {
  mutable hits : int;  (** checkouts served by an idle pooled connection *)
  mutable misses : int;  (** checkouts that had to dial *)
  mutable discarded : int;  (** idle connections dropped as stale *)
}

val create : Netsim.World.t -> t

val set_trace : t -> (Trace.event -> unit) -> unit
(** Install a typed-event sink; the pool reports discarded stale
    connections ({!Trace.Pool_stale}) through it. Replaces any previous
    sink. *)

val stats : t -> stats

val size : t -> int
(** Idle connections currently parked. *)

val checkout :
  ?retry:Retry_policy.t ->
  ?on_retry:Lam.on_retry ->
  ?on_trace:(Trace.event -> unit) ->
  t ->
  Service.t ->
  (Lam.t, Lam.failure) result
(** An idle healthy connection to the service if one is parked (rebound
    to the given retry policy and observers), else a fresh
    {!Lam.connect}. Stale parked connections encountered on the way are
    discarded and counted. *)

val checkin : t -> Lam.t -> unit
(** Park the connection for reuse. Refused — with full
    {!Lam.disconnect} semantics instead — when the site is currently
    down or the session still holds a transaction. *)

val drain : t -> unit
(** Disconnect and forget every idle connection. *)
