(** Dataflow analysis of DOL programs: per-statement read/write summaries,
    the dependency DAG they induce, and order-preserving regrouping of a
    program into maximal [PARBEGIN] waves.

    The scheduled program performs the same effects in the same order as
    the serial one — under the engine's sequential combinator a [Parallel]
    block executes branches in declaration order, each in a virtual-clock
    frame starting at the block's t0 — so statuses, results, database
    state, message sequence and loss draws are byte-identical; only
    virtual-time accounting (and real-domain eligibility) changes. *)

type rw = {
  status_reads : string list;
  status_writes : string list;
  aliases : (string * bool) list;
      (** [true] marks the shareable MOVE-destination use of an alias *)
  decision : bool;
  dolstatus : bool;
}

val stmt_rw : (string, string) Hashtbl.t -> Dol_ast.stmt -> rw
(** Read/write summary of one statement. The table maps task/move/comp
    names to the connection alias they occupy (see {!analyze} for how it
    is collected program-wide). *)

val conflicts : rw -> rw -> bool
(** Must these two statements stay ordered? *)

type node = { idx : int; stmt : Dol_ast.stmt; rw : rw }

type t = {
  nodes : node array;  (** flattened top-level statements, program order *)
  edges : (int * int) list;  (** transitively reduced dependencies, i < j *)
  waves : int list list;
      (** order-preserving maximal independent runs, node indices *)
  critical_path : int list;  (** one longest dependency chain *)
}

type stats = {
  nodes : int;
  edges : int;
  waves : int;  (** waves of two or more statements formed *)
  critical_path_len : int;  (** longest chain of the top-level program *)
}

val analyze : Dol_ast.program -> t
(** Build the DAG over the program's top level, dissolving nested
    [PARBEGIN] blocks into their members; IF statements are opaque nodes
    whose summary is the union of both branches plus the condition's
    status reads. *)

val schedule : Dol_ast.program -> Dol_ast.program * stats
(** Regroup the program (and, recursively, every IF branch) into maximal
    waves. Single-statement waves stay bare statements. *)

val label : Dol_ast.stmt -> string
(** One-line statement summary used by the DAG rendering. *)

val describe : Dol_ast.program -> string
(** Human-readable DAG: nodes with their dependencies, waves, and the
    critical path — what EXPLAIN MULTIPLE appends as phase 5. Idempotent
    over {!schedule}: describing a scheduled program re-derives the same
    analysis, since waves dissolve like any other [PARBEGIN] block. *)
