(** Local Access Manager: the per-service agent that executes local
    commands on behalf of the DOL engine and ships partial results
    (Figure 1).

    Every interaction charges the simulated network: commands travel
    engine→site, results site→engine, and relation transfers go directly
    site→site as the paper allows LAMs to exchange data with each other.

    Every operation runs under the connection's {!Retry_policy}: transient
    failures (site inside an outage window, lost message, deadlock-victim
    abort) are retried with exponential backoff charged to the virtual
    clock; a retry is attempted only when the local state is known safe
    (command never delivered, or the LDBMS rolled the work back). *)

type t

(** How an operation failed, after retries were exhausted or the failure
    was terminal: [Local] failures are aborts raised by the database
    itself (semantic errors, injected local failures) — the session has
    rolled back; [Network] failures mean the site could not be reached;
    [Lost] means a message vanished in transit. For [Network] and [Lost]
    the local state is clean: the command never took effect, or the LDBMS
    rolled the orphaned work back. [In_doubt] is the dangerous case —
    effects may already be durable at the site (autocommit engine, or a
    script that committed/prepared before the transport failed). *)
type failure =
  | Local of string
  | Network of string
  | Lost of string
  | In_doubt of string

type on_retry =
  op:string -> attempt:int -> delay_ms:float -> reason:string -> unit

val connect :
  ?retry:Retry_policy.t ->
  ?on_retry:on_retry ->
  ?on_trace:(Trace.event -> unit) ->
  Netsim.World.t ->
  Service.t ->
  (t, failure) result
(** Opens the service: establishes the session and charges a handshake
    message, retrying per [retry] (default {!Retry_policy.default}). The
    policy and [on_retry] observer are remembered for all later
    operations on this connection. [on_trace] subscribes to the session's
    MVCC observations (snapshot acquisitions, write-write conflicts),
    delivered as {!Trace.Snapshot} / {!Trace.Conflict} events. Checks the
    service's failure injector at [At_connect]. *)

val connect_exn : Netsim.World.t -> Service.t -> t
(** Single-attempt connect that raises [Failure] instead of returning a
    result — convenience for tests and fixtures. *)

val service : t -> Service.t
val session : t -> Ldbms.Session.t
val site : t -> string
val world : t -> Netsim.World.t

val with_policy :
  ?retry:Retry_policy.t ->
  ?on_retry:on_retry ->
  ?on_trace:(Trace.event -> unit) ->
  t ->
  t
(** The same connection under a different retry policy and observers
    (defaults as for {!connect}). Used when a pooled connection is reused
    by a later engine run: retries and MVCC observations must be reported
    to the run that is executing, not to the one that originally
    connected. *)

val failure_message : failure -> string

val classify_io : failure -> Retry_policy.classification
(** Transport failures retryable, every local abort terminal — the rule
    for 2PC verbs. *)

val classify_local_aware : failure -> Retry_policy.classification
(** Like {!classify_io} but local failures marked transient by the LDBMS
    (cf. {!Ldbms.Failure_injector.is_transient_message}) are also
    retryable — the rule for statement execution. *)

val exec_script : t -> string -> (Ldbms.Session.result list, failure) result
(** Ship a SQL script to the LAM and execute it statement by statement.
    Charges the command bytes out and the result bytes back. On a
    connection loss after execution, the LDBMS aborts the orphaned active
    transaction (making the retry sound); if effects may already be
    durable (autocommit engine), the failure is terminal. *)

val last_relation : Ldbms.Session.result list -> Sqlcore.Relation.t option
(** The last [Rows] result of a script, if any. *)

val prepare : t -> (unit, failure) result
(** First phase of 2PC: one round trip. Idempotent, so lost
    acknowledgements are retried blindly. *)

val commit : t -> (unit, failure) result
val rollback : t -> (unit, failure) result

val fetch : t -> string -> (Sqlcore.Relation.t, failure) result
(** Execute a SELECT and return its result (command out, data back). *)

type transfer_cache = {
  tc_lookup :
    src:string -> dst:string -> query:string -> Sqlcore.Relation.t option;
  tc_store :
    src:string -> dst:string -> query:string -> Sqlcore.Relation.t -> unit;
}
(** Shipped-result cache hook for {!transfer}. [src]/[dst] are service
    names and [query] is the final shipped SQL {e after} any semijoin
    rewrite, so the reduction's key set is part of the key. The cache
    owner (the multidatabase session) is responsible for invalidation —
    entries must be dropped whenever either endpoint's database takes a
    committed write, since the shipped relation depends on the source
    data and, through the semijoin key set, on the destination data. *)

type chunk_note = {
  ck_seq : int;  (** 1-based position in the stream *)
  ck_total : int;  (** number of chunks in the stream *)
  ck_rows : int;  (** rows carried by this installment *)
  ck_bytes : int;  (** payload bytes of this installment *)
  ck_at_ms : float;  (** virtual completion instant of this installment *)
  ck_window : int;  (** the sender's in-flight credit window *)
}
(** One installment of a chunk-streamed data shipment, reported through
    {!transfer}'s [on_chunk] observer. Notes are delivered only for
    streams that complete: a lost message aborts the whole logical
    transfer before any chunk is observable, so retries never leak
    partial streams into the trace. *)

val set_move_streaming : ?chunk_rows:int -> ?window:int -> unit -> unit
(** Configure the MOVE data plane. [chunk_rows] is the number of rows per
    chunk (default 512); [chunk_rows <= 0] disables streaming and ships
    each relation as a single monolithic message. [window] is the
    sender's in-flight credit window (default 4, clamped to [>= 1]) —
    documentation carried on every {!chunk_note}; it does not change
    accounting. Streaming is invariant by construction: statistics,
    virtual time and query results are identical at every setting. *)

val move_streaming : unit -> int * int
(** Current [(chunk_rows, window)] settings. *)

type transfer_stats = {
  moved_rows : int;  (** rows materialized at the destination *)
  moved_bytes : int;
      (** payload bytes shipped on the [src -> dst] wire; [0] on a cache
          hit (protocol overhead excluded) *)
  reduced : bool;  (** the semijoin rewrite was actually applied *)
  cached : bool;  (** served from the shipped-result cache *)
}

val transfer :
  on_chunk:(chunk_note -> unit) option ->
  cache:transfer_cache option ->
  reduce:(string * string) option ->
  src:t ->
  dst:t ->
  query:string ->
  dest_table:string ->
  (transfer_stats, failure) result
(** Run [query] at [src] and materialize the result at [dst] under
    [dest_table] (replacing it), shipping the data directly between the
    two sites. Returns what moved and how. Idempotent end to end,
    retried as a unit under [src]'s policy.

    When streaming is enabled (see {!set_move_streaming}) the data
    shipment travels as fixed-size chunks through the network; each
    delivered installment is reported to [on_chunk] with its virtual
    completion instant, in stream order.

    With [cache = Some _], a lookup hit short-circuits the whole operation: the
    cached relation is re-materialized at [dst] with zero network traffic
    (the semijoin probe, if any, has already been paid for). A successful
    uncached transfer stores its relation.

    [reduce = (col, probe)] applies a semijoin reduction first: [probe] is
    evaluated at [dst], and [query] is rewritten with
    [col IN (distinct probe values)] (a contradiction when the key set is
    empty) before being shipped to [src]. The probe's round trip is
    charged to the network, so the reduction pays for its keys. If the
    probe fails the transfer proceeds unreduced.

    Domain safety: concurrent transfers from {e distinct} sources into the
    same [dst] (the engine's domain-parallel MOVE blocks) are safe — the
    destination-side work (probe, materialize) is serialized under a
    per-connection mutex, while each branch's network charges go to its
    own clock frame. *)

val disconnect : t -> unit
(** Close the session. An orphaned {e active} transaction is aborted by
    the LDBMS itself; a {e prepared} transaction always survives at the
    site — the participant awaits the coordinator's decision, so
    undecided prepared work is the engine's to settle (presumed abort or
    verdict replay). Charges a goodbye message when the site is
    reachable. *)
