open Dol_ast

exception Error of string * int * int

type state = { mutable toks : Dol_lexer.located list }

let hd st =
  match st.toks with
  | [] -> { Dol_lexer.tok = Dol_lexer.Eof; tline = 0; tcol = 0 }
  | l :: _ -> l

let peek st = (hd st).Dol_lexer.tok
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  let l = hd st in
  raise
    (Error
       ( Printf.sprintf "%s (at %s)" msg (Dol_lexer.token_to_string l.Dol_lexer.tok),
         l.Dol_lexer.tline,
         l.Dol_lexer.tcol ))

let is_kw tok kw =
  match tok with
  | Dol_lexer.Ident s -> Sqlcore.Names.equal s kw
  | _ -> false

let at_kw st kw = is_kw (peek st) kw

let accept_kw st kw =
  if at_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw = if not (accept_kw st kw) then fail st ("expected " ^ kw)

let at_sym st s =
  match peek st with Dol_lexer.Sym x -> String.equal x s | _ -> false

let accept_sym st s =
  if at_sym st s then begin
    advance st;
    true
  end
  else false

let expect_sym st s = if not (accept_sym st s) then fail st ("expected '" ^ s ^ "'")

let ident st =
  match peek st with
  | Dol_lexer.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let block st =
  match peek st with
  | Dol_lexer.Block b ->
      advance st;
      b
  | _ -> fail st "expected { ... } block"

let integer st =
  match peek st with
  | Dol_lexer.Int i ->
      advance st;
      i
  | _ -> fail st "expected integer"

(* cond := conj (OR conj)* ; conj := prim (AND prim)* ;
   prim := NOT prim | '(' cond ')' | ident '=' status *)
let rec parse_cond st =
  let lhs = parse_conj st in
  if accept_kw st "or" then Or (lhs, parse_cond st) else lhs

and parse_conj st =
  let lhs = parse_prim st in
  if accept_kw st "and" then And (lhs, parse_conj st) else lhs

and parse_prim st =
  if accept_kw st "not" then Not (parse_prim st)
  else if accept_sym st "(" then begin
    let c = parse_cond st in
    expect_sym st ")";
    c
  end
  else begin
    let name = ident st in
    expect_sym st "=";
    let letter = ident st in
    match status_of_string letter with
    | Some s -> Status_is (name, s)
    | None -> fail st (Printf.sprintf "unknown task status %s" letter)
  end

let task_name_list st =
  let rec go acc =
    let n = ident st in
    if accept_sym st "," then go (n :: acc) else List.rev (n :: acc)
  in
  go []

let rec parse_stmt st =
  if accept_kw st "open" then begin
    let service = ident st in
    let open_site = if accept_kw st "at" then Some (ident st) else None in
    expect_kw st "as";
    let alias = ident st in
    Open { service; open_site; alias }
  end
  else if accept_kw st "close" then begin
    let rec aliases acc =
      match peek st with
      | Dol_lexer.Ident a ->
          advance st;
          ignore (accept_sym st ",");
          aliases (a :: acc)
      | _ -> List.rev acc
    in
    Close (aliases [])
  end
  else if accept_kw st "task" then Task (parse_task st)
  else if accept_kw st "parbegin" then begin
    let rec go acc =
      if accept_kw st "parend" then List.rev acc
      else begin
        let s = parse_stmt st in
        ignore (accept_sym st ";");
        go (s :: acc)
      end
    in
    Parallel (go [])
  end
  else if accept_kw st "if" then begin
    let cond = parse_cond st in
    expect_kw st "then";
    let then_b = parse_branch st in
    ignore (accept_sym st ";");
    let else_b = if accept_kw st "else" then parse_branch st else [] in
    If (cond, then_b, else_b)
  end
  else if accept_kw st "commit" then Commit_tasks (task_name_list st)
  else if accept_kw st "abort" then Abort_tasks (task_name_list st)
  else if accept_kw st "comp" then begin
    let cname = ident st in
    let compensates = if accept_kw st "compensates" then Some (ident st) else None in
    expect_kw st "for";
    let target = ident st in
    let commands = block st in
    expect_kw st "endcomp";
    Comp { cname; compensates; target; commands }
  end
  else if accept_kw st "move" then begin
    let mname = ident st in
    expect_kw st "from";
    let src = ident st in
    expect_kw st "to";
    let dst = ident st in
    expect_kw st "table";
    let dest_table = ident st in
    let query = block st in
    let reduce =
      if accept_kw st "semijoin" then begin
        let col = String.trim (block st) in
        expect_kw st "probe";
        Some (col, block st)
      end
      else None
    in
    expect_kw st "endmove";
    Move { mname; src; dst; dest_table; query; reduce }
  end
  else if accept_kw st "dolstatus" then begin
    expect_sym st "=";
    Set_status (integer st)
  end
  else fail st "expected a DOL statement"

and parse_task st =
  let tname = ident st in
  let mode = if accept_kw st "nocommit" then No_commit else With_commit in
  expect_kw st "for";
  let target = ident st in
  let commands = block st in
  expect_kw st "endtask";
  { tname; mode; target; commands }

and parse_branch st =
  expect_kw st "begin";
  let rec go acc =
    if accept_kw st "end" then List.rev acc
    else begin
      let s = parse_stmt st in
      ignore (accept_sym st ";");
      go (s :: acc)
    end
  in
  go []

let parse input =
  let toks =
    try Dol_lexer.tokenize input
    with Dol_lexer.Error (m, l, c) -> raise (Error (m, l, c))
  in
  let st = { toks } in
  expect_kw st "dolbegin";
  let rec go acc =
    if accept_kw st "dolend" then List.rev acc
    else begin
      let s = parse_stmt st in
      ignore (accept_sym st ";");
      go (s :: acc)
    end
  in
  let prog = go [] in
  (match peek st with
  | Dol_lexer.Eof -> ()
  | tok -> fail st (Printf.sprintf "trailing input after DOLEND: %s" (Dol_lexer.token_to_string tok)));
  prog
