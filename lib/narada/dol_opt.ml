open Dol_ast

type stats = {
  opens_parallelized : int;
  tasks_merged : int;
  closes_merged : int;
  waves_formed : int;
}

(* ---- analysis: task names whose status the program reads ------------------ *)

let rec cond_reads = function
  | Status_is (t, _) -> [ String.lowercase_ascii t ]
  | Not c -> cond_reads c
  | And (a, b) | Or (a, b) -> cond_reads a @ cond_reads b

let rec stmt_reads = function
  | If (c, a, b) ->
      cond_reads c @ List.concat_map stmt_reads a @ List.concat_map stmt_reads b
  | Commit_tasks ns | Abort_tasks ns -> List.map String.lowercase_ascii ns
  | Comp { compensates; _ } ->
      Option.fold ~none:[] ~some:(fun t -> [ String.lowercase_ascii t ]) compensates
  | Parallel stmts -> List.concat_map stmt_reads stmts
  | Open _ | Close _ | Task _ | Move _ | Set_status _ -> []

let read_task_names program = List.concat_map stmt_reads program

(* ---- pass: merge consecutive committing tasks on one alias ----------------- *)

(* Fusing [TASK a FOR x {s1}; TASK b FOR x {s2}] into [TASK a FOR x {s1; s2}]
   is safe when both commit as they run and nothing reads b's status: the
   merged script has the same local effects and failure granularity only
   coarsens (a failure in s2 also undoes s1, which is stricter, and the
   program was not allowed to distinguish the two anyway since b is unread). *)
let merge_tasks ~protected stmts =
  let merged = ref 0 in
  let mergeable (t : task) =
    t.mode = With_commit
    && not (List.mem (String.lowercase_ascii t.tname) protected)
  in
  let rec go = function
    | Task t1 :: Task t2 :: rest
      when t1.target = t2.target && mergeable t1 && mergeable t2 ->
        incr merged;
        go (Task { t1 with commands = t1.commands ^ ";\n" ^ t2.commands } :: rest)
    | s :: rest -> s :: go rest
    | [] -> []
  in
  let stmts = go stmts in
  (stmts, !merged)

(* ---- pass: parallelize runs of OPENs --------------------------------------- *)

let parallelize_opens stmts =
  let moved = ref 0 in
  let rec go = function
    | Open _ :: Open _ :: _ as l ->
        let rec split acc = function
          | (Open _ as o) :: rest -> split (o :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let opens, rest = split [] l in
        moved := !moved + List.length opens;
        Parallel opens :: go rest
    | s :: rest -> s :: go rest
    | [] -> []
  in
  let stmts = go stmts in
  (stmts, !moved)

(* ---- pass: merge consecutive CLOSEs ----------------------------------------- *)

(* Both lists may name the same connection (programs stitched from
   templates do): closing an alias twice is a program error, so the merged
   list keeps the first occurrence only (case-insensitive, like every
   alias lookup, and order-preserving). *)
let dedup_aliases aliases =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      let k = String.lowercase_ascii a in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    aliases

let merge_closes stmts =
  let merged = ref 0 in
  let rec go = function
    | Close a :: Close b :: rest ->
        incr merged;
        go (Close (dedup_aliases (a @ b)) :: rest)
    | s :: rest -> s :: go rest
    | [] -> []
  in
  let stmts = go stmts in
  (stmts, !merged)

(* ---- pass: trivial unwrapping ------------------------------------------------ *)

let rec tidy stmts =
  List.filter_map
    (fun s ->
      match s with
      | Parallel [] -> None
      | Parallel [ single ] -> Some single
      | Parallel inner -> Some (Parallel (tidy inner))
      | If (c, a, b) -> (
          match tidy a, tidy b with
          | [], [] -> None
          | a', b' -> Some (If (c, a', b')))
      | Open _ | Close _ | Task _ | Commit_tasks _ | Abort_tasks _ | Comp _
      | Move _ | Set_status _ ->
          Some s)
    stmts

let rec map_blocks f stmts =
  f stmts
  |> List.map (function
       | If (c, a, b) -> If (c, map_blocks f a, map_blocks f b)
       | Parallel inner -> Parallel (map_blocks f inner)
       | s -> s)

(* ---- pass: dataflow wave scheduling ----------------------------------------- *)

(* The pass itself lives in {!Dol_graph}: build the dependency DAG over
   the program (read/write summaries of aliases, task statuses, MOVE
   destination tables, order-sensitive globals) and regroup maximal runs
   of independent statements into [PARBEGIN] waves, order-preserved. *)
let dataflow_with_stats program = Dol_graph.schedule program
let dataflow program = fst (Dol_graph.schedule program)

let optimize_with_stats ?(dataflow = false) program =
  let protected = read_task_names program in
  let tasks_merged = ref 0 in
  let program =
    map_blocks
      (fun stmts ->
        let stmts, n = merge_tasks ~protected stmts in
        tasks_merged := !tasks_merged + n;
        stmts)
      program
  in
  let program, opens_parallelized = parallelize_opens program in
  let program, closes_merged = merge_closes program in
  let program = tidy program in
  let program, waves_formed =
    if dataflow then
      let program, (ds : Dol_graph.stats) = Dol_graph.schedule program in
      (program, ds.Dol_graph.waves)
    else (program, 0)
  in
  ( program,
    {
      opens_parallelized;
      tasks_merged = !tasks_merged;
      closes_merged;
      waves_formed;
    } )

let optimize ?dataflow program = fst (optimize_with_stats ?dataflow program)
