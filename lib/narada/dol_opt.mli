(** DOL program optimizer — the paper's §5 future-work direction: "The
    resulting DOL programs may also be optimized. ... The optimization
    will be related more to data flow control and parallelism in execution
    of queries at different sites than to individual database operations."

    Passes (all semantics-preserving):

    - {b parallel opens/closes}: maximal runs of consecutive OPEN
      statements are wrapped in a [PARBEGIN] block, so connection
      handshakes overlap instead of accumulating; likewise CLOSE lists are
      merged;
    - {b task merging}: consecutive committing tasks against the same
      alias are fused into one task script (one command round trip instead
      of several), provided the dropped task names are never read by a
      status condition or a COMMIT/ABORT list elsewhere in the program;
    - {b trivial unwrapping}: singleton [PARBEGIN] blocks and empty IF
      branches are flattened;
    - {b dataflow wave scheduling} (opt-in here via [?dataflow], applied
      by default at the session layer): {!Dol_graph} builds the
      dependency DAG over the program and regroups maximal runs of
      independent statements — MOVEs with local TASKs, whole queries of
      one MULTIPLE statement — into [PARBEGIN] waves, order-preserved, so
      their virtual-time latencies max-merge instead of summing. *)

val optimize : ?dataflow:bool -> Dol_ast.program -> Dol_ast.program

type stats = {
  opens_parallelized : int;  (** OPEN statements moved into parallel blocks *)
  tasks_merged : int;  (** tasks fused away *)
  closes_merged : int;  (** CLOSE statements merged away *)
  waves_formed : int;  (** multi-statement dataflow waves formed *)
}

val optimize_with_stats :
  ?dataflow:bool -> Dol_ast.program -> Dol_ast.program * stats

val dataflow : Dol_ast.program -> Dol_ast.program
(** The dataflow wave-scheduling pass alone ({!Dol_graph.schedule}). *)

val dataflow_with_stats : Dol_ast.program -> Dol_ast.program * Dol_graph.stats
