module World = Netsim.World
open Dol_ast

let log_src = Logs.Src.create "narada.engine" ~doc:"DOL engine execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  dolstatus : int;
  statuses : (string * status) list;
  results : (string * Sqlcore.Relation.t) list;
  rowcounts : (string * int) list;
  elapsed_ms : float;
  retries : int;
  recovered : int;
  in_doubt : int;
  vital_split : bool;
}

exception Program_error of string

type conn = Available of Lam.t | Unavailable of string

(* a COMP statement found anywhere in the program text, kept as a recovery
   handler for the task it compensates even if its branch is never taken *)
type comp_handler = { ch_cname : string; ch_target : string; ch_commands : string }

type state = {
  directory : Directory.t;
  world : World.t;
  policy : Retry_policy.t;
  grace_ms : float;
  pool : Pool.t option;
      (* OPEN checks out of / CLOSE checks into this pool instead of
         dialing and hanging up *)
  dpool : Dpool.t option;
      (* when present, eligible PARBEGIN blocks and 2PC fan-outs execute
         their branches on separate domains *)
  move_cache : Lam.transfer_cache option;  (* shipped-result cache hook *)
  aliases : (string, conn) Hashtbl.t;
  services : (string, Service.t) Hashtbl.t;
      (* alias -> service, remembered past CLOSE so the recovery pass can
         reopen a session to fire a queued COMP *)
  statuses : (string, status) Hashtbl.t;
  mutable status_order : string list;  (* newest first *)
  task_target : (string, string) Hashtbl.t;  (* task -> alias *)
  results : (string, Sqlcore.Relation.t) Hashtbl.t;
  rowcounts : (string, int) Hashtbl.t;
  mutable dolstatus : int;
  on_event : (string -> unit) option;
      (* [None] when no string sink is installed, so [deliver] can skip
         rendering entirely — the render cost is per event, on the hot
         path of every statement *)
  on_trace : Trace.event -> unit;
  rlog : Recovery_log.t;
  comps : (string, comp_handler) Hashtbl.t;  (* compensated task -> handler *)
  mutable retries : int;
  mutable recovered : int;
  mutable vital_split : bool;
}

let err fmt = Printf.ksprintf (fun m -> raise (Program_error m)) fmt
let akey = String.lowercase_ascii

(* ---- branch effect buffering ----------------------------------------------
   A branch executing on a worker domain must not touch the engine's
   shared state (Hashtbls, counters, the recovery log) nor call the
   application's trace sinks — both would race with sibling branches. So
   while a branch runs, its typed trace events and its state writes are
   buffered in a domain-local record; at the join the buffers are replayed
   on the calling domain in declaration order, which is exactly the order
   the sequential combinator would have interleaved them. A branch never
   re-reads its own deferred writes (checked per call site), so buffering
   is invisible to the branch itself. Outside a branch the buffer is
   absent and every effect applies immediately — the sequential paths are
   byte-for-byte the old code. *)

(* Buffers are growable arrays, not cons lists: a deferred effect is one
   slot store (amortized), the join replays by indexing forward with no
   List.rev allocation, and the arrays themselves are recycled through a
   process-wide freelist so steady-state PARBEGIN blocks allocate no
   buffer storage at all. The reuse hit/miss counters are process-global
   observability for the benches ({!branch_buf_stats}); they are
   deliberately NOT part of the metrics JSON, which must stay
   byte-identical across pool widths while buffering only happens at
   width >= 2. *)

let dummy_event = { Trace.at_ms = 0.0; kind = Trace.Dolstatus 0; tag = None }

type branch_buf = {
  mutable bevents : Trace.event array;
  mutable bev_n : int;
  mutable bwrites : (unit -> unit) array;
  mutable bw_n : int;
}

let fresh_buf () =
  {
    bevents = Array.make 32 dummy_event;
    bev_n = 0;
    bwrites = Array.make 32 ignore;
    bw_n = 0;
  }

let buf_pool : branch_buf list ref = ref []
let buf_pool_m = Mutex.create ()
let buf_reuse_hits = Atomic.make 0
let buf_reuse_misses = Atomic.make 0

let take_bufs n =
  Mutex.lock buf_pool_m;
  let rec go k acc avail =
    if k = 0 then (acc, avail)
    else
      match avail with
      | b :: rest ->
          Atomic.incr buf_reuse_hits;
          go (k - 1) (b :: acc) rest
      | [] ->
          Atomic.incr buf_reuse_misses;
          go (k - 1) (fresh_buf () :: acc) []
  in
  let bufs, rest = go n [] !buf_pool in
  buf_pool := rest;
  Mutex.unlock buf_pool_m;
  Array.of_list bufs

let return_bufs bufs =
  Array.iter
    (fun b ->
      (* drop references so recycled buffers don't pin event payloads or
         closed-over state between blocks *)
      Array.fill b.bevents 0 b.bev_n dummy_event;
      Array.fill b.bwrites 0 b.bw_n ignore;
      b.bev_n <- 0;
      b.bw_n <- 0)
    bufs;
  Mutex.lock buf_pool_m;
  buf_pool := Array.fold_left (fun acc b -> b :: acc) !buf_pool bufs;
  Mutex.unlock buf_pool_m

let branch_buf_stats () =
  (Atomic.get buf_reuse_hits, Atomic.get buf_reuse_misses)

let push_event b ev =
  let cap = Array.length b.bevents in
  if b.bev_n = cap then begin
    let bigger = Array.make (2 * cap) dummy_event in
    Array.blit b.bevents 0 bigger 0 cap;
    b.bevents <- bigger
  end;
  b.bevents.(b.bev_n) <- ev;
  b.bev_n <- b.bev_n + 1

let push_write b f =
  let cap = Array.length b.bwrites in
  if b.bw_n = cap then begin
    let bigger = Array.make (2 * cap) ignore in
    Array.blit b.bwrites 0 bigger 0 cap;
    b.bwrites <- bigger
  end;
  b.bwrites.(b.bw_n) <- f;
  b.bw_n <- b.bw_n + 1

let branch_key : branch_buf option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* a state write: immediate outside a branch, deferred to the join inside *)
let deferred f =
  match Domain.DLS.get branch_key with
  | Some b -> push_write b f
  | None -> f ()

let deliver st ev =
  Log.debug (fun f ->
      f "%.2fms %s" ev.Trace.at_ms (Trace.render_kind ev.Trace.kind));
  st.on_trace ev;
  match st.on_event with None -> () | Some f -> f (Trace.render ev)

(* every event goes to both sinks: typed to [on_trace], rendered to the
   historical string sink — buffered until the join inside a branch.
   [tell_ev] takes a pre-timestamped event: lower layers (the session's
   MVCC observer routed through Lam) stamp their own clock frame, which
   inside a domain branch differs from the calling domain's. *)
let tell_ev st ev =
  match Domain.DLS.get branch_key with
  | Some b -> push_event b ev
  | None -> deliver st ev

let tell st kind =
  tell_ev st { Trace.at_ms = World.now_ms st.world; kind; tag = None }

let emit st fmt = Printf.ksprintf (fun m -> tell st (Trace.Note m)) fmt

let retry_observer st ~where ~op ~attempt ~delay_ms ~reason =
  deferred (fun () -> st.retries <- st.retries + 1);
  tell st (Trace.Retry { op; site = where; attempt; delay_ms; reason })

(* connect through the pool when one is installed; [reused] reports
   whether an idle connection was picked up instead of dialing *)
let dial st (svc : Service.t) =
  let on_retry = retry_observer st ~where:svc.Service.site in
  let on_trace = tell_ev st in
  match st.pool with
  | Some p ->
      let hits_before = (Pool.stats p).Pool.hits in
      let r = Pool.checkout ~retry:st.policy ~on_retry ~on_trace p svc in
      (r, (Pool.stats p).Pool.hits > hits_before)
  | None ->
      (Lam.connect ~retry:st.policy ~on_retry ~on_trace st.world svc, false)

let release st lam =
  match st.pool with
  | Some p -> Pool.checkin p lam
  | None -> Lam.disconnect lam

let declare st name target =
  let k = akey name in
  (* inside a domain branch this only sees pre-block declarations; the
     eligibility gate has already checked the block's names against each
     other and against the existing ones *)
  if Hashtbl.mem st.statuses k then err "duplicate task name %s" name;
  deferred (fun () ->
      Hashtbl.replace st.statuses k N;
      st.status_order <- k :: st.status_order;
      Hashtbl.replace st.task_target k (akey target))

let set_status st name s =
  tell st (Trace.Status { task = name; status = s });
  deferred (fun () -> Hashtbl.replace st.statuses (akey name) s)

let get_status st name =
  match Hashtbl.find_opt st.statuses (akey name) with Some s -> s | None -> N

(* The site-failure classifiers. No raw netsim exception ever reaches
   this layer — Lam converts them all to [failure].

   [fail_status] is the mid-protocol rule: a local abort means the LDBMS
   rolled the work back (A); a transport failure leaves the local state
   unknown (E).

   [presumed_abort_status] applies before the coordinator has logged a
   commit verdict: under presumed abort, a clean transport failure is a
   guaranteed global abort — the command never took effect, or the site
   will roll the undecided transaction back when it recovers. Only
   [In_doubt] (effects possibly durable without a prepare handshake)
   leaves the state unknown. *)
let fail_status = function
  | Lam.Local _ -> A
  | Lam.Network _ | Lam.Lost _ | Lam.In_doubt _ -> E

let presumed_abort_status = function
  | Lam.Local _ | Lam.Network _ | Lam.Lost _ -> A
  | Lam.In_doubt _ -> E

(* a terminal local failure whose message is a first-committer-wins
   write-write conflict gets a dedicated event on top of the status
   transition, so consumers can count conflict-caused aborts apart from
   the other abort classes *)
let note_conflict st ~task lam f =
  match f with
  | Lam.Local m when Ldbms.Txn.is_conflict_message m ->
      tell st (Trace.Conflict_abort { task; site = Lam.site lam })
  | Lam.Local _ | Lam.Network _ | Lam.Lost _ | Lam.In_doubt _ -> ()

let conn_of st alias =
  match Hashtbl.find_opt st.aliases (akey alias) with
  | Some c -> c
  | None -> err "unknown alias %s (missing OPEN?)" alias

let lam_of_task st tname =
  match Hashtbl.find_opt st.task_target (akey tname) with
  | None -> err "unknown task %s" tname
  | Some alias -> conn_of st alias

let rec eval_cond st = function
  | Status_is (t, s) -> get_status st t = s
  | Not c -> not (eval_cond st c)
  | And (a, b) -> eval_cond st a && eval_cond st b
  | Or (a, b) -> eval_cond st a || eval_cond st b

let exec_task st (task : task) =
  declare st task.tname task.target;
  match conn_of st task.target with
  | Unavailable reason ->
      (* the service was never reached: the task did not run at all, which
         is safely excludable (unlike E, whose local state is unknown) *)
      ignore reason;
      set_status st task.tname N
  | Available lam -> (
      match Lam.exec_script lam task.commands with
      | Error f ->
          note_conflict st ~task:task.tname lam f;
          set_status st task.tname (presumed_abort_status f)
      | Ok results -> (
          (match Lam.last_relation results with
          | Some rel ->
              deferred (fun () -> Hashtbl.replace st.results (akey task.tname) rel)
          | None -> ());
          let affected =
            List.fold_left
              (fun acc r ->
                match r with Ldbms.Session.Affected n -> acc + n | _ -> acc)
              0 results
          in
          deferred (fun () ->
              Hashtbl.replace st.rowcounts (akey task.tname) affected);
          match task.mode with
          | No_commit ->
              if
                Ldbms.Capabilities.supports_2pc
                  (Lam.service lam).Service.caps
              then
                (match Lam.prepare lam with
                | Ok () ->
                    set_status st task.tname P;
                    deferred (fun () ->
                        Recovery_log.record_prepared st.rlog ~task:task.tname
                          ~alias:task.target lam)
                | Error f ->
                    note_conflict st ~task:task.tname lam f;
                    set_status st task.tname (presumed_abort_status f))
              else
                (* a NOCOMMIT task on an autocommit-only engine is a plan
                   inconsistency: its effects are already committed *)
                set_status st task.tname E
          | With_commit -> (
              if
                not
                  (Ldbms.Capabilities.supports_2pc
                     (Lam.service lam).Service.caps)
              then (* autocommit engine: already durable *)
                set_status st task.tname C
              else
                match Lam.commit lam with
                | Ok () -> set_status st task.tname C
                | Error f ->
                    note_conflict st ~task:task.tname lam f;
                    set_status st task.tname (fail_status f))))

let commit_task st tname =
  match get_status st tname with
  | P -> (
      match lam_of_task st tname with
      | Unavailable _ -> set_status st tname E
      | Available lam -> (
          match Lam.commit lam with
          | Ok () ->
              set_status st tname C;
              deferred (fun () -> Recovery_log.mark_resolved st.rlog tname)
          | Error (Lam.Local _) ->
              set_status st tname A;
              deferred (fun () -> Recovery_log.mark_resolved st.rlog tname)
          | Error (Lam.Network _ | Lam.Lost _ | Lam.In_doubt _) ->
              emit st "task %s in doubt: commit logged, site unreachable" tname;
              set_status st tname E))
  | C | A | E | N | X -> ()

let abort_task st tname =
  match get_status st tname with
  | P -> (
      match lam_of_task st tname with
      | Unavailable _ -> set_status st tname E
      | Available lam -> (
          match Lam.rollback lam with
          | Ok () | Error (Lam.Local _) ->
              set_status st tname A;
              deferred (fun () -> Recovery_log.mark_resolved st.rlog tname)
          | Error (Lam.Network _ | Lam.Lost _ | Lam.In_doubt _) ->
              emit st "task %s in doubt: abort logged, site unreachable" tname;
              set_status st tname E))
  | C | A | E | N | X -> ()

(* run a compensating action on an established connection; shared by the
   COMP statement and the recovery pass *)
let exec_comp_on st ~cname ~compensates lam commands =
  match Lam.exec_script lam commands with
  | Error f -> set_status st cname (fail_status f)
  | Ok _ -> (
      let finish () =
        set_status st cname C;
        match compensates with
        | Some t -> set_status st t X
        | None -> ()
      in
      if Ldbms.Capabilities.supports_2pc (Lam.service lam).Service.caps then
        match Lam.commit lam with
        | Ok () -> finish ()
        | Error f -> set_status st cname (fail_status f)
      else finish ())

let exec_comp st ~cname ~compensates ~target ~commands =
  declare st cname target;
  match conn_of st target with
  | Unavailable _ -> set_status st cname E
  | Available lam -> exec_comp_on st ~cname ~compensates lam commands

let exec_move st ~mname ~src ~dst ~dest_table ~query ~reduce =
  declare st mname src;
  match conn_of st src, conn_of st dst with
  | Unavailable _, _ | _, Unavailable _ -> set_status st mname E
  | Available src_lam, Available dst_lam -> (
      let on_chunk (c : Lam.chunk_note) =
        tell_ev st
          {
            Trace.at_ms = c.Lam.ck_at_ms;
            kind =
              Trace.Chunk
                {
                  mname;
                  src = Lam.site src_lam;
                  dst = Lam.site dst_lam;
                  seq = c.Lam.ck_seq;
                  total = c.Lam.ck_total;
                  rows = c.Lam.ck_rows;
                  bytes = c.Lam.ck_bytes;
                  window = c.Lam.ck_window;
                };
            tag = None;
          }
      in
      match
        Lam.transfer ~on_chunk:(Some on_chunk) ~cache:st.move_cache ~reduce
          ~src:src_lam ~dst:dst_lam ~query ~dest_table
      with
      | Ok ts ->
          if st.move_cache <> None then
            tell st
              (Trace.Cache
                 { layer = "result"; hit = ts.Lam.cached; key = dest_table });
          tell st
            (Trace.Moved
               {
                 mname;
                 src = Lam.site src_lam;
                 dst = Lam.site dst_lam;
                 dest_table;
                 rows = ts.Lam.moved_rows;
                 bytes = ts.Lam.moved_bytes;
                 reduced = ts.Lam.reduced;
                 cached = ts.Lam.cached;
               });
          set_status st mname C
      | Error f -> set_status st mname (fail_status f))

(* ---- domain-parallel execution of PARBEGIN blocks ------------------------- *)

(* the connection lane a branch occupies: branches sharing a lane use the
   same Lam connection and must be serialized onto one domain *)
let lane_alias = function
  | Task t -> Some (akey t.target)
  | Move m -> Some (akey m.src)
  | _ -> None

let branch_name = function
  | Task t -> Some (akey t.tname)
  | Move m -> Some (akey m.mname)
  | _ -> None

let alias_service st alias = Hashtbl.find_opt st.services alias

(* Can this PARBEGIN block run its branches on worker domains with no
   observable difference from the sequential combinator? The conditions
   guarantee that (a) no two domains touch the same connection, session or
   local database, (b) no shared or order-sensitive PRNG is consulted, and
   (c) every effect a branch performs is either buffered (trace events,
   engine-state writes) or confined to resources the branch owns. Anything
   else falls back to [World.parallel] — the sequential combinator these
   semantics are defined against. *)
let domain_eligible st stmts =
  st.dpool <> None
  && List.length stmts >= 2
  && Option.is_none (Domain.DLS.get branch_key) (* no nested blocks *)
  && (not (World.has_loss st.world)) (* loss draws share one PRNG *)
  && st.move_cache = None (* cache closures are not ours to lock *)
  && List.for_all
       (fun s -> match s with Task _ | Move _ -> true | _ -> false)
       stmts
  && (* task/move names fresh and pairwise distinct, so [declare]'s
        duplicate check answers the same inside every branch *)
  (let names = List.filter_map branch_name stmts in
   List.length (List.sort_uniq String.compare names) = List.length names
   && not (List.exists (fun n -> Hashtbl.mem st.statuses n) names))
  &&
  (* every lane resolves to a known service; distinct lanes mean distinct
     services AND distinct local databases; MOVE destinations all funnel
     through one alias whose database no lane touches (the Lam
     per-connection mutex then serializes the destination side) and whose
     failure injector is quiet (armed injectors fire in arrival order,
     which a domain race would make nondeterministic) *)
  let lanes =
    List.sort_uniq String.compare (List.filter_map lane_alias stmts)
  in
  let lane_svcs = List.map (alias_service st) lanes in
  List.for_all Option.is_some lane_svcs
  &&
  let lane_svcs = List.map Option.get lane_svcs in
  let names =
    List.map (fun (s : Service.t) -> s.Service.service_name) lane_svcs
  in
  List.length (List.sort_uniq String.compare names) = List.length names
  && (let rec distinct_dbs = function
        | [] -> true
        | (s : Service.t) :: rest ->
            (not
               (List.exists
                  (fun (s' : Service.t) ->
                    s.Service.database == s'.Service.database)
                  rest))
            && distinct_dbs rest
      in
      distinct_dbs lane_svcs)
  &&
  match
    List.filter_map (function Move m -> Some (akey m.dst) | _ -> None) stmts
  with
  | [] -> true
  | d :: rest -> (
      List.for_all (String.equal d) rest
      &&
      match alias_service st d with
      | None -> false
      | Some (dsvc : Service.t) ->
          (not (Ldbms.Failure_injector.is_armed dsvc.Service.injector))
          && List.for_all
               (fun (s : Service.t) ->
                 s.Service.database != dsvc.Service.database)
               lane_svcs)

(* Execute the block's branches on the domain pool. Branches are grouped
   into lanes by connection alias: branches sharing a lane run serially on
   one domain in declaration order, each still in its own clock frame
   starting at the block's [t0]. Every branch buffers its trace events and
   state writes; at the join the buffers are replayed on the calling
   domain in declaration order — the exact interleaving the sequential
   combinator produces. If a branch raised, the buffers of the preceding
   branches plus the failing branch's partial buffer are replayed and the
   exception rethrown, so the observable prefix matches a sequential run
   dying at the same statement (with the block's clock, like the
   sequential combinator's, left at [t0]). *)
let run_branches_on_domains st dp stmts ~exec =
  let t0 = World.now_ms st.world in
  let n = List.length stmts in
  let bufs = take_bufs n in
  let fails : exn option array = Array.make n None in
  let ends = Array.make n t0 in
  let lane_tbl = Hashtbl.create 8 in
  let lanes = ref [] in
  (* lanes in first-appearance order, each holding (index, stmt) pairs in
     declaration order; a lane — a branch's whole statement list — is the
     unit of domain work, so coordination costs are paid per connection,
     not per statement *)
  List.iteri
    (fun i s ->
      let a = Option.get (lane_alias s) in
      match Hashtbl.find_opt lane_tbl a with
      | Some cell -> cell := (i, s) :: !cell
      | None ->
          let cell = ref [ (i, s) ] in
          Hashtbl.replace lane_tbl a cell;
          lanes := cell :: !lanes)
    stmts;
  let jobs =
    List.rev_map
      (fun cell () ->
        (* save/restore rather than set/None: a domain that helps drain
           another pool's queue between statements must never find its
           buffer silently dropped *)
        let prev = Domain.DLS.get branch_key in
        List.iter
          (fun (i, s) ->
            Domain.DLS.set branch_key (Some bufs.(i));
            match
              Fun.protect
                ~finally:(fun () -> Domain.DLS.set branch_key prev)
                (fun () ->
                  World.in_frame st.world ~start_ms:t0 (fun () -> exec s))
            with
            | (), end_ms -> ends.(i) <- end_ms
            | exception e -> fails.(i) <- Some e)
          (List.rev !cell))
      !lanes
  in
  Dpool.run_all dp jobs;
  let replay i =
    let b = bufs.(i) in
    for k = 0 to b.bw_n - 1 do
      b.bwrites.(k) ()
    done;
    for k = 0 to b.bev_n - 1 do
      deliver st b.bevents.(k)
    done
  in
  let rec merge i =
    if i < n then begin
      replay i;
      match fails.(i) with Some e -> raise e | None -> merge (i + 1)
    end
  in
  Fun.protect ~finally:(fun () -> return_bufs bufs) (fun () -> merge 0);
  World.advance_ms st.world (Array.fold_left max t0 ends -. t0);
  (* the same wave summary the sequential combinator path emits, from the
     same virtual frame arithmetic: byte-identical at any pool width *)
  tell st
    (Trace.Wave
       {
         branches = n;
         crit_ms = Array.fold_left (fun acc e -> max acc (e -. t0)) 0.0 ends;
         serial_ms = Array.fold_left (fun acc e -> acc +. (e -. t0)) 0.0 ends;
       })

(* A fan-out of independent single-site verbs (the second phase of 2PC,
   the in-doubt resolution pass): account them concurrently so the phase
   costs one round trip of virtual latency, not one per participant.
   Execution stays sequential — the combinator serializes effects — so
   this changes only the virtual-time charge. *)
let fan_out world f items =
  match items with
  | [] | [ _ ] -> List.iter f items
  | items -> ignore (World.parallel world (List.map (fun x () -> f x) items))

(* ---- in-doubt resolution ------------------------------------------------- *)

(* Drive one stranded prepared transaction to its logged verdict. The 2PC
   verbs are idempotent, so a transaction whose commit actually happened
   (only the acknowledgement was lost) re-acks harmlessly. *)
let resolve_entry st (e : Recovery_log.entry) =
  let site = Lam.site e.Recovery_log.lam in
  if not (World.is_down st.world site) then begin
    let verdict = Option.get e.Recovery_log.verdict in
    emit st "in-doubt %s: site %s reachable, replaying %s" e.Recovery_log.task
      site
      (Recovery_log.verdict_to_string verdict);
    let r =
      match verdict with
      | Recovery_log.Commit -> Lam.commit e.Recovery_log.lam
      | Recovery_log.Abort -> Lam.rollback e.Recovery_log.lam
    in
    match r with
    | Ok () ->
        let s = match verdict with Recovery_log.Commit -> C | Recovery_log.Abort -> A in
        set_status st e.Recovery_log.task s;
        deferred (fun () ->
            Recovery_log.mark_resolved st.rlog e.Recovery_log.task;
            st.recovered <- st.recovered + 1);
        tell st
          (Trace.Recovered
             {
               task = e.Recovery_log.task;
               site;
               verdict =
                 (match verdict with
                 | Recovery_log.Commit -> Trace.Commit
                 | Recovery_log.Abort -> Trace.Abort);
             })
    | Error (Lam.Local _) ->
        (* the LDBMS resolved it unilaterally (local abort) *)
        set_status st e.Recovery_log.task A;
        deferred (fun () ->
            Recovery_log.mark_resolved st.rlog e.Recovery_log.task)
    | Error (Lam.Network _ | Lam.Lost _ | Lam.In_doubt _) -> ()
  end

let resolve_alias st alias =
  List.iter (resolve_entry st) (Recovery_log.unresolved_for_alias st.rlog alias)

(* After the program ends, wait (in virtual time, up to the grace budget)
   for sites holding in-doubt transactions to come back, re-polling at
   each scheduled recovery instant. *)
let final_recovery st =
  match Recovery_log.unresolved st.rlog with
  | [] -> ()
  | stranded ->
      emit st "resolution pass: %d in-doubt task(s), grace %.0f ms"
        (List.length stranded) st.grace_ms;
      fan_out st.world (resolve_entry st) stranded;
      let deadline = World.now_ms st.world +. st.grace_ms in
      let rec wait () =
        match Recovery_log.unresolved st.rlog with
        | [] -> ()
        | remaining ->
            let next =
              List.fold_left
                (fun acc e ->
                  match
                    World.next_recovery_ms st.world (Lam.site e.Recovery_log.lam)
                  with
                  | Some t -> min acc t
                  | None -> acc)
                infinity remaining
            in
            if next < infinity && next <= deadline then begin
              World.advance_ms st.world (max 0.0 (next -. World.now_ms st.world));
              fan_out st.world (resolve_entry st) remaining;
              wait ()
            end
            else
              List.iter
                (fun e ->
                  emit st "task %s remains in doubt (site %s unreachable)"
                    e.Recovery_log.task
                    (Lam.site e.Recovery_log.lam))
                remaining
      in
      wait ()

(* a connection for firing a recovery COMP: the open alias if any, else a
   fresh session to the service the alias was bound to *)
let recovery_conn st target =
  match Hashtbl.find_opt st.aliases (akey target) with
  | Some (Available lam) -> Some (lam, false)
  | Some (Unavailable _) | None -> (
      let svc =
        match Hashtbl.find_opt st.services (akey target) with
        | Some svc -> Some svc
        | None -> Directory.find_opt st.directory target
      in
      match svc with
      | None -> None
      | Some svc -> (
          match
            Lam.connect ~retry:st.policy
              ~on_retry:(retry_observer st ~where:svc.Service.site)
              ~on_trace:(tell_ev st) st.world svc
          with
          | Ok lam -> Some (lam, true)
          | Error _ -> None))

(* A commit group whose members did not all reach C is the paper's
   "incorrect" state (§3.2): the vital set split. Giving up on the global
   commit means (a) revoking the commit verdict of members still in doubt
   — the coordinator logs abort, so a site recovering later rolls its
   prepared transaction back instead of completing a commit the rest of
   the group never got — and (b) compensating the members that did
   commit, via any COMP registered for them. If every committed member
   could be undone the group degrades to a clean abort; otherwise the
   split is real and reported. *)
let settle_splits st =
  List.iter
    (fun (verdict, members) ->
      if
        verdict = Recovery_log.Commit
        && List.exists (fun n -> get_status st n <> C) members
      then begin
        let committed = List.filter (fun n -> get_status st n = C) members in
        emit st "commit group {%s} did not fully commit: {%s}"
          (String.concat ", " members)
          (String.concat ", "
             (List.map
                (fun n ->
                  Printf.sprintf "%s=%s" n (status_to_string (get_status st n)))
                members));
        List.iter
          (fun n ->
            match Recovery_log.find st.rlog n with
            | Some e when not e.Recovery_log.resolved ->
                e.Recovery_log.verdict <- Some Recovery_log.Abort;
                emit st "%s: commit verdict revoked, abort logged" n
            | Some _ | None -> ())
          members;
        if committed <> [] then begin
          List.iter
            (fun n ->
              match Hashtbl.find_opt st.comps (akey n) with
              | Some h when not (Hashtbl.mem st.statuses (akey h.ch_cname)) -> (
                  emit st "firing queued COMP %s to undo %s" h.ch_cname n;
                  declare st h.ch_cname h.ch_target;
                  match recovery_conn st h.ch_target with
                  | None -> set_status st h.ch_cname E
                  | Some (lam, fresh) ->
                      exec_comp_on st ~cname:h.ch_cname ~compensates:(Some n)
                        lam h.ch_commands;
                      if fresh then Lam.disconnect lam)
              | _ -> ())
            committed;
          if List.exists (fun n -> get_status st n = C) members then begin
            st.vital_split <- true;
            emit st "VITAL SPLIT: group {%s} left inconsistent"
              (String.concat ", " members)
          end
          else
            emit st "split healed: all committed members of {%s} compensated"
              (String.concat ", " members)
        end
      end)
    (Recovery_log.groups st.rlog);
  (* presumed abort seals the fate of whatever is still in doubt: its
     verdict is now abort, and the site will roll it back on recovery —
     globally the task is aborted even though the site has not acted *)
  List.iter
    (fun (e : Recovery_log.entry) ->
      if
        e.Recovery_log.verdict = Some Recovery_log.Abort
        && get_status st e.Recovery_log.task = E
      then begin
        emit st "%s: still in doubt at %s; will roll back on site recovery"
          e.Recovery_log.task
          (Lam.site e.Recovery_log.lam);
        set_status st e.Recovery_log.task A
      end)
    (Recovery_log.unresolved st.rlog)

(* ---- statement dispatch --------------------------------------------------- *)

let rec collect_comps acc = function
  | Comp { cname; compensates = Some t; target; commands } ->
      (akey t, { ch_cname = cname; ch_target = target; ch_commands = commands })
      :: acc
  | Comp { compensates = None; _ } -> acc
  | Parallel stmts | If (_, stmts, []) -> List.fold_left collect_comps acc stmts
  | If (_, a, b) ->
      List.fold_left collect_comps (List.fold_left collect_comps acc a) b
  | Open _ | Close _ | Task _ | Commit_tasks _ | Abort_tasks _ | Move _
  | Set_status _ ->
      acc

let rec exec_stmt st = function
  | Open { service; open_site; alias } -> (
      let k = akey alias in
      if Hashtbl.mem st.aliases k then err "alias %s already open" alias;
      match Directory.find_opt st.directory service with
      | None ->
          Hashtbl.replace st.aliases k
            (Unavailable (Printf.sprintf "unknown service %s" service))
      | Some svc ->
          Hashtbl.replace st.services k svc;
          (* The AT clause is informative: the directory knows the real
             site; a mismatch is a program error. *)
          (match open_site with
          | Some s when not (Sqlcore.Names.equal s svc.Service.site) ->
              err "service %s is at site %s, not %s" service svc.Service.site s
          | Some _ | None -> ());
          let conn =
            match dial st svc with
            | Ok lam, reused ->
                if st.pool <> None then
                  tell st
                    (Trace.Cache { layer = "pool"; hit = reused; key = service });
                tell st
                  (Trace.Opened
                     {
                       service;
                       site = svc.Service.site;
                       alias;
                       pooled = reused;
                     });
                Available lam
            | Error f, _ ->
                tell st
                  (Trace.Open_failed
                     { service; reason = Lam.failure_message f });
                Unavailable (Lam.failure_message f)
          in
          Hashtbl.replace st.aliases k conn)
  | Close aliases ->
      List.iter
        (fun alias ->
          match Hashtbl.find_opt st.aliases (akey alias) with
          | Some (Available lam) ->
              (* settle this connection's in-doubt transactions while the
                 program still holds it open *)
              resolve_alias st alias;
              (* presumed abort: prepared work with no surviving decision
                 is rolled back by the site once the session ends *)
              (if Recovery_log.unresolved_for_alias st.rlog alias = [] then
                 match Ldbms.Session.txn_state (Lam.session lam) with
                 | Some Ldbms.Txn.Prepared ->
                     ignore (Ldbms.Session.rollback (Lam.session lam))
                 | Some _ | None -> ());
              release st lam;
              tell st (Trace.Closed { alias });
              Hashtbl.remove st.aliases (akey alias)
          | Some (Unavailable _) -> Hashtbl.remove st.aliases (akey alias)
          | None -> err "CLOSE of unopened alias %s" alias)
        aliases
  | Task task -> exec_task st task
  | Parallel stmts -> (
      match st.dpool with
      | Some dp when domain_eligible st stmts ->
          (* real parallelism: branches on worker domains, effects buffered
             and merged in declaration order at the join *)
          run_branches_on_domains st dp stmts ~exec:(exec_stmt st)
      | Some _ | None ->
          (* Declarations must be deterministic regardless of branch
             timing, so run branches under the world's parallel combinator,
             which serializes effects but accounts time concurrently. *)
          let _, durs =
            World.parallel_timed st.world
              (List.map (fun s () -> exec_stmt st s) stmts)
          in
          if List.length durs >= 2 then
            tell st
              (Trace.Wave
                 {
                   branches = List.length durs;
                   crit_ms = List.fold_left max 0.0 durs;
                   serial_ms = List.fold_left ( +. ) 0.0 durs;
                 }))
  | If (cond, then_b, else_b) ->
      let taken = eval_cond st cond in
      tell st (Trace.Branch { cond = Dol_pp.cond_to_string cond; taken });
      if taken then List.iter (exec_stmt st) then_b
      else List.iter (exec_stmt st) else_b
  | Commit_tasks names ->
      (* log the global verdict before the second phase: this is the
         coordinator's decision record that makes in-doubt outcomes
         resolvable *)
      let prepared = List.filter (fun n -> get_status st n = P) names in
      if prepared <> [] then
        tell st (Trace.Decision { verdict = Trace.Commit; tasks = prepared });
      Recovery_log.record_decision st.rlog Recovery_log.Commit prepared;
      (* the participants are independent: the commit phase costs one
         round trip of virtual latency, not one per task *)
      fan_out st.world (commit_task st) names
  | Abort_tasks names ->
      let prepared = List.filter (fun n -> get_status st n = P) names in
      if prepared <> [] then
        tell st (Trace.Decision { verdict = Trace.Abort; tasks = prepared });
      Recovery_log.record_decision st.rlog Recovery_log.Abort prepared;
      fan_out st.world (abort_task st) names
  | Comp { cname; compensates; target; commands } ->
      exec_comp st ~cname ~compensates ~target ~commands
  | Move { mname; src; dst; dest_table; query; reduce } ->
      exec_move st ~mname ~src ~dst ~dest_table ~query ~reduce
  | Set_status n ->
      tell st (Trace.Dolstatus n);
      st.dolstatus <- n

(* Release every connection the program still holds, rolling back prepared
   work whose verdict is settled by presumed abort (no surviving decision
   entry). This is the epilogue of a normal run, but it must also run when
   the program dies on a [Program_error]: connections checked out of the
   pool before the faulty statement would otherwise never be checked back
   in, and their transactions never settled. *)
let release_all st =
  Hashtbl.iter
    (fun alias conn ->
      match conn with
      | Available lam ->
          (if Recovery_log.unresolved_for_alias st.rlog alias = [] then
             match Ldbms.Session.txn_state (Lam.session lam) with
             | Some Ldbms.Txn.Prepared ->
                 ignore (Ldbms.Session.rollback (Lam.session lam))
             | Some _ | None -> ());
          release st lam;
          tell st (Trace.Closed { alias })
      | Unavailable _ -> ())
    st.aliases;
  Hashtbl.reset st.aliases

let outcome_of st ~t0 =
  let statuses =
    List.rev_map (fun k -> (k, Hashtbl.find st.statuses k)) st.status_order
  in
  let results =
    List.filter_map
      (fun (k, _) ->
        Option.map (fun r -> (k, r)) (Hashtbl.find_opt st.results k))
      statuses
  in
  let rowcounts =
    List.filter_map
      (fun (k, _) ->
        Option.map (fun n -> (k, n)) (Hashtbl.find_opt st.rowcounts k))
      statuses
  in
  {
    dolstatus = st.dolstatus;
    statuses;
    results;
    rowcounts;
    elapsed_ms = World.now_ms st.world -. t0;
    retries = st.retries;
    recovered = st.recovered;
    in_doubt = List.length (Recovery_log.unresolved st.rlog);
    vital_split = st.vital_split;
  }

(* ---- stepped execution ----------------------------------------------------
   The interleaving harness runs several programs against shared sites one
   top-level statement at a time. [start] builds the engine state without
   executing anything; [step] executes the next statement; [finish] drains
   the rest and runs the epilogue. [run] is [finish (start ...)], so the
   monolithic path and the stepped path cannot drift apart. *)

type stepper = {
  sp_st : state;
  sp_t0 : float;
  mutable sp_remaining : Dol_ast.program;
  mutable sp_error : string option;
  mutable sp_result : (outcome, string) result option;
}

let start ?on_event ?(on_trace = fun _ -> ())
    ?(retry = Retry_policy.default) ?(recovery_grace_ms = 500.0) ?pool ?dpool
    ?move_cache ~directory ~world program =
  let st =
    {
      directory;
      world;
      policy = retry;
      grace_ms = recovery_grace_ms;
      pool;
      dpool;
      move_cache;
      aliases = Hashtbl.create 8;
      services = Hashtbl.create 8;
      statuses = Hashtbl.create 8;
      status_order = [];
      task_target = Hashtbl.create 8;
      results = Hashtbl.create 8;
      rowcounts = Hashtbl.create 8;
      dolstatus = -1;
      on_event;
      on_trace;
      rlog = Recovery_log.create ();
      comps = Hashtbl.create 4;
      retries = 0;
      recovered = 0;
      vital_split = false;
    }
  in
  List.iter
    (fun (task, h) ->
      if not (Hashtbl.mem st.comps task) then Hashtbl.replace st.comps task h)
    (List.rev (List.fold_left collect_comps [] program));
  let t0 = World.now_ms world in
  Log.info (fun f ->
      f "running DOL program: %d statements, %d tasks" (List.length program)
        (List.length (task_names program)));
  {
    sp_st = st;
    sp_t0 = t0;
    sp_remaining = program;
    sp_error = None;
    sp_result = None;
  }

let step sp =
  match sp.sp_remaining with
  | [] -> false
  | s :: rest -> (
      sp.sp_remaining <- rest;
      match exec_stmt sp.sp_st s with
      | () -> true
      | exception Program_error m ->
          sp.sp_error <- Some m;
          sp.sp_remaining <- [];
          true)

let finish sp =
  match sp.sp_result with
  | Some r -> r
  | None ->
      while step sp do
        ()
      done;
      let st = sp.sp_st in
      let r =
        match sp.sp_error with
        | Some m ->
            (* the program itself is faulty, but the connections it opened
               are not: run the release/presumed-abort pass before
               reporting *)
            release_all st;
            Error m
        | None ->
            (* settle stranded 2PC decisions, then judge the commit groups *)
            final_recovery st;
            settle_splits st;
            (* close any aliases the program forgot *)
            release_all st;
            Ok (outcome_of st ~t0:sp.sp_t0)
      in
      sp.sp_result <- Some r;
      r

let run ?on_event ?on_trace ?retry ?recovery_grace_ms ?pool ?dpool ?move_cache
    ~directory ~world program =
  finish
    (start ?on_event ?on_trace ?retry ?recovery_grace_ms ?pool ?dpool
       ?move_cache ~directory ~world program)

let run_text ?on_event ?on_trace ?retry ?recovery_grace_ms ?pool ?dpool
    ?move_cache ~directory ~world text =
  match Dol_parser.parse text with
  | program ->
      run ?on_event ?on_trace ?retry ?recovery_grace_ms ?pool ?dpool
        ?move_cache ~directory ~world program
  | exception Dol_parser.Error (m, l, c) ->
      Error (Printf.sprintf "DOL parse error at %d:%d: %s" l c m)

let status_of (outcome : outcome) name =
  match
    List.find_opt
      (fun (n, _) -> String.equal n (String.lowercase_ascii name))
      outcome.statuses
  with
  | Some (_, s) -> s
  | None -> N

let result_of (outcome : outcome) name =
  List.find_map
    (fun (n, r) ->
      if String.equal n (String.lowercase_ascii name) then Some r else None)
    outcome.results
