type verdict = Commit | Abort

type entry = {
  task : string;
  alias : string;
  lam : Lam.t;
  mutable verdict : verdict option;
  mutable resolved : bool;
}

type t = {
  mutable entries : entry list;  (* oldest first *)
  mutable groups : (verdict * string list) list;  (* decision order *)
}

let create () = { entries = []; groups = [] }
let key = String.lowercase_ascii

let record_prepared t ~task ~alias lam =
  t.entries <-
    t.entries
    @ [ { task = key task; alias = key alias; lam; verdict = None; resolved = false } ]

let find t task = List.find_opt (fun e -> e.task = key task) t.entries

let record_decision t verdict tasks =
  let named = List.map key tasks in
  let members =
    List.filter_map
      (fun n ->
        match find t n with
        | Some e ->
            e.verdict <- Some verdict;
            Some n
        | None -> None)
      named
  in
  if members <> [] then t.groups <- t.groups @ [ (verdict, members) ]

let mark_resolved t task =
  match find t task with Some e -> e.resolved <- true | None -> ()

let unresolved t =
  List.filter (fun e -> e.verdict <> None && not e.resolved) t.entries

let unresolved_for_alias t alias =
  List.filter (fun e -> e.alias = key alias) (unresolved t)

let groups t = t.groups

let verdict_to_string = function Commit -> "commit" | Abort -> "abort"
