(* The domain pool now lives at the bottom of the stack
   (Sqlcore.Taskpool) so the relational operators can draw workers from
   it too; this module keeps the engine-facing name and API. The shared
   per-width registry is Taskpool's, so an engine asking for width n and
   a test asking for the same width still share one pool. *)

include Sqlcore.Taskpool
