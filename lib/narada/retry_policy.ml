module World = Netsim.World

type t = {
  max_attempts : int;
  base_backoff_ms : float;
  multiplier : float;
  max_backoff_ms : float;
  jitter : float;
  budget_ms : float;
}

type classification = Retryable of string | Terminal of string

let default =
  {
    max_attempts = 4;
    base_backoff_ms = 5.0;
    multiplier = 2.0;
    max_backoff_ms = 80.0;
    jitter = 0.25;
    budget_ms = 250.0;
  }

let none =
  {
    max_attempts = 1;
    base_backoff_ms = 0.0;
    multiplier = 1.0;
    max_backoff_ms = 0.0;
    jitter = 0.0;
    budget_ms = 0.0;
  }

let aggressive =
  {
    max_attempts = 6;
    base_backoff_ms = 5.0;
    multiplier = 2.0;
    max_backoff_ms = 160.0;
    jitter = 0.25;
    budget_ms = 1000.0;
  }

(* Jitter must not depend on wall time or global PRNG state, or chaos runs
   stop replaying; derive it from the operation key and attempt number. *)
let backoff_ms p ~key ~attempt =
  let raw =
    min p.max_backoff_ms
      (p.base_backoff_ms *. (p.multiplier ** float_of_int (attempt - 1)))
  in
  if p.jitter <= 0.0 then raw
  else
    let rng = Random.State.make [| Hashtbl.hash key; attempt; 0x5eed |] in
    let f = 1.0 +. (p.jitter *. ((Random.State.float rng 2.0) -. 1.0)) in
    raw *. f

let run p world ~key ~classify ?(on_retry = fun ~attempt:_ ~delay_ms:_ ~reason:_ -> ())
    f =
  let t0 = World.now_ms world in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e as err -> (
        match classify e with
        | Terminal _ -> err
        | Retryable reason ->
            if attempt >= p.max_attempts then err
            else
              let delay = backoff_ms p ~key ~attempt in
              if World.now_ms world -. t0 +. delay > p.budget_ms then err
              else begin
                (* the backoff wait is virtual time: charged to the clock,
                   never to the wall *)
                World.advance_ms world delay;
                on_retry ~attempt ~delay_ms:delay ~reason;
                go (attempt + 1)
              end)
  in
  go 1
