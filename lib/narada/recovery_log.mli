(** The coordinator's decision log for two-phase commit.

    Every task that reaches the prepared-to-commit state [P] is recorded
    here together with its connection; when the program issues the global
    COMMIT/ABORT the verdict is logged {e before} the second phase runs.
    A site that fails inside the second-phase window leaves a prepared
    transaction stranded at the LDBMS — the in-doubt state — and this log
    is exactly the information a recovery pass needs to drive it to the
    logged verdict once the site answers again. *)

type verdict = Commit | Abort

type entry = {
  task : string;  (** task name, lowercased *)
  alias : string;  (** connection alias the task ran on *)
  lam : Lam.t;
      (** the connection — kept even past CLOSE so a stranded prepared
          transaction remains resolvable, modelling the LDBMS's own
          recovery manager holding it *)
  mutable verdict : verdict option;  (** the global decision, once taken *)
  mutable resolved : bool;  (** reached a definitive C/A *)
}

type t

val create : unit -> t

val record_prepared : t -> task:string -> alias:string -> Lam.t -> unit
(** Log that [task] reached [P] on [alias]. *)

val record_decision : t -> verdict -> string list -> unit
(** Log the global verdict for the named tasks (a commit/abort group).
    Tasks that never reached [P] are ignored. *)

val mark_resolved : t -> string -> unit
(** The task reached a definitive outcome (committed or rolled back). *)

val find : t -> string -> entry option
val unresolved : t -> entry list
(** Entries with a verdict but no definitive outcome: the in-doubt set. *)

val unresolved_for_alias : t -> string -> entry list

val groups : t -> (verdict * string list) list
(** Every logged decision with its member tasks, in decision order. Used
    after recovery to detect a vital-set split: a commit group whose
    members did not all reach [C]. *)

val verdict_to_string : verdict -> string
