(* Typed engine trace events. The engine used to format strings straight
   into its [on_event] sink; those strings are now a {!render}ing of these
   events, so the human-readable trace is unchanged while programs (tests,
   the metrics registry, the benches) observe structured values. *)

type verdict = Commit | Abort

type kind =
  | Opened of { service : string; site : string; alias : string; pooled : bool }
  | Open_failed of { service : string; reason : string }
  | Closed of { alias : string }
  | Status of { task : string; status : Dol_ast.status }
  | Branch of { cond : string; taken : bool }
  | Moved of {
      mname : string;
      src : string;  (* source site *)
      dst : string;  (* destination site *)
      dest_table : string;
      rows : int;
      bytes : int;  (* payload shipped on the wire; 0 on a cache hit *)
      reduced : bool;  (* semijoin rewrite was applied to the shipped query *)
      cached : bool;  (* served from the shipped-result cache *)
    }
  | Chunk of {
      mname : string;
      src : string;
      dst : string;
      seq : int;  (* 1-based position in the stream *)
      total : int;  (* chunks in the stream *)
      rows : int;
      bytes : int;  (* this installment's payload *)
      window : int;  (* sender's in-flight credit window *)
    }
  | Retry of {
      op : string;
      site : string;
      attempt : int;
      delay_ms : float;
      reason : string;
    }
  | Decision of { verdict : verdict; tasks : string list }
  | Recovered of { task : string; site : string; verdict : verdict }
  | Pool_stale of { service : string; site : string }
  | Cache of { layer : string; hit : bool; key : string }
  | Snapshot of { site : string; ts : int }
  | Conflict of { site : string; table : string; op : string }
  | Conflict_abort of { task : string; site : string }
  | Parallel of {
      site : string;
      op : string;  (* "join" | "filter" *)
      partitions : int;
      build_rows : int;
      probe_rows : int;
    }
  | Wave of {
      branches : int;
      crit_ms : float;  (* slowest branch: the wave's critical path *)
      serial_ms : float;  (* sum of branch durations: the serial estimate *)
    }
  | Dolstatus of int
  | Note of string

type event = { at_ms : float; kind : kind; tag : string option }

let make ?tag ~at_ms kind = { at_ms; kind; tag }
let with_tag tag ev = if ev.tag = None then { ev with tag = Some tag } else ev

let verdict_to_string = function Commit -> "COMMIT" | Abort -> "ABORT"

let status_of_verdict = function Commit -> Dol_ast.C | Abort -> Dol_ast.A

(* Renderings of the pre-existing events reproduce the engine's historical
   strings byte for byte: tests (and users) grep the textual trace. *)
let render_kind = function
  | Opened { service; site; alias; pooled } ->
      Printf.sprintf "OPEN %s AT %s AS %s%s" service site alias
        (if pooled then " (pooled)" else "")
  | Open_failed { service; reason } ->
      Printf.sprintf "OPEN %s failed: %s" service reason
  | Closed { alias } -> Printf.sprintf "CLOSE %s" alias
  | Status { task; status } ->
      Printf.sprintf "%s -> %s" task (Dol_ast.status_to_string status)
  | Branch { cond; taken } ->
      Printf.sprintf "IF %s => %s" cond (if taken then "THEN" else "ELSE")
  | Moved { mname; src; dst; dest_table; rows; bytes; reduced; cached } ->
      Printf.sprintf "MOVE %s %s -> %s: %d row(s), %d byte(s) into %s%s%s"
        mname src dst rows bytes dest_table
        (if reduced then " (semijoin-reduced)" else "")
        (if cached then " (cache hit)" else "")
  | Chunk { mname; src; dst; seq; total; rows; bytes; window } ->
      Printf.sprintf "MOVE %s chunk %d/%d %s -> %s: %d row(s), %d byte(s) (window %d)"
        mname seq total src dst rows bytes window
  | Retry { op; site; attempt; delay_ms; reason } ->
      Printf.sprintf "retry %s@%s attempt %d (+%.2f ms backoff): %s" op site
        attempt delay_ms reason
  | Decision { verdict; tasks } ->
      Printf.sprintf "2PC decision %s {%s}" (verdict_to_string verdict)
        (String.concat ", " tasks)
  | Recovered { task; verdict; _ } ->
      Printf.sprintf "recovered %s -> %s" task
        (Dol_ast.status_to_string (status_of_verdict verdict))
  | Pool_stale { service; site } ->
      Printf.sprintf "pool: discarded stale connection to %s at %s" service
        site
  | Cache { layer; hit; key } ->
      Printf.sprintf "%s cache %s: %s" layer (if hit then "hit" else "miss")
        key
  | Snapshot { site; ts } -> Printf.sprintf "snapshot %d acquired at %s" ts site
  | Conflict { site; table; op } ->
      Printf.sprintf "write-write conflict on %s at %s (%s)" table site op
  | Conflict_abort { task; site } ->
      Printf.sprintf "%s aborted: lost write-write race at %s" task site
  | Parallel { site; op; partitions; build_rows; probe_rows } ->
      Printf.sprintf "parallel %s at %s: %d partition(s), build=%d probe=%d" op
        site partitions build_rows probe_rows
  | Wave { branches; crit_ms; serial_ms } ->
      Printf.sprintf "wave: %d branch(es), %.2f ms critical / %.2f ms serial"
        branches crit_ms serial_ms
  | Dolstatus n -> Printf.sprintf "DOLSTATUS = %d" n
  | Note m -> m

let render e = Printf.sprintf "[%8.2f ms] %s" e.at_ms (render_kind e.kind)
