type mode = With_commit | No_commit
type status = P | C | A | E | N | X

type cond =
  | Status_is of string * status
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type task = { tname : string; mode : mode; target : string; commands : string }

type stmt =
  | Open of { service : string; open_site : string option; alias : string }
  | Close of string list
  | Task of task
  | Parallel of stmt list
  | If of cond * stmt list * stmt list
  | Commit_tasks of string list
  | Abort_tasks of string list
  | Comp of {
      cname : string;
      compensates : string option;
      target : string;
      commands : string;
    }
  | Move of {
      mname : string;
      src : string;
      dst : string;
      dest_table : string;
      query : string;
      reduce : (string * string) option;
          (* semijoin reduction: (column in the query's scope, probe SQL
             run at [dst] whose distinct values restrict the column) *)
    }
  | Set_status of int

type program = stmt list

let status_to_string = function
  | P -> "P"
  | C -> "C"
  | A -> "A"
  | E -> "E"
  | N -> "N"
  | X -> "X"

let status_of_string s =
  match String.uppercase_ascii s with
  | "P" -> Some P
  | "C" -> Some C
  | "A" -> Some A
  | "E" -> Some E
  | "N" -> Some N
  | "X" -> Some X
  | _ -> None

let rec stmt_task_names = function
  | Task t -> [ t.tname ]
  | Move m -> [ m.mname ]
  | Comp c -> [ c.cname ]
  | Parallel stmts -> List.concat_map stmt_task_names stmts
  | If (_, a, b) -> List.concat_map stmt_task_names a @ List.concat_map stmt_task_names b
  | Open _ | Close _ | Commit_tasks _ | Abort_tasks _ | Set_status _ -> []

let task_names p = List.concat_map stmt_task_names p
