(** The DOL engine: executes DOL programs, coordinating LAMs (§4.1).

    Task statuses evolve as in the paper: a NOCOMMIT task that executes
    without error reaches the prepared-to-commit state [P]; a committing
    task reaches [C]; a local abort gives [A]; an unreachable site gives
    [E]; compensation gives the compensated task [X]. COMMIT and ABORT
    drive prepared tasks to [C]/[A]. IF conditions read these letters.

    Fault tolerance: every site interaction runs under a {!Retry_policy}
    (transient failures retried with backoff charged to the virtual
    clock). Each task that reaches [P] is recorded in a
    {!Recovery_log} together with the later global verdict; a site that
    fails inside the 2PC second-phase window leaves the task at [E]
    (in doubt), and after the program ends a resolution pass re-polls
    such sites — waiting in virtual time up to a grace budget for
    scheduled recoveries — and drives stranded prepared transactions to
    the logged verdict. A commit group whose members still did not all
    reach [C] is a {e vital split} (the paper's "incorrect" state,
    §3.2): the engine fires any COMP statements registered for the
    committed members (even ones in untaken branches), and reports the
    split in the outcome if members remain committed.

    An [Error] result means the {e program} was malformed (unknown alias,
    duplicate task name, ...) — execution failures are normal outcomes,
    reported in the statuses. *)

type outcome = {
  dolstatus : int;  (** return code set by [DOLSTATUS = n]; -1 if never set *)
  statuses : (string * Dol_ast.status) list;
      (** every declared task/move/comp, in order of appearance *)
  results : (string * Sqlcore.Relation.t) list;
      (** partial results: task name -> last rows produced *)
  rowcounts : (string * int) list;
      (** task name -> rows affected by its DML statements *)
  elapsed_ms : float;  (** virtual time consumed by the program *)
  retries : int;  (** total per-operation retry attempts across all LAMs *)
  recovered : int;
      (** in-doubt tasks driven to their logged verdict by recovery *)
  in_doubt : int;
      (** tasks still stranded in doubt when the engine gave up *)
  vital_split : bool;
      (** a commit group ended with some members committed and some not,
          and compensation could not undo the committed ones *)
}

val run :
  ?on_event:(string -> unit) ->
  ?on_trace:(Trace.event -> unit) ->
  ?retry:Retry_policy.t ->
  ?recovery_grace_ms:float ->
  ?pool:Pool.t ->
  ?dpool:Dpool.t ->
  ?move_cache:Lam.transfer_cache ->
  directory:Directory.t ->
  world:Netsim.World.t ->
  Dol_ast.program ->
  (outcome, string) result
(** [on_trace] receives one typed {!Trace.event} per coordination step
    (opens/closes, task status transitions, branch decisions, data moves
    with byte counts and semijoin/cache provenance, retries, 2PC
    decisions, in-doubt recoveries, cache consultations), timestamped
    with the virtual clock. [on_event] receives {!Trace.render} of the
    same stream — the historical line-oriented trace; both sinks may be
    installed at once.

    A [Program_error] (the [Error _] return) still runs the
    release/presumed-abort epilogue: connections the faulty program
    already opened are checked back into the pool (or disconnected) and
    their undecided prepared transactions rolled back.

    [retry] (default {!Retry_policy.default}) governs every LAM
    operation. [recovery_grace_ms] (default 500) bounds how long, in
    virtual time, the end-of-program resolution pass waits for sites
    holding in-doubt transactions to recover.

    [pool] makes OPEN check an idle connection out of the pool instead of
    dialing (stale ones are validated out, see {!Pool}) and CLOSE check
    it back in instead of disconnecting — including the implicit CLOSE of
    aliases the program forgot. [move_cache] is consulted by every MOVE:
    a hit ships nothing (see {!Lam.transfer}).

    [dpool] enables real parallelism: the branches of a PARBEGIN block
    whose shape proves they share no connection, database or
    order-sensitive PRNG (all TASK/MOVE, fresh distinct names, pairwise
    distinct lane services, MOVEs funnelling into one quiet destination,
    no message loss, no shipped-result cache, no nesting) execute on
    separate OCaml domains, with every trace event and engine-state write
    buffered per branch and replayed in declaration order at the join —
    the outcome, trace stream and virtual-time accounting are identical
    to a run without [dpool]. Blocks that do not qualify silently fall
    back to the sequential combinator. With or without [dpool], 2PC
    second-phase fan-outs and the in-doubt resolution pass are accounted
    concurrently in virtual time (one round trip, not one per
    participant). *)

val run_text :
  ?on_event:(string -> unit) ->
  ?on_trace:(Trace.event -> unit) ->
  ?retry:Retry_policy.t ->
  ?recovery_grace_ms:float ->
  ?pool:Pool.t ->
  ?dpool:Dpool.t ->
  ?move_cache:Lam.transfer_cache ->
  directory:Directory.t ->
  world:Netsim.World.t ->
  string ->
  (outcome, string) result
(** Parse and run DOL program text. *)

(** {2 Stepped execution}

    The interleaving harness runs several multitransactions' programs
    against shared sites one top-level statement at a time, under a
    deterministic schedule. {!start} builds the engine state without
    executing anything; each {!step} executes the next top-level
    statement (a PARBEGIN block counts as one statement); {!finish}
    drains whatever remains and runs the end-of-program epilogue —
    in-doubt resolution, split settlement, release of held connections —
    exactly as {!run} would. [run] itself is [finish (start ...)], so
    the two paths cannot drift apart. *)

type stepper

val start :
  ?on_event:(string -> unit) ->
  ?on_trace:(Trace.event -> unit) ->
  ?retry:Retry_policy.t ->
  ?recovery_grace_ms:float ->
  ?pool:Pool.t ->
  ?dpool:Dpool.t ->
  ?move_cache:Lam.transfer_cache ->
  directory:Directory.t ->
  world:Netsim.World.t ->
  Dol_ast.program ->
  stepper
(** Prepare a stepped run. Takes the same knobs as {!run}; no statement
    executes until the first {!step} (or {!finish}). *)

val step : stepper -> bool
(** Execute the next top-level statement. [true] if a statement ran —
    including one that died on a [Program_error], which poisons the run
    and leaves the error for {!finish} to report; [false] when the
    program is exhausted and only {!finish} remains. *)

val finish : stepper -> (outcome, string) result
(** Drain any remaining statements, then run the epilogue and build the
    outcome. Idempotent: later calls return the cached result without
    re-running anything. *)

val status_of : outcome -> string -> Dol_ast.status
(** Status of a named task; [N] if unknown. *)

val result_of : outcome -> string -> Sqlcore.Relation.t option

val branch_buf_stats : unit -> int * int
(** [(reuse_hits, reuse_misses)] of the process-wide per-branch buffer
    freelist used by domain-pool execution: a hit means a PARBEGIN branch
    ran with a recycled trace/state buffer instead of allocating one.
    Width-dependent by nature (buffering only happens on the domain
    path), so this is bench observability — deliberately not part of the
    session metrics JSON, which is byte-identical across widths. *)
