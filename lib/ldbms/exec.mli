(** Statement execution against one local database.

    This module is the query processor of an LDBMS; transaction control
    and capability enforcement live in {!Session}. DML callers must pass
    the enclosing transaction: reads go through its snapshot (plus its own
    staged writes) and writes stage intents resolved at commit. A write
    that loses the first-committer-wins race raises {!Txn.Conflict}. *)

exception Error of string
(** Semantic error: unknown table/column, ambiguity, type error. *)

val set_join_planner : bool -> unit
(** Enable/disable the physical join planner (hash joins and index
    nested-loop over equi-join conjuncts). On by default; disabling falls
    back to the Cartesian-product-then-filter pipeline. The result rows are
    identical either way — the toggle exists for differential testing and
    benchmarking. *)

val join_planner_enabled : unit -> bool

type par_note = {
  pn_op : string;  (** ["join"] or ["filter"] *)
  pn_partitions : int;  (** partitions (join) / chunks (filter) used *)
  pn_build_rows : int;  (** [0] for a filter *)
  pn_probe_rows : int;  (** input rows for a filter *)
}
(** One intra-operator parallel execution, reported through
    {!run_select}'s [?note] callback so transport layers can surface it
    as a trace event. Notes are emitted only when the parallel path
    actually ran; they are a pure function of the data and the
    {!set_parallel_exec} knobs, never of the pool width, so traces stay
    byte-identical across widths. *)

val set_parallel_exec :
  ?enabled:bool ->
  ?min_rows:int ->
  ?max_partitions:int ->
  ?width:int ->
  unit ->
  unit
(** Configure intra-operator parallelism (process-wide, like
    {!set_join_planner}). [enabled] toggles it (default on); [min_rows]
    is the build+probe (or scan) row floor below which execution stays
    sequential (default 8192); [max_partitions] caps the data-dependent
    partition count (default 8); [width] fixes the worker-pool width,
    [0] (default) meaning [Domain.recommended_domain_count ()]. Results
    are identical at any setting — only wall-clock changes. *)

val parallel_exec_enabled : unit -> bool

val set_dict_epoch : ?ident:int -> int -> unit
(** Declare the calling dictionary's identity and epoch for subsequent
    local statements: both are folded into the compiled-predicate cache
    key (the multidatabase layer passes its {!Msql.Gdd.id} and the sum of
    its GDD/AD versions before executing local statements; [ident]
    defaults to [0] for bare LDBMS sessions). A changed epoch therefore
    invalidates by construction — old-generation keys stop matching and
    are pruned — without clearing entries that belong to {e other}
    dictionaries, so sessions with different dictionary versions
    interleaving statements no longer thrash the whole cache, and equal
    epoch numbers from different dictionaries cannot collide. *)

val compiled_cache_stats : unit -> int * int * int
(** [(hits, misses, live_entries)] of the compiled-predicate/projection
    cache. Hits are per statement, not per row. *)

val run_select :
  ?txn:Txn.t ->
  ?note:(par_note -> unit) ->
  Database.t ->
  ?outer:Eval.env ->
  Sqlfront.Ast.select ->
  Sqlcore.Relation.t
(** Without [txn], reads the latest committed versions; with it, the
    transaction's snapshot view including its staged writes. [note] is
    invoked once per intra-operator parallel join/filter executed while
    evaluating the statement. *)

val run_insert :
  Database.t ->
  txn:Txn.t ->
  table:string ->
  columns:string list option ->
  source:Sqlfront.Ast.insert_source ->
  int
(** Number of rows inserted. *)

val run_update :
  Database.t ->
  txn:Txn.t ->
  table:string ->
  assignments:(string * Sqlfront.Ast.expr) list ->
  where:Sqlfront.Ast.expr option ->
  int
(** Number of rows updated. *)

val run_delete :
  Database.t -> txn:Txn.t -> table:string -> where:Sqlfront.Ast.expr option -> int

val run_create_table :
  Database.t -> txn:Txn.t -> table:string -> columns:Sqlfront.Ast.column_def list -> unit

val run_drop_table : Database.t -> txn:Txn.t -> table:string -> unit

val run_create_view :
  Database.t -> txn:Txn.t -> view:string -> query:Sqlfront.Ast.select -> unit
(** The definition is validated by evaluating it once. *)

val run_drop_view : Database.t -> txn:Txn.t -> view:string -> unit

val view_schema : Database.t -> Sqlfront.Ast.select -> Sqlcore.Schema.t
(** Result schema of a view definition (evaluates the view). *)

val run_create_index :
  Database.t -> txn:Txn.t -> index:string -> table:string -> column:string -> unit

val run_drop_index : Database.t -> txn:Txn.t -> index:string -> unit

val infer_expr_ty : Sqlcore.Schema.t -> Sqlfront.Ast.expr -> Sqlcore.Ty.t
(** Static result-type approximation used to build output schemas. *)
