(** Statement execution against one local database.

    This module is the query processor of an LDBMS; transaction control
    and capability enforcement live in {!Session}. DML callers must pass
    the enclosing transaction: reads go through its snapshot (plus its own
    staged writes) and writes stage intents resolved at commit. A write
    that loses the first-committer-wins race raises {!Txn.Conflict}. *)

exception Error of string
(** Semantic error: unknown table/column, ambiguity, type error. *)

val set_join_planner : bool -> unit
(** Enable/disable the physical join planner (hash joins and index
    nested-loop over equi-join conjuncts). On by default; disabling falls
    back to the Cartesian-product-then-filter pipeline. The result rows are
    identical either way — the toggle exists for differential testing and
    benchmarking. *)

val join_planner_enabled : unit -> bool

val run_select :
  ?txn:Txn.t ->
  Database.t ->
  ?outer:Eval.env ->
  Sqlfront.Ast.select ->
  Sqlcore.Relation.t
(** Without [txn], reads the latest committed versions; with it, the
    transaction's snapshot view including its staged writes. *)

val run_insert :
  Database.t ->
  txn:Txn.t ->
  table:string ->
  columns:string list option ->
  source:Sqlfront.Ast.insert_source ->
  int
(** Number of rows inserted. *)

val run_update :
  Database.t ->
  txn:Txn.t ->
  table:string ->
  assignments:(string * Sqlfront.Ast.expr) list ->
  where:Sqlfront.Ast.expr option ->
  int
(** Number of rows updated. *)

val run_delete :
  Database.t -> txn:Txn.t -> table:string -> where:Sqlfront.Ast.expr option -> int

val run_create_table :
  Database.t -> txn:Txn.t -> table:string -> columns:Sqlfront.Ast.column_def list -> unit

val run_drop_table : Database.t -> txn:Txn.t -> table:string -> unit

val run_create_view :
  Database.t -> txn:Txn.t -> view:string -> query:Sqlfront.Ast.select -> unit
(** The definition is validated by evaluating it once. *)

val run_drop_view : Database.t -> txn:Txn.t -> view:string -> unit

val view_schema : Database.t -> Sqlfront.Ast.select -> Sqlcore.Schema.t
(** Result schema of a view definition (evaluates the view). *)

val run_create_index :
  Database.t -> txn:Txn.t -> index:string -> table:string -> column:string -> unit

val run_drop_index : Database.t -> txn:Txn.t -> index:string -> unit

val infer_expr_ty : Sqlcore.Schema.t -> Sqlfront.Ast.expr -> Sqlcore.Ty.t
(** Static result-type approximation used to build output schemas. *)
