(** A connection to a local DBMS, enforcing its commitment capabilities.

    This is what a LAM drives. The session interprets transaction-control
    statements according to the engine's {!Capabilities.t}: autocommit-only
    engines commit every statement as it executes and reject PREPARE;
    2PC engines accumulate work in a transaction with a visible
    prepared-to-commit state. DDL follows the engine's
    {!Capabilities.ddl_behavior} — on [Ddl_autocommits] engines a CREATE or
    DROP silently commits all previously issued uncommitted statements
    first, reproducing the paper's Oracle/Ingres discrepancy (§3.2.2). *)

type result =
  | Rows of Sqlcore.Relation.t
  | Affected of int
  | Done

type stats = {
  mutable statements : int;
  mutable commits : int;
  mutable rollbacks : int;
  mutable prepares : int;
  mutable injected_failures : int;
  mutable snapshots : int;  (** transactions begun (snapshots acquired) *)
  mutable ww_conflicts : int;  (** first-committer-wins races lost *)
}

(** Execution observations for a transport layer to subscribe to (the
    session cannot depend on multidatabase trace types): a snapshot
    acquisition with its timestamp, a lost write-write race on a table,
    or an intra-operator parallel join/filter ({!Exec.par_note} routed
    through the session, deterministic across pool widths). *)
type obs =
  | Obs_snapshot of int
  | Obs_conflict of { table : string; op : string }
  | Obs_parallel of {
      op : string;  (** ["join"] or ["filter"] *)
      partitions : int;
      build_rows : int;
      probe_rows : int;
    }

type t

(** [connect ?injector db caps] opens a session. [injector] defaults to a
    fresh, never-firing injector; passing a shared one lets a test or
    benchmark harness inject failures into sessions it did not create
    itself (e.g. those opened by LAMs). *)
val connect : ?injector:Failure_injector.t -> Database.t -> Capabilities.t -> t
val database : t -> Database.t
val capabilities : t -> Capabilities.t
val injector : t -> Failure_injector.t
val stats : t -> stats

val set_observer : t -> (obs -> unit) option -> unit
(** Install (or clear) the MVCC observation sink. At most one observer is
    active; a reconnecting transport reinstalls its own. *)

val txn_state : t -> Txn.state option
(** State of the current transaction, if one is open. *)

val in_transaction : t -> bool

val exec : t -> Sqlfront.Ast.stmt -> (result, string) Stdlib.result
(** Execute one statement. [Error] covers semantic errors, capability
    violations and injected failures; any open transaction is rolled back
    on error, as a local DBMS would abort the victim. *)

val exec_sql : t -> string -> (result, string) Stdlib.result
(** Parse and execute; parse errors are reported as [Error]. *)

val exec_script : t -> string -> (result list, string) Stdlib.result
(** Execute a [;]-separated script, stopping at the first error. *)

val commit : t -> (unit, string) Stdlib.result
val rollback : t -> (unit, string) Stdlib.result
val prepare : t -> (unit, string) Stdlib.result

val result_to_string : result -> string
