(** Mutable stored tables with table-granularity version chains. Row order
    is insertion order. The "current" rows are the latest committed
    version; older committed versions are retained (keyed by commit
    timestamp) while a snapshot that can still see them is active. *)

type t

val create : name:string -> Sqlcore.Schema.t -> t
val name : t -> string
val schema : t -> Sqlcore.Schema.t
val rows : t -> Sqlcore.Row.t list
val cardinality : t -> int

val set_rows : t -> Sqlcore.Row.t list -> unit
(** Wholesale replacement of the current version in place; DDL undo and
    fixtures use this. Does not touch the version chain. *)

val insert : t -> Sqlcore.Row.t -> unit
(** Appends; raises [Invalid_argument] on arity mismatch. *)

val to_relation : t -> Sqlcore.Relation.t
val copy : t -> t

val version : t -> int
(** Bumped on every mutation; lets caches detect staleness. *)

val committed_at : t -> int
(** Commit timestamp of the current version; 0 for a freshly created
    table. A transaction whose snapshot is older than this must not write
    the table (first committer wins). *)

val rows_at : t -> ts:int -> Sqlcore.Row.t list
(** The rows of the newest version committed at or before [ts]; the empty
    list when no version was visible then. *)

val install : t -> ts:int -> keep_since:int -> Sqlcore.Row.t list -> unit
(** Commit a new version: the current rows move to the history chain and
    the given rows become current with commit timestamp [ts]. History
    entries invisible to every snapshot at or after [keep_since] are
    pruned. *)

val mark_committed : t -> ts:int -> unit
(** Stamp the current version with a commit timestamp without pushing a
    history entry; bulk loads use this so loaded data reads as committed. *)

val reserved_by : t -> int option
(** Transaction id holding a prepare-time write reservation, if any. *)

val reserve : t -> txn:int -> unit
val release_reservation : t -> txn:int -> unit
(** Releases only if [txn] holds the reservation; no-op otherwise. *)

val lookup_eq : t -> col:int -> Sqlcore.Value.t -> Sqlcore.Row.t list
(** Rows whose [col]-th field equals the value (never matches NULL), via a
    lazily built hash map that is rebuilt when the table changes. Row
    order is preserved. Always reads the current version. *)
