(* Once-per-statement compilation of WHERE predicates and projection
   expressions.

   Two tiers, both assembled from {!Eval}'s own primitives so compiled and
   interpreted evaluation agree by construction:

   - {!compile_row}: an [Ast.expr] becomes a [Row.t -> Value.t] closure
     with every column reference resolved to its index up front — the
     per-row [Schema.find_indices] walk (a linear scan with
     case-insensitive compares) disappears from the hot loop. Returns
     [None] whenever the expression needs machinery the closure cannot
     carry: a column that does not resolve to exactly one local index
     (outer references and ambiguities must keep the interpreter's exact
     error behaviour), any subquery, or an aggregate node.

   - {!compile_batch}: a predicate becomes a vectorized kernel over a
     {!Sqlcore.Batch}, producing a pair of bitmaps [(t, n)] — [t] has a
     bit per row where the predicate is TRUE, [n] where it is UNKNOWN —
     composed with Kleene algebra on whole bytes. The kernel is bound to
     one concrete batch (column typing is data-dependent, so the typed
     fast loops can only be selected once the batch exists); the cheap
     AST walk happens once per statement execution, never per row.

   Kleene composition on (t, n) bit pairs:
     AND:  t = t1 & t2          n = (t1|n1) & (t2|n2) & ~t
     OR:   t = t1 | t2          n = (n1|n2) & ~t
     NOT:  t = ~(t1|n1)         n = n1
   (a row is FALSE when neither its t nor its n bit is set). *)

module Ast = Sqlfront.Ast
open Sqlcore

let ( let* ) = Option.bind

(* ---- row-closure tier ----------------------------------------------------- *)

let rec compile_row schema (expr : Ast.expr) : (Row.t -> Value.t) option =
  match expr with
  | Ast.Lit v -> Some (fun _ -> v)
  | Ast.Col { qualifier; name } -> (
      match Schema.find_indices schema ?qualifier name with
      | [ i ] -> Some (fun row -> row.(i))
      | [] | _ :: _ :: _ -> None)
  | Ast.Binop (Ast.And, a, b) ->
      let* fa = compile_row schema a in
      let* fb = compile_row schema b in
      (* both sides always evaluate — Kleene AND, no short-circuit *)
      Some (fun row -> Eval.logic_and (fa row) (fb row))
  | Ast.Binop (Ast.Or, a, b) ->
      let* fa = compile_row schema a in
      let* fb = compile_row schema b in
      Some (fun row -> Eval.logic_or (fa row) (fb row))
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    ->
      let* fa = compile_row schema a in
      let* fb = compile_row schema b in
      Some (fun row -> Eval.comparison op (fa row) (fb row))
  | Ast.Binop (Ast.Concat, a, b) ->
      let* fa = compile_row schema a in
      let* fb = compile_row schema b in
      Some (fun row -> Eval.concat (fa row) (fb row))
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b) ->
      let* fa = compile_row schema a in
      let* fb = compile_row schema b in
      Some (fun row -> Eval.arith op (fa row) (fb row))
  | Ast.Unop (Ast.Not, a) ->
      let* fa = compile_row schema a in
      Some (fun row -> Eval.logic_not (fa row))
  | Ast.Unop (Ast.Neg, a) ->
      let* fa = compile_row schema a in
      Some
        (fun row ->
          match fa row with
          | Value.Null -> Value.Null
          | Value.Int i -> Value.Int (-i)
          | Value.Float f -> Value.Float (-.f)
          | v -> raise (Eval.Type_error ("negation of " ^ Value.to_string v)))
  | Ast.Is_null { arg; negated } ->
      let* fa = compile_row schema arg in
      Some
        (fun row ->
          let v = fa row in
          Value.Bool (if negated then not (Value.is_null v) else Value.is_null v))
  | Ast.Like { arg; pattern; negated } ->
      let* fa = compile_row schema arg in
      Some
        (fun row ->
          match fa row with
          | Value.Null -> Value.Null
          | Value.Str s ->
              Eval.negate_tv negated (Value.Bool (Like.sql_like ~pattern s))
          | v -> raise (Eval.Type_error ("LIKE on non-string " ^ Value.to_string v)))
  | Ast.In_list { arg; items; negated } ->
      let* fa = compile_row schema arg in
      let* fis =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* fi = compile_row schema item in
            Some (fi :: acc))
          items (Some [])
      in
      Some
        (fun row ->
          let v = fa row in
          let vs = List.map (fun fi -> fi row) fis in
          Eval.negate_tv negated (Eval.in_values v vs))
  | Ast.Between { arg; lo; hi; negated } ->
      let* fa = compile_row schema arg in
      let* flo = compile_row schema lo in
      let* fhi = compile_row schema hi in
      Some
        (fun row ->
          let v = fa row in
          let lo = flo row and hi = fhi row in
          Eval.negate_tv negated
            (Eval.logic_and (Eval.comparison Ast.Ge v lo)
               (Eval.comparison Ast.Le v hi)))
  | Ast.Agg _ | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ -> None

(* ---- batch-kernel tier ----------------------------------------------------- *)

type masks = Batch.mask * Batch.mask  (* (true bits, unknown bits) *)

let nb len = (len + 7) / 8
let zero len = Bytes.make (nb len) '\000'

let bset b k =
  let i = k lsr 3 in
  Bytes.unsafe_set b i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b i) lor (1 lsl (k land 7))))

(* clear the bits at positions >= len in the last byte: byte-wise NOT would
   otherwise leak set bits past the row range *)
let mask_tail b len =
  if len land 7 <> 0 then begin
    let last = nb len - 1 in
    Bytes.unsafe_set b last
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get b last) land ((1 lsl (len land 7)) - 1)))
  end

let ones len =
  let b = Bytes.make (nb len) '\255' in
  mask_tail b len;
  b

let kleene_and (t1, n1) (t2, n2) len : masks =
  let bytes = nb len in
  let t = Bytes.create bytes and n = Bytes.create bytes in
  for i = 0 to bytes - 1 do
    let a1 = Char.code (Bytes.unsafe_get t1 i)
    and u1 = Char.code (Bytes.unsafe_get n1 i)
    and a2 = Char.code (Bytes.unsafe_get t2 i)
    and u2 = Char.code (Bytes.unsafe_get n2 i) in
    let tt = a1 land a2 in
    Bytes.unsafe_set t i (Char.unsafe_chr tt);
    Bytes.unsafe_set n i
      (Char.unsafe_chr ((a1 lor u1) land (a2 lor u2) land lnot tt land 0xff))
  done;
  (t, n)

let kleene_or (t1, n1) (t2, n2) len : masks =
  let bytes = nb len in
  let t = Bytes.create bytes and n = Bytes.create bytes in
  for i = 0 to bytes - 1 do
    let a1 = Char.code (Bytes.unsafe_get t1 i)
    and u1 = Char.code (Bytes.unsafe_get n1 i)
    and a2 = Char.code (Bytes.unsafe_get t2 i)
    and u2 = Char.code (Bytes.unsafe_get n2 i) in
    let tt = a1 lor a2 in
    Bytes.unsafe_set t i (Char.unsafe_chr tt);
    Bytes.unsafe_set n i (Char.unsafe_chr ((u1 lor u2) land lnot tt land 0xff))
  done;
  (t, n)

let kleene_not (t1, n1) len : masks =
  let bytes = nb len in
  let t = Bytes.create bytes in
  for i = 0 to bytes - 1 do
    let a1 = Char.code (Bytes.unsafe_get t1 i)
    and u1 = Char.code (Bytes.unsafe_get n1 i) in
    Bytes.unsafe_set t i (Char.unsafe_chr (lnot (a1 lor u1) land 0xff))
  done;
  mask_tail t len;
  (t, Bytes.copy n1)

let op_test = function
  | Ast.Eq -> fun c -> c = 0
  | Ast.Neq -> fun c -> c <> 0
  | Ast.Lt -> fun c -> c < 0
  | Ast.Le -> fun c -> c <= 0
  | Ast.Gt -> fun c -> c > 0
  | Ast.Ge -> fun c -> c >= 0
  | _ -> assert false

(* [op] mirrored for a literal on the left: [lit op col] = [col (mirror op) lit] *)
let mirror = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | (Ast.Eq | Ast.Neq) as op -> op
  | _ -> assert false

(* Column-vs-literal comparison over a typed column whose class matches
   the literal's exactly. Any other pairing — numeric cross-class, boxed
   columns, class mismatches that must raise — returns [None] so the row
   path keeps the interpreter's exact semantics. *)
let cmp_kernel (b : Batch.t) op ci lit =
  let col = b.Batch.cols.(ci) in
  let nulls = col.Batch.nulls in
  let test = op_test op in
  let leaf fill =
    Some
      (fun lo len ->
        let t = zero len and n = zero len in
        fill lo len t n;
        (t, n))
  in
  match col.Batch.data, lit with
  | _, Value.Null ->
      (* comparison with NULL is UNKNOWN for every row *)
      Some (fun _lo len -> (zero len, ones len))
  | Batch.Ints a, Value.Int v ->
      leaf (fun lo len t n ->
          for k = 0 to len - 1 do
            let i = lo + k in
            if Batch.mask_get nulls i then bset n k
            else if test (compare (Array.unsafe_get a i) v) then bset t k
          done)
  | Batch.Floats a, Value.Float v ->
      leaf (fun lo len t n ->
          for k = 0 to len - 1 do
            let i = lo + k in
            if Batch.mask_get nulls i then bset n k
            else if test (Float.compare (Array.unsafe_get a i) v) then bset t k
          done)
  | Batch.Strs a, Value.Str v ->
      leaf (fun lo len t n ->
          for k = 0 to len - 1 do
            let i = lo + k in
            if Batch.mask_get nulls i then bset n k
            else if test (String.compare (Array.unsafe_get a i) v) then bset t k
          done)
  | Batch.Bools a, Value.Bool v ->
      leaf (fun lo len t n ->
          for k = 0 to len - 1 do
            let i = lo + k in
            if Batch.mask_get nulls i then bset n k
            else if test (Bool.compare (Array.unsafe_get a i) v) then bset t k
          done)
  | _ -> None

let one_index schema ?qualifier name =
  match Schema.find_indices schema ?qualifier name with
  | [ i ] -> Some i
  | [] | _ :: _ :: _ -> None

let rec compile_batch (b : Batch.t) (expr : Ast.expr) :
    (int -> int -> masks) option =
  let schema = Batch.schema b in
  match expr with
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
               Ast.Col { qualifier; name }, Ast.Lit v) ->
      let* ci = one_index schema ?qualifier name in
      cmp_kernel b op ci v
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
               Ast.Lit v, Ast.Col { qualifier; name }) ->
      let* ci = one_index schema ?qualifier name in
      cmp_kernel b (mirror op) ci v
  | Ast.Binop (Ast.And, x, y) ->
      let* kx = compile_batch b x in
      let* ky = compile_batch b y in
      Some (fun lo len -> kleene_and (kx lo len) (ky lo len) len)
  | Ast.Binop (Ast.Or, x, y) ->
      let* kx = compile_batch b x in
      let* ky = compile_batch b y in
      Some (fun lo len -> kleene_or (kx lo len) (ky lo len) len)
  | Ast.Unop (Ast.Not, x) ->
      let* kx = compile_batch b x in
      Some (fun lo len -> kleene_not (kx lo len) len)
  | Ast.Is_null { arg = Ast.Col { qualifier; name }; negated } ->
      let* ci = one_index schema ?qualifier name in
      let nulls = b.Batch.cols.(ci).Batch.nulls in
      Some
        (fun lo len ->
          let t = zero len in
          for k = 0 to len - 1 do
            if Batch.mask_get nulls (lo + k) <> negated then bset t k
          done;
          (t, zero len))
  | Ast.Like { arg = Ast.Col { qualifier; name }; pattern; negated } -> (
      let* ci = one_index schema ?qualifier name in
      let col = b.Batch.cols.(ci) in
      match col.Batch.data with
      | Batch.Strs a ->
          let nulls = col.Batch.nulls in
          Some
            (fun lo len ->
              let t = zero len and n = zero len in
              for k = 0 to len - 1 do
                let i = lo + k in
                if Batch.mask_get nulls i then bset n k
                else if Like.sql_like ~pattern (Array.unsafe_get a i) <> negated
                then bset t k
              done;
              (t, n))
      | _ -> None)
  | Ast.Between { arg = Ast.Col _ as c; lo = Ast.Lit _ as l; hi = Ast.Lit _ as h;
                  negated } ->
      (* same truth table as the interpreter's
         [logic_and (Ge v lo) (Le v hi)], then three-valued NOT *)
      let* kge = compile_batch b (Ast.Binop (Ast.Ge, c, l)) in
      let* kle = compile_batch b (Ast.Binop (Ast.Le, c, h)) in
      Some
        (fun lo len ->
          let m = kleene_and (kge lo len) (kle lo len) len in
          if negated then kleene_not m len else m)
  | _ -> None
