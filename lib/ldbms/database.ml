type t = {
  name : string;
  tables : (string, Table.t) Hashtbl.t;
  views : (string, string * Sqlfront.Ast.select) Hashtbl.t;
  indexes : (string, string * string) Hashtbl.t;  (* index key -> table, column *)
  (* Site-local MVCC bookkeeping. Each database is an autonomous LDBS, so
     it owns its timestamp oracle: commit timestamps and snapshots from
     different sites are never compared. *)
  mutable ts : int;  (* monotone timestamp oracle; 0 = initial load *)
  mutable snapshots : int list;  (* active snapshot timestamps, with dups *)
  mutable txn_seq : int;  (* local transaction id source *)
}

exception No_such_table of string
exception Table_exists of string
exception View_exists of string
exception No_such_view of string
exception Index_exists of string
exception No_such_index of string

let create name =
  {
    name;
    tables = Hashtbl.create 16;
    views = Hashtbl.create 8;
    indexes = Hashtbl.create 8;
    ts = 0;
    snapshots = [];
    txn_seq = 0;
  }
let name t = t.name

let next_commit_ts t =
  t.ts <- t.ts + 1;
  t.ts

let next_txn_id t =
  t.txn_seq <- t.txn_seq + 1;
  t.txn_seq

(* A snapshot is simply the oracle's current value: it sees every version
   committed so far and nothing after. *)
let acquire_snapshot t =
  let s = t.ts in
  t.snapshots <- s :: t.snapshots;
  s

let release_snapshot t s =
  let rec drop_one = function
    | [] -> []
    | x :: rest -> if x = s then rest else x :: drop_one rest
  in
  t.snapshots <- drop_one t.snapshots

let oldest_snapshot t = List.fold_left min max_int t.snapshots
let key n = Sqlcore.Names.canon n

let table_names t =
  Hashtbl.fold (fun _ tbl acc -> Table.name tbl :: acc) t.tables []
  |> List.sort Sqlcore.Names.compare

let find_table_opt t n = Hashtbl.find_opt t.tables (key n)

let find_table t n =
  match find_table_opt t n with
  | Some tbl -> tbl
  | None -> raise (No_such_table n)

let create_table t ~name schema =
  if Hashtbl.mem t.tables (key name) then raise (Table_exists name);
  if Hashtbl.mem t.views (key name) then raise (View_exists name);
  let tbl = Table.create ~name schema in
  Hashtbl.add t.tables (key name) tbl;
  tbl

let drop_table t n =
  match find_table_opt t n with
  | Some tbl ->
      Hashtbl.remove t.tables (key n);
      tbl
  | None -> raise (No_such_table n)

let restore_table t tbl = Hashtbl.replace t.tables (key (Table.name tbl)) tbl

let catalog t =
  table_names t |> List.map (fun n -> (n, Table.schema (find_table t n)))

let load t ~name schema rows =
  Hashtbl.remove t.tables (key name);
  let tbl = create_table t ~name schema in
  List.iter (Table.insert tbl) rows;
  (* loaded data is a committed version: a snapshot taken before the load
     must not observe it (MOVE materializations replace shipped tables
     mid-flight, and snapshot readers keep their frozen view) *)
  Table.mark_committed tbl ~ts:(next_commit_ts t)

let find_view_opt t n = Option.map snd (Hashtbl.find_opt t.views (key n))

let create_view t ~name q =
  if Hashtbl.mem t.tables (key name) then raise (Table_exists name);
  if Hashtbl.mem t.views (key name) then raise (View_exists name);
  Hashtbl.replace t.views (key name) (name, q)

let drop_view t n =
  match Hashtbl.find_opt t.views (key n) with
  | Some (_, q) ->
      Hashtbl.remove t.views (key n);
      q
  | None -> raise (No_such_view n)

let restore_view t ~name q = Hashtbl.replace t.views (key name) (name, q)

let view_names t =
  Hashtbl.fold (fun _ (name, _) acc -> name :: acc) t.views []
  |> List.sort Sqlcore.Names.compare

let create_index t ~name ~table ~column =
  if Hashtbl.mem t.indexes (key name) then raise (Index_exists name);
  let tbl = find_table t table in
  if not (Sqlcore.Schema.mem (Table.schema tbl) column) then
    invalid_arg
      (Printf.sprintf "Database.create_index: no column %s in %s" column table);
  Hashtbl.replace t.indexes (key name) (Table.name tbl, column)

let drop_index t name =
  match Hashtbl.find_opt t.indexes (key name) with
  | Some entry ->
      Hashtbl.remove t.indexes (key name);
      entry
  | None -> raise (No_such_index name)

let restore_index t ~name ~table ~column =
  Hashtbl.replace t.indexes (key name) (table, column)

let has_index t ~table ~column =
  Hashtbl.fold
    (fun _ (tb, col) acc ->
      acc
      || (Sqlcore.Names.equal tb table && Sqlcore.Names.equal col column))
    t.indexes false

let index_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.indexes [] |> List.sort String.compare
