(** Deterministic failure injection.

    Stands in for the paper's "local conflicts, failure, deadlock, etc."
    (§3.2) that force an LDBMS to abort a subquery. Failures can be queued
    one-shot at a named point, or drawn from a seeded random source for
    benchmarks.

    Each failure has a {!kind}: [Fatal] failures model semantic errors and
    unresolvable aborts (retrying is pointless); [Transient] failures
    model deadlock victims, lock timeouts and refused connections — the
    operation was rolled back but an identical retry may succeed. *)

type point =
  | At_connect  (** refusing a new session (listener busy/restarting) *)
  | At_execute  (** while executing a statement (local conflict/deadlock) *)
  | At_prepare  (** failing to reach the prepared-to-commit state *)
  | At_commit  (** failing during commit of a prepared transaction *)

type kind = Transient | Fatal

type t

val create : unit -> t
(** No failures. *)

val fail_next : ?kind:kind -> t -> point -> unit
(** Queue a one-shot failure for the next occurrence of [point]. Multiple
    queued failures at the same point fire in order. [kind] defaults to
    [Fatal]. *)

val set_random : ?kind:kind -> t -> seed:int -> prob:float -> unit
(** Additionally fail each point check with probability [prob], drawn from
    a private PRNG seeded with [seed]. Exactly one draw is consumed per
    check, so the firing sequence is a deterministic function of the
    seed. *)

val clear : t -> unit

val is_armed : t -> bool
(** Whether any failure could still fire: a queued one-shot remains or a
    random source is installed. Checking consumes nothing. *)

val fires : t -> point -> bool
(** Check-and-consume: [true] when a failure should be injected here. *)

val fires_kind : t -> point -> kind option
(** Like {!fires} but reports the kind of the injected failure. *)

val point_to_string : point -> string
val kind_to_string : kind -> string

val transient_marker : string
(** Prefix of error messages produced by transient injected failures. *)

val is_transient_message : string -> bool
(** Whether an LDBMS error message denotes a transient (retryable)
    failure. *)
