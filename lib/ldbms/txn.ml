(* Local transactions under snapshot isolation. A transaction reads the
   table versions visible at its begin snapshot plus its own staged
   writes; DML stages whole-table intents that are installed as one new
   committed version at commit time. First committer wins: staging,
   preparing, or committing against a table whose current version is newer
   than the snapshot (or reserved by another preparer) raises [Conflict].
   DDL keeps the old in-place undo log — the catalog is not versioned. *)

type state = Active | Prepared | Committed | Aborted

exception Conflict of { table : string; op : string }

type intent = {
  it_table : Table.t;
  mutable it_rows : Sqlcore.Row.t list;  (* full prospective contents *)
}

type t = {
  db : Database.t;
  id : int;
  snapshot : int;
  mutable state : state;
  mutable intents : intent list;  (* newest first *)
  mutable undo : (unit -> unit) list;  (* DDL undo, newest first *)
  mutable released : bool;  (* snapshot and reservations given back *)
}

let begin_ db =
  {
    db;
    id = Database.next_txn_id db;
    snapshot = Database.acquire_snapshot db;
    state = Active;
    intents = [];
    undo = [];
    released = false;
  }

let state t = t.state
let snapshot t = t.snapshot

let conflict_message ~table ~op =
  Printf.sprintf "%s write-write conflict on %s at %s: first committer wins"
    Failure_injector.transient_marker table op

let is_conflict_message m =
  let needle = "write-write conflict" in
  let nl = String.length needle and ml = String.length m in
  let rec scan i = i + nl <= ml && (String.sub m i nl = needle || scan (i + 1)) in
  scan 0

let check_modifiable t =
  match t.state with
  | Active -> ()
  | Prepared -> invalid_arg "Txn: cannot modify a prepared transaction"
  | Committed | Aborted -> invalid_arg "Txn: transaction already finished"

(* First-committer-wins test for one table: someone committed a newer
   version after our snapshot, or a competing transaction has prepared a
   write on it. *)
let check_write t tbl ~op =
  if Table.committed_at tbl > t.snapshot then
    raise (Conflict { table = Table.name tbl; op });
  match Table.reserved_by tbl with
  | Some id when id <> t.id -> raise (Conflict { table = Table.name tbl; op })
  | _ -> ()

let find_intent t tbl = List.find_opt (fun it -> it.it_table == tbl) t.intents

let read t tbl =
  match find_intent t tbl with
  | Some it -> `Frozen it.it_rows
  | None ->
      if Table.committed_at tbl <= t.snapshot then `Current
      else `Frozen (Table.rows_at tbl ~ts:t.snapshot)

let stage t tbl ~op rows =
  check_modifiable t;
  check_write t tbl ~op;
  match find_intent t tbl with
  | Some it -> it.it_rows <- rows
  | None -> t.intents <- { it_table = tbl; it_rows = rows } :: t.intents

let written_tables t = List.rev_map (fun it -> Table.name it.it_table) t.intents

let log_create t db name =
  check_modifiable t;
  t.undo <- (fun () -> ignore (Database.drop_table db name)) :: t.undo

let log_drop t db tbl =
  check_modifiable t;
  t.undo <- (fun () -> Database.restore_table db tbl) :: t.undo

let log_create_view t db name =
  check_modifiable t;
  t.undo <- (fun () -> ignore (Database.drop_view db name)) :: t.undo

let log_drop_view t db name q =
  check_modifiable t;
  t.undo <- (fun () -> Database.restore_view db ~name q) :: t.undo

let log_create_index t db name =
  check_modifiable t;
  t.undo <- (fun () -> ignore (Database.drop_index db name)) :: t.undo

let log_drop_index t db name ~table ~column =
  check_modifiable t;
  t.undo <- (fun () -> Database.restore_index db ~name ~table ~column) :: t.undo

let release t =
  if not t.released then begin
    t.released <- true;
    Database.release_snapshot t.db t.snapshot;
    List.iter
      (fun it -> Table.release_reservation it.it_table ~txn:t.id)
      t.intents
  end

let prepare t =
  match t.state with
  | Active ->
      (* first-preparer-wins: validate and reserve every written table now,
         so a participant that promised in phase one can never lose a
         conflict race before the decision arrives *)
      List.iter (fun it -> check_write t it.it_table ~op:"prepare") t.intents;
      List.iter (fun it -> Table.reserve it.it_table ~txn:t.id) t.intents;
      t.state <- Prepared
  | Prepared | Committed | Aborted ->
      invalid_arg "Txn.prepare: transaction not active"

let commit t =
  match t.state with
  | Active | Prepared ->
      (* a prepared transaction holds reservations and was validated in
         phase one; its commit must not be able to fail locally *)
      if t.state = Active then
        List.iter (fun it -> check_write t it.it_table ~op:"commit") t.intents;
      (* drop our snapshot before pruning so it does not pin the very
         versions this commit supersedes *)
      release t;
      if t.intents <> [] then begin
        let ts = Database.next_commit_ts t.db in
        let keep_since = Database.oldest_snapshot t.db in
        List.iter
          (fun it -> Table.install it.it_table ~ts ~keep_since it.it_rows)
          (List.rev t.intents)
      end;
      t.state <- Committed;
      t.undo <- [];
      t.intents <- []
  | Committed | Aborted -> invalid_arg "Txn.commit: transaction already finished"

let rollback t =
  match t.state with
  | Active | Prepared ->
      (* staged intents are simply discarded; only DDL undoes in place *)
      List.iter (fun undo -> undo ()) t.undo;
      release t;
      t.state <- Aborted;
      t.undo <- [];
      t.intents <- []
  | Committed | Aborted -> invalid_arg "Txn.rollback: transaction already finished"

let is_finished t = match t.state with Committed | Aborted -> true | Active | Prepared -> false

let state_to_string = function
  | Active -> "active"
  | Prepared -> "prepared"
  | Committed -> "committed"
  | Aborted -> "aborted"
