module Ast = Sqlfront.Ast
module Sql_pp = Sqlfront.Sql_pp
open Sqlcore

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let wrap f =
  try f () with
  | Eval.Type_error m -> err "type error: %s" m
  | Eval.Unknown_column c -> err "unknown column: %s" c
  | Eval.Ambiguous_column c -> err "ambiguous column: %s" c
  | Database.No_such_table t -> err "no such table: %s" t
  | Database.Table_exists t -> err "table already exists: %s" t
  | Database.No_such_view v -> err "no such view: %s" v
  | Database.View_exists v -> err "view already exists: %s" v
  | Database.No_such_index i -> err "no such index: %s" i
  | Database.Index_exists i -> err "index already exists: %s" i

(* ---- transactional reads ------------------------------------------------ *)

(* The rows a statement sees in a base table: inside a transaction, the
   transaction's staged intent or its snapshot's version; outside (or when
   the latest committed version is the visible one), the current rows. *)
let table_rows txn tbl =
  match txn with
  | None -> Table.rows tbl
  | Some txn -> (
      match Txn.read txn tbl with
      | `Current -> Table.rows tbl
      | `Frozen rows -> rows)

(* Index fast paths read the current version's lookup caches, so they are
   only sound when that version is the one the statement should see. *)
let current_view txn tbl =
  match txn with
  | None -> true
  | Some txn -> ( match Txn.read txn tbl with `Current -> true | `Frozen _ -> false)

(* ---- output-schema type inference ------------------------------------- *)

let rec infer_expr_ty schema = function
  | Ast.Lit v -> Option.value (Value.ty v) ~default:Ty.Str
  | Ast.Col { qualifier; name } -> (
      match Schema.find_index schema ?qualifier name with
      | Some i -> (List.nth schema i).Schema.ty
      | None -> Ty.Str)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) -> (
      match infer_expr_ty schema a, infer_expr_ty schema b with
      | Ty.Int, Ty.Int -> Ty.Int
      | _ -> Ty.Float)
  | Ast.Binop (Ast.Concat, _, _) -> Ty.Str
  | Ast.Binop
      ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _)
    ->
      Ty.Bool
  | Ast.Unop (Ast.Neg, a) -> infer_expr_ty schema a
  | Ast.Unop (Ast.Not, _) -> Ty.Bool
  | Ast.Is_null _ | Ast.Like _ | Ast.In_list _ | Ast.Between _ | Ast.In_subquery _
  | Ast.Exists _ ->
      Ty.Bool
  | Ast.Agg { fn = Count_star | Count; _ } -> Ty.Int
  | Ast.Agg { fn = Avg; _ } -> Ty.Float
  | Ast.Agg { fn = Sum | Min | Max; arg; _ } -> (
      match arg with Some a -> infer_expr_ty schema a | None -> Ty.Int)
  | Ast.Scalar_subquery q -> (
      match q.Ast.projections with
      | [ Ast.Proj_expr (e, _) ] -> infer_expr_ty [] e
      | _ -> Ty.Str)

(* ---- projection naming ------------------------------------------------- *)

let agg_fn_name = function
  | Ast.Count_star | Ast.Count -> "count"
  | Ast.Sum -> "sum"
  | Ast.Avg -> "avg"
  | Ast.Min -> "min"
  | Ast.Max -> "max"

let derived_name = function
  | Ast.Col { name; _ } -> name
  | Ast.Agg { fn; arg; _ } -> (
      match arg with
      | Some (Ast.Col { name; _ }) -> agg_fn_name fn ^ "_" ^ name
      | Some _ | None -> agg_fn_name fn)
  | e -> Sql_pp.expr_to_string e

(* ---- FROM clause ------------------------------------------------------- *)

(* Views expand to their evaluated definition; [depth] guards against
   mutually recursive view definitions. *)
let max_view_depth = 16

type join_leaf = {
  jl_label : string;
  jl_rel : Relation.t;  (* requalified with the FROM label *)
  jl_base : (Table.t * string) option;  (* base table + catalog name *)
}

let load_leaf ~eval_select ~depth ?txn db (r : Ast.table_ref) =
  let label = Option.value r.Ast.alias ~default:r.Ast.table in
  let qualifier = Some label in
  match Database.find_table_opt db r.Ast.table with
  | Some tbl ->
      {
        jl_label = label;
        jl_rel =
          Relation.requalify qualifier
            (Relation.make (Table.schema tbl) (table_rows txn tbl));
        jl_base = Some (tbl, r.Ast.table);
      }
  | None -> (
      match Database.find_view_opt db r.Ast.table with
      | Some q ->
          if depth >= max_view_depth then
            err "view expansion too deep (recursive views?) at %s" r.Ast.table
          else
            {
              jl_label = label;
              jl_rel = Relation.requalify qualifier (eval_select q);
              jl_base = None;
            }
      | None -> err "no such table: %s" r.Ast.table)

(* ---- aggregates -------------------------------------------------------- *)

let compute_agg ctx schema rows (fn, distinct, arg) =
  let values_of e =
    List.filter_map
      (fun row ->
        let v = Eval.eval ctx (Eval.env schema row) e in
        if Value.is_null v then None else Some v)
      rows
  in
  let dedup vs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        let k = Value.to_literal v in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      vs
  in
  match fn, arg with
  | Ast.Count_star, _ -> Value.Int (List.length rows)
  | Ast.Count, Some e ->
      let vs = values_of e in
      Value.Int (List.length (if distinct then dedup vs else vs))
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), Some e -> (
      let vs = values_of e in
      let vs = if distinct then dedup vs else vs in
      match vs with
      | [] -> Value.Null
      | v0 :: _ -> (
          match fn with
          | Ast.Min ->
              List.fold_left (fun a v -> if Value.compare v a < 0 then v else a) v0 vs
          | Ast.Max ->
              List.fold_left (fun a v -> if Value.compare v a > 0 then v else a) v0 vs
          | Ast.Sum ->
              if List.for_all (fun v -> Value.as_int v <> None) vs then
                Value.Int
                  (List.fold_left (fun a v -> a + Option.get (Value.as_int v)) 0 vs)
              else
                let total =
                  List.fold_left
                    (fun a v ->
                      match Value.as_float v with
                      | Some f -> a +. f
                      | None -> raise (Eval.Type_error "SUM of non-numeric value"))
                    0.0 vs
                in
                Value.Float total
          | Ast.Avg ->
              let total =
                List.fold_left
                  (fun a v ->
                    match Value.as_float v with
                    | Some f -> a +. f
                    | None -> raise (Eval.Type_error "AVG of non-numeric value"))
                  0.0 vs
              in
              Value.Float (total /. float_of_int (List.length vs))
          | Ast.Count | Ast.Count_star -> assert false))
  | (Ast.Count | Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
      raise (Eval.Type_error "aggregate function needs an argument")

(* ---- index fast path ----------------------------------------------------- *)

(* When the FROM clause is a single base table and the WHERE clause contains
   a top-level conjunct [col = literal] on a declared-indexed column, seed
   the scan from the hash lookup instead of the full table. The complete
   predicate is still applied afterwards, so this is purely a physical
   optimization. *)
let rec where_conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> where_conjuncts a @ where_conjuncts b
  | e -> [ e ]

let indexed_scan ?txn db (s : Ast.select) =
  match s.Ast.from, s.Ast.where with
  | [ { Ast.table; alias } ], Some pred -> (
      match Database.find_table_opt db table with
      | None -> None
      | Some tbl when not (current_view txn tbl) -> None
      | Some tbl ->
          let schema = Table.schema tbl in
          let label = Option.value alias ~default:table in
          let col_matches q name =
            (match q with
            | Some q -> Sqlcore.Names.equal q label
            | None -> true)
            && Schema.mem schema name
            && Database.has_index db ~table ~column:name
          in
          let candidate = function
            | Ast.Binop (Ast.Eq, Ast.Col { qualifier; name }, Ast.Lit v)
            | Ast.Binop (Ast.Eq, Ast.Lit v, Ast.Col { qualifier; name })
              when col_matches qualifier name ->
                Schema.find_index schema name
                |> Option.map (fun i -> (i, v))
            | _ -> None
          in
          List.find_map candidate (where_conjuncts pred)
          |> Option.map (fun (col, v) ->
                 Relation.requalify (Some label)
                   (Relation.make schema (Table.lookup_eq tbl ~col v))))
  | _ -> None

(* ---- physical join planner ---------------------------------------------- *)

let use_join_planner = ref true
let set_join_planner b = use_join_planner := b
let join_planner_enabled () = !use_join_planner

(* ---- intra-operator parallelism ------------------------------------------

   Large hash joins and subquery-free WHERE scans are chunked over a
   domain pool ({!Sqlcore.Taskpool}). Every planning decision — whether
   to go parallel, the partition count, the chunk boundaries — depends
   only on the data and the knobs below, never on the pool width, so
   results, observations and traces are byte-identical at any width
   (width 1 runs the identical partitioned code path on the caller). *)

type par_note = {
  pn_op : string;  (* "join" | "filter" *)
  pn_partitions : int;
  pn_build_rows : int;  (* 0 for a filter *)
  pn_probe_rows : int;  (* input rows for a filter *)
}

let par_log = Logs.Src.create "ldbms.parallel" ~doc:"intra-operator parallelism"

module Par_log = (val Logs.src_log par_log : Logs.LOG)

let par_enabled = ref true
let par_min_rows = ref 8192  (* build + probe floor for going parallel *)
let par_max_partitions = ref 8
let par_width = ref 0  (* pool width; 0 = machine-recommended *)

let set_parallel_exec ?enabled ?min_rows ?max_partitions ?width () =
  Option.iter (fun v -> par_enabled := v) enabled;
  Option.iter (fun v -> par_min_rows := max 0 v) min_rows;
  Option.iter (fun v -> par_max_partitions := max 1 v) max_partitions;
  Option.iter (fun v -> par_width := max 0 v) width

let parallel_exec_enabled () = !par_enabled

(* Pools for intra-operator work, memoized per width and deliberately
   distinct from the engine's shared branch pools: [Taskpool.run_all]'s
   caller helps drain the queue, and a join job must never pick up an
   engine branch (which swaps domain-local buffering state) mid-join.
   Join/filter jobs are pure compute, so these pools compose safely with
   the engine running above them. *)
let par_pools : (int, Taskpool.t) Hashtbl.t = Hashtbl.create 4
let par_pools_m = Mutex.create ()

let par_pool () =
  let w =
    if !par_width > 0 then !par_width else Domain.recommended_domain_count ()
  in
  Mutex.lock par_pools_m;
  let p =
    match Hashtbl.find_opt par_pools w with
    | Some p -> p
    | None ->
        let p = Taskpool.create ~domains:w in
        Hashtbl.replace par_pools w p;
        p
  in
  Mutex.unlock par_pools_m;
  p

(* data-dependent only: the pool width must not influence the partition
   count, or traces would diverge across widths *)
let par_partitions total = min !par_max_partitions (max 2 (total / 4096))

let maybe_parallel_join ?note a b ~keys =
  let build = Relation.cardinality b and probe = Relation.cardinality a in
  let total = build + probe in
  if (not !par_enabled) || total < !par_min_rows then begin
    Par_log.debug (fun f ->
        f "parallel join fallback (%s): build=%d probe=%d"
          (if !par_enabled then "small input" else "disabled")
          build probe);
    Relation.hash_join a b ~keys
  end
  else begin
    let pool = par_pool () in
    let partitions = par_partitions total in
    let joined, st = Relation.parallel_hash_join ~pool ~partitions a b ~keys in
    Par_log.debug (fun f ->
        f "parallel join: %d partition(s), build=%d probe=%d, width=%d"
          st.Relation.pj_partitions build probe (Taskpool.size pool));
    (match note with
    | Some tell ->
        tell
          {
            pn_op = "join";
            pn_partitions = st.Relation.pj_partitions;
            pn_build_rows = build;
            pn_probe_rows = probe;
          }
    | None -> ());
    joined
  end

(* ---- compiled-predicate cache -------------------------------------------

   WHERE predicates and projection expressions are compiled once per
   statement ({!Compile.compile_row}) and memoized here. The key is the
   marshalled (expression, input schema) pair — the schema is part of the
   key because column indices are baked into the closure — prefixed with
   the caller's dictionary {e identity} and {e epoch} ({!set_dict_epoch}).
   Folding both into the key (instead of pinning the table to one global
   epoch scalar and resetting on change) means two sessions with
   different dictionaries interleaving statements cannot thrash each
   other's compiled entries, and equal epoch numbers from different
   dictionaries cannot collide. A bumped epoch still invalidates: the old
   epoch's keys stop being looked up and are pruned eagerly, so the table
   never accumulates dead generations. Local DDL clears everything —
   an index/table/view change can invalidate any captured closure.
   Sessions at different sites execute on different domains, so the table
   is lock-guarded; the payoff of a hit is per-statement, not per-row, so
   the lock is far off the hot loop. *)

type compiled_key = { ck_ident : int; ck_epoch : int; ck_expr : string }

let compiled_cache : (compiled_key, (Row.t -> Value.t) option) Hashtbl.t =
  Hashtbl.create 64

let compiled_m = Mutex.create ()
let compiled_hits = ref 0
let compiled_misses = ref 0
let compiled_ident = ref 0
let compiled_epoch = ref min_int

let set_dict_epoch ?(ident = 0) e =
  Mutex.lock compiled_m;
  if ident <> !compiled_ident || e <> !compiled_epoch then begin
    (* this dictionary moved to a new epoch: its older-generation entries
       can never be hit again, drop them; entries of other dictionaries
       (different ident) are untouched *)
    let doomed =
      Hashtbl.fold
        (fun k _ acc ->
          if k.ck_ident = ident && k.ck_epoch <> e then k :: acc else acc)
        compiled_cache []
    in
    List.iter (Hashtbl.remove compiled_cache) doomed;
    compiled_ident := ident;
    compiled_epoch := e
  end;
  Mutex.unlock compiled_m

let invalidate_compiled () =
  Mutex.lock compiled_m;
  Hashtbl.reset compiled_cache;
  Mutex.unlock compiled_m

let compiled_cache_stats () =
  Mutex.lock compiled_m;
  let r = (!compiled_hits, !compiled_misses, Hashtbl.length compiled_cache) in
  Mutex.unlock compiled_m;
  r

let compile_cached schema expr =
  Mutex.lock compiled_m;
  let key =
    {
      ck_ident = !compiled_ident;
      ck_epoch = !compiled_epoch;
      ck_expr = Marshal.to_string (expr, schema) [];
    }
  in
  let f =
    match Hashtbl.find_opt compiled_cache key with
    | Some f ->
        incr compiled_hits;
        f
    | None ->
        incr compiled_misses;
        let f = Compile.compile_row schema expr in
        if Hashtbl.length compiled_cache > 256 then Hashtbl.reset compiled_cache;
        Hashtbl.add compiled_cache key f;
        f
  in
  Mutex.unlock compiled_m;
  f

let rec expr_has_subquery = function
  | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ -> true
  | Ast.Lit _ | Ast.Col _ -> false
  | Ast.Binop (_, a, b) -> expr_has_subquery a || expr_has_subquery b
  | Ast.Unop (_, a) -> expr_has_subquery a
  | Ast.Is_null { arg; _ } | Ast.Like { arg; _ } -> expr_has_subquery arg
  | Ast.In_list { arg; items; _ } ->
      expr_has_subquery arg || List.exists expr_has_subquery items
  | Ast.Between { arg; lo; hi; _ } ->
      expr_has_subquery arg || expr_has_subquery lo || expr_has_subquery hi
  | Ast.Agg { arg; _ } -> Option.fold ~none:false ~some:expr_has_subquery arg

let rec iter_plain_cols f = function
  | Ast.Col { qualifier; name } -> f ?qualifier name
  | Ast.Lit _ -> ()
  | Ast.Binop (_, a, b) ->
      iter_plain_cols f a;
      iter_plain_cols f b
  | Ast.Unop (_, a) -> iter_plain_cols f a
  | Ast.Is_null { arg; _ } | Ast.Like { arg; _ } -> iter_plain_cols f arg
  | Ast.In_list { arg; items; _ } ->
      iter_plain_cols f arg;
      List.iter (iter_plain_cols f) items
  | Ast.Between { arg; lo; hi; _ } ->
      iter_plain_cols f arg;
      iter_plain_cols f lo;
      iter_plain_cols f hi
  | Ast.Agg { arg; _ } -> Option.iter (iter_plain_cols f) arg
  | Ast.Scalar_subquery _ | Ast.In_subquery _ | Ast.Exists _ -> ()

(* the leaf (and column position within it) a column occurrence denotes *)
let resolve_over_leaves leaves ?qualifier name =
  let hits =
    List.concat
      (List.mapi
         (fun i l ->
           let label_ok =
             match qualifier with
             | Some q -> Sqlcore.Names.equal l.jl_label q
             | None -> true
           in
           if not label_ok then []
           else
             match Schema.find_index (Relation.schema l.jl_rel) name with
             | Some c -> [ (i, c) ]
             | None -> [])
         leaves)
  in
  match hits with [ h ] -> `One h | [] -> `None | _ :: _ :: _ -> `Many

(* hash-join keys compare Int and Float numerically, so classing them
   together is exact; everything else joins only within its own class *)
let ty_class = function
  | Ty.Int | Ty.Float -> `Num
  | Ty.Str -> `Str
  | Ty.Bool -> `Bool

(* align a probe value with the representation the lookup index stores for
   the column (index keys are exact literals) *)
let probe_value col_ty v =
  match v, col_ty with
  | Value.Int i, Ty.Float -> Value.Float (float_of_int i)
  | Value.Float f, Ty.Int when Float.is_integer f -> Value.Int (int_of_float f)
  | _ -> v

(* Plan a multi-leaf FROM clause: extract top-level equi-join conjuncts
   from WHERE, order the joins greedily by cardinality, and execute them as
   hash joins — or an index nested-loop when the joined table declares an
   index on its join column — producting only across genuinely unconnected
   components. Returns None (caller falls back to the Cartesian product)
   when no equi-join conjunct exists or when some column occurrence cannot
   be pinned to exactly one leaf, so naming errors surface exactly as they
   would on the product path. The caller re-applies the complete WHERE
   clause afterwards: planning is purely physical and the result set is
   identical to filtering the product. *)
let plan_join_input ?txn ?note db leaves (where : Ast.expr) =
  let n = List.length leaves in
  let leaf = Array.of_list leaves in
  let conjs = where_conjuncts where in
  let resolvable = ref true in
  List.iter
    (fun c ->
      if not (expr_has_subquery c) then
        iter_plain_cols
          (fun ?qualifier name ->
            match resolve_over_leaves leaves ?qualifier name with
            | `One _ -> ()
            | `None | `Many -> resolvable := false)
          c)
    conjs;
  if not !resolvable then None
  else begin
    let col_def l c = List.nth (Relation.schema leaf.(l).jl_rel) c in
    let edges =
      List.filter_map
        (function
          | Ast.Binop
              ( Ast.Eq,
                Ast.Col { qualifier = qa; name = na },
                Ast.Col { qualifier = qb; name = nb } ) -> (
              match
                ( resolve_over_leaves leaves ?qualifier:qa na,
                  resolve_over_leaves leaves ?qualifier:qb nb )
              with
              | `One (la, ca), `One (lb, cb)
                when la <> lb
                     && ty_class (col_def la ca).Schema.ty
                        = ty_class (col_def lb cb).Schema.ty ->
                  Some ((la, ca), (lb, cb))
              | _ -> None)
          | _ -> None)
        conjs
    in
    if edges = [] then None
    else begin
      let card i = Relation.cardinality leaf.(i).jl_rel in
      let connected i =
        List.exists (fun ((a, _), (b, _)) -> a = i || b = i) edges
      in
      let offsets = Array.make n (-1) in
      let cheapest = function
        | [] -> invalid_arg "cheapest: empty"
        | j0 :: rest ->
            List.fold_left (fun b j -> if card j < card b then j else b) j0 rest
      in
      let start =
        cheapest (List.filter connected (List.init n Fun.id))
      in
      offsets.(start) <- 0;
      let acc = ref leaf.(start).jl_rel in
      let remaining = ref (List.filter (fun i -> i <> start) (List.init n Fun.id)) in
      while !remaining <> [] do
        (* join conjuncts linking the placed prefix to candidate [j], as
           (column offset in the accumulator, column in the candidate) *)
        let touching j =
          List.filter_map
            (fun ((a, ca), (b, cb)) ->
              if offsets.(a) >= 0 && b = j then Some (offsets.(a) + ca, cb)
              else if offsets.(b) >= 0 && a = j then Some (offsets.(b) + cb, ca)
              else None)
            edges
        in
        let next, keys =
          match List.filter (fun j -> touching j <> []) !remaining with
          | [] ->
              (* disconnected component: cross join the cheapest remaining *)
              (cheapest !remaining, [])
          | candidates ->
              let j = cheapest candidates in
              (j, touching j)
        in
        let jl = leaf.(next) in
        let joined =
          match keys with
          | [] ->
              Par_log.debug (fun f ->
                  f
                    "parallel join fallback (ineligible keys: cross join): \
                     build=%d probe=%d"
                    (Relation.cardinality jl.jl_rel)
                    (Relation.cardinality !acc));
              Relation.product !acc jl.jl_rel
          | (off, col) :: _ -> (
              let indexed =
                match jl.jl_base with
                | Some (tbl, tname) ->
                    let cd = col_def next col in
                    if
                      Database.has_index db ~table:tname ~column:cd.Schema.name
                      && current_view txn tbl
                    then Some (tbl, cd.Schema.ty)
                    else None
                | None -> None
              in
              match indexed with
              | Some (tbl, col_ty) ->
                  let out_schema =
                    Relation.schema !acc @ Relation.schema jl.jl_rel
                  in
                  let out =
                    List.concat_map
                      (fun ra ->
                        List.map
                          (fun rb -> Row.append ra rb)
                          (Table.lookup_eq tbl ~col
                             (probe_value col_ty (Row.get ra off))))
                      (Relation.rows !acc)
                  in
                  Relation.make out_schema out
              | None -> maybe_parallel_join ?note !acc jl.jl_rel ~keys)
        in
        offsets.(next) <- Schema.arity (Relation.schema !acc);
        acc := joined;
        remaining := List.filter (fun j -> j <> next) !remaining
      done;
      (* restore FROM-clause column order *)
      let total_schema =
        List.concat_map (fun l -> Relation.schema l.jl_rel) leaves
      in
      let idxs =
        List.concat
          (List.mapi
             (fun i l ->
               List.init
                 (Schema.arity (Relation.schema l.jl_rel))
                 (fun k -> offsets.(i) + k))
             leaves)
      in
      Some (Relation.project !acc idxs total_schema)
    end
  end

(* ---- SELECT ------------------------------------------------------------ *)

let rec run_select ?txn ?note db ?outer (s : Ast.select) : Relation.t =
  wrap (fun () -> select_unwrapped ~depth:0 ?txn ?note db ?outer s)

and select_unwrapped ~depth ?txn ?note db ?outer (s : Ast.select) =
  let ctx_plain =
    { Eval.subquery = (fun env q -> subquery_eval ~depth ?txn ?note db env q); agg = None }
  in
  let input =
    match indexed_scan ?txn db s with
    | Some rel -> rel
    | None -> (
        if s.Ast.from = [] then err "empty FROM clause";
        let leaves =
          List.map
            (load_leaf
               ~eval_select:(fun q ->
                 select_unwrapped ~depth:(depth + 1) ?txn ?note db q)
               ~depth ?txn db)
            s.Ast.from
        in
        let product () =
          match leaves with
          | [] -> assert false
          | l0 :: rest ->
              List.fold_left (fun acc l -> Relation.product acc l.jl_rel) l0.jl_rel rest
        in
        match leaves, s.Ast.where with
        | _ :: _ :: _, Some pred when join_planner_enabled () -> (
            match plan_join_input ?txn ?note db leaves pred with
            | Some rel -> rel
            | None -> product ())
        | _ -> product ())
  in
  let schema = Relation.schema input in
  let mkenv row = { (Eval.env schema row) with Eval.outer } in
  let filtered =
    match s.Ast.where with
    | None -> input
    | Some pred ->
        (* compiled tiers: a subquery-free predicate compiles once per
           statement to a row closure (column indices resolved up front);
           [None] — subqueries, outer references, ambiguities — keeps the
           interpreter. The closure and the interpreter agree by
           construction (both are built from Eval's primitives). *)
        let compiled =
          if expr_has_subquery pred then None else compile_cached schema pred
        in
        let keep =
          match compiled with
          | Some f -> fun row -> Eval.truthy (f row)
          | None -> fun row -> Eval.truthy (Eval.eval ctx_plain (mkenv row) pred)
        in
        let n = Relation.cardinality input in
        (* the semijoin probe path benefits here: an IN-spliced shipped
           query is subquery-free, so its big scan goes parallel *)
        if !par_enabled && n >= !par_min_rows && not (expr_has_subquery pred)
        then begin
          let pool = par_pool () in
          let chunks = par_partitions n in
          (* third tier: a vectorized mask kernel over the columnar view,
             chunked over exactly the same boundaries as the row path, so
             results and traces cannot depend on which tier ran *)
          let kernel =
            match compiled with
            | Some _ -> Compile.compile_batch (Relation.to_batch input) pred
            | None -> None
          in
          let r =
            match kernel with
            | Some k -> Relation.parallel_filter_mask ~pool ~chunks k input
            | None -> Relation.parallel_filter ~pool ~chunks keep input
          in
          Par_log.debug (fun f ->
              f "parallel filter: %d chunk(s), rows=%d, width=%d%s" chunks n
                (Taskpool.size pool)
                (if kernel <> None then " (batch kernel)" else ""));
          (match note with
          | Some tell ->
              tell
                {
                  pn_op = "filter";
                  pn_partitions = chunks;
                  pn_build_rows = 0;
                  pn_probe_rows = n;
                }
          | None -> ());
          r
        end
        else Relation.filter keep input
  in
  let result =
    if Ast.is_aggregate_query s then
      aggregate_select ~depth ?txn db ~outer schema filtered s
    else plain_select ~depth ?txn db ~outer schema filtered s
  in
  if s.Ast.distinct then Relation.distinct result else result

and subquery_eval ~depth ?txn ?note db env q =
  (* [env] is the enclosing row environment, which becomes the subquery's
     outer scope for correlated references. *)
  select_unwrapped ~depth ?txn ?note db ?outer:env q

and expand_projections schema (projections : Ast.projection list) =
  (* -> (output column, value expr) list, where the expr is either a
     concrete index (for stars) or an AST expression *)
  List.concat_map
    (fun p ->
      match p with
      | Ast.Star ->
          List.mapi (fun i (c : Schema.column) -> (c, `Index i)) schema
      | Ast.Qualified_star q ->
          let cols =
            List.mapi (fun i c -> (i, c)) schema
            |> List.filter (fun (_, (c : Schema.column)) ->
                   match c.Schema.qualifier with
                   | Some cq -> Names.equal cq q
                   | None -> false)
          in
          if cols = [] then err "unknown table or alias in %s.*" q
          else List.map (fun (i, c) -> (c, `Index i)) cols
      | Ast.Proj_expr (e, alias) ->
          let name = match alias with Some a -> a | None -> derived_name e in
          let ty = infer_expr_ty schema e in
          ([ (Schema.column name ty, `Expr e) ] : (Schema.column * _) list))
    projections

and plain_select ~depth ?txn db ~outer schema input (s : Ast.select) =
  let ctx =
    { Eval.subquery = (fun env q -> subquery_eval ~depth ?txn db env q); agg = None }
  in
  let cols = expand_projections schema s.Ast.projections in
  let out_schema = List.map fst cols in
  let mkenv row = { (Eval.env schema row) with Eval.outer } in
  (* projection expressions compile once per statement; anything the
     compiler declines (subqueries, outer references) keeps the
     interpreter per-expression *)
  let compiled_expr e =
    match compile_cached schema e with
    | Some f -> f
    | None -> fun row -> Eval.eval ctx (mkenv row) e
  in
  let col_fns =
    List.map
      (fun (_, src) ->
        match src with
        | `Index i -> fun row -> Row.get row i
        | `Expr e -> compiled_expr e)
      cols
  in
  let eval_row row = Array.of_list (List.map (fun f -> f row) col_fns) in
  (* ORDER BY keys are computed against the pre-projection row *)
  let sorted =
    match s.Ast.order_by with
    | [] -> input
    | items ->
        let key_fns =
          List.map (fun (o : Ast.order_item) -> compiled_expr o.Ast.sort_expr) items
        in
        let key row = List.map (fun f -> f row) key_fns in
        let cmp ra rb =
          let ka = key ra and kb = key rb in
          let rec go ks items =
            match ks, items with
            | [], [] -> 0
            | (a, b) :: rest, (o : Ast.order_item) :: orest ->
                let c = Value.compare a b in
                let c = if o.Ast.descending then -c else c in
                if c <> 0 then c else go rest orest
            | _ -> 0
          in
          go (List.combine ka kb) items
        in
        Relation.order_by cmp input
  in
  Relation.make out_schema (List.map eval_row (Relation.rows sorted))

and aggregate_select ~depth ?txn db ~outer schema input (s : Ast.select) =
  let plain_ctx =
    { Eval.subquery = (fun env q -> subquery_eval ~depth ?txn db env q); agg = None }
  in
  let mkenv row = { (Eval.env schema row) with Eval.outer } in
  (* partition rows into groups by the GROUP BY key *)
  let groups =
    match s.Ast.group_by with
    | [] -> (
        match Relation.rows input with [] -> [ [] ] | rows -> [ rows ])
    | keys ->
        let tbl = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun row ->
            let k =
              List.map
                (fun e -> Value.to_literal (Eval.eval plain_ctx (mkenv row) e))
                keys
              |> String.concat "\x00"
            in
            (match Hashtbl.find_opt tbl k with
            | Some rows -> Hashtbl.replace tbl k (row :: rows)
            | None ->
                order := k :: !order;
                Hashtbl.add tbl k [ row ]);
            ())
          (Relation.rows input);
        List.rev !order |> List.map (fun k -> List.rev (Hashtbl.find tbl k))
  in
  (* drop the synthetic empty group when grouping produced no rows at all *)
  let groups =
    match s.Ast.group_by, groups with
    | _ :: _, _ -> groups
    | [], gs -> gs
  in
  let group_ctx rows =
    let agg_f = function
      | Ast.Agg { fn; distinct; arg } ->
          compute_agg plain_ctx schema rows (fn, distinct, arg)
      | _ -> assert false
    in
    {
      Eval.subquery = (fun env q -> subquery_eval ~depth ?txn db env q);
      agg = Some agg_f;
    }
  in
  let rep_env rows =
    match rows with
    | row :: _ -> mkenv row
    | [] -> mkenv (Array.make (List.length schema) Value.Null)
  in
  let kept =
    match s.Ast.having with
    | None -> groups
    | Some pred ->
        List.filter
          (fun rows -> Eval.truthy (Eval.eval (group_ctx rows) (rep_env rows) pred))
          groups
  in
  let cols = expand_projections schema s.Ast.projections in
  let out_schema = List.map fst cols in
  let eval_group rows =
    let ctx = group_ctx rows in
    let env = rep_env rows in
    Array.of_list
      (List.map
         (fun (_, src) ->
           match src with
           | `Index i -> Row.get env.Eval.row i
           | `Expr e -> Eval.eval ctx env e)
         cols)
  in
  let sorted_groups =
    match s.Ast.order_by with
    | [] -> kept
    | items ->
        let key rows =
          let ctx = group_ctx rows in
          let env = rep_env rows in
          List.map (fun (o : Ast.order_item) -> Eval.eval ctx env o.Ast.sort_expr) items
        in
        let cmp ga gb =
          let ka = key ga and kb = key gb in
          let rec go ks items =
            match ks, items with
            | (a, b) :: rest, (o : Ast.order_item) :: orest ->
                let c = Value.compare a b in
                let c = if o.Ast.descending then -c else c in
                if c <> 0 then c else go rest orest
            | _, _ -> 0
          in
          go (List.combine ka kb) items
        in
        List.stable_sort cmp kept
  in
  Relation.make out_schema (List.map eval_group sorted_groups)

(* ---- DML ---------------------------------------------------------------- *)

(* constraint validation: the prospective full contents of a table *)
let validate_constraints ~table schema rows =
  List.iteri
    (fun i (c : Schema.column) ->
      if c.Schema.not_null then
        List.iter
          (fun row ->
            if Value.is_null (Row.get row i) then
              err "NOT NULL constraint on %s.%s violated" table c.Schema.name)
          rows;
      if c.Schema.unique then begin
        let seen = Hashtbl.create 64 in
        List.iter
          (fun row ->
            let v = Row.get row i in
            if not (Value.is_null v) then begin
              let k = Value.to_literal v in
              if Hashtbl.mem seen k then
                err "UNIQUE constraint on %s.%s violated by %s" table
                  c.Schema.name (Value.to_string v);
              Hashtbl.add seen k ()
            end)
          rows
      end)
    schema

let coerce_for_column (c : Schema.column) v =
  match v, c.Schema.ty with
  | Value.Null, _ -> Value.Null
  | Value.Int i, Ty.Float -> Value.Float (float_of_int i)
  | Value.Int _, Ty.Int
  | Value.Float _, Ty.Float
  | Value.Str _, Ty.Str
  | Value.Bool _, Ty.Bool ->
      v
  | _ ->
      err "value %s does not fit column %s of type %s" (Value.to_string v)
        c.Schema.name (Ty.to_string c.Schema.ty)

let run_insert db ~txn ~table ~columns ~source =
  wrap (fun () ->
      let tbl = Database.find_table db table in
      let schema = Table.schema tbl in
      let ctx =
        {
          Eval.subquery =
            (fun env q -> subquery_eval ~depth:0 ~txn db env q);
          agg = None;
        }
      in
      let empty_env = Eval.env [] [||] in
      let make_full_row provided_cols values =
        match provided_cols with
        | None ->
            if List.length values <> Schema.arity schema then
              err "INSERT arity mismatch on %s" table;
            Array.of_list (List.map2 coerce_for_column schema values)
        | Some cols ->
            if List.length cols <> List.length values then
              err "INSERT column/value count mismatch on %s" table;
            let pairs = List.combine (List.map Names.canon cols) values in
            Array.of_list
              (List.map
                 (fun (c : Schema.column) ->
                   match List.assoc_opt (Names.canon c.Schema.name) pairs with
                   | Some v -> coerce_for_column c v
                   | None -> Value.Null)
                 schema)
      in
      let rows =
        match source with
        | Ast.Values exprs ->
            List.map
              (fun row_exprs ->
                make_full_row columns (List.map (Eval.eval ctx empty_env) row_exprs))
              exprs
        | Ast.Query q ->
            let r = select_unwrapped ~depth:0 ~txn db q in
            List.map
              (fun row -> make_full_row columns (Row.to_list row))
              (Relation.rows r)
      in
      let before = table_rows (Some txn) tbl in
      validate_constraints ~table schema (before @ rows);
      Txn.stage txn tbl ~op:"write" (before @ rows);
      List.length rows)

let run_update db ~txn ~table ~assignments ~where =
  wrap (fun () ->
      let tbl = Database.find_table db table in
      let schema = Table.schema tbl in
      let ctx =
        {
          Eval.subquery =
            (fun env q -> subquery_eval ~depth:0 ~txn db env q);
          agg = None;
        }
      in
      let targets =
        List.map
          (fun (cname, e) ->
            match Schema.find_index schema cname with
            | Some i -> (i, List.nth schema i, e)
            | None -> err "unknown column %s in UPDATE %s" cname table)
          assignments
      in
      let matches row =
        match where with
        | None -> true
        | Some pred -> Eval.truthy (Eval.eval ctx (Eval.env schema row) pred)
      in
      (* Evaluate the row set (including subqueries in WHERE) against the
         pre-update state, then apply. *)
      let before = table_rows (Some txn) tbl in
      let planned =
        List.map
          (fun row ->
            if matches row then begin
              let updated = Array.copy row in
              List.iter
                (fun (i, col, e) ->
                  updated.(i) <-
                    coerce_for_column col (Eval.eval ctx (Eval.env schema row) e))
                targets;
              (updated, true)
            end
            else (row, false))
          before
      in
      validate_constraints ~table schema (List.map fst planned);
      Txn.stage txn tbl ~op:"write" (List.map fst planned);
      List.length (List.filter snd planned))

let run_delete db ~txn ~table ~where =
  wrap (fun () ->
      let tbl = Database.find_table db table in
      let schema = Table.schema tbl in
      let ctx =
        {
          Eval.subquery =
            (fun env q -> subquery_eval ~depth:0 ~txn db env q);
          agg = None;
        }
      in
      let matches row =
        match where with
        | None -> true
        | Some pred -> Eval.truthy (Eval.eval ctx (Eval.env schema row) pred)
      in
      let before = table_rows (Some txn) tbl in
      let kept = List.filter (fun r -> not (matches r)) before in
      Txn.stage txn tbl ~op:"write" kept;
      List.length before - List.length kept)

let run_create_table db ~txn ~table ~columns =
  invalidate_compiled ();
  wrap (fun () ->
      let schema =
        List.map
          (fun (c : Ast.column_def) ->
            Schema.column ?width:c.Ast.col_width ~not_null:c.Ast.col_not_null
              ~unique:c.Ast.col_unique c.Ast.col_name c.Ast.col_ty)
          columns
      in
      ignore (Database.create_table db ~name:table schema);
      Txn.log_create txn db table)

let run_drop_table db ~txn ~table =
  invalidate_compiled ();
  wrap (fun () ->
      let tbl = Database.drop_table db table in
      Txn.log_drop txn db tbl)

let run_create_view db ~txn ~view ~query =
  invalidate_compiled ();
  wrap (fun () ->
      (* validate by evaluating once; errors surface before registration *)
      ignore (select_unwrapped ~depth:0 ~txn db query);
      Database.create_view db ~name:view query;
      Txn.log_create_view txn db view)

let run_drop_view db ~txn ~view =
  invalidate_compiled ();
  wrap (fun () ->
      let q = Database.drop_view db view in
      Txn.log_drop_view txn db view q)

let view_schema db query =
  wrap (fun () -> Relation.schema (select_unwrapped ~depth:0 db query))

let run_create_index db ~txn ~index ~table ~column =
  invalidate_compiled ();
  wrap (fun () ->
      (match Database.create_index db ~name:index ~table ~column with
      | () -> ()
      | exception Invalid_argument m -> err "%s" m);
      Txn.log_create_index txn db index)

let run_drop_index db ~txn ~index =
  invalidate_compiled ();
  wrap (fun () ->
      let table, column = Database.drop_index db index in
      Txn.log_drop_index txn db index ~table ~column)
