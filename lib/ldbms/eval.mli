(** Expression evaluation with SQL three-valued logic.

    Booleans are represented as [Value.Bool]; the unknown truth value is
    [Value.Null]. Comparisons and arithmetic involving NULL yield NULL;
    AND/OR/NOT follow Kleene logic; WHERE keeps a row only when its
    predicate evaluates to [Bool true] (see {!truthy}). *)

exception Type_error of string
exception Unknown_column of string
exception Ambiguous_column of string

type env = {
  schema : Sqlcore.Schema.t;
  row : Sqlcore.Row.t;
  outer : env option;  (** enclosing row for correlated subqueries *)
}

val env : ?outer:env -> Sqlcore.Schema.t -> Sqlcore.Row.t -> env

type ctx = {
  subquery : env option -> Sqlfront.Ast.select -> Sqlcore.Relation.t;
      (** evaluates a nested SELECT, given the enclosing environment *)
  agg : (Sqlfront.Ast.expr -> Sqlcore.Value.t) option;
      (** when grouping, the executor supplies the values of [Agg] nodes;
          [None] outside aggregate contexts (an [Agg] node is then a type
          error) *)
}

val lookup : env -> ?qualifier:string -> string -> Sqlcore.Value.t
(** Resolve a column reference in [env], falling back to outer
    environments; raises {!Unknown_column} or {!Ambiguous_column}. *)

val eval : ctx -> env -> Sqlfront.Ast.expr -> Sqlcore.Value.t

val truthy : Sqlcore.Value.t -> bool
(** [true] exactly for [Bool true]. *)

val value_compare_sql : Sqlcore.Value.t -> Sqlcore.Value.t -> int option
(** SQL comparison: [None] when either side is NULL; raises {!Type_error}
    on incomparable classes (e.g. string vs int). *)

(** {1 Primitive operations}

    The building blocks of {!eval}, exported so {!Compile} can assemble
    per-statement closures out of the very same primitives — compiled and
    interpreted evaluation then agree by construction, NULL propagation,
    Kleene logic, and error messages included. *)

val logic_and : Sqlcore.Value.t -> Sqlcore.Value.t -> Sqlcore.Value.t
val logic_or : Sqlcore.Value.t -> Sqlcore.Value.t -> Sqlcore.Value.t
val logic_not : Sqlcore.Value.t -> Sqlcore.Value.t

val comparison :
  Sqlfront.Ast.binop -> Sqlcore.Value.t -> Sqlcore.Value.t -> Sqlcore.Value.t
(** Comparison operators only; anything else is a programming error. *)

val arith :
  Sqlfront.Ast.binop -> Sqlcore.Value.t -> Sqlcore.Value.t -> Sqlcore.Value.t
(** Arithmetic operators only. *)

val concat : Sqlcore.Value.t -> Sqlcore.Value.t -> Sqlcore.Value.t

val negate_tv : bool -> Sqlcore.Value.t -> Sqlcore.Value.t
(** Apply three-valued NOT when the flag is set ([negated] forms). *)

val in_values : Sqlcore.Value.t -> Sqlcore.Value.t list -> Sqlcore.Value.t
(** SQL IN: TRUE on an equal member, else UNKNOWN if any comparison
    involved NULL, else FALSE. *)
