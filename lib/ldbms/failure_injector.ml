type point = At_connect | At_execute | At_prepare | At_commit
type kind = Transient | Fatal

type t = {
  mutable pending : (point * kind) list;  (* oldest first *)
  mutable random : (float * kind * Random.State.t) option;
}

let create () = { pending = []; random = None }
let fail_next ?(kind = Fatal) t p = t.pending <- t.pending @ [ (p, kind) ]

let set_random ?(kind = Fatal) t ~seed ~prob =
  t.random <- Some (prob, kind, Random.State.make [| seed |])

let clear t =
  t.pending <- [];
  t.random <- None

let is_armed t = t.pending <> [] || t.random <> None

let fires_kind t p =
  let rec remove_first = function
    | [] -> None
    | (x, k) :: rest when x = p -> Some (k, rest)
    | x :: rest ->
        Option.map (fun (k, r) -> (k, x :: r)) (remove_first rest)
  in
  match remove_first t.pending with
  | Some (k, rest) ->
      t.pending <- rest;
      Some k
  | None -> (
      (* exactly one PRNG draw per check: the firing sequence is a pure
         function of the seed, regardless of which points are checked *)
      match t.random with
      | Some (prob, k, st) ->
          if Random.State.float st 1.0 < prob then Some k else None
      | None -> None)

let fires t p = fires_kind t p <> None

let point_to_string = function
  | At_connect -> "connect"
  | At_execute -> "execute"
  | At_prepare -> "prepare"
  | At_commit -> "commit"

let kind_to_string = function Transient -> "transient" | Fatal -> "fatal"

(* The session layer reports injected failures as strings; this prefix is
   the in-band marker retry policies use to recognize a retryable local
   failure (the moral equivalent of SQLSTATE 40001). *)
let transient_marker = "transient"

let is_transient_message m =
  let p = transient_marker in
  String.length m >= String.length p && String.sub m 0 (String.length p) = p
