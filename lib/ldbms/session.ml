module Ast = Sqlfront.Ast
module Parser = Sqlfront.Parser
type result = Rows of Sqlcore.Relation.t | Affected of int | Done

type stats = {
  mutable statements : int;
  mutable commits : int;
  mutable rollbacks : int;
  mutable prepares : int;
  mutable injected_failures : int;
  mutable snapshots : int;
  mutable ww_conflicts : int;
}

(* MVCC observations a transport layer can subscribe to; the session
   cannot name the multidatabase trace types (layering), so it reports
   through this small vocabulary and lets the subscriber translate. *)
type obs =
  | Obs_snapshot of int
  | Obs_conflict of { table : string; op : string }
  | Obs_parallel of {
      op : string;  (* "join" | "filter" *)
      partitions : int;
      build_rows : int;
      probe_rows : int;
    }

type t = {
  db : Database.t;
  caps : Capabilities.t;
  injector : Failure_injector.t;
  mutable txn : Txn.t option;
  mutable observer : (obs -> unit) option;
  stats : stats;
}

let connect ?injector db caps =
  {
    db;
    caps;
    injector =
      (match injector with Some i -> i | None -> Failure_injector.create ());
    txn = None;
    observer = None;
    stats =
      {
        statements = 0;
        commits = 0;
        rollbacks = 0;
        prepares = 0;
        injected_failures = 0;
        snapshots = 0;
        ww_conflicts = 0;
      };
  }

let database t = t.db
let capabilities t = t.caps
let injector t = t.injector
let stats t = t.stats
let set_observer t obs = t.observer <- obs
let observe t o = match t.observer with Some f -> f o | None -> ()

let txn_state t =
  match t.txn with
  | Some txn when not (Txn.is_finished txn) -> Some (Txn.state txn)
  | Some _ | None -> None

let in_transaction t = txn_state t <> None

let current_txn t =
  match t.txn with
  | Some txn when not (Txn.is_finished txn) -> txn
  | Some _ | None ->
      let txn = Txn.begin_ t.db in
      t.txn <- Some txn;
      t.stats.snapshots <- t.stats.snapshots + 1;
      observe t (Obs_snapshot (Txn.snapshot txn));
      txn

(* the open transaction, for reads that must see its snapshot and staged
   writes; None outside a transaction (read latest committed) *)
let read_txn t =
  match t.txn with
  | Some txn when not (Txn.is_finished txn) -> Some txn
  | Some _ | None -> None

let abort_current t =
  (match t.txn with
  | Some txn when not (Txn.is_finished txn) ->
      Txn.rollback txn;
      t.stats.rollbacks <- t.stats.rollbacks + 1
  | Some _ | None -> ());
  t.txn <- None

(* injected failures report through error strings; transient ones carry
   Failure_injector.transient_marker so retry layers can classify them *)
let injected t point =
  match Failure_injector.fires_kind t.injector point with
  | Some kind ->
      t.stats.injected_failures <- t.stats.injected_failures + 1;
      abort_current t;
      Some kind
  | None -> None

let injected_message kind point =
  Printf.sprintf "%sinjected failure at %s; transaction rolled back"
    (match kind with
    | Failure_injector.Transient -> Failure_injector.transient_marker ^ " "
    | Failure_injector.Fatal -> "")
    (Failure_injector.point_to_string point)

(* A lost first-committer-wins race: the victim is rolled back, and the
   error carries the transient marker (via [Txn.conflict_message]) so
   retry layers re-execute on a fresh snapshot. *)
let conflicted t ~table ~op =
  t.stats.ww_conflicts <- t.stats.ww_conflicts + 1;
  observe t (Obs_conflict { table; op });
  abort_current t;
  Error (Txn.conflict_message ~table ~op)

let do_commit t =
  match t.txn with
  | Some txn when not (Txn.is_finished txn) -> (
      match injected t Failure_injector.At_commit with
      | Some kind -> Error (injected_message kind Failure_injector.At_commit)
      | None -> (
          match Txn.commit txn with
          | () ->
              t.txn <- None;
              t.stats.commits <- t.stats.commits + 1;
              Ok ()
          | exception Txn.Conflict { table; op } -> conflicted t ~table ~op))
  | Some _ | None -> Ok ()

let do_rollback t =
  match t.txn with
  | Some txn when not (Txn.is_finished txn) ->
      Txn.rollback txn;
      t.txn <- None;
      t.stats.rollbacks <- t.stats.rollbacks + 1;
      Ok ()
  | Some _ | None -> Ok ()

let do_prepare t =
  if not (Capabilities.supports_2pc t.caps) then
    Error
      (Printf.sprintf "engine %s is autocommit-only: no prepared-to-commit state"
         t.caps.Capabilities.engine_name)
  else
    match t.txn with
    | Some txn when Txn.state txn = Txn.Active -> (
        match injected t Failure_injector.At_prepare with
        | Some kind -> Error (injected_message kind Failure_injector.At_prepare)
        | None -> (
            match Txn.prepare txn with
            | () ->
                t.stats.prepares <- t.stats.prepares + 1;
                Ok ()
            | exception Txn.Conflict { table; op } -> conflicted t ~table ~op))
    | Some txn when Txn.state txn = Txn.Prepared -> Ok ()
    | Some _ | None -> Error "no active transaction to prepare"

(* Run a DML/DDL body inside the session's transaction discipline. *)
let run_write t ~is_ddl ~forces_commit body =
  match injected t Failure_injector.At_execute with
  | Some kind -> Error (injected_message kind Failure_injector.At_execute)
  | None -> begin
    (* Oracle-style DDL: commit prior uncommitted work first. *)
    (if is_ddl && t.caps.Capabilities.ddl_behavior = Capabilities.Ddl_autocommits
     then
       match do_commit t with
       | Ok () -> ()
       | Error _ -> ());
    match txn_state t with
    | Some Txn.Prepared ->
        Error "cannot execute statements in a prepared transaction"
    | Some _ | None -> (
        let txn = current_txn t in
        match body txn with
        | exception Exec.Error m ->
            abort_current t;
            Error m
        | exception Txn.Conflict { table; op } -> conflicted t ~table ~op
        | r ->
            let autocommit =
              t.caps.Capabilities.commit_mode = Capabilities.Autocommit
              || forces_commit
              || (is_ddl
                 && t.caps.Capabilities.ddl_behavior = Capabilities.Ddl_autocommits)
            in
            if autocommit then
              match do_commit t with Ok () -> Ok r | Error m -> Error m
            else Ok r)
  end

let exec t stmt =
  t.stats.statements <- t.stats.statements + 1;
  match (stmt : Ast.stmt) with
  | Ast.Select s -> (
      (* inside a transaction the SELECT reads the begin snapshot plus the
         transaction's own staged writes; outside, the latest committed *)
      let note (n : Exec.par_note) =
        observe t
          (Obs_parallel
             {
               op = n.Exec.pn_op;
               partitions = n.Exec.pn_partitions;
               build_rows = n.Exec.pn_build_rows;
               probe_rows = n.Exec.pn_probe_rows;
             })
      in
      match Exec.run_select ?txn:(read_txn t) ~note t.db s with
      | r -> Ok (Rows r)
      | exception Exec.Error m -> Error m)
  | Ast.Begin_txn ->
      if not (Capabilities.supports_2pc t.caps) then
        Error
          (Printf.sprintf "engine %s is autocommit-only: transactions not supported"
             t.caps.Capabilities.engine_name)
      else if in_transaction t then Error "transaction already in progress"
      else begin
        ignore (current_txn t);
        Ok Done
      end
  | Ast.Commit_txn -> (
      match do_commit t with Ok () -> Ok Done | Error m -> Error m)
  | Ast.Rollback_txn -> (
      match do_rollback t with Ok () -> Ok Done | Error m -> Error m)
  | Ast.Prepare_txn -> (
      match do_prepare t with Ok () -> Ok Done | Error m -> Error m)
  | Ast.Insert { table; columns; source } ->
      run_write t ~is_ddl:false ~forces_commit:t.caps.Capabilities.insert_commits
        (fun txn ->
          Affected (Exec.run_insert t.db ~txn ~table ~columns ~source))
  | Ast.Update { table; assignments; where } ->
      run_write t ~is_ddl:false ~forces_commit:false (fun txn ->
          Affected (Exec.run_update t.db ~txn ~table ~assignments ~where))
  | Ast.Delete { table; where } ->
      run_write t ~is_ddl:false ~forces_commit:false (fun txn ->
          Affected (Exec.run_delete t.db ~txn ~table ~where))
  | Ast.Create_table { table; columns } ->
      run_write t ~is_ddl:true ~forces_commit:t.caps.Capabilities.create_commits
        (fun txn ->
          Exec.run_create_table t.db ~txn ~table ~columns;
          Done)
  | Ast.Drop_table { table } ->
      run_write t ~is_ddl:true ~forces_commit:t.caps.Capabilities.drop_commits
        (fun txn ->
          Exec.run_drop_table t.db ~txn ~table;
          Done)
  | Ast.Create_view { view; view_query } ->
      run_write t ~is_ddl:true ~forces_commit:t.caps.Capabilities.create_commits
        (fun txn ->
          Exec.run_create_view t.db ~txn ~view ~query:view_query;
          Done)
  | Ast.Drop_view { view } ->
      run_write t ~is_ddl:true ~forces_commit:t.caps.Capabilities.drop_commits
        (fun txn ->
          Exec.run_drop_view t.db ~txn ~view;
          Done)
  | Ast.Create_index { index; idx_table; idx_column } ->
      run_write t ~is_ddl:true ~forces_commit:t.caps.Capabilities.create_commits
        (fun txn ->
          Exec.run_create_index t.db ~txn ~index ~table:idx_table
            ~column:idx_column;
          Done)
  | Ast.Drop_index { index } ->
      run_write t ~is_ddl:true ~forces_commit:t.caps.Capabilities.drop_commits
        (fun txn ->
          Exec.run_drop_index t.db ~txn ~index;
          Done)

let exec_sql t sql =
  match Parser.parse_stmt sql with
  | stmt -> exec t stmt
  | exception Parser.Error (m, l, c) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" l c m)

let exec_script t sql =
  match Parser.parse_script sql with
  | exception Parser.Error (m, l, c) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" l c m)
  | stmts ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
            match exec t s with Ok r -> go (r :: acc) rest | Error m -> Error m)
      in
      go [] stmts

let commit t = do_commit t
let rollback t = do_rollback t
let prepare t = do_prepare t

let result_to_string = function
  | Rows r -> Sqlcore.Relation.to_string r
  | Affected n -> Printf.sprintf "%d row(s) affected" n
  | Done -> "ok"
