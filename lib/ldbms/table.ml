(* Rows are stored newest-first so insertion is O(1) (bulk loads via
   [Database.load] insert row by row); the forward, insertion-order view is
   memoized and rebuilt only after a mutation.

   Versioning is at table granularity: [rev_rows] always holds the latest
   committed contents, [history] keeps older committed versions newest
   first, each tagged with the commit timestamp that installed it. Readers
   holding a snapshot older than [committed_at] reconstruct their view from
   [history]; everyone else uses the fast current-rows path (and with it the
   lookup caches). *)
type t = {
  name : string;
  schema : Sqlcore.Schema.t;
  mutable rev_rows : Sqlcore.Row.t list;  (* newest first *)
  mutable fwd : Sqlcore.Row.t list option;  (* memoized insertion order *)
  mutable version : int;
  mutable history : (int * Sqlcore.Row.t list) list;
      (* older committed versions, newest first; each pair is the commit
         timestamp the version was installed at and its forward row list *)
  mutable committed_at : int;  (* commit ts of the current version *)
  mutable reserved_by : int option;
      (* transaction id holding a prepare-time write reservation; a
         prepared participant must never lose a conflict race after
         promising, so the reservation blocks competing writers *)
  (* lazy equality-lookup cache: column -> (version built at, hash map) *)
  lookup_cache : (int, int * (string, Sqlcore.Row.t list) Hashtbl.t) Hashtbl.t;
}

let create ~name schema =
  {
    name;
    schema;
    rev_rows = [];
    fwd = Some [];
    version = 0;
    history = [];
    committed_at = 0;
    reserved_by = None;
    lookup_cache = Hashtbl.create 4;
  }

let name t = t.name
let schema t = t.schema

let rows t =
  match t.fwd with
  | Some r -> r
  | None ->
      let r = List.rev t.rev_rows in
      t.fwd <- Some r;
      r

let cardinality t = List.length t.rev_rows
let touch t = t.version <- t.version + 1

let set_rows t rows =
  t.rev_rows <- List.rev rows;
  t.fwd <- Some rows;
  touch t

let insert t row =
  if Array.length row <> Sqlcore.Schema.arity t.schema then
    invalid_arg (Printf.sprintf "Table.insert(%s): arity mismatch" t.name);
  t.rev_rows <- row :: t.rev_rows;
  t.fwd <- None;
  touch t

let to_relation t = Sqlcore.Relation.make t.schema (rows t)
let copy t = { t with rev_rows = t.rev_rows; lookup_cache = Hashtbl.create 4 }

let version t = t.version
let committed_at t = t.committed_at

let rows_at t ~ts =
  if ts >= t.committed_at then rows t
  else
    (* history is newest first with strictly decreasing timestamps; the
       visible version is the newest one committed at or before [ts] *)
    let rec visible = function
      | [] -> []
      | (cts, rows) :: older -> if cts <= ts then rows else visible older
    in
    visible t.history

let install t ~ts ~keep_since rows_ =
  t.history <- (t.committed_at, rows t) :: t.history;
  set_rows t rows_;
  t.committed_at <- ts;
  (* prune versions no active snapshot can see: keep every version newer
     than the oldest snapshot plus the first one at or below it *)
  let rec prune = function
    | [] -> []
    | (cts, _) as v :: older ->
        if cts > keep_since then v :: prune older else [ v ]
  in
  t.history <- prune t.history

let mark_committed t ~ts = t.committed_at <- ts

let reserved_by t = t.reserved_by
let reserve t ~txn = t.reserved_by <- Some txn

let release_reservation t ~txn =
  match t.reserved_by with
  | Some id when id = txn -> t.reserved_by <- None
  | _ -> ()

let lookup_eq t ~col v =
  if Sqlcore.Value.is_null v then []
  else begin
    let map =
      match Hashtbl.find_opt t.lookup_cache col with
      | Some (built_at, map) when built_at = t.version -> map
      | Some _ | None ->
          let map = Hashtbl.create (max 16 (cardinality t)) in
          List.iter
            (fun row ->
              let key = Sqlcore.Value.to_literal row.(col) in
              let prev = Option.value (Hashtbl.find_opt map key) ~default:[] in
              Hashtbl.replace map key (row :: prev))
            (rows t);
          Hashtbl.replace t.lookup_cache col (t.version, map);
          map
    in
    match Hashtbl.find_opt map (Sqlcore.Value.to_literal v) with
    | Some rows -> List.rev rows
    | None -> []
  end
