(* Rows are stored newest-first so insertion is O(1) (bulk loads via
   [Database.load] insert row by row); the forward, insertion-order view is
   memoized and rebuilt only after a mutation. *)
type t = {
  name : string;
  schema : Sqlcore.Schema.t;
  mutable rev_rows : Sqlcore.Row.t list;  (* newest first *)
  mutable fwd : Sqlcore.Row.t list option;  (* memoized insertion order *)
  mutable version : int;
  (* lazy equality-lookup cache: column -> (version built at, hash map) *)
  lookup_cache : (int, int * (string, Sqlcore.Row.t list) Hashtbl.t) Hashtbl.t;
}

let create ~name schema =
  {
    name;
    schema;
    rev_rows = [];
    fwd = Some [];
    version = 0;
    lookup_cache = Hashtbl.create 4;
  }

let name t = t.name
let schema t = t.schema

let rows t =
  match t.fwd with
  | Some r -> r
  | None ->
      let r = List.rev t.rev_rows in
      t.fwd <- Some r;
      r

let cardinality t = List.length t.rev_rows
let touch t = t.version <- t.version + 1

let set_rows t rows =
  t.rev_rows <- List.rev rows;
  t.fwd <- Some rows;
  touch t

let insert t row =
  if Array.length row <> Sqlcore.Schema.arity t.schema then
    invalid_arg (Printf.sprintf "Table.insert(%s): arity mismatch" t.name);
  t.rev_rows <- row :: t.rev_rows;
  t.fwd <- None;
  touch t

let to_relation t = Sqlcore.Relation.make t.schema (rows t)
let copy t = { t with rev_rows = t.rev_rows; lookup_cache = Hashtbl.create 4 }

let version t = t.version

let lookup_eq t ~col v =
  if Sqlcore.Value.is_null v then []
  else begin
    let map =
      match Hashtbl.find_opt t.lookup_cache col with
      | Some (built_at, map) when built_at = t.version -> map
      | Some _ | None ->
          let map = Hashtbl.create (max 16 (cardinality t)) in
          List.iter
            (fun row ->
              let key = Sqlcore.Value.to_literal row.(col) in
              let prev = Option.value (Hashtbl.find_opt map key) ~default:[] in
              Hashtbl.replace map key (row :: prev))
            (rows t);
          Hashtbl.replace t.lookup_cache col (t.version, map);
          map
    in
    match Hashtbl.find_opt map (Sqlcore.Value.to_literal v) with
    | Some rows -> List.rev rows
    | None -> []
  end
