(** A local database: a named catalog of tables.

    This plays the role of one LDBS behind a LAM. Its Local Conceptual
    Schema — the table/column/type information the MSQL IMPORT statement
    reads — is exactly {!catalog}. *)

type t

exception No_such_table of string
exception Table_exists of string

val create : string -> t
val name : t -> string
val table_names : t -> string list

(** {2 Timestamps and snapshots}

    Each database owns a private, monotone timestamp oracle (site
    autonomy: timestamps from different LDBSs are never compared). A
    snapshot is the oracle's value at acquisition time — it sees exactly
    the versions committed at or before it. *)

val next_commit_ts : t -> int
(** Draw a fresh commit timestamp, strictly greater than every earlier
    one. *)

val next_txn_id : t -> int
(** Draw a fresh local transaction id (for write reservations). *)

val acquire_snapshot : t -> int
(** Register and return a snapshot at the current timestamp. Must be
    paired with {!release_snapshot} so old versions can be pruned. *)

val release_snapshot : t -> int -> unit
(** Drop one registration of the given snapshot. *)

val oldest_snapshot : t -> int
(** The oldest still-active snapshot, or [max_int] when none is active;
    version chains may prune anything invisible from this point on. *)

val find_table : t -> string -> Table.t
(** Raises {!No_such_table}. Case-insensitive. *)

val find_table_opt : t -> string -> Table.t option

val create_table : t -> name:string -> Sqlcore.Schema.t -> Table.t
(** Raises {!Table_exists} if the name is taken. *)

val drop_table : t -> string -> Table.t
(** Removes and returns the dropped table (for undo logs); raises
    {!No_such_table}. *)

val restore_table : t -> Table.t -> unit
(** Puts a dropped table back (undo of drop). *)

val catalog : t -> (string * Sqlcore.Schema.t) list
(** Table name and schema pairs, sorted by table name — the database's
    local conceptual schema. *)

val load : t -> name:string -> Sqlcore.Schema.t -> Sqlcore.Row.t list -> unit
(** Create a table and bulk-load rows; convenience for fixtures. Replaces
    any existing table with that name. *)

(** {2 Views}

    A view is a named, stored SELECT, expanded when referenced in a FROM
    clause. Views share the table namespace. *)

exception View_exists of string
exception No_such_view of string

val create_view : t -> name:string -> Sqlfront.Ast.select -> unit
(** Raises {!Table_exists} or {!View_exists} when the name is taken. *)

val drop_view : t -> string -> Sqlfront.Ast.select
(** Removes and returns the definition (for undo logs); raises
    {!No_such_view}. *)

val restore_view : t -> name:string -> Sqlfront.Ast.select -> unit
val find_view_opt : t -> string -> Sqlfront.Ast.select option
val view_names : t -> string list

(** {2 Indexes}

    A declared index enables the executor's hash-lookup fast path for
    equality predicates on the column. Purely physical: no semantics. *)

exception Index_exists of string
exception No_such_index of string

val create_index : t -> name:string -> table:string -> column:string -> unit
(** Raises {!Index_exists}, {!No_such_table}, or [Invalid_argument] when
    the column does not exist. *)

val drop_index : t -> string -> string * string
(** Removes the named index and returns its (table, column); raises
    {!No_such_index}. *)

val restore_index : t -> name:string -> table:string -> column:string -> unit
val has_index : t -> table:string -> column:string -> bool
val index_names : t -> string list
