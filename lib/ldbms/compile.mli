(** Once-per-statement compilation of expressions.

    Both tiers are assembled from {!Eval}'s exported primitives, so a
    compiled evaluation agrees with the interpreted one by construction —
    NULL propagation, Kleene logic, exact Int/Float comparison and error
    messages included. Anything outside a tier's coverage compiles to
    [None] and the caller falls back to the next tier (batch kernel →
    row closure → interpreter). *)

val compile_row :
  Sqlcore.Schema.t -> Sqlfront.Ast.expr -> (Sqlcore.Row.t -> Sqlcore.Value.t) option
(** Compile an expression to a closure over one row, with all column
    references resolved to indices up front. [None] when the expression
    contains a subquery, an aggregate, or a column that does not resolve
    to exactly one index in [schema] (outer references and ambiguities
    keep the interpreter's error behaviour). The closure may raise
    {!Eval.Type_error} exactly where the interpreter would. *)

type masks = Sqlcore.Batch.mask * Sqlcore.Batch.mask
(** [(t, n)]: bit [k] of [t] set where the predicate is TRUE, of [n]
    where it is UNKNOWN; a row with neither bit is FALSE. *)

val compile_batch :
  Sqlcore.Batch.t -> Sqlfront.Ast.expr -> (int -> int -> masks) option
(** [compile_batch b pred] compiles a predicate to a vectorized kernel
    bound to the concrete batch [b]; [k lo len] evaluates rows
    [lo, lo+len) and returns bitmaps indexed from bit 0. Coverage:
    column-vs-literal comparisons on typed columns whose class matches
    the literal exactly, AND/OR/NOT, IS \[NOT\] NULL on columns,
    \[NOT\] LIKE on string columns, BETWEEN with literal bounds. The
    typed fast loops depend on the batch's data-dependent column
    representation, which is why the kernel binds to one batch; the
    compile walk itself is once per statement execution, never per row. *)
