(** Local transactions under snapshot isolation with a visible
    prepared-to-commit state (the first phase of 2PC, §3.2.1).

    A transaction acquires a snapshot at begin; reads see the versions
    committed at or before it plus the transaction's own staged writes.
    DML stages whole-table intents installed atomically at commit under a
    single commit timestamp. Write-write conflicts are resolved first
    committer wins; a prepared transaction additionally reserves its
    written tables so it can never lose the race after promising. *)

type state = Active | Prepared | Committed | Aborted

exception Conflict of { table : string; op : string }
(** A write lost a first-committer-wins race ([op] is the operation that
    detected it: ["write"], ["prepare"], or ["commit"]). The transaction
    is still in its prior state; callers roll it back. *)

type t

val begin_ : Database.t -> t
(** Acquire a snapshot and a fresh transaction id on the database. *)

val state : t -> state

val snapshot : t -> int
(** The begin snapshot timestamp. *)

val conflict_message : table:string -> op:string -> string
(** Render a [Conflict] as an error message. The message carries the
    transient-failure marker so multidatabase retry policies re-execute
    the statement on a fresh snapshot. *)

val is_conflict_message : string -> bool
(** Recognize a {!conflict_message} (used by the engine to classify abort
    causes); robust to prefixes added by transport layers. *)

val read : t -> Table.t -> [ `Current | `Frozen of Sqlcore.Row.t list ]
(** The transaction's view of a table: [`Current] when the table's latest
    committed version is the visible one (fast paths such as index
    lookups stay valid), [`Frozen rows] when the transaction must read
    its own staged intent or an older version from the chain. *)

val stage : t -> Table.t -> op:string -> Sqlcore.Row.t list -> unit
(** Stage the table's full prospective contents as this transaction's
    write intent, replacing any earlier intent for the same table. Raises
    {!Conflict} (first committer wins) if a newer version was committed
    after the snapshot or another transaction holds a prepare
    reservation. *)

val written_tables : t -> string list
(** Names of tables with staged intents, in staging order. *)

val log_create : t -> Database.t -> string -> unit
(** Record that the transaction created the named table. *)

val log_drop : t -> Database.t -> Table.t -> unit
(** Record that the transaction dropped the given table. *)

val log_create_view : t -> Database.t -> string -> unit
val log_drop_view : t -> Database.t -> string -> Sqlfront.Ast.select -> unit
val log_create_index : t -> Database.t -> string -> unit
val log_drop_index : t -> Database.t -> string -> table:string -> column:string -> unit

val prepare : t -> unit
(** Active -> Prepared: re-validate all intents and reserve their tables
    (first preparer wins). Raises {!Conflict} on a lost race, leaving the
    transaction Active; raises [Invalid_argument] from any other state. *)

val commit : t -> unit
(** Active or Prepared -> Committed; installs all intents as one new
    committed version per table under a single commit timestamp and
    releases the snapshot and reservations. From Active, re-validates
    first and raises {!Conflict} on a lost race (the transaction stays
    Active and must be rolled back); from Prepared it cannot fail. *)

val rollback : t -> unit
(** Active or Prepared -> Aborted; discards staged intents, undoes DDL in
    reverse order, and releases the snapshot and reservations. *)

val is_finished : t -> bool
val state_to_string : state -> string
