(* A fixed-size pool of OCaml 5 domains executing opaque jobs from a
   shared queue. Hand-rolled on Domain/Mutex/Condition (the toolchain has
   no domainslib): workers block on a condition variable when idle, so a
   parked pool costs nothing but the OS threads.

   This lives at the bottom of the stack (sqlcore) so both the relational
   operators (partitioned parallel hash join, chunked WHERE evaluation)
   and the multidatabase engine (Narada's PARBEGIN branches, which
   re-export it as [Narada.Dpool]) can draw workers from the same
   mechanism without a layering inversion.

   The submitting domain is itself one of the execution lanes: [run_all]
   enqueues the jobs, then drains the queue alongside the workers and
   finally blocks until its own batch is complete. A pool created with
   [~domains:n] therefore spawns only [n - 1] workers, and [~domains:1]
   degenerates to plain sequential execution with no spawned domain at
   all. Jobs must be self-contained — in particular they must not submit
   to the same pool (the engine's eligibility gate guarantees this by
   refusing nested parallel blocks, and the relational operators run
   their parallel pieces on a pool of their own). *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  total : int;
}

let size t = t.total

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* closing *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    job ();
    worker_loop t
  end

let create ~domains =
  let total = max 1 domains in
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
      total;
    }
  in
  t.workers <-
    List.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let run_all t jobs =
  match jobs with
  | [] -> ()
  | [ job ] -> job ()
  | jobs ->
      (* completion is tracked per batch, so concurrent [run_all] calls on
         a shared pool each wait for exactly their own jobs *)
      let done_m = Mutex.create () in
      let done_cv = Condition.create () in
      let pending = ref (List.length jobs) in
      let wrap job () =
        (* jobs are expected to capture their own exceptions (the engine
           records them per branch); a leak here must not strand the
           batch, so completion is signalled unconditionally *)
        (try job () with _ -> ());
        Mutex.lock done_m;
        decr pending;
        if !pending = 0 then Condition.signal done_cv;
        Mutex.unlock done_m
      in
      Mutex.lock t.m;
      List.iter (fun j -> Queue.push (wrap j) t.queue) jobs;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.m;
      (* the caller works the queue too: with [domains = n] there are
         exactly n lanes of execution, and a 1-worker pool cannot deadlock
         waiting for itself *)
      let rec help () =
        Mutex.lock t.m;
        if Queue.is_empty t.queue then Mutex.unlock t.m
        else begin
          let job = Queue.pop t.queue in
          Mutex.unlock t.m;
          job ();
          help ()
        end
      in
      help ();
      Mutex.lock done_m;
      while !pending > 0 do
        Condition.wait done_cv done_m
      done;
      Mutex.unlock done_m

let shutdown t =
  Mutex.lock t.m;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Process-wide shared pools, one per size. Sessions toggle domain
   execution per statement, and tests create many short-lived sessions; a
   pool per session would accumulate OS threads, so everyone asking for
   the same width shares one pool for the life of the process. *)
let shared_m = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~domains =
  let domains = max 1 domains in
  Mutex.lock shared_m;
  let t =
    match Hashtbl.find_opt shared_pools domains with
    | Some t -> t
    | None ->
        let t = create ~domains in
        Hashtbl.replace shared_pools domains t;
        t
  in
  Mutex.unlock shared_m;
  t
