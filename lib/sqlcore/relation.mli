(** Immutable relations and the relational-algebra operators the executors
    are built from.

    Rows are kept in insertion order; [distinct], [union] and friends
    preserve the order of first occurrence so that results are
    deterministic. *)

type t

val make : Schema.t -> Row.t list -> t
(** Raises [Invalid_argument] if any row's arity differs from the schema's. *)

val empty : Schema.t -> t
val schema : t -> Schema.t
val rows : t -> Row.t list
val cardinality : t -> int
val is_empty : t -> bool

val size_bytes : t -> int
(** Approximate wire size of the relation's rows. Memoized per relation:
    repeated calls (one per simulated network send) are O(1). *)

val equal : t -> t -> bool
(** Schema equality (names/types) and row-list equality in order. *)

val equal_unordered : t -> t -> bool
(** Schema equality and multiset equality of rows. *)

val add_row : t -> Row.t -> t
val filter : (Row.t -> bool) -> t -> t
val map_rows : (Row.t -> Row.t) -> Schema.t -> t -> t

val project : t -> int list -> Schema.t -> t
(** [project r idxs schema] keeps the fields at [idxs], in that order. *)

val distinct : t -> t
val union : t -> t -> t
(** Raises [Invalid_argument] if not union-compatible. Keeps duplicates
    (UNION ALL); compose with {!distinct} for set union. *)

val product : t -> t -> t
(** Cartesian product; schemas are concatenated. *)

val hash_join : t -> t -> keys:(int * int) list -> t
(** [hash_join a b ~keys] is [product a b] restricted to rows where field
    [ia] of the [a]-row equals field [ib] of the [b]-row for every
    [(ia, ib)] in [keys], computed with a hash table on [b] in one pass per
    side. Equality is SQL-flavoured: [Int]/[Float] compare numerically and
    NULL keys never match. Row order matches the equivalent filtered
    product. [keys] must be non-empty for the call to be meaningful (an
    empty list degenerates to the full product). *)

type par_join_stats = {
  pj_partitions : int;  (** partitions (and probe chunks) actually used *)
  pj_build_rows : int;
  pj_probe_rows : int;
}

val parallel_hash_join :
  pool:Taskpool.t ->
  partitions:int ->
  t ->
  t ->
  keys:(int * int) list ->
  t * par_join_stats
(** [parallel_hash_join ~pool ~partitions a b ~keys] computes exactly
    {!hash_join}[ a b ~keys] — same rows, same order — by
    hash-partitioning the build side [b] into [partitions] read-only
    tables built in parallel, then probing [a] as ordered contiguous
    chunks and concatenating the chunk outputs in order. Every decision
    (partition count, partition assignment, chunk boundaries) depends
    only on the data and [partitions], never on the pool width, so the
    result is byte-identical at any width; [~partitions:1] or a width-1
    pool degenerate to the sequential computation on the caller. *)

val parallel_filter : pool:Taskpool.t -> chunks:int -> (Row.t -> bool) -> t -> t
(** [parallel_filter ~pool ~chunks p t] is {!filter}[ p t] computed over
    ordered contiguous row chunks on the pool. [p] must be pure and
    thread-safe; chunk boundaries depend only on the row count and
    [chunks], so the result is identical at any pool width. *)

val to_batch : t -> Batch.t
(** Columnar view of the relation, memoized: repeated batch kernels over
    one relation pay the row-to-column conversion once. The batch must be
    treated as read-only (its arrays are shared with later callers). *)

val of_batch : Batch.t -> t
(** Materialize a batch back into a relation; [size_bytes] is pre-seeded
    from the batch (same accounting), and the batch is retained as the
    relation's columnar view. *)

val filter_mask : Batch.mask -> t -> t
(** [filter_mask m t] keeps row [i] (forward order) iff bit [i] of [m] is
    set — the mask-driven counterpart of {!filter}. Surviving rows are
    shared with [t]. *)

val batch_hash_join : t -> t -> keys:(int * int) list -> t
(** Exactly {!hash_join} — same rows, same order — computed on the
    columnar views with {!Batch.hash_join} (int-specialized when both key
    columns are typed int). *)

val parallel_filter_mask :
  pool:Taskpool.t ->
  chunks:int ->
  (int -> int -> Batch.mask * Batch.mask) ->
  t ->
  t
(** [parallel_filter_mask ~pool ~chunks kernel t] keeps the rows whose
    TRUE bit is set by the vectorized predicate kernel, chunked over
    exactly the same contiguous ranges as {!parallel_filter} —
    [kernel lo len] must return [(true_bits, unknown_bits)] for rows
    [lo, lo+len), indexed from bit 0. Result and determinism guarantees
    are those of {!parallel_filter}. *)

val order_by : (Row.t -> Row.t -> int) -> t -> t
(** Stable sort. *)

val limit : int -> t -> t
val requalify : string option -> t -> t

val pp : Format.formatter -> t -> unit
(** ASCII table with a header, the display format of the shell and the
    examples. *)

val to_string : t -> string
