(** Immutable relations and the relational-algebra operators the executors
    are built from.

    Rows are kept in insertion order; [distinct], [union] and friends
    preserve the order of first occurrence so that results are
    deterministic. *)

type t

val make : Schema.t -> Row.t list -> t
(** Raises [Invalid_argument] if any row's arity differs from the schema's. *)

val empty : Schema.t -> t
val schema : t -> Schema.t
val rows : t -> Row.t list
val cardinality : t -> int
val is_empty : t -> bool

val size_bytes : t -> int
(** Approximate wire size of the relation's rows. Memoized per relation:
    repeated calls (one per simulated network send) are O(1). *)

val equal : t -> t -> bool
(** Schema equality (names/types) and row-list equality in order. *)

val equal_unordered : t -> t -> bool
(** Schema equality and multiset equality of rows. *)

val add_row : t -> Row.t -> t
val filter : (Row.t -> bool) -> t -> t
val map_rows : (Row.t -> Row.t) -> Schema.t -> t -> t

val project : t -> int list -> Schema.t -> t
(** [project r idxs schema] keeps the fields at [idxs], in that order. *)

val distinct : t -> t
val union : t -> t -> t
(** Raises [Invalid_argument] if not union-compatible. Keeps duplicates
    (UNION ALL); compose with {!distinct} for set union. *)

val product : t -> t -> t
(** Cartesian product; schemas are concatenated. *)

val hash_join : t -> t -> keys:(int * int) list -> t
(** [hash_join a b ~keys] is [product a b] restricted to rows where field
    [ia] of the [a]-row equals field [ib] of the [b]-row for every
    [(ia, ib)] in [keys], computed with a hash table on [b] in one pass per
    side. Equality is SQL-flavoured: [Int]/[Float] compare numerically and
    NULL keys never match. Row order matches the equivalent filtered
    product. [keys] must be non-empty for the call to be meaningful (an
    empty list degenerates to the full product). *)

type par_join_stats = {
  pj_partitions : int;  (** partitions (and probe chunks) actually used *)
  pj_build_rows : int;
  pj_probe_rows : int;
}

val parallel_hash_join :
  pool:Taskpool.t ->
  partitions:int ->
  t ->
  t ->
  keys:(int * int) list ->
  t * par_join_stats
(** [parallel_hash_join ~pool ~partitions a b ~keys] computes exactly
    {!hash_join}[ a b ~keys] — same rows, same order — by
    hash-partitioning the build side [b] into [partitions] read-only
    tables built in parallel, then probing [a] as ordered contiguous
    chunks and concatenating the chunk outputs in order. Every decision
    (partition count, partition assignment, chunk boundaries) depends
    only on the data and [partitions], never on the pool width, so the
    result is byte-identical at any width; [~partitions:1] or a width-1
    pool degenerate to the sequential computation on the caller. *)

val parallel_filter : pool:Taskpool.t -> chunks:int -> (Row.t -> bool) -> t -> t
(** [parallel_filter ~pool ~chunks p t] is {!filter}[ p t] computed over
    ordered contiguous row chunks on the pool. [p] must be pure and
    thread-safe; chunk boundaries depend only on the row count and
    [chunks], so the result is identical at any pool width. *)

val order_by : (Row.t -> Row.t -> int) -> t -> t
(** Stable sort. *)

val limit : int -> t -> t
val requalify : string option -> t -> t

val pp : Format.formatter -> t -> unit
(** ASCII table with a header, the display format of the shell and the
    examples. *)

val to_string : t -> string
