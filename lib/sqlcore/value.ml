type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(* Null < numbers < strings < bools; ints and floats interleave numerically *)
let class_rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3

(* Int-vs-float comparison must be exact: rounding the int to a double
   first merges adjacent ints above 2^53 and makes the numeric order
   non-transitive (Int (2^53) = Float 2^53. = Int (2^53+1) while the two
   ints differ), which breaks sorting and hash-join keying. Compare in
   the integer domain instead; NaN keeps [Float.compare]'s convention
   (equal to itself, below every number). *)
let compare_int_float a b =
  if Float.is_nan b then 1
  else if b >= 0x1p62 then -1 (* every int is below 2^62 *)
  else if b < -0x1p62 then 1
  else
    let fl = Float.floor b in
    let il = int_of_float fl in
    (* exact: |fl| <= 2^62 and integral *)
    if a < il then -1 else if a > il then 1 else if fl = b then 0 else -1

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int a, Int b -> Stdlib.compare a b
  | Float a, Float b -> Float.compare a b
  | Int a, Float b -> compare_int_float a b
  | Float a, Int b -> -compare_int_float b a
  | Str a, Str b -> String.compare a b
  | Bool a, Bool b -> Bool.compare a b
  | _, _ -> Stdlib.compare (class_rank a) (class_rank b)

(* Equality is [compare] agreement, so Int 1 = Float 1.0: a sort by
   [compare] followed by a pairwise [equal] walk (Relation.equal_unordered)
   can never disagree with the order it sorted by. *)
let equal a b = compare a b = 0

let ty = function
  | Null -> None
  | Int _ -> Some Ty.Int
  | Float _ -> Some Ty.Float
  | Str _ -> Some Ty.Str
  | Bool _ -> Some Ty.Bool

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Str s -> s
  | Bool b -> if b then "TRUE" else "FALSE"

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let to_literal = function
  | Str s -> quote s
  | (Null | Int _ | Float _ | Bool _) as v -> to_string v

let of_literal_exn s =
  let n = String.length s in
  if n = 0 then invalid_arg "Value.of_literal_exn: empty"
  else if String.uppercase_ascii s = "NULL" then Null
  else if String.uppercase_ascii s = "TRUE" then Bool true
  else if String.uppercase_ascii s = "FALSE" then Bool false
  else if s.[0] = '\'' then
    if n >= 2 && s.[n - 1] = '\'' then
      let body = String.sub s 1 (n - 2) in
      let buf = Buffer.create (String.length body) in
      let rec loop i =
        if i < String.length body then begin
          if body.[i] = '\'' && i + 1 < String.length body && body.[i + 1] = '\''
          then begin
            Buffer.add_char buf '\'';
            loop (i + 2)
          end
          else begin
            Buffer.add_char buf body.[i];
            loop (i + 1)
          end
        end
      in
      loop 0;
      Str (Buffer.contents buf)
    else invalid_arg "Value.of_literal_exn: unterminated string"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> invalid_arg ("Value.of_literal_exn: " ^ s))

let pp ppf v = Format.pp_print_string ppf (to_string v)

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ -> None

let as_int = function Int i -> Some i | Null | Float _ | Str _ | Bool _ -> None
let as_string = function Str s -> Some s | Null | Int _ | Float _ | Bool _ -> None
let as_bool = function Bool b -> Some b | Null | Int _ | Float _ | Str _ -> None

let size_bytes = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Bool _ -> 1
  | Str s -> String.length s
