(* Columnar batches: the vectorized counterpart of a [Row.t list]. A batch
   holds one typed array per column — plus a null bitmap — so kernels scan
   contiguous unboxed data instead of chasing [Value.t] constructors row by
   row. Conversion is total and exact: [to_rows (of_rows s rs) = rs] for
   every well-formed row list, including integers above 2^53 (a column
   mixing Int and Float stays [Boxed] rather than promoting to float). *)

type col =
  | Ints of int array
  | Floats of float array
  | Strs of string array
  | Bools of bool array
  | Boxed of Value.t array
      (* mixed-class or otherwise untypeable column; holds the original
         values verbatim (Nulls included) *)

type column = {
  data : col;
  nulls : Bytes.t;  (* bit i set = row i is NULL in this column *)
}

type t = { schema : Schema.t; nrows : int; cols : column array }

(* ---- bitmaps ------------------------------------------------------------- *)

type mask = Bytes.t

let mask_bytes n = (n + 7) / 8
let mask_create n = Bytes.make (mask_bytes n) '\000'

let mask_get m i =
  Char.code (Bytes.unsafe_get m (i lsr 3)) land (1 lsl (i land 7)) <> 0

let mask_set m i =
  let b = i lsr 3 in
  Bytes.unsafe_set m b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get m b) lor (1 lsl (i land 7))))

let mask_count m n =
  let c = ref 0 in
  for i = 0 to n - 1 do
    if mask_get m i then incr c
  done;
  !c

(* ---- construction -------------------------------------------------------- *)

let length t = t.nrows
let schema t = t.schema

let of_rows sch rows =
  let arr = Array.of_list rows in
  let nrows = Array.length arr in
  let arity = Schema.arity sch in
  let schema_tys = Array.of_list (List.map (fun c -> c.Schema.ty) sch) in
  let mk_col j =
    let nulls = mask_create nrows in
    (* one classification pass: a column is typed only when every non-null
       value shares one class; Int mixed with Float must stay Boxed so
       integers above 2^53 keep their exact identity *)
    let has_int = ref false
    and has_float = ref false
    and has_str = ref false
    and has_bool = ref false in
    for i = 0 to nrows - 1 do
      match Array.unsafe_get (Array.unsafe_get arr i) j with
      | Value.Null -> ()
      | Value.Int _ -> has_int := true
      | Value.Float _ -> has_float := true
      | Value.Str _ -> has_str := true
      | Value.Bool _ -> has_bool := true
    done;
    let classes =
      (if !has_int then 1 else 0)
      + (if !has_float then 1 else 0)
      + (if !has_str then 1 else 0)
      + if !has_bool then 1 else 0
    in
    let cls =
      if classes > 1 then `Boxed
      else if !has_int then `Int
      else if !has_float then `Float
      else if !has_str then `Str
      else if !has_bool then `Bool
      else
        (* all-NULL column: type it from the schema so kernels still see a
           typed array (every bit of [nulls] is set below) *)
        match schema_tys.(j) with
        | Ty.Int -> `Int
        | Ty.Float -> `Float
        | Ty.Str -> `Str
        | Ty.Bool -> `Bool
    in
    let data =
      match cls with
      | `Int ->
          let a = Array.make nrows 0 in
          for i = 0 to nrows - 1 do
            match arr.(i).(j) with
            | Value.Int v -> Array.unsafe_set a i v
            | Value.Null -> mask_set nulls i
            | _ -> assert false
          done;
          Ints a
      | `Float ->
          let a = Array.make nrows 0. in
          for i = 0 to nrows - 1 do
            match arr.(i).(j) with
            | Value.Float v -> Array.unsafe_set a i v
            | Value.Null -> mask_set nulls i
            | _ -> assert false
          done;
          Floats a
      | `Str ->
          let a = Array.make nrows "" in
          for i = 0 to nrows - 1 do
            match arr.(i).(j) with
            | Value.Str v -> Array.unsafe_set a i v
            | Value.Null -> mask_set nulls i
            | _ -> assert false
          done;
          Strs a
      | `Bool ->
          let a = Array.make nrows false in
          for i = 0 to nrows - 1 do
            match arr.(i).(j) with
            | Value.Bool v -> Array.unsafe_set a i v
            | Value.Null -> mask_set nulls i
            | _ -> assert false
          done;
          Bools a
      | `Boxed ->
          let a = Array.make nrows Value.Null in
          for i = 0 to nrows - 1 do
            let v = arr.(i).(j) in
            Array.unsafe_set a i v;
            if Value.is_null v then mask_set nulls i
          done;
          Boxed a
    in
    { data; nulls }
  in
  { schema = sch; nrows; cols = Array.init arity mk_col }

let is_null t i j = mask_get t.cols.(j).nulls i

let get t i j =
  let c = t.cols.(j) in
  if mask_get c.nulls i then Value.Null
  else
    match c.data with
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Strs a -> Value.Str a.(i)
    | Bools a -> Value.Bool a.(i)
    | Boxed a -> a.(i)

let to_rows t =
  let arity = Array.length t.cols in
  List.init t.nrows (fun i -> Array.init arity (fun j -> get t i j))

(* matches the row-side accounting exactly: Null 1, Int/Float 8, Bool 1,
   Str its length — so a relation's wire size is representation-invariant *)
let size_bytes t =
  let n = t.nrows in
  let col_bytes c =
    let nulls = mask_count c.nulls n in
    match c.data with
    | Ints _ | Floats _ -> (8 * (n - nulls)) + nulls
    | Bools _ -> n (* 1 byte whether null or not *)
    | Strs a ->
        let acc = ref 0 in
        for i = 0 to n - 1 do
          acc := !acc + if mask_get c.nulls i then 1 else String.length a.(i)
        done;
        !acc
    | Boxed a -> Array.fold_left (fun acc v -> acc + Value.size_bytes v) 0 a
  in
  Array.fold_left (fun acc c -> acc + col_bytes c) 0 t.cols

(* zero-copy: the projected batch shares the underlying column arrays *)
let project t idxs sch =
  {
    schema = sch;
    nrows = t.nrows;
    cols = Array.of_list (List.map (fun j -> t.cols.(j)) idxs);
  }

(* gather rows [idx] (in that order) into a fresh batch *)
let select t idx =
  let n = Array.length idx in
  let gather_col c =
    let nulls = mask_create n in
    for i = 0 to n - 1 do
      if mask_get c.nulls idx.(i) then mask_set nulls i
    done;
    let data =
      match c.data with
      | Ints a -> Ints (Array.init n (fun i -> a.(idx.(i))))
      | Floats a -> Floats (Array.init n (fun i -> a.(idx.(i))))
      | Strs a -> Strs (Array.init n (fun i -> a.(idx.(i))))
      | Bools a -> Bools (Array.init n (fun i -> a.(idx.(i))))
      | Boxed a -> Boxed (Array.init n (fun i -> a.(idx.(i))))
    in
    { data; nulls }
  in
  { schema = t.schema; nrows = n; cols = Array.map gather_col t.cols }

let filter m t =
  let idx = Array.make (mask_count m t.nrows) 0 in
  let k = ref 0 in
  for i = 0 to t.nrows - 1 do
    if mask_get m i then begin
      idx.(!k) <- i;
      incr k
    end
  done;
  select t idx

(* ---- join keys ------------------------------------------------------------

   Join keys are class-prefixed strings so values of distinct classes never
   collide; Int and Float share the numeric class because SQL equality
   compares them numerically. NULL has no key: NULL = x is never true.

   Keys must be exact: routing Int through string_of_float would fold
   integers above 2^53 onto their nearest double and join rows the
   filtered-product path rejects. An integral Float in the OCaml int range
   shares the Int's decimal key, so Int 5 and Float 5.0 still match; any
   other float gets its exact hex rendering ("%h" always contains an 'x',
   so it can never collide with a decimal integer key). *)
let join_key_of_value = function
  | Value.Null -> None
  | Value.Int i -> Some ("n" ^ string_of_int i)
  | Value.Float f ->
      if Float.is_integer f && f >= -0x1p62 && f < 0x1p62 then
        Some ("n" ^ string_of_int (int_of_float f))
      else Some ("n" ^ Printf.sprintf "%h" f)
  | Value.Str s -> Some ("s" ^ s)
  | Value.Bool true -> Some "bt"
  | Value.Bool false -> Some "bf"

(* ---- hash join ------------------------------------------------------------ *)

(* growable int vector: the probe loop appends match pairs without
   allocating a cons cell per output row *)
type intvec = { mutable a : int array; mutable n : int }

let iv_create () = { a = Array.make 1024 0; n = 0 }

let iv_push v x =
  if v.n = Array.length v.a then begin
    let bigger = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 bigger 0 v.n;
    v.a <- bigger
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

let iv_contents v = Array.sub v.a 0 v.n

(* Output order reproduces {!Relation.hash_join}: probe rows in [a] order,
   matches within a probe row in ascending build order. The int fast path
   applies when both key columns are [Ints]: since every "n<int>" string
   key corresponds to exactly one int, bucketing by the raw int partitions
   identically to bucketing by the string key. *)
let hash_join a b ~keys =
  let ka = List.map fst keys and kb = List.map snd keys in
  let out_schema = a.schema @ b.schema in
  let ai = iv_create () and bi = iv_create () in
  let probe_matches find_bucket key_of =
    for i = 0 to a.nrows - 1 do
      match key_of i with
      | None -> ()
      | Some k -> (
          match find_bucket k with
          | None -> ()
          | Some rows ->
              List.iter
                (fun j ->
                  iv_push ai i;
                  iv_push bi j)
                rows)
    done
  in
  (match ka, kb with
  | [ ca ], [ cb ]
    when (match a.cols.(ca).data, b.cols.(cb).data with
         | Ints _, Ints _ -> true
         | _ -> false) ->
      let akeys = match a.cols.(ca).data with Ints x -> x | _ -> assert false in
      let bkeys = match b.cols.(cb).data with Ints x -> x | _ -> assert false in
      let an = a.cols.(ca).nulls and bn = b.cols.(cb).nulls in
      (* array-chained hash table: [heads] maps a hash slot to its newest
         entry, [next] chains entries with the same slot — no boxing, no
         cons cells, no rehashing. Build rows are inserted from the back,
         so each chain reads out in ascending build order. *)
      let cap =
        let rec up c = if c >= 2 * max 16 b.nrows then c else up (2 * c) in
        up 16
      in
      let slot k = (k * 0x2545F4914F6CDD1D) lsr 1 land (cap - 1) in
      let heads = Array.make cap (-1) in
      let next = Array.make (max 1 b.nrows) (-1) in
      for i = b.nrows - 1 downto 0 do
        if not (mask_get bn i) then begin
          let h = slot (Array.unsafe_get bkeys i) in
          Array.unsafe_set next i (Array.unsafe_get heads h);
          Array.unsafe_set heads h i
        end
      done;
      for i = 0 to a.nrows - 1 do
        if not (mask_get an i) then begin
          let k = Array.unsafe_get akeys i in
          let j = ref (Array.unsafe_get heads (slot k)) in
          while !j >= 0 do
            if Array.unsafe_get bkeys !j = k then begin
              iv_push ai i;
              iv_push bi !j
            end;
            j := Array.unsafe_get next !j
          done
        end
      done
  | _ ->
      let key_at t cols i =
        let rec go acc = function
          | [] -> Some (String.concat "\x00" (List.rev acc))
          | c :: rest -> (
              match join_key_of_value (get t i c) with
              | None -> None
              | Some k -> go (k :: acc) rest)
        in
        go [] cols
      in
      let tbl : (string, int list ref) Hashtbl.t =
        Hashtbl.create (max 16 b.nrows)
      in
      for i = b.nrows - 1 downto 0 do
        match key_at b kb i with
        | None -> ()
        | Some k -> (
            match Hashtbl.find_opt tbl k with
            | Some bucket -> bucket := i :: !bucket
            | None -> Hashtbl.add tbl k (ref [ i ]))
      done;
      probe_matches
        (fun k -> Option.map ( ! ) (Hashtbl.find_opt tbl k))
        (fun i -> key_at a ka i));
  let left = select a (iv_contents ai) and right = select b (iv_contents bi) in
  {
    schema = out_schema;
    nrows = left.nrows;
    cols = Array.append left.cols right.cols;
  }
