(* Rows are held newest-first in [rev_rows] so that {!add_row} is O(1); the
   forward (insertion-order) view is memoized in [fwd] the first time it is
   asked for. [size_memo] caches {!size_bytes}, which the network simulator
   recomputes on every send otherwise; [batch_memo] caches the columnar
   view so repeated batch kernels over one relation convert once. *)
type t = {
  schema : Schema.t;
  rev_rows : Row.t list;
  mutable fwd : Row.t list option;
  mutable size_memo : int;  (* -1 = not yet computed *)
  mutable batch_memo : Batch.t option;
}

let mk ?fwd ?(size = -1) ?batch schema rev_rows =
  { schema; rev_rows; fwd; size_memo = size; batch_memo = batch }

let make schema rows =
  let arity = Schema.arity schema in
  List.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Relation.make: row arity %d, schema arity %d"
             (Array.length r) arity))
    rows;
  mk ~fwd:rows schema (List.rev rows)

let empty schema = mk ~fwd:[] schema []
let schema t = t.schema

let rows t =
  match t.fwd with
  | Some r -> r
  | None ->
      let r = List.rev t.rev_rows in
      t.fwd <- Some r;
      r

let cardinality t = List.length t.rev_rows
let is_empty t = t.rev_rows = []

let size_bytes t =
  if t.size_memo >= 0 then t.size_memo
  else begin
    let n = List.fold_left (fun acc r -> acc + Row.size_bytes r) 0 t.rev_rows in
    t.size_memo <- n;
    n
  end

let equal a b =
  Schema.equal a.schema b.schema
  && List.length a.rev_rows = List.length b.rev_rows
  && List.for_all2 Row.equal a.rev_rows b.rev_rows

let equal_unordered a b =
  Schema.equal a.schema b.schema
  && List.length a.rev_rows = List.length b.rev_rows
  &&
  let sort rows = List.sort Row.compare rows in
  List.for_all2 Row.equal (sort a.rev_rows) (sort b.rev_rows)

let add_row t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg "Relation.add_row: arity mismatch";
  let size =
    if t.size_memo >= 0 then t.size_memo + Row.size_bytes row else -1
  in
  mk ~size t.schema (row :: t.rev_rows)

(* filtering the reversed list keeps relative order within it *)
let filter p t = mk t.schema (List.filter p t.rev_rows)
let map_rows f schema t = make schema (List.map f (rows t))
let project t idxs schema = make schema (List.map (Row.project idxs) (rows t))

let distinct t =
  let seen = Hashtbl.create 64 in
  let keep r =
    let key = List.map Value.to_literal (Row.to_list r) |> String.concat "\x00" in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  (* first occurrence wins, so walk in forward order *)
  make t.schema (List.filter keep (rows t))

let union a b =
  if not (Schema.union_compatible a.schema b.schema) then
    invalid_arg "Relation.union: schemas not union-compatible";
  mk a.schema (b.rev_rows @ a.rev_rows)

let product a b =
  let schema = a.schema @ b.schema in
  let brows = rows b in
  let rows =
    List.concat_map (fun ra -> List.map (fun rb -> Row.append ra rb) brows) (rows a)
  in
  make schema rows

(* ---- hash join ----------------------------------------------------------- *)

(* Join keys live in {!Batch} (the batch join kernel shares them); see
   there for the exactness argument above 2^53. *)
let join_key_of_value = Batch.join_key_of_value

let join_key row idxs =
  let rec go acc = function
    | [] -> Some (String.concat "\x00" (List.rev acc))
    | i :: rest -> (
        match join_key_of_value (Row.get row i) with
        | None -> None
        | Some k -> go (k :: acc) rest)
  in
  go [] idxs

(* Build-side buckets are mutable refs holding rows newest-first, so each
   build row costs one lookup plus (on first occurrence) one insert —
   instead of the earlier find_opt + Option + replace triple, which paid
   two traversals and re-allocated the bucket spine on every row. The
   table is sized from the build cardinality so it never rehashes. *)
let build_side_table rbs ~kb ~size =
  let tbl : (string, Row.t list ref) Hashtbl.t =
    Hashtbl.create (max 16 size)
  in
  List.iter
    (fun rb ->
      match join_key rb kb with
      | None -> ()
      | Some k -> (
          match Hashtbl.find_opt tbl k with
          | Some bucket -> bucket := rb :: !bucket
          | None -> Hashtbl.add tbl k (ref [ rb ])))
    rbs;
  tbl

let hash_join a b ~keys =
  let ka = List.map fst keys and kb = List.map snd keys in
  let schema = a.schema @ b.schema in
  let card_b = cardinality b in
  let tbl = build_side_table (rows b) ~kb ~size:card_b in
  (* probe in [a] order and emit matches in [b] order, reproducing the order
     of the equivalent filtered product *)
  let out =
    List.concat_map
      (fun ra ->
        match join_key ra ka with
        | None -> []
        | Some k -> (
            match Hashtbl.find_opt tbl k with
            | None -> []
            | Some rbs -> List.rev_map (fun rb -> Row.append ra rb) !rbs))
      (rows a)
  in
  make schema out

(* ---- partitioned parallel hash join -------------------------------------- *)

type par_join_stats = {
  pj_partitions : int;
  pj_build_rows : int;
  pj_probe_rows : int;
}

(* [0, n) as [chunks] contiguous ranges, each handed to [f c lo hi] as
   one pool job ([c] is the chunk's ordinal). Chunk boundaries depend
   only on [n] and [chunks], never on the pool width, so the work
   decomposition is reproducible. *)
let chunk_jobs n chunks f =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and extra = n mod chunks in
  let rec go c lo acc =
    if c >= chunks then List.rev acc
    else
      let len = base + if c < extra then 1 else 0 in
      go (c + 1) (lo + len) ((fun () -> f c lo (lo + len)) :: acc)
  in
  go 0 0 []

(* The deterministic parallel join. The build side is hash-partitioned by
   join key ([Hashtbl.hash] is a fixed polynomial hash, identical across
   runs and domains), one read-only hash table is built per partition in
   parallel, and the probe side is scanned as ordered contiguous chunks,
   each probing the partition tables and accumulating its output locally;
   the chunk outputs are concatenated in chunk order. Because every
   decision — partition count, partition assignment, chunk boundaries,
   per-bucket row order — depends only on the data and [partitions], the
   result is byte-identical to {!hash_join} at any pool width, including
   width 1 (where [Taskpool.run_all] runs every job on the caller). *)
let parallel_hash_join ~pool ~partitions a b ~keys =
  let ka = List.map fst keys and kb = List.map snd keys in
  let schema = a.schema @ b.schema in
  (* force the forward-row memos on the calling domain: [rows] mutates
     [fwd], which must not race with the fan-out below *)
  let brows = Array.of_list (rows b) in
  let arows = Array.of_list (rows a) in
  let nb = Array.length brows and na = Array.length arows in
  let p = max 1 (min partitions (max 1 nb)) in
  (* phase 1: key extraction for the build side, chunked over the pool *)
  let bkeys = Array.make nb None in
  Taskpool.run_all pool
    (chunk_jobs nb p (fun _ lo hi ->
         for i = lo to hi - 1 do
           bkeys.(i) <- join_key brows.(i) kb
         done));
  (* phase 2: assign build rows to partitions (sequential: cheap pointer
     pushes). Each partition list ends up newest-first. *)
  let parts = Array.make p [] in
  for i = 0 to nb - 1 do
    match bkeys.(i) with
    | None -> ()
    | Some k ->
        let pi = Hashtbl.hash k mod p in
        parts.(pi) <- (k, brows.(i)) :: parts.(pi)
  done;
  (* phase 3: one hash table per partition, built in parallel. Consuming
     the newest-first partition list while consing leaves each bucket in
     forward build order, so probes can emit matches directly. *)
  let tbls =
    Array.init p (fun pi ->
        (Hashtbl.create (max 16 (List.length parts.(pi)))
          : (string, Row.t list ref) Hashtbl.t))
  in
  Taskpool.run_all pool
    (List.init p (fun pi () ->
         let tbl = tbls.(pi) in
         List.iter
           (fun (k, rb) ->
             match Hashtbl.find_opt tbl k with
             | Some bucket -> bucket := rb :: !bucket
             | None -> Hashtbl.add tbl k (ref [ rb ]))
           parts.(pi)));
  (* phase 4: probe in ordered chunks against the read-only tables *)
  let outs = Array.make p [] in
  let probe_jobs =
    chunk_jobs na p (fun c lo hi ->
        let acc = ref [] in
        for i = lo to hi - 1 do
          let ra = arows.(i) in
          match join_key ra ka with
          | None -> ()
          | Some k -> (
              match Hashtbl.find_opt tbls.(Hashtbl.hash k mod p) k with
              | None -> ()
              | Some rbs ->
                  List.iter (fun rb -> acc := Row.append ra rb :: !acc) !rbs)
        done;
        outs.(c) <- List.rev !acc)
  in
  Taskpool.run_all pool probe_jobs;
  let out = List.concat (Array.to_list outs) in
  ( make schema out,
    { pj_partitions = p; pj_build_rows = nb; pj_probe_rows = na } )

(* Chunked predicate evaluation with the same determinism argument as the
   parallel join: ordered contiguous chunks, per-chunk local accumulation,
   concatenation in chunk order. [p] must be pure (the executor only
   routes subquery-free WHERE clauses here). *)
let parallel_filter ~pool ~chunks p t =
  let arr = Array.of_list (rows t) in
  let n = Array.length arr in
  let c = max 1 (min chunks n) in
  let outs = Array.make c [] in
  Taskpool.run_all pool
    (chunk_jobs n c (fun ci lo hi ->
         let acc = ref [] in
         for i = lo to hi - 1 do
           if p arr.(i) then acc := arr.(i) :: !acc
         done;
         outs.(ci) <- List.rev !acc));
  make t.schema (List.concat (Array.to_list outs))

(* Same chunking and concatenation discipline as {!parallel_filter}, but
   each chunk evaluates a vectorized mask kernel over its row range
   instead of calling a per-row predicate. [kernel lo len] must return
   bitmaps for rows [lo, lo+len) indexed from bit 0; only the TRUE bitmap
   selects rows (UNKNOWN rows are dropped, as in WHERE). *)
let parallel_filter_mask ~pool ~chunks kernel t =
  let arr = Array.of_list (rows t) in
  let n = Array.length arr in
  let c = max 1 (min chunks n) in
  let outs = Array.make c [] in
  Taskpool.run_all pool
    (chunk_jobs n c (fun ci lo hi ->
         let len = hi - lo in
         let keep, _ = kernel lo len in
         let acc = ref [] in
         for k = len - 1 downto 0 do
           if Batch.mask_get keep k then acc := arr.(lo + k) :: !acc
         done;
         outs.(ci) <- !acc));
  make t.schema (List.concat (Array.to_list outs))

let order_by cmp t = mk ~size:t.size_memo t.schema (List.rev (List.stable_sort cmp (rows t)))

let limit n t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  make t.schema (take n (rows t))

(* the batch memo embeds the schema, so a requalified view must not share it *)
let requalify q t =
  { t with schema = Schema.requalify q t.schema; batch_memo = None }

(* ---- columnar batch views ------------------------------------------------ *)

let to_batch t =
  match t.batch_memo with
  | Some b -> b
  | None ->
      let b = Batch.of_rows t.schema (rows t) in
      t.batch_memo <- Some b;
      b

let of_batch b =
  let fwd = Batch.to_rows b in
  mk ~fwd ~size:(Batch.size_bytes b) ~batch:b (Batch.schema b) (List.rev fwd)

(* keep the rows whose mask bit (indexed in forward order) is set; the
   surviving rows are shared with [t], not rebuilt from the batch *)
let filter_mask m t =
  let kept = ref [] in
  List.iteri (fun i row -> if Batch.mask_get m i then kept := row :: !kept) (rows t);
  mk t.schema !kept

let batch_hash_join a b ~keys =
  of_batch (Batch.hash_join (to_batch a) (to_batch b) ~keys)

let pp ppf t =
  let headers = Schema.names t.schema in
  let cells = List.map (fun r -> List.map Value.to_string (Row.to_list r)) (rows t) in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) cells)
      headers
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let line cells =
    "|"
    ^ String.concat "|" (List.map2 (fun c w -> " " ^ pad c w ^ " ") cells widths)
    ^ "|"
  in
  Format.fprintf ppf "%s@\n%s@\n%s@\n" rule (line headers) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@\n" (line row)) cells;
  Format.fprintf ppf "%s" rule

let to_string t = Format.asprintf "%a" pp t
