(* Rows are held newest-first in [rev_rows] so that {!add_row} is O(1); the
   forward (insertion-order) view is memoized in [fwd] the first time it is
   asked for. [size_memo] caches {!size_bytes}, which the network simulator
   recomputes on every send otherwise. *)
type t = {
  schema : Schema.t;
  rev_rows : Row.t list;
  mutable fwd : Row.t list option;
  mutable size_memo : int;  (* -1 = not yet computed *)
}

let mk ?fwd ?(size = -1) schema rev_rows =
  { schema; rev_rows; fwd; size_memo = size }

let make schema rows =
  let arity = Schema.arity schema in
  List.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Relation.make: row arity %d, schema arity %d"
             (Array.length r) arity))
    rows;
  mk ~fwd:rows schema (List.rev rows)

let empty schema = mk ~fwd:[] schema []
let schema t = t.schema

let rows t =
  match t.fwd with
  | Some r -> r
  | None ->
      let r = List.rev t.rev_rows in
      t.fwd <- Some r;
      r

let cardinality t = List.length t.rev_rows
let is_empty t = t.rev_rows = []

let size_bytes t =
  if t.size_memo >= 0 then t.size_memo
  else begin
    let n = List.fold_left (fun acc r -> acc + Row.size_bytes r) 0 t.rev_rows in
    t.size_memo <- n;
    n
  end

let equal a b =
  Schema.equal a.schema b.schema
  && List.length a.rev_rows = List.length b.rev_rows
  && List.for_all2 Row.equal a.rev_rows b.rev_rows

let equal_unordered a b =
  Schema.equal a.schema b.schema
  && List.length a.rev_rows = List.length b.rev_rows
  &&
  let sort rows = List.sort Row.compare rows in
  List.for_all2 Row.equal (sort a.rev_rows) (sort b.rev_rows)

let add_row t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg "Relation.add_row: arity mismatch";
  let size =
    if t.size_memo >= 0 then t.size_memo + Row.size_bytes row else -1
  in
  mk ~size t.schema (row :: t.rev_rows)

(* filtering the reversed list keeps relative order within it *)
let filter p t = mk t.schema (List.filter p t.rev_rows)
let map_rows f schema t = make schema (List.map f (rows t))
let project t idxs schema = make schema (List.map (Row.project idxs) (rows t))

let distinct t =
  let seen = Hashtbl.create 64 in
  let keep r =
    let key = List.map Value.to_literal (Row.to_list r) |> String.concat "\x00" in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  (* first occurrence wins, so walk in forward order *)
  make t.schema (List.filter keep (rows t))

let union a b =
  if not (Schema.union_compatible a.schema b.schema) then
    invalid_arg "Relation.union: schemas not union-compatible";
  mk a.schema (b.rev_rows @ a.rev_rows)

let product a b =
  let schema = a.schema @ b.schema in
  let brows = rows b in
  let rows =
    List.concat_map (fun ra -> List.map (fun rb -> Row.append ra rb) brows) (rows a)
  in
  make schema rows

(* ---- hash join ----------------------------------------------------------- *)

(* Join keys are class-prefixed strings so values of distinct classes never
   collide; Int and Float share the numeric class because SQL equality
   compares them numerically. NULL has no key: NULL = x is never true.

   Keys must be exact: routing Int through string_of_float would fold
   integers above 2^53 onto their nearest double and join rows the
   filtered-product path rejects. An integral Float in the OCaml int range
   shares the Int's decimal key, so Int 5 and Float 5.0 still match; any
   other float gets its exact hex rendering ("%h" always contains an 'x',
   so it can never collide with a decimal integer key). *)
let join_key_of_value = function
  | Value.Null -> None
  | Value.Int i -> Some ("n" ^ string_of_int i)
  | Value.Float f ->
      if Float.is_integer f && f >= -0x1p62 && f < 0x1p62 then
        Some ("n" ^ string_of_int (int_of_float f))
      else Some ("n" ^ Printf.sprintf "%h" f)
  | Value.Str s -> Some ("s" ^ s)
  | Value.Bool true -> Some "bt"
  | Value.Bool false -> Some "bf"

let join_key row idxs =
  let rec go acc = function
    | [] -> Some (String.concat "\x00" (List.rev acc))
    | i :: rest -> (
        match join_key_of_value (Row.get row i) with
        | None -> None
        | Some k -> go (k :: acc) rest)
  in
  go [] idxs

let hash_join a b ~keys =
  let ka = List.map fst keys and kb = List.map snd keys in
  let schema = a.schema @ b.schema in
  let tbl = Hashtbl.create (max 16 (cardinality b)) in
  List.iter
    (fun rb ->
      match join_key rb kb with
      | None -> ()
      | Some k ->
          Hashtbl.replace tbl k
            (rb :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
    (rows b);
  (* probe in [a] order and emit matches in [b] order, reproducing the order
     of the equivalent filtered product *)
  let out =
    List.concat_map
      (fun ra ->
        match join_key ra ka with
        | None -> []
        | Some k -> (
            match Hashtbl.find_opt tbl k with
            | None -> []
            | Some rbs -> List.rev_map (fun rb -> Row.append ra rb) rbs))
      (rows a)
  in
  make schema out

let order_by cmp t = mk ~size:t.size_memo t.schema (List.rev (List.stable_sort cmp (rows t)))

let limit n t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  make t.schema (take n (rows t))

let requalify q t = { t with schema = Schema.requalify q t.schema }

let pp ppf t =
  let headers = Schema.names t.schema in
  let cells = List.map (fun r -> List.map Value.to_string (Row.to_list r)) (rows t) in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) cells)
      headers
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let line cells =
    "|"
    ^ String.concat "|" (List.map2 (fun c w -> " " ^ pad c w ^ " ") cells widths)
    ^ "|"
  in
  Format.fprintf ppf "%s@\n%s@\n%s@\n" rule (line headers) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@\n" (line row)) cells;
  Format.fprintf ppf "%s" rule

let to_string t = Format.asprintf "%a" pp t
