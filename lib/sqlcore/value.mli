(** Atomic values stored in relations.

    SQL three-valued logic is handled at the expression-evaluation level;
    here [Null] is an ordinary bottom element that compares lowest. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val equal : t -> t -> bool
(** Equality as agreement of {!compare}: [Int 1] and [Float 1.0] {e are}
    equal, matching the evaluator's numeric coercion and the order used to
    sort multisets before pairwise comparison. *)

val compare : t -> t -> int
(** Total order used for ORDER BY, MIN/MAX and index lookups. [Null] sorts
    first; ints and floats compare numerically across the two types. The
    cross-type comparison is {e exact} (performed in the integer domain),
    so adjacent ints above 2^53 are not merged by a detour through
    double rounding and the order stays transitive. *)

val ty : t -> Ty.t option
(** Type of a non-null value; [None] for [Null]. *)

val is_null : t -> bool

val to_string : t -> string
(** Display form: [NULL], bare numbers, unquoted strings. *)

val to_literal : t -> string
(** SQL literal form: strings quoted with ['] and embedded quotes doubled. *)

val of_literal_exn : string -> t
(** Inverse of {!to_literal} for the simple literal forms; raises
    [Invalid_argument] on malformed input. Used by tests. *)

val pp : Format.formatter -> t -> unit

val as_float : t -> float option
(** Numeric view of [Int] and [Float]; [None] otherwise. *)

val as_int : t -> int option
val as_string : t -> string option
val as_bool : t -> bool option

val size_bytes : t -> int
(** Approximate wire size of the value; used by the network simulator to
    charge data-shipping costs. *)
