(** Columnar batches: typed column arrays with null bitmaps.

    A batch is the vectorized view of a row list. Each column is stored as
    one contiguous typed array ([Ints], [Floats], [Strs], [Bools]) when all
    its non-null values share one class, and as a [Boxed] value array
    otherwise — a column mixing Int and Float stays boxed so that integers
    above 2^53 keep their exact identity. Conversion round-trips exactly:
    [to_rows (of_rows s rows) = rows]. *)

type col =
  | Ints of int array
  | Floats of float array
  | Strs of string array
  | Bools of bool array
  | Boxed of Value.t array

type column = {
  data : col;
  nulls : Bytes.t;  (** bit [i] set = row [i] is NULL in this column *)
}

type t = { schema : Schema.t; nrows : int; cols : column array }

(** {1 Bit masks} — one bit per row, used for vectorized selection. *)

type mask = Bytes.t

val mask_create : int -> mask
(** All-zero mask covering [n] rows. *)

val mask_get : mask -> int -> bool
val mask_set : mask -> int -> unit
val mask_count : mask -> int -> int
(** Set bits among the first [n]. *)

(** {1 Conversion and access} *)

val of_rows : Schema.t -> Row.t list -> t
val to_rows : t -> Row.t list
val length : t -> int
val schema : t -> Schema.t

val get : t -> int -> int -> Value.t
(** [get t row col]. *)

val is_null : t -> int -> int -> bool

val size_bytes : t -> int
(** Wire size, by exactly the same accounting as summing
    [Row.size_bytes] over [to_rows]: chunked shipment of a batch charges
    the same bytes as the row representation. *)

(** {1 Kernels} *)

val project : t -> int list -> Schema.t -> t
(** Zero-copy: the result shares the selected column arrays. *)

val select : t -> int array -> t
(** Gather the given row indices, in that order. *)

val filter : mask -> t -> t
(** Keep the rows whose mask bit is set, preserving order. *)

val hash_join : t -> t -> keys:(int * int) list -> t
(** Same rows, same order as {!Relation.hash_join} on the row views:
    probe in [a] order, matches in ascending build order, NULL keys never
    match, Int/Float compare numerically. When both sides of a single-key
    join are [Ints] columns the build and probe run on an int-keyed table
    with no per-row boxing. *)

val join_key_of_value : Value.t -> string option
(** Class-prefixed exact join key; [None] for NULL. Int and Float share
    the numeric class (integral floats in the int range get the int's
    decimal key), so keys agree with SQL numeric equality — see the
    implementation comment for the exactness argument above 2^53. *)
