(** A fixed-size OCaml 5 domain pool executing opaque jobs on real cores.

    This is the process's one pooling mechanism: the relational operators
    use it for intra-operator parallelism (partitioned hash join, chunked
    WHERE evaluation) and the multidatabase engine re-exports it as
    [Narada.Dpool] for PARBEGIN branch execution.

    The pool owns [domains - 1] worker domains parked on a condition
    variable; the caller of {!run_all} is the remaining execution lane, so
    [domains] is the true width of the pool and [domains = 1] runs
    everything sequentially on the calling domain with no spawn at all.

    Jobs are opaque thunks. They must not raise (callers wrap each job to
    capture its result or exception), and they must not submit work to the
    same pool: the engine's eligibility gate refuses nested parallel
    blocks, and the relational operators keep a pool of their own so a
    join job can never pick up an engine branch mid-drain. *)

type t

val create : domains:int -> t
(** A private pool of the given width (clamped to at least 1). Spawns
    [domains - 1] worker domains immediately. *)

val shared : domains:int -> t
(** The process-wide pool of the given width, created on first use and
    never shut down. Sessions and tests that merely toggle [?domains]
    share these, so repeated session creation does not accumulate OS
    threads. *)

val size : t -> int
(** The pool's width, counting the calling domain. *)

val run_all : t -> (unit -> unit) list -> unit
(** Execute every job, distributing them over the workers and the calling
    domain, and return when all have finished. Concurrent [run_all] calls
    on a shared pool are safe: each waits for its own batch only. *)

val shutdown : t -> unit
(** Stop the workers and join their domains. Only meaningful for pools
    from {!create}; idempotent. Pending jobs submitted before shutdown are
    completed first by the caller draining in {!run_all}. *)
