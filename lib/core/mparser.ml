module Token = Sqlfront.Token
module Tstream = Sqlfront.Tstream
module Sparser = Sqlfront.Parser
open Ast

exception Error of string * int * int

(* keywords that terminate a LET binding list / begin a query body *)
let body_start_kw = [ "select"; "update"; "insert"; "delete"; "create"; "drop" ]

let dotted_path ts =
  let rec go acc =
    let part = Tstream.ident ts in
    if Tstream.accept_sym ts "." then go (part :: acc) else List.rev (part :: acc)
  in
  go []

let parse_use ts =
  Tstream.expect_kw ts "use";
  let use_current = Tstream.accept_kw ts "current" in
  let item () =
    if Tstream.accept_sym ts "(" then begin
      let db = Tstream.ident ts in
      let alias = Some (Tstream.ident ts) in
      Tstream.expect_sym ts ")";
      let vital = if Tstream.accept_kw ts "vital" then Vital else Non_vital in
      { db; alias; vital }
    end
    else begin
      let db = Tstream.ident ts in
      let vital = if Tstream.accept_kw ts "vital" then Vital else Non_vital in
      { db; alias = None; vital }
    end
  in
  let at_item () =
    match Tstream.peek ts with
    | Token.Ident name -> not (Sqlcore.Names.mem name ("let" :: body_start_kw))
    | Token.Sym "(" -> true
    | _ -> false
  in
  let rec items acc = if at_item () then items (item () :: acc) else List.rev acc in
  let scope =
    if use_current && not (at_item ()) then []
    else items [ item () ]
  in
  (use_current, scope)

let parse_lets ts =
  let one () =
    Tstream.expect_kw ts "let";
    let var_path = dotted_path ts in
    Tstream.expect_kw ts "be";
    let at_binding () =
      match Tstream.peek ts with
      | Token.Ident name ->
          not (Sqlcore.Names.mem name ("let" :: "comp" :: body_start_kw))
      | _ -> false
    in
    let rec bindings acc =
      if at_binding () then bindings (dotted_path ts :: acc) else List.rev acc
    in
    let bindings = bindings [] in
    if bindings = [] then Tstream.error ts "LET needs at least one binding";
    List.iter
      (fun b ->
        if List.length b <> List.length var_path then
          Tstream.error ts
            (Printf.sprintf "LET binding %s has %d components, variable has %d"
               (String.concat "." b) (List.length b) (List.length var_path)))
      bindings;
    { var_path; bindings }
  in
  let rec go acc = if Tstream.at_kw ts "let" then go (one () :: acc) else List.rev acc in
  go []

let parse_comps ts =
  let one () =
    Tstream.expect_kw ts "comp";
    let comp_db = Tstream.ident ts in
    let comp_stmt = Sparser.stmt_of_tokens ts in
    { comp_db; comp_stmt }
  in
  let rec go acc = if Tstream.at_kw ts "comp" then go (one () :: acc) else List.rev acc in
  go []

let parse_query_at ts =
  let use_current, scope = parse_use ts in
  let lets = parse_lets ts in
  let body = Sparser.stmt_of_tokens ts in
  let comps = parse_comps ts in
  ignore (Tstream.accept_sym ts ";");
  { scope; use_current; lets; body; comps }

let parse_multitransaction_at ts =
  Tstream.expect_kw ts "begin";
  Tstream.expect_kw ts "multitransaction";
  let rec queries acc =
    if Tstream.at_kw ts "use" then queries (parse_query_at ts :: acc)
    else List.rev acc
  in
  let queries = queries [] in
  if queries = [] then Tstream.error ts "multitransaction needs at least one query";
  Tstream.expect_kw ts "commit";
  let state () =
    let rec go acc =
      let db = Tstream.ident ts in
      if Tstream.accept_kw ts "and" then go (db :: acc) else List.rev (db :: acc)
    in
    go []
  in
  let at_state () =
    match Tstream.peek ts with
    | Token.Ident name -> not (Sqlcore.Names.equal name "end")
    | _ -> false
  in
  let rec states acc = if at_state () then states (state () :: acc) else List.rev acc in
  let acceptable = states [] in
  if acceptable = [] then
    Tstream.error ts "COMMIT needs at least one acceptable state";
  Tstream.expect_kw ts "end";
  Tstream.expect_kw ts "multitransaction";
  { queries; acceptable }

let commit_or_nocommit ts =
  if Tstream.accept_kw ts "commit" then true
  else if Tstream.accept_kw ts "nocommit" then false
  else Tstream.error ts "expected COMMIT or NOCOMMIT"

let parse_incorporate_at ts =
  Tstream.expect_kw ts "incorporate";
  Tstream.expect_kw ts "service";
  let inc_service = Tstream.ident ts in
  let inc_site = if Tstream.accept_kw ts "site" then Some (Tstream.ident ts) else None in
  let connectmode = ref Connect_many in
  let commitmode = ref Supports_prepare in
  let create_c = ref None and insert_c = ref None and drop_c = ref None in
  let rec clauses () =
    if Tstream.accept_kw ts "connectmode" then begin
      (connectmode :=
         if Tstream.accept_kw ts "connect" then Connect_many
         else begin
           Tstream.expect_kw ts "noconnect";
           Connect_one
         end);
      clauses ()
    end
    else if Tstream.accept_kw ts "commitmode" then begin
      (commitmode :=
         if commit_or_nocommit ts then Commits_automatically else Supports_prepare);
      clauses ()
    end
    else if Tstream.accept_kw ts "create" then begin
      create_c := Some (commit_or_nocommit ts);
      clauses ()
    end
    else if Tstream.accept_kw ts "insert" then begin
      insert_c := Some (commit_or_nocommit ts);
      clauses ()
    end
    else if Tstream.accept_kw ts "drop" then begin
      drop_c := Some (commit_or_nocommit ts);
      clauses ()
    end
  in
  clauses ();
  let default = !commitmode = Commits_automatically in
  Incorporate
    {
      inc_service;
      inc_site;
      inc_connectmode = !connectmode;
      inc_commitmode = !commitmode;
      inc_create_commit = Option.value !create_c ~default;
      inc_insert_commit = Option.value !insert_c ~default;
      inc_drop_commit = Option.value !drop_c ~default;
    }

let parse_import_at ts =
  Tstream.expect_kw ts "import";
  Tstream.expect_kw ts "database";
  let imp_database = Tstream.ident ts in
  Tstream.expect_kw ts "from";
  Tstream.expect_kw ts "service";
  let imp_service = Tstream.ident ts in
  let imp_scope =
    if Tstream.accept_kw ts "table" || Tstream.accept_kw ts "view" then begin
      let itable = Tstream.ident ts in
      let icolumns =
        if Tstream.accept_kw ts "column" then begin
          let rec cols acc =
            match Tstream.peek ts with
            | Token.Ident c ->
                Tstream.advance ts;
                ignore (Tstream.accept_sym ts ",");
                cols (c :: acc)
            | _ -> List.rev acc
          in
          Some (cols [])
        end
        else None
      in
      Import_table { itable; icolumns }
    end
    else Import_all
  in
  Import { imp_database; imp_service; imp_scope }

(* CREATE TRIGGER name ON db WHEN <select> DO <query>
   DROP TRIGGER name *)
let parse_trigger_at ts =
  Tstream.expect_kw ts "create";
  Tstream.expect_kw ts "trigger";
  let trg_name = Tstream.ident ts in
  Tstream.expect_kw ts "on";
  let trg_db = Tstream.ident ts in
  Tstream.expect_kw ts "when";
  let trg_condition = Sparser.select_of_tokens ts in
  Tstream.expect_kw ts "do";
  let trg_action = parse_query_at ts in
  Create_trigger { trg_name; trg_db; trg_condition; trg_action }

let parse_use_items ts =
  (* item+ as in the USE statement: db | (db alias), each optionally VITAL *)
  let item () =
    if Tstream.accept_sym ts "(" then begin
      let db = Tstream.ident ts in
      let alias = Some (Tstream.ident ts) in
      Tstream.expect_sym ts ")";
      let vital = if Tstream.accept_kw ts "vital" then Vital else Non_vital in
      { db; alias; vital }
    end
    else begin
      let db = Tstream.ident ts in
      let vital = if Tstream.accept_kw ts "vital" then Vital else Non_vital in
      { db; alias = None; vital }
    end
  in
  let at_item () =
    match Tstream.peek ts with
    | Token.Ident _ -> true
    | Token.Sym "(" -> true
    | _ -> false
  in
  let rec items acc = if at_item () then items (item () :: acc) else List.rev acc in
  items [ item () ]

let rec parse_toplevel_at ts =
  if Tstream.accept_kw ts "explain" then
    (* EXPLAIN MULTIPLE <query> renders all pipeline phases; plain
       EXPLAIN wraps any statement and yields just the DOL program *)
    if Tstream.at_kw ts "multiple" && Tstream.at_kw2 ts "use" then begin
      Tstream.advance ts;
      Explain_multiple (parse_query_at ts)
    end
    else Explain (parse_toplevel_at ts)
  else if Tstream.at_kw ts "use" then Query (parse_query_at ts)
  else if Tstream.at_kw ts "create" && Tstream.at_kw2 ts "multidatabase" then begin
    Tstream.advance ts;
    Tstream.advance ts;
    let mdb_name = Tstream.ident ts in
    Tstream.expect_kw ts "as";
    Create_multidatabase { mdb_name; mdb_members = parse_use_items ts }
  end
  else if Tstream.at_kw ts "drop" && Tstream.at_kw2 ts "multidatabase" then begin
    Tstream.advance ts;
    Tstream.advance ts;
    Drop_multidatabase (Tstream.ident ts)
  end
  else if Tstream.at_kw ts "create" && Tstream.at_kw2 ts "trigger" then
    parse_trigger_at ts
  else if Tstream.at_kw ts "drop" && Tstream.at_kw2 ts "trigger" then begin
    Tstream.advance ts;
    Tstream.advance ts;
    Drop_trigger (Tstream.ident ts)
  end
  else if Tstream.at_kw ts "begin" && Tstream.at_kw2 ts "multitransaction" then
    Multitransaction (parse_multitransaction_at ts)
  else if Tstream.at_kw ts "incorporate" then parse_incorporate_at ts
  else if Tstream.at_kw ts "import" then parse_import_at ts
  else
    Tstream.error ts
      "expected USE, BEGIN MULTITRANSACTION, INCORPORATE, IMPORT or \
       CREATE/DROP TRIGGER"

let with_stream input f =
  try
    let ts = Tstream.create (Mlexer.tokenize input) in
    let r = f ts in
    (match Tstream.peek ts with
    | Token.Eof -> ()
    | tok ->
        Tstream.error ts (Printf.sprintf "trailing input: %s" (Token.to_string tok)));
    r
  with
  | Mlexer.Error (m, l, c) -> raise (Error (m, l, c))
  | Tstream.Error (m, l, c) -> raise (Error (m, l, c))

let parse_toplevel input =
  with_stream input (fun ts ->
      let t = parse_toplevel_at ts in
      ignore (Tstream.accept_sym ts ";");
      t)

let parse_script input =
  with_stream input (fun ts ->
      let rec go acc =
        if Tstream.at_eof ts then List.rev acc
        else if Tstream.accept_sym ts ";" then go acc
        else begin
          let t = parse_toplevel_at ts in
          ignore (Tstream.accept_sym ts ";");
          go (t :: acc)
        end
      in
      go [])

let parse_query input = with_stream input parse_query_at
