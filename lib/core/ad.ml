type entry = {
  service : string;
  site : string option;
  connectmode : Ast.connectmode;
  commitmode : Ast.commitmode;
  create_commit : bool;
  insert_commit : bool;
  drop_commit : bool;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable version : int;
      (* bumped on every INCORPORATE: the plan-cache invalidation epoch *)
}

let create () = { entries = Hashtbl.create 16; version = 0 }
let key = String.lowercase_ascii
let version t = t.version

let entry_of_incorporate (i : Ast.incorporate) =
  {
    service = i.Ast.inc_service;
    site = i.Ast.inc_site;
    connectmode = i.Ast.inc_connectmode;
    commitmode = i.Ast.inc_commitmode;
    create_commit = i.Ast.inc_create_commit;
    insert_commit = i.Ast.inc_insert_commit;
    drop_commit = i.Ast.inc_drop_commit;
  }

let register t e =
  t.version <- t.version + 1;
  Hashtbl.replace t.entries (key e.service) e

let incorporate t i = register t (entry_of_incorporate i)

let find t name = Hashtbl.find_opt t.entries (key name)

let services t =
  Hashtbl.fold (fun _ e acc -> e.service :: acc) t.entries []
  |> List.sort Sqlcore.Names.compare

let supports_2pc e = e.commitmode = Ast.Supports_prepare

let of_capabilities ~service ?site (caps : Ldbms.Capabilities.t) =
  {
    service;
    site;
    connectmode =
      (match caps.Ldbms.Capabilities.connect_mode with
      | Ldbms.Capabilities.Connect -> Ast.Connect_many
      | Ldbms.Capabilities.No_connect -> Ast.Connect_one);
    commitmode =
      (match caps.Ldbms.Capabilities.commit_mode with
      | Ldbms.Capabilities.Autocommit -> Ast.Commits_automatically
      | Ldbms.Capabilities.Two_phase -> Ast.Supports_prepare);
    create_commit = caps.Ldbms.Capabilities.create_commits;
    insert_commit = caps.Ldbms.Capabilities.insert_commits;
    drop_commit = caps.Ldbms.Capabilities.drop_commits;
  }
