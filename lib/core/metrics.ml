(* Session metrics registry: mutable counters the session and the engine
   feed while statements run, exportable as JSON for the benches and CI.
   Planning counters are bumped by Msession's pipeline; engine counters
   are folded from the typed trace stream ({!observe}) and from the
   engine outcome; network counters are read live from the world's
   per-site ledger at export time. *)

type cache_stats = {
  pool_hits : int;
  pool_misses : int;
  pool_discarded : int;
  pool_conflicts : int;
  plan_hits : int;
  plan_misses : int;
  result_hits : int;
  result_misses : int;
}

let zero_cache_stats =
  {
    pool_hits = 0;
    pool_misses = 0;
    pool_discarded = 0;
    pool_conflicts = 0;
    plan_hits = 0;
    plan_misses = 0;
    result_hits = 0;
    result_misses = 0;
  }

let add_cache_stats a b =
  {
    pool_hits = a.pool_hits + b.pool_hits;
    pool_misses = a.pool_misses + b.pool_misses;
    pool_discarded = a.pool_discarded + b.pool_discarded;
    pool_conflicts = a.pool_conflicts + b.pool_conflicts;
    plan_hits = a.plan_hits + b.plan_hits;
    plan_misses = a.plan_misses + b.plan_misses;
    result_hits = a.result_hits + b.result_hits;
    result_misses = a.result_misses + b.result_misses;
  }

type t = {
  (* planning: phases 1-4 of the pipeline *)
  mutable statements : int;
  mutable plans_replicated : int;
  mutable plans_global : int;
  mutable plans_transfer : int;
  mutable plans_mtx : int;
  mutable subqueries_shipped : int;
  mutable semijoins_applied : int;
  mutable semijoins_declined : int;
  mutable explains : int;
  (* engine: execution *)
  mutable engine_runs : int;
  mutable engine_errors : int;
  mutable engine_virtual_ms : float;
  mutable retries : int;
  mutable decisions_commit : int;
  mutable decisions_abort : int;
  mutable recovered : int;
  mutable in_doubt : int;
  mutable vital_splits : int;
  mutable snapshots : int;
  mutable ww_conflicts : int;
  mutable conflict_retries : int;
  mutable conflict_aborts : int;
  mutable moves : int;
  mutable moved_rows : int;
  mutable moved_bytes : int;
  mutable moves_reduced : int;
  mutable moves_cached : int;
  (* intra-operator parallelism at the sites (deterministic across pool
     widths: partition counts are a pure function of the data) *)
  mutable par_joins : int;
  mutable par_filters : int;
  mutable par_partitions : int;
  (* dataflow scheduler: planning-side DAG shape (folded when the pass
     regroups a program) and execution-side wave accounting (folded from
     Wave trace events; virtual, so width-invariant) *)
  mutable dataflow_nodes : int;
  mutable dataflow_edges : int;
  mutable dataflow_waves_planned : int;
  mutable dataflow_critical_len : int;
  mutable dataflow_waves : int;
  mutable dataflow_wave_branches : int;
  mutable dataflow_crit_ms : float;
  mutable dataflow_serial_ms : float;
  site_retries : (string, int) Hashtbl.t;
}

let create () =
  {
    statements = 0;
    plans_replicated = 0;
    plans_global = 0;
    plans_transfer = 0;
    plans_mtx = 0;
    subqueries_shipped = 0;
    semijoins_applied = 0;
    semijoins_declined = 0;
    explains = 0;
    engine_runs = 0;
    engine_errors = 0;
    engine_virtual_ms = 0.0;
    retries = 0;
    decisions_commit = 0;
    decisions_abort = 0;
    recovered = 0;
    in_doubt = 0;
    vital_splits = 0;
    snapshots = 0;
    ww_conflicts = 0;
    conflict_retries = 0;
    conflict_aborts = 0;
    moves = 0;
    moved_rows = 0;
    moved_bytes = 0;
    moves_reduced = 0;
    moves_cached = 0;
    par_joins = 0;
    par_filters = 0;
    par_partitions = 0;
    dataflow_nodes = 0;
    dataflow_edges = 0;
    dataflow_waves_planned = 0;
    dataflow_critical_len = 0;
    dataflow_waves = 0;
    dataflow_wave_branches = 0;
    dataflow_crit_ms = 0.0;
    dataflow_serial_ms = 0.0;
    site_retries = Hashtbl.create 8;
  }

(* fold [src] into [dst], counter by counter: the server aggregates its
   member sessions' registries into one server-wide registry this way.
   [dst] is usually a fresh registry, but accumulation works too. *)
let add dst src =
  dst.statements <- dst.statements + src.statements;
  dst.plans_replicated <- dst.plans_replicated + src.plans_replicated;
  dst.plans_global <- dst.plans_global + src.plans_global;
  dst.plans_transfer <- dst.plans_transfer + src.plans_transfer;
  dst.plans_mtx <- dst.plans_mtx + src.plans_mtx;
  dst.subqueries_shipped <- dst.subqueries_shipped + src.subqueries_shipped;
  dst.semijoins_applied <- dst.semijoins_applied + src.semijoins_applied;
  dst.semijoins_declined <- dst.semijoins_declined + src.semijoins_declined;
  dst.explains <- dst.explains + src.explains;
  dst.engine_runs <- dst.engine_runs + src.engine_runs;
  dst.engine_errors <- dst.engine_errors + src.engine_errors;
  dst.engine_virtual_ms <- dst.engine_virtual_ms +. src.engine_virtual_ms;
  dst.retries <- dst.retries + src.retries;
  dst.decisions_commit <- dst.decisions_commit + src.decisions_commit;
  dst.decisions_abort <- dst.decisions_abort + src.decisions_abort;
  dst.recovered <- dst.recovered + src.recovered;
  dst.in_doubt <- dst.in_doubt + src.in_doubt;
  dst.vital_splits <- dst.vital_splits + src.vital_splits;
  dst.snapshots <- dst.snapshots + src.snapshots;
  dst.ww_conflicts <- dst.ww_conflicts + src.ww_conflicts;
  dst.conflict_retries <- dst.conflict_retries + src.conflict_retries;
  dst.conflict_aborts <- dst.conflict_aborts + src.conflict_aborts;
  dst.moves <- dst.moves + src.moves;
  dst.moved_rows <- dst.moved_rows + src.moved_rows;
  dst.moved_bytes <- dst.moved_bytes + src.moved_bytes;
  dst.moves_reduced <- dst.moves_reduced + src.moves_reduced;
  dst.moves_cached <- dst.moves_cached + src.moves_cached;
  dst.par_joins <- dst.par_joins + src.par_joins;
  dst.par_filters <- dst.par_filters + src.par_filters;
  dst.par_partitions <- dst.par_partitions + src.par_partitions;
  dst.dataflow_nodes <- dst.dataflow_nodes + src.dataflow_nodes;
  dst.dataflow_edges <- dst.dataflow_edges + src.dataflow_edges;
  dst.dataflow_waves_planned <-
    dst.dataflow_waves_planned + src.dataflow_waves_planned;
  dst.dataflow_critical_len <-
    max dst.dataflow_critical_len src.dataflow_critical_len;
  dst.dataflow_waves <- dst.dataflow_waves + src.dataflow_waves;
  dst.dataflow_wave_branches <-
    dst.dataflow_wave_branches + src.dataflow_wave_branches;
  dst.dataflow_crit_ms <- dst.dataflow_crit_ms +. src.dataflow_crit_ms;
  dst.dataflow_serial_ms <- dst.dataflow_serial_ms +. src.dataflow_serial_ms;
  Hashtbl.iter
    (fun site n ->
      Hashtbl.replace dst.site_retries site
        (n + Option.value ~default:0 (Hashtbl.find_opt dst.site_retries site)))
    src.site_retries

let reset m =
  m.statements <- 0;
  m.plans_replicated <- 0;
  m.plans_global <- 0;
  m.plans_transfer <- 0;
  m.plans_mtx <- 0;
  m.subqueries_shipped <- 0;
  m.semijoins_applied <- 0;
  m.semijoins_declined <- 0;
  m.explains <- 0;
  m.engine_runs <- 0;
  m.engine_errors <- 0;
  m.engine_virtual_ms <- 0.0;
  m.retries <- 0;
  m.decisions_commit <- 0;
  m.decisions_abort <- 0;
  m.recovered <- 0;
  m.in_doubt <- 0;
  m.vital_splits <- 0;
  m.snapshots <- 0;
  m.ww_conflicts <- 0;
  m.conflict_retries <- 0;
  m.conflict_aborts <- 0;
  m.moves <- 0;
  m.moved_rows <- 0;
  m.moved_bytes <- 0;
  m.moves_reduced <- 0;
  m.moves_cached <- 0;
  m.par_joins <- 0;
  m.par_filters <- 0;
  m.par_partitions <- 0;
  m.dataflow_nodes <- 0;
  m.dataflow_edges <- 0;
  m.dataflow_waves_planned <- 0;
  m.dataflow_critical_len <- 0;
  m.dataflow_waves <- 0;
  m.dataflow_wave_branches <- 0;
  m.dataflow_crit_ms <- 0.0;
  m.dataflow_serial_ms <- 0.0;
  Hashtbl.reset m.site_retries

(* fold one typed trace event; events with no metric dimension are
   ignored (cache consultations are counted by the owning cache's own
   stats, statuses/branches are control flow) *)
let observe m (ev : Narada.Trace.event) =
  match ev.Narada.Trace.kind with
  | Narada.Trace.Retry { site; reason; _ } ->
      m.retries <- m.retries + 1;
      if Ldbms.Txn.is_conflict_message reason then
        m.conflict_retries <- m.conflict_retries + 1;
      let k = String.lowercase_ascii site in
      Hashtbl.replace m.site_retries k
        (1 + Option.value ~default:0 (Hashtbl.find_opt m.site_retries k))
  | Narada.Trace.Decision { verdict = Narada.Trace.Commit; _ } ->
      m.decisions_commit <- m.decisions_commit + 1
  | Narada.Trace.Decision { verdict = Narada.Trace.Abort; _ } ->
      m.decisions_abort <- m.decisions_abort + 1
  | Narada.Trace.Recovered _ -> m.recovered <- m.recovered + 1
  | Narada.Trace.Moved { rows; bytes; reduced; cached; _ } ->
      m.moves <- m.moves + 1;
      m.moved_rows <- m.moved_rows + rows;
      m.moved_bytes <- m.moved_bytes + bytes;
      if reduced then m.moves_reduced <- m.moves_reduced + 1;
      if cached then m.moves_cached <- m.moves_cached + 1
  | Narada.Trace.Snapshot _ -> m.snapshots <- m.snapshots + 1
  | Narada.Trace.Conflict _ -> m.ww_conflicts <- m.ww_conflicts + 1
  | Narada.Trace.Conflict_abort _ ->
      m.conflict_aborts <- m.conflict_aborts + 1
  | Narada.Trace.Parallel { op; partitions; _ } ->
      if String.equal op "join" then m.par_joins <- m.par_joins + 1
      else m.par_filters <- m.par_filters + 1;
      m.par_partitions <- m.par_partitions + partitions
  | Narada.Trace.Wave { branches; crit_ms; serial_ms } ->
      m.dataflow_waves <- m.dataflow_waves + 1;
      m.dataflow_wave_branches <- m.dataflow_wave_branches + branches;
      m.dataflow_crit_ms <- m.dataflow_crit_ms +. crit_ms;
      m.dataflow_serial_ms <- m.dataflow_serial_ms +. serial_ms
  (* Chunk events are deliberately not folded: a chunked MOVE's totals
     arrive through its Moved event, so the metrics JSON stays
     byte-identical at any chunk size *)
  | Narada.Trace.Opened _ | Narada.Trace.Open_failed _ | Narada.Trace.Closed _
  | Narada.Trace.Status _ | Narada.Trace.Branch _ | Narada.Trace.Pool_stale _
  | Narada.Trace.Cache _ | Narada.Trace.Chunk _ | Narada.Trace.Dolstatus _
  | Narada.Trace.Note _ ->
      ()

let note_dataflow m (ds : Narada.Dol_graph.stats) =
  m.dataflow_nodes <- m.dataflow_nodes + ds.Narada.Dol_graph.nodes;
  m.dataflow_edges <- m.dataflow_edges + ds.Narada.Dol_graph.edges;
  m.dataflow_waves_planned <-
    m.dataflow_waves_planned + ds.Narada.Dol_graph.waves;
  m.dataflow_critical_len <-
    max m.dataflow_critical_len ds.Narada.Dol_graph.critical_path_len

let note_decomposition m (dp : Decompose.plan) =
  List.iter
    (fun (s : Decompose.shipped) ->
      m.subqueries_shipped <- m.subqueries_shipped + 1;
      match s.Decompose.sj_gate with
      | Decompose.Sj_applied _ -> m.semijoins_applied <- m.semijoins_applied + 1
      | Decompose.Sj_declined _ ->
          m.semijoins_declined <- m.semijoins_declined + 1
      | Decompose.Sj_no_stats | Decompose.Sj_no_edge | Decompose.Sj_off -> ())
    dp.Decompose.shipped

(* ---- JSON export -------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json m ~world ~cache =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let ws = Netsim.World.stats world in
  addf "{\n";
  addf "  \"virtual_now_ms\": %.2f,\n" (Netsim.World.now_ms world);
  addf "  \"planning\": {\n";
  addf "    \"statements\": %d,\n" m.statements;
  addf
    "    \"plans\": {\"replicated\": %d, \"global\": %d, \"transfer\": %d, \
     \"multitransaction\": %d},\n"
    m.plans_replicated m.plans_global m.plans_transfer m.plans_mtx;
  addf "    \"subqueries_shipped\": %d,\n" m.subqueries_shipped;
  addf "    \"semijoins_applied\": %d,\n" m.semijoins_applied;
  addf "    \"semijoins_declined\": %d,\n" m.semijoins_declined;
  addf "    \"explains\": %d\n" m.explains;
  addf "  },\n";
  addf "  \"engine\": {\n";
  addf "    \"runs\": %d,\n" m.engine_runs;
  addf "    \"errors\": %d,\n" m.engine_errors;
  addf "    \"virtual_ms\": %.2f,\n" m.engine_virtual_ms;
  addf "    \"retries\": %d,\n" m.retries;
  addf "    \"decisions\": {\"commit\": %d, \"abort\": %d},\n" m.decisions_commit
    m.decisions_abort;
  addf "    \"recovered\": %d,\n" m.recovered;
  addf "    \"in_doubt\": %d,\n" m.in_doubt;
  addf "    \"vital_splits\": %d,\n" m.vital_splits;
  addf
    "    \"mvcc\": {\"snapshots\": %d, \"ww_conflicts\": %d, \
     \"conflict_retries\": %d, \"conflict_aborts\": %d},\n"
    m.snapshots m.ww_conflicts m.conflict_retries m.conflict_aborts;
  addf
    "    \"moves\": {\"count\": %d, \"rows\": %d, \"bytes\": %d, \
     \"semijoin_reduced\": %d, \"cache_hits\": %d},\n"
    m.moves m.moved_rows m.moved_bytes m.moves_reduced m.moves_cached;
  addf
    "    \"parallel\": {\"joins\": %d, \"filters\": %d, \"partitions\": %d},\n"
    m.par_joins m.par_filters m.par_partitions;
  addf
    "    \"dataflow\": {\"nodes\": %d, \"edges\": %d, \"waves_planned\": %d, \
     \"critical_path_len\": %d, \"waves\": %d, \"wave_branches\": %d, \
     \"critical_path_ms\": %.2f, \"serial_ms\": %.2f, \"overlap_ratio\": \
     %.2f}\n"
    m.dataflow_nodes m.dataflow_edges m.dataflow_waves_planned
    m.dataflow_critical_len m.dataflow_waves m.dataflow_wave_branches
    m.dataflow_crit_ms m.dataflow_serial_ms
    (if m.dataflow_crit_ms > 0.0 then m.dataflow_serial_ms /. m.dataflow_crit_ms
     else 1.0);
  addf "  },\n";
  addf "  \"caches\": {\n";
  addf
    "    \"pool\": {\"hits\": %d, \"misses\": %d, \"discarded\": %d, \
     \"conflicts\": %d},\n"
    cache.pool_hits cache.pool_misses cache.pool_discarded
    cache.pool_conflicts;
  addf "    \"plan\": {\"hits\": %d, \"misses\": %d},\n" cache.plan_hits
    cache.plan_misses;
  addf "    \"result\": {\"hits\": %d, \"misses\": %d}\n" cache.result_hits
    cache.result_misses;
  addf "  },\n";
  addf "  \"network\": {\"messages\": %d, \"bytes_moved\": %d, \"lost\": %d},\n"
    ws.Netsim.World.messages ws.Netsim.World.bytes_moved ws.Netsim.World.lost;
  addf "  \"sites\": [\n";
  let sites = Netsim.World.per_site world in
  (* a site can retry without delivering anything; make sure it appears *)
  let names =
    List.map fst sites
    @ Hashtbl.fold
        (fun s _ acc ->
          if List.mem_assoc s sites then acc else s :: acc)
        m.site_retries []
  in
  List.iteri
    (fun i name ->
      let sent_m, sent_b, recv_m, recv_b =
        match List.assoc_opt name sites with
        | Some s ->
            ( s.Netsim.World.sent_msgs,
              s.Netsim.World.sent_bytes,
              s.Netsim.World.recv_msgs,
              s.Netsim.World.recv_bytes )
        | None -> (0, 0, 0, 0)
      in
      let retries =
        Option.value ~default:0 (Hashtbl.find_opt m.site_retries name)
      in
      addf
        "    {\"site\": \"%s\", \"sent_messages\": %d, \"sent_bytes\": %d, \
         \"recv_messages\": %d, \"recv_bytes\": %d, \"retries\": %d}%s\n"
        (json_escape name) sent_m sent_b recv_m recv_b retries
        (if i = List.length names - 1 then "" else ","))
    names;
  addf "  ]\n";
  addf "}\n";
  Buffer.contents b
