module S = Sqlfront.Ast
module Names = Sqlcore.Names
module Schema = Sqlcore.Schema

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type semijoin = {
  sj_col : string;
  sj_probe : Sqlfront.Ast.select;
}

(* why a shipped subquery was (not) semijoin-reduced; the cost numbers are
   kept so EXPLAIN MULTIPLE can show the gate's arithmetic *)
type sj_gate =
  | Sj_applied of { key_bytes : int; est_bytes : int }
  | Sj_declined of { key_bytes : int; est_bytes : int }
  | Sj_no_stats
  | Sj_no_edge
  | Sj_off

type shipped = {
  sdb : string;
  subquery : Sqlfront.Ast.select;
  tmp_table : string;
  reduce : semijoin option;
  sj_gate : sj_gate;
}

type plan = {
  coordinator : string;
  shipped : shipped list;
  modified : Sqlfront.Ast.select;
  cleanup : string list;
}

let label (g : Expand.global_ref) =
  Option.value g.Expand.galias ~default:g.Expand.gtable

(* ---- column-occurrence resolution ------------------------------------- *)

(* Index of the reference a column occurrence belongs to. *)
let resolver grefs =
  let labelled = List.mapi (fun i g -> (i, label g, g)) grefs in
  fun ?qualifier name ->
    let candidates =
      match qualifier with
      | Some q -> List.filter (fun (_, l, _) -> Names.equal l q) labelled
      | None ->
          List.filter
            (fun (_, _, g) -> Schema.mem g.Expand.gschema name)
            labelled
    in
    match candidates with
    | [ (i, _, _) ] -> i
    | [] ->
        err "column %s%s does not resolve to any table of the global query"
          (match qualifier with Some q -> q ^ "." | None -> "")
          name
    | _ :: _ :: _ ->
        err "column %s is ambiguous in the global query; qualify it" name

(* Walk an expression, calling [f] on each column occurrence. Subqueries
   are rejected: the decomposer handles flat join queries only. *)
let rec iter_cols f (e : S.expr) =
  match e with
  | S.Lit _ -> ()
  | S.Col { qualifier; name } -> f ?qualifier name
  | S.Binop (_, a, b) ->
      iter_cols f a;
      iter_cols f b
  | S.Unop (_, a) -> iter_cols f a
  | S.Is_null { arg; _ } | S.Like { arg; _ } -> iter_cols f arg
  | S.In_list { arg; items; _ } ->
      iter_cols f arg;
      List.iter (iter_cols f) items
  | S.Between { arg; lo; hi; _ } ->
      iter_cols f arg;
      iter_cols f lo;
      iter_cols f hi
  | S.Agg { arg; _ } -> Option.iter (iter_cols f) arg
  | S.Scalar_subquery _ | S.In_subquery _ | S.Exists _ ->
      err "global (cross-database) queries may not contain nested subqueries"

let rec map_cols f (e : S.expr) : S.expr =
  match e with
  | S.Lit _ -> e
  | S.Col { qualifier; name } -> f ?qualifier name
  | S.Binop (op, a, b) -> S.Binop (op, map_cols f a, map_cols f b)
  | S.Unop (op, a) -> S.Unop (op, map_cols f a)
  | S.Is_null r -> S.Is_null { r with arg = map_cols f r.arg }
  | S.Like r -> S.Like { r with arg = map_cols f r.arg }
  | S.In_list r ->
      S.In_list
        { r with arg = map_cols f r.arg; items = List.map (map_cols f) r.items }
  | S.Between r ->
      S.Between
        {
          r with
          arg = map_cols f r.arg;
          lo = map_cols f r.lo;
          hi = map_cols f r.hi;
        }
  | S.Agg r -> S.Agg { r with arg = Option.map (map_cols f) r.arg }
  | S.Scalar_subquery _ | S.In_subquery _ | S.Exists _ ->
      err "global (cross-database) queries may not contain nested subqueries"

(* split a WHERE clause into its top-level conjuncts *)
let rec conjuncts = function
  | S.Binop (S.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> S.Binop (S.And, acc, c)) e rest)

(* ---- decomposition ------------------------------------------------------ *)

let decompose ~semijoin ~gselect ~grefs =
  if grefs = [] then err "global query with empty FROM";
  (* unique labels *)
  let labels = List.map label grefs in
  List.iteri
    (fun i l ->
      List.iteri
        (fun j l' -> if i < j && Names.equal l l' then err "duplicate table label %s" l)
        labels)
    labels;
  let resolve = resolver grefs in
  let gref i = List.nth grefs i in

  (* which columns of each reference does the query use? Stored newest-first
     with a membership set alongside, so recording stays O(1) per
     occurrence; [used_cols] restores first-use order. *)
  let used : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let used_seen : (int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let record i name =
    let k = (i, Names.canon name) in
    if not (Hashtbl.mem used_seen k) then begin
      Hashtbl.add used_seen k ();
      Hashtbl.replace used i
        (name :: Option.value (Hashtbl.find_opt used i) ~default:[])
    end
  in
  let used_cols i = List.rev (Option.value (Hashtbl.find_opt used i) ~default:[]) in
  let collect_expr e = iter_cols (fun ?qualifier name -> record (resolve ?qualifier name) name) e in
  List.iter
    (function
      | S.Star ->
          List.iteri
            (fun i g ->
              List.iter
                (fun (c : Schema.column) -> record i c.Schema.name)
                g.Expand.gschema)
            grefs
      | S.Qualified_star q -> (
          match
            List.concat
              (List.mapi
                 (fun i g -> if Names.equal (label g) q then [ (i, g) ] else [])
                 grefs)
          with
          | [ (i, g) ] ->
              List.iter
                (fun (c : Schema.column) -> record i c.Schema.name)
                g.Expand.gschema
          | [] -> err "unknown table label %s in %s.*" q q
          | _ :: _ :: _ -> err "ambiguous table label %s in %s.*" q q)
      | S.Proj_expr (e, _) -> collect_expr e)
    gselect.S.projections;
  Option.iter collect_expr gselect.S.where;
  List.iter collect_expr gselect.S.group_by;
  Option.iter collect_expr gselect.S.having;
  List.iter (fun (o : S.order_item) -> collect_expr o.S.sort_expr) gselect.S.order_by;

  (* group refs by database, preserving first-appearance order *)
  let dbs =
    List.fold_left
      (fun acc g ->
        if List.exists (Names.equal g.Expand.gdb) acc then acc
        else acc @ [ g.Expand.gdb ])
      [] grefs
  in
  let refs_of_db db =
    List.concat
      (List.mapi
         (fun i g -> if Names.equal g.Expand.gdb db then [ i ] else [])
         grefs)
  in
  let coordinator =
    List.fold_left
      (fun best db ->
        match best with
        | None -> Some db
        | Some b ->
            if List.length (refs_of_db db) > List.length (refs_of_db b) then Some db
            else best)
      None dbs
    |> Option.get
  in

  (* conjunct ownership: Some db when every column of the conjunct lives in
     that db, None for cross-database conjuncts *)
  let all_conjuncts = Option.fold ~none:[] ~some:conjuncts gselect.S.where in
  let conjunct_owner c =
    let owner = ref None and mixed = ref false in
    iter_cols
      (fun ?qualifier name ->
        let db = (gref (resolve ?qualifier name)).Expand.gdb in
        match !owner with
        | None -> owner := Some db
        | Some d when Names.equal d db -> ()
        | Some _ -> mixed := true)
      c;
    if !mixed then None else !owner
  in
  let owned = List.map (fun c -> (c, conjunct_owner c)) all_conjuncts in

  (* shipped subqueries for non-coordinator databases *)
  let tmp_name i = Printf.sprintf "msql_tmp_%d" i in
  let shipped_dbs = List.filter (fun db -> not (Names.equal db coordinator)) dbs in

  (* ---- semijoin reduction (SDD-1 style) --------------------------------
     A shipped subquery linked to a coordinator table by a cross-database
     equi-join conjunct can be restricted, before it runs, to the distinct
     join-key values present at the coordinator: strictly fewer bytes on
     the wire whenever the key set is selective. Statically cost-gated with
     the cardinalities the GDD recorded at IMPORT time: ship the keys only
     when they cost less than the data they are expected to save (prior:
     the reduction halves the shipped relation). No cardinality, no
     reduction. *)
  let col_width (g : Expand.global_ref) name =
    match
      List.find_opt
        (fun (c : Schema.column) -> Names.equal c.Schema.name name)
        g.Expand.gschema
    with
    | Some { Schema.ty = Sqlcore.Ty.Str; width; _ } -> Option.value width ~default:16
    | Some { Schema.ty = Sqlcore.Ty.Bool; _ } -> 1
    | Some _ | None -> 8
  in
  let semijoin_for db idxs =
    if not semijoin then (None, Sj_off)
    else
      (* first cross-database equi-join conjunct linking [db] to a
         coordinator table; [owned] pairs each conjunct with its owner and
         cross-database conjuncts own None *)
      let edge =
        List.find_map
          (fun (c, owner) ->
            if owner <> None then None
            else
              match c with
              | S.Binop
                  ( S.Eq,
                    S.Col { qualifier = qa; name = na },
                    S.Col { qualifier = qb; name = nb } ) -> (
                  let ia = resolve ?qualifier:qa na
                  and ib = resolve ?qualifier:qb nb in
                  let da = (gref ia).Expand.gdb
                  and db_b = (gref ib).Expand.gdb in
                  if Names.equal da db && Names.equal db_b coordinator then
                    Some ((ia, na), (ib, nb))
                  else if Names.equal db_b db && Names.equal da coordinator then
                    Some ((ib, nb), (ia, na))
                  else None)
              | _ -> None)
          owned
      in
      match edge with
      | None -> (None, Sj_no_edge)
      | Some ((si, ship_col), (ci, coord_col)) -> (
          let gc = gref ci in
          let shipped_rows =
            List.fold_left
              (fun acc i ->
                match acc, (gref i).Expand.gcard with
                | Some a, Some c -> Some (a * c)
                | _ -> None)
              (Some 1) idxs
          in
          match gc.Expand.gcard, shipped_rows with
          | Some coord_card, Some rows ->
              let row_width =
                List.fold_left
                  (fun acc i ->
                    let g = gref i in
                    match used_cols i with
                    | [] -> acc + 8
                    | cols ->
                        acc + List.fold_left (fun a c -> a + col_width g c) 0 cols)
                  0 idxs
              in
              let key_bytes = coord_card * col_width gc coord_col in
              let est_bytes = rows * row_width in
              if 2 * key_bytes >= est_bytes then
                (None, Sj_declined { key_bytes; est_bytes })
              else begin
                (* the probe also applies the coordinator-local conjuncts
                   confined to the joined table, so selective coordinator
                   predicates shrink the key set too *)
                let probe_where =
                  conjoin
                    (List.filter_map
                       (fun (c, owner) ->
                         match owner with
                         | Some d when Names.equal d coordinator -> (
                             let only_ci = ref true in
                             iter_cols
                               (fun ?qualifier name ->
                                 if resolve ?qualifier name <> ci then
                                   only_ci := false)
                               c;
                             if !only_ci then Some c else None)
                         | _ -> None)
                       owned)
                in
                let probe =
                  S.select ~distinct:true
                    ~projections:
                      [
                        S.Proj_expr
                          ( S.Col
                              { qualifier = Some (label gc); name = coord_col },
                            None );
                      ]
                    ~from:[ { S.table = gc.Expand.gtable; alias = gc.Expand.galias } ]
                    ?where:probe_where ()
                in
                ( Some
                    { sj_col = label (gref si) ^ "." ^ ship_col; sj_probe = probe },
                  Sj_applied { key_bytes; est_bytes } )
              end
          | _ -> (None, Sj_no_stats))
  in
  let shipped =
    List.mapi
      (fun k db ->
        let idxs = refs_of_db db in
        let projections =
          List.concat_map
            (fun i ->
              let g = gref i in
              let l = label g in
              match used_cols i with
              | [] ->
                  (* keep cardinality with a constant column *)
                  [ S.Proj_expr (S.Lit (Sqlcore.Value.Int 1), Some (l ^ "__one")) ]
              | cols ->
                  List.map
                    (fun c ->
                      S.Proj_expr
                        ( S.Col { qualifier = Some l; name = c },
                          Some (Names.canon l ^ "__" ^ Names.canon c) ))
                    cols)
            idxs
        in
        let from =
          List.map
            (fun i ->
              let g = gref i in
              { S.table = g.Expand.gtable; alias = g.Expand.galias })
            idxs
        in
        let where =
          conjoin
            (List.filter_map
               (fun (c, owner) ->
                 match owner with
                 | Some d when Names.equal d db -> Some c
                 | _ -> None)
               owned)
        in
        let reduce, sj_gate = semijoin_for db idxs in
        {
          sdb = db;
          subquery = S.select ~projections ~from ?where ();
          tmp_table = tmp_name (k + 1);
          reduce;
          sj_gate;
        })
      shipped_dbs
  in

  (* rewrite a column occurrence for Q' *)
  let tmp_of_db db =
    List.find_opt (fun s -> Names.equal s.sdb db) shipped
    |> Option.map (fun s -> s.tmp_table)
  in
  let rewrite ?qualifier name =
    let i = resolve ?qualifier name in
    let g = gref i in
    match tmp_of_db g.Expand.gdb with
    | None -> S.Col { qualifier = Some (label g); name }
    | Some tmp ->
        S.Col
          {
            qualifier = Some tmp;
            name = Names.canon (label g) ^ "__" ^ Names.canon name;
          }
  in
  let rewrite_expr e = map_cols rewrite e in
  let projections =
    List.concat_map
      (function
        | S.Star ->
            List.concat_map
              (fun g ->
                List.map
                  (fun (c : Schema.column) ->
                    S.Proj_expr
                      (rewrite ?qualifier:(Some (label g)) c.Schema.name,
                       Some c.Schema.name))
                  g.Expand.gschema)
              grefs
        | S.Qualified_star q ->
            let g =
              match
                List.find_opt (fun g -> Names.equal (label g) q) grefs
              with
              | Some g -> g
              | None -> err "unknown table label %s in %s.*" q q
            in
            List.map
              (fun (c : Schema.column) ->
                S.Proj_expr
                  (rewrite ?qualifier:(Some (label g)) c.Schema.name,
                   Some c.Schema.name))
              g.Expand.gschema
        | S.Proj_expr (e, alias) ->
            let alias =
              match alias, e with
              | Some a, _ -> Some a
              | None, S.Col { name; _ } -> Some name
              | None, _ -> None
            in
            [ S.Proj_expr (rewrite_expr e, alias) ])
      gselect.S.projections
  in
  let coord_from =
    List.concat_map
      (fun g ->
        if Names.equal g.Expand.gdb coordinator then
          [ { S.table = g.Expand.gtable; alias = g.Expand.galias } ]
        else [])
      grefs
    @ List.map (fun s -> { S.table = s.tmp_table; alias = None }) shipped
  in
  let remaining =
    List.filter_map
      (fun (c, owner) ->
        match owner with
        | Some d when not (Names.equal d coordinator) -> None
        | _ -> Some (rewrite_expr c))
      owned
  in
  let modified =
    {
      S.distinct = gselect.S.distinct;
      projections;
      from = coord_from;
      where = conjoin remaining;
      group_by = List.map rewrite_expr gselect.S.group_by;
      having = Option.map rewrite_expr gselect.S.having;
      order_by =
        List.map
          (fun (o : S.order_item) ->
            { o with S.sort_expr = rewrite_expr o.S.sort_expr })
          gselect.S.order_by;
    }
  in
  {
    coordinator;
    shipped;
    modified;
    cleanup = List.map (fun s -> s.tmp_table) shipped;
  }

let sj_gate_to_string = function
  | Sj_applied { key_bytes; est_bytes } ->
      Printf.sprintf
        "semijoin APPLIED: %d key byte(s) vs est. %d shipped byte(s) (2*%d < %d)"
        key_bytes est_bytes key_bytes est_bytes
  | Sj_declined { key_bytes; est_bytes } ->
      Printf.sprintf
        "semijoin DECLINED: %d key byte(s) vs est. %d shipped byte(s) (2*%d >= %d)"
        key_bytes est_bytes key_bytes est_bytes
  | Sj_no_stats -> "semijoin not considered: no cardinality statistics"
  | Sj_no_edge -> "semijoin not applicable: no equi-join edge to the coordinator"
  | Sj_off -> "semijoin disabled"

let pp_plan ppf p =
  Format.fprintf ppf "coordinator: %s@\n" p.coordinator;
  List.iter
    (fun s ->
      Format.fprintf ppf "ship %s <- [%s] %s@\n" s.tmp_table s.sdb
        (Sqlfront.Sql_pp.select_to_string s.subquery);
      Format.fprintf ppf "  %s@\n" (sj_gate_to_string s.sj_gate);
      match s.reduce with
      | None -> ()
      | Some sj ->
          Format.fprintf ppf "  semijoin %s IN (%s)@\n" sj.sj_col
            (Sqlfront.Sql_pp.select_to_string sj.sj_probe))
    p.shipped;
  Format.fprintf ppf "Q' @ %s: %s" p.coordinator
    (Sqlfront.Sql_pp.select_to_string p.modified)
