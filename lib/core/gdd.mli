(** The Global Data Dictionary: names, types and widths of the database
    objects visible at the multidatabase level (§3.1).

    Populated by IMPORT statements from Local Conceptual Schemas. The GDD
    is what multiple-identifier substitution consults: expansion never
    talks to a live database. *)

type t

val create : unit -> t

val id : t -> int
(** Process-unique identity of this dictionary instance (positive,
    allocation-ordered). Caches that outlive a single dictionary — the
    LDBMS compiled-predicate cache is process-global — key on
    [(id, version)] so that two dictionaries which happen to share a
    version number can never collide. *)

val version : t -> int
(** Monotone epoch, bumped on every mutation (imports, cardinality
    updates, forgets). Cached artifacts derived from the GDD — compiled
    plans above all — key on this and so miss after any IMPORT changes
    what a statement should expand to. *)

val import_table : t -> db:string -> table:string -> Sqlcore.Schema.t -> unit
(** Insert or replace one table definition. *)

val import_columns :
  t -> db:string -> table:string -> Sqlcore.Schema.t -> string list -> unit
(** Partial import: only the named columns of the given schema. Raises
    [Invalid_argument] if a named column is absent. *)

val import_database : t -> db:string -> (string * Sqlcore.Schema.t) list -> unit
(** Import a whole local conceptual schema (replaces prior definitions of
    the same tables but keeps others). *)

val set_cardinality : t -> db:string -> table:string -> int -> unit
(** Record the table's row count as observed at IMPORT time. Purely
    statistical: consulted by the decomposer's semijoin cost gate, never by
    name resolution. *)

val cardinality : t -> db:string -> table:string -> int option

val forget_database : t -> string -> unit
(** Drops the database's tables and their cardinality statistics. *)

val databases : t -> string list
val has_database : t -> string -> bool
val tables : t -> db:string -> (string * Sqlcore.Schema.t) list

val find_table : t -> db:string -> string -> Sqlcore.Schema.t option
(** Exact (case-insensitive) lookup. *)

val match_tables : t -> db:string -> pattern:string -> (string * Sqlcore.Schema.t) list
(** Tables of [db] whose name matches a multiple identifier ([%]
    wildcard); an exact name is the degenerate pattern. Sorted by name. *)

val match_columns : Sqlcore.Schema.t -> pattern:string -> string list
(** Column names of a schema matching a multiple identifier. *)
