module D = Narada.Dol_ast
module Names = Sqlcore.Names
module Sql_pp = Sqlfront.Sql_pp

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type binding = {
  task : string;
  bdb : string;
  vital : Ast.vital;
  retrieval : bool;
}

type plan = {
  program : D.program;
  task_bindings : binding list;
  coordinator : string option;
}

let task_name db = "t_" ^ Names.canon db
let comp_name db = "k_" ^ Names.canon db
let move_name db = "m_" ^ Names.canon db

let ad_entry ad db =
  match Ad.find ad db with
  | Some e -> e
  | None -> err "service %s has not been INCORPORATEd" db

let site_of ad db = Option.bind (Ad.find ad db) (fun e -> e.Ad.site)

let open_stmt ad db =
  D.Open { service = db; open_site = site_of ad db; alias = Names.canon db }

let script_of stmts = String.concat ";\n" (List.map Sql_pp.stmt_to_string stmts)

let conjoin_conds = function
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun acc x -> D.And (acc, x)) c rest)

let comp_for (q : Ast.query) (u : Ast.use_item) =
  List.find_opt
    (fun (c : Ast.comp_clause) ->
      Names.equal c.Ast.comp_db (Ast.use_db_key u)
      || Names.equal c.Ast.comp_db u.Ast.db)
    q.Ast.comps

(* IF (t=C) THEN BEGIN COMP k COMPENSATES t FOR db { sql } ENDCOMP END *)
let guarded_comp ~db ~task comp_stmt =
  D.If
    ( D.Status_is (task, D.C),
      [
        D.Comp
          {
            cname = comp_name db;
            compensates = Some task;
            target = Names.canon db;
            commands = Sql_pp.stmt_to_string comp_stmt;
          };
      ],
      [] )

(* ---- replicated queries --------------------------------------------------- *)

let plan_replicated ad (q : Ast.query) (elems : Expand.elementary list) =
  let retrieval = Ast.is_retrieval q in
  let infos =
    List.map
      (fun (e : Expand.elementary) ->
        let entry = ad_entry ad e.Expand.edb in
        (e, entry, comp_for q e.Expand.use))
      elems
  in
  let opens = List.map (fun (e, _, _) -> open_stmt ad e.Expand.edb) infos in
  if retrieval then begin
    (* reads: one task per elementary statement so each partial result is
       captured; VITAL databases must all succeed *)
    let tasks_of (e : Expand.elementary) =
      match e.Expand.stmts with
      | [ stmt ] ->
          [
            ( task_name e.Expand.edb,
              D.Task
                {
                  tname = task_name e.Expand.edb;
                  mode = D.With_commit;
                  target = Names.canon e.Expand.edb;
                  commands = Sql_pp.stmt_to_string stmt;
                } );
          ]
      | stmts ->
          List.mapi
            (fun k stmt ->
              let tname = Printf.sprintf "%s_%d" (task_name e.Expand.edb) (k + 1) in
              ( tname,
                D.Task
                  {
                    tname;
                    mode = D.With_commit;
                    target = Names.canon e.Expand.edb;
                    commands = Sql_pp.stmt_to_string stmt;
                  } ))
            stmts
    in
    let per_elem = List.map (fun (e, _, _) -> (e, tasks_of e)) infos in
    let bindings =
      List.concat_map
        (fun ((e : Expand.elementary), ts) ->
          List.map
            (fun (tname, _) ->
              {
                task = tname;
                bdb = e.Expand.edb;
                vital = e.Expand.use.Ast.vital;
                retrieval = true;
              })
            ts)
        per_elem
    in
    let all_tasks = List.concat_map (fun (_, ts) -> List.map snd ts) per_elem in
    let vital_conds =
      List.concat_map
        (fun ((e : Expand.elementary), ts) ->
          if e.Expand.use.Ast.vital = Ast.Vital then
            List.map (fun (tname, _) -> D.Status_is (tname, D.C)) ts
          else [])
        per_elem
    in
    let tail =
      match conjoin_conds vital_conds with
      | None -> [ D.Set_status 0 ]
      | Some cond -> [ D.If (cond, [ D.Set_status 0 ], [ D.Set_status 1 ]) ]
    in
    let close = [ D.Close (List.map (fun (e, _, _) -> Names.canon e.Expand.edb) infos) ] in
    {
      program = opens @ [ D.Parallel all_tasks ] @ tail @ close;
      task_bindings = bindings;
      coordinator = None;
    }
  end
  else begin
    (* updates: §3.2.1 vital-set semantics *)
    let vital_count =
      List.length
        (List.filter (fun (e, _, _) -> (e : Expand.elementary).Expand.use.Ast.vital = Ast.Vital) infos)
    in
    let classify ((e : Expand.elementary), entry, comp) =
      let vital = e.Expand.use.Ast.vital in
      let two_pc = Ad.supports_2pc entry in
      (match vital, two_pc, comp with
      | Ast.Vital, false, None when vital_count > 1 ->
          err
            "VITAL database %s does not support 2PC: provide a COMP clause \
             (the query is refused, cf. paper §3.3)"
            e.Expand.edb
      | _ -> ());
      let mode = if vital = Ast.Vital && two_pc then D.No_commit else D.With_commit in
      (e, entry, comp, mode)
    in
    let classified = List.map classify infos in
    let tasks =
      List.map
        (fun ((e : Expand.elementary), _, _, mode) ->
          D.Task
            {
              tname = task_name e.Expand.edb;
              mode;
              target = Names.canon e.Expand.edb;
              commands = script_of e.Expand.stmts;
            })
        classified
    in
    let bindings =
      List.map
        (fun ((e : Expand.elementary), _, _, _) ->
          {
            task = task_name e.Expand.edb;
            bdb = e.Expand.edb;
            vital = e.Expand.use.Ast.vital;
            retrieval = false;
          })
        classified
    in
    let vital_2pc_info =
      List.filter_map
        (fun ((e : Expand.elementary), _, comp, mode) ->
          if e.Expand.use.Ast.vital = Ast.Vital && mode = D.No_commit then
            Some (e.Expand.edb, comp)
          else None)
        classified
    in
    let vital_2pc = List.map (fun (db, _) -> task_name db) vital_2pc_info in
    let vital_auto =
      List.filter_map
        (fun ((e : Expand.elementary), _, comp, mode) ->
          if e.Expand.use.Ast.vital = Ast.Vital && mode = D.With_commit then
            Some (e.Expand.edb, comp)
          else None)
        classified
    in
    let conds =
      List.map (fun t -> D.Status_is (t, D.P)) vital_2pc
      @ List.map (fun (db, _) -> D.Status_is (task_name db, D.C)) vital_auto
    in
    let tail =
      match conjoin_conds conds with
      | None -> [ D.Set_status 0 ]
      | Some cond ->
          let then_branch =
            (if vital_2pc = [] then [] else [ D.Commit_tasks vital_2pc ])
            @ [ D.Set_status 0 ]
          in
          let guarded_comps_of info =
            List.filter_map
              (fun (db, comp) ->
                Option.map
                  (fun (c : Ast.comp_clause) ->
                    guarded_comp ~db ~task:(task_name db) c.Ast.comp_stmt)
                  comp)
              info
          in
          let else_branch =
            (if vital_2pc = [] then [] else [ D.Abort_tasks vital_2pc ])
            (* 2PC members normally abort cleanly, but a site failing in the
               in-doubt window can leave one committed while the group
               aborts; registering the COMP here lets the engine's recovery
               pass undo it (the C guard keeps it inert otherwise) *)
            @ guarded_comps_of vital_2pc_info
            @ guarded_comps_of vital_auto
            @ [ D.Set_status 1 ]
          in
          [ D.If (cond, then_branch, else_branch) ]
    in
    let close = [ D.Close (List.map (fun (e, _, _, _) -> Names.canon (e : Expand.elementary).Expand.edb) classified) ] in
    {
      program = opens @ [ D.Parallel tasks ] @ tail @ close;
      task_bindings = bindings;
      coordinator = None;
    }
  end

(* ---- decomposed global SELECT ---------------------------------------------- *)

let plan_global ad (_q : Ast.query) (dp : Decompose.plan) =
  let coord = dp.Decompose.coordinator in
  let dbs =
    coord :: List.map (fun s -> s.Decompose.sdb) dp.Decompose.shipped
  in
  let opens = List.map (open_stmt ad) dbs in
  List.iter (fun db -> ignore (ad_entry ad db)) dbs;
  let moves =
    List.map
      (fun (s : Decompose.shipped) ->
        D.Move
          {
            mname = move_name s.Decompose.sdb;
            src = Names.canon s.Decompose.sdb;
            dst = Names.canon coord;
            dest_table = s.Decompose.tmp_table;
            query = Sql_pp.select_to_string s.Decompose.subquery;
            reduce =
              Option.map
                (fun (sj : Decompose.semijoin) ->
                  ( sj.Decompose.sj_col,
                    Sql_pp.select_to_string sj.Decompose.sj_probe ))
                s.Decompose.reduce;
          })
      dp.Decompose.shipped
  in
  let q_task =
    D.Task
      {
        tname = "t_q";
        mode = D.With_commit;
        target = Names.canon coord;
        commands = Sql_pp.select_to_string dp.Decompose.modified;
      }
  in
  let cleanup =
    match dp.Decompose.cleanup with
    | [] -> []
    | tmps ->
        [
          D.Task
            {
              tname = "t_clean";
              mode = D.With_commit;
              target = Names.canon coord;
              commands =
                String.concat ";\n"
                  (List.map (Printf.sprintf "DROP TABLE %s") tmps);
            };
        ]
  in
  let final =
    [ D.If (D.Status_is ("t_q", D.C), [ D.Set_status 0 ], [ D.Set_status 1 ]) ]
  in
  let body =
    match moves with
    | [] -> (q_task :: cleanup) @ final
    | _ ->
        let all_moved =
          conjoin_conds
            (List.map
               (fun (s : Decompose.shipped) ->
                 D.Status_is (move_name s.Decompose.sdb, D.C))
               dp.Decompose.shipped)
          |> Option.get
        in
        [
          D.Parallel moves;
          D.If (all_moved, (q_task :: cleanup) @ final, [ D.Set_status 1 ]);
        ]
  in
  let close = [ D.Close (List.map Names.canon dbs) ] in
  {
    program = opens @ body @ close;
    task_bindings =
      [ { task = "t_q"; bdb = coord; vital = Ast.Non_vital; retrieval = true } ];
    coordinator = Some coord;
  }

(* ---- data transfer (INSERT ... SELECT across databases) --------------------- *)

let plan_transfer ad ~tdb ~tuse ~ttable ~tcolumns (dp : Decompose.plan) =
  let coord = dp.Decompose.coordinator in
  let source_dbs =
    coord :: List.map (fun s -> s.Decompose.sdb) dp.Decompose.shipped
  in
  let dbs =
    if List.exists (Names.equal tdb) source_dbs then source_dbs
    else source_dbs @ [ tdb ]
  in
  List.iter (fun db -> ignore (ad_entry ad db)) dbs;
  let opens = List.map (open_stmt ad) dbs in
  let cols_clause =
    match tcolumns with
    | None -> ""
    | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
  in
  let insert_task commands =
    D.Task
      { tname = "t_ins"; mode = D.With_commit; target = Names.canon tdb; commands }
  in
  let local_only =
    dp.Decompose.shipped = [] && Names.equal coord tdb
  in
  let body =
    if local_only then
      (* source lives entirely in the target database: plain local insert *)
      [
        insert_task
          (Printf.sprintf "INSERT INTO %s%s %s" ttable cols_clause
             (Sql_pp.select_to_string dp.Decompose.modified));
      ]
    else begin
      let pre_moves =
        List.map
          (fun (s : Decompose.shipped) ->
            D.Move
              {
                mname = move_name s.Decompose.sdb;
                src = Names.canon s.Decompose.sdb;
                dst = Names.canon coord;
                dest_table = s.Decompose.tmp_table;
                query = Sql_pp.select_to_string s.Decompose.subquery;
                reduce =
                  Option.map
                    (fun (sj : Decompose.semijoin) ->
                      ( sj.Decompose.sj_col,
                        Sql_pp.select_to_string sj.Decompose.sj_probe ))
                    s.Decompose.reduce;
              })
          dp.Decompose.shipped
      in
      let final_move =
        D.Move
          {
            mname = "m_xfer";
            src = Names.canon coord;
            dst = Names.canon tdb;
            dest_table = "msql_xfer";
            query = Sql_pp.select_to_string dp.Decompose.modified;
            reduce = None;
          }
      in
      let cleanup_coord =
        match dp.Decompose.cleanup with
        | [] -> []
        | tmps ->
            [
              D.Task
                {
                  tname = "t_clean";
                  mode = D.With_commit;
                  target = Names.canon coord;
                  commands =
                    String.concat ";\n"
                      (List.map (Printf.sprintf "DROP TABLE %s") tmps);
                };
            ]
      in
      let cleanup_target =
        D.Task
          {
            tname = "t_clean_xfer";
            mode = D.With_commit;
            target = Names.canon tdb;
            commands = "DROP TABLE msql_xfer";
          }
      in
      let insert =
        insert_task
          (Printf.sprintf "INSERT INTO %s%s SELECT * FROM msql_xfer" ttable
             cols_clause)
      in
      let after_moves =
        (final_move :: insert :: cleanup_coord) @ [ cleanup_target ]
      in
      match pre_moves with
      | [] -> after_moves
      | _ ->
          let all_moved =
            conjoin_conds
              (List.map
                 (fun (s : Decompose.shipped) ->
                   D.Status_is (move_name s.Decompose.sdb, D.C))
                 dp.Decompose.shipped)
            |> Option.get
          in
          [ D.Parallel pre_moves; D.If (all_moved, after_moves, []) ]
    end
  in
  let final =
    [ D.If (D.Status_is ("t_ins", D.C), [ D.Set_status 0 ], [ D.Set_status 1 ]) ]
  in
  let close = [ D.Close (List.map Names.canon dbs) ] in
  {
    program = opens @ body @ final @ close;
    task_bindings =
      [
        {
          task = "t_ins";
          bdb = tdb;
          vital = tuse.Ast.vital;
          retrieval = false;
        };
      ];
    coordinator = Some coord;
  }

(* ---- multitransactions ------------------------------------------------------ *)

let plan_mtx ad (mtx : Ast.multitransaction)
    (expanded : (Ast.query * Expand.elementary list) list) =
  (* collect participants; a database may appear in at most one query *)
  let participants =
    List.concat_map
      (fun ((q : Ast.query), elems) ->
        List.map
          (fun (e : Expand.elementary) ->
            (e, ad_entry ad e.Expand.edb, comp_for q e.Expand.use))
          elems)
      expanded
  in
  let () =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun ((e : Expand.elementary), _, _) ->
        let k = Names.canon e.Expand.edb in
        if Hashtbl.mem seen k then
          err "database %s participates in several queries of the \
               multitransaction; alias it apart" e.Expand.edb;
        Hashtbl.add seen k ())
      participants
  in
  let find_participant name =
    List.find_opt
      (fun ((e : Expand.elementary), _, _) ->
        Names.equal (Ast.use_db_key e.Expand.use) name
        || Names.equal e.Expand.edb name)
      participants
  in
  let opens = List.map (fun (e, _, _) -> open_stmt ad (e : Expand.elementary).Expand.edb) participants in
  (* one parallel block of tasks per query, in order *)
  let blocks =
    List.map
      (fun ((_ : Ast.query), elems) ->
        D.Parallel
          (List.map
             (fun (e : Expand.elementary) ->
               let entry = ad_entry ad e.Expand.edb in
               let mode =
                 if Ad.supports_2pc entry then D.No_commit else D.With_commit
               in
               D.Task
                 {
                   tname = task_name e.Expand.edb;
                   mode;
                   target = Names.canon e.Expand.edb;
                   commands = script_of e.Expand.stmts;
                 })
             elems))
      expanded
  in
  let bindings =
    List.map
      (fun ((e : Expand.elementary), _, _) ->
        {
          task = task_name e.Expand.edb;
          bdb = e.Expand.edb;
          vital = e.Expand.use.Ast.vital;
          retrieval = false;
        })
      participants
  in
  (* acceptable states resolved to participants *)
  let states =
    List.map
      (fun state ->
        List.map
          (fun name ->
            match find_participant name with
            | Some p -> p
            | None ->
                err "acceptable state names %s, which no subquery targets" name)
          state)
      mtx.Ast.acceptable
  in
  let in_state state (e : Expand.elementary) =
    List.exists
      (fun ((e' : Expand.elementary), _, _) ->
        Names.equal e'.Expand.edb e.Expand.edb)
      state
  in
  let state_condition state =
    let conds =
      List.map
        (fun ((e : Expand.elementary), entry, comp) ->
          let t = task_name e.Expand.edb in
          let excludable =
            (* rollbackable, already aborted, or never ran *)
            D.Or
              ( D.Status_is (t, D.P),
                D.Or (D.Status_is (t, D.A), D.Status_is (t, D.N)) )
          in
          if in_state state e then
            D.Or (D.Status_is (t, D.P), D.Status_is (t, D.C))
          else if Ad.supports_2pc entry then excludable
          else
            match comp with
            | Some _ -> D.Or (D.Status_is (t, D.C), excludable)
            | None -> excludable)
        participants
    in
    Option.get (conjoin_conds conds)
  in
  let state_actions state =
    List.concat_map
      (fun ((e : Expand.elementary), entry, comp) ->
        let t = task_name e.Expand.edb in
        if in_state state e then
          if Ad.supports_2pc entry then [ D.Commit_tasks [ t ] ] else []
        else if Ad.supports_2pc entry then [ D.Abort_tasks [ t ] ]
        else
          match comp with
          | Some (c : Ast.comp_clause) ->
              [ guarded_comp ~db:e.Expand.edb ~task:t c.Ast.comp_stmt ]
          | None -> [])
      participants
    @ [ D.Set_status 0 ]
  in
  let fail_actions =
    List.concat_map
      (fun ((e : Expand.elementary), entry, comp) ->
        let t = task_name e.Expand.edb in
        if Ad.supports_2pc entry then [ D.Abort_tasks [ t ] ]
        else
          match comp with
          | Some (c : Ast.comp_clause) ->
              [ guarded_comp ~db:e.Expand.edb ~task:t c.Ast.comp_stmt ]
          | None -> [])
      participants
    @ [ D.Set_status 1 ]
  in
  let rec cascade = function
    | [] -> fail_actions
    | state :: rest ->
        [ D.If (state_condition state, state_actions state, cascade rest) ]
  in
  let close =
    [ D.Close (List.map (fun (e, _, _) -> Names.canon (e : Expand.elementary).Expand.edb) participants) ]
  in
  {
    program = opens @ blocks @ cascade states @ close;
    task_bindings = bindings;
    coordinator = None;
  }
