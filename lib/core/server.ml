(* Concurrent multi-session MSQL server.

   One server owns a federation (a world + directory) and multiplexes N
   member sessions over it. The member sessions share everything the
   single-session design kept private: the dictionary pair (so plan and
   predicate cache keys are comparable across sessions), one capped LAM
   connection pool, and one communal compiled-plan + shipped-result
   cache block. The scheduler is a synchronous wave loop: each round
   admits at most one statement per session in connect order, then
   partitions the wave into batches of mutually-safe statements and
   executes each batch. With domains <= 1 a batch is interleaved at
   DOL-statement granularity on the calling domain (deterministic,
   matches Interleave's round-robin); the only interleaving hazard is
   the shipped MOVE temp tables (msql_tmp_<k>, named per plan, not per
   session), so statements shipping into a common site never share a
   batch. With domains > 1 a batch runs on a Taskpool under
   virtual-clock frames; there the LDBMS itself is not safe for
   same-site concurrency, so batches demand fully disjoint site
   footprints.

   A statement that loses a race for a capped connection fails with the
   pool's busy marker; the scheduler detects it on the session's typed
   trace, verifies the failure left no site effects behind (retrieval
   error, fully-aborted update, fully-undone multitransaction) and
   requeues the statement at the front of its session's queue, bounded
   by [max_requeues]. *)

type config = {
  max_sessions : int;
  max_queue : int;
  max_requeues : int;
  pool_cap : int option;
  domains : int;
}

let env_domains () =
  match Sys.getenv_opt "MSQL_TEST_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 1 -> n
      | _ -> 1)
  | None -> 1

let default_config () =
  {
    max_sessions = 64;
    max_queue = 16;
    max_requeues = 8;
    pool_cap = None;
    domains = env_domains ();
  }

type error = Overloaded of string | Unknown_session of int

let error_message = function
  | Overloaded m -> Printf.sprintf "overloaded: %s" m
  | Unknown_session sid -> Printf.sprintf "unknown session %d" sid

type completion = {
  c_sid : int;
  c_seq : int;
  c_sql : string;
  c_result : (Msession.result, string) result;
  c_requeues : int;
}

type stats = {
  mutable connects : int;
  mutable rejected : int;
  mutable submitted : int;
  mutable shed : int;
  mutable completed : int;
  mutable failed : int;
  mutable requeues : int;
  mutable rounds : int;
  mutable parallel_batches : int;
}

type pending = { q_seq : int; q_sql : string; mutable q_requeues : int }

type entry = {
  e_sid : int;
  e_session : Msession.t;
  e_queue : pending Queue.t;
  mutable e_next_seq : int;
  mutable e_busy : bool;
      (* a pool-cap conflict was traced during the statement in flight *)
}

type t = {
  world : Netsim.World.t;
  directory : Narada.Directory.t;
  ad : Ad.t;
  gdd : Gdd.t;
  pool : Narada.Pool.t;
  caches : Msession.shared_caches;
  config : config;
  sessions : (int, entry) Hashtbl.t;
  mutable ring : int list;  (* live session ids in connect order *)
  mutable next_sid : int;
  sstats : stats;
  retired_metrics : Metrics.t;  (* folded in at disconnect *)
  mutable retired_cache : Metrics.cache_stats;
  mutable on_trace : (Narada.Trace.event -> unit) option;
}

let make ~config ~world ~directory ~ad ~gdd =
  let pool = Narada.Pool.create world in
  Narada.Pool.set_cap pool config.pool_cap;
  {
    world;
    directory;
    ad;
    gdd;
    pool;
    caches = Msession.shared_caches ();
    config;
    sessions = Hashtbl.create 16;
    ring = [];
    next_sid = 0;
    sstats =
      {
        connects = 0;
        rejected = 0;
        submitted = 0;
        shed = 0;
        completed = 0;
        failed = 0;
        requeues = 0;
        rounds = 0;
        parallel_batches = 0;
      };
    retired_metrics = Metrics.create ();
    retired_cache = Metrics.zero_cache_stats;
    on_trace = None;
  }

let create ?config ~world ~directory ~services () =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  let ad = Ad.create () and gdd = Gdd.create () in
  let admin = Msession.create ~world ~directory ~ad ~gdd () in
  let rec setup = function
    | [] -> Ok ()
    | svc :: rest -> (
        match Msession.incorporate_auto admin ~service:svc with
        | Error m -> Error (Printf.sprintf "incorporate %s: %s" svc m)
        | Ok () -> (
            match Msession.import_all admin ~service:svc with
            | Error m -> Error (Printf.sprintf "import %s: %s" svc m)
            | Ok () -> setup rest))
  in
  match setup services with
  | Error _ as e -> e
  | Ok () -> Ok (make ~config ~world ~directory ~ad ~gdd)

let of_fixtures ?config fx =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  (* the fixture session already INCORPORATEd and IMPORTed everything;
     sharing its dictionaries shares that work with every member *)
  make ~config ~world:fx.Fixtures.world ~directory:fx.Fixtures.directory
    ~ad:(Msession.ad fx.Fixtures.session)
    ~gdd:(Msession.gdd fx.Fixtures.session)

let world t = t.world
let pool t = t.pool
let stats t = t.sstats
let set_trace t f = t.on_trace <- f
let live_sessions t = Hashtbl.length t.sessions
let session t sid =
  Option.map (fun e -> e.e_session) (Hashtbl.find_opt t.sessions sid)

let connect t =
  if Hashtbl.length t.sessions >= t.config.max_sessions then begin
    t.sstats.rejected <- t.sstats.rejected + 1;
    Error
      (Overloaded
         (Printf.sprintf "session table full (%d live sessions)"
            (Hashtbl.length t.sessions)))
  end
  else begin
    t.next_sid <- t.next_sid + 1;
    let sid = t.next_sid in
    let s =
      Msession.create ~world:t.world ~directory:t.directory ~ad:t.ad
        ~gdd:t.gdd ()
    in
    Msession.set_shared_caches s t.caches;
    Msession.set_shared_pool s t.pool;
    Msession.set_trace_tag s (Some (Printf.sprintf "s%d" sid));
    (* member statements may themselves be scheduled onto the shared
       Taskpool (domains > 1); a job must never submit to its own pool,
       so member engines keep PARBEGIN on their calling domain *)
    Msession.set_domains s 1;
    let e =
      { e_sid = sid; e_session = s; e_queue = Queue.create ();
        e_next_seq = 0; e_busy = false }
    in
    Msession.set_typed_trace s
      (Some
         (fun ev ->
           (match ev.Narada.Trace.kind with
           | Narada.Trace.Open_failed { reason; _ }
             when Narada.Pool.is_busy_message reason ->
               e.e_busy <- true
           | _ -> ());
           match t.on_trace with Some f -> f ev | None -> ()));
    Hashtbl.replace t.sessions sid e;
    t.ring <- t.ring @ [ sid ];
    t.sstats.connects <- t.sstats.connects + 1;
    Ok sid
  end

let strip_pool cs =
  {
    cs with
    Metrics.pool_hits = 0;
    pool_misses = 0;
    pool_discarded = 0;
    pool_conflicts = 0;
  }

let disconnect t sid =
  match Hashtbl.find_opt t.sessions sid with
  | None -> Error (Unknown_session sid)
  | Some e ->
      Metrics.add t.retired_metrics (Msession.metrics e.e_session);
      t.retired_cache <-
        Metrics.add_cache_stats t.retired_cache
          (strip_pool (Msession.cache_stats e.e_session));
      Hashtbl.remove t.sessions sid;
      t.ring <- List.filter (fun s -> s <> sid) t.ring;
      Ok ()

let submit t sid sql =
  match Hashtbl.find_opt t.sessions sid with
  | None -> Error (Unknown_session sid)
  | Some e ->
      if Queue.length e.e_queue >= t.config.max_queue then begin
        t.sstats.shed <- t.sstats.shed + 1;
        Error
          (Overloaded
             (Printf.sprintf "session %d queue full (%d statements deep)"
                sid (Queue.length e.e_queue)))
      end
      else begin
        e.e_next_seq <- e.e_next_seq + 1;
        let seq = e.e_next_seq in
        Queue.add { q_seq = seq; q_sql = sql; q_requeues = 0 } e.e_queue;
        t.sstats.submitted <- t.sstats.submitted + 1;
        Ok seq
      end

let queued t =
  Hashtbl.fold (fun _ e acc -> acc + Queue.length e.e_queue) t.sessions 0

(* ---- the wave scheduler ---- *)

type wave_item = {
  w_entry : entry;
  w_pending : pending;
  w_prep : Msession.prepared;
  w_services : string list;
  w_move_dsts : string list;
  mutable w_result : (Msession.result, string) result option;
  mutable w_finish : float;
}

let push_front q x =
  let tmp = Queue.create () in
  Queue.add x tmp;
  Queue.transfer q tmp;
  Queue.transfer tmp q

(* a busy-conflict statement is only worth replaying when it provably
   left no effects at the sites behind *)
let retriable = function
  | Error _ -> true  (* planning/retrieval error: nothing committed *)
  | Ok (Msession.Multitable _) ->
      (* retrieval has no site effects — and a busy OPEN means a branch
         of the answer silently went missing, so the "success" is a hole *)
      true
  | Ok (Msession.Update_report { outcome = Msession.Aborted; _ }) -> true
  | Ok (Msession.Mtx_report { chosen = None; incorrect = false; _ }) -> true
  | Ok _ -> false

let run_to_end prep =
  try
    while Msession.step prep do () done;
    Msession.finish prep
  with exn -> Error (Printexc.to_string exn)

(* deterministic round-robin at DOL-statement granularity, epilogues in
   wave order — exactly Interleave.Round_robin over the wave *)
let run_serial wave =
  let slots = List.map (fun it -> (it, ref true)) wave in
  let rec go () =
    let stepped =
      List.fold_left
        (fun acc (it, alive) ->
          if !alive then
            if Msession.step it.w_prep then true
            else begin
              alive := false;
              acc
            end
          else acc)
        false slots
    in
    if stepped then go ()
  in
  go ();
  List.iter
    (fun (it, _) ->
      it.w_result <-
        Some (try Msession.finish it.w_prep
              with exn -> Error (Printexc.to_string exn)))
    slots

let disjoint a b = List.for_all (fun s -> not (List.mem s b)) a

(* greedy first-fit partition into batches of statements whose [key]
   footprints are pairwise disjoint, preserving wave order within and
   across batches *)
let partition_by key wave =
  let batches =
    List.fold_left
      (fun batches it ->
        let rec place = function
          | [] -> [ (ref [ it ], ref (key it)) ]
          | (items, svcs) :: rest ->
              if disjoint (key it) !svcs then begin
                items := it :: !items;
                svcs := key it @ !svcs;
                (items, svcs) :: rest
              end
              else (items, svcs) :: place rest
        in
        place batches)
      [] wave
  in
  List.map (fun (items, _) -> List.rev !items) batches

(* parallel batches demand fully disjoint site footprints: the LDBMS is
   not safe for same-site concurrency on separate domains *)
let partition_batches wave = partition_by (fun it -> it.w_services) wave

(* serial interleaving only conflicts through the shipped MOVE temp
   tables (msql_tmp_<k>, named per plan, not per session): statements
   shipping into a common site would collide on the temp name, so they
   never share an interleaved group. Everything else — including two
   single-site statements racing for a capped connection — interleaves
   freely *)
let partition_serial wave = partition_by (fun it -> it.w_move_dsts) wave

let run_batch t batch =
  match batch with
  | [ it ] -> it.w_result <- Some (run_to_end it.w_prep)
  | items ->
      t.sstats.parallel_batches <- t.sstats.parallel_batches + 1;
      let tpool = Sqlcore.Taskpool.shared ~domains:t.config.domains in
      let start_ms = Netsim.World.now_ms t.world in
      let jobs =
        List.map
          (fun it () ->
            let r, fin =
              Netsim.World.in_frame t.world ~start_ms (fun () ->
                  run_to_end it.w_prep)
            in
            it.w_result <- Some r;
            it.w_finish <- fin)
          items
      in
      Sqlcore.Taskpool.run_all tpool jobs;
      (* concurrent statements overlap in virtual time: the wave costs
         the slowest statement, not the sum *)
      let maxf =
        List.fold_left (fun m it -> Float.max m it.w_finish) start_ms items
      in
      Netsim.World.advance_ms t.world (maxf -. start_ms)

let step_round t =
  let completions = ref [] in
  let emit c = completions := c :: !completions in
  let wave =
    List.filter_map
      (fun sid ->
        match Hashtbl.find_opt t.sessions sid with
        | None -> None
        | Some e ->
            if Queue.is_empty e.e_queue then None
            else begin
              let p = Queue.pop e.e_queue in
              e.e_busy <- false;
              match Msession.prepare_text e.e_session p.q_sql with
              | Error m ->
                  t.sstats.failed <- t.sstats.failed + 1;
                  emit
                    {
                      c_sid = e.e_sid;
                      c_seq = p.q_seq;
                      c_sql = p.q_sql;
                      c_result = Error m;
                      c_requeues = p.q_requeues;
                    };
                  None
              | Ok prep ->
                  Some
                    {
                      w_entry = e;
                      w_pending = p;
                      w_prep = prep;
                      w_services = Msession.prepared_services prep;
                      w_move_dsts = Msession.prepared_move_dsts prep;
                      w_result = None;
                      w_finish = 0.;
                    }
            end)
      t.ring
  in
  if wave <> [] then begin
    t.sstats.rounds <- t.sstats.rounds + 1;
    if t.config.domains > 1 then
      List.iter (run_batch t) (partition_batches wave)
    else List.iter run_serial (partition_serial wave);
    List.iter
      (fun it ->
        let e = it.w_entry and p = it.w_pending in
        let r =
          match it.w_result with
          | Some r -> r
          | None -> Error "server: statement never ran"
        in
        let still_open = Hashtbl.mem t.sessions e.e_sid in
        if
          e.e_busy && retriable r
          && p.q_requeues < t.config.max_requeues
          && still_open
        then begin
          (* lost a race for a capped connection; the holder has released
             by now, so replay ahead of the session's later statements *)
          p.q_requeues <- p.q_requeues + 1;
          t.sstats.requeues <- t.sstats.requeues + 1;
          push_front e.e_queue p
        end
        else begin
          (match r with
          | Ok _ -> t.sstats.completed <- t.sstats.completed + 1
          | Error _ -> t.sstats.failed <- t.sstats.failed + 1);
          emit
            {
              c_sid = e.e_sid;
              c_seq = p.q_seq;
              c_sql = p.q_sql;
              c_result = r;
              c_requeues = p.q_requeues;
            }
        end)
      wave
  end;
  List.rev !completions

let drain t =
  let acc = ref [] in
  while queued t > 0 do
    acc := !acc @ step_round t
  done;
  !acc

(* ---- aggregate observability ---- *)

let cache_stats t =
  let per_session =
    Hashtbl.fold
      (fun _ e acc ->
        Metrics.add_cache_stats acc
          (strip_pool (Msession.cache_stats e.e_session)))
      t.sessions t.retired_cache
  in
  (* every member session reports the one shared pool, so its counters
     are folded in exactly once, at the server level *)
  let ps = Narada.Pool.stats t.pool in
  {
    per_session with
    Metrics.pool_hits = ps.Narada.Pool.hits;
    pool_misses = ps.Narada.Pool.misses;
    pool_discarded = ps.Narada.Pool.discarded;
    pool_conflicts = ps.Narada.Pool.conflicts;
  }

let metrics t =
  let agg = Metrics.create () in
  Metrics.add agg t.retired_metrics;
  Hashtbl.iter
    (fun _ e -> Metrics.add agg (Msession.metrics e.e_session))
    t.sessions;
  agg

let metrics_json t =
  Metrics.to_json (metrics t) ~world:t.world ~cache:(cache_stats t)

let stats_json t =
  let s = t.sstats in
  Printf.sprintf
    "{\"connects\": %d, \"rejected\": %d, \"submitted\": %d, \"shed\": %d, \
     \"completed\": %d, \"failed\": %d, \"requeues\": %d, \"rounds\": %d, \
     \"parallel_batches\": %d, \"live_sessions\": %d}"
    s.connects s.rejected s.submitted s.shed s.completed s.failed s.requeues
    s.rounds s.parallel_batches (Hashtbl.length t.sessions)
