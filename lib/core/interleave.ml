(* Deterministic interleaving harness: several sessions' statements
   stepped against shared sites under a scripted or seeded schedule.
   Everything runs on the calling domain over one shared virtual-time
   world, so a given (participants, schedule) pair always produces the
   same interleaving — anomaly scenarios in the test suites are exact
   replays, never races. *)

type participant = {
  label : string;
  session : Msession.t;
  sql : string;
}

type schedule =
  | Round_robin
  | Script of string list
  | Seeded of int

type outcome = (string * (Msession.result, string) result) list

type slot = {
  s_label : string;
  s_prep : (Msession.prepared, string) result;
  mutable s_live : bool;  (* still has DOL statements to step *)
}

let canon = String.lowercase_ascii

(* step the slot once; [false] when it had nothing left *)
let step_slot s =
  match s.s_prep with
  | Error _ -> false
  | Ok prep ->
      if not s.s_live then false
      else begin
        let ran = Msession.step prep in
        if not ran then s.s_live <- false;
        ran
      end

let live slots = List.filter (fun s -> s.s_live) slots

let drain_round_robin slots =
  (* cycle in declaration order until every participant is exhausted *)
  let rec go () =
    let stepped =
      List.fold_left (fun acc s -> if step_slot s then true else acc) false slots
    in
    if stepped then go ()
  in
  go ()

let run_script slots script =
  List.iter
    (fun label ->
      match
        List.find_opt (fun s -> String.equal (canon s.s_label) (canon label)) slots
      with
      | None -> invalid_arg (Printf.sprintf "Interleave: unknown label %s" label)
      | Some s -> ignore (step_slot s))
    script

(* a tiny deterministic LCG; quality does not matter, stability does *)
let run_seeded slots seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let rec go () =
    match live slots with
    | [] -> ()
    | alive ->
        let s = List.nth alive (next (List.length alive)) in
        ignore (step_slot s);
        go ()
  in
  go ()

let run ~schedule participants =
  let slots =
    List.map
      (fun p ->
        let prep = Msession.prepare_text p.session p.sql in
        {
          s_label = p.label;
          s_prep = prep;
          s_live = (match prep with Ok _ -> true | Error _ -> false);
        })
      participants
  in
  (match schedule with
  | Round_robin -> drain_round_robin slots
  | Script script ->
      run_script slots script;
      (* whatever the script left unstepped completes round-robin, so a
         script only needs to pin the contended prefix *)
      drain_round_robin slots
  | Seeded seed -> run_seeded slots seed);
  (* epilogues in declaration order: in-doubt resolution, split
     settlement and connection release happen per participant, exactly as
     its own [run] would have done at the end *)
  List.map
    (fun s ->
      ( s.s_label,
        match s.s_prep with
        | Error m -> Error m
        | Ok prep -> Msession.finish prep ))
    slots

let result_of outcome label =
  match
    List.find_opt (fun (l, _) -> String.equal (canon l) (canon label)) outcome
  with
  | Some (_, r) -> r
  | None -> Error (Printf.sprintf "no participant labelled %s" label)
