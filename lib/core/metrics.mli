(** Session metrics registry.

    One mutable registry per {!Msession.t} aggregates three families of
    counters:

    - {e planning} — phases 1–4: statements run, plan shapes chosen,
      subqueries shipped, semijoin gate outcomes, EXPLAINs;
    - {e engine} — execution: runs, errors, virtual time, retries (total
      and per site), 2PC verdicts, in-doubt recoveries, vital splits, and
      MOVE traffic (rows/bytes, semijoin-reduced and cache-served moves),
      folded from the typed {!Narada.Trace} stream and the engine outcome;
    - {e caches} and {e network} — read at export time from the session's
      caches and the {!Netsim.World} per-site ledger.

    {!to_json} renders everything as one self-contained JSON document;
    [bench/main.ml] records it and CI asserts the per-site byte totals
    reproduce the world's global stats. *)

type cache_stats = {
  pool_hits : int;
  pool_misses : int;
  pool_discarded : int;
  pool_conflicts : int;
      (** checkouts refused because the service was at its connection cap
          (only a server's shared capped pool produces these) *)
  plan_hits : int;
  plan_misses : int;
  result_hits : int;
  result_misses : int;
}
(** Hit/miss counters of the session performance layer (connection pool,
    plan cache, shipped-result cache). Defined here so {!to_json} can
    embed them; re-exported by {!Msession.cache_stats}. *)

val zero_cache_stats : cache_stats

val add_cache_stats : cache_stats -> cache_stats -> cache_stats
(** Field-wise sum — the server's aggregate view over its sessions. *)

type t = {
  mutable statements : int;
  mutable plans_replicated : int;
  mutable plans_global : int;
  mutable plans_transfer : int;
  mutable plans_mtx : int;
  mutable subqueries_shipped : int;
  mutable semijoins_applied : int;
  mutable semijoins_declined : int;
  mutable explains : int;
  mutable engine_runs : int;
  mutable engine_errors : int;
  mutable engine_virtual_ms : float;
  mutable retries : int;
  mutable decisions_commit : int;
  mutable decisions_abort : int;
  mutable recovered : int;
  mutable in_doubt : int;
  mutable vital_splits : int;
  mutable snapshots : int;  (** MVCC snapshots acquired by local txns *)
  mutable ww_conflicts : int;
      (** first-committer-wins write-write races lost at the sites *)
  mutable conflict_retries : int;
      (** retries whose reason was a write-write conflict *)
  mutable conflict_aborts : int;
      (** tasks terminally aborted by a write-write conflict *)
  mutable moves : int;
  mutable moved_rows : int;
  mutable moved_bytes : int;
  mutable moves_reduced : int;
  mutable moves_cached : int;
  mutable par_joins : int;
      (** intra-operator parallel hash joins executed at the sites *)
  mutable par_filters : int;  (** chunked parallel WHERE scans *)
  mutable par_partitions : int;
      (** total partitions/chunks used by the above (data-dependent, so
          identical at every pool width) *)
  mutable dataflow_nodes : int;
      (** DAG nodes analyzed by the dataflow scheduler's planning pass *)
  mutable dataflow_edges : int;  (** dependency edges (transitively reduced) *)
  mutable dataflow_waves_planned : int;
      (** multi-statement waves the pass formed *)
  mutable dataflow_critical_len : int;
      (** longest dependency chain seen in any scheduled program *)
  mutable dataflow_waves : int;  (** multi-branch waves executed *)
  mutable dataflow_wave_branches : int;
  mutable dataflow_crit_ms : float;
      (** summed per-wave critical paths (max branch duration) — virtual,
          so identical at any domain width; never exceeds
          [dataflow_serial_ms], the summed branch durations *)
  mutable dataflow_serial_ms : float;
  site_retries : (string, int) Hashtbl.t;  (** site name -> retry count *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add dst src] folds every counter of [src] into [dst] (including the
    per-site retry ledger). The server's aggregate registry is the [add]
    of its member sessions' registries into a fresh one. *)

val observe : t -> Narada.Trace.event -> unit
(** Fold one typed trace event into the registry (retries, 2PC
    decisions, recoveries, MOVE traffic, MVCC snapshots and write-write
    conflicts). Events carrying no metric dimension are ignored. *)

val note_decomposition : t -> Decompose.plan -> unit
(** Count a decomposition's shipped subqueries and semijoin gate
    outcomes. *)

val note_dataflow : t -> Narada.Dol_graph.stats -> unit
(** Fold one program's dataflow-scheduling stats (DAG nodes/edges, waves
    formed, critical-path length) into the registry. *)

val to_json : t -> world:Netsim.World.t -> cache:cache_stats -> string
(** Render the registry plus live network/cache state as a JSON
    document. The [sites] array mirrors {!Netsim.World.per_site}
    (delivered traffic only), so summing its [sent_bytes] reproduces the
    global [network.bytes_moved] exactly. *)
