type vital = Vital | Non_vital

type use_item = { db : string; alias : string option; vital : vital }

type let_def = { var_path : string list; bindings : string list list }

type comp_clause = { comp_db : string; comp_stmt : Sqlfront.Ast.stmt }

type query = {
  scope : use_item list;
  use_current : bool;
  lets : let_def list;
  body : Sqlfront.Ast.stmt;
  comps : comp_clause list;
}

type acceptable_state = string list

type multitransaction = {
  queries : query list;
  acceptable : acceptable_state list;
}

type connectmode = Connect_many | Connect_one
type commitmode = Commits_automatically | Supports_prepare

type incorporate = {
  inc_service : string;
  inc_site : string option;
  inc_connectmode : connectmode;
  inc_commitmode : commitmode;
  inc_create_commit : bool;
  inc_insert_commit : bool;
  inc_drop_commit : bool;
}

type import_scope =
  | Import_all
  | Import_table of { itable : string; icolumns : string list option }

type import = {
  imp_database : string;
  imp_service : string;
  imp_scope : import_scope;
}

type trigger_def = {
  trg_name : string;
  trg_db : string;
  trg_condition : Sqlfront.Ast.select;
  trg_action : query;
}

type toplevel =
  | Query of query
  | Multitransaction of multitransaction
  | Incorporate of incorporate
  | Import of import
  | Create_trigger of trigger_def
  | Drop_trigger of string
  | Explain of toplevel
  | Explain_multiple of query
  | Create_multidatabase of { mdb_name : string; mdb_members : use_item list }
  | Drop_multidatabase of string

let use_db_key u = match u.alias with Some a -> a | None -> u.db

let find_in_scope scope name =
  List.find_opt
    (fun u ->
      Sqlcore.Names.equal (use_db_key u) name || Sqlcore.Names.equal u.db name)
    scope

let is_retrieval q =
  match q.body with
  | Sqlfront.Ast.Select _ -> true
  | Sqlfront.Ast.Insert _ | Sqlfront.Ast.Update _ | Sqlfront.Ast.Delete _
  | Sqlfront.Ast.Create_table _ | Sqlfront.Ast.Drop_table _
  | Sqlfront.Ast.Create_view _ | Sqlfront.Ast.Drop_view _
  | Sqlfront.Ast.Create_index _ | Sqlfront.Ast.Drop_index _
  | Sqlfront.Ast.Begin_txn | Sqlfront.Ast.Commit_txn | Sqlfront.Ast.Rollback_txn
  | Sqlfront.Ast.Prepare_txn ->
      false

let scope_db_names q = List.map (fun u -> u.db) q.scope
