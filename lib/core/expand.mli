(** Multiple-identifier substitution and disambiguation (§4.3, phases 1–2).

    A multiple query is turned into {e elementary} fully-qualified SQL
    statements, one set per pertinent database of the USE scope:

    - explicit semantic variables are replaced using the LET binding whose
      table exists in that database;
    - implicit semantic variables ([%] patterns) are matched against the
      GDD; a table pattern matching several tables of one database yields
      several elementary statements;
    - optional columns ([~col]) are dropped from the SELECT list where the
      database lacks them;
    - non-pertinent combinations (a referenced table or column absent from
      the database) are discarded — this is disambiguation.

    A body whose FROM clause uses database-qualified tables ([avis.cars])
    is a {e global} query: it is resolved against the scope as one
    statement joining tables of several databases, to be decomposed (see
    {!Decompose}) rather than replicated. *)

exception Error of string
(** Static error: ambiguous LET binding, ambiguous pattern in a predicate,
    [~] outside a SELECT list, unknown database in scope, pattern mixed
    with database-qualified tables, ... *)

type elementary = {
  edb : string;  (** database name *)
  use : Ast.use_item;  (** scope entry the statements belong to *)
  stmts : Sqlfront.Ast.stmt list;
      (** fully-qualified local statements; several when a table pattern
          matched several tables *)
}

type global_ref = {
  gdb : string;
  gtable : string;
  galias : string option;  (** alias as written in the query *)
  gschema : Sqlcore.Schema.t;
  gcard : int option;
      (** row count recorded in the GDD at IMPORT time, when known; feeds
          the decomposer's semijoin cost gate *)
}

type expansion =
  | Replicated of elementary list
      (** one entry per pertinent scope database, in scope order *)
  | Global of { gselect : Sqlfront.Ast.select; grefs : global_ref list }
      (** cross-database SELECT; [gselect]'s FROM names are rewritten to
          bare table names, positionally matching [grefs] *)
  | Transfer of {
      tdb : string;  (** target database *)
      tuse : Ast.use_item;
      ttable : string;  (** target table (exists in the target's GDD) *)
      tcolumns : string list option;
      gselect : Sqlfront.Ast.select;  (** source query, as in [Global] *)
      grefs : global_ref list;
    }
      (** data transfer between databases (§2):
          [INSERT INTO db1.t SELECT ... FROM db2.s ...] *)

val expand : Gdd.t -> Ast.query -> expansion

val substitution_for :
  Gdd.t -> db:string -> Ast.let_def list -> (string * string) list
(** The explicit-semantic-variable substitution a database gets from the
    LET definitions: variable name → concrete name (canonical case).
    Raises {!Error} when two bindings of one LET both match the
    database, or a matched binding references a missing column. *)
