(** Decomposition of a global (cross-database) SELECT (§4.3, phase 3).

    Following the paper, the query is transformed "into a set of the
    largest possible local subqueries, one for each involved LDBS", plus a
    modified global query Q' evaluated by one LDBS designated as the
    coordinator:

    - table references are grouped by database; the database holding the
      most references coordinates;
    - for every other database, a local subquery projects exactly the
      columns the global query uses from that database's tables and
      applies every conjunct of the WHERE clause that is local to it;
    - its result is shipped to the coordinator as a temporary table;
    - Q' joins the coordinator's own tables with the temporaries and
      applies the remaining (cross-database) conjuncts.

    Restrictions (documented deviations): a global query must not contain
    nested subqueries, and its table references must have unique labels. *)

exception Error of string

type semijoin = {
  sj_col : string;
      (** join column to restrict, qualified in the shipped subquery's
          scope (e.g. [p.pid]) *)
  sj_probe : Sqlfront.Ast.select;
      (** [SELECT DISTINCT key FROM coord_table WHERE local_conjuncts],
          to be evaluated at the coordinator just before the MOVE *)
}

type sj_gate =
  | Sj_applied of { key_bytes : int; est_bytes : int }
      (** the reduction passed the cost gate: shipping [key_bytes] of
          coordinator keys is expected to save half of [est_bytes] *)
  | Sj_declined of { key_bytes : int; est_bytes : int }
      (** an equi-join edge exists but the keys cost too much
          ([2 * key_bytes >= est_bytes]) *)
  | Sj_no_stats  (** a cardinality needed by the gate was never imported *)
  | Sj_no_edge
      (** no cross-database equi-join conjunct links this subquery to a
          coordinator table *)
  | Sj_off  (** semijoin reduction disabled for the session *)

type shipped = {
  sdb : string;  (** source database *)
  subquery : Sqlfront.Ast.select;  (** largest local subquery *)
  tmp_table : string;  (** temporary table name at the coordinator *)
  reduce : semijoin option;
      (** SDD-1-style semijoin reduction: restrict the shipped subquery to
          the coordinator's distinct join-key values before moving it.
          Present only when a cross-database equi-join conjunct links this
          subquery to a coordinator table and the GDD's cardinalities say
          the key set costs less than the bytes it is expected to save. *)
  sj_gate : sj_gate;
      (** why [reduce] is or is not present, with the gate's cost numbers
          — rendered by [EXPLAIN MULTIPLE] *)
}

type plan = {
  coordinator : string;  (** database that evaluates Q' *)
  shipped : shipped list;
  modified : Sqlfront.Ast.select;  (** Q', phrased against coordinator tables
                                       and the temporaries *)
  cleanup : string list;  (** temporary tables to drop afterwards *)
}

val decompose :
  semijoin:bool ->
  gselect:Sqlfront.Ast.select ->
  grefs:Expand.global_ref list ->
  plan
(** [semijoin] enables the cost-gated semijoin reduction of shipped
    subqueries; with it off every MOVE ships the full filtered
    subrelation. *)

val sj_gate_to_string : sj_gate -> string
(** One-line rendering of the gate decision with its cost arithmetic. *)

val pp_plan : Format.formatter -> plan -> unit
