(** Deterministic interleaving of several sessions' statements against
    shared sites.

    Each participant is one MSQL query or multitransaction executed by
    its own {!Msession.t} — the sessions must share a
    {!Netsim.World.t} and {!Narada.Directory.t} (see
    [Msession.create ~world ~directory]) so their DOL programs hit the
    same sites. The harness plans every participant with
    {!Msession.prepare_text}, then executes their DOL statements one at
    a time under the given schedule on the calling domain over the
    shared virtual clock: a given (participants, schedule) pair always
    produces the same interleaving, so the chaos and differential suites
    can script write-write anomaly scenarios (lost update, cross-site
    write skew) and assert the serial-equivalent outcome or the clean
    first-committer-wins abort — as exact replays, never races.

    Statement granularity: one step is one top-level DOL statement (a
    PARBEGIN block counts as one), so interleavings switch participants
    between OPENs, TASKs, COMMITs and CLOSEs — the windows where MVCC
    snapshots and first-committer-wins races are decided. *)

type participant = {
  label : string;  (** name used by {!Script} and in the outcome *)
  session : Msession.t;
  sql : string;  (** one MSQL query or multitransaction *)
}

type schedule =
  | Round_robin
      (** cycle through the participants in declaration order, one
          statement each, until all are exhausted *)
  | Script of string list
      (** step the named participants in exactly this order (labels are
          case-insensitive; a label may appear any number of times;
          stepping an exhausted participant is a no-op); anything left
          unstepped afterwards completes round-robin. Unknown labels
          raise [Invalid_argument]. *)
  | Seeded of int
      (** pseudo-random but fully deterministic: a seeded LCG picks the
          next live participant at every step *)

type outcome = (string * (Msession.result, string) result) list
(** One entry per participant, in declaration order. *)

val run : schedule:schedule -> participant list -> outcome
(** Plan every participant, interleave their DOL statements under the
    schedule, then run the engine epilogues (in-doubt resolution, split
    settlement, connection release) in declaration order and interpret
    each outcome exactly as {!Msession.exec} would. A participant whose
    planning fails contributes its error and takes no steps. *)

val result_of : outcome -> string -> (Msession.result, string) result
(** The entry for a label (case-insensitive). *)
