(** The Auxiliary Dictionary: what the multidatabase system knows about
    each incorporated service (§3.1).

    Entries are created by the INCORPORATE statement and record how to
    reach a service and which commitment protocol it offers. Plan
    generation reads this — not the live engine — so a mistaken
    INCORPORATE declaration produces exactly the confusion the paper warns
    about (tests cover this). *)

type entry = {
  service : string;
  site : string option;
  connectmode : Ast.connectmode;
  commitmode : Ast.commitmode;
  create_commit : bool;
  insert_commit : bool;
  drop_commit : bool;
}

type t

val create : unit -> t

val version : t -> int
(** Monotone epoch, bumped on every {!register}/{!incorporate} — part of
    the compiled-plan cache key, since AD entries decide task modes and
    sites. *)

val incorporate : t -> Ast.incorporate -> unit
(** Insert or replace the entry for the statement's service. *)

val register : t -> entry -> unit
(** Insert or replace an entry directly (programmatic incorporation). *)

val entry_of_incorporate : Ast.incorporate -> entry
val find : t -> string -> entry option
val services : t -> string list

val supports_2pc : entry -> bool
(** Per the paper's (inverted) naming: COMMITMODE NOCOMMIT means the
    service exposes a prepared-to-commit state. *)

val of_capabilities : service:string -> ?site:string -> Ldbms.Capabilities.t -> entry
(** Derive the truthful AD entry for an engine — used by
    auto-incorporation and by tests that need declarations matching
    reality. *)
