module Names = Sqlcore.Names

type t = {
  schemas : (string, (string, string * Sqlcore.Schema.t) Hashtbl.t) Hashtbl.t;
      (* db key -> (table key -> (display name, schema)) *)
  cards : (string * string, int) Hashtbl.t;
      (* (db key, table key) -> row count observed at IMPORT time *)
  id : int;
      (* process-unique dictionary identity: caches shared between
         dictionaries (the LDBMS compiled-predicate cache) fold it into
         their keys so equal version numbers from different dictionaries
         cannot collide *)
  mutable version : int;
      (* bumped on every mutation: the plan-cache invalidation epoch *)
}

let next_id =
  let c = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add c 1 + 1

let create () =
  {
    schemas = Hashtbl.create 16;
    cards = Hashtbl.create 16;
    id = next_id ();
    version = 0;
  }

let key = String.lowercase_ascii
let id t = t.id
let version t = t.version
let bump t = t.version <- t.version + 1

let db_tbl t db =
  match Hashtbl.find_opt t.schemas (key db) with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace t.schemas (key db) tbl;
      tbl

let import_table t ~db ~table schema =
  bump t;
  Hashtbl.replace (db_tbl t db) (key table) (table, schema)

let import_columns t ~db ~table schema columns =
  let picked =
    List.map
      (fun cname ->
        match
          List.find_opt
            (fun (c : Sqlcore.Schema.column) -> Names.equal c.Sqlcore.Schema.name cname)
            schema
        with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf "Gdd.import_columns: no column %s in %s" cname table))
      columns
  in
  import_table t ~db ~table picked

let import_database t ~db catalog =
  List.iter (fun (table, schema) -> import_table t ~db ~table schema) catalog

let set_cardinality t ~db ~table n =
  bump t;
  Hashtbl.replace t.cards (key db, key table) n

let cardinality t ~db ~table = Hashtbl.find_opt t.cards (key db, key table)

let forget_database t db =
  bump t;
  Hashtbl.remove t.schemas (key db);
  Hashtbl.iter
    (fun ((dbk, _) as k) _ -> if String.equal dbk (key db) then Hashtbl.remove t.cards k)
    (Hashtbl.copy t.cards)

let databases t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.schemas [] |> List.sort String.compare

let has_database t db = Hashtbl.mem t.schemas (key db)

let tables t ~db =
  match Hashtbl.find_opt t.schemas (key db) with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun _ (name, schema) acc -> (name, schema) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Names.compare a b)

let find_table t ~db name =
  match Hashtbl.find_opt t.schemas (key db) with
  | None -> None
  | Some tbl -> Option.map snd (Hashtbl.find_opt tbl (key name))

let match_tables t ~db ~pattern =
  tables t ~db
  |> List.filter (fun (name, _) -> Sqlcore.Like.identifier ~pattern name)

let match_columns schema ~pattern =
  List.filter_map
    (fun (c : Sqlcore.Schema.column) ->
      if Sqlcore.Like.identifier ~pattern c.Sqlcore.Schema.name then
        Some c.Sqlcore.Schema.name
      else None)
    schema
