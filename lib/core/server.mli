(** Concurrent multi-session MSQL server core.

    One server owns a federation (world + Narada directory) and
    multiplexes many {!Msession}s over it, sharing what the
    single-session design kept private:

    - the {!Ad}/{!Gdd} dictionary pair, so compiled-plan and
      compiled-predicate cache keys are comparable across sessions;
    - one LAM connection {!Narada.Pool} with an optional per-service
      connection cap — the member database's resource limit;
    - one communal compiled-plan + shipped-result cache block
      ({!Msession.shared_caches}).

    Scheduling is a synchronous {e wave} loop ({!step_round}): each
    round admits at most one statement per session in connect order —
    per-session fairness at statement granularity — then partitions the
    wave into batches of mutually-safe statements and executes each
    batch. With [domains <= 1] a batch is interleaved at DOL-statement
    granularity on the calling domain, deterministically (the
    {!Interleave} round-robin); the only interleaving hazard is the
    shipped MOVE temp tables (named per plan, not per session — see
    {!Msession.prepared_move_dsts}), so statements shipping into a
    common site never share a batch. With [domains > 1] a batch runs on
    a {!Sqlcore.Taskpool} under virtual-clock frames — concurrent
    statements overlap in virtual time (the batch costs its slowest
    statement) — and since the LDBMS is not safe for same-site
    concurrency, parallel batches demand fully disjoint site
    footprints.

    A statement that loses a race for a capped connection fails with the
    pool's busy marker ({!Narada.Pool.is_busy_message}); the scheduler
    observes it on the session's typed trace and — provided the
    statement left no site effects behind (any retrieval, a fully
    aborted update, a fully undone multitransaction) — requeues it at
    the front of its session's queue, at most [max_requeues] times. *)

type config = {
  max_sessions : int;  (** admission: connect beyond this is refused *)
  max_queue : int;  (** per-session queue depth: submit beyond is shed *)
  max_requeues : int;  (** busy-conflict replays per statement *)
  pool_cap : int option;
      (** per-service connection cap on the shared pool ({!Narada.Pool.set_cap}) *)
  domains : int;  (** wave execution width; [<= 1] is serial *)
}

val default_config : unit -> config
(** 64 sessions, queue depth 16, 8 requeues, no cap; [domains] from the
    [MSQL_TEST_DOMAINS] environment variable (default 1). *)

(** Typed overload/addressing errors — the admission-control surface. *)
type error =
  | Overloaded of string
      (** session table full (connect) or queue full (submit) — the
          caller should back off and retry later *)
  | Unknown_session of int

val error_message : error -> string

type completion = {
  c_sid : int;
  c_seq : int;  (** per-session statement sequence from {!submit} *)
  c_sql : string;
  c_result : (Msession.result, string) result;
  c_requeues : int;  (** busy-conflict replays this statement took *)
}

type stats = {
  mutable connects : int;
  mutable rejected : int;  (** connects refused at the session cap *)
  mutable submitted : int;
  mutable shed : int;  (** submits refused at the queue cap *)
  mutable completed : int;
  mutable failed : int;
  mutable requeues : int;
  mutable rounds : int;
  mutable parallel_batches : int;  (** batches run on the Taskpool *)
}

type t

val create :
  ?config:config ->
  world:Netsim.World.t ->
  directory:Narada.Directory.t ->
  services:string list ->
  unit ->
  (t, string) result
(** A server over an existing federation: builds a fresh dictionary
    pair, INCORPORATEs and IMPORTs every listed service into it, then
    shares it with every member session. *)

val of_fixtures : ?config:config -> Fixtures.t -> t
(** A server over a {!Fixtures} federation, sharing the fixture
    session's already-populated dictionaries. *)

val connect : t -> (int, error) result
(** Admit a session: a fresh {!Msession} sharing the server's world,
    dictionaries, pool and caches, trace-tagged ["s<id>"]. Fails
    [Overloaded] when the session table is full. *)

val disconnect : t -> int -> (unit, error) result
(** Retire a session. Its metrics are folded into the server aggregate;
    statements still queued are dropped. *)

val submit : t -> int -> string -> (int, error) result
(** Enqueue one MSQL statement; returns its per-session sequence
    number. Fails [Overloaded] when the session's queue is at
    [max_queue] — queue-depth shedding. *)

val step_round : t -> completion list
(** Run one scheduler round: up to one statement per session, in
    connect order. Returns the completions the round produced (requeued
    statements produce none yet), in wave order. Empty when nothing was
    queued. *)

val drain : t -> completion list
(** {!step_round} until every queue is empty. Terminates because
    requeues are bounded. *)

val queued : t -> int
(** Statements currently queued across all sessions. *)

val live_sessions : t -> int

val session : t -> int -> Msession.t option
(** The member session behind an id (for assertions in tests). *)

val world : t -> Netsim.World.t
val pool : t -> Narada.Pool.t
val stats : t -> stats

val set_trace : t -> (Narada.Trace.event -> unit) option -> unit
(** Observe the merged typed trace stream of every member session; each
    event's [tag] carries the originating session ("s<id>"). *)

val cache_stats : t -> Metrics.cache_stats
(** Aggregate cache counters: plan/result hits summed over member
    sessions (live and retired), pool counters read once from the
    shared pool. *)

val metrics : t -> Metrics.t
(** A fresh registry folding every member session's counters (live and
    retired). *)

val metrics_json : t -> string
val stats_json : t -> string
