(** Abstract syntax of extended MSQL.

    A {e multiple query} carries its scope (USE, with VITAL designators and
    aliases, §3.2.1), semantic-variable definitions (LET ... BE, §2), a
    body that is ordinary SQL except that identifiers may be {e multiple}
    (contain the [%] wildcard), {e optional} (prefixed with [~]) or
    {e semantic variables}, and optional compensating actions (COMP,
    §3.3). Multiple identifiers are preserved verbatim inside the embedded
    {!Sqlfront.Ast} body — expansion resolves them per database. *)

type vital = Vital | Non_vital

type use_item = {
  db : string;  (** database name as known to the GDD *)
  alias : string option;
  vital : vital;
}

(** [LET v1.v2...vn BE b11.b12...b1n  b21...b2n ...] — the path components
    are independent variables: the first names a table, the rest name
    columns; each binding vector supplies, for one database, the concrete
    names (§2, §3.4). *)
type let_def = {
  var_path : string list;
  bindings : string list list;  (** each the same length as [var_path] *)
}

type comp_clause = {
  comp_db : string;  (** database name or alias from the USE scope *)
  comp_stmt : Sqlfront.Ast.stmt;  (** the compensating subquery *)
}

type query = {
  scope : use_item list;
  use_current : bool;
      (** [USE CURRENT ...]: extend the session's current scope with the
          listed databases instead of replacing it *)
  lets : let_def list;
  body : Sqlfront.Ast.stmt;
  comps : comp_clause list;
}

(** An acceptable termination state: the conjunction of the subqueries
    (named by database or alias) whose success the state requires; all
    other subqueries are implicitly aborted or compensated (§3.4). *)
type acceptable_state = string list

type multitransaction = {
  queries : query list;
  acceptable : acceptable_state list;  (** checked in specification order *)
}

type connectmode = Connect_many | Connect_one

(** The paper's COMMITMODE naming is inverted with respect to intuition:
    [Commits_automatically] (COMMIT) marks an autocommit-only LDBMS, while
    [Supports_prepare] (NOCOMMIT) marks one with a 2PC interface (§3.1). *)
type commitmode = Commits_automatically | Supports_prepare

type incorporate = {
  inc_service : string;
  inc_site : string option;
  inc_connectmode : connectmode;
  inc_commitmode : commitmode;
  inc_create_commit : bool;
  inc_insert_commit : bool;
  inc_drop_commit : bool;
}

type import_scope =
  | Import_all  (** all public tables of the database *)
  | Import_table of { itable : string; icolumns : string list option }

type import = {
  imp_database : string;
  imp_service : string;
  imp_scope : import_scope;
}

(** Interdatabase trigger (§2 lists them among MSQL's features without
    giving syntax; this design is ours): after any successful multiple
    update that wrote [trg_db], the [trg_condition] SELECT is evaluated
    there, and if it returns rows the [trg_action] — a full MSQL multiple
    query, typically on {e other} databases — is executed. *)
type trigger_def = {
  trg_name : string;
  trg_db : string;  (** monitored database *)
  trg_condition : Sqlfront.Ast.select;  (** fires when non-empty *)
  trg_action : query;
}

type toplevel =
  | Query of query
  | Multitransaction of multitransaction
  | Incorporate of incorporate
  | Import of import
  | Create_trigger of trigger_def
  | Drop_trigger of string
  | Explain of toplevel
      (** [EXPLAIN <statement>]: return the generated DOL evaluation plan
          instead of executing it *)
  | Explain_multiple of query
      (** [EXPLAIN MULTIPLE <query>]: run the full pipeline (expansion,
          decomposition with the semijoin cost decision, plan generation)
          without executing, and render every phase *)
  | Create_multidatabase of { mdb_name : string; mdb_members : use_item list }
      (** a virtual database (§2): a named scope; [USE <name>] expands to
          its members *)
  | Drop_multidatabase of string

val use_db_key : use_item -> string
(** The name under which the subquery on this database is referred to in
    COMMIT states and COMP clauses: the alias when given, else the
    database name. *)

val find_in_scope : use_item list -> string -> use_item option
(** Look up by alias or database name, case-insensitively. *)

val is_retrieval : query -> bool
val scope_db_names : query -> string list
