module D = Narada.Dol_ast
module Engine = Narada.Engine
module Names = Sqlcore.Names

let log_src = Logs.Src.create "msql.session" ~doc:"MSQL pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type update_outcome = Success | Aborted | Incorrect

type db_report = {
  rdb : string;
  rvital : Ast.vital;
  rstatus : D.status;
  raffected : int option;
}

type result =
  | Multitable of Multitable.t
  | Update_report of {
      outcome : update_outcome;
      details : db_report list;
      dolstatus : int;
      elapsed_ms : float;
    }
  | Mtx_report of {
      chosen : int option;
      incorrect : bool;
      details : db_report list;
      elapsed_ms : float;
    }
  | Info of string

(* Cross-session cache block: one of these, shared by every session of a
   server, makes the compiled-plan and shipped-result caches communal —
   session A's planning warms session B. Guarded by its own mutex since
   sessions may execute on different domains; the per-session hit/miss
   counters stay in each session, so per-session accounting survives
   sharing. *)
type shared_caches = {
  sc_m : Mutex.t;
  sc_plans : (string, Plangen.plan) Hashtbl.t;
  sc_results : (string * string * string, int * Sqlcore.Relation.t) Hashtbl.t;
}

let shared_caches () =
  {
    sc_m = Mutex.create ();
    sc_plans = Hashtbl.create 64;
    sc_results = Hashtbl.create 64;
  }

type t = {
  world : Netsim.World.t;
  directory : Narada.Directory.t;
  ad : Ad.t;
  gdd : Gdd.t;
  mutable scope : Ast.use_item list;  (* current scope (USE CURRENT) *)
  mutable optimize : bool;
  mutable dataflow : bool;
      (* dataflow wave scheduling of generated DOL programs (default on) *)
  mutable semijoin : bool;
  mutable trace : (string -> unit) option;
  mutable typed_trace : (Narada.Trace.event -> unit) option;
  metrics : Metrics.t;
  mutable retry : Narada.Retry_policy.t option;
      (* None -> the engine's default policy *)
  mutable last_outcome : Engine.outcome option;
  virtual_dbs : (string, Ast.use_item list) Hashtbl.t;
  triggers : (string, Ast.trigger_def) Hashtbl.t;
  mutable trigger_order : string list;  (* creation order, newest first *)
  mutable trigger_log : string list;  (* oldest first *)
  mutable firing_depth : int;  (* cascade guard *)
  mutable trace_tag : string option;
      (* stamped on every observed trace event (unless the event already
         carries one); the server tags each member session so merged
         event streams stay attributable *)
  (* --- session performance layer (all off by default) --- *)
  mutable pool : Narada.Pool.t option;  (* Some = pooling enabled *)
  mutable pool_shared : bool;
      (* the pool belongs to a server, not this session: never drain it *)
  mutable shared : shared_caches option;
      (* Some = plan/result lookups go to the communal tables *)
  mutable domains : int;
      (* > 1 -> eligible PARBEGIN blocks execute on that many domains *)
  mutable plan_cache_on : bool;
  plan_cache : (string, Plangen.plan) Hashtbl.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable result_cache_on : bool;
  result_cache : (string * string * string, int * Sqlcore.Relation.t) Hashtbl.t;
      (* (src, dst, shipped query) -> (dictionary epoch at store, rows) *)
  mutable result_hits : int;
  mutable result_misses : int;
  mutable mdb_epoch : int;
      (* bumped on CREATE/DROP MULTIDATABASE; part of the plan-cache key
         alongside the Gdd/Ad versions *)
}

type cache_stats = Metrics.cache_stats = {
  pool_hits : int;
  pool_misses : int;
  pool_discarded : int;
  pool_conflicts : int;
  plan_hits : int;
  plan_misses : int;
  result_hits : int;
  result_misses : int;
}

let create ?world ?directory ?ad ?gdd () =
  {
    world = (match world with Some w -> w | None -> Netsim.World.create ());
    directory =
      (match directory with Some d -> d | None -> Narada.Directory.create ());
    (* a server passes one AD/GDD pair to every member session: the
       dictionaries are the shared global schema, and sharing them is
       what makes cross-session plan/result cache keys comparable *)
    ad = (match ad with Some a -> a | None -> Ad.create ());
    gdd = (match gdd with Some g -> g | None -> Gdd.create ());
    scope = [];
    optimize = false;
    dataflow =
      (* on by default; the CI matrix pins both legs explicitly via
         MSQL_TEST_DATAFLOW={0,1} *)
      (match Sys.getenv_opt "MSQL_TEST_DATAFLOW" with
      | Some ("0" | "false" | "off") -> false
      | Some _ | None -> true);
    semijoin = true;
    trace = None;
    typed_trace = None;
    metrics = Metrics.create ();
    retry = None;
    last_outcome = None;
    virtual_dbs = Hashtbl.create 8;
    triggers = Hashtbl.create 8;
    trigger_order = [];
    trigger_log = [];
    firing_depth = 0;
    trace_tag = None;
    pool = None;
    pool_shared = false;
    shared = None;
    domains =
      (* the CI matrix exercises domain execution across the whole suite
         by exporting MSQL_TEST_DOMAINS=n *)
      (match Sys.getenv_opt "MSQL_TEST_DOMAINS" with
      | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1)
      | None -> 1);
    plan_cache_on = false;
    plan_cache = Hashtbl.create 32;
    plan_hits = 0;
    plan_misses = 0;
    result_cache_on = false;
    result_cache = Hashtbl.create 32;
    result_hits = 0;
    result_misses = 0;
    mdb_epoch = 0;
  }

let world t = t.world
let current_scope t = t.scope

let triggers t =
  List.filter_map
    (fun name ->
      Option.map (fun d -> (name, d)) (Hashtbl.find_opt t.triggers name))
    (List.rev t.trigger_order)

let trigger_log t = List.rev t.trigger_log
let set_optimize t b = t.optimize <- b
let set_dataflow t b = t.dataflow <- b
let dataflow_enabled t = t.dataflow
let set_semijoin t b = t.semijoin <- b
let semijoin_enabled t = t.semijoin
let set_trace t sink = t.trace <- sink
let set_typed_trace t sink = t.typed_trace <- sink
let metrics t = t.metrics

(* every typed trace event — engine or pool — feeds the registry and is
   then forwarded to the application's sink, if any; a session tag is
   stamped first so merged multi-session streams stay attributable *)
let observe t ev =
  let ev =
    match t.trace_tag with
    | Some tag -> Narada.Trace.with_tag tag ev
    | None -> ev
  in
  Metrics.observe t.metrics ev;
  match t.typed_trace with Some f -> f ev | None -> ()

let set_trace_tag t tag = t.trace_tag <- tag
let trace_tag t = t.trace_tag

let set_retry_policy t p = t.retry <- p
let last_engine_outcome t = t.last_outcome
let optimize_enabled t = t.optimize

(* ---- session performance layer ---------------------------------------- *)

let set_pooling t b =
  match b, t.pool with
  | true, None ->
      let p = Narada.Pool.create t.world in
      Narada.Pool.set_trace p (observe t);
      t.pool_shared <- false;
      t.pool <- Some p
  | false, Some p ->
      (* a shared pool belongs to the server and holds other sessions'
         parked connections: detach without draining *)
      if not t.pool_shared then Narada.Pool.drain p;
      t.pool_shared <- false;
      t.pool <- None
  | true, Some _ | false, None -> ()

let pooling_enabled t = t.pool <> None

let set_shared_pool t p =
  (* the pool's trace sink stays whatever its owner installed — a
     per-session sink would misattribute other sessions' stale-discard
     events *)
  (match t.pool with
  | Some own when (not t.pool_shared) && own != p -> Narada.Pool.drain own
  | _ -> ());
  t.pool_shared <- true;
  t.pool <- Some p

let set_domains t n = t.domains <- max 1 n
let domains t = t.domains

(* intra-operator parallelism at the sites is executor-global (like the
   join-planner toggle): one knob for every session in the process *)
let set_parallel_exec ?enabled ?min_rows ?max_partitions ?width () =
  Ldbms.Exec.set_parallel_exec ?enabled ?min_rows ?max_partitions ?width ()

let parallel_exec_enabled () = Ldbms.Exec.parallel_exec_enabled ()
let set_plan_cache t b =
  if not b then Hashtbl.reset t.plan_cache;
  t.plan_cache_on <- b

let plan_cache_enabled t = t.plan_cache_on

let set_result_cache t b =
  if not b then Hashtbl.reset t.result_cache;
  t.result_cache_on <- b

let result_cache_enabled t = t.result_cache_on

let set_shared_caches t sc =
  t.shared <- Some sc;
  (* sharing implies caching: a member session with the layers off would
     silently bypass the communal tables *)
  t.plan_cache_on <- true;
  t.result_cache_on <- true

(* run [f] against the effective plan table — communal (locked) when the
   session is attached to a server's shared block, private otherwise *)
let with_plan_table t f =
  match t.shared with
  | Some sc ->
      Mutex.lock sc.sc_m;
      Fun.protect ~finally:(fun () -> Mutex.unlock sc.sc_m) (fun () ->
          f sc.sc_plans)
  | None -> f t.plan_cache

let with_result_table t f =
  match t.shared with
  | Some sc ->
      Mutex.lock sc.sc_m;
      Fun.protect ~finally:(fun () -> Mutex.unlock sc.sc_m) (fun () ->
          f sc.sc_results)
  | None -> f t.result_cache

let cache_stats t =
  let ps =
    match t.pool with
    | Some p -> Narada.Pool.stats p
    | None -> { Narada.Pool.hits = 0; misses = 0; discarded = 0; conflicts = 0 }
  in
  {
    pool_hits = ps.Narada.Pool.hits;
    pool_misses = ps.Narada.Pool.misses;
    pool_discarded = ps.Narada.Pool.discarded;
    pool_conflicts = ps.Narada.Pool.conflicts;
    plan_hits = t.plan_hits;
    plan_misses = t.plan_misses;
    result_hits = t.result_hits;
    result_misses = t.result_misses;
  }

let metrics_json t =
  Metrics.to_json t.metrics ~world:t.world ~cache:(cache_stats t)

(* epoch stamped on shipped-result entries: any dictionary change (IMPORT,
   INCORPORATE) makes older entries unrecognizable, since a re-import may
   have changed the source schema or statistics *)
let dict_epoch t = Gdd.version t.gdd + Ad.version t.ad

let rc_key src dst query =
  (String.lowercase_ascii src, String.lowercase_ascii dst, query)

let move_cache t =
  if not t.result_cache_on then None
  else
    Some
      {
        Narada.Lam.tc_lookup =
          (fun ~src ~dst ~query ->
            let k = rc_key src dst query in
            with_result_table t (fun table ->
                match Hashtbl.find_opt table k with
                | Some (epoch, rel) when epoch = dict_epoch t ->
                    t.result_hits <- t.result_hits + 1;
                    Some rel
                | Some _ ->
                    (* stale dictionary epoch: drop and re-ship *)
                    Hashtbl.remove table k;
                    t.result_misses <- t.result_misses + 1;
                    None
                | None ->
                    t.result_misses <- t.result_misses + 1;
                    None));
        tc_store =
          (fun ~src ~dst ~query rel ->
            with_result_table t (fun table ->
                if Hashtbl.length table > 256 then Hashtbl.reset table;
                Hashtbl.replace table (rc_key src dst query)
                  (dict_epoch t, rel)));
      }

(* drop shipped results touching any of the written databases: a write to
   the source changes what the shipped query returns, a write to the
   destination changes the semijoin key set the shipped query was reduced
   with (service names equal database names here) *)
let invalidate_shipped t dbs =
  if dbs <> [] then
    with_result_table t (fun table ->
        if Hashtbl.length table > 0 then begin
          let canon = List.map String.lowercase_ascii dbs in
          let doomed =
            Hashtbl.fold
              (fun ((src, dst, _) as k) _ acc ->
                if List.exists (fun db -> db = src || db = dst) canon then
                  k :: acc
                else acc)
              table []
          in
          List.iter (Hashtbl.remove table) doomed
        end)

(* start a stepped DOL engine run with the session's trace sink and retry
   policy; [note_outcome] folds the finished result into the metrics and
   remembers it for {!last_engine_outcome} *)
let engine_start t program =
  (* pin the LDBMS compiled-predicate cache to this session's dictionary
     epoch before any local statement runs: an IMPORT/INCORPORATE bumps the
     epoch and clears compiled closures along with the shipped-result and
     plan caches *)
  Ldbms.Exec.set_dict_epoch ~ident:(Gdd.id t.gdd) (dict_epoch t);
  t.metrics.Metrics.engine_runs <- t.metrics.Metrics.engine_runs + 1;
  let dpool =
    if t.domains > 1 then Some (Narada.Dpool.shared ~domains:t.domains)
    else None
  in
  Engine.start ?on_event:t.trace ~on_trace:(observe t) ?retry:t.retry
    ?pool:t.pool ?dpool ?move_cache:(move_cache t) ~directory:t.directory
    ~world:t.world program

let note_outcome t = function
  | Error _ as e ->
      t.metrics.Metrics.engine_errors <- t.metrics.Metrics.engine_errors + 1;
      e
  | Ok outcome ->
      (* retries/decisions/recoveries/moves were already folded from the
         trace stream; the outcome supplies what only the epilogue knows *)
      t.metrics.Metrics.engine_virtual_ms <-
        t.metrics.Metrics.engine_virtual_ms +. outcome.Engine.elapsed_ms;
      t.metrics.Metrics.in_doubt <-
        t.metrics.Metrics.in_doubt + outcome.Engine.in_doubt;
      if outcome.Engine.vital_split then
        t.metrics.Metrics.vital_splits <- t.metrics.Metrics.vital_splits + 1;
      t.last_outcome <- Some outcome;
      Ok outcome

let engine_run t program =
  note_outcome t (Engine.finish (engine_start t program))

let maybe_optimize t (plan : Plangen.plan) =
  let program = plan.Plangen.program in
  let program =
    if t.optimize then Narada.Dol_opt.optimize program else program
  in
  let program =
    if t.dataflow then begin
      let program, ds = Narada.Dol_opt.dataflow_with_stats program in
      Metrics.note_dataflow t.metrics ds;
      program
    end
    else program
  in
  if t.optimize || t.dataflow then { plan with Plangen.program } else plan
let log_trigger t fmt = Printf.ksprintf (fun m -> t.trigger_log <- m :: t.trigger_log) fmt

(* resolve USE CURRENT: prepend the session scope, newest designations
   winning on duplicates, and remember the effective scope *)
let expand_virtual t scope =
  List.concat_map
    (fun (u : Ast.use_item) ->
      match Hashtbl.find_opt t.virtual_dbs (Names.canon u.Ast.db) with
      | None -> [ u ]
      | Some members ->
          (* a VITAL designation on the virtual database distributes over
             its members; aliases on the virtual reference are dropped *)
          List.map
            (fun (m : Ast.use_item) ->
              if u.Ast.vital = Ast.Vital then { m with Ast.vital = Ast.Vital }
              else m)
            members)
    scope

let effective_scope t (q : Ast.query) =
  let scope =
    if not q.Ast.use_current then expand_virtual t q.Ast.scope
    else
      let shadowed (u : Ast.use_item) =
        List.exists
          (fun (u' : Ast.use_item) -> Names.equal u'.Ast.db u.Ast.db)
          q.Ast.scope
      in
      List.filter (fun u -> not (shadowed u)) t.scope
      @ expand_virtual t q.Ast.scope
  in
  (* the session scope is NOT committed here: a statement whose plan fails
     to generate must leave the current scope untouched, so persisting is
     the caller's job once a plan exists *)
  { q with Ast.scope; use_current = false }
let directory t = t.directory
let ad t = t.ad
let gdd t = t.gdd

(* ---- dictionary statements -------------------------------------------- *)

let incorporate_stmt t (i : Ast.incorporate) =
  match Narada.Directory.find_opt t.directory i.Ast.inc_service with
  | None ->
      Error
        (Printf.sprintf "service %s is not known to the resource directory"
           i.Ast.inc_service)
  | Some svc ->
      let actual_2pc =
        Ldbms.Capabilities.supports_2pc svc.Narada.Service.caps
      in
      let declared_2pc = i.Ast.inc_commitmode = Ast.Supports_prepare in
      if declared_2pc && not actual_2pc then
        Error
          (Printf.sprintf
             "INCORPORATE declares COMMITMODE NOCOMMIT (2PC) but engine %s \
              of service %s only autocommits"
             svc.Narada.Service.caps.Ldbms.Capabilities.engine_name
             i.Ast.inc_service)
      else begin
        (* declaring an autocommit-only interface for a 2PC engine is
           allowed: the federation then simply never uses PREPARE there *)
        Ad.incorporate t.ad i;
        Ok ()
      end

let incorporate_auto t ~service =
  match Narada.Directory.find_opt t.directory service with
  | None ->
      Error
        (Printf.sprintf "service %s is not known to the resource directory"
           service)
  | Some svc ->
      Ad.register t.ad
        (Ad.of_capabilities ~service ~site:svc.Narada.Service.site
           svc.Narada.Service.caps);
      Ok ()

let import_stmt t (imp : Ast.import) =
  match Narada.Directory.find_opt t.directory imp.Ast.imp_service with
  | None ->
      Error
        (Printf.sprintf "service %s is not known to the resource directory"
           imp.Ast.imp_service)
  | Some svc -> (
      let db = svc.Narada.Service.database in
      if not (Names.equal (Ldbms.Database.name db) imp.Ast.imp_database) then
        Error
          (Printf.sprintf "service %s hosts database %s, not %s"
             imp.Ast.imp_service (Ldbms.Database.name db) imp.Ast.imp_database)
      else
        match imp.Ast.imp_scope with
        | Ast.Import_all ->
            Gdd.import_database t.gdd ~db:imp.Ast.imp_database
              (Ldbms.Database.catalog db);
            List.iter
              (fun (table, _) ->
                match Ldbms.Database.find_table_opt db table with
                | Some tbl ->
                    Gdd.set_cardinality t.gdd ~db:imp.Ast.imp_database ~table
                      (Ldbms.Table.cardinality tbl)
                | None -> ())
              (Ldbms.Database.catalog db);
            Ok ()
        | Ast.Import_table { itable; icolumns } -> (
            let schema_opt =
              match Ldbms.Database.find_table_opt db itable with
              | Some tbl -> Some (Ldbms.Table.schema tbl)
              | None -> (
                  (* the IMPORT grammar also covers views: import the
                     view's result schema as a table definition *)
                  match Ldbms.Database.find_view_opt db itable with
                  | Some q -> (
                      match Ldbms.Exec.view_schema db q with
                      | schema -> Some schema
                      | exception Ldbms.Exec.Error _ -> None)
                  | None -> None)
            in
            match schema_opt with
            | None ->
                Error
                  (Printf.sprintf "table or view %s does not exist in database %s"
                     itable imp.Ast.imp_database)
            | Some schema -> (
                (* record the row count alongside: the decomposer's
                   semijoin cost gate runs on these statistics *)
                (match Ldbms.Database.find_table_opt db itable with
                | Some tbl ->
                    Gdd.set_cardinality t.gdd ~db:imp.Ast.imp_database
                      ~table:itable
                      (Ldbms.Table.cardinality tbl)
                | None -> ());
                match icolumns with
                | None ->
                    Gdd.import_table t.gdd ~db:imp.Ast.imp_database ~table:itable
                      schema;
                    Ok ()
                | Some cols -> (
                    match
                      Gdd.import_columns t.gdd ~db:imp.Ast.imp_database
                        ~table:itable schema cols
                    with
                    | () -> Ok ()
                    | exception Invalid_argument m -> Error m))))

let import_all t ~service =
  match Narada.Directory.find_opt t.directory service with
  | None ->
      Error
        (Printf.sprintf "service %s is not known to the resource directory"
           service)
  | Some svc ->
      import_stmt t
        {
          Ast.imp_database = Ldbms.Database.name svc.Narada.Service.database;
          imp_service = service;
          imp_scope = Ast.Import_all;
        }

(* ---- outcome interpretation -------------------------------------------- *)

let report_of_bindings (outcome : Engine.outcome) bindings =
  List.map
    (fun (b : Plangen.binding) ->
      {
        rdb = b.Plangen.bdb;
        rvital = b.Plangen.vital;
        rstatus = Engine.status_of outcome b.Plangen.task;
        raffected =
          List.assoc_opt (String.lowercase_ascii b.Plangen.task)
            outcome.Engine.rowcounts;
      })
    bindings

let committed = function D.C -> true | D.P | D.A | D.E | D.N | D.X -> false
let undone = function D.A | D.X | D.N -> true | D.C | D.P | D.E -> false

let classify_update details =
  let vitals = List.filter (fun r -> r.rvital = Ast.Vital) details in
  if vitals = [] then Success
  else if List.for_all (fun r -> committed r.rstatus) vitals then Success
  else if List.for_all (fun r -> undone r.rstatus) vitals then Aborted
  else Incorrect

(* ---- query execution ----------------------------------------------------- *)

let build_multitable (outcome : Engine.outcome) bindings =
  let parts =
    List.filter_map
      (fun (b : Plangen.binding) ->
        if b.Plangen.retrieval then
          Engine.result_of outcome b.Plangen.task
          |> Option.map (fun rel ->
                 { Multitable.part_db = b.Plangen.bdb; part_table = rel })
        else None)
      bindings
  in
  Multitable.make parts

let plan_of_query t (q : Ast.query) =
  maybe_optimize t
    (match Expand.expand t.gdd q with
    | Expand.Replicated elems ->
        Log.debug (fun f ->
            f "expanded into %d elementary quer%s (%s)" (List.length elems)
              (if List.length elems = 1 then "y" else "ies")
              (String.concat ", "
                 (List.map (fun (e : Expand.elementary) -> e.Expand.edb) elems)));
        t.metrics.Metrics.plans_replicated <-
          t.metrics.Metrics.plans_replicated + 1;
        Plangen.plan_replicated t.ad q elems
    | Expand.Global { gselect; grefs } ->
        let dp = Decompose.decompose ~semijoin:t.semijoin ~gselect ~grefs in
        Log.debug (fun f ->
            f "decomposed global query: coordinator %s, %d shipped subqueries"
              dp.Decompose.coordinator
              (List.length dp.Decompose.shipped));
        t.metrics.Metrics.plans_global <- t.metrics.Metrics.plans_global + 1;
        Metrics.note_decomposition t.metrics dp;
        Plangen.plan_global t.ad q dp
    | Expand.Transfer { tdb; tuse; ttable; tcolumns; gselect; grefs } ->
        let dp = Decompose.decompose ~semijoin:t.semijoin ~gselect ~grefs in
        t.metrics.Metrics.plans_transfer <- t.metrics.Metrics.plans_transfer + 1;
        Metrics.note_decomposition t.metrics dp;
        Plangen.plan_transfer t.ad ~tdb ~tuse ~ttable ~tcolumns dp)

(* memoized plan generation: the key covers everything a plan depends on —
   the effective-scope query itself plus the dictionary versions and the
   planner flags.  A dictionary mutation bumps its version, so stale plans
   are never served; they are evicted wholesale when the table grows. *)
let plan_key t (q : Ast.query) =
  (* the dictionary identity leads the key: when the plan table is shared
     across sessions, only sessions over the same GDD instance may
     exchange plans — equal version numbers from different dictionaries
     must not collide *)
  Printf.sprintf "%d|%d|%d|%d|%b|%b|%b|%s" (Gdd.id t.gdd) (Gdd.version t.gdd)
    (Ad.version t.ad) t.mdb_epoch t.optimize t.dataflow t.semijoin
    (Marshal.to_string q [])

let plan_of_query_cached t (q : Ast.query) =
  if not t.plan_cache_on then plan_of_query t q
  else
    let k = plan_key t q in
    match with_plan_table t (fun table -> Hashtbl.find_opt table k) with
    | Some plan ->
        t.plan_hits <- t.plan_hits + 1;
        plan
    | None ->
        let plan = plan_of_query t q in
        t.plan_misses <- t.plan_misses + 1;
        with_plan_table t (fun table ->
            if Hashtbl.length table > 128 then Hashtbl.reset table;
            Hashtbl.replace table k plan);
        plan

(* databases whose state a successful execution changed *)
let written_of_details details =
  List.filter_map
    (fun r ->
      match r.rstatus, r.raffected with
      | D.C, Some n when n > 0 -> Some r.rdb
      | _ -> None)
    details

let written_dbs = function
  | Update_report { details; _ } | Mtx_report { details; _ } ->
      written_of_details details
  | Multitable _ | Info _ -> []

(* phases 1-4 for one query: effective scope, plan, persist the scope.
   Shared by the monolithic path and the stepped path. *)
let prepare_query t (q : Ast.query) =
  let q = effective_scope t q in
  if q.Ast.scope = [] then
    Error "empty query scope (no current scope established yet?)"
  else
    match plan_of_query_cached t q with
    | exception Expand.Error m -> Error m
    | exception Decompose.Error m -> Error m
    | exception Plangen.Error m -> Error m
    | plan ->
        t.scope <- q.Ast.scope;
        Ok (q, plan)

let interpret_query t (q : Ast.query) (plan : Plangen.plan)
    (outcome : Engine.outcome) =
  let details = report_of_bindings outcome plan.Plangen.task_bindings in
  invalidate_shipped t (written_of_details details);
  if Ast.is_retrieval q then
    if outcome.Engine.dolstatus = 0 then
      Ok (Multitable (build_multitable outcome plan.Plangen.task_bindings))
    else
      let failed =
        List.filter
          (fun r -> r.rvital = Ast.Vital && not (committed r.rstatus))
          details
      in
      Error
        (Printf.sprintf "multiple query aborted: vital subquery failed on %s"
           (String.concat ", " (List.map (fun r -> r.rdb) failed)))
  else
    Ok
      (Update_report
         {
           outcome = classify_update details;
           details;
           dolstatus = outcome.Engine.dolstatus;
           elapsed_ms = outcome.Engine.elapsed_ms;
         })

let run_query t (q : Ast.query) =
  match prepare_query t q with
  | Error m -> Error m
  | Ok (q, plan) -> (
      match engine_run t plan.Plangen.program with
      | Error m -> Error m
      | Ok outcome -> interpret_query t q plan outcome)

(* ---- multitransactions --------------------------------------------------- *)

let prepare_mtx t (mtx : Ast.multitransaction) =
  let expand_one (q : Ast.query) =
    let q = { q with Ast.scope = expand_virtual t q.Ast.scope } in
    match Expand.expand t.gdd q with
    | Expand.Replicated elems -> (q, elems)
    | Expand.Global _ | Expand.Transfer _ ->
        raise
          (Expand.Error
             "cross-database statements are not allowed inside a multitransaction")
  in
  match List.map expand_one mtx.Ast.queries with
  | exception Expand.Error m -> Error m
  | expanded -> (
      match maybe_optimize t (Plangen.plan_mtx t.ad mtx expanded) with
      | exception Plangen.Error m -> Error m
      | plan ->
          t.metrics.Metrics.plans_mtx <- t.metrics.Metrics.plans_mtx + 1;
          Ok (expanded, plan))

let interpret_mtx t (mtx : Ast.multitransaction) expanded
    (plan : Plangen.plan) (outcome : Engine.outcome) =
  let details = report_of_bindings outcome plan.Plangen.task_bindings in
  invalidate_shipped t (written_of_details details);
  let status_of db =
    match List.find_opt (fun r -> Names.equal r.rdb db) details with
    | Some r -> r.rstatus
    | None -> D.N
  in
  (* which databases does state i require? resolve aliases *)
  let dbs_of_state state =
    List.map
      (fun name ->
        match
          List.find_opt
            (fun ((q : Ast.query), _) ->
              Ast.find_in_scope q.Ast.scope name <> None)
            expanded
        with
        | Some (q, _) ->
            (Option.get (Ast.find_in_scope q.Ast.scope name)).Ast.db
        | None -> name)
      state
  in
  let satisfied state =
    let dbs = dbs_of_state state in
    let all_participants = List.map (fun r -> r.rdb) details in
    List.for_all (fun db -> committed (status_of db)) dbs
    && List.for_all
         (fun db ->
           List.exists (Names.equal db) dbs || undone (status_of db))
         all_participants
  in
  let chosen =
    let rec find i = function
      | [] -> None
      | s :: rest -> if satisfied s then Some i else find (i + 1) rest
    in
    find 0 mtx.Ast.acceptable
  in
  let all_undone = List.for_all (fun r -> undone r.rstatus) details in
  let incorrect = chosen = None && not all_undone in
  Ok
    (Mtx_report
       { chosen; incorrect; details; elapsed_ms = outcome.Engine.elapsed_ms })

let run_mtx t (mtx : Ast.multitransaction) =
  match prepare_mtx t mtx with
  | Error m -> Error m
  | Ok (expanded, plan) -> (
      match engine_run t plan.Plangen.program with
      | Error m -> Error m
      | Ok outcome -> interpret_mtx t mtx expanded plan outcome)

(* ---- stepped execution ----------------------------------------------------
   The interleaving harness runs several sessions' statements against
   shared sites one engine statement at a time. [prepare_text] runs
   phases 1-4 (parse through plan generation) and starts a stepped engine
   run without executing anything; [step] executes one DOL statement;
   [finish] drains the rest, runs the engine epilogue and interprets the
   outcome exactly as [run_query]/[run_mtx] would. Triggers do not fire
   on this path — the harness asserts raw outcomes. *)

type prepared = {
  p_session : t;
  p_stepper : Engine.stepper;
  p_interpret : Engine.outcome -> (result, string) Stdlib.result;
  p_services : string list;
      (* canonical service names the program OPENs — the statement's site
         footprint, which the server's scheduler uses to decide which
         statements may run concurrently *)
  p_move_dsts : string list;
      (* destinations of the program's MOVEs — the sites where it creates
         shipped temp tables (msql_tmp_<k>, named per plan, not per
         session), the only sites a retrieval writes to *)
}

(* services OPENed anywhere in the program, lowercased, deduplicated and
   sorted; MOVEs and tasks act through aliases those OPENs bind, so the
   OPEN set covers every site the statement touches *)
let program_services (program : D.program) =
  let acc = ref [] in
  let rec stmt = function
    | D.Open { service; _ } -> acc := String.lowercase_ascii service :: !acc
    | D.Parallel body -> List.iter stmt body
    | D.If (_, thens, elses) ->
        List.iter stmt thens;
        List.iter stmt elses
    | D.Close _ | D.Task _ | D.Commit_tasks _ | D.Abort_tasks _ | D.Comp _
    | D.Move _ | D.Set_status _ ->
        ()
  in
  List.iter stmt program;
  List.sort_uniq String.compare !acc

(* MOVE destinations, lowercased, deduplicated and sorted *)
let program_move_dsts (program : D.program) =
  let acc = ref [] in
  let rec stmt = function
    | D.Move { dst; _ } -> acc := String.lowercase_ascii dst :: !acc
    | D.Parallel body -> List.iter stmt body
    | D.If (_, thens, elses) ->
        List.iter stmt thens;
        List.iter stmt elses
    | D.Open _ | D.Close _ | D.Task _ | D.Commit_tasks _ | D.Abort_tasks _
    | D.Comp _ | D.Set_status _ ->
        ()
  in
  List.iter stmt program;
  List.sort_uniq String.compare !acc

let prepared_services p = p.p_services
let prepared_move_dsts p = p.p_move_dsts
let prepared_session p = p.p_session

let prepare_text t text =
  match Mparser.parse_toplevel text with
  | exception Mparser.Error (m, l, c) ->
      Error (Printf.sprintf "MSQL parse error at %d:%d: %s" l c m)
  | Ast.Query q -> (
      t.metrics.Metrics.statements <- t.metrics.Metrics.statements + 1;
      match prepare_query t q with
      | Error m -> Error m
      | Ok (q, plan) ->
          Ok
            {
              p_session = t;
              p_stepper = engine_start t plan.Plangen.program;
              p_interpret = interpret_query t q plan;
              p_services = program_services plan.Plangen.program;
              p_move_dsts = program_move_dsts plan.Plangen.program;
            })
  | Ast.Multitransaction mtx -> (
      t.metrics.Metrics.statements <- t.metrics.Metrics.statements + 1;
      match prepare_mtx t mtx with
      | Error m -> Error m
      | Ok (expanded, plan) ->
          Ok
            {
              p_session = t;
              p_stepper = engine_start t plan.Plangen.program;
              p_interpret = interpret_mtx t mtx expanded plan;
              p_services = program_services plan.Plangen.program;
              p_move_dsts = program_move_dsts plan.Plangen.program;
            })
  | Ast.Explain _ | Ast.Explain_multiple _ | Ast.Incorporate _ | Ast.Import _
  | Ast.Create_trigger _ | Ast.Drop_trigger _ | Ast.Create_multidatabase _
  | Ast.Drop_multidatabase _ ->
      Error "only queries and multitransactions can be stepped"

let step p = Engine.step p.p_stepper

let finish p =
  match note_outcome p.p_session (Engine.finish p.p_stepper) with
  | Error m -> Error m
  | Ok outcome -> p.p_interpret outcome

(* ---- interdatabase triggers -------------------------------------------------- *)

let max_trigger_depth = 4

(* Trigger conditions are evaluated by the monitored database's LAM
   locally; here that is a direct read of the service's database. *)
let condition_fires t (d : Ast.trigger_def) =
  match Narada.Directory.find_opt t.directory d.Ast.trg_db with
  | None -> Error (Printf.sprintf "service %s unknown" d.Ast.trg_db)
  | Some svc -> (
      match
        Ldbms.Exec.run_select svc.Narada.Service.database d.Ast.trg_condition
      with
      | rel -> Ok (not (Sqlcore.Relation.is_empty rel))
      | exception Ldbms.Exec.Error m -> Error m)

(* ---- EXPLAIN MULTIPLE -------------------------------------------------- *)

(* Run phases 1-4 of the pipeline (scope resolution, expansion,
   decomposition, plan generation) and render each one, executing
   nothing: the engine is never entered, so the world's clock and
   message counters do not move. *)
let explain_multiple t (q : Ast.query) =
  let q = effective_scope t q in
  if q.Ast.scope = [] then
    Error "empty query scope (no current scope established yet?)"
  else
    let render () =
      let b = Buffer.create 1024 in
      let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      let use_item_str (u : Ast.use_item) =
        u.Ast.db
        ^ (match u.Ast.alias with Some a -> " " ^ a | None -> "")
        ^ match u.Ast.vital with Ast.Vital -> " VITAL" | Ast.Non_vital -> ""
      in
      addf "== phase 1-2: scope and expansion ==\n";
      addf "scope: %s\n"
        (String.concat ", " (List.map use_item_str q.Ast.scope));
      addf "statement: %s\n" (Sqlfront.Sql_pp.stmt_to_string q.Ast.body);
      let plan =
        match Expand.expand t.gdd q with
        | Expand.Replicated elems ->
            addf "expansion: replicated into %d elementary quer%s\n"
              (List.length elems)
              (if List.length elems = 1 then "y" else "ies");
            List.iter
              (fun (e : Expand.elementary) ->
                List.iter
                  (fun st ->
                    addf "  [%s] %s\n" e.Expand.edb
                      (Sqlfront.Sql_pp.stmt_to_string st))
                  e.Expand.stmts)
              elems;
            addf
              "== phase 3: decomposition ==\n\
               not needed: every elementary query is single-database\n";
            Plangen.plan_replicated t.ad q elems
        | Expand.Global { gselect; grefs } ->
            addf "expansion: global join over %d table reference(s): %s\n"
              (List.length grefs)
              (String.concat ", "
                 (List.map
                    (fun (r : Expand.global_ref) ->
                      r.Expand.gdb ^ "." ^ r.Expand.gtable)
                    grefs));
            let dp = Decompose.decompose ~semijoin:t.semijoin ~gselect ~grefs in
            Metrics.note_decomposition t.metrics dp;
            addf "== phase 3: decomposition ==\n%s\n"
              (Format.asprintf "%a" Decompose.pp_plan dp);
            Plangen.plan_global t.ad q dp
        | Expand.Transfer { tdb; tuse; ttable; tcolumns; gselect; grefs } ->
            addf
              "expansion: transfer into table %s of %s from %d global \
               reference(s)\n"
              ttable tdb (List.length grefs);
            let dp = Decompose.decompose ~semijoin:t.semijoin ~gselect ~grefs in
            Metrics.note_decomposition t.metrics dp;
            addf "== phase 3: decomposition ==\n%s\n"
              (Format.asprintf "%a" Decompose.pp_plan dp);
            Plangen.plan_transfer t.ad ~tdb ~tuse ~ttable ~tcolumns dp
      in
      let plan = maybe_optimize t plan in
      addf "== phase 4: DOL program ==\n%s"
        (Narada.Dol_pp.program_to_string plan.Plangen.program);
      if t.dataflow then
        (* the analysis is idempotent over scheduling: waves dissolve like
           any PARBEGIN block, so this renders the DAG the pass derived *)
        addf "\n== phase 5: dataflow schedule ==\n%s"
          (Narada.Dol_graph.describe plan.Plangen.program);
      Buffer.contents b
    in
    match render () with
    | rendered ->
        t.scope <- q.Ast.scope;
        t.metrics.Metrics.explains <- t.metrics.Metrics.explains + 1;
        Ok (Info rendered)
    | exception Expand.Error m -> Error m
    | exception Decompose.Error m -> Error m
    | exception Plangen.Error m -> Error m

(* ---- translation (no execution) --------------------------------------------- *)

let rec translate_toplevel t = function
  | Ast.Query q -> (
      let q = effective_scope t q in
      match plan_of_query_cached t q with
      | plan ->
          t.scope <- q.Ast.scope;
          Ok plan.Plangen.program
      | exception Expand.Error m -> Error m
      | exception Decompose.Error m -> Error m
      | exception Plangen.Error m -> Error m)
  | Ast.Multitransaction mtx -> (
      let expand_one (q : Ast.query) =
        let q = { q with Ast.scope = expand_virtual t q.Ast.scope } in
        match Expand.expand t.gdd q with
        | Expand.Replicated elems -> (q, elems)
        | Expand.Global _ | Expand.Transfer _ ->
            raise
              (Expand.Error
                 "cross-database statements are not allowed inside a multitransaction")
      in
      match
        maybe_optimize t
          (Plangen.plan_mtx t.ad mtx (List.map expand_one mtx.Ast.queries))
      with
      | plan -> Ok plan.Plangen.program
      | exception Expand.Error m -> Error m
      | exception Plangen.Error m -> Error m)
  | Ast.Explain inner -> translate_toplevel t inner
  | Ast.Explain_multiple q -> translate_toplevel t (Ast.Query q)
  | Ast.Incorporate _ | Ast.Import _ | Ast.Create_trigger _ | Ast.Drop_trigger _
  | Ast.Create_multidatabase _ | Ast.Drop_multidatabase _ ->
      Error "dictionary and trigger statements have no DOL translation"

(* ---- entry points ---------------------------------------------------------- *)

let rec fire_triggers t result =
  match written_dbs result with
  | [] -> ()
  | dbs when t.firing_depth >= max_trigger_depth ->
      log_trigger t "cascade depth limit reached; triggers on %s not evaluated"
        (String.concat ", " dbs)
  | dbs ->
      List.iter
        (fun (name, (d : Ast.trigger_def)) ->
          if List.exists (Names.equal d.Ast.trg_db) dbs then
            match condition_fires t d with
            | Error m -> log_trigger t "trigger %s: condition error: %s" name m
            | Ok false -> ()
            | Ok true -> (
                log_trigger t "trigger %s fired (condition on %s)" name
                  d.Ast.trg_db;
                t.firing_depth <- t.firing_depth + 1;
                let r =
                  Fun.protect
                    ~finally:(fun () -> t.firing_depth <- t.firing_depth - 1)
                    (fun () -> exec_toplevel t (Ast.Query d.Ast.trg_action))
                in
                match r with
                | Ok _ -> log_trigger t "trigger %s action completed" name
                | Error m -> log_trigger t "trigger %s action failed: %s" name m))
        (triggers t)

and exec_toplevel t tl =
  t.metrics.Metrics.statements <- t.metrics.Metrics.statements + 1;
  match tl with
  | Ast.Query q -> (
      match run_query t q with
      | Ok r ->
          fire_triggers t r;
          Ok r
      | Error _ as e -> e)
  | Ast.Multitransaction mtx -> (
      match run_mtx t mtx with
      | Ok r ->
          fire_triggers t r;
          Ok r
      | Error _ as e -> e)
  | Ast.Create_trigger d ->
      if Hashtbl.mem t.triggers d.Ast.trg_name then
        Error (Printf.sprintf "trigger %s already exists" d.Ast.trg_name)
      else if Narada.Directory.find_opt t.directory d.Ast.trg_db = None then
        Error
          (Printf.sprintf "trigger %s monitors unknown service %s"
             d.Ast.trg_name d.Ast.trg_db)
      else begin
        Hashtbl.replace t.triggers d.Ast.trg_name d;
        (* newest first: O(1) per registration, reversed on read *)
        t.trigger_order <- d.Ast.trg_name :: t.trigger_order;
        Ok (Info (Printf.sprintf "trigger %s created on %s" d.Ast.trg_name d.Ast.trg_db))
      end
  | Ast.Drop_trigger name ->
      if Hashtbl.mem t.triggers name then begin
        Hashtbl.remove t.triggers name;
        t.trigger_order <-
          List.filter (fun n -> not (String.equal n name)) t.trigger_order;
        Ok (Info (Printf.sprintf "trigger %s dropped" name))
      end
      else Error (Printf.sprintf "no trigger named %s" name)
  | Ast.Explain inner -> (
      match translate_toplevel t inner with
      | Ok prog ->
          t.metrics.Metrics.explains <- t.metrics.Metrics.explains + 1;
          Ok (Info (Narada.Dol_pp.program_to_string prog))
      | Error m -> Error m)
  | Ast.Explain_multiple q -> explain_multiple t q
  | Ast.Create_multidatabase { mdb_name; mdb_members } ->
      if Hashtbl.mem t.virtual_dbs (Names.canon mdb_name) then
        Error (Printf.sprintf "multidatabase %s already exists" mdb_name)
      else if Gdd.has_database t.gdd mdb_name then
        Error
          (Printf.sprintf "%s already names an imported database" mdb_name)
      else begin
        (* members must be importable databases or other virtual dbs *)
        match
          List.find_opt
            (fun (u : Ast.use_item) ->
              (not (Gdd.has_database t.gdd u.Ast.db))
              && not (Hashtbl.mem t.virtual_dbs (Names.canon u.Ast.db)))
            mdb_members
        with
        | Some u ->
            Error (Printf.sprintf "unknown member database %s" u.Ast.db)
        | None ->
            Hashtbl.replace t.virtual_dbs (Names.canon mdb_name)
              (expand_virtual t mdb_members);
            t.mdb_epoch <- t.mdb_epoch + 1;
            Ok (Info (Printf.sprintf "multidatabase %s created" mdb_name))
      end
  | Ast.Drop_multidatabase name ->
      if Hashtbl.mem t.virtual_dbs (Names.canon name) then begin
        Hashtbl.remove t.virtual_dbs (Names.canon name);
        t.mdb_epoch <- t.mdb_epoch + 1;
        Ok (Info (Printf.sprintf "multidatabase %s dropped" name))
      end
      else Error (Printf.sprintf "no multidatabase named %s" name)
  | Ast.Incorporate i -> (
      match incorporate_stmt t i with
      | Ok () -> Ok (Info (Printf.sprintf "service %s incorporated" i.Ast.inc_service))
      | Error m -> Error m)
  | Ast.Import imp -> (
      match import_stmt t imp with
      | Ok () ->
          Ok
            (Info
               (Printf.sprintf "database %s imported from service %s"
                  imp.Ast.imp_database imp.Ast.imp_service))
      | Error m -> Error m)

let exec t text =
  match Mparser.parse_toplevel text with
  | tl -> exec_toplevel t tl
  | exception Mparser.Error (m, l, c) ->
      Error (Printf.sprintf "MSQL parse error at %d:%d: %s" l c m)

let exec_script t text =
  match Mparser.parse_script text with
  | exception Mparser.Error (m, l, c) ->
      Error (Printf.sprintf "MSQL parse error at %d:%d: %s" l c m)
  | tls ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | tl :: rest -> (
            match exec_toplevel t tl with
            | Ok r -> go (r :: acc) rest
            | Error m -> Error m)
      in
      go [] tls

let translate t text =
  match Mparser.parse_toplevel text with
  | exception Mparser.Error (m, l, c) ->
      Error (Printf.sprintf "MSQL parse error at %d:%d: %s" l c m)
  | tl -> translate_toplevel t tl

(* ---- printing ---------------------------------------------------------------- *)

let update_outcome_to_string = function
  | Success -> "success"
  | Aborted -> "aborted"
  | Incorrect -> "INCORRECT"

let db_report_to_string r =
  Printf.sprintf "%s%s: %s%s" r.rdb
    (match r.rvital with Ast.Vital -> " (vital)" | Ast.Non_vital -> "")
    (D.status_to_string r.rstatus)
    (match r.raffected with
    | Some n -> Printf.sprintf " [%d row(s)]" n
    | None -> "")

let result_to_string = function
  | Multitable mt -> Multitable.to_string mt
  | Update_report { outcome; details; dolstatus; elapsed_ms } ->
      Printf.sprintf "update %s (DOLSTATUS=%d, %.2f ms)\n%s"
        (update_outcome_to_string outcome)
        dolstatus elapsed_ms
        (String.concat "\n" (List.map (fun r -> "  " ^ db_report_to_string r) details))
  | Mtx_report { chosen; incorrect; details; elapsed_ms } ->
      let headline =
        match chosen, incorrect with
        | Some i, _ -> Printf.sprintf "multitransaction committed acceptable state %d" (i + 1)
        | None, false -> "multitransaction aborted (all subqueries undone)"
        | None, true -> "multitransaction INCORRECT (unacceptable mixed state)"
      in
      Printf.sprintf "%s (%.2f ms)\n%s" headline elapsed_ms
        (String.concat "\n" (List.map (fun r -> "  " ^ db_report_to_string r) details))
  | Info m -> m
