(* Newline-framed text protocol over the server core, transport-free:
   the daemon (bin/msql_server.ml) feeds it lines read off a socket and
   writes back whatever it returns, and the tests drive it directly. *)

type conn = { server : Server.t; mutable sid : int option }

let create server = { server; sid = None }
let sid c = c.sid

(* results and errors are multi-line; the framing is one reply per
   line, so payloads travel with newlines and backslashes escaped *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | '\\' -> Buffer.add_char b '\\'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let completion_line (c : Server.completion) =
  match c.Server.c_result with
  | Ok r ->
      Printf.sprintf "RESULT %d %s" c.Server.c_seq
        (escape (Msession.result_to_string r))
  | Error m -> Printf.sprintf "ERROR %d %s" c.Server.c_seq (escape m)

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )

let on_line c line =
  let line = String.trim line in
  if line = "" then []
  else
    let cmd, rest = split_command line in
    match String.uppercase_ascii cmd with
    | "HELLO" -> (
        match c.sid with
        | Some sid -> [ Printf.sprintf "ERROR already connected as %d" sid ]
        | None -> (
            match Server.connect c.server with
            | Ok sid ->
                c.sid <- Some sid;
                [ Printf.sprintf "HELLO %d" sid ]
            | Error e -> [ "ERROR " ^ escape (Server.error_message e) ]))
    | "STMT" -> (
        match c.sid with
        | None -> [ "ERROR protocol: HELLO first" ]
        | Some sid -> (
            if rest = "" then [ "ERROR protocol: empty statement" ]
            else
              match Server.submit c.server sid (unescape rest) with
              | Ok _seq -> []  (* the reply arrives as a completion line *)
              | Error e -> [ "ERROR " ^ escape (Server.error_message e) ]))
    | "BYE" ->
        (match c.sid with
        | Some sid ->
            ignore (Server.disconnect c.server sid);
            c.sid <- None
        | None -> ());
        [ "BYE" ]
    | _ -> [ "ERROR protocol: unknown command " ^ escape cmd ]
