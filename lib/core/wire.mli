(** Newline-framed text protocol over {!Server}, transport-free.

    One logical client connection speaks lines; the daemon moves them
    over a socket, the tests call {!on_line} directly. Requests:

    - [HELLO] — admit a session; replies [HELLO <sid>], or
      [ERROR overloaded: ...] when the session table is full.
    - [STMT <sql>] — enqueue one statement ([<sql>] may carry escaped
      newlines). No immediate reply on success — the answer arrives
      later as a {!completion_line} ([RESULT <seq> <payload>] or
      [ERROR <seq> <msg>]), in per-session submission order. A shed
      statement replies [ERROR overloaded: ...] immediately.
    - [BYE] — retire the session; replies [BYE].

    Payloads are escaped ([\n] → [\\n], [\\] → [\\\\]) so every reply is
    exactly one line. *)

type conn

val create : Server.t -> conn
val sid : conn -> int option

val on_line : conn -> string -> string list
(** Handle one request line; returns the immediate reply lines (empty
    for an accepted [STMT], whose reply is asynchronous). *)

val completion_line : Server.completion -> string
(** Render an asynchronous completion as its reply line:
    [RESULT <seq> <escaped result>] or [ERROR <seq> <escaped msg>]. *)

val escape : string -> string
val unescape : string -> string
