module S = Sqlfront.Ast
module Names = Sqlcore.Names
module Like = Sqlcore.Like
module Schema = Sqlcore.Schema

exception Error of string
exception Not_pertinent of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt
let skip fmt = Printf.ksprintf (fun m -> raise (Not_pertinent m)) fmt

type elementary = {
  edb : string;
  use : Ast.use_item;
  stmts : Sqlfront.Ast.stmt list;
}

type global_ref = {
  gdb : string;
  gtable : string;
  galias : string option;
  gschema : Sqlcore.Schema.t;
  gcard : int option;
}

type expansion =
  | Replicated of elementary list
  | Global of { gselect : Sqlfront.Ast.select; grefs : global_ref list }
  | Transfer of {
      tdb : string;
      tuse : Ast.use_item;
      ttable : string;
      tcolumns : string list option;
      gselect : Sqlfront.Ast.select;
      grefs : global_ref list;
    }

(* ---- LET bindings -------------------------------------------------------- *)

let substitution_for gdd ~db lets =
  let of_let (l : Ast.let_def) =
    let matching =
      List.filter
        (fun binding ->
          match binding with
          | table :: _ -> Gdd.find_table gdd ~db table <> None
          | [] -> false)
        l.Ast.bindings
    in
    match matching with
    | [] -> []
    | [ binding ] ->
        (* validate column components against the bound table *)
        (match binding with
        | table :: columns ->
            let schema = Option.get (Gdd.find_table gdd ~db table) in
            List.iter
              (fun c ->
                if not (Schema.mem schema c) then
                  err "LET binding %s: column %s not in %s.%s"
                    (String.concat "." binding) c db table)
              columns
        | [] -> ());
        List.combine (List.map Names.canon l.Ast.var_path) binding
    | _ :: _ :: _ ->
        err "LET %s: several bindings match database %s"
          (String.concat "." l.Ast.var_path) db
  in
  List.concat_map of_let lets

(* ---- name classification -------------------------------------------------- *)

let optional_marker name = String.length name > 0 && name.[0] = '~'
let strip_optional name = String.sub name 1 (String.length name - 1)

(* ---- resolution scopes ---------------------------------------------------- *)

type scope_entry = { label : string; schema : Schema.t }
(* [scopes]: innermost scope first, each a list of FROM entries *)

type rctx = {
  db : string;
  gdd : Gdd.t;
  subst : (string * string) list;  (* canonical var -> concrete name *)
}

let apply_subst ctx name =
  match List.assoc_opt (Names.canon name) ctx.subst with
  | Some concrete -> concrete
  | None -> name

(* All (label, column) pairs matching [pattern] in one scope level,
   optionally restricted to entries labelled [qualifier]. *)
let matches_in_level ?qualifier pattern level =
  let entries =
    match qualifier with
    | None -> level
    | Some q -> List.filter (fun e -> Names.equal e.label q) level
  in
  List.concat_map
    (fun e ->
      Gdd.match_columns e.schema ~pattern
      |> List.map (fun c -> (e.label, c)))
    entries

let resolve_column ctx scopes ?qualifier name =
  let qualifier = Option.map (apply_subst ctx) qualifier in
  let pattern = apply_subst ctx name in
  let rec search = function
    | [] -> []
    | level :: outer -> (
        match matches_in_level ?qualifier pattern level with
        | [] -> search outer
        | ms -> ms)
  in
  (search scopes, pattern, qualifier)

(* ---- expression rewriting -------------------------------------------------- *)

let rec rewrite_expr ctx scopes (e : S.expr) : S.expr =
  match e with
  | S.Lit _ -> e
  | S.Col { qualifier; name } -> (
      if optional_marker name then
        err "optional column ~%s may only appear in a SELECT list"
          (strip_optional name);
      let ms, pattern, qualifier = resolve_column ctx scopes ?qualifier name in
      match ms with
      | [] -> skip "column %s not present in %s" pattern ctx.db
      | [ (_, concrete) ] -> S.Col { qualifier; name = concrete }
      | _ :: _ :: _ ->
          if Like.has_wildcard pattern then
            err "multiple identifier %s is ambiguous in a predicate (database %s)"
              pattern ctx.db
          else
            (* a plain duplicated column name: leave qualification to the
               local engine, which will report the ambiguity if truly used
               ambiguously *)
            S.Col { qualifier; name = pattern })
  | S.Binop (op, a, b) -> S.Binop (op, rewrite_expr ctx scopes a, rewrite_expr ctx scopes b)
  | S.Unop (op, a) -> S.Unop (op, rewrite_expr ctx scopes a)
  | S.Is_null r -> S.Is_null { r with arg = rewrite_expr ctx scopes r.arg }
  | S.Like r -> S.Like { r with arg = rewrite_expr ctx scopes r.arg }
  | S.In_list r ->
      S.In_list
        {
          r with
          arg = rewrite_expr ctx scopes r.arg;
          items = List.map (rewrite_expr ctx scopes) r.items;
        }
  | S.Between r ->
      S.Between
        {
          r with
          arg = rewrite_expr ctx scopes r.arg;
          lo = rewrite_expr ctx scopes r.lo;
          hi = rewrite_expr ctx scopes r.hi;
        }
  | S.Agg r -> S.Agg { r with arg = Option.map (rewrite_expr ctx scopes) r.arg }
  | S.Scalar_subquery q -> S.Scalar_subquery (rewrite_select ctx scopes q)
  | S.In_subquery r ->
      S.In_subquery
        {
          r with
          arg = rewrite_expr ctx scopes r.arg;
          query = rewrite_select ctx scopes r.query;
        }
  | S.Exists q -> S.Exists (rewrite_select ctx scopes q)

(* Resolve a FROM table reference to its candidate concrete tables. *)
and table_candidates ctx (r : S.table_ref) : (string * Schema.t) list =
  if String.contains r.S.table '.' then
    err "database-qualified table %s cannot be mixed into a multiple query"
      r.S.table;
  let pattern = apply_subst ctx r.S.table in
  match Gdd.match_tables ctx.gdd ~db:ctx.db ~pattern with
  | [] -> skip "no table matching %s in %s" pattern ctx.db
  | ts -> ts

and rewrite_select ctx scopes (q : S.select) : S.select =
  (* inner FROM: patterns must resolve uniquely inside subqueries *)
  let resolved =
    List.map
      (fun (r : S.table_ref) ->
        match table_candidates ctx r with
        | [ (name, schema) ] -> (r, name, schema)
        | ts ->
            err "table pattern %s matches %d tables inside a nested query"
              r.S.table (List.length ts))
      q.S.from
  in
  rewrite_select_resolved ctx scopes q
    (List.map (fun (r, name, schema) -> ((r : S.table_ref), name, schema)) resolved)

(* Rewrite a SELECT whose FROM candidates are already chosen. *)
and rewrite_select_resolved ctx outer_scopes (q : S.select)
    (resolved : (S.table_ref * string * Schema.t) list) : S.select =
  let level =
    List.map
      (fun ((r : S.table_ref), name, schema) ->
        { label = Option.value r.S.alias ~default:name; schema })
      resolved
  in
  let scopes = level :: outer_scopes in
  let from =
    List.map
      (fun ((r : S.table_ref), name, _) -> { S.table = name; alias = r.S.alias })
      resolved
  in
  let projections = List.concat_map (rewrite_projection ctx scopes) q.S.projections in
  if projections = [] then skip "no projection survives in %s" ctx.db;
  {
    S.distinct = q.S.distinct;
    projections;
    from;
    where = Option.map (rewrite_expr ctx scopes) q.S.where;
    group_by = List.map (rewrite_expr ctx scopes) q.S.group_by;
    having = Option.map (rewrite_expr ctx scopes) q.S.having;
    order_by =
      List.map
        (fun (o : S.order_item) ->
          { o with S.sort_expr = rewrite_expr ctx scopes o.S.sort_expr })
        q.S.order_by;
  }

and rewrite_projection ctx scopes (p : S.projection) : S.projection list =
  match p with
  | S.Star | S.Qualified_star _ -> [ p ]
  | S.Proj_expr (S.Col { qualifier; name }, alias) -> (
      let optional = optional_marker name in
      let name = if optional then strip_optional name else name in
      let ms, pattern, qualifier = resolve_column ctx scopes ?qualifier name in
      match ms with
      | [] ->
          if optional then []
          else skip "column %s not present in %s" pattern ctx.db
      | [ (_, concrete) ] -> [ S.Proj_expr (S.Col { qualifier; name = concrete }, alias) ]
      | many ->
          (* a projection pattern expands to every matching column *)
          List.map
            (fun (_, concrete) ->
              S.Proj_expr (S.Col { qualifier; name = concrete }, alias))
            many)
  | S.Proj_expr (e, alias) -> [ S.Proj_expr (rewrite_expr ctx scopes e, alias) ]

(* ---- statement rewriting --------------------------------------------------- *)

(* cartesian product of per-ref candidate lists *)
let rec combinations = function
  | [] -> [ [] ]
  | cs :: rest ->
      let tails = combinations rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) cs

let rewrite_dml_target ctx table =
  let pattern = apply_subst ctx table in
  match Gdd.match_tables ctx.gdd ~db:ctx.db ~pattern with
  | [] -> skip "no table matching %s in %s" pattern ctx.db
  | ts -> ts

let unique_column ctx schema ~table name =
  let pattern = apply_subst ctx name in
  match Gdd.match_columns schema ~pattern with
  | [ c ] -> c
  | [] -> skip "column %s not in %s.%s" pattern ctx.db table
  | _ :: _ :: _ -> err "column pattern %s ambiguous in %s.%s" pattern ctx.db table

let rewrite_stmt ctx (stmt : S.stmt) : S.stmt list =
  match stmt with
  | S.Select q ->
      let candidate_lists = List.map (table_candidates ctx) q.S.from in
      let combos = combinations candidate_lists in
      let for_combo combo =
        let resolved =
          List.map2 (fun r (name, schema) -> (r, name, schema)) q.S.from combo
        in
        match rewrite_select_resolved ctx [] q resolved with
        | q' -> Some (S.Select q')
        | exception Not_pertinent _ -> None
      in
      let stmts = List.filter_map for_combo combos in
      if stmts = [] then skip "no pertinent combination in %s" ctx.db else stmts
  | S.Update { table; assignments; where } ->
      rewrite_dml_target ctx table
      |> List.map (fun (tname, schema) ->
             let scopes = [ [ { label = tname; schema } ] ] in
             let assignments =
               List.map
                 (fun (c, e) ->
                   (unique_column ctx schema ~table:tname c, rewrite_expr ctx scopes e))
                 assignments
             in
             S.Update
               {
                 table = tname;
                 assignments;
                 where = Option.map (rewrite_expr ctx scopes) where;
               })
  | S.Delete { table; where } ->
      rewrite_dml_target ctx table
      |> List.map (fun (tname, schema) ->
             let scopes = [ [ { label = tname; schema } ] ] in
             S.Delete
               { table = tname; where = Option.map (rewrite_expr ctx scopes) where })
  | S.Insert { table; columns; source } ->
      rewrite_dml_target ctx table
      |> List.map (fun (tname, schema) ->
             let columns =
               Option.map
                 (List.map (fun c -> unique_column ctx schema ~table:tname c))
                 columns
             in
             let source =
               match source with
               | S.Values rows ->
                   S.Values (List.map (List.map (rewrite_expr ctx [])) rows)
               | S.Query q -> S.Query (rewrite_select ctx [] q)
             in
             S.Insert { table = tname; columns; source })
  | S.Create_table _ | S.Create_view _ | S.Create_index _ ->
      (* table/view/index definition in multiple databases: replicate
         verbatim *)
      [ stmt ]
  | S.Drop_view _ | S.Drop_index _ -> [ stmt ]
  | S.Drop_table { table } ->
      rewrite_dml_target ctx table
      |> List.map (fun (tname, _) -> S.Drop_table { table = tname })
  | S.Begin_txn | S.Commit_txn | S.Rollback_txn | S.Prepare_txn ->
      err "transaction control statements are not multiple queries"

(* ---- global (database-qualified) queries ----------------------------------- *)

let split_db_table name =
  match String.index_opt name '.' with
  | Some i ->
      Some (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | None -> None

let resolve_global gdd (q : Ast.query) (sel : S.select) =
  let scope_db name =
    match Ast.find_in_scope q.Ast.scope name with
    | Some u -> u.Ast.db
    | None -> err "database %s is not in the USE scope" name
  in
  let resolve_ref (r : S.table_ref) =
    match split_db_table r.S.table with
    | Some (dbname, table) -> (
        if Like.has_wildcard table then
          err "patterns cannot be combined with database-qualified tables";
        let db = scope_db dbname in
        match Gdd.find_table gdd ~db table with
        | Some schema ->
            {
              gdb = db;
              gtable = table;
              galias = r.S.alias;
              gschema = schema;
              gcard = Gdd.cardinality gdd ~db ~table;
            }
        | None -> err "table %s not found in database %s" table db)
    | None -> (
        if Like.has_wildcard r.S.table then
          err "patterns cannot be combined with database-qualified tables";
        let hits =
          List.filter_map
            (fun (u : Ast.use_item) ->
              Gdd.find_table gdd ~db:u.Ast.db r.S.table
              |> Option.map (fun schema -> (u.Ast.db, schema)))
            q.Ast.scope
        in
        match hits with
        | [ (db, schema) ] ->
            {
              gdb = db;
              gtable = r.S.table;
              galias = r.S.alias;
              gschema = schema;
              gcard = Gdd.cardinality gdd ~db ~table:r.S.table;
            }
        | [] -> err "table %s not found in any scope database" r.S.table
        | _ :: _ :: _ ->
            err "table %s exists in several scope databases; qualify it" r.S.table)
  in
  let grefs = List.map resolve_ref sel.S.from in
  let from =
    List.map2
      (fun (r : S.table_ref) g -> { S.table = g.gtable; alias = r.S.alias })
      sel.S.from grefs
  in
  ({ sel with S.from }, grefs)

(* ---- entry point ------------------------------------------------------------ *)

let has_db_qualified_tables (stmt : S.stmt) =
  let of_select (s : S.select) =
    List.exists (fun (r : S.table_ref) -> String.contains r.S.table '.') s.S.from
  in
  match stmt with
  | S.Select s -> of_select s
  | S.Insert { table; source; _ } ->
      String.contains table '.'
      || (match source with S.Query q -> of_select q | S.Values _ -> false)
  | S.Update { table; _ } | S.Delete { table; _ } | S.Drop_table { table } ->
      String.contains table '.'
  | S.Create_table _ | S.Create_view _ | S.Drop_view _ | S.Create_index _
  | S.Drop_index _ | S.Begin_txn | S.Commit_txn | S.Rollback_txn
  | S.Prepare_txn ->
      false

let expand gdd (q : Ast.query) : expansion =
  List.iter
    (fun (u : Ast.use_item) ->
      if not (Gdd.has_database gdd u.Ast.db) then
        err "database %s is not known to the GDD (IMPORT it first)" u.Ast.db)
    q.Ast.scope;
  if has_db_qualified_tables q.Ast.body then begin
    match q.Ast.body with
    | S.Select sel ->
        let gselect, grefs = resolve_global gdd q sel in
        Global { gselect; grefs }
    | S.Insert { table; columns; source = S.Query src } ->
        (* data transfer: resolve the target database, then the source as a
           global query *)
        let tuse, ttable =
          match split_db_table table with
          | Some (dbname, bare) -> (
              match Ast.find_in_scope q.Ast.scope dbname with
              | Some u -> (u, bare)
              | None -> err "database %s is not in the USE scope" dbname)
          | None -> (
              let hits =
                List.filter
                  (fun (u : Ast.use_item) ->
                    Gdd.find_table gdd ~db:u.Ast.db table <> None)
                  q.Ast.scope
              in
              match hits with
              | [ u ] -> (u, table)
              | [] -> err "table %s not found in any scope database" table
              | _ :: _ :: _ ->
                  err "table %s exists in several scope databases; qualify it"
                    table)
        in
        (match Gdd.find_table gdd ~db:tuse.Ast.db ttable with
        | Some _ -> ()
        | None -> err "table %s not found in database %s" ttable tuse.Ast.db);
        let gselect, grefs = resolve_global gdd q src in
        Transfer
          {
            tdb = tuse.Ast.db;
            tuse;
            ttable;
            tcolumns = columns;
            gselect;
            grefs;
          }
    | S.Update { table; _ } | S.Delete { table; _ } | S.Insert { table; _ }
    | S.Drop_table { table } -> (
        (* a database-qualified DML targets exactly one database *)
        match split_db_table table with
        | Some (dbname, bare) -> (
            match Ast.find_in_scope q.Ast.scope dbname with
            | None -> err "database %s is not in the USE scope" dbname
            | Some u ->
                let rewrite_target (stmt : S.stmt) : S.stmt =
                  match stmt with
                  | S.Update r -> S.Update { r with table = bare }
                  | S.Delete r -> S.Delete { r with table = bare }
                  | S.Insert r -> S.Insert { r with table = bare }
                  | S.Drop_table _ -> S.Drop_table { table = bare }
                  | _ -> stmt
                in
                let ctx =
                  {
                    db = u.Ast.db;
                    gdd;
                    subst = substitution_for gdd ~db:u.Ast.db q.Ast.lets;
                  }
                in
                (match rewrite_stmt ctx (rewrite_target q.Ast.body) with
                | stmts -> Replicated [ { edb = u.Ast.db; use = u; stmts } ]
                | exception Not_pertinent m -> err "%s" m))
        | None -> assert false)
    | S.Create_table _ | S.Create_view _ | S.Drop_view _ | S.Create_index _
    | S.Drop_index _ | S.Begin_txn | S.Commit_txn | S.Rollback_txn
    | S.Prepare_txn ->
        err "unsupported database-qualified statement"
  end
  else
    let per_db (u : Ast.use_item) =
      let ctx =
        { db = u.Ast.db; gdd; subst = substitution_for gdd ~db:u.Ast.db q.Ast.lets }
      in
      match rewrite_stmt ctx q.Ast.body with
      | stmts -> Some { edb = u.Ast.db; use = u; stmts }
      | exception Not_pertinent _ -> None
    in
    let elems = List.filter_map per_db q.Ast.scope in
    if elems = [] then
      err "query is not pertinent for any database in its scope"
    else Replicated elems
