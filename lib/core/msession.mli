(** The multidatabase session: the top of Figure 1.

    A session owns the Auxiliary Dictionary, the Global Data Dictionary,
    the Narada resource directory and the simulated network. [exec] runs
    the full §4.3 pipeline on MSQL text: parse → multiple-identifier
    substitution → disambiguation → decomposition → DOL plan generation →
    execution by the DOL engine; [translate] stops after plan generation
    and returns the DOL program, like the paper's translator. *)

(** Outcome of a multiple update with respect to its vital set (§3.2.1):
    [Success] — every VITAL subquery committed; [Aborted] — every VITAL
    subquery was rolled back or compensated; [Incorrect] — the vital set
    split (some committed, some not, or a state is unknown after a site
    failure). *)
type update_outcome = Success | Aborted | Incorrect

type db_report = {
  rdb : string;  (** database *)
  rvital : Ast.vital;
  rstatus : Narada.Dol_ast.status;  (** final task status *)
  raffected : int option;  (** rows affected, when the task ran *)
}

type result =
  | Multitable of Multitable.t  (** retrieval result *)
  | Update_report of {
      outcome : update_outcome;
      details : db_report list;
      dolstatus : int;
      elapsed_ms : float;
    }
  | Mtx_report of {
      chosen : int option;  (** 0-based index of the acceptable state
                                 reached; [None] when the multitransaction
                                 failed and was fully undone *)
      incorrect : bool;  (** an unacceptable mixed state was reached *)
      details : db_report list;
      elapsed_ms : float;
    }
  | Info of string  (** INCORPORATE / IMPORT acknowledgement *)

type cache_stats = Metrics.cache_stats = {
  pool_hits : int;  (** OPENs served by an idle pooled connection *)
  pool_misses : int;  (** OPENs that dialed *)
  pool_discarded : int;  (** pooled connections dropped as stale *)
  pool_conflicts : int;  (** checkouts refused at the connection cap *)
  plan_hits : int;  (** statements served a memoized compiled plan *)
  plan_misses : int;  (** statements planned from scratch *)
  result_hits : int;  (** MOVEs served from the shipped-result cache *)
  result_misses : int;  (** MOVEs that shipped over the network *)
}

type t

val create :
  ?world:Netsim.World.t ->
  ?directory:Narada.Directory.t ->
  ?ad:Ad.t ->
  ?gdd:Gdd.t ->
  unit ->
  t
(** A session over (by default) a fresh world, directory and dictionary
    pair. A server passes one shared [?ad]/[?gdd] to every member
    session — the dictionaries {e are} the shared global schema, and
    sharing the instances is what makes cross-session cache keys (which
    embed {!Gdd.id} and the version epochs) comparable. *)

val world : t -> Netsim.World.t

val current_scope : t -> Ast.use_item list
(** The session's current scope: the effective scope of the last executed
    query. [USE CURRENT db ...] statements extend it; plain [USE]
    statements replace it. *)

val directory : t -> Narada.Directory.t
val ad : t -> Ad.t
val gdd : t -> Gdd.t

val incorporate_auto : t -> service:string -> (unit, string) Stdlib.result
(** Incorporate a service with an AD entry derived from its actual engine
    capabilities (and its directory site). *)

val import_all : t -> service:string -> (unit, string) Stdlib.result
(** IMPORT DATABASE <service's db> FROM SERVICE <service>. *)

val exec_toplevel : t -> Ast.toplevel -> (result, string) Stdlib.result
val exec : t -> string -> (result, string) Stdlib.result
(** Parse and execute one top-level MSQL statement. *)

val exec_script : t -> string -> (result list, string) Stdlib.result

val translate : t -> string -> (Narada.Dol_ast.program, string) Stdlib.result
(** MSQL → DOL translation only (no execution); the paper's translator
    output for the statement. *)

val run_query : t -> Ast.query -> (result, string) Stdlib.result
val run_mtx : t -> Ast.multitransaction -> (result, string) Stdlib.result

(** {2 Stepped execution}

    The interleaving harness ({!Interleave}) runs several sessions'
    statements against shared sites one DOL statement at a time, under a
    deterministic schedule. {!prepare_text} runs phases 1–4 of the
    pipeline (parse → expansion → decomposition → plan generation) and
    starts a stepped engine run without executing anything; each {!step}
    executes one top-level DOL statement; {!finish} drains whatever
    remains, runs the engine epilogue (in-doubt resolution, split
    settlement, connection release) and interprets the outcome exactly
    as {!exec} would. Interdatabase triggers do {e not} fire on this
    path. *)

type prepared

val prepare_text : t -> string -> (prepared, string) Stdlib.result
(** Plan one MSQL query or multitransaction for stepped execution.
    Statements with no DOL translation (EXPLAIN, dictionary and trigger
    statements) are rejected. *)

val step : prepared -> bool
(** Execute the next DOL statement; [false] when the program is
    exhausted and only {!finish} remains (see {!Narada.Engine.step}). *)

val finish : prepared -> (result, string) Stdlib.result
(** Drain remaining statements, run the epilogue and interpret the
    outcome. Idempotent at the engine level; interpret runs per call. *)

val prepared_services : prepared -> string list
(** The statement's site footprint: every service its DOL program OPENs
    (lowercased, sorted, deduplicated — including OPENs nested in
    PARBEGIN and IF arms). Statements with disjoint footprints touch
    disjoint LDBMS instances, which is the server scheduler's condition
    for running them concurrently. *)

val prepared_move_dsts : prepared -> string list
(** The services the program's MOVEs ship into — where it creates
    temporary tables ([msql_tmp_<k>], named per plan, not per session).
    Empty for single-database statements and replicated updates. The
    server's serial scheduler refuses to interleave two statements whose
    MOVE destinations intersect: their temp-table names would collide. *)

val prepared_session : prepared -> t

val set_trace : t -> (string -> unit) option -> unit
(** Install an execution-trace sink: every DOL engine coordination event
    of subsequent queries is passed to it (see {!Narada.Engine.run}). *)

val set_typed_trace : t -> (Narada.Trace.event -> unit) option -> unit
(** Install a {e typed} trace sink: the same event stream as {!set_trace}
    but as {!Narada.Trace.event} values (plus pool validation events),
    before rendering. Both sinks may be installed at once. The session's
    {!metrics} registry observes the stream regardless. *)

val set_trace_tag : t -> string option -> unit
(** Stamp every subsequently observed trace event with this tag (unless
    the event already carries one) before it reaches the registry and
    the typed sink. The server tags each member session with its session
    id, so the merged multi-session event stream stays attributable.
    {!Narada.Trace.render} ignores tags — the textual trace is
    unchanged. *)

val trace_tag : t -> string option

val metrics : t -> Metrics.t
(** The session's metrics registry: planning counters bumped by the
    pipeline, engine counters folded from the typed trace stream and the
    engine outcomes. Live — read at any time, {!Metrics.reset} to zero. *)

val metrics_json : t -> string
(** {!Metrics.to_json} of the registry against the session's world and
    {!cache_stats} — one self-contained JSON document. *)

val explain_multiple : t -> Ast.query -> (result, string) Stdlib.result
(** [EXPLAIN MULTIPLE <query>]: run phases 1–4 (scope resolution,
    expansion, decomposition with the semijoin cost decision, DOL plan
    generation) and return an [Info] rendering every phase, without
    executing anything — the world's clock and message counters do not
    move. Like execution, it persists the effective scope. *)

val set_retry_policy : t -> Narada.Retry_policy.t option -> unit
(** Override the retry policy applied to every LAM operation of
    subsequent queries ([None] restores {!Narada.Retry_policy.default}). *)

val last_engine_outcome : t -> Narada.Engine.outcome option
(** The full engine outcome of the last executed statement, including the
    fault-tolerance counters (retries, recovered, in-doubt, vital split). *)

val set_dataflow : t -> bool -> unit
(** Enable the dataflow wave scheduler ({!Narada.Dol_graph} via
    {!Narada.Dol_opt.dataflow}) on generated plans — default {b on}; the
    [MSQL_TEST_DATAFLOW] environment variable ([0]/[false]/[off] to
    disable) sets the default for CI legs. The pass regroups each DOL
    program into maximal order-preserving [PARBEGIN] waves, so statuses,
    results and database state are byte-identical to the unscheduled
    program while independent statements' virtual latencies max-merge
    instead of summing. Affects plan generation, so it participates in
    the plan-cache key. *)

val dataflow_enabled : t -> bool

val set_optimize : t -> bool -> unit
(** Enable the DOL optimizer ({!Narada.Dol_opt}) on generated plans
    (default: off, so that translated programs match the paper's shape;
    the optimizer is §5's future-work direction and is benchmarked as an
    ablation). *)

val optimize_enabled : t -> bool

val set_semijoin : t -> bool -> unit
(** Enable the cost-gated semijoin reduction of shipped subqueries
    (default: on). The gate only fires when the GDD has cardinalities for
    the involved tables, recorded at IMPORT time; see
    {!Decompose.decompose}. *)

val semijoin_enabled : t -> bool

(** {2 Session performance layer}

    Three independent reuse mechanisms, each off by default so that
    translated programs and traffic match the paper's per-statement shape
    unless asked otherwise. All are exercised as ablations by bench P10. *)

val set_pooling : t -> bool -> unit
(** Keep LAM connections in a {!Narada.Pool} owned by the session: OPEN
    checks out an idle healthy connection instead of dialing and CLOSE
    parks it instead of hanging up. Stale connections (site down while
    idle, orphaned transaction) are validated out at checkout. Disabling
    drains the pool. *)

val pooling_enabled : t -> bool

val set_shared_pool : t -> Narada.Pool.t -> unit
(** Attach a pool owned by someone else (the server): OPEN/CLOSE check
    out of and into it like {!set_pooling}, but the session never drains
    it — other sessions' parked connections live there too — and the
    pool's trace sink is left to its owner. A previously owned private
    pool is drained first. *)

(** {2 Cross-session sharing}

    A server multiplexing many sessions over one federation shares three
    things besides the world: the dictionaries (via {!create}'s
    [?ad]/[?gdd]), the LAM connection pool ({!set_shared_pool}) and the
    statement caches below. *)

type shared_caches
(** A communal compiled-plan + shipped-result cache block, mutex-guarded
    so member sessions may execute on different domains. Epoch
    invalidation is unchanged: keys embed {!Gdd.id} and the dictionary
    versions, and shipped entries are stamped with the storing session's
    dictionary epoch, so an IMPORT invalidates for every sharer at
    once. *)

val shared_caches : unit -> shared_caches

val set_shared_caches : t -> shared_caches -> unit
(** Attach the session to a communal cache block and enable both cache
    layers. Per-session hit/miss counters keep counting locally, so
    {!cache_stats} still reports each session's own traffic. *)

val set_domains : t -> int -> unit
(** Execute eligible PARBEGIN blocks of engine programs on [n] OCaml
    domains (a process-wide {!Narada.Dpool} of that width, shared across
    sessions). Clamped to at least 1; [1] (the default) keeps everything
    on the calling domain. Results, typed traces and virtual-time
    accounting are identical at any width — only wall-clock time changes
    (see {!Narada.Engine.run}). The initial value is read from the
    [MSQL_TEST_DOMAINS] environment variable, which lets a CI matrix run
    the whole suite under domain execution. *)

val domains : t -> int

val set_parallel_exec :
  ?enabled:bool ->
  ?min_rows:int ->
  ?max_partitions:int ->
  ?width:int ->
  unit ->
  unit
(** Configure intra-operator parallelism at the LDBMS sites (partitioned
    parallel hash joins and chunked WHERE scans) — a process-wide
    executor knob, forwarded to {!Ldbms.Exec.set_parallel_exec}. Results,
    traces and metrics are identical at any setting; parallel executions
    surface as {!Narada.Trace.Parallel} events and in the metrics JSON's
    [engine.parallel] object. *)

val parallel_exec_enabled : unit -> bool

val set_plan_cache : t -> bool -> unit
(** Memoize plan generation, keyed on the effective-scope statement, the
    planner flags and the {!Gdd.version}/{!Ad.version} epochs — any
    IMPORT, INCORPORATE or CREATE/DROP MULTIDATABASE therefore misses.
    Disabling clears the cache. *)

val plan_cache_enabled : t -> bool

val set_result_cache : t -> bool -> unit
(** Cache the relation each MOVE ships, keyed on (source, destination,
    shipped SQL after semijoin reduction — the key set is part of the
    text). A hit moves zero bytes. Entries are dropped when a committed
    update reports affected rows against their source or destination
    database, and on any dictionary change. Disabling clears the cache. *)

val result_cache_enabled : t -> bool

val cache_stats : t -> cache_stats
(** Hit/miss counters of all three layers (zeros where a layer is off). *)

val triggers : t -> (string * Ast.trigger_def) list
(** Registered interdatabase triggers, in creation order. *)

val trigger_log : t -> string list
(** Firing log (oldest first): one entry per condition evaluation that
    fired an action, plus entries for refused or failed actions. *)

val update_outcome_to_string : update_outcome -> string
val result_to_string : result -> string
