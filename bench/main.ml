(* Benchmark harness: regenerates every experiment in DESIGN.md's index.

   Part 1 prints deterministic experiment tables (simulated-network latency,
   message and byte counts) for the paper's worked examples E1–E5 and for
   the performance claims P1–P14. Part 2 runs a Bechamel wall-clock suite
   over the processing pipeline (parse, expand, translate, execute). The
   perf-critical tables (P4, P9–P14) are also recorded in BENCH_perf.json.

   Run with:  dune exec bench/main.exe
   CI smoke:  dune exec bench/main.exe -- --perf-smoke
              (P4/P9/P10/P11/P12/P13/P14)
   Profiling: dune exec bench/main.exe -- --p10-one CONFIG[,CONFIG...]
              (single P10 configuration; P10_ROWS / P10_N override size) *)

open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession
module D = Narada.Dol_ast

let line = String.make 72 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* run one MSQL statement on a fresh fixture; report virtual metrics *)
let run_fresh ?caps sql =
  let fx = F.make ?caps () in
  Netsim.World.reset_stats fx.F.world;
  Netsim.World.reset_clock fx.F.world;
  let outcome =
    match M.exec fx.F.session sql with
    | Ok (M.Multitable mt) ->
        Printf.sprintf "multitable (%d parts, %d rows)"
          (List.length (Msql.Multitable.parts mt))
          (Msql.Multitable.total_rows mt)
    | Ok r -> M.result_to_string r |> String.split_on_char '\n' |> List.hd
    | Error m -> "error: " ^ m
  in
  let st = Netsim.World.stats fx.F.world in
  (outcome, Netsim.World.now_ms fx.F.world, st.Netsim.World.messages,
   st.Netsim.World.bytes_moved)

let e1 = {|USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, ~rate FROM car WHERE status = 'available'|}

let e2 = {|USE continental delta united
UPDATE flight% SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}

let e3 = {|USE continental VITAL delta united VITAL
UPDATE flight% SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}

let e4 = e3 ^ {|
COMP continental
UPDATE flights SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'|}

let e5 = {|BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
  UPDATE cartab SET cstat = 'TAKEN', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
COMMIT
  continental AND national
  delta AND avis
END MULTITRANSACTION|}

let paper_examples () =
  header "E1-E5: the paper's worked examples (fresh federation each)";
  Printf.printf "%-28s %-44s %10s %6s %8s\n" "experiment" "outcome"
    "virt ms" "msgs" "bytes";
  let autocommit_cont = [ ("continental", Ldbms.Capabilities.sybase_like) ] in
  let row name ?caps sql =
    let outcome, ms, msgs, bytes = run_fresh ?caps sql in
    Printf.printf "%-28s %-44s %10.2f %6d %8d\n" name outcome ms msgs bytes
  in
  row "E1 multiple SELECT" e1;
  row "E2 multiple update" e2;
  row "E3 vital update (2PC)" e3;
  row "E4 update w/ COMP" ~caps:autocommit_cont e4;
  row "E5 multitransaction" e5

(* ---- P1: parallel vs sequential task execution -------------------------------- *)

(* strip PARBEGIN/PAREND blocks: the sequential baseline *)
let rec sequentialize (p : D.program) : D.program =
  List.concat_map
    (function
      | D.Parallel stmts -> sequentialize stmts
      | D.If (c, a, b) -> [ D.If (c, sequentialize a, sequentialize b) ]
      | s -> [ s ])
    p

let fleet_update n =
  let dbs = List.init n (fun i -> Printf.sprintf "airline%d" (i + 1)) in
  Printf.sprintf
    "USE %s UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'"
    (String.concat " " dbs)

let run_program fx prog =
  Netsim.World.reset_clock fx.F.world;
  Netsim.World.reset_stats fx.F.world;
  match
    Narada.Engine.run ~directory:fx.F.directory ~world:fx.F.world prog
  with
  | Ok o -> (o.Narada.Engine.elapsed_ms, (Netsim.World.stats fx.F.world).Netsim.World.messages)
  | Error m -> failwith m

let p1_parallelism () =
  header
    "P1: parallel vs sequential execution of a multiple update (\xc2\xa74.3/\xc2\xa75 claim)";
  Printf.printf "%-6s %14s %14s %9s\n" "dbs" "parallel ms" "sequential ms" "speedup";
  List.iter
    (fun n ->
      let fx = F.airline_fleet ~n () in
      let prog =
        match M.translate fx.F.session (fleet_update n) with
        | Ok p -> p
        | Error m -> failwith m
      in
      let par_ms, _ = run_program fx prog in
      let fx2 = F.airline_fleet ~n () in
      let seq_ms, _ = run_program fx2 (sequentialize prog) in
      Printf.printf "%-6d %14.2f %14.2f %8.2fx\n" n par_ms seq_ms (seq_ms /. par_ms))
    [ 1; 2; 4; 6; 8; 12 ]

(* ---- P2: cost of the vital set (2PC rounds) ------------------------------------ *)

let p2_vital_overhead () =
  header "P2: 2PC synchronization cost vs vital-set size (\xc2\xa73.2.2)";
  Printf.printf "%-10s %10s %8s\n" "vital dbs" "virt ms" "msgs";
  let n = 6 in
  List.iter
    (fun k ->
      let fx = F.airline_fleet ~n () in
      let dbs =
        List.init n (fun i ->
            let name = Printf.sprintf "airline%d" (i + 1) in
            if i < k then name ^ " VITAL" else name)
      in
      let sql =
        Printf.sprintf
          "USE %s UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'"
          (String.concat " " dbs)
      in
      Netsim.World.reset_clock fx.F.world;
      Netsim.World.reset_stats fx.F.world;
      (match M.exec fx.F.session sql with
      | Ok _ -> ()
      | Error m -> failwith m);
      let st = Netsim.World.stats fx.F.world in
      Printf.printf "%-10d %10.2f %8d\n" k
        (Netsim.World.now_ms fx.F.world)
        st.Netsim.World.messages)
    [ 0; 1; 2; 3; 4; 5; 6 ]

(* ---- P3: decomposition pipeline scaling ------------------------------------------ *)

let time_us f =
  let t0 = Unix.gettimeofday () in
  let iters = 200 in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int iters

let p3_decomposition_scaling () =
  header "P3: substitution+disambiguation+translation cost vs scope size";
  Printf.printf "%-6s %16s\n" "dbs" "translate us";
  List.iter
    (fun n ->
      let fx = F.airline_fleet ~n () in
      let sql = fleet_update n in
      let us =
        time_us (fun () ->
            match M.translate fx.F.session sql with
            | Ok p -> p
            | Error m -> failwith m)
      in
      Printf.printf "%-6d %16.1f\n" n us)
    [ 1; 2; 4; 8; 16; 32 ]

(* ---- P4: data shipping under decomposition vs naive shipping --------------------- *)

let p4_setup rows =
  let world = Netsim.World.create () in
  Netsim.World.add_site world (Netsim.Site.make "w1");
  Netsim.World.add_site world (Netsim.Site.make "w2");
  let directory = Narada.Directory.create () in
  let session = M.create ~world ~directory () in
  let col = Schema.column in
  let wholesale = Ldbms.Database.create "wholesale" in
  Ldbms.Database.load wholesale ~name:"parts"
    [ col "pid" Ty.Int; col ~width:40 "pname" Ty.Str; col "price" Ty.Float;
      col ~width:10 "origin" Ty.Str ]
    (List.init rows (fun i ->
         [| Value.Int i;
            Value.Str (Printf.sprintf "part-%04d-with-a-long-descriptive-name" i);
            Value.Float (float_of_int (i mod 100));
            Value.Str (if i mod 2 = 0 then "domestic" else "imported") |]));
  let retail = Ldbms.Database.create "retail" in
  (* sales reference only a sliver of the catalogue: the realistic skew
     that makes a semijoin worthwhile — most parts are never asked about *)
  Ldbms.Database.load retail ~name:"sales"
    [ col "sid" Ty.Int; col "part_id" Ty.Int; col "qty" Ty.Int;
      col "comment" Ty.Str ]
    (List.init rows (fun i ->
         [| Value.Int (10000 + i); Value.Int (i mod (max 1 (rows / 16)));
            Value.Int (1 + (i mod 5));
            Value.Str "routine restocking order placed by the branch office" |]));
  Narada.Directory.register directory
    (Narada.Service.make ~site:"w1" ~caps:Ldbms.Capabilities.ingres_like wholesale);
  Narada.Directory.register directory
    (Narada.Service.make ~site:"w2" ~caps:Ldbms.Capabilities.ingres_like retail);
  List.iter
    (fun svc ->
      (match M.incorporate_auto session ~service:svc with
      | Ok () -> ()
      | Error m -> failwith m);
      match M.import_all session ~service:svc with
      | Ok () -> ()
      | Error m -> failwith m)
    [ "wholesale"; "retail" ];
  (session, world)

let p4_query max_price =
  Printf.sprintf
    {|USE wholesale retail
SELECT s.sid, p.pname, s.qty
FROM retail.sales s, wholesale.parts p
WHERE s.part_id = p.pid AND p.price < %d|}
    max_price

(* naive baseline: ship the whole remote relation, filter at coordinator *)
let p4_naive_program max_price =
  Printf.sprintf
    {|DOLBEGIN
  OPEN retail AT w2 AS retail;
  OPEN wholesale AT w1 AS wholesale;
  MOVE m_wholesale FROM wholesale TO retail TABLE naive_tmp
    { SELECT * FROM parts }
  ENDMOVE;
  TASK t_q FOR retail
    { SELECT s.sid AS sid, naive_tmp.pname AS pname, s.qty AS qty
      FROM sales s, naive_tmp
      WHERE s.part_id = naive_tmp.pid AND naive_tmp.price < %d }
  ENDTASK;
  TASK t_clean FOR retail { DROP TABLE naive_tmp } ENDTASK;
  DOLSTATUS = 0;
  CLOSE retail wholesale;
DOLEND|}
    max_price

type p4_row = {
  sel : int;  (* predicate selectivity, percent *)
  sj_bytes : int;  (* decomposed, semijoin reduction on *)
  sj_ms : float;
  dc_bytes : int;  (* decomposed, reduction off *)
  dc_ms : float;
  na_bytes : int;  (* naive ship-all baseline *)
  na_ms : float;
}

let p4_shipping () =
  header "P4: bytes shipped to the coordinator vs predicate selectivity";
  Printf.printf "%-12s %12s %9s %12s %9s %12s %9s\n" "selectivity"
    "semijoin B" "ms" "decomp B" "ms" "ship-all B" "ms";
  let rows = 200 in
  let decomposed ~semijoin max_price =
    let session, world = p4_setup rows in
    M.set_semijoin session semijoin;
    Netsim.World.reset_stats world;
    Netsim.World.reset_clock world;
    (match M.exec session (p4_query max_price) with
    | Ok _ -> ()
    | Error m -> failwith m);
    ((Netsim.World.stats world).Netsim.World.bytes_moved,
     Netsim.World.now_ms world)
  in
  List.map
    (fun max_price ->
      let sj_bytes, sj_ms = decomposed ~semijoin:true max_price in
      let dc_bytes, dc_ms = decomposed ~semijoin:false max_price in
      let session2, world2 = p4_setup rows in
      Netsim.World.reset_stats world2;
      Netsim.World.reset_clock world2;
      (match
         Narada.Engine.run_text
           ~directory:(M.directory session2)
           ~world:world2
           (p4_naive_program max_price)
       with
      | Ok _ -> ()
      | Error m -> failwith m);
      let na_bytes = (Netsim.World.stats world2).Netsim.World.bytes_moved in
      let na_ms = Netsim.World.now_ms world2 in
      Printf.printf "%-12s %12d %9.2f %12d %9.2f %12d %9.2f\n"
        (Printf.sprintf "%d%%" max_price)
        sj_bytes sj_ms dc_bytes dc_ms na_bytes na_ms;
      { sel = max_price; sj_bytes; sj_ms; dc_bytes; dc_ms; na_bytes; na_ms })
    [ 5; 25; 50; 75; 100 ]

(* ---- P9: hash-join executor vs naive product (local engine) ---------------------- *)

type p9_row = { jrows : int; hash_ns : float; product_ns : float }

let time_once_ns f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  (Unix.gettimeofday () -. t0) *. 1e9

let p9_setup n =
  let db = Ldbms.Database.create "w" in
  let col = Schema.column in
  Ldbms.Database.load db ~name:"build_side"
    [ col "b" Ty.Int; col "bk" Ty.Int ]
    (List.init n (fun i -> [| Value.Int i; Value.Int (i * 7 mod n) |]));
  Ldbms.Database.load db ~name:"probe_side"
    [ col "p" Ty.Int; col "pk" Ty.Int ]
    (List.init n (fun i -> [| Value.Int i; Value.Int i |]));
  Ldbms.Session.connect db Ldbms.Capabilities.ingres_like

let p9_join_scaling () =
  header "P9: hash-join executor vs filtered product (local engine, wall time)";
  Printf.printf "%-10s %16s %16s %9s\n" "rows" "hash ns" "product ns" "speedup";
  let sql = "SELECT b.b, p.p FROM build_side b, probe_side p WHERE b.bk = p.pk" in
  List.map
    (fun n ->
      let session = p9_setup n in
      let run () =
        match Ldbms.Session.exec_sql session sql with
        | Ok r -> r
        | Error m -> failwith m
      in
      let timed enabled =
        Ldbms.Exec.set_join_planner enabled;
        (* best of three: the product at 5000x5000 materializes 25M rows,
           so a single pass per attempt is all we can afford *)
        let t = ref infinity in
        for _ = 1 to 3 do
          t := Float.min !t (time_once_ns run)
        done;
        !t
      in
      let hash_ns = timed true in
      let product_ns = timed false in
      Ldbms.Exec.set_join_planner true;
      Printf.printf "%-10d %16.0f %16.0f %8.1fx\n" n hash_ns product_ns
        (product_ns /. hash_ns);
      { jrows = n; hash_ns; product_ns })
    [ 200; 1000; 5000 ]

(* ---- P10: session reuse layer ablation ------------------------------------ *)

(* A long-lived session executing a Zipf-skewed mix of repeated global
   joins over three sites — the workload the session performance layer is
   built for. Each ablation turns on one more reuse mechanism (connection
   pool, compiled-plan cache, shipped-result cache) and replays the exact
   same statement sequence.

   Measurement: each configuration is timed over several fresh-session
   repetitions and the best run is reported (min-time estimator). A
   single-shot timing of this region — tens of milliseconds at smoke
   size — is dominated by scheduler and hypervisor noise: one preempted
   quantum shifts the throughput by 30%, which is exactly how an earlier
   published run showed the pool configuration "slower" than all-off
   despite moving 25% fewer messages. Profiling the checkout/checkin
   path (gprofng + interleaved CPU timing) showed its CPU cost is
   indistinguishable from dialing; the traffic counters are
   deterministic and identical across repetitions. *)

type p10_row = {
  p10_config : string;
  p10_sps : float;  (* statements per wall-clock second *)
  p10_virt_ms : float;
  p10_bytes : int;
  p10_msgs : int;
  p10_pool_hits : int;
  p10_plan_hits : int;
  p10_result_hits : int;
}

(* three sites: a small hub of sales orders plus two large catalogues; the
   hub owns the first reference of every query, so it coordinates and the
   big relations are what ships *)
let p10_world ~rows =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let col = Schema.column in
  let catalogue_schema =
    [ col "rid" Ty.Int; col ~width:40 "rname" Ty.Str; col "price" Ty.Float ]
  in
  let catalogue n =
    List.init rows (fun i ->
        [| Value.Int i;
           Value.Str (Printf.sprintf "%s-%05d-with-a-long-catalogue-entry" n i);
           Value.Float (float_of_int ((i * 13) mod 100)) |])
  in
  let hub = Ldbms.Database.create "hub" in
  Ldbms.Database.load hub ~name:"sales"
    [ col "sid" Ty.Int; col "part_id" Ty.Int; col "qty" Ty.Int ]
    (List.init (max 8 (rows / 32)) (fun i ->
         [| Value.Int i; Value.Int ((i * 7) mod rows); Value.Int (1 + (i mod 9)) |]));
  let depot = Ldbms.Database.create "depot" in
  Ldbms.Database.load depot ~name:"parts" catalogue_schema (catalogue "part");
  let mill = Ldbms.Database.create "mill" in
  Ldbms.Database.load mill ~name:"supplies" catalogue_schema (catalogue "sup");
  List.iter
    (fun (site, db) ->
      Netsim.World.add_site world (Netsim.Site.make site);
      Narada.Directory.register directory
        (Narada.Service.make ~site ~caps:Ldbms.Capabilities.ingres_like db))
    [ ("h1", hub); ("d2", depot); ("m3", mill) ];
  (world, directory)

let p10_setup ~rows =
  let world, directory = p10_world ~rows in
  let session = M.create ~world ~directory () in
  List.iter
    (fun name ->
      (match M.incorporate_auto session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m);
      match M.import_all session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m)
    [ "hub"; "depot"; "mill" ];
  (session, world)

(* the statement mix: 20 distinct templates, half against each catalogue,
   drawn Zipf-fashion so a handful of statements dominate the stream *)
let p10_template i =
  let db, table = if i mod 2 = 0 then ("depot", "parts") else ("mill", "supplies") in
  Printf.sprintf
    "USE hub %s SELECT s.sid, r.rname, s.qty FROM hub.sales s, %s.%s r \
     WHERE s.part_id = r.rid AND r.price < %d"
    db db table
    (5 * ((i / 2) + 1))

let p10_mix ~seed ~k ~n =
  let s = 1.1 in
  let weights = Array.init k (fun i -> 1.0 /. ((float_of_int (i + 1)) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cum = Array.make k 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cum.(i) <- !acc)
    weights;
  let rng = Random.State.make [| seed |] in
  List.init n (fun _ ->
      let u = Random.State.float rng 1.0 in
      let rec find i = if i >= k - 1 || cum.(i) >= u then i else find (i + 1) in
      find 0)

let p10_run ~rows ~n ~config ~pool ~plan ~result =
  let session, world = p10_setup ~rows in
  M.set_pooling session pool;
  M.set_plan_cache session plan;
  M.set_result_cache session result;
  let mix = p10_mix ~seed:42 ~k:20 ~n in
  Netsim.World.reset_stats world;
  Netsim.World.reset_clock world;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun i ->
      match M.exec session (p10_template i) with
      | Ok (M.Multitable _) -> ()
      | Ok r -> failwith ("P10: unexpected result " ^ M.result_to_string r)
      | Error m -> failwith ("P10: " ^ m))
    mix;
  let wall_s = Unix.gettimeofday () -. t0 in
  let st = Netsim.World.stats world in
  let cs = M.cache_stats session in
  {
    p10_config = config;
    p10_sps = float_of_int n /. wall_s;
    p10_virt_ms = Netsim.World.now_ms world;
    p10_bytes = st.Netsim.World.bytes_moved;
    p10_msgs = st.Netsim.World.messages;
    p10_pool_hits = cs.M.pool_hits;
    p10_plan_hits = cs.M.plan_hits;
    p10_result_hits = cs.M.result_hits;
  }

(* best of [reps] fresh-session runs; deterministic counters are checked
   to agree across repetitions so only the wall clock varies *)
let p10_best ~reps ~rows ~n ~config ~pool ~plan ~result =
  let first = p10_run ~rows ~n ~config ~pool ~plan ~result in
  let rec go best i =
    if i >= reps then best
    else begin
      let r = p10_run ~rows ~n ~config ~pool ~plan ~result in
      if r.p10_bytes <> first.p10_bytes || r.p10_msgs <> first.p10_msgs then
        failwith
          (Printf.sprintf "P10 %s: nondeterministic traffic across reps" config);
      go (if r.p10_sps > best.p10_sps then r else best) (i + 1)
    end
  in
  go first 1

let p10_session_reuse ?(rows = 6000) ?(n = 150) ?(reps = 3) () =
  header
    "P10: session reuse ablation (Zipf statement mix, 3 sites, same sequence)";
  Printf.printf "%-22s %12s %12s %10s %7s %6s %6s %6s\n" "config" "stmts/s"
    "virt ms" "bytes" "msgs" "pool" "plan" "rslt";
  List.map
    (fun (config, pool, plan, result) ->
      let r = p10_best ~reps ~rows ~n ~config ~pool ~plan ~result in
      Printf.printf "%-22s %12.1f %12.2f %10d %7d %6d %6d %6d\n" r.p10_config
        r.p10_sps r.p10_virt_ms r.p10_bytes r.p10_msgs r.p10_pool_hits
        r.p10_plan_hits r.p10_result_hits;
      r)
    [
      ("all-off", false, false, false);
      ("pool", true, false, false);
      ("pool+plan", true, true, false);
      ("pool+plan+result", true, true, true);
    ]

(* the reuse layer must never cost traffic: the fully enabled session has
   to move strictly fewer bytes and messages than the cold baseline for
   the identical statement stream — checked in CI before the numbers are
   published *)
let p10_assert_smoke p10 =
  let find c = List.find (fun r -> String.equal r.p10_config c) p10 in
  let cold = find "all-off" and hot = find "pool+plan+result" in
  if hot.p10_bytes >= cold.p10_bytes then begin
    Printf.eprintf "P10 smoke FAILED: %d bytes with caches vs %d cold\n"
      hot.p10_bytes cold.p10_bytes;
    exit 1
  end;
  if hot.p10_msgs >= cold.p10_msgs then begin
    Printf.eprintf "P10 smoke FAILED: %d messages with caches vs %d cold\n"
      hot.p10_msgs cold.p10_msgs;
    exit 1
  end;
  Printf.printf
    "P10 smoke assertion passed: %d < %d bytes, %d < %d messages\n"
    hot.p10_bytes cold.p10_bytes hot.p10_msgs cold.p10_msgs

(* ---- P11: domain-pool execution of parallel blocks (multicore Narada) ----- *)

(* Four 2PC sites with graded latencies; each branch of the PARBEGIN runs
   a CPU-heavy grouped self-join at its own site, so the block's wall time
   is dominated by local execution — the part a domain pool can overlap.
   The table reports wall ms (best of reps) at 1/2/4 domains, the shared
   virtual cost (identical at every width — the divergence check compares
   the full rendered event streams), and the 2PC commit-phase window,
   which the concurrent second-phase fan-out accounts as the slowest
   branch rather than the sum of all four.

   Wall-clock speedup needs real cores: the recommended-domain count is
   recorded alongside so a single-core CI run stays legible, and the
   smoke assertion only demands speedup when at least 4 cores are
   available. *)

module T = Narada.Trace

type p11_row = {
  p11_domains : int;
  p11_wall_ms : float;  (* best of reps *)
  p11_virt_ms : float;
  p11_phase_ms : float;  (* commit decision -> last branch committed *)
  p11_trace : string;  (* rendered event stream, for the divergence check *)
  p11_msgs : int;  (* delivered messages — must be width-invariant *)
  p11_bytes : int;  (* delivered bytes — must be width-invariant *)
  p11_buf_hits : int;  (* branch-buffer freelist hits during the timed reps *)
}

let p11_latencies = [ 10.0; 20.0; 30.0; 40.0 ]

let p11_setup ~rows =
  let world = Netsim.World.create () in
  let dir = Narada.Directory.create () in
  List.iteri
    (fun idx lat ->
      let i = idx + 1 in
      let site = Printf.sprintf "site%d" i in
      Netsim.World.add_site world
        (Netsim.Site.make ~latency_ms:lat ~per_byte_ms:0.0 site);
      let db = Ldbms.Database.create (Printf.sprintf "db%d" i) in
      Ldbms.Database.load db ~name:"load"
        [ Schema.column "rid" Ty.Int; Schema.column "grp" Ty.Int;
          Schema.column "price" Ty.Float ]
        (List.init rows (fun r ->
             [| Value.Int r; Value.Int (r mod 8);
                Value.Float (float_of_int ((r * 37) mod 997)) |]));
      Narada.Directory.register dir
        (Narada.Service.make ~site ~caps:Ldbms.Capabilities.ingres_like db))
    p11_latencies;
  (world, dir)

(* the branch body: a grouped self-join whose hash join enumerates
   rows^2/8 pairs but emits few — pure comparison work at the site *)
let p11_program =
  let n = List.length p11_latencies in
  let init f = List.init n (fun i -> f (i + 1)) in
  let opens =
    String.concat "\n"
      (init (fun i -> Printf.sprintf "  OPEN db%d AT site%d AS c%d;" i i i))
  in
  let tasks =
    (* the UPDATE opens the transaction the later PREPARE needs (a bare
       SELECT runs outside one); the SELECT is the CPU load *)
    String.concat "\n"
      (init (fun i ->
           Printf.sprintf
             "    TASK T%d NOCOMMIT FOR c%d { UPDATE load SET price = \
              price WHERE rid = 0; SELECT a.rid FROM load a, load b \
              WHERE a.grp = b.grp AND a.price > 990.0 AND a.price < \
              b.price } ENDTASK;"
             i i))
  in
  let all_p = String.concat " AND " (init (Printf.sprintf "(T%d=P)")) in
  let commits = String.concat ", " (init (Printf.sprintf "T%d")) in
  let closes = String.concat " " (init (Printf.sprintf "c%d")) in
  Printf.sprintf
    "DOLBEGIN\n%s\n  PARBEGIN\n%s\n  PAREND;\n\
    \  IF %s THEN\n  BEGIN COMMIT %s; DOLSTATUS = 0; END;\n\
    \  CLOSE %s;\nDOLEND" opens tasks all_p commits closes

let p11_run ~rows ~domains ~reps =
  (* [Dpool.shared] memoizes per width, so the domains are spawned (and
     warm) before any timed repetition — startup cost is excluded *)
  let dpool =
    if domains > 1 then Some (Narada.Dpool.shared ~domains) else None
  in
  let one () =
    let world, dir = p11_setup ~rows in
    let events = ref [] in
    let t0 = Unix.gettimeofday () in
    match
      Narada.Engine.run_text ?dpool
        ~on_trace:(fun e -> events := e :: !events)
        ~directory:dir ~world p11_program
    with
    | Ok o when o.Narada.Engine.dolstatus = 0 ->
        let wall = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let st = Netsim.World.stats world in
        let msgs = st.Netsim.World.messages
        and bytes = st.Netsim.World.bytes_moved in
        let evs = List.rev !events in
        let decision =
          List.find_map
            (fun e ->
              match e.T.kind with
              | T.Decision { verdict = T.Commit; _ } -> Some e.T.at_ms
              | _ -> None)
            evs
        in
        let last_c =
          List.fold_left
            (fun acc e ->
              match e.T.kind with
              | T.Status { status = D.C; _ } -> max acc e.T.at_ms
              | _ -> acc)
            0.0 evs
        in
        let phase =
          match decision with
          | Some d -> last_c -. d
          | None -> failwith "P11: no commit decision in trace"
        in
        let trace =
          String.concat "\n"
            (List.map
               (fun e ->
                 Printf.sprintf "%.6f|%s" e.T.at_ms (T.render_kind e.T.kind))
               evs)
        in
        (wall, o.Narada.Engine.elapsed_ms, phase, trace, msgs, bytes)
    | Ok o ->
        failwith
          (Printf.sprintf "P11: DOLSTATUS %d [%s]" o.Narada.Engine.dolstatus
             (String.concat ", "
                (List.map
                   (fun (n, s) ->
                     Printf.sprintf "%s=%s" n (D.status_to_string s))
                   o.Narada.Engine.statuses)))
    | Error m -> failwith ("P11: " ^ m)
  in
  (* one untimed warmup per width: first-touch costs (code paths, page
     faults, allocator growth, buffer-freelist population) fall outside
     the measurement window *)
  ignore (one ());
  let hits0, _ = Narada.Engine.branch_buf_stats () in
  let wall0, virt, phase, trace, msgs, bytes = one () in
  let best = ref wall0 in
  for _ = 2 to reps do
    let wall, virt', _, trace', msgs', bytes' = one () in
    if virt' <> virt || not (String.equal trace' trace) then
      failwith "P11: nondeterministic trace across repetitions";
    if msgs' <> msgs || bytes' <> bytes then
      failwith "P11: nondeterministic traffic across repetitions";
    if wall < !best then best := wall
  done;
  let hits1, _ = Narada.Engine.branch_buf_stats () in
  {
    p11_domains = domains;
    p11_wall_ms = !best;
    p11_virt_ms = virt;
    p11_phase_ms = phase;
    p11_trace = trace;
    p11_msgs = msgs;
    p11_bytes = bytes;
    p11_buf_hits = hits1 - hits0;
  }

let p11_serial_phase_est =
  2.0 *. List.fold_left ( +. ) 0.0 p11_latencies

let p11_domain_pool ?(rows = 2000) ?(reps = 3) () =
  header "P11: domain-pool execution of a 4-branch parallel block";
  let recommended = Domain.recommended_domain_count () in
  Printf.printf "(machine reports %d recommended domain(s))\n" recommended;
  Printf.printf "%-8s %12s %12s %10s %14s %10s\n" "domains" "wall ms"
    "virt ms" "speedup" "2PC phase ms" "buf hits";
  let rows_out =
    List.map
      (fun domains -> p11_run ~rows ~domains ~reps)
      [ 1; 2; 4 ]
  in
  let base = List.hd rows_out in
  List.iter
    (fun r ->
      Printf.printf "%-8d %12.1f %12.2f %9.2fx %14.2f %10d\n" r.p11_domains
        r.p11_wall_ms r.p11_virt_ms
        (base.p11_wall_ms /. r.p11_wall_ms)
        r.p11_phase_ms r.p11_buf_hits)
    rows_out;
  Printf.printf
    "commit phase: %.2f ms parallel vs %.2f ms serial-sum estimate\n"
    base.p11_phase_ms p11_serial_phase_est;
  Printf.printf "traffic at every width: %d messages, %d bytes\n"
    base.p11_msgs base.p11_bytes;
  (recommended, rows_out)

(* determinism is asserted unconditionally — the full event stream at 2
   and 4 domains must be byte-identical to the sequential one; wall-clock
   speedup is only demanded when the machine actually has 4 cores *)
let p11_assert_smoke (recommended, rows_out) =
  let base = List.hd rows_out in
  List.iter
    (fun r ->
      if not (String.equal r.p11_trace base.p11_trace) then begin
        Printf.eprintf
          "P11 smoke FAILED: trace at %d domains diverges from sequential\n"
          r.p11_domains;
        exit 1
      end;
      if r.p11_virt_ms <> base.p11_virt_ms then begin
        Printf.eprintf
          "P11 smoke FAILED: virtual time %.4f at %d domains vs %.4f\n"
          r.p11_virt_ms r.p11_domains base.p11_virt_ms;
        exit 1
      end;
      if r.p11_msgs <> base.p11_msgs || r.p11_bytes <> base.p11_bytes then begin
        Printf.eprintf
          "P11 smoke FAILED: traffic at %d domains (%d msgs, %d bytes) \
           diverges from sequential (%d msgs, %d bytes)\n"
          r.p11_domains r.p11_msgs r.p11_bytes base.p11_msgs base.p11_bytes;
        exit 1
      end)
    rows_out;
  if base.p11_phase_ms >= p11_serial_phase_est then begin
    Printf.eprintf
      "P11 smoke FAILED: commit phase %.2f ms is not below the serial sum \
       %.2f ms\n"
      base.p11_phase_ms p11_serial_phase_est;
    exit 1
  end;
  (if recommended >= 4 then
     let four = List.find (fun r -> r.p11_domains = 4) rows_out in
     let speedup = base.p11_wall_ms /. four.p11_wall_ms in
     (* the perf gate: 4 domains must never be a pessimization on a
        4-core machine (the pre-lean-path constant made it 0.42x) *)
     if speedup < 1.0 then begin
       Printf.eprintf
         "P11 smoke FAILED: %.2fx speedup at 4 domains on a %d-core \
          machine (wanted >= 1.0x)\n"
         speedup recommended;
       exit 1
     end
   else
     Printf.printf
       "P11: speedup assertion skipped (%d recommended domain(s) < 4)\n"
       recommended);
  Printf.printf
    "P11 smoke assertion passed: traces identical at 1/2/4 domains, \
     commit phase %.2f < %.2f ms\n"
    base.p11_phase_ms p11_serial_phase_est

(* ---- P12: partitioned parallel hash join (intra-operator) ----------------- *)

(* The rows x widths grid for Relation.parallel_hash_join: every cell is
   best-of-reps wall time plus output rows per second, and every parallel
   result is asserted byte-identical (rows and order) to the sequential
   hash_join before it is timed. Pools come from Taskpool.create — private
   widths 1/2/4, spawned once for the whole grid and shut down at the
   end — so the numbers measure the join, not domain startup. *)

type p12_row = {
  p12_rows : int;  (* per side *)
  p12_width : int;  (* pool width, counting the caller *)
  p12_partitions : int;  (* partitions actually used (data-dependent) *)
  p12_ns : float;  (* best of reps *)
  p12_out_rows : int;
  p12_rows_per_s : float;  (* output rows / best wall time *)
  p12_speedup : float;  (* sequential hash_join time / this cell's time *)
}

let p12_sides n =
  let col = Schema.column in
  (* ~4 matches per probe row, skew-free; keys are Ints so the class
     prefixes exercise the common path *)
  let build =
    Relation.make
      [ col "b" Ty.Int; col "bk" Ty.Int ]
      (List.init n (fun i -> [| Value.Int i; Value.Int (i * 7 mod n) |]))
  and probe =
    Relation.make
      [ col "p" Ty.Int; col "pk" Ty.Int ]
      (List.init n (fun i -> [| Value.Int i; Value.Int (i mod (max 1 (n / 4))) |]))
  in
  (probe, build)

let p12_parallel_join ?(sizes = [ 20_000; 60_000 ]) ?(reps = 3) () =
  header "P12: partitioned parallel hash join (rows x pool width, wall time)";
  let recommended = Domain.recommended_domain_count () in
  Printf.printf "(machine reports %d recommended domain(s))\n" recommended;
  Printf.printf "%-10s %-7s %11s %12s %14s %9s\n" "rows/side" "width"
    "partitions" "join ms" "out rows/s" "speedup";
  let widths = [ 1; 2; 4 ] in
  let pools =
    List.map (fun w -> (w, Taskpool.create ~domains:w)) widths
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, p) -> Taskpool.shutdown p) pools)
  @@ fun () ->
  let grid =
    List.concat_map
      (fun n ->
        let a, b = p12_sides n in
        let keys = [ (1, 1) ] in
        let seq = Relation.hash_join a b ~keys in
        let out_rows = Relation.cardinality seq in
        let seq_ns =
          let t = ref infinity in
          for _ = 1 to reps do
            t := Float.min !t (time_once_ns (fun () -> Relation.hash_join a b ~keys))
          done;
          !t
        in
        (* same data-dependent partition count the executor would pick *)
        let partitions = min 8 (max 2 (n / 4096)) in
        List.map
          (fun (w, pool) ->
            let r, stats =
              Relation.parallel_hash_join ~pool ~partitions a b ~keys
            in
            if not (Relation.equal r seq) then begin
              Printf.eprintf
                "P12 FAILED: parallel join at width %d diverges from \
                 sequential (%d rows)\n"
                w n;
              exit 1
            end;
            let ns =
              let t = ref infinity in
              for _ = 1 to reps do
                t :=
                  Float.min !t
                    (time_once_ns (fun () ->
                         Relation.parallel_hash_join ~pool ~partitions a b
                           ~keys))
              done;
              !t
            in
            let row =
              {
                p12_rows = n;
                p12_width = w;
                p12_partitions = stats.Relation.pj_partitions;
                p12_ns = ns;
                p12_out_rows = out_rows;
                p12_rows_per_s = float_of_int out_rows /. (ns /. 1e9);
                p12_speedup = seq_ns /. ns;
              }
            in
            Printf.printf "%-10d %-7d %11d %12.2f %14.0f %8.2fx\n" n w
              row.p12_partitions (ns /. 1e6) row.p12_rows_per_s
              row.p12_speedup;
            row)
          pools)
      sizes
  in
  (* byte-identity across widths was asserted cell by cell against the
     sequential join; on a >= 4-core machine the wide path must also not
     be a pessimization at the largest size *)
  (if recommended >= 4 then
     let big = List.hd (List.rev sizes) in
     let cell =
       List.find (fun r -> r.p12_rows = big && r.p12_width = 4) grid
     in
     if cell.p12_speedup < 1.0 then begin
       Printf.eprintf
         "P12 smoke FAILED: %.2fx at width 4, %d rows on a %d-core machine \
          (wanted >= 1.0x)\n"
         cell.p12_speedup big recommended;
       exit 1
     end
   else
     Printf.printf
       "P12: speedup assertion skipped (%d recommended domain(s) < 4)\n"
       recommended);
  Printf.printf "P12 assertion passed: parallel output identical to \
                 sequential at every cell\n";
  grid

(* ---- P13: columnar batch kernels vs the row-at-a-time data plane ----------------- *)

(* The batched data plane's three claims, measured: (a) the typed-column
   kernels (scan, compiled filter, hash join) beat the row-at-a-time path
   by a wide margin at 10^6 rows; (b) they produce byte-identical results;
   (c) the chunk-streamed MOVE charges exactly the traffic and virtual
   time of the old single-message shipment. *)

type p13_row = {
  p13_op : string;
  p13_rows : int;
  p13_row_ns : float;  (* row-at-a-time path, best of reps *)
  p13_batch_ns : float;  (* batch kernel, best of reps *)
}

let p13_speedup r = r.p13_row_ns /. r.p13_batch_ns
let p13_rate rows ns = float_of_int rows /. (ns /. 1e9)

(* best-of-reps with a full collection before each attempt: the kernels
   allocate tens of MB per pass, so without it a rep's time is dominated
   by the major GC debt of the previous one *)
let p13_best reps f =
  let t = ref infinity in
  for _ = 1 to reps do
    Gc.full_major ();
    t := Float.min !t (time_once_ns f)
  done;
  !t

(* one wide table covering the column classes the batch layer vectorizes,
   with NULLs sprinkled in so the null bitmaps are on the hot path *)
let p13_table n =
  let col = Schema.column in
  Relation.make
    [ col "id" Ty.Int; col "price" Ty.Float; col ~width:10 "origin" Ty.Str;
      col "qty" Ty.Int ]
    (List.init n (fun i ->
         [| Value.Int i;
            (if i mod 97 = 0 then Value.Null
             else Value.Float (float_of_int (i mod 1000) /. 10.));
            Value.Str (if i mod 2 = 0 then "domestic" else "imported");
            Value.Int (1 + (i mod 5)) |]))

(* scan: sum a column. Row path walks the row list re-boxing every field;
   the batch path strides one int array under its null bitmap. *)
let p13_scan ~reps rel n =
  let batch = Relation.to_batch rel in
  let row_sum () =
    List.fold_left
      (fun acc row ->
        match Row.get row 3 with Value.Int v -> acc + v | _ -> acc)
      0 (Relation.rows rel)
  in
  let batch_sum () =
    match batch.Batch.cols.(3).Batch.data with
    | Batch.Ints a ->
        let nulls = batch.Batch.cols.(3).Batch.nulls in
        let acc = ref 0 in
        for i = 0 to n - 1 do
          if not (Batch.mask_get nulls i) then
            acc := !acc + Array.unsafe_get a i
        done;
        !acc
    | _ -> failwith "P13: qty column did not vectorize to Ints"
  in
  if row_sum () <> batch_sum () then begin
    Printf.eprintf "P13 FAILED: scan sums disagree\n";
    exit 1
  end;
  {
    p13_op = "scan";
    p13_rows = n;
    p13_row_ns = p13_best reps (fun () -> row_sum ());
    p13_batch_ns = p13_best reps (fun () -> batch_sum ());
  }

(* filter: the interpreted WHERE walk (fresh environment per row, exactly
   the executor's fallback) vs the compiled batch kernel + gather *)
let p13_filter ~reps rel n =
  let pred =
    let open Sqlfront.Ast in
    Binop
      ( And,
        Binop (Lt, col "price", lit_float 50.0),
        Binop (Eq, col "origin", lit_str "domestic") )
  in
  let schema = Relation.schema rel in
  let ctx =
    {
      Ldbms.Eval.subquery = (fun _ _ -> failwith "P13: no subqueries");
      agg = None;
    }
  in
  let row_filter () =
    List.filter
      (fun row ->
        Ldbms.Eval.truthy
          (Ldbms.Eval.eval ctx (Ldbms.Eval.env schema row) pred))
      (Relation.rows rel)
  in
  let batch = Relation.to_batch rel in
  let kernel =
    match Ldbms.Compile.compile_batch batch pred with
    | Some k -> k
    | None -> failwith "P13: predicate not covered by the batch compiler"
  in
  let batch_filter () =
    let keep, _unknown = kernel 0 n in
    Batch.filter keep batch
  in
  if row_filter () <> Batch.to_rows (batch_filter ()) then begin
    Printf.eprintf "P13 FAILED: compiled filter diverges from interpreter\n";
    exit 1
  end;
  {
    p13_op = "filter";
    p13_rows = n;
    p13_row_ns = p13_best reps (fun () -> row_filter ());
    p13_batch_ns = p13_best reps (fun () -> batch_filter ());
  }

(* hash join: the generic string-keyed row join vs the int-keyed column
   kernel (p12's shape: Int keys, ~one match per probe row) *)
let p13_join ~reps n =
  let a, b = p12_sides n in
  let keys = [ (1, 1) ] in
  let seq = Relation.hash_join a b ~keys in
  let ba = Relation.to_batch a and bb = Relation.to_batch b in
  if not (Relation.equal (Relation.of_batch (Batch.hash_join ba bb ~keys)) seq)
  then begin
    Printf.eprintf "P13 FAILED: batch join diverges from row join\n";
    exit 1
  end;
  {
    p13_op = "hash_join";
    p13_rows = n;
    p13_row_ns = p13_best reps (fun () -> Relation.hash_join a b ~keys);
    p13_batch_ns = p13_best reps (fun () -> Batch.hash_join ba bb ~keys);
  }

(* MOVE: the same naive-shipping program executed with the monolithic
   single-message path and with chunk streaming. Streaming sits below the
   accounting granularity, so bytes, messages and virtual time must be
   exactly equal — the smoke check for the size accounting. *)
let p13_move ~rows () =
  let run ~chunk_rows =
    let session, world = p4_setup rows in
    Narada.Lam.set_move_streaming ~chunk_rows ~window:4 ();
    Netsim.World.reset_stats world;
    Netsim.World.reset_clock world;
    let t0 = Unix.gettimeofday () in
    (match
       Narada.Engine.run_text
         ~directory:(M.directory session)
         ~world (p4_naive_program 100)
     with
    | Ok _ -> ()
    | Error m -> failwith m);
    let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    let st = Netsim.World.stats world in
    ( wall_ns,
      st.Netsim.World.bytes_moved,
      st.Netsim.World.messages,
      Netsim.World.now_ms world )
  in
  let mono_ns, mono_bytes, mono_msgs, mono_ms = run ~chunk_rows:0 in
  let chunk_ns, chunk_bytes, chunk_msgs, chunk_ms = run ~chunk_rows:512 in
  Narada.Lam.set_move_streaming ~chunk_rows:512 ~window:4 ();
  if chunk_bytes <> mono_bytes || chunk_msgs <> mono_msgs then begin
    Printf.eprintf
      "P13 smoke FAILED: chunked MOVE charged %d bytes / %d msgs, \
       monolithic %d bytes / %d msgs\n"
      chunk_bytes chunk_msgs mono_bytes mono_msgs;
    exit 1
  end;
  if chunk_ms <> mono_ms then begin
    Printf.eprintf
      "P13 smoke FAILED: chunked MOVE virtual time %.4f ms <> monolithic \
       %.4f ms\n"
      chunk_ms mono_ms;
    exit 1
  end;
  Printf.printf
    "P13 assertion passed: chunked MOVE charges exactly the monolithic \
     traffic (%d bytes, %d msgs, %.2f virtual ms)\n"
    chunk_bytes chunk_msgs chunk_ms;
  { p13_op = "move"; p13_rows = rows; p13_row_ns = mono_ns;
    p13_batch_ns = chunk_ns }

let p13_batch_kernels ?(rows = 1_000_000) ?(move_rows = 20_000) ?(reps = 3) ()
    =
  header "P13: columnar batch kernels vs row-at-a-time (wall time)";
  Printf.printf "%-10s %9s %14s %14s %14s %14s %9s\n" "op" "rows" "row ns"
    "batch ns" "row rows/s" "batch rows/s" "speedup";
  let rel = p13_table rows in
  let grid =
    [
      p13_scan ~reps rel rows;
      p13_filter ~reps rel rows;
      p13_join ~reps rows;
      p13_move ~rows:move_rows ();
    ]
  in
  List.iter
    (fun r ->
      Printf.printf "%-10s %9d %14.0f %14.0f %14.0f %14.0f %8.2fx\n" r.p13_op
        r.p13_rows r.p13_row_ns r.p13_batch_ns
        (p13_rate r.p13_rows r.p13_row_ns)
        (p13_rate r.p13_rows r.p13_batch_ns)
        (p13_speedup r))
    grid;
  (* the acceptance gate: the compiled filter and the join kernel must be
     at least 3x the row path at 10^6 rows (the MOVE does identical work
     either way, so it carries no speedup requirement) *)
  List.iter
    (fun r ->
      if
        (String.equal r.p13_op "filter" || String.equal r.p13_op "hash_join")
        && p13_speedup r < 3.0
      then begin
        Printf.eprintf "P13 smoke FAILED: %s at %d rows is %.2fx (wanted >= \
                        3.0x)\n"
          r.p13_op r.p13_rows (p13_speedup r);
        exit 1
      end)
    grid;
  Printf.printf
    "P13 assertion passed: batch kernels byte-identical to the row path, \
     filter and join >= 3x\n";
  grid

(* ---- P14: concurrent multi-session server -------------------------------------- *)

module Srv = Msql.Server

(* N Zipf clients against one server over the P10 federation: every
   session shares the dictionaries, the connection pool and the
   plan/result caches, and the wave scheduler interleaves their
   statements fairly. Clients submit eagerly up to the queue cap (shed
   submissions are retried next round), so the latency numbers include
   queue wait — the price of fairness under load. *)

type p14_row = {
  p14_clients : int;
  p14_domains : int;
  p14_stmts : int;  (* statements completed *)
  p14_sps : float;  (* aggregate statements per wall-clock second *)
  p14_p50_ms : float;  (* wall-clock submit -> completion latency *)
  p14_p99_ms : float;
  p14_virt_ms : float;
  p14_requeues : int;
  p14_shed : int;
  p14_pool_hits : int;
  p14_plan_hits : int;
  p14_result_hits : int;
}

let p14_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n /. 100.)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let p14_run ~rows ~per_client ~clients ~domains =
  let world, directory = p10_world ~rows in
  let config =
    {
      (Srv.default_config ()) with
      Srv.max_sessions = clients;
      max_queue = 4;
      domains;
    }
  in
  let srv =
    match
      Srv.create ~config ~world ~directory
        ~services:[ "hub"; "depot"; "mill" ] ()
    with
    | Ok s -> s
    | Error m -> failwith ("P14: " ^ m)
  in
  let sids =
    List.init clients (fun _ ->
        match Srv.connect srv with
        | Ok sid -> sid
        | Error e -> failwith ("P14: " ^ Srv.error_message e))
  in
  (* every client draws its own Zipf stream over the shared templates *)
  let streams =
    Array.of_list
      (List.mapi
         (fun ci sid -> (sid, ref (p10_mix ~seed:(100 + ci) ~k:20 ~n:per_client)))
         sids)
  in
  let submit_times : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let latencies = ref [] in
  let completed = ref 0 in
  Netsim.World.reset_stats world;
  Netsim.World.reset_clock world;
  let t0 = Unix.gettimeofday () in
  let rec pump () =
    Array.iter
      (fun (sid, stream) ->
        let rec top_up () =
          match !stream with
          | [] -> ()
          | i :: rest -> (
              match Srv.submit srv sid (p10_template i) with
              | Ok seq ->
                  Hashtbl.replace submit_times (sid, seq)
                    (Unix.gettimeofday ());
                  stream := rest;
                  top_up ()
              | Error (Srv.Overloaded _) -> ()  (* queue full: next round *)
              | Error e -> failwith ("P14: " ^ Srv.error_message e))
        in
        top_up ())
      streams;
    let comps = Srv.step_round srv in
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        (match c.Srv.c_result with
        | Ok (M.Multitable _) -> ()
        | Ok r -> failwith ("P14: unexpected result " ^ M.result_to_string r)
        | Error m -> failwith ("P14: " ^ m));
        incr completed;
        match Hashtbl.find_opt submit_times (c.Srv.c_sid, c.Srv.c_seq) with
        | Some t -> latencies := (now -. t) *. 1000. :: !latencies
        | None -> ())
      comps;
    if Array.exists (fun (_, s) -> !s <> []) streams || Srv.queued srv > 0
    then pump ()
  in
  pump ();
  let wall_s = Unix.gettimeofday () -. t0 in
  let sorted = Array.of_list (List.sort compare !latencies) in
  let st = Srv.stats srv in
  let cs = Srv.cache_stats srv in
  {
    p14_clients = clients;
    p14_domains = domains;
    p14_stmts = !completed;
    p14_sps = float_of_int !completed /. wall_s;
    p14_p50_ms = p14_percentile sorted 50.;
    p14_p99_ms = p14_percentile sorted 99.;
    p14_virt_ms = Netsim.World.now_ms world;
    p14_requeues = st.Srv.requeues;
    p14_shed = st.Srv.shed;
    p14_pool_hits = cs.M.pool_hits;
    p14_plan_hits = cs.M.plan_hits;
    p14_result_hits = cs.M.result_hits;
  }

(* the correctness gate CI runs at MSQL_TEST_DOMAINS in {0,4}: the same N
   independent clients (client k owns airline k) executed by the serial
   scheduler and by the concurrent one must leave every database in an
   identical state *)
let p14_assert_smoke ?(clients = 4) ~domains () =
  let run ~domains =
    let fx = F.airline_fleet ~flights_per_db:40 ~n:clients () in
    let config = { (Srv.default_config ()) with Srv.domains } in
    let srv = Srv.of_fixtures ~config fx in
    let sids =
      List.init clients (fun _ ->
          match Srv.connect srv with
          | Ok sid -> sid
          | Error e -> failwith (Srv.error_message e))
    in
    List.iteri
      (fun i sid ->
        List.iter
          (fun sql ->
            match Srv.submit srv sid sql with
            | Ok _ -> ()
            | Error e -> failwith (Srv.error_message e))
          [
            Printf.sprintf
              "USE airline%d UPDATE flights SET rate = rate * 1.1 WHERE \
               source = 'Houston'"
              (i + 1);
            Printf.sprintf
              "USE airline%d SELECT flnu, rate FROM flights WHERE \
               destination = 'Denver'"
              (i + 1);
          ])
      sids;
    List.iter
      (fun c ->
        match c.Srv.c_result with
        | Ok _ -> ()
        | Error m -> failwith ("P14 differential: " ^ m))
      (Srv.drain srv);
    List.init clients (fun i ->
        Relation.to_string
          (F.scan fx
             ~db:(Printf.sprintf "airline%d" (i + 1))
             ~table:"flights"))
  in
  let serial = run ~domains:1 in
  let concurrent = run ~domains in
  if serial <> concurrent then begin
    Printf.eprintf
      "P14 smoke FAILED: concurrent execution (domains=%d) diverges from \
       the serial schedule\n"
      domains;
    exit 1
  end;
  Printf.printf
    "P14 assertion passed: %d concurrent sessions leave state identical \
     to the serial schedule (domains=%d)\n"
    clients domains

let p14_server ?(rows = 2000) ?(per_client = 40) () =
  header
    "P14: concurrent multi-session server (Zipf clients, shared \
     pool+caches)";
  let domains = (Srv.default_config ()).Srv.domains in
  Printf.printf "%-8s %8s %10s %9s %9s %12s %8s %6s %6s %6s %6s\n" "clients"
    "domains" "stmts/s" "p50 ms" "p99 ms" "virt ms" "requeue" "shed" "pool"
    "plan" "rslt";
  let grid =
    List.map
      (fun clients ->
        let r = p14_run ~rows ~per_client ~clients ~domains in
        Printf.printf
          "%-8d %8d %10.1f %9.3f %9.3f %12.2f %8d %6d %6d %6d %6d\n"
          r.p14_clients r.p14_domains r.p14_sps r.p14_p50_ms r.p14_p99_ms
          r.p14_virt_ms r.p14_requeues r.p14_shed r.p14_pool_hits
          r.p14_plan_hits r.p14_result_hits;
        r)
      [ 1; 4; 16 ]
  in
  p14_assert_smoke ~domains ();
  grid

(* ---- P15: dataflow wave scheduling of whole DOL programs ------------------------- *)

type p15_row = {
  p15_config : string;
  p15_virt_ms : float;
  p15_msgs : int;
  p15_bytes : int;
  p15_waves : int;
  p15_crit_ms : float;
  p15_serial_ms : float;
}

(* blank out "12.34 ms" timings: latency is the one thing the wave
   schedule may change, so result strings compare modulo the clock *)
let p15_scrub s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let is_t c = (c >= '0' && c <= '9') || c = '.' in
  let i = ref 0 in
  while !i < n do
    if is_t s.[!i] then begin
      let j = ref !i in
      while !j < n && is_t s.[!j] do incr j done;
      if !j + 2 < n && s.[!j] = ' ' && s.[!j + 1] = 'm' && s.[!j + 2] = 's'
      then (Buffer.add_string b "T ms"; i := !j + 3)
      else (Buffer.add_string b (String.sub s !i (!j - !i)); i := !j)
    end
    else (Buffer.add_char b s.[!i]; incr i)
  done;
  Buffer.contents b

(* the workload mixes the shapes the scheduler can overlap: the serial
   open chains of wide multiple statements, and a cross-database transfer
   whose MOVE rides with independent opens *)
let p15_sqls ~n =
  let dbs =
    String.concat " " (List.init n (fun i -> Printf.sprintf "airline%d" (i + 1)))
  in
  [
    Printf.sprintf
      "USE %s SELECT flnu, rate FROM flights WHERE source = 'Houston'" dbs;
    Printf.sprintf
      "USE %s UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston'"
      dbs;
    "USE airline1 airline2 INSERT INTO airline1.flights (flnu, source, \
     destination, rate) SELECT f.flnu, f.source, f.destination, f.rate FROM \
     airline2.flights f WHERE f.source = 'Houston'";
  ]

let p15_run ~n ~dataflow ~config =
  let fx = F.airline_fleet ~flights_per_db:60 ~n () in
  M.set_dataflow fx.F.session dataflow;
  Netsim.World.reset_clock fx.F.world;
  Netsim.World.reset_stats fx.F.world;
  let results =
    List.map
      (fun sql ->
        match M.exec fx.F.session sql with
        | Ok r -> p15_scrub (M.result_to_string r)
        | Error m -> failwith ("P15: " ^ m))
      (p15_sqls ~n)
  in
  let state =
    String.concat "\n"
      (List.init n (fun i ->
           let db = Printf.sprintf "airline%d" (i + 1) in
           db ^ ":" ^ Relation.to_string (F.scan fx ~db ~table:"flights")))
  in
  let st = Netsim.World.stats fx.F.world in
  let m = M.metrics fx.F.session in
  ( {
      p15_config = config;
      p15_virt_ms = Netsim.World.now_ms fx.F.world;
      p15_msgs = st.Netsim.World.messages;
      p15_bytes = st.Netsim.World.bytes_moved;
      p15_waves = m.Msql.Metrics.dataflow_waves;
      p15_crit_ms = m.Msql.Metrics.dataflow_crit_ms;
      p15_serial_ms = m.Msql.Metrics.dataflow_serial_ms;
    },
    state,
    results )

(* the virtual network is deterministic, so replays must be identical;
   best-of-N is a determinism check here, not noise reduction *)
let p15_best ~reps ~n ~dataflow ~config =
  let r0, s0, res0 = p15_run ~n ~dataflow ~config in
  for _ = 2 to reps do
    let r, s, res = p15_run ~n ~dataflow ~config in
    if r.p15_virt_ms <> r0.p15_virt_ms || s <> s0 || res <> res0 then begin
      Printf.eprintf "P15: nondeterministic replay for %s\n" config;
      exit 1
    end
  done;
  (r0, s0, res0)

let p15_dataflow ?(n = 8) ?(reps = 3) () =
  header "P15: dataflow wave scheduling (whole-program DAG, airline fleet)";
  Printf.printf "%-10s %12s %8s %10s %7s %12s %12s\n" "schedule" "virt ms"
    "msgs" "bytes" "waves" "crit ms" "serial ms";
  let off, s_off, r_off = p15_best ~reps ~n ~dataflow:false ~config:"serial" in
  let on_, s_on, r_on = p15_best ~reps ~n ~dataflow:true ~config:"dataflow" in
  List.iter
    (fun r ->
      Printf.printf "%-10s %12.2f %8d %10d %7d %12.2f %12.2f\n" r.p15_config
        r.p15_virt_ms r.p15_msgs r.p15_bytes r.p15_waves r.p15_crit_ms
        r.p15_serial_ms)
    [ off; on_ ];
  Printf.printf "latency reduction: %.2fx\n" (off.p15_virt_ms /. on_.p15_virt_ms);
  (* equality gate: the schedule may only change the clock *)
  if s_off <> s_on || r_off <> r_on then begin
    Printf.eprintf
      "P15 smoke FAILED: dataflow schedule diverges from serial execution\n";
    exit 1
  end;
  Printf.printf
    "P15 assertion passed: byte-identical state and results under the wave \
     schedule\n";
  [ off; on_ ]

let p15_assert_smoke p15 =
  let find c = List.find (fun r -> String.equal r.p15_config c) p15 in
  let off = find "serial" and on_ = find "dataflow" in
  if off.p15_msgs <> on_.p15_msgs || off.p15_bytes <> on_.p15_bytes then begin
    Printf.eprintf
      "P15 smoke FAILED: traffic differs (serial %d msgs/%d bytes, dataflow \
       %d msgs/%d bytes)\n"
      off.p15_msgs off.p15_bytes on_.p15_msgs on_.p15_bytes;
    exit 1
  end;
  let ratio = off.p15_virt_ms /. on_.p15_virt_ms in
  if ratio < 1.5 then begin
    Printf.eprintf "P15 smoke FAILED: latency reduction %.2fx < 1.5x\n" ratio;
    exit 1
  end;
  if on_.p15_crit_ms > on_.p15_serial_ms +. 1e-9 then begin
    Printf.eprintf
      "P15 smoke FAILED: critical path %.2f ms exceeds serial sum %.2f ms\n"
      on_.p15_crit_ms on_.p15_serial_ms;
    exit 1
  end;
  Printf.printf
    "P15 assertion passed: %.2fx virtual latency reduction, critical path \
     %.2f <= serial %.2f ms\n"
    ratio on_.p15_crit_ms on_.p15_serial_ms

(* machine-readable record of the perf-critical experiments, consumed by
   the CI bench-smoke step *)
let write_perf_json ~path p4 p9 p10 p11 p12 p13 p14 p15 =
  let oc = open_out path in
  let p4_json r =
    Printf.sprintf
      {|    {"selectivity_pct": %d, "semijoin_bytes": %d, "semijoin_virtual_ms": %.2f, "decomposed_bytes": %d, "decomposed_virtual_ms": %.2f, "shipall_bytes": %d, "shipall_virtual_ms": %.2f}|}
      r.sel r.sj_bytes r.sj_ms r.dc_bytes r.dc_ms r.na_bytes r.na_ms
  in
  let p9_json r =
    Printf.sprintf
      {|    {"rows": %d, "hash_join_ns": %.0f, "product_ns": %.0f, "speedup": %.2f}|}
      r.jrows r.hash_ns r.product_ns (r.product_ns /. r.hash_ns)
  in
  let p10_json r =
    Printf.sprintf
      {|    {"config": "%s", "stmts_per_sec": %.1f, "virtual_ms": %.2f, "bytes_moved": %d, "messages": %d, "pool_hits": %d, "plan_hits": %d, "result_hits": %d}|}
      r.p10_config r.p10_sps r.p10_virt_ms r.p10_bytes r.p10_msgs
      r.p10_pool_hits r.p10_plan_hits r.p10_result_hits
  in
  let p11_recommended, p11_rows = p11 in
  let p11_base = List.hd p11_rows in
  let p11_json r =
    Printf.sprintf
      {|      {"domains": %d, "wall_ms": %.2f, "virtual_ms": %.2f, "speedup_vs_1": %.2f, "messages": %d, "bytes": %d, "buf_reuse_hits": %d}|}
      r.p11_domains r.p11_wall_ms r.p11_virt_ms
      (p11_base.p11_wall_ms /. r.p11_wall_ms)
      r.p11_msgs r.p11_bytes r.p11_buf_hits
  in
  let p12_json r =
    Printf.sprintf
      {|    {"rows": %d, "width": %d, "partitions": %d, "join_ns": %.0f, "out_rows_per_sec": %.0f, "speedup_vs_seq": %.2f}|}
      r.p12_rows r.p12_width r.p12_partitions r.p12_ns r.p12_rows_per_s
      r.p12_speedup
  in
  let p13_json r =
    Printf.sprintf
      {|    {"op": "%s", "rows": %d, "row_ns": %.0f, "batch_ns": %.0f, "row_rows_per_sec": %.0f, "batch_rows_per_sec": %.0f, "speedup": %.2f}|}
      r.p13_op r.p13_rows r.p13_row_ns r.p13_batch_ns
      (p13_rate r.p13_rows r.p13_row_ns)
      (p13_rate r.p13_rows r.p13_batch_ns)
      (p13_speedup r)
  in
  let p14_json r =
    Printf.sprintf
      {|    {"clients": %d, "domains": %d, "stmts": %d, "stmts_per_sec": %.1f, "p50_latency_ms": %.3f, "p99_latency_ms": %.3f, "virtual_ms": %.2f, "requeues": %d, "shed": %d, "pool_hits": %d, "plan_hits": %d, "result_hits": %d}|}
      r.p14_clients r.p14_domains r.p14_stmts r.p14_sps r.p14_p50_ms
      r.p14_p99_ms r.p14_virt_ms r.p14_requeues r.p14_shed r.p14_pool_hits
      r.p14_plan_hits r.p14_result_hits
  in
  let p15_json r =
    Printf.sprintf
      {|      {"config": "%s", "virtual_ms": %.2f, "messages": %d, "bytes": %d, "waves": %d, "critical_path_ms": %.2f, "serial_ms": %.2f, "overlap_ratio": %.2f}|}
      r.p15_config r.p15_virt_ms r.p15_msgs r.p15_bytes r.p15_waves
      r.p15_crit_ms r.p15_serial_ms
      (if r.p15_crit_ms > 0.0 then r.p15_serial_ms /. r.p15_crit_ms else 1.0)
  in
  let p15_off = List.find (fun r -> String.equal r.p15_config "serial") p15 in
  let p15_on = List.find (fun r -> String.equal r.p15_config "dataflow") p15 in
  Printf.fprintf oc
    "{\n\
    \  \"p4_data_shipping\": [\n\
     %s\n\
    \  ],\n\
    \  \"p9_join_executor\": [\n\
     %s\n\
    \  ],\n\
    \  \"p10_session_reuse\": [\n\
     %s\n\
    \  ],\n\
    \  \"p11_domain_pool\": {\n\
    \    \"recommended_domains\": %d,\n\
    \    \"commit_phase_ms\": %.2f,\n\
    \    \"commit_phase_serial_est_ms\": %.2f,\n\
    \    \"runs\": [\n\
     %s\n\
    \    ]\n\
    \  },\n\
    \  \"p12_parallel_join\": [\n\
     %s\n\
    \  ],\n\
    \  \"p13_batch\": [\n\
     %s\n\
    \  ],\n\
    \  \"p14_server\": [\n\
     %s\n\
    \  ],\n\
    \  \"p15_dataflow\": {\n\
    \    \"latency_reduction\": %.2f,\n\
    \    \"runs\": [\n\
     %s\n\
    \    ]\n\
    \  }\n\
     }\n"
    (String.concat ",\n" (List.map p4_json p4))
    (String.concat ",\n" (List.map p9_json p9))
    (String.concat ",\n" (List.map p10_json p10))
    p11_recommended p11_base.p11_phase_ms p11_serial_phase_est
    (String.concat ",\n" (List.map p11_json p11_rows))
    (String.concat ",\n" (List.map p12_json p12))
    (String.concat ",\n" (List.map p13_json p13))
    (String.concat ",\n" (List.map p14_json p14))
    (p15_off.p15_virt_ms /. p15_on.p15_virt_ms)
    (String.concat ",\n" (List.map p15_json p15));
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* ---- session metrics export (observability layer) -------------------------------- *)

(* Replay the P4 workload once on a fresh session and export that session's
   metrics registry. Before writing anything, cross-check the two byte
   ledgers the registry reports: delivered traffic is charged to exactly
   one sender, so the per-site [sent_bytes] figures must sum to the global
   [bytes_moved] exactly — a drifting counter fails the smoke run before
   the JSON is uploaded. *)
let write_metrics_json ~path =
  let session, world = p4_setup 200 in
  Netsim.World.reset_stats world;
  Netsim.World.reset_clock world;
  (match M.exec session (p4_query 50) with
  | Ok _ -> ()
  | Error m -> failwith m);
  let st = Netsim.World.stats world in
  let site_sent_bytes, site_sent_msgs =
    List.fold_left
      (fun (b, m) (_, s) ->
        (b + s.Netsim.World.sent_bytes, m + s.Netsim.World.sent_msgs))
      (0, 0) (Netsim.World.per_site world)
  in
  if site_sent_bytes <> st.Netsim.World.bytes_moved then begin
    Printf.eprintf "metrics smoke FAILED: per-site sent bytes %d <> bytes_moved %d\n"
      site_sent_bytes st.Netsim.World.bytes_moved;
    exit 1
  end;
  if site_sent_msgs <> st.Netsim.World.messages then begin
    Printf.eprintf "metrics smoke FAILED: per-site sent msgs %d <> messages %d\n"
      site_sent_msgs st.Netsim.World.messages;
    exit 1
  end;
  Printf.printf
    "metrics smoke assertion passed: per-site sums match world stats \
     (%d bytes, %d messages)\n"
    site_sent_bytes site_sent_msgs;
  let oc = open_out path in
  output_string oc (M.metrics_json session);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---- P5: DOL optimizer ablation (Â§5 future work) ------------------------------- *)

let p5_optimizer_ablation () =
  header "P5: DOL optimizer ablation (parallel opens, task merging)";
  Printf.printf "%-6s %14s %14s %9s %12s
" "dbs" "plain ms" "optimized ms"
    "gain" "tasks merged";
  List.iter
    (fun n ->
      let sql = fleet_update n in
      let fx = F.airline_fleet ~n () in
      let prog =
        match M.translate fx.F.session sql with
        | Ok p -> p
        | Error m -> failwith m
      in
      let plain_ms, _ = run_program fx prog in
      let fx2 = F.airline_fleet ~n () in
      let optimized, stats = Narada.Dol_opt.optimize_with_stats prog in
      let opt_ms, _ = run_program fx2 optimized in
      Printf.printf "%-6d %14.2f %14.2f %8.2fx %12d
" n plain_ms opt_ms
        (plain_ms /. opt_ms) stats.Narada.Dol_opt.tasks_merged)
    [ 2; 4; 8; 12 ]

(* ---- P6: index fast-path ablation (local DBMS substrate) ------------------------ *)

let p6_index_ablation () =
  header "P6: equality-lookup index vs full scan (local engine, wall time)";
  Printf.printf "%-8s %14s %14s %9s
" "rows" "scan us" "indexed us" "speedup";
  List.iter
    (fun n ->
      let make indexed =
        let db = Ldbms.Database.create "w" in
        Ldbms.Database.load db ~name:"stock"
          [ Schema.column "sku" Ty.Int; Schema.column "bin" Ty.Str ]
          (List.init n (fun i ->
               [| Value.Int i; Value.Str (Printf.sprintf "bin%d" (i mod 97)) |]));
        if indexed then
          Ldbms.Database.create_index db ~name:"i" ~table:"stock" ~column:"bin";
        Ldbms.Session.connect db Ldbms.Capabilities.ingres_like
      in
      let sql = "SELECT sku FROM stock WHERE bin = 'bin13'" in
      let s_scan = make false and s_idx = make true in
      let scan_us =
        time_us (fun () -> Ldbms.Session.exec_sql s_scan sql)
      in
      let idx_us = time_us (fun () -> Ldbms.Session.exec_sql s_idx sql) in
      Printf.printf "%-8d %14.1f %14.1f %8.1fx
" n scan_us idx_us
        (scan_us /. idx_us))
    [ 100; 1000; 5000 ]

(* ---- P7: outcome distribution under random local failures ----------------------- *)

(* Stresses the vital-set guarantee of Â§3.2.1: with failures injected at
   every point (execute/prepare/commit) with probability p, how often does
   each outcome occur? "Incorrect" requires a second-phase failure window,
   so it stays rare even as aborts soar. *)
let p7_outcome_distribution () =
  header "P7: outcome distribution vs failure probability (200 trials each)";
  Printf.printf "%-8s | %-9s %-9s %-9s | %-9s %-9s %-9s
" "" "all-2PC" "" ""
    "autocommit+COMP" "" "";
  Printf.printf "%-8s | %-9s %-9s %-9s | %-9s %-9s %-9s
" "p(fail)" "success"
    "aborted" "INCORRECT" "success" "aborted" "INCORRECT";
  let trials = 200 in
  let run_one ~caps ~sql ~seed ~prob =
    let fx = F.make ~caps () in
    List.iteri
      (fun i db ->
        Ldbms.Failure_injector.set_random
          (Narada.Directory.find fx.F.directory db).Narada.Service.injector
          ~seed:((seed * 31) + i) ~prob)
      [ "continental"; "delta"; "united" ];
    match M.exec fx.F.session sql with
    | Ok (M.Update_report { outcome; _ }) -> Some outcome
    | Ok _ | Error _ -> None
  in
  let count ~caps ~sql ~prob =
    let s = ref 0 and a = ref 0 and i = ref 0 in
    for seed = 1 to trials do
      match run_one ~caps ~sql ~seed ~prob with
      | Some M.Success -> incr s
      | Some M.Aborted -> incr a
      | Some M.Incorrect -> incr i
      | None -> ()
    done;
    (!s, !a, !i)
  in
  List.iter
    (fun prob ->
      let s1, a1, i1 = count ~caps:[] ~sql:e3 ~prob in
      let s2, a2, i2 =
        count
          ~caps:[ ("continental", Ldbms.Capabilities.sybase_like) ]
          ~sql:e4 ~prob
      in
      Printf.printf "%-8.2f | %-9d %-9d %-9d | %-9d %-9d %-9d
" prob s1 a1 i1
        s2 a2 i2)
    [ 0.0; 0.05; 0.1; 0.2; 0.4 ]

(* ---- P8: function replication availability (Â§3.4 motivation) -------------------- *)

(* A stream of booking multitransactions, each able to run its update on
   either of two airlines (function replication, acceptable states
   [first] [second]) versus a baseline allowed only the first airline.
   As local failures rise, replication converts failures into fallbacks. *)
let p8_function_replication () =
  header "P8: function replication under failures (100 multitransactions)";
  Printf.printf "%-8s | %-10s %-10s %-7s | %-10s %-7s
" "" "replicated" "" ""
    "single" "";
  Printf.printf "%-8s | %-10s %-10s %-7s | %-10s %-7s
" "p(fail)" "first"
    "fallback" "failed" "committed" "failed";
  let txns = 100 in
  let mtx ~replicated a b =
    if replicated then
      Printf.sprintf
        {|BEGIN MULTITRANSACTION
  USE %s %s
  UPDATE flights SET rate = rate + 1 WHERE source = 'Houston';
COMMIT
  %s
  %s
END MULTITRANSACTION|}
        a b a b
    else
      Printf.sprintf
        {|BEGIN MULTITRANSACTION
  USE %s
  UPDATE flights SET rate = rate + 1 WHERE source = 'Houston';
COMMIT
  %s
END MULTITRANSACTION|}
        a a
  in
  let run ~replicated ~prob =
    let fx = F.airline_fleet ~n:4 ~flights_per_db:40 () in
    let rng = Random.State.make [| 2026 |] in
    List.iteri
      (fun i db ->
        Ldbms.Failure_injector.set_random
          (Narada.Directory.find fx.F.directory db).Narada.Service.injector
          ~seed:(1000 + i) ~prob)
      [ "airline1"; "airline2"; "airline3"; "airline4" ];
    let first = ref 0 and fallback = ref 0 and failed = ref 0 in
    for _ = 1 to txns do
      let a = 1 + Random.State.int rng 4 in
      let b = 1 + ((a + Random.State.int rng 3) mod 4) in
      let sql =
        mtx ~replicated
          (Printf.sprintf "airline%d" a)
          (Printf.sprintf "airline%d" b)
      in
      match M.exec fx.F.session sql with
      | Ok (M.Mtx_report { chosen = Some 0; _ }) -> incr first
      | Ok (M.Mtx_report { chosen = Some _; _ }) -> incr fallback
      | Ok (M.Mtx_report { chosen = None; _ }) -> incr failed
      | Ok _ | Error _ -> incr failed
    done;
    (!first, !fallback, !failed)
  in
  List.iter
    (fun prob ->
      let f1, fb, fl = run ~replicated:true ~prob in
      let s1, _, sfl = run ~replicated:false ~prob in
      Printf.printf "%-8.2f | %-10d %-10d %-7d | %-10d %-7d
" prob f1 fb fl s1
        sfl)
    [ 0.0; 0.1; 0.3; 0.5 ]

(* ---- Part 2: Bechamel wall-clock suite -------------------------------------------- *)

open Bechamel
open Toolkit

let bechamel_tests () =
  let fx = F.make () in
  let fx_comp = F.make ~caps:[ ("continental", Ldbms.Capabilities.sybase_like) ] () in
  let stage name f = Test.make ~name (Staged.stage f) in
  [
    stage "parse-e1" (fun () -> Msql.Mparser.parse_toplevel e1);
    stage "parse-e5-mtx" (fun () -> Msql.Mparser.parse_toplevel e5);
    stage "translate-e3" (fun () ->
        match M.translate fx.F.session e3 with Ok p -> p | Error m -> failwith m);
    stage "exec-e1-select" (fun () ->
        match M.exec fx.F.session e1 with Ok r -> r | Error m -> failwith m);
    stage "exec-e2-update" (fun () ->
        match M.exec fx.F.session e2 with Ok r -> r | Error m -> failwith m);
    stage "exec-e3-vital" (fun () ->
        match M.exec fx.F.session e3 with Ok r -> r | Error m -> failwith m);
    stage "exec-e4-comp" (fun () ->
        match M.exec fx_comp.F.session e4 with Ok r -> r | Error m -> failwith m);
    stage "exec-e5-mtx" (fun () ->
        match M.exec fx.F.session e5 with Ok r -> r | Error m -> failwith m);
  ]

let run_bechamel () =
  header "wall-clock pipeline costs (Bechamel, monotonic clock)";
  let tests = bechamel_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  Printf.printf "%-20s %14s %10s\n" "stage" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
          in
          Printf.printf "%-20s %14.0f %10.4f\n" name estimate r2)
        analyzed)
    tests

let () =
  (* --perf-smoke: only the perf-critical experiments plus their JSON
     record — the CI smoke configuration *)
  let smoke = Array.exists (String.equal "--perf-smoke") Sys.argv in
  (* --p10-one CONFIG: run a single P10 configuration at full size and
     exit — a profiling target (e.g. under gprofng) *)
  (match Array.to_list Sys.argv with
  | _ :: "--p10-one" :: configs :: _ ->
      let getenv_int v d =
        match Sys.getenv_opt v with Some s -> int_of_string s | None -> d
      in
      let rows = getenv_int "P10_ROWS" 6000 and n = getenv_int "P10_N" 150 in
      List.iter
        (fun config ->
          let pool, plan, result =
            match config with
            | "all-off" -> (false, false, false)
            | "pool" -> (true, false, false)
            | "pool+plan" -> (true, true, false)
            | "pool+plan+result" -> (true, true, true)
            | c -> failwith ("unknown P10 config " ^ c)
          in
          let r = p10_run ~rows ~n ~config ~pool ~plan ~result in
          Printf.printf "%s: %.1f stmts/s\n" r.p10_config r.p10_sps)
        (String.split_on_char ',' configs);
      exit 0
  | _ -> ());
  if smoke then begin
    let p4 = p4_shipping () in
    let p9 = p9_join_scaling () in
    (* reduced P10/P11: the traffic and determinism assertions are
       deterministic (virtual network), so the small configurations check
       the same invariants *)
    let p10 = p10_session_reuse ~rows:800 ~n:60 () in
    p10_assert_smoke p10;
    let p11 = p11_domain_pool ~rows:400 ~reps:2 () in
    p11_assert_smoke p11;
    let p12 = p12_parallel_join ~sizes:[ 20_000 ] ~reps:2 () in
    (* full-size kernels even in smoke: the 3x acceptance gate is about
       the 10^6-row regime, not a scaled-down proxy *)
    let p13 = p13_batch_kernels ~move_rows:5_000 ~reps:2 () in
    (* reduced P14: the serial-vs-concurrent equality gate is what the CI
       domain matrix is after; the throughput grid shrinks with it *)
    let p14 = p14_server ~rows:500 ~per_client:15 () in
    (* reduced P15: the equality and >=1.5x latency gates hold at any
       fleet width, so the smoke fleet shrinks with the rest *)
    let p15 = p15_dataflow ~n:6 ~reps:2 () in
    p15_assert_smoke p15;
    write_perf_json ~path:"BENCH_perf.json" p4 p9 p10 p11 p12 p13 p14 p15;
    write_metrics_json ~path:"BENCH_metrics.json";
    print_newline ()
  end
  else begin
    paper_examples ();
    p1_parallelism ();
    p2_vital_overhead ();
    p3_decomposition_scaling ();
    let p4 = p4_shipping () in
    p5_optimizer_ablation ();
    p6_index_ablation ();
    p7_outcome_distribution ();
    p8_function_replication ();
    let p9 = p9_join_scaling () in
    let p10 = p10_session_reuse () in
    p10_assert_smoke p10;
    let p11 = p11_domain_pool () in
    p11_assert_smoke p11;
    let p12 = p12_parallel_join () in
    let p13 = p13_batch_kernels () in
    let p14 = p14_server () in
    let p15 = p15_dataflow () in
    p15_assert_smoke p15;
    write_perf_json ~path:"BENCH_perf.json" p4 p9 p10 p11 p12 p13 p14 p15;
    write_metrics_json ~path:"BENCH_metrics.json";
    run_bechamel ();
    print_newline ()
  end
