(* Chaos benchmark: fault injection over the E4 vital update.

   Sweeps seeded message-loss probabilities — alone and combined with a
   transient outage of united's site (site3) scheduled across the 2PC
   window — and measures how often the multiple update still commits, how
   often it degrades to a clean abort, and how often the vital set splits.
   A second sweep compares Retry_policy.none against the default policy to
   price the retry overhead.

   Everything is virtual-time deterministic: trial k of a configuration
   always replays identically. Results go to BENCH_robustness.json.

   Run with:  dune exec bench/chaos.exe *)

module F = Msql.Fixtures
module M = Msql.Msession
module W = Netsim.World

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let e3 = {|USE continental VITAL delta united VITAL
UPDATE flight% SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}

let e4 = e3 ^ {|
COMP continental
UPDATE flights SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
COMP united
UPDATE flight SET rt = rt / 1.1
WHERE sour = 'Houston' AND dest = 'San Antonio'|}

type tally = {
  mutable success : int;
  mutable aborted : int;
  mutable incorrect : int;
  mutable split : int;
  mutable retries : int;
  mutable recovered : int;
  mutable in_doubt : int;
  mutable elapsed : float;
  mutable messages : int;
}

let fresh_tally () =
  { success = 0; aborted = 0; incorrect = 0; split = 0; retries = 0;
    recovered = 0; in_doubt = 0; elapsed = 0.0; messages = 0 }

let trials = 25

(* one deterministic trial: fresh federation, seeded faults, run E4 *)
let trial ~loss ~outage ~policy ~seed t =
  let fx = F.make () in
  let world = fx.F.world in
  W.reset_stats world;
  W.reset_clock world;
  if loss > 0.0 then W.set_loss world ~seed ~prob:loss;
  if outage then begin
    (* a transient crash of united's site across the prepare/commit
       window; width varies with the trial seed but always heals within
       the engine's recovery grace *)
    let from_ms = 15.0 +. float_of_int (seed mod 7) *. 5.0 in
    W.schedule_outage world "site3" ~from_ms ~until_ms:(from_ms +. 150.0)
  end;
  M.set_retry_policy fx.F.session policy;
  (match M.exec fx.F.session e4 with
  | Ok (M.Update_report { outcome = M.Success; _ }) -> t.success <- t.success + 1
  | Ok (M.Update_report { outcome = M.Aborted; _ }) -> t.aborted <- t.aborted + 1
  | Ok (M.Update_report { outcome = M.Incorrect; _ }) ->
      t.incorrect <- t.incorrect + 1
  | Ok _ | Error _ -> t.incorrect <- t.incorrect + 1);
  (match M.last_engine_outcome fx.F.session with
  | Some o ->
      t.retries <- t.retries + o.Narada.Engine.retries;
      t.recovered <- t.recovered + o.Narada.Engine.recovered;
      t.in_doubt <- t.in_doubt + o.Narada.Engine.in_doubt;
      if o.Narada.Engine.vital_split then t.split <- t.split + 1
  | None -> ());
  t.elapsed <- t.elapsed +. W.now_ms world;
  t.messages <- t.messages + (W.stats world).W.messages

let run_config ~loss ~outage ~policy =
  let t = fresh_tally () in
  for seed = 1 to trials do
    trial ~loss ~outage ~policy ~seed t
  done;
  t

let rate n = float_of_int n /. float_of_int trials
let avg_f x = x /. float_of_int trials
let avg_i n = float_of_int n /. float_of_int trials

let json_of_config ~label ~loss ~outage ~policy_name (t : tally) =
  Printf.sprintf
    {|    { "label": %S, "loss": %.3f, "outage": %b, "policy": %S,
      "trials": %d, "success_rate": %.3f, "aborted_rate": %.3f,
      "incorrect_rate": %.3f, "vital_split_rate": %.3f,
      "avg_retries": %.2f, "avg_recovered": %.2f, "avg_in_doubt": %.2f,
      "avg_elapsed_ms": %.2f, "avg_messages": %.1f }|}
    label loss outage policy_name trials (rate t.success) (rate t.aborted)
    (rate t.incorrect) (rate t.split) (avg_i t.retries) (avg_i t.recovered)
    (avg_i t.in_doubt) (avg_f t.elapsed) (avg_i t.messages)

(* ---- interleaving sweep: MVCC write-write conflicts --------------------

   Two sessions race a doubling and a +7 bump of the same continental
   flight under the deterministic interleaving harness. Every schedule
   must end serial-equivalent — the final rate must match some serial
   order of whatever committed — or be a clean first-committer-wins
   abort. The sweep also proves the conflict counters are live: if no
   schedule produced a write-write conflict and a conflict abort, the
   binary exits nonzero. *)

module IL = Msql.Interleave
module V = Sqlcore.Value
module D = Narada.Dol_ast

let lu_winner =
  "USE continental VITAL UPDATE flights SET rate = rate * 2 WHERE flnu = 101"

let lu_loser =
  "USE continental VITAL UPDATE flights SET rate = rate + 7 WHERE flnu = 101"

type itally = {
  mutable i_success : int;  (* participants that committed *)
  mutable i_aborted : int;  (* participants cleanly aborted *)
  mutable i_incorrect : int;  (* trials whose final state matched no serial order *)
  mutable i_conflicts : int;
  mutable i_conflict_retries : int;
  mutable i_conflict_aborts : int;
  mutable i_snapshots : int;
}

let fresh_itally () =
  { i_success = 0; i_aborted = 0; i_incorrect = 0; i_conflicts = 0;
    i_conflict_retries = 0; i_conflict_aborts = 0; i_snapshots = 0 }

let second_session fx =
  let s = M.create ~world:fx.F.world ~directory:fx.F.directory () in
  (match M.incorporate_auto s ~service:"continental" with
  | Ok () -> ()
  | Error m -> failwith m);
  (match M.import_all s ~service:"continental" with
  | Ok () -> ()
  | Error m -> failwith m);
  s

let rate_101 fx =
  match
    List.find_opt
      (fun r -> V.equal r.(0) (V.Int 101))
      (Sqlcore.Relation.rows (F.scan fx ~db:"continental" ~table:"flights"))
  with
  | Some r -> r.(6)
  | None -> V.Null

(* DOL statements up to and including the parallel task block *)
let steps_to_block t sql =
  match M.translate t sql with
  | Error m -> failwith m
  | Ok prog ->
      let has_task ms = List.exists (function D.Task _ -> true | _ -> false) ms in
      let rec idx k = function
        | [] -> failwith "no parallel task block"
        | D.Parallel ms :: _ when has_task ms -> k + 1
        | D.Task _ :: _ -> k + 1
        | _ :: rest -> idx (k + 1) rest
      in
      idx 0 prog

let interleave_trial ~schedule it =
  let fx = F.make () in
  let s2 = second_session fx in
  let schedule =
    match schedule with
    | `Scripted ->
        (* pin the first-committer-wins race: the winner runs through its
           prepare, then the loser hits the reservation *)
        let n = steps_to_block fx.F.session lu_winner in
        IL.Script (List.init n (fun _ -> "w") @ List.init n (fun _ -> "l"))
    | `Round_robin -> IL.Round_robin
    | `Seeded s -> IL.Seeded s
  in
  let outcome =
    IL.run ~schedule
      [
        { IL.label = "w"; session = fx.F.session; sql = lu_winner };
        { IL.label = "l"; session = s2; sql = lu_loser };
      ]
  in
  let cls label =
    match IL.result_of outcome label with
    | Ok (M.Update_report { outcome = M.Success; _ }) ->
        it.i_success <- it.i_success + 1;
        `S
    | Ok (M.Update_report { outcome = M.Aborted; _ }) ->
        it.i_aborted <- it.i_aborted + 1;
        `A
    | _ -> `X
  in
  let w = cls "w" and l = cls "l" in
  (* the serial orders consistent with what committed *)
  let expected =
    match (w, l) with
    | `S, `S -> [ 207.0; 214.0 ]
    | `S, `A -> [ 200.0 ]
    | `A, `S -> [ 107.0 ]
    | `A, `A -> [ 100.0 ]
    | _ -> []
  in
  let final = rate_101 fx in
  if not (List.exists (fun v -> V.equal final (V.Float v)) expected) then
    it.i_incorrect <- it.i_incorrect + 1;
  List.iter
    (fun s ->
      let m = M.metrics s in
      it.i_conflicts <- it.i_conflicts + m.Msql.Metrics.ww_conflicts;
      it.i_conflict_retries <-
        it.i_conflict_retries + m.Msql.Metrics.conflict_retries;
      it.i_conflict_aborts <-
        it.i_conflict_aborts + m.Msql.Metrics.conflict_aborts;
      it.i_snapshots <- it.i_snapshots + m.Msql.Metrics.snapshots)
    [ fx.F.session; s2 ]

let json_of_interleave ~label (t : itally) =
  Printf.sprintf
    {|    { "label": %S, "scenario": "interleave-lost-update",
      "committed": %d, "aborted": %d, "incorrect": %d,
      "ww_conflicts": %d, "conflict_retries": %d, "conflict_aborts": %d,
      "snapshots": %d }|}
    label t.i_success t.i_aborted t.i_incorrect t.i_conflicts
    t.i_conflict_retries t.i_conflict_aborts t.i_snapshots

let () =
  let out = ref [] in
  let add s = out := s :: !out in
  let line = String.make 72 '-' in
  Printf.printf "%s\nChaos sweep: E4 vital update under seeded faults (%d trials each)\n%s\n"
    line trials line;
  Printf.printf "%-26s %8s %8s %9s %8s %8s\n" "configuration" "success"
    "aborted" "incorrect" "splits" "retries";
  let report ~label ~loss ~outage ~policy ~policy_name =
    let t = run_config ~loss ~outage ~policy in
    Printf.printf "%-26s %8.2f %8.2f %9.2f %8.2f %8.2f\n" label
      (rate t.success) (rate t.aborted) (rate t.incorrect) (rate t.split)
      (avg_i t.retries);
    add (json_of_config ~label ~loss ~outage ~policy_name t)
  in
  (* message loss alone, default policy *)
  List.iter
    (fun loss ->
      report
        ~label:(Printf.sprintf "loss %.2f" loss)
        ~loss ~outage:false ~policy:None ~policy_name:"default")
    [ 0.0; 0.02; 0.05; 0.10; 0.20 ];
  (* loss combined with a transient site3 outage *)
  List.iter
    (fun loss ->
      report
        ~label:(Printf.sprintf "loss %.2f + outage" loss)
        ~loss ~outage:true ~policy:None ~policy_name:"default")
    [ 0.0; 0.05 ];
  (* retry overhead: no retries vs default under moderate loss *)
  report ~label:"loss 0.05, no retries" ~loss:0.05 ~outage:false
    ~policy:(Some Narada.Retry_policy.none) ~policy_name:"none";
  report ~label:"loss 0.05, aggressive" ~loss:0.05 ~outage:false
    ~policy:(Some Narada.Retry_policy.aggressive) ~policy_name:"aggressive";
  (* the 2PC in-doubt window: probe a clean run for the instant united's
     task reaches P, then crash its site from that instant until well past
     the engine's recovery grace. With a COMP the split heals into a clean
     abort; without one it stays a genuine vital split. *)
  let commit_window ~label ?(outage_ms = 10_000.0) sql =
    let probe = F.make () in
    let prep = ref 0.0 in
    M.set_trace probe.F.session
      (Some
         (fun line ->
           if !prep = 0.0 && contains line "t_united -> P" then
             Scanf.sscanf line "[ %f ms]" (fun t -> prep := t)));
    ignore (M.exec probe.F.session sql);
    let fx = F.make () in
    W.schedule_outage fx.F.world "site3" ~from_ms:!prep
      ~until_ms:(!prep +. outage_ms);
    let t = fresh_tally () in
    (match M.exec fx.F.session sql with
    | Ok (M.Update_report { outcome = M.Success; _ }) -> t.success <- 1
    | Ok (M.Update_report { outcome = M.Aborted; _ }) -> t.aborted <- 1
    | _ -> t.incorrect <- 1);
    (match M.last_engine_outcome fx.F.session with
    | Some o ->
        t.retries <- o.Narada.Engine.retries;
        t.recovered <- o.Narada.Engine.recovered;
        t.in_doubt <- o.Narada.Engine.in_doubt;
        if o.Narada.Engine.vital_split then t.split <- 1
    | None -> ());
    Printf.printf "%-26s %8d %8d %9d %8d %8d   (recovered: %d, in doubt: %d)\n"
      label t.success t.aborted t.incorrect t.split t.retries t.recovered
      t.in_doubt;
    add
      (Printf.sprintf
         {|    { "label": %S, "scenario": "2pc-commit-window", "outage_ms": %.0f,
      "success": %b, "aborted": %b, "incorrect": %b, "vital_split": %b,
      "recovered": %d, "in_doubt": %d }|}
         label outage_ms (t.success = 1) (t.aborted = 1) (t.incorrect = 1)
         (t.split = 1) t.recovered t.in_doubt)
  in
  commit_window ~label:"2PC window crash, recovers" ~outage_ms:200.0 e3;
  commit_window ~label:"2PC window crash, COMP" e4;
  commit_window ~label:"2PC window crash, no COMP" e3;
  (* MVCC interleaving sweep *)
  Printf.printf "%s\nInterleaving sweep: two sessions race one flight (lost update)\n%s\n"
    line line;
  Printf.printf "%-26s %9s %8s %9s %10s %8s %8s\n" "schedule" "committed"
    "aborted" "incorrect" "conflicts" "retries" "aborts";
  let grand = fresh_itally () in
  let sweep ~label ~schedules =
    let t = fresh_itally () in
    List.iter (fun schedule -> interleave_trial ~schedule t) schedules;
    Printf.printf "%-26s %9d %8d %9d %10d %8d %8d\n" label t.i_success
      t.i_aborted t.i_incorrect t.i_conflicts t.i_conflict_retries
      t.i_conflict_aborts;
    grand.i_incorrect <- grand.i_incorrect + t.i_incorrect;
    grand.i_conflicts <- grand.i_conflicts + t.i_conflicts;
    grand.i_conflict_aborts <- grand.i_conflict_aborts + t.i_conflict_aborts;
    grand.i_conflict_retries <- grand.i_conflict_retries + t.i_conflict_retries;
    grand.i_snapshots <- grand.i_snapshots + t.i_snapshots;
    add (json_of_interleave ~label t)
  in
  sweep ~label:"scripted FCW race" ~schedules:[ `Scripted ];
  sweep ~label:"round robin" ~schedules:[ `Round_robin ];
  sweep ~label:"seeded 1-8"
    ~schedules:(List.init 8 (fun k -> `Seeded (k + 1)));
  let oc = open_out "BENCH_robustness.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"e4-vital-update-chaos\",\n  \"trials_per_config\": %d,\n  \"configs\": [\n%s\n  ]\n}\n"
    trials
    (String.concat ",\n" (List.rev !out));
  close_out oc;
  Printf.printf "%s\nwrote BENCH_robustness.json\n" line;
  (* the sweep is only meaningful if the MVCC machinery actually fired:
     a silent zero here would mean conflicts are no longer detected *)
  if grand.i_incorrect > 0 then begin
    Printf.eprintf
      "FAIL: %d interleaved trial(s) ended in a non-serial-equivalent state\n"
      grand.i_incorrect;
    exit 1
  end;
  if grand.i_conflicts = 0 || grand.i_conflict_aborts = 0 then begin
    Printf.eprintf
      "FAIL: interleaving sweep exercised no write-write conflicts \
       (conflicts=%d, conflict_aborts=%d)\n"
      grand.i_conflicts grand.i_conflict_aborts;
    exit 1
  end;
  Printf.printf
    "interleaving sweep: %d conflicts, %d conflict retries, %d conflict aborts, %d snapshots\n"
    grand.i_conflicts grand.i_conflict_retries grand.i_conflict_aborts
    grand.i_snapshots
