(** Recursive-descent parser for the SQL subset.

    Reserved words are contextual: the parser stops reading clause lists at
    the keywords that may follow them, so common words can still be used as
    identifiers where unambiguous. *)

exception Error of string * int * int
(** Parse (or lexical) error with 1-based line and column. *)

val parse_stmt : string -> Ast.stmt
(** Parse a single statement; an optional trailing [;] is allowed. *)

val parse_script : string -> Ast.stmt list
(** Parse a [;]-separated statement list; empty statements are skipped. *)

val parse_select : string -> Ast.select
(** Parse a bare SELECT. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and by the MSQL
    translator when rewriting predicates). *)

(** Token-level entry points, used by the MSQL parser, which lexes with
    different identifier rules (wildcards, optional-column markers) and
    embeds these grammar productions in its own statements. They raise
    {!Tstream.Error}. *)

val stmt_of_tokens : Tstream.t -> Ast.stmt
val select_of_tokens : Tstream.t -> Ast.select
val expr_of_tokens : Tstream.t -> Ast.expr
