(** Tokens shared by the SQL parser (and reused, with a different lexer, by
    the MSQL parser). Keywords are not distinguished lexically: the parsers
    match [Ident] payloads case-insensitively, which lets keyword-like
    identifiers (e.g. a column named [day]) appear where the grammar allows
    them. *)

type t =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string  (** ['...'] literal, quotes stripped *)
  | Sym of string  (** punctuation / operator, e.g. ["("], ["<="], ["||"] *)
  | Eof

type located = { tok : t; tline : int; tcol : int }

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_keyword : t -> string -> bool
(** [is_keyword tok kw] — [tok] is an identifier equal to [kw]
    case-insensitively. *)
