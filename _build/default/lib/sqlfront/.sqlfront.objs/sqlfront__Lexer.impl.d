lib/sqlfront/lexer.ml: List Printf Sqlcore String Token
