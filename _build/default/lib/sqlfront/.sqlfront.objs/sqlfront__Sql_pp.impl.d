lib/sqlfront/sql_pp.ml: Ast Buffer Format List Printf Sqlcore String
