lib/sqlfront/parser.ml: Ast Lexer List Printf Sqlcore Token Tstream
