lib/sqlfront/ast.mli: Sqlcore
