lib/sqlfront/tstream.mli: Token
