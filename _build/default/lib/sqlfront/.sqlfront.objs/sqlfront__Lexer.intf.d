lib/sqlfront/lexer.mli: Token
