lib/sqlfront/token.ml: Float Format Sqlcore String
