lib/sqlfront/sql_pp.mli: Ast Format
