lib/sqlfront/ast.ml: Float List Option Sqlcore
