lib/sqlfront/tstream.ml: Printf String Token
