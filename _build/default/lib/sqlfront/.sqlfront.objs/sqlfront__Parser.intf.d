lib/sqlfront/parser.mli: Ast Tstream
