type t =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Sym of string
  | Eof

type located = { tok : t; tline : int; tcol : int }

let equal a b =
  match a, b with
  | Ident x, Ident y -> Sqlcore.Names.equal x y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Sym x, Sym y -> String.equal x y
  | Eof, Eof -> true
  | (Ident _ | Int _ | Float _ | Str _ | Sym _ | Eof), _ -> false

let to_string = function
  | Ident s -> s
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> "'" ^ s ^ "'"
  | Sym s -> s
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_keyword t kw =
  match t with Ident s -> Sqlcore.Names.equal s kw | _ -> false
