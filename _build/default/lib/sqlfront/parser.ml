open Ast

exception Error of string * int * int

(* Keywords that terminate an expression or a clause list. *)
let clause_kw =
  [
    "from"; "where"; "group"; "having"; "order"; "and"; "or"; "not"; "as";
    "asc"; "desc"; "union"; "set"; "values"; "like"; "in"; "between"; "is";
    "null"; "exists"; "select"; "distinct"; "all"; "by"; "insert"; "update";
    "delete"; "create"; "drop"; "commit"; "rollback"; "prepare"; "begin";
    (* MSQL clause keywords; the MSQL parser embeds this grammar, so an
       alias may not shadow them *)
    "comp"; "vital"; "use"; "let"; "end"; "do"; "when";
  ]

let agg_of_name name =
  match Sqlcore.Names.canon name with
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let rec parse_expr_prec ts = parse_or ts

and parse_or ts =
  let lhs = parse_and ts in
  if Tstream.accept_kw ts "or" then Binop (Or, lhs, parse_or ts) else lhs

and parse_and ts =
  let lhs = parse_not ts in
  if Tstream.accept_kw ts "and" then Binop (And, lhs, parse_and ts) else lhs

and parse_not ts =
  if Tstream.accept_kw ts "not" then Unop (Not, parse_not ts)
  else parse_comparison ts

and parse_comparison ts =
  let lhs = parse_additive ts in
  let negated = Tstream.accept_kw ts "not" in
  if Tstream.accept_kw ts "like" then begin
    match Tstream.next ts with
    | Token.Str pattern -> Like { arg = lhs; pattern; negated }
    | _ -> Tstream.error ts "LIKE expects a string pattern"
  end
  else if Tstream.accept_kw ts "between" then begin
    let lo = parse_additive ts in
    Tstream.expect_kw ts "and";
    let hi = parse_additive ts in
    Between { arg = lhs; lo; hi; negated }
  end
  else if Tstream.accept_kw ts "in" then begin
    Tstream.expect_sym ts "(";
    if Tstream.at_kw ts "select" then begin
      let query = parse_select_body ts in
      Tstream.expect_sym ts ")";
      In_subquery { arg = lhs; query; negated }
    end
    else begin
      let items = parse_expr_list ts in
      Tstream.expect_sym ts ")";
      In_list { arg = lhs; items; negated }
    end
  end
  else if negated then Tstream.error ts "expected LIKE, BETWEEN or IN after NOT"
  else if Tstream.accept_kw ts "is" then begin
    let negated = Tstream.accept_kw ts "not" in
    Tstream.expect_kw ts "null";
    Is_null { arg = lhs; negated }
  end
  else
    let op =
      if Tstream.accept_sym ts "=" then Some Eq
      else if Tstream.accept_sym ts "<>" then Some Neq
      else if Tstream.accept_sym ts "<=" then Some Le
      else if Tstream.accept_sym ts ">=" then Some Ge
      else if Tstream.accept_sym ts "<" then Some Lt
      else if Tstream.accept_sym ts ">" then Some Gt
      else None
    in
    match op with
    | None -> lhs
    | Some op -> Binop (op, lhs, parse_additive ts)

and parse_additive ts =
  let rec loop lhs =
    if Tstream.accept_sym ts "+" then loop (Binop (Add, lhs, parse_multiplicative ts))
    else if Tstream.accept_sym ts "-" then
      loop (Binop (Sub, lhs, parse_multiplicative ts))
    else if Tstream.accept_sym ts "||" then
      loop (Binop (Concat, lhs, parse_multiplicative ts))
    else lhs
  in
  loop (parse_multiplicative ts)

and parse_multiplicative ts =
  let rec loop lhs =
    if Tstream.accept_sym ts "*" then loop (Binop (Mul, lhs, parse_unary ts))
    else if Tstream.accept_sym ts "/" then loop (Binop (Div, lhs, parse_unary ts))
    else if Tstream.accept_sym ts "%" then loop (Binop (Mod, lhs, parse_unary ts))
    else lhs
  in
  loop (parse_unary ts)

and parse_unary ts =
  if Tstream.accept_sym ts "-" then Unop (Neg, parse_unary ts)
  else if Tstream.accept_sym ts "+" then parse_unary ts
  else parse_primary ts

and parse_primary ts =
  match Tstream.peek ts with
  | Token.Int i ->
      Tstream.advance ts;
      Lit (Sqlcore.Value.Int i)
  | Token.Float f ->
      Tstream.advance ts;
      Lit (Sqlcore.Value.Float f)
  | Token.Str s ->
      Tstream.advance ts;
      Lit (Sqlcore.Value.Str s)
  | Token.Sym "(" ->
      Tstream.advance ts;
      if Tstream.at_kw ts "select" then begin
        let q = parse_select_body ts in
        Tstream.expect_sym ts ")";
        Scalar_subquery q
      end
      else begin
        let e = parse_expr_prec ts in
        Tstream.expect_sym ts ")";
        e
      end
  | Token.Ident name -> parse_ident_expr ts name
  | tok -> Tstream.error ts (Printf.sprintf "unexpected token %s" (Token.to_string tok))

and parse_ident_expr ts name =
  if Sqlcore.Names.equal name "exists" then begin
    Tstream.advance ts;
    Tstream.expect_sym ts "(";
    let q =
      if Tstream.at_kw ts "select" then parse_select_body ts
      else Tstream.error ts "EXISTS expects a subquery"
    in
    Tstream.expect_sym ts ")";
    Exists q
  end
  else if Sqlcore.Names.equal name "null" then begin
    Tstream.advance ts;
    Lit Sqlcore.Value.Null
  end
  else if Sqlcore.Names.equal name "true" then begin
    Tstream.advance ts;
    Lit (Sqlcore.Value.Bool true)
  end
  else if Sqlcore.Names.equal name "false" then begin
    Tstream.advance ts;
    Lit (Sqlcore.Value.Bool false)
  end
  else begin
    Tstream.advance ts;
    match agg_of_name name with
    | Some fn when Tstream.at_sym ts "(" ->
        Tstream.advance ts;
        if fn = Count && Tstream.accept_sym ts "*" then begin
          Tstream.expect_sym ts ")";
          Agg { fn = Count_star; distinct = false; arg = None }
        end
        else begin
          let distinct = Tstream.accept_kw ts "distinct" in
          let arg = parse_expr_prec ts in
          Tstream.expect_sym ts ")";
          Agg { fn; distinct; arg = Some arg }
        end
    | Some _ | None ->
        if Tstream.accept_sym ts "." then
          let field = Tstream.ident ts in
          Col { qualifier = Some name; name = field }
        else Col { qualifier = None; name }
  end

and parse_expr_list ts =
  let e = parse_expr_prec ts in
  if Tstream.accept_sym ts "," then e :: parse_expr_list ts else [ e ]

(* SELECT body; the leading SELECT keyword is still pending. *)
and parse_select_body ts =
  Tstream.expect_kw ts "select";
  let distinct =
    if Tstream.accept_kw ts "distinct" then true
    else begin
      ignore (Tstream.accept_kw ts "all");
      false
    end
  in
  let projections = parse_projections ts in
  Tstream.expect_kw ts "from";
  let from = parse_table_refs ts in
  let where = if Tstream.accept_kw ts "where" then Some (parse_expr_prec ts) else None in
  let group_by =
    if Tstream.at_kw ts "group" then begin
      Tstream.advance ts;
      Tstream.expect_kw ts "by";
      parse_expr_list ts
    end
    else []
  in
  let having = if Tstream.accept_kw ts "having" then Some (parse_expr_prec ts) else None in
  let order_by =
    if Tstream.at_kw ts "order" then begin
      Tstream.advance ts;
      Tstream.expect_kw ts "by";
      parse_order_items ts
    end
    else []
  in
  { distinct; projections; from; where; group_by; having; order_by }

and parse_projections ts =
  let item () =
    if Tstream.accept_sym ts "*" then Star
    else begin
      (* qualified star t.* needs 3-token lookahead; handle by consuming
         the ident and dot, then checking for '*' *)
      match Tstream.peek ts, Tstream.peek2 ts with
      | Token.Ident q, Token.Sym "." -> (
          (* try t.* *)
          let saved_q = q in
          Tstream.advance ts;
          Tstream.advance ts;
          if Tstream.accept_sym ts "*" then Qualified_star saved_q
          else
            let field = Tstream.ident ts in
            let e = Col { qualifier = Some saved_q; name = field } in
            (* allow operators to continue after the column, e.g. t.a + 1 *)
            let e = continue_expr ts e in
            let alias = parse_alias ts in
            Proj_expr (e, alias))
      | _ ->
          let e = parse_expr_prec ts in
          let alias = parse_alias ts in
          Proj_expr (e, alias)
    end
  in
  let rec loop acc =
    let p = item () in
    if Tstream.accept_sym ts "," then loop (p :: acc) else List.rev (p :: acc)
  in
  loop []

(* Continue parsing binary operators after an already-parsed primary: wrap
   the primary back through the precedence chain. *)
and continue_expr ts lhs =
  (* multiplicative *)
  let lhs =
    let rec loop lhs =
      if Tstream.accept_sym ts "*" then loop (Binop (Mul, lhs, parse_unary ts))
      else if Tstream.accept_sym ts "/" then loop (Binop (Div, lhs, parse_unary ts))
      else if Tstream.accept_sym ts "%" then loop (Binop (Mod, lhs, parse_unary ts))
      else lhs
    in
    loop lhs
  in
  let rec add lhs =
    if Tstream.accept_sym ts "+" then add (Binop (Add, lhs, parse_multiplicative ts))
    else if Tstream.accept_sym ts "-" then add (Binop (Sub, lhs, parse_multiplicative ts))
    else if Tstream.accept_sym ts "||" then
      add (Binop (Concat, lhs, parse_multiplicative ts))
    else lhs
  in
  add lhs

and parse_alias ts =
  if Tstream.accept_kw ts "as" then Some (Tstream.ident ts)
  else
    match Tstream.peek ts with
    | Token.Ident name when not (Sqlcore.Names.mem name clause_kw) ->
        Tstream.advance ts;
        Some name
    | _ -> None

and parse_table_refs ts =
  let one () =
    (* a table may be database-qualified: db.table (MSQL-style prefixing);
       the dotted name is kept as a single string and split upstream *)
    let first = Tstream.ident ts in
    let table =
      if Tstream.accept_sym ts "." then first ^ "." ^ Tstream.ident ts else first
    in
    let alias = parse_alias ts in
    { table; alias }
  in
  let rec loop acc =
    let r = one () in
    if Tstream.accept_sym ts "," then loop (r :: acc) else List.rev (r :: acc)
  in
  loop []

and parse_order_items ts =
  let one () =
    let sort_expr = parse_expr_prec ts in
    let descending =
      if Tstream.accept_kw ts "desc" then true
      else begin
        ignore (Tstream.accept_kw ts "asc");
        false
      end
    in
    { sort_expr; descending }
  in
  let rec loop acc =
    let o = one () in
    if Tstream.accept_sym ts "," then loop (o :: acc) else List.rev (o :: acc)
  in
  loop []

(* table names may be database-qualified: db.table *)
let table_name ts =
  let first = Tstream.ident ts in
  if Tstream.accept_sym ts "." then first ^ "." ^ Tstream.ident ts else first

let parse_column_defs ts =
  Tstream.expect_sym ts "(";
  let one () =
    let col_name = Tstream.ident ts in
    let tyname = Tstream.ident ts in
    let col_ty =
      match Sqlcore.Ty.of_string tyname with
      | Some ty -> ty
      | None -> Tstream.error ts (Printf.sprintf "unknown type %s" tyname)
    in
    let col_width =
      if Tstream.accept_sym ts "(" then begin
        let w =
          match Tstream.next ts with
          | Token.Int w -> w
          | _ -> Tstream.error ts "expected width"
        in
        Tstream.expect_sym ts ")";
        Some w
      end
      else None
    in
    let col_not_null = ref false and col_unique = ref false in
    let rec flags () =
      if Tstream.accept_kw ts "not" then begin
        Tstream.expect_kw ts "null";
        col_not_null := true;
        flags ()
      end
      else if Tstream.accept_kw ts "unique" then begin
        col_unique := true;
        flags ()
      end
    in
    flags ();
    { col_name; col_ty; col_width; col_not_null = !col_not_null;
      col_unique = !col_unique }
  in
  let rec loop acc =
    let c = one () in
    if Tstream.accept_sym ts "," then loop (c :: acc)
    else begin
      Tstream.expect_sym ts ")";
      List.rev (c :: acc)
    end
  in
  loop []

let parse_stmt_body ts =
  if Tstream.at_kw ts "select" then Select (parse_select_body ts)
  else if Tstream.accept_kw ts "insert" then begin
    Tstream.expect_kw ts "into";
    let table = table_name ts in
    let columns =
      if Tstream.at_sym ts "(" then begin
        Tstream.advance ts;
        let rec cols acc =
          let c = Tstream.ident ts in
          if Tstream.accept_sym ts "," then cols (c :: acc)
          else begin
            Tstream.expect_sym ts ")";
            List.rev (c :: acc)
          end
        in
        Some (cols [])
      end
      else None
    in
    if Tstream.accept_kw ts "values" then begin
      let row () =
        Tstream.expect_sym ts "(";
        let items = parse_expr_list ts in
        Tstream.expect_sym ts ")";
        items
      in
      let rec rows acc =
        let r = row () in
        if Tstream.accept_sym ts "," then rows (r :: acc) else List.rev (r :: acc)
      in
      Insert { table; columns; source = Values (rows []) }
    end
    else if Tstream.at_kw ts "select" then
      Insert { table; columns; source = Query (parse_select_body ts) }
    else Tstream.error ts "expected VALUES or SELECT"
  end
  else if Tstream.accept_kw ts "update" then begin
    let table = table_name ts in
    Tstream.expect_kw ts "set";
    let assign () =
      let c = Tstream.ident ts in
      Tstream.expect_sym ts "=";
      let e = parse_expr_prec ts in
      (c, e)
    in
    let rec assigns acc =
      let a = assign () in
      if Tstream.accept_sym ts "," then assigns (a :: acc) else List.rev (a :: acc)
    in
    let assignments = assigns [] in
    let where = if Tstream.accept_kw ts "where" then Some (parse_expr_prec ts) else None in
    Update { table; assignments; where }
  end
  else if Tstream.accept_kw ts "delete" then begin
    Tstream.expect_kw ts "from";
    let table = table_name ts in
    let where = if Tstream.accept_kw ts "where" then Some (parse_expr_prec ts) else None in
    Delete { table; where }
  end
  else if Tstream.accept_kw ts "create" then begin
    if Tstream.accept_kw ts "index" then begin
      let index = Tstream.ident ts in
      Tstream.expect_kw ts "on";
      let idx_table = table_name ts in
      Tstream.expect_sym ts "(";
      let idx_column = Tstream.ident ts in
      Tstream.expect_sym ts ")";
      Create_index { index; idx_table; idx_column }
    end
    else if Tstream.accept_kw ts "view" then begin
      let view = Tstream.ident ts in
      Tstream.expect_kw ts "as";
      Create_view { view; view_query = parse_select_body ts }
    end
    else begin
      Tstream.expect_kw ts "table";
      let table = table_name ts in
      let columns = parse_column_defs ts in
      Create_table { table; columns }
    end
  end
  else if Tstream.accept_kw ts "drop" then begin
    if Tstream.accept_kw ts "index" then Drop_index { index = Tstream.ident ts }
    else if Tstream.accept_kw ts "view" then Drop_view { view = Tstream.ident ts }
    else begin
      Tstream.expect_kw ts "table";
      let table = table_name ts in
      Drop_table { table }
    end
  end
  else if Tstream.accept_kw ts "begin" then begin
    ignore (Tstream.accept_kw ts "work");
    ignore (Tstream.accept_kw ts "transaction");
    Begin_txn
  end
  else if Tstream.accept_kw ts "commit" then begin
    ignore (Tstream.accept_kw ts "work");
    Commit_txn
  end
  else if Tstream.accept_kw ts "rollback" then begin
    ignore (Tstream.accept_kw ts "work");
    Rollback_txn
  end
  else if Tstream.accept_kw ts "prepare" then Prepare_txn
  else Tstream.error ts "expected a statement"

let with_stream input f =
  try
    let ts = Tstream.create (Lexer.tokenize input) in
    let r = f ts in
    (match Tstream.peek ts with
    | Token.Eof -> ()
    | tok ->
        Tstream.error ts (Printf.sprintf "trailing input: %s" (Token.to_string tok)));
    r
  with
  | Lexer.Error (m, l, c) -> raise (Error (m, l, c))
  | Tstream.Error (m, l, c) -> raise (Error (m, l, c))

let stmt_of_tokens = parse_stmt_body
let select_of_tokens = parse_select_body
let expr_of_tokens = parse_expr_prec

let parse_stmt input =
  with_stream input (fun ts ->
      let s = parse_stmt_body ts in
      ignore (Tstream.accept_sym ts ";");
      s)

let parse_script input =
  with_stream input (fun ts ->
      let rec loop acc =
        if Tstream.at_eof ts then List.rev acc
        else if Tstream.accept_sym ts ";" then loop acc
        else begin
          let s = parse_stmt_body ts in
          ignore (Tstream.accept_sym ts ";");
          loop (s :: acc)
        end
      in
      loop [])

let parse_select input = with_stream input parse_select_body
let parse_expr input = with_stream input parse_expr_prec
