open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Concat -> "||"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let agg_str = function
  | Count_star | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

(* Fully parenthesized compound expressions: simple, unambiguous, and
   round-trips through the parser. *)
let rec expr_to_string = function
  | Lit v -> Sqlcore.Value.to_literal v
  | Col { qualifier = None; name } -> name
  | Col { qualifier = Some q; name } -> q ^ "." ^ name
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op)
        (expr_to_string b)
  | Unop (Neg, a) -> Printf.sprintf "(- %s)" (expr_to_string a)
  | Unop (Not, a) -> Printf.sprintf "(NOT %s)" (expr_to_string a)
  | Is_null { arg; negated } ->
      Printf.sprintf "(%s IS %sNULL)" (expr_to_string arg)
        (if negated then "NOT " else "")
  | Like { arg; pattern; negated } ->
      Printf.sprintf "(%s %sLIKE %s)" (expr_to_string arg)
        (if negated then "NOT " else "")
        (Sqlcore.Value.to_literal (Sqlcore.Value.Str pattern))
  | In_list { arg; items; negated } ->
      Printf.sprintf "(%s %sIN (%s))" (expr_to_string arg)
        (if negated then "NOT " else "")
        (String.concat ", " (List.map expr_to_string items))
  | Between { arg; lo; hi; negated } ->
      Printf.sprintf "(%s %sBETWEEN %s AND %s)" (expr_to_string arg)
        (if negated then "NOT " else "")
        (expr_to_string lo) (expr_to_string hi)
  | Agg { fn = Count_star; _ } -> "COUNT(*)"
  | Agg { fn; distinct; arg } ->
      Printf.sprintf "%s(%s%s)" (agg_str fn)
        (if distinct then "DISTINCT " else "")
        (match arg with Some e -> expr_to_string e | None -> "*")
  | Scalar_subquery q -> Printf.sprintf "(%s)" (select_to_string q)
  | In_subquery { arg; query; negated } ->
      Printf.sprintf "(%s %sIN (%s))" (expr_to_string arg)
        (if negated then "NOT " else "")
        (select_to_string query)
  | Exists q -> Printf.sprintf "EXISTS (%s)" (select_to_string q)

and projection_to_string = function
  | Star -> "*"
  | Qualified_star q -> q ^ ".*"
  | Proj_expr (e, None) -> expr_to_string e
  | Proj_expr (e, Some a) -> expr_to_string e ^ " AS " ^ a

and table_ref_to_string { table; alias } =
  match alias with None -> table | Some a -> table ^ " " ^ a

and select_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map projection_to_string s.projections));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", " (List.map table_ref_to_string s.from));
  (match s.where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ expr_to_string e)
  | None -> ());
  (match s.group_by with
  | [] -> ()
  | es ->
      Buffer.add_string buf
        (" GROUP BY " ^ String.concat ", " (List.map expr_to_string es)));
  (match s.having with
  | Some e -> Buffer.add_string buf (" HAVING " ^ expr_to_string e)
  | None -> ());
  (match s.order_by with
  | [] -> ()
  | items ->
      let item { sort_expr; descending } =
        expr_to_string sort_expr ^ if descending then " DESC" else " ASC"
      in
      Buffer.add_string buf (" ORDER BY " ^ String.concat ", " (List.map item items)));
  Buffer.contents buf

let column_def_to_string { col_name; col_ty; col_width; col_not_null; col_unique }
    =
  let base =
    match col_width with
    | Some w -> Printf.sprintf "%s %s(%d)" col_name (Sqlcore.Ty.to_string col_ty) w
    | None -> Printf.sprintf "%s %s" col_name (Sqlcore.Ty.to_string col_ty)
  in
  base
  ^ (if col_not_null then " NOT NULL" else "")
  ^ if col_unique then " UNIQUE" else ""

let stmt_to_string = function
  | Select s -> select_to_string s
  | Insert { table; columns; source } ->
      let cols =
        match columns with
        | None -> ""
        | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      in
      let src =
        match source with
        | Values rows ->
            " VALUES "
            ^ String.concat ", "
                (List.map
                   (fun row ->
                     Printf.sprintf "(%s)"
                       (String.concat ", " (List.map expr_to_string row)))
                   rows)
        | Query q -> " " ^ select_to_string q
      in
      Printf.sprintf "INSERT INTO %s%s%s" table cols src
  | Update { table; assignments; where } ->
      let assigns =
        String.concat ", "
          (List.map (fun (c, e) -> c ^ " = " ^ expr_to_string e) assignments)
      in
      let w =
        match where with Some e -> " WHERE " ^ expr_to_string e | None -> ""
      in
      Printf.sprintf "UPDATE %s SET %s%s" table assigns w
  | Delete { table; where } ->
      let w =
        match where with Some e -> " WHERE " ^ expr_to_string e | None -> ""
      in
      Printf.sprintf "DELETE FROM %s%s" table w
  | Create_table { table; columns } ->
      Printf.sprintf "CREATE TABLE %s (%s)" table
        (String.concat ", " (List.map column_def_to_string columns))
  | Drop_table { table } -> Printf.sprintf "DROP TABLE %s" table
  | Create_view { view; view_query } ->
      Printf.sprintf "CREATE VIEW %s AS %s" view (select_to_string view_query)
  | Drop_view { view } -> Printf.sprintf "DROP VIEW %s" view
  | Create_index { index; idx_table; idx_column } ->
      Printf.sprintf "CREATE INDEX %s ON %s (%s)" index idx_table idx_column
  | Drop_index { index } -> Printf.sprintf "DROP INDEX %s" index
  | Begin_txn -> "BEGIN"
  | Commit_txn -> "COMMIT"
  | Rollback_txn -> "ROLLBACK"
  | Prepare_txn -> "PREPARE"

let pp_stmt ppf s = Format.pp_print_string ppf (stmt_to_string s)
