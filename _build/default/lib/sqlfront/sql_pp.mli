(** Rendering of SQL ASTs back to concrete SQL text.

    The MSQL decomposer builds local subqueries as ASTs and ships them to
    the LAMs as text, so this printer must produce output {!Parser} accepts
    (round-tripping is property-tested). *)

val expr_to_string : Ast.expr -> string
val select_to_string : Ast.select -> string
val stmt_to_string : Ast.stmt -> string
val pp_stmt : Format.formatter -> Ast.stmt -> unit
