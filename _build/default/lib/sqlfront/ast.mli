(** Abstract syntax of the SQL subset executed by the local database
    engines.

    This is the language a LAM ships to an LDBMS: single-database SQL with
    scalar/IN/EXISTS subqueries — rich enough for every local subquery the
    MSQL decomposer can generate, including the paper's
    [WHERE snu = (SELECT MIN(snu) FROM ...)] reservations. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat  (** string concatenation [||] *)
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Lit of Sqlcore.Value.t
  | Col of { qualifier : string option; name : string }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of { arg : expr; negated : bool }
  | Like of { arg : expr; pattern : string; negated : bool }
  | In_list of { arg : expr; items : expr list; negated : bool }
  | Between of { arg : expr; lo : expr; hi : expr; negated : bool }
  | Agg of { fn : agg_fn; distinct : bool; arg : expr option }
  | Scalar_subquery of select
  | In_subquery of { arg : expr; query : select; negated : bool }
  | Exists of select

and projection =
  | Star
  | Qualified_star of string
  | Proj_expr of expr * string option  (** expression with optional alias *)

and table_ref = { table : string; alias : string option }

and order_item = { sort_expr : expr; descending : bool }

and select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
}

type column_def = {
  col_name : string;
  col_ty : Sqlcore.Ty.t;
  col_width : int option;
  col_not_null : bool;
  col_unique : bool;
}

type insert_source = Values of expr list list | Query of select

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list option; source : insert_source }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of { table : string; columns : column_def list }
  | Drop_table of { table : string }
  | Create_view of { view : string; view_query : select }
  | Drop_view of { view : string }
  | Create_index of { index : string; idx_table : string; idx_column : string }
  | Drop_index of { index : string }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Prepare_txn
      (** Enter the prepared-to-commit state (first phase of 2PC); only
          meaningful on engines whose capabilities advertise 2PC. *)

val select :
  ?distinct:bool ->
  ?where:expr ->
  ?group_by:expr list ->
  ?having:expr ->
  ?order_by:order_item list ->
  projections:projection list ->
  from:table_ref list ->
  unit ->
  select

val col : ?qualifier:string -> string -> expr
val lit_int : int -> expr
val lit_float : float -> expr
val lit_str : string -> expr

val is_aggregate_query : select -> bool
(** True when the projection or HAVING clause mentions an aggregate, or a
    GROUP BY is present. *)

val expr_has_agg : expr -> bool

val tables_of_select : select -> string list
(** All table names referenced in FROM clauses, including those of nested
    subqueries. *)

val tables_of_stmt : stmt -> string list

val equal_stmt : stmt -> stmt -> bool
(** Structural equality (literal floats compared with [Float.equal]). *)
