(** Token-stream cursor with the look-ahead and expectation helpers the
    recursive-descent parsers (SQL, MSQL, DOL) are written against. *)

type t

exception Error of string * int * int
(** Parse error with the position of the offending token. *)

val create : Token.located list -> t
val peek : t -> Token.t
val peek2 : t -> Token.t
val advance : t -> unit
val next : t -> Token.t
val at_eof : t -> bool
val error : t -> string -> 'a

val at_kw : t -> string -> bool
(** Next token is the given keyword (case-insensitive identifier). *)

val at_kw2 : t -> string -> bool
(** Token after next is the given keyword. *)

val at_sym : t -> string -> bool

val accept_kw : t -> string -> bool
(** Consume the keyword if present; report whether it was. *)

val accept_sym : t -> string -> bool
val expect_kw : t -> string -> unit
val expect_sym : t -> string -> unit

val ident : t -> string
(** Consume and return an identifier; parse error otherwise. *)
