type t = { mutable toks : Token.located list }

exception Error of string * int * int

let create toks = { toks }

let hd t =
  match t.toks with
  | [] -> { Token.tok = Token.Eof; tline = 0; tcol = 0 }
  | l :: _ -> l

let peek t = (hd t).Token.tok

let peek2 t =
  match t.toks with
  | _ :: l :: _ -> l.Token.tok
  | _ :: [] | [] -> Token.Eof

let advance t = match t.toks with [] -> () | _ :: rest -> t.toks <- rest

let next t =
  let tok = peek t in
  advance t;
  tok

let at_eof t = peek t = Token.Eof

let error t msg =
  let l = hd t in
  raise
    (Error
       ( Printf.sprintf "%s (at %s)" msg (Token.to_string l.Token.tok),
         l.Token.tline,
         l.Token.tcol ))

let at_kw t kw = Token.is_keyword (peek t) kw
let at_kw2 t kw = Token.is_keyword (peek2 t) kw
let at_sym t s = match peek t with Token.Sym x -> String.equal x s | _ -> false

let accept_kw t kw =
  if at_kw t kw then begin
    advance t;
    true
  end
  else false

let accept_sym t s =
  if at_sym t s then begin
    advance t;
    true
  end
  else false

let expect_kw t kw =
  if not (accept_kw t kw) then error t (Printf.sprintf "expected %s" kw)

let expect_sym t s =
  if not (accept_sym t s) then error t (Printf.sprintf "expected '%s'" s)

let ident t =
  match peek t with
  | Token.Ident s ->
      advance t;
      s
  | _ -> error t "expected identifier"
