type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type agg_fn = Count_star | Count | Sum | Avg | Min | Max

type expr =
  | Lit of Sqlcore.Value.t
  | Col of { qualifier : string option; name : string }
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_null of { arg : expr; negated : bool }
  | Like of { arg : expr; pattern : string; negated : bool }
  | In_list of { arg : expr; items : expr list; negated : bool }
  | Between of { arg : expr; lo : expr; hi : expr; negated : bool }
  | Agg of { fn : agg_fn; distinct : bool; arg : expr option }
  | Scalar_subquery of select
  | In_subquery of { arg : expr; query : select; negated : bool }
  | Exists of select

and projection =
  | Star
  | Qualified_star of string
  | Proj_expr of expr * string option

and table_ref = { table : string; alias : string option }

and order_item = { sort_expr : expr; descending : bool }

and select = {
  distinct : bool;
  projections : projection list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
}

type column_def = {
  col_name : string;
  col_ty : Sqlcore.Ty.t;
  col_width : int option;
  col_not_null : bool;
  col_unique : bool;
}

type insert_source = Values of expr list list | Query of select

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list option; source : insert_source }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of { table : string; columns : column_def list }
  | Drop_table of { table : string }
  | Create_view of { view : string; view_query : select }
  | Drop_view of { view : string }
  | Create_index of { index : string; idx_table : string; idx_column : string }
  | Drop_index of { index : string }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Prepare_txn

let select ?(distinct = false) ?where ?(group_by = []) ?having ?(order_by = [])
    ~projections ~from () =
  { distinct; projections; from; where; group_by; having; order_by }

let col ?qualifier name = Col { qualifier; name }
let lit_int i = Lit (Sqlcore.Value.Int i)
let lit_float f = Lit (Sqlcore.Value.Float f)
let lit_str s = Lit (Sqlcore.Value.Str s)

let rec expr_has_agg = function
  | Agg _ -> true
  | Lit _ | Col _ -> false
  | Binop (_, a, b) -> expr_has_agg a || expr_has_agg b
  | Unop (_, a) -> expr_has_agg a
  | Is_null { arg; _ } | Like { arg; _ } -> expr_has_agg arg
  | In_list { arg; items; _ } -> expr_has_agg arg || List.exists expr_has_agg items
  | Between { arg; lo; hi; _ } ->
      expr_has_agg arg || expr_has_agg lo || expr_has_agg hi
  (* aggregates inside a nested subquery belong to that subquery *)
  | Scalar_subquery _ | Exists _ -> false
  | In_subquery { arg; _ } -> expr_has_agg arg

let is_aggregate_query s =
  s.group_by <> []
  || Option.fold ~none:false ~some:expr_has_agg s.having
  || List.exists
       (function Proj_expr (e, _) -> expr_has_agg e | Star | Qualified_star _ -> false)
       s.projections

let rec tables_of_expr = function
  | Lit _ | Col _ | Agg _ -> []
  | Binop (_, a, b) -> tables_of_expr a @ tables_of_expr b
  | Unop (_, a) -> tables_of_expr a
  | Is_null { arg; _ } | Like { arg; _ } -> tables_of_expr arg
  | In_list { arg; items; _ } ->
      tables_of_expr arg @ List.concat_map tables_of_expr items
  | Between { arg; lo; hi; _ } ->
      tables_of_expr arg @ tables_of_expr lo @ tables_of_expr hi
  | Scalar_subquery q | Exists q -> tables_of_select q
  | In_subquery { arg; query; _ } -> tables_of_expr arg @ tables_of_select query

and tables_of_select s =
  List.map (fun (r : table_ref) -> r.table) s.from
  @ Option.fold ~none:[] ~some:tables_of_expr s.where
  @ List.concat_map tables_of_expr s.group_by
  @ Option.fold ~none:[] ~some:tables_of_expr s.having

let tables_of_stmt = function
  | Select s -> tables_of_select s
  | Insert { table; source; _ } ->
      table :: (match source with Values _ -> [] | Query q -> tables_of_select q)
  | Update { table; assignments; where } ->
      table
      :: (List.concat_map (fun (_, e) -> tables_of_expr e) assignments
         @ Option.fold ~none:[] ~some:tables_of_expr where)
  | Delete { table; where } ->
      table :: Option.fold ~none:[] ~some:tables_of_expr where
  | Create_table { table; _ } | Drop_table { table } -> [ table ]
  | Create_view { view_query; _ } -> tables_of_select view_query
  | Drop_view _ -> []
  | Create_index { idx_table; _ } -> [ idx_table ]
  | Drop_index _ -> []
  | Begin_txn | Commit_txn | Rollback_txn | Prepare_txn -> []

(* Structural equality: the only subtlety is Float literals, where we want
   Float.equal rather than (=) so that equal NaNs compare equal. *)
let equal_stmt a b =
  let norm_value = function
    | Sqlcore.Value.Float f when Float.is_nan f -> Sqlcore.Value.Str "<nan>"
    | v -> v
  in
  let rec norm_expr = function
    | Lit v -> Lit (norm_value v)
    | Col _ as e -> e
    | Binop (op, x, y) -> Binop (op, norm_expr x, norm_expr y)
    | Unop (op, x) -> Unop (op, norm_expr x)
    | Is_null { arg; negated } -> Is_null { arg = norm_expr arg; negated }
    | Like { arg; pattern; negated } -> Like { arg = norm_expr arg; pattern; negated }
    | In_list { arg; items; negated } ->
        In_list { arg = norm_expr arg; items = List.map norm_expr items; negated }
    | Between { arg; lo; hi; negated } ->
        Between
          { arg = norm_expr arg; lo = norm_expr lo; hi = norm_expr hi; negated }
    | Agg { fn; distinct; arg } -> Agg { fn; distinct; arg = Option.map norm_expr arg }
    | Scalar_subquery q -> Scalar_subquery (norm_select q)
    | In_subquery { arg; query; negated } ->
        In_subquery { arg = norm_expr arg; query = norm_select query; negated }
    | Exists q -> Exists (norm_select q)
  and norm_select s =
    {
      s with
      projections =
        List.map
          (function
            | Proj_expr (e, a) -> Proj_expr (norm_expr e, a)
            | (Star | Qualified_star _) as p -> p)
          s.projections;
      where = Option.map norm_expr s.where;
      group_by = List.map norm_expr s.group_by;
      having = Option.map norm_expr s.having;
      order_by =
        List.map (fun o -> { o with sort_expr = norm_expr o.sort_expr }) s.order_by;
    }
  in
  let norm_stmt = function
    | Select s -> Select (norm_select s)
    | Insert { table; columns; source } ->
        Insert
          {
            table;
            columns;
            source =
              (match source with
              | Values rows -> Values (List.map (List.map norm_expr) rows)
              | Query q -> Query (norm_select q));
          }
    | Update { table; assignments; where } ->
        Update
          {
            table;
            assignments = List.map (fun (c, e) -> (c, norm_expr e)) assignments;
            where = Option.map norm_expr where;
          }
    | Delete { table; where } -> Delete { table; where = Option.map norm_expr where }
    | Create_view { view; view_query } ->
        Create_view { view; view_query = norm_select view_query }
    | (Create_table _ | Drop_table _ | Drop_view _ | Create_index _
      | Drop_index _ | Begin_txn | Commit_txn | Rollback_txn | Prepare_txn) as s
      ->
        s
  in
  norm_stmt a = norm_stmt b
