(** Lexer for the SQL subset.

    Identifiers are [[A-Za-z_][A-Za-z0-9_]*]. Numbers are integer or
    decimal. Strings use single quotes with [''] escaping. Comments are
    [--] to end of line and [/* ... */]. *)

exception Error of string * int * int
(** Lexical error with 1-based line and column. *)

val tokenize : string -> Token.located list
(** The resulting list always ends with an [Eof] token. *)
