(** Case-insensitive identifier handling.

    SQL identifiers (database, table and column names) are case-insensitive
    in this system; the canonical form is lowercase. *)

val canon : string -> string
(** Canonical (lowercase) form of an identifier. *)

val equal : string -> string -> bool
(** Case-insensitive equality. *)

val compare : string -> string -> int
(** Case-insensitive total order. *)

val mem : string -> string list -> bool
(** Case-insensitive membership. *)

val assoc_opt : string -> (string * 'a) list -> 'a option
(** Case-insensitive association lookup. *)
