(** Column types of the relational kernel.

    The value domain follows the paper's example schemas: integers for
    seat/flight numbers, floats for rates, strings for names, dates as
    strings, plus booleans for completeness. *)

type t =
  | Int
  | Float
  | Str
  | Bool

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** SQL-ish spelling: [INT], [FLOAT], [CHAR], [BOOL]. *)

val of_string : string -> t option
(** Case-insensitive parse accepting common synonyms
    ([INTEGER], [REAL], [VARCHAR], [CHAR], [STRING], [BOOLEAN], ...). *)

val pp : Format.formatter -> t -> unit
