(** Wildcard pattern matching.

    Two pattern dialects share one matcher:
    - SQL [LIKE]: [%] matches any sequence, [_] matches one character;
    - MSQL {e multiple identifiers} (paper §2): [%] matches any sequence of
      zero or more characters inside an identifier (e.g. [rate%] matches
      both [rate] and [rates]); [_] is an ordinary character because it is
      legal in identifiers. *)

val sql_like : pattern:string -> string -> bool
(** Case-sensitive SQL LIKE match ([%] and [_] wildcards). *)

val identifier : pattern:string -> string -> bool
(** Case-insensitive MSQL identifier match ([%] wildcard only). *)

val has_wildcard : string -> bool
(** [true] iff the string contains the MSQL [%] wildcard. *)
