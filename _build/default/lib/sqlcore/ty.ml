type t =
  | Int
  | Float
  | Str
  | Bool

let equal a b =
  match a, b with
  | Int, Int | Float, Float | Str, Str | Bool, Bool -> true
  | (Int | Float | Str | Bool), _ -> false

let rank = function Int -> 0 | Float -> 1 | Str -> 2 | Bool -> 3
let compare a b = Stdlib.compare (rank a) (rank b)

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | Str -> "CHAR"
  | Bool -> "BOOL"

let of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "SMALLINT" | "BIGINT" -> Some Int
  | "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" -> Some Float
  | "CHAR" | "VARCHAR" | "STRING" | "TEXT" | "DATE" -> Some Str
  | "BOOL" | "BOOLEAN" -> Some Bool
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
