lib/sqlcore/schema.mli: Format Ty
