lib/sqlcore/names.mli:
