lib/sqlcore/names.ml: List String
