lib/sqlcore/row.ml: Array Format List Value
