lib/sqlcore/value.mli: Format Ty
