lib/sqlcore/schema.ml: Format List Names Ty
