lib/sqlcore/relation.ml: Array Format Hashtbl List Printf Row Schema String Value
