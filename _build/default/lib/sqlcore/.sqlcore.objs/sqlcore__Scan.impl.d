lib/sqlcore/scan.ml: Buffer String
