lib/sqlcore/like.ml: Char Hashtbl String
