lib/sqlcore/relation.mli: Format Row Schema
