lib/sqlcore/scan.mli:
