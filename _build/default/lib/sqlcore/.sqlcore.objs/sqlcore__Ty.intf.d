lib/sqlcore/ty.mli: Format
