lib/sqlcore/like.mli:
