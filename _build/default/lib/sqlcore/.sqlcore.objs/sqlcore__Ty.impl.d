lib/sqlcore/ty.ml: Format Stdlib String
