lib/sqlcore/value.ml: Bool Buffer Float Format Printf Stdlib String Ty
