lib/sqlcore/row.mli: Format Value
