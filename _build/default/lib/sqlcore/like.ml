(* Backtracking matcher over two wildcard kinds. [any_one] selects whether
   '_' is a single-character wildcard (SQL LIKE) or a literal (MSQL). *)
let matches ~any_one ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized on (i, j) to keep worst cases linear-ish *)
  let seen = Hashtbl.create 16 in
  let rec go i j =
    match Hashtbl.find_opt seen (i, j) with
    | Some r -> r
    | None ->
        let r =
          if i = np then j = ns
          else
            match pattern.[i] with
            | '%' -> go (i + 1) j || (j < ns && go i (j + 1))
            | '_' when any_one -> j < ns && go (i + 1) (j + 1)
            | c -> j < ns && Char.equal c s.[j] && go (i + 1) (j + 1)
        in
        Hashtbl.add seen (i, j) r;
        r
  in
  go 0 0

let sql_like ~pattern s = matches ~any_one:true ~pattern s

let identifier ~pattern s =
  matches ~any_one:false
    ~pattern:(String.lowercase_ascii pattern)
    (String.lowercase_ascii s)

let has_wildcard s = String.contains s '%'
