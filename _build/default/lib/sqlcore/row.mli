(** Rows (tuples) of a relation. *)

type t = Value.t array

val equal : t -> t -> bool
val compare : t -> t -> int

val get : t -> int -> Value.t
(** [get row i] is the [i]-th field; raises [Invalid_argument] when out of
    range (schema/row mismatches are programming errors). *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val append : t -> t -> t
val project : int list -> t -> t
val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
