type t = { schema : Schema.t; rows : Row.t list }

let make schema rows =
  let arity = Schema.arity schema in
  List.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Relation.make: row arity %d, schema arity %d"
             (Array.length r) arity))
    rows;
  { schema; rows }

let empty schema = { schema; rows = [] }
let schema t = t.schema
let rows t = t.rows
let cardinality t = List.length t.rows
let is_empty t = t.rows = []

let size_bytes t =
  List.fold_left (fun acc r -> acc + Row.size_bytes r) 0 t.rows

let equal a b =
  Schema.equal a.schema b.schema
  && List.length a.rows = List.length b.rows
  && List.for_all2 Row.equal a.rows b.rows

let equal_unordered a b =
  Schema.equal a.schema b.schema
  && List.length a.rows = List.length b.rows
  &&
  let sort rows = List.sort Row.compare rows in
  List.for_all2 Row.equal (sort a.rows) (sort b.rows)

let add_row t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg "Relation.add_row: arity mismatch";
  { t with rows = t.rows @ [ row ] }

let filter p t = { t with rows = List.filter p t.rows }
let map_rows f schema t = make schema (List.map f t.rows)

let project t idxs schema = make schema (List.map (Row.project idxs) t.rows)

let distinct t =
  let seen = Hashtbl.create 64 in
  let keep r =
    let key = List.map Value.to_literal (Row.to_list r) |> String.concat "\x00" in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  { t with rows = List.filter keep t.rows }

let union a b =
  if not (Schema.union_compatible a.schema b.schema) then
    invalid_arg "Relation.union: schemas not union-compatible";
  { schema = a.schema; rows = a.rows @ b.rows }

let product a b =
  let schema = a.schema @ b.schema in
  let rows =
    List.concat_map (fun ra -> List.map (fun rb -> Row.append ra rb) b.rows) a.rows
  in
  { schema; rows }

let order_by cmp t = { t with rows = List.stable_sort cmp t.rows }

let limit n t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  { t with rows = take n t.rows }

let requalify q t = { t with schema = Schema.requalify q t.schema }

let pp ppf t =
  let headers = Schema.names t.schema in
  let cells = List.map (fun r -> List.map Value.to_string (Row.to_list r)) t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) cells)
      headers
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let line cells =
    "|"
    ^ String.concat "|" (List.map2 (fun c w -> " " ^ pad c w ^ " ") cells widths)
    ^ "|"
  in
  Format.fprintf ppf "%s@\n%s@\n%s@\n" rule (line headers) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@\n" (line row)) cells;
  Format.fprintf ppf "%s" rule

let to_string t = Format.asprintf "%a" pp t
