type t = Value.t array

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let get row i =
  if i < 0 || i >= Array.length row then invalid_arg "Row.get: index out of range";
  row.(i)

let of_list = Array.of_list
let to_list = Array.to_list
let append = Array.append
let project idxs row = Array.of_list (List.map (fun i -> get row i) idxs)

let size_bytes row =
  Array.fold_left (fun acc v -> acc + Value.size_bytes v) 0 row

let pp ppf row =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    (to_list row)
