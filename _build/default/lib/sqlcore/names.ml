let canon = String.lowercase_ascii
let equal a b = String.equal (canon a) (canon b)
let compare a b = String.compare (canon a) (canon b)
let mem x l = List.exists (equal x) l

let assoc_opt x l =
  List.find_map (fun (k, v) -> if equal k x then Some v else None) l
