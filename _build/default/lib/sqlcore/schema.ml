type column = {
  name : string;
  ty : Ty.t;
  width : int option;
  qualifier : string option;
  not_null : bool;
  unique : bool;
}

type t = column list

let column ?width ?qualifier ?(not_null = false) ?(unique = false) name ty =
  { name; ty; width; qualifier; not_null; unique }
let names t = List.map (fun c -> c.name) t
let arity = List.length

let matches ?qualifier name c =
  Names.equal c.name name
  &&
  match qualifier with
  | None -> true
  | Some q -> ( match c.qualifier with Some cq -> Names.equal cq q | None -> false)

let find_indices t ?qualifier name =
  let rec go i = function
    | [] -> []
    | c :: rest ->
        if matches ?qualifier name c then i :: go (i + 1) rest else go (i + 1) rest
  in
  go 0 t

let find_index t ?qualifier name =
  match find_indices t ?qualifier name with [] -> None | i :: _ -> Some i

let mem t name = find_index t name <> None
let requalify q t = List.map (fun c -> { c with qualifier = q }) t

let union_compatible a b =
  arity a = arity b
  && List.for_all2 (fun ca cb -> Ty.equal ca.ty cb.ty) a b

let equal a b =
  arity a = arity b
  && List.for_all2
       (fun ca cb -> Names.equal ca.name cb.name && Ty.equal ca.ty cb.ty)
       a b

let pp ppf t =
  let pp_col ppf c =
    (match c.qualifier with
    | Some q -> Format.fprintf ppf "%s." q
    | None -> ());
    Format.fprintf ppf "%s %a" c.name Ty.pp c.ty
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_col)
    t

let to_string t = Format.asprintf "%a" pp t
