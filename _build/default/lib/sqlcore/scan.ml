type t = { input : string; mutable pos : int; mutable line : int; mutable col : int }

exception Error of string * int * int

let create input = { input; pos = 0; line = 1; col = 1 }
let eof t = t.pos >= String.length t.input
let peek t = if eof t then None else Some t.input.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.input then None else Some t.input.[t.pos + 1]

let advance t =
  if not (eof t) then begin
    (if t.input.[t.pos] = '\n' then begin
       t.line <- t.line + 1;
       t.col <- 1
     end
     else t.col <- t.col + 1);
    t.pos <- t.pos + 1
  end

let line t = t.line
let column t = t.col
let error t msg = raise (Error (msg, t.line, t.col))

let next t =
  match peek t with
  | None -> error t "unexpected end of input"
  | Some c ->
      advance t;
      c

let skip_while t p =
  let rec go () =
    match peek t with
    | Some c when p c ->
        advance t;
        go ()
    | Some _ | None -> ()
  in
  go ()

let take_while t p =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek t with
    | Some c when p c ->
        Buffer.add_char buf c;
        advance t;
        go ()
    | Some _ | None -> ()
  in
  go ();
  Buffer.contents buf

let is_blank = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_ws_and_comments t =
  skip_while t is_blank;
  match peek t, peek2 t with
  | Some '-', Some '-' ->
      skip_while t (fun c -> c <> '\n');
      skip_ws_and_comments t
  | Some '/', Some '*' ->
      advance t;
      advance t;
      let rec close () =
        match peek t, peek2 t with
        | Some '*', Some '/' ->
            advance t;
            advance t
        | None, _ -> error t "unterminated /* comment"
        | Some _, _ ->
            advance t;
            close ()
      in
      close ();
      skip_ws_and_comments t
  | _ -> ()

let quoted_string t =
  (match next t with
  | '\'' -> ()
  | _ -> error t "expected string literal");
  let buf = Buffer.create 16 in
  let rec go () =
    match peek t, peek2 t with
    | Some '\'', Some '\'' ->
        Buffer.add_char buf '\'';
        advance t;
        advance t;
        go ()
    | Some '\'', _ -> advance t
    | Some c, _ ->
        Buffer.add_char buf c;
        advance t;
        go ()
    | None, _ -> error t "unterminated string literal"
  in
  go ();
  Buffer.contents buf

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_start c = is_alpha c || c = '_'
let is_ident_char c = is_alpha c || is_digit c || c = '_'
