(** Relation schemas: ordered lists of named, typed columns.

    Columns carry an optional [width] (character width for strings), which
    the paper's Global Data Dictionary records, and an optional [qualifier]
    used when a derived relation keeps track of the table (or table alias)
    each column came from. *)

type column = {
  name : string;
  ty : Ty.t;
  width : int option;  (** declared width, when known (GDD metadata) *)
  qualifier : string option;
      (** source table or alias, for qualified-name resolution *)
  not_null : bool;  (** NOT NULL constraint *)
  unique : bool;  (** UNIQUE constraint *)
}

type t = column list

val column :
  ?width:int ->
  ?qualifier:string ->
  ?not_null:bool ->
  ?unique:bool ->
  string ->
  Ty.t ->
  column

val names : t -> string list
val arity : t -> int

val find_index : t -> ?qualifier:string -> string -> int option
(** Position of the column with the given (case-insensitive) name, and, if
    [qualifier] is given, the matching qualifier. Returns the first match. *)

val find_indices : t -> ?qualifier:string -> string -> int list
(** All matching positions — used to detect ambiguous column references. *)

val mem : t -> string -> bool

val requalify : string option -> t -> t
(** Replace every column's qualifier. *)

val union_compatible : t -> t -> bool
(** Same arity and pairwise compatible column types (names may differ), the
    condition for multitable merging and UNION. *)

val equal : t -> t -> bool
(** Name (case-insensitive) and type equality, ignoring widths and
    qualifiers. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
