(** Character-level scanning toolkit shared by the SQL, MSQL and DOL lexers.

    A scanner is a mutable cursor over an input string that tracks line and
    column for error reporting. *)

type t

exception Error of string * int * int
(** [Error (message, line, column)] — lexical error with 1-based position. *)

val create : string -> t
val eof : t -> bool
val peek : t -> char option
val peek2 : t -> char option
(** Character after the next one, if any. *)

val advance : t -> unit
val next : t -> char
(** Consume and return the next character; raises {!Error} at end of
    input. *)

val line : t -> int
val column : t -> int

val error : t -> string -> 'a
(** Raise {!Error} at the current position. *)

val skip_while : t -> (char -> bool) -> unit
val take_while : t -> (char -> bool) -> string

val skip_ws_and_comments : t -> unit
(** Skips blanks, SQL [-- line] comments and [{ ... }]-free C-style
    [(* *)]-free comments: supported forms are [--] to end of line and
    [/* ... */]. *)

val quoted_string : t -> string
(** Reads a ['...'] literal whose opening quote is the next character;
    embedded quotes are doubled (['']). *)

val is_digit : char -> bool
val is_alpha : char -> bool
val is_ident_start : char -> bool
val is_ident_char : char -> bool
