module World = Netsim.World

type t = {
  service : Service.t;
  session : Ldbms.Session.t;
  world : World.t;
}

type failure = Local of string | Network of string

let failure_message = function Local m -> m | Network m -> m

let handshake_bytes = 64
let ack_bytes = 16

let connect world service =
  World.send world ~src:"mdbs" ~dst:service.Service.site ~bytes:handshake_bytes;
  {
    service;
    session =
      Ldbms.Session.connect ~injector:service.Service.injector
        service.Service.database service.Service.caps;
    world;
  }

let service t = t.service
let session t = t.session
let site t = t.service.Service.site

let result_bytes = function
  | Ldbms.Session.Rows r -> Sqlcore.Relation.size_bytes r + ack_bytes
  | Ldbms.Session.Affected _ | Ldbms.Session.Done -> ack_bytes

let guard_site f =
  match f () with
  | r -> r
  | exception World.Site_down s -> Error (Network (Printf.sprintf "site %s is down" s))
  | exception World.Unknown_site s ->
      Error (Network (Printf.sprintf "unknown site %s" s))

let exec_script t script =
  guard_site (fun () ->
      World.send t.world ~src:"mdbs" ~dst:(site t) ~bytes:(String.length script);
      match Ldbms.Session.exec_script t.session script with
      | Ok results ->
          let bytes = List.fold_left (fun a r -> a + result_bytes r) 0 results in
          World.send t.world ~src:(site t) ~dst:"mdbs" ~bytes;
          Ok results
      | Error m ->
          World.send t.world ~src:(site t) ~dst:"mdbs" ~bytes:ack_bytes;
          Error (Local m))

let last_relation results =
  List.fold_left
    (fun acc r ->
      match r with Ldbms.Session.Rows rel -> Some rel | _ -> acc)
    None results

let round_trip t f =
  guard_site (fun () ->
      World.send t.world ~src:"mdbs" ~dst:(site t) ~bytes:ack_bytes;
      let r = f () in
      World.send t.world ~src:(site t) ~dst:"mdbs" ~bytes:ack_bytes;
      match r with Ok () -> Ok () | Error m -> Error (Local m))

let prepare t = round_trip t (fun () -> Ldbms.Session.prepare t.session)
let commit t = round_trip t (fun () -> Ldbms.Session.commit t.session)
let rollback t = round_trip t (fun () -> Ldbms.Session.rollback t.session)

let fetch t query =
  match exec_script t query with
  | Error f -> Error f
  | Ok results -> (
      match last_relation results with
      | Some rel -> Ok rel
      | None -> Error (Local "query did not produce rows"))

let transfer ~src ~dst ~query ~dest_table =
  (* command goes engine -> src; data goes src -> dst directly *)
  match
    guard_site (fun () ->
        World.send src.world ~src:"mdbs" ~dst:(site src)
          ~bytes:(String.length query);
        match Ldbms.Session.exec_sql src.session query with
        | Ok (Ldbms.Session.Rows rel) -> Ok rel
        | Ok _ -> Error (Local "MOVE query did not produce rows")
        | Error m -> Error (Local m))
  with
  | Error f -> Error f
  | Ok rel -> (
      match
        guard_site (fun () ->
            World.send dst.world ~src:(site src) ~dst:(site dst)
              ~bytes:(Sqlcore.Relation.size_bytes rel + ack_bytes);
            Ok ())
      with
      | Error f -> Error f
      | Ok () ->
          Ldbms.Database.load
            dst.service.Service.database
            ~name:dest_table
            (Sqlcore.Relation.schema rel)
            (Sqlcore.Relation.rows rel);
          Ok (Sqlcore.Relation.cardinality rel))

let disconnect t =
  ignore (Ldbms.Session.rollback t.session);
  match
    guard_site (fun () ->
        World.send t.world ~src:"mdbs" ~dst:(site t) ~bytes:ack_bytes;
        Ok ())
  with
  | Ok () | Error _ -> ()
