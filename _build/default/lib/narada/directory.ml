type t = (string, Service.t) Hashtbl.t

exception Unknown_service of string

let create () = Hashtbl.create 16
let key = String.lowercase_ascii
let register t s = Hashtbl.replace t (key s.Service.service_name) s
let find_opt t name = Hashtbl.find_opt t (key name)

let find t name =
  match find_opt t name with Some s -> s | None -> raise (Unknown_service name)

let names t =
  Hashtbl.fold (fun _ s acc -> s.Service.service_name :: acc) t []
  |> List.sort String.compare
