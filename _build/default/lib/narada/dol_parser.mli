(** Parser for DOL program text (see {!Dol_pp} for the concrete syntax,
    which follows the paper's §4.3 listing). *)

exception Error of string * int * int

val parse : string -> Dol_ast.program
(** Parses a full [DOLBEGIN ... DOLEND] program. *)
