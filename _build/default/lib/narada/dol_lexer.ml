module Scan = Sqlcore.Scan

type token =
  | Ident of string
  | Int of int
  | Sym of string
  | Block of string
  | Eof

type located = { tok : token; tline : int; tcol : int }

exception Error of string * int * int

let token_to_string = function
  | Ident s -> s
  | Int i -> string_of_int i
  | Sym s -> s
  | Block b -> "{ " ^ b ^ " }"
  | Eof -> "<eof>"

let block sc =
  (* opening '{' already consumed *)
  let buf = Buffer.create 64 in
  let rec go depth =
    match Scan.peek sc with
    | None -> Scan.error sc "unterminated { block"
    | Some '{' ->
        Buffer.add_char buf '{';
        Scan.advance sc;
        go (depth + 1)
    | Some '}' ->
        Scan.advance sc;
        if depth = 0 then ()
        else begin
          Buffer.add_char buf '}';
          go (depth - 1)
        end
    | Some c ->
        Buffer.add_char buf c;
        Scan.advance sc;
        go depth
  in
  go 0;
  String.trim (Buffer.contents buf)

let tokenize input =
  let sc = Scan.create input in
  let out = ref [] in
  let emit tok tline tcol = out := { tok; tline; tcol } :: !out in
  (try
     let rec loop () =
       Scan.skip_ws_and_comments sc;
       let tline = Scan.line sc and tcol = Scan.column sc in
       match Scan.peek sc with
       | None -> emit Eof tline tcol
       | Some c when Scan.is_ident_start c ->
           emit (Ident (Scan.take_while sc Scan.is_ident_char)) tline tcol;
           loop ()
       | Some c when Scan.is_digit c ->
           emit (Int (int_of_string (Scan.take_while sc Scan.is_digit))) tline tcol;
           loop ()
       | Some '{' ->
           Scan.advance sc;
           emit (Block (block sc)) tline tcol;
           loop ()
       | Some ((';' | ',' | '=' | '(' | ')') as c) ->
           Scan.advance sc;
           emit (Sym (String.make 1 c)) tline tcol;
           loop ()
       | Some c -> Scan.error sc (Printf.sprintf "unexpected character %C" c)
     in
     loop ()
   with Scan.Error (m, l, c) -> raise (Error (m, l, c)));
  List.rev !out
