(** Local Access Manager: the per-service agent that executes local
    commands on behalf of the DOL engine and ships partial results
    (Figure 1).

    Every interaction charges the simulated network: commands travel
    engine→site, results site→engine, and relation transfers go directly
    site→site as the paper allows LAMs to exchange data with each other. *)

type t

val connect : Netsim.World.t -> Service.t -> t
(** Opens the service: establishes the session and charges a handshake
    message. Raises {!Netsim.World.Site_down} if the site is unreachable. *)

val service : t -> Service.t
val session : t -> Ldbms.Session.t
val site : t -> string

(** How an operation failed: [Local] failures are aborts raised by the
    database itself (semantic errors, injected local failures) — the
    session has rolled back; [Network] failures mean the site could not be
    reached and nothing is known about the local state. *)
type failure = Local of string | Network of string

val failure_message : failure -> string

val exec_script : t -> string -> (Ldbms.Session.result list, failure) result
(** Ship a SQL script to the LAM and execute it statement by statement.
    Charges the command bytes out and the result bytes back. *)

val last_relation : Ldbms.Session.result list -> Sqlcore.Relation.t option
(** The last [Rows] result of a script, if any. *)

val prepare : t -> (unit, failure) result
(** First phase of 2PC: one round trip. *)

val commit : t -> (unit, failure) result
val rollback : t -> (unit, failure) result

val fetch : t -> string -> (Sqlcore.Relation.t, failure) result
(** Execute a SELECT and return its result (command out, data back). *)

val transfer : src:t -> dst:t -> query:string -> dest_table:string ->
  (int, failure) result
(** Run [query] at [src] and materialize the result at [dst] under
    [dest_table] (replacing it), shipping the data directly between the
    two sites. Returns the number of rows moved. *)

val disconnect : t -> unit
(** Rolls back any open transaction and charges a goodbye message (best
    effort: a down site is ignored). *)
