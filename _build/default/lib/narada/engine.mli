(** The DOL engine: executes DOL programs, coordinating LAMs (§4.1).

    Task statuses evolve as in the paper: a NOCOMMIT task that executes
    without error reaches the prepared-to-commit state [P]; a committing
    task reaches [C]; a local abort gives [A]; an unreachable site gives
    [E]; compensation gives the compensated task [X]. COMMIT and ABORT
    drive prepared tasks to [C]/[A]. IF conditions read these letters.

    An [Error] result means the {e program} was malformed (unknown alias,
    duplicate task name, ...) — execution failures are normal outcomes,
    reported in the statuses. *)

type outcome = {
  dolstatus : int;  (** return code set by [DOLSTATUS = n]; -1 if never set *)
  statuses : (string * Dol_ast.status) list;
      (** every declared task/move/comp, in order of appearance *)
  results : (string * Sqlcore.Relation.t) list;
      (** partial results: task name -> last rows produced *)
  rowcounts : (string * int) list;
      (** task name -> rows affected by its DML statements *)
  elapsed_ms : float;  (** virtual time consumed by the program *)
}

val run :
  ?on_event:(string -> unit) ->
  directory:Directory.t ->
  world:Netsim.World.t ->
  Dol_ast.program ->
  (outcome, string) result
(** [on_event] receives one line per coordination step (opens, task
    status transitions, branch decisions, commits/aborts/compensations,
    data moves), prefixed with the virtual-clock time — the engine's
    execution trace. *)

val run_text :
  ?on_event:(string -> unit) ->
  directory:Directory.t ->
  world:Netsim.World.t ->
  string ->
  (outcome, string) result
(** Parse and run DOL program text. *)

val status_of : outcome -> string -> Dol_ast.status
(** Status of a named task; [N] if unknown. *)

val result_of : outcome -> string -> Sqlcore.Relation.t option
