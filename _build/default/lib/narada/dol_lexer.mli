(** Lexer for DOL program text.

    Like the SQL lexer, but [{ ... }] brace blocks are captured verbatim
    as single tokens: they carry the SQL scripts embedded in TASK, COMP
    and MOVE statements. Braces nest. *)

type token =
  | Ident of string
  | Int of int
  | Sym of string  (** [;], [,], [=], [(], [)] *)
  | Block of string  (** contents of a [{ ... }] block, trimmed *)
  | Eof

type located = { tok : token; tline : int; tcol : int }

exception Error of string * int * int

val tokenize : string -> located list
val token_to_string : token -> string
