module World = Netsim.World
open Dol_ast

let log_src = Logs.Src.create "narada.engine" ~doc:"DOL engine execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  dolstatus : int;
  statuses : (string * status) list;
  results : (string * Sqlcore.Relation.t) list;
  rowcounts : (string * int) list;
  elapsed_ms : float;
}

exception Program_error of string

type conn = Available of Lam.t | Unavailable of string

type state = {
  directory : Directory.t;
  world : World.t;
  aliases : (string, conn) Hashtbl.t;
  statuses : (string, status) Hashtbl.t;
  mutable status_order : string list;  (* newest first *)
  task_target : (string, string) Hashtbl.t;  (* task -> alias *)
  results : (string, Sqlcore.Relation.t) Hashtbl.t;
  rowcounts : (string, int) Hashtbl.t;
  mutable dolstatus : int;
  on_event : string -> unit;
}

let err fmt = Printf.ksprintf (fun m -> raise (Program_error m)) fmt
let akey = String.lowercase_ascii

let emit st fmt =
  Printf.ksprintf
    (fun m ->
      Log.debug (fun f -> f "%.2fms %s" (World.now_ms st.world) m);
      st.on_event (Printf.sprintf "[%8.2f ms] %s" (World.now_ms st.world) m))
    fmt

let declare st name target =
  let k = akey name in
  if Hashtbl.mem st.statuses k then err "duplicate task name %s" name;
  Hashtbl.replace st.statuses k N;
  st.status_order <- k :: st.status_order;
  Hashtbl.replace st.task_target k (akey target)

let set_status st name s =
  emit st "%s -> %s" name (status_to_string s);
  Hashtbl.replace st.statuses (akey name) s

let get_status st name =
  match Hashtbl.find_opt st.statuses (akey name) with Some s -> s | None -> N

let conn_of st alias =
  match Hashtbl.find_opt st.aliases (akey alias) with
  | Some c -> c
  | None -> err "unknown alias %s (missing OPEN?)" alias

let lam_of_task st tname =
  match Hashtbl.find_opt st.task_target (akey tname) with
  | None -> err "unknown task %s" tname
  | Some alias -> conn_of st alias

let rec eval_cond st = function
  | Status_is (t, s) -> get_status st t = s
  | Not c -> not (eval_cond st c)
  | And (a, b) -> eval_cond st a && eval_cond st b
  | Or (a, b) -> eval_cond st a || eval_cond st b

let exec_task st (task : task) =
  declare st task.tname task.target;
  match conn_of st task.target with
  | Unavailable reason ->
      (* the service was never reached: the task did not run at all, which
         is safely excludable (unlike E, whose local state is unknown) *)
      ignore reason;
      set_status st task.tname N
  | Available lam -> (
      match Lam.exec_script lam task.commands with
      | Error (Lam.Local _) -> set_status st task.tname A
      | Error (Lam.Network _) -> set_status st task.tname E
      | Ok results -> (
          (match Lam.last_relation results with
          | Some rel -> Hashtbl.replace st.results (akey task.tname) rel
          | None -> ());
          let affected =
            List.fold_left
              (fun acc r ->
                match r with Ldbms.Session.Affected n -> acc + n | _ -> acc)
              0 results
          in
          Hashtbl.replace st.rowcounts (akey task.tname) affected;
          match task.mode with
          | No_commit ->
              if
                Ldbms.Capabilities.supports_2pc
                  (Lam.service lam).Service.caps
              then
                (match Lam.prepare lam with
                | Ok () -> set_status st task.tname P
                | Error (Lam.Local _) -> set_status st task.tname A
                | Error (Lam.Network _) -> set_status st task.tname E)
              else
                (* a NOCOMMIT task on an autocommit-only engine is a plan
                   inconsistency: its effects are already committed *)
                set_status st task.tname E
          | With_commit -> (
              if
                not
                  (Ldbms.Capabilities.supports_2pc
                     (Lam.service lam).Service.caps)
              then (* autocommit engine: already durable *)
                set_status st task.tname C
              else
                match Lam.commit lam with
                | Ok () -> set_status st task.tname C
                | Error (Lam.Local _) -> set_status st task.tname A
                | Error (Lam.Network _) -> set_status st task.tname E)))

let commit_task st tname =
  match get_status st tname with
  | P -> (
      match lam_of_task st tname with
      | Unavailable _ -> set_status st tname E
      | Available lam -> (
          match Lam.commit lam with
          | Ok () -> set_status st tname C
          | Error (Lam.Local _) -> set_status st tname A
          | Error (Lam.Network _) -> set_status st tname E))
  | C | A | E | N | X -> ()

let abort_task st tname =
  match get_status st tname with
  | P -> (
      match lam_of_task st tname with
      | Unavailable _ -> set_status st tname E
      | Available lam -> (
          match Lam.rollback lam with
          | Ok () -> set_status st tname A
          | Error (Lam.Local _) -> set_status st tname A
          | Error (Lam.Network _) -> set_status st tname E))
  | C | A | E | N | X -> ()

let exec_comp st ~cname ~compensates ~target ~commands =
  declare st cname target;
  match conn_of st target with
  | Unavailable _ -> set_status st cname E
  | Available lam -> (
      match Lam.exec_script lam commands with
      | Error (Lam.Local _) -> set_status st cname A
      | Error (Lam.Network _) -> set_status st cname E
      | Ok _ -> (
          let finish () =
            set_status st cname C;
            match compensates with
            | Some t -> set_status st t X
            | None -> ()
          in
          if
            Ldbms.Capabilities.supports_2pc (Lam.service lam).Service.caps
          then
            match Lam.commit lam with
            | Ok () -> finish ()
            | Error (Lam.Local _) -> set_status st cname A
            | Error (Lam.Network _) -> set_status st cname E
          else finish ()))

let exec_move st ~mname ~src ~dst ~dest_table ~query =
  declare st mname src;
  match conn_of st src, conn_of st dst with
  | Unavailable _, _ | _, Unavailable _ -> set_status st mname E
  | Available src_lam, Available dst_lam -> (
      match Lam.transfer ~src:src_lam ~dst:dst_lam ~query ~dest_table with
      | Ok _ -> set_status st mname C
      | Error (Lam.Local _) -> set_status st mname A
      | Error (Lam.Network _) -> set_status st mname E)

let rec exec_stmt st = function
  | Open { service; open_site; alias } -> (
      let k = akey alias in
      if Hashtbl.mem st.aliases k then err "alias %s already open" alias;
      match Directory.find_opt st.directory service with
      | None ->
          Hashtbl.replace st.aliases k
            (Unavailable (Printf.sprintf "unknown service %s" service))
      | Some svc ->
          (* The AT clause is informative: the directory knows the real
             site; a mismatch is a program error. *)
          (match open_site with
          | Some s when not (Sqlcore.Names.equal s svc.Service.site) ->
              err "service %s is at site %s, not %s" service svc.Service.site s
          | Some _ | None -> ());
          let conn =
            match Lam.connect st.world svc with
            | lam ->
                emit st "OPEN %s AT %s AS %s" service svc.Service.site alias;
                Available lam
            | exception World.Site_down _ ->
                emit st "OPEN %s failed: site %s is down" service
                  svc.Service.site;
                Unavailable (Printf.sprintf "site %s is down" svc.Service.site)
          in
          Hashtbl.replace st.aliases k conn)
  | Close aliases ->
      List.iter
        (fun alias ->
          match Hashtbl.find_opt st.aliases (akey alias) with
          | Some (Available lam) ->
              Lam.disconnect lam;
              Hashtbl.remove st.aliases (akey alias)
          | Some (Unavailable _) -> Hashtbl.remove st.aliases (akey alias)
          | None -> err "CLOSE of unopened alias %s" alias)
        aliases
  | Task task -> exec_task st task
  | Parallel stmts ->
      (* Declarations must be deterministic regardless of branch timing, so
         run branches under the world's parallel combinator, which
         serializes effects but accounts time concurrently. *)
      ignore
        (World.parallel st.world
           (List.map (fun s () -> exec_stmt st s) stmts))
  | If (cond, then_b, else_b) ->
      let taken = eval_cond st cond in
      emit st "IF %s => %s" (Dol_pp.cond_to_string cond)
        (if taken then "THEN" else "ELSE");
      if taken then List.iter (exec_stmt st) then_b
      else List.iter (exec_stmt st) else_b
  | Commit_tasks names -> List.iter (commit_task st) names
  | Abort_tasks names -> List.iter (abort_task st) names
  | Comp { cname; compensates; target; commands } ->
      exec_comp st ~cname ~compensates ~target ~commands
  | Move { mname; src; dst; dest_table; query } ->
      exec_move st ~mname ~src ~dst ~dest_table ~query
  | Set_status n ->
      emit st "DOLSTATUS = %d" n;
      st.dolstatus <- n

let run ?(on_event = fun _ -> ()) ~directory ~world program =
  let st =
    {
      directory;
      world;
      aliases = Hashtbl.create 8;
      statuses = Hashtbl.create 8;
      status_order = [];
      task_target = Hashtbl.create 8;
      results = Hashtbl.create 8;
      rowcounts = Hashtbl.create 8;
      dolstatus = -1;
      on_event;
    }
  in
  let t0 = World.now_ms world in
  Log.info (fun f ->
      f "running DOL program: %d statements, %d tasks" (List.length program)
        (List.length (task_names program)));
  match List.iter (exec_stmt st) program with
  | exception Program_error m -> Error m
  | () ->
      (* close any aliases the program forgot *)
      Hashtbl.iter
        (fun _ conn ->
          match conn with Available lam -> Lam.disconnect lam | Unavailable _ -> ())
        st.aliases;
      let statuses =
        List.rev_map (fun k -> (k, Hashtbl.find st.statuses k)) st.status_order
      in
      let results =
        List.filter_map
          (fun (k, _) ->
            Option.map (fun r -> (k, r)) (Hashtbl.find_opt st.results k))
          statuses
      in
      let rowcounts =
        List.filter_map
          (fun (k, _) ->
            Option.map (fun n -> (k, n)) (Hashtbl.find_opt st.rowcounts k))
          statuses
      in
      Ok
        {
          dolstatus = st.dolstatus;
          statuses;
          results;
          rowcounts;
          elapsed_ms = World.now_ms world -. t0;
        }

let run_text ?on_event ~directory ~world text =
  match Dol_parser.parse text with
  | program -> run ?on_event ~directory ~world program
  | exception Dol_parser.Error (m, l, c) ->
      Error (Printf.sprintf "DOL parse error at %d:%d: %s" l c m)

let status_of (outcome : outcome) name =
  match
    List.find_opt
      (fun (n, _) -> String.equal n (String.lowercase_ascii name))
      outcome.statuses
  with
  | Some (_, s) -> s
  | None -> N

let result_of (outcome : outcome) name =
  List.find_map
    (fun (n, r) ->
      if String.equal n (String.lowercase_ascii name) then Some r else None)
    outcome.results
