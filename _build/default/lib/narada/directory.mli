(** The Narada resource directory: services by name (case-insensitive). *)

type t

exception Unknown_service of string

val create : unit -> t
val register : t -> Service.t -> unit
(** Replaces any previous registration under the same name. *)

val find : t -> string -> Service.t
val find_opt : t -> string -> Service.t option
val names : t -> string list
