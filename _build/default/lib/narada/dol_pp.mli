(** Pretty-printer for DOL programs, matching the layout of the paper's
    §4.3 listing. Output round-trips through {!Dol_parser}. *)

val program_to_string : Dol_ast.program -> string
val pp_program : Format.formatter -> Dol_ast.program -> unit
val cond_to_string : Dol_ast.cond -> string
