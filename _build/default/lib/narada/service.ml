type t = {
  service_name : string;
  site : string;
  database : Ldbms.Database.t;
  caps : Ldbms.Capabilities.t;
  protocol : string;
  login : string;
  transfer_method : string;
  injector : Ldbms.Failure_injector.t;
}

let make ?(protocol = "tcp/ip") ?(login = "guest") ?(transfer_method = "stream")
    ~site ~caps database =
  {
    service_name = Ldbms.Database.name database;
    site;
    database;
    caps;
    protocol;
    login;
    transfer_method;
    injector = Ldbms.Failure_injector.create ();
  }

let pp ppf t =
  Format.fprintf ppf "%s@%s via %s (%a)" t.service_name t.site t.protocol
    Ldbms.Capabilities.pp t.caps
