(** A database service known to the Narada resource directory.

    Corresponds to one entry of the paper's resource directory: "physical
    addresses, communication protocols, login information and the data
    transfer methods used for all nodes" (§4.1), plus the live database it
    fronts in this in-process simulation. *)

type t = {
  service_name : string;
  site : string;  (** site name registered in the {!Netsim.World} *)
  database : Ldbms.Database.t;
  caps : Ldbms.Capabilities.t;
  protocol : string;  (** e.g. "tcp/ip", "isode" — descriptive only *)
  login : string;
  transfer_method : string;  (** e.g. "ftp", "stream" — descriptive only *)
  injector : Ldbms.Failure_injector.t;
      (** shared by every session opened against this service, so failures
          can be scripted from outside (stands in for the paper's local
          conflicts, deadlocks and crashes) *)
}

val make :
  ?protocol:string ->
  ?login:string ->
  ?transfer_method:string ->
  site:string ->
  caps:Ldbms.Capabilities.t ->
  Ldbms.Database.t ->
  t
(** Service name defaults to the database name. *)

val pp : Format.formatter -> t -> unit
