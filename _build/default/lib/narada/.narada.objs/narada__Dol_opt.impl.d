lib/narada/dol_opt.ml: Dol_ast List Option String
