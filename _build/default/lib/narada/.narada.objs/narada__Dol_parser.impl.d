lib/narada/dol_parser.ml: Dol_ast Dol_lexer List Printf Sqlcore String
