lib/narada/directory.ml: Hashtbl List Service String
