lib/narada/dol_opt.mli: Dol_ast
