lib/narada/engine.ml: Directory Dol_ast Dol_parser Dol_pp Hashtbl Lam Ldbms List Logs Netsim Option Printf Service Sqlcore String
