lib/narada/service.ml: Format Ldbms
