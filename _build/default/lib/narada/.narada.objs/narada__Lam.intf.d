lib/narada/lam.mli: Ldbms Netsim Service Sqlcore
