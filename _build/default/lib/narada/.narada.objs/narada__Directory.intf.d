lib/narada/directory.mli: Service
