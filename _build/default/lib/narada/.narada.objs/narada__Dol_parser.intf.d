lib/narada/dol_parser.mli: Dol_ast
