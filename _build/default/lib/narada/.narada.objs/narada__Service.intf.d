lib/narada/service.mli: Format Ldbms
