lib/narada/dol_ast.mli:
