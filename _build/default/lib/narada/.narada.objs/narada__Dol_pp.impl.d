lib/narada/dol_pp.ml: Buffer Dol_ast Format List Printf String
