lib/narada/dol_lexer.ml: Buffer List Printf Sqlcore String
