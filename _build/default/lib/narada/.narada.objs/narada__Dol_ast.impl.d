lib/narada/dol_ast.ml: List String
