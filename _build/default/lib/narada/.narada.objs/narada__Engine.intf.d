lib/narada/engine.mli: Directory Dol_ast Netsim Sqlcore
