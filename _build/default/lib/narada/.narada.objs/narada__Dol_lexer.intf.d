lib/narada/dol_lexer.mli:
