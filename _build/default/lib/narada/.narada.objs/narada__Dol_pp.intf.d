lib/narada/dol_pp.mli: Dol_ast Format
