lib/narada/lam.ml: Ldbms List Netsim Printf Service Sqlcore String
