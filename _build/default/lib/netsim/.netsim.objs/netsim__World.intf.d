lib/netsim/world.mli: Site
