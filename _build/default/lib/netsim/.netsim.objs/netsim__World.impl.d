lib/netsim/world.ml: Hashtbl List Site String
