lib/netsim/site.mli:
