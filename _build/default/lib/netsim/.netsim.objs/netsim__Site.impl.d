lib/netsim/site.ml:
