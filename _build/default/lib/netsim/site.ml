type t = { site_name : string; latency_ms : float; per_byte_ms : float }

let make ?(latency_ms = 5.0) ?(per_byte_ms = 0.0001) site_name =
  { site_name; latency_ms; per_byte_ms }

let message_cost_ms t ~bytes = t.latency_ms +. (float_of_int bytes *. t.per_byte_ms)
