(** The simulated distributed environment: a set of sites, a virtual clock
    and message accounting.

    Everything runs in one OS process; "remote" execution means charging
    this clock. {!parallel} models concurrent task execution: each branch
    starts from the same virtual instant and the clock ends at the latest
    branch finish — the quantity the paper says loosely coupled execution
    should optimize (§4.3, §5). *)

type t

exception Unknown_site of string
exception Site_down of string

type stats = {
  mutable messages : int;
  mutable bytes_moved : int;
}

val create : unit -> t
(** Contains one built-in site ["mdbs"] (latency 0): the multidatabase
    engine's own node. *)

val add_site : t -> Site.t -> unit
val find_site : t -> string -> Site.t
val site_names : t -> string list

val now_ms : t -> float
val advance_ms : t -> float -> unit
val reset_clock : t -> unit
val stats : t -> stats
val reset_stats : t -> unit

val set_down : t -> string -> bool -> unit
(** Mark a site unreachable; messages to it raise {!Site_down}. *)

val is_down : t -> string -> bool

val send : t -> src:string -> dst:string -> bytes:int -> unit
(** Charge one message from [src] to [dst]: advances the clock by both
    sites' message costs and updates the statistics. Raises
    {!Unknown_site} or {!Site_down}. *)

val parallel : t -> (unit -> 'a) list -> 'a list
(** Run the thunks as logically concurrent branches: each starts at the
    current virtual time; afterwards the clock is the maximum finish time.
    Results are returned in order. *)
