type t = {
  sites : (string, Site.t) Hashtbl.t;
  down : (string, unit) Hashtbl.t;
  mutable clock_ms : float;
  stats : stats;
}

and stats = { mutable messages : int; mutable bytes_moved : int }

exception Unknown_site of string
exception Site_down of string

let key = String.lowercase_ascii

let create () =
  let t =
    {
      sites = Hashtbl.create 16;
      down = Hashtbl.create 4;
      clock_ms = 0.0;
      stats = { messages = 0; bytes_moved = 0 };
    }
  in
  Hashtbl.replace t.sites (key "mdbs")
    (Site.make ~latency_ms:0.0 ~per_byte_ms:0.0 "mdbs");
  t

let add_site t site = Hashtbl.replace t.sites (key site.Site.site_name) site

let find_site t name =
  match Hashtbl.find_opt t.sites (key name) with
  | Some s -> s
  | None -> raise (Unknown_site name)

let site_names t =
  Hashtbl.fold (fun _ s acc -> s.Site.site_name :: acc) t.sites []
  |> List.sort String.compare

let now_ms t = t.clock_ms
let advance_ms t d = t.clock_ms <- t.clock_ms +. d
let reset_clock t = t.clock_ms <- 0.0
let stats t = t.stats

let reset_stats t =
  t.stats.messages <- 0;
  t.stats.bytes_moved <- 0

let set_down t name down =
  ignore (find_site t name);
  if down then Hashtbl.replace t.down (key name) ()
  else Hashtbl.remove t.down (key name)

let is_down t name = Hashtbl.mem t.down (key name)

let send t ~src ~dst ~bytes =
  let s = find_site t src and d = find_site t dst in
  if is_down t src then raise (Site_down src);
  if is_down t dst then raise (Site_down dst);
  advance_ms t (Site.message_cost_ms s ~bytes +. Site.message_cost_ms d ~bytes);
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes_moved <- t.stats.bytes_moved + bytes

let parallel t thunks =
  let t0 = t.clock_ms in
  let finishes = ref [] in
  let results =
    List.map
      (fun thunk ->
        t.clock_ms <- t0;
        let r = thunk () in
        finishes := t.clock_ms :: !finishes;
        r)
      thunks
  in
  t.clock_ms <- List.fold_left max t0 !finishes;
  results
