(** A node of the simulated multi-system environment.

    The cost model is deliberately simple and deterministic: delivering a
    message of [n] bytes to or from a site costs the site's fixed latency
    plus [n] times its per-byte cost. *)

type t = {
  site_name : string;
  latency_ms : float;  (** one-way fixed cost per message *)
  per_byte_ms : float;  (** transfer cost per payload byte *)
}

val make : ?latency_ms:float -> ?per_byte_ms:float -> string -> t
(** Defaults: 5.0 ms latency, 0.0001 ms/byte (≈10 MB/s). *)

val message_cost_ms : t -> bytes:int -> float
