(** Decomposition of a global (cross-database) SELECT (§4.3, phase 3).

    Following the paper, the query is transformed "into a set of the
    largest possible local subqueries, one for each involved LDBS", plus a
    modified global query Q' evaluated by one LDBS designated as the
    coordinator:

    - table references are grouped by database; the database holding the
      most references coordinates;
    - for every other database, a local subquery projects exactly the
      columns the global query uses from that database's tables and
      applies every conjunct of the WHERE clause that is local to it;
    - its result is shipped to the coordinator as a temporary table;
    - Q' joins the coordinator's own tables with the temporaries and
      applies the remaining (cross-database) conjuncts.

    Restrictions (documented deviations): a global query must not contain
    nested subqueries, and its table references must have unique labels. *)

exception Error of string

type shipped = {
  sdb : string;  (** source database *)
  subquery : Sqlfront.Ast.select;  (** largest local subquery *)
  tmp_table : string;  (** temporary table name at the coordinator *)
}

type plan = {
  coordinator : string;  (** database that evaluates Q' *)
  shipped : shipped list;
  modified : Sqlfront.Ast.select;  (** Q', phrased against coordinator tables
                                       and the temporaries *)
  cleanup : string list;  (** temporary tables to drop afterwards *)
}

val decompose :
  gselect:Sqlfront.Ast.select -> grefs:Expand.global_ref list -> plan

val pp_plan : Format.formatter -> plan -> unit
