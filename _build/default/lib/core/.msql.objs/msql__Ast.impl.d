lib/core/ast.ml: List Sqlcore Sqlfront
