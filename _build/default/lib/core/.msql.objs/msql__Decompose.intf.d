lib/core/decompose.mli: Expand Format Sqlfront
