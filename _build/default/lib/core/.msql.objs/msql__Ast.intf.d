lib/core/ast.mli: Sqlfront
