lib/core/plangen.mli: Ad Ast Decompose Expand Narada
