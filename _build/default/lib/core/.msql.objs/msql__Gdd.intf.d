lib/core/gdd.mli: Sqlcore
