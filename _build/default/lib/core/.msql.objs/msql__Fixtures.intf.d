lib/core/fixtures.mli: Ldbms Msession Narada Netsim Sqlcore
