lib/core/fixtures.ml: Array Ldbms List Msession Narada Netsim Printf Random Schema Sqlcore Ty Value
