lib/core/mlexer.mli: Sqlfront
