lib/core/gdd.ml: Hashtbl List Option Printf Sqlcore String
