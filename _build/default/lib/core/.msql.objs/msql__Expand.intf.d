lib/core/expand.mli: Ast Gdd Sqlcore Sqlfront
