lib/core/mparser.mli: Ast
