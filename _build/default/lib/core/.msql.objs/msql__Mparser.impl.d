lib/core/mparser.ml: Ast List Mlexer Option Printf Sqlcore Sqlfront String
