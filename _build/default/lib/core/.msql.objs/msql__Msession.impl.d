lib/core/msession.ml: Ad Ast Decompose Expand Fun Gdd Hashtbl Ldbms List Logs Mparser Multitable Narada Netsim Option Plangen Printf Sqlcore String
