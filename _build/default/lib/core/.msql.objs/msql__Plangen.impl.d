lib/core/plangen.ml: Ad Ast Decompose Expand Hashtbl List Narada Option Printf Sqlcore Sqlfront String
