lib/core/mlexer.ml: List Printf Sqlcore Sqlfront String
