lib/core/ad.mli: Ast Ldbms
