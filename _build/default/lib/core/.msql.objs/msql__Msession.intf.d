lib/core/msession.mli: Ad Ast Gdd Multitable Narada Netsim Stdlib
