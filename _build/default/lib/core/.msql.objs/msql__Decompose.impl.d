lib/core/decompose.ml: Expand Format Hashtbl List Option Printf Sqlcore Sqlfront
