lib/core/multitable.ml: Array Format List Option Sqlcore
