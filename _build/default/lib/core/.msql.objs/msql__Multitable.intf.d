lib/core/multitable.mli: Format Sqlcore
