lib/core/ad.ml: Ast Hashtbl Ldbms List Sqlcore String
