lib/core/expand.ml: Ast Gdd List Option Printf Sqlcore Sqlfront String
