module Relation = Sqlcore.Relation

type part = { part_db : string; part_table : Relation.t }
type t = part list

let make parts = parts
let parts t = t

let databases t =
  List.fold_left
    (fun acc p -> if List.mem p.part_db acc then acc else acc @ [ p.part_db ])
    [] t

let total_rows t =
  List.fold_left (fun acc p -> acc + Relation.cardinality p.part_table) 0 t

let is_empty t = t = []

let find t db =
  match List.filter (fun p -> Sqlcore.Names.equal p.part_db db) t with
  | [] -> None
  | [ p ] -> Some p.part_table
  | p :: rest ->
      Some
        (List.fold_left
           (fun acc q ->
             if
               Sqlcore.Schema.union_compatible (Relation.schema acc)
                 (Relation.schema q.part_table)
             then Relation.union acc q.part_table
             else acc)
           p.part_table rest)

let flatten t =
  match t with
  | [] -> None
  | p :: rest ->
      List.fold_left
        (fun acc q ->
          match acc with
          | None -> None
          | Some r ->
              if
                Sqlcore.Schema.union_compatible (Relation.schema r)
                  (Relation.schema q.part_table)
              then Some (Relation.union r q.part_table)
              else None)
        (Some p.part_table) rest

type agg = Count | Sum | Avg | Min | Max

let column_values part name =
  match Sqlcore.Schema.find_index (Relation.schema part.part_table) name with
  | None -> None
  | Some i ->
      Some
        (List.filter_map
           (fun row ->
             let v = row.(i) in
             if Sqlcore.Value.is_null v then None else Some v)
           (Relation.rows part.part_table))

let compute_agg agg vs =
  let module V = Sqlcore.Value in
  match agg, vs with
  | Count, _ -> V.Int (List.length vs)
  | _, [] -> V.Null
  | Min, v :: rest ->
      List.fold_left (fun a v -> if V.compare v a < 0 then v else a) v rest
  | Max, v :: rest ->
      List.fold_left (fun a v -> if V.compare v a > 0 then v else a) v rest
  | (Sum | Avg), vs -> (
      let all_int = List.for_all (fun v -> V.as_int v <> None) vs in
      match agg with
      | Sum when all_int ->
          V.Int (List.fold_left (fun a v -> a + Option.get (V.as_int v)) 0 vs)
      | Sum | Avg -> (
          let floats = List.map V.as_float vs in
          if List.exists Option.is_none floats then V.Null
          else
            let total = List.fold_left (fun a f -> a +. Option.get f) 0.0 floats in
            match agg with
            | Avg -> V.Float (total /. float_of_int (List.length vs))
            | _ -> V.Float total)
      | Count | Min | Max -> assert false)

let aggregate t agg ~column =
  let vs = List.concat (List.filter_map (fun p -> column_values p column) t) in
  if List.for_all (fun p -> column_values p column = None) t then
    Sqlcore.Value.Null
  else compute_agg agg vs

let aggregate_per_part t agg ~column =
  List.filter_map
    (fun p ->
      column_values p column
      |> Option.map (fun vs -> (p.part_db, compute_agg agg vs)))
    t

let total_count = total_rows

let restrict t keep = List.filter (fun p -> keep p.part_db) t

let pp ppf t =
  let pp_part ppf p =
    Format.fprintf ppf "-- %s --@\n%a" p.part_db Relation.pp p.part_table
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
    pp_part ppf t

let to_string t = Format.asprintf "%a" pp t
