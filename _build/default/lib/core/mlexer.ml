module Scan = Sqlcore.Scan
module Token = Sqlfront.Token

exception Error of string * int * int

let is_mident_char c = Scan.is_ident_char c || c = '%'
let is_mident_start c = Scan.is_ident_start c || c = '%' || c = '~'

let number sc =
  let intpart = Scan.take_while sc Scan.is_digit in
  match Scan.peek sc, Scan.peek2 sc with
  | Some '.', Some c when Scan.is_digit c ->
      Scan.advance sc;
      let frac = Scan.take_while sc Scan.is_digit in
      Token.Float (float_of_string (intpart ^ "." ^ frac))
  | _ -> Token.Int (int_of_string intpart)

let mident sc =
  let prefix =
    match Scan.peek sc with
    | Some '~' ->
        Scan.advance sc;
        "~"
    | _ -> ""
  in
  let body = Scan.take_while sc is_mident_char in
  if body = "" then Scan.error sc "expected identifier after ~";
  prefix ^ body

let rec symbol sc =
  let two a b = Scan.peek sc = Some a && Scan.peek2 sc = Some b in
  let take2 () =
    Scan.advance sc;
    Scan.advance sc
  in
  if two '<' '=' then begin take2 (); "<=" end
  else if two '>' '=' then begin take2 (); ">=" end
  else if two '<' '>' then begin take2 (); "<>" end
  else if two '!' '=' then begin take2 (); "<>" end
  else if two '|' '|' then begin take2 (); "||" end
  else
    match Scan.peek sc with
    | None -> Scan.error sc "unexpected end of input"
    | Some c -> lone_symbol sc c

and lone_symbol sc c =
  match c with
  | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | ';' ->
      Scan.advance sc;
      String.make 1 c
  | _ -> Scan.error sc (Printf.sprintf "unexpected character %C" c)

let tokenize input =
  let sc = Scan.create input in
  let out = ref [] in
  let emit tok tline tcol = out := { Token.tok; tline; tcol } :: !out in
  (try
     let rec loop () =
       Scan.skip_ws_and_comments sc;
       let tline = Scan.line sc and tcol = Scan.column sc in
       match Scan.peek sc with
       | None -> emit Token.Eof tline tcol
       | Some c when is_mident_start c ->
           emit (Token.Ident (mident sc)) tline tcol;
           loop ()
       | Some c when Scan.is_digit c ->
           emit (number sc) tline tcol;
           loop ()
       | Some '\'' ->
           emit (Token.Str (Scan.quoted_string sc)) tline tcol;
           loop ()
       | Some _ ->
           emit (Token.Sym (symbol sc)) tline tcol;
           loop ()
     in
     loop ()
   with Scan.Error (m, l, c) -> raise (Error (m, l, c)));
  List.rev !out
