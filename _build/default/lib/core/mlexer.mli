(** Lexer for MSQL.

    Identical to the SQL lexer except for {e multiple identifiers}: the
    [%] wildcard may appear anywhere in an identifier ([rate%], [%code],
    [fl%8]), and the [~] optional-column marker may prefix one
    ([~rate]). Such tokens are emitted as ordinary [Ident]s whose payload
    keeps the markers; expansion interprets them. Consequently MSQL bodies
    have no [%] modulo operator. *)

exception Error of string * int * int

val tokenize : string -> Sqlfront.Token.located list
