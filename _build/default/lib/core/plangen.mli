(** DOL evaluation-plan generation (§4.3, phase 4): the MSQL→DOL
    translator.

    Every plan OPENs the involved services, runs the local subqueries as
    parallel tasks, then encodes the commit discipline demanded by the
    VITAL designators, COMP clauses and acceptable termination states as
    DOL conditionals — so the entire semantics of a multiple query or
    multitransaction is visible in one generated program, as in the
    paper's §4.3 listing.

    Return-code convention (DOLSTATUS): [0] success, [1] aborted. The
    finer outcome (which acceptable state was reached, which vital
    subqueries diverged) is recovered from the task statuses by
    {!Msession}. *)

exception Error of string
(** Plan-generation refusal, e.g. a VITAL database without 2PC and without
    a COMP clause (§3.3), or a database missing from the AD. *)

type binding = {
  task : string;  (** DOL task name *)
  bdb : string;  (** database it runs against *)
  vital : Ast.vital;
  retrieval : bool;  (** the task's script ends in a SELECT *)
}

type plan = {
  program : Narada.Dol_ast.program;
  task_bindings : binding list;
  coordinator : string option;  (** set for decomposed global queries *)
}

val plan_replicated : Ad.t -> Ast.query -> Expand.elementary list -> plan
(** Plan for a multiple query expanded per database (retrieval or
    update). *)

val plan_global : Ad.t -> Ast.query -> Decompose.plan -> plan
(** Plan for a decomposed cross-database SELECT: parallel MOVEs of the
    local subqueries to the coordinator, the modified query Q' there, and
    cleanup of the temporaries. *)

val plan_transfer :
  Ad.t ->
  tdb:string ->
  tuse:Ast.use_item ->
  ttable:string ->
  tcolumns:string list option ->
  Decompose.plan ->
  plan
(** Plan for a cross-database INSERT ... SELECT (§2's data transfer): the
    decomposed source query is materialized at its coordinator, its result
    is MOVEd to the target site, inserted there, and every temporary is
    dropped. When source and target coincide the insert runs locally. *)

val plan_mtx :
  Ad.t ->
  Ast.multitransaction ->
  (Ast.query * Expand.elementary list) list ->
  plan
(** Plan for a multitransaction: every subquery is held
    prepared-to-commit where the engine allows, then the acceptable
    termination states are tried in specification order (§3.4). *)

val site_of : Ad.t -> string -> string option
(** Declared site of a service, for the OPEN ... AT clause. *)
