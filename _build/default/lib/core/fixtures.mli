(** The paper's example databases (Appendix A), loaded with sample data.

    Two car-rental companies (AVIS, NATIONAL) and three airlines
    (CONTINENTAL, DELTA, UNITED), exhibiting exactly the naming and schema
    heterogeneities the paper's examples exercise: [cars] vs [vehicle],
    [rate] present only in AVIS, [flights]/[flight] with differently
    spelled columns, seat tables with different names.

    Naming note: the appendix lists the seat tables as "838" (an OCR
    artifact, presumably fl838) and "fnu747", but the §3.4
    multitransaction LET refers to them as [f838] and [f747]; we use the
    LET spellings so the paper's programs run verbatim. *)

type t = {
  session : Msession.t;
  world : Netsim.World.t;
  directory : Narada.Directory.t;
}

val default_caps : (string * Ldbms.Capabilities.t) list
(** continental/united: ingres-like 2PC; delta: oracle-like 2PC;
    avis: ingres-like; national: oracle-like. *)

val make : ?caps:(string * Ldbms.Capabilities.t) list -> unit -> t
(** Build the five-database federation: sites [site1]..[site5], services
    registered in the Narada directory, truthfully INCORPORATEd in the AD,
    and all schemas IMPORTed into the GDD. [caps] overrides engine
    capabilities per database (e.g. make continental autocommit-only to
    reproduce §3.3). *)

val database : t -> string -> Ldbms.Database.t
(** Direct handle on a fixture database (for assertions in tests). *)

val scan : t -> db:string -> table:string -> Sqlcore.Relation.t
(** Current contents of a table, bypassing the network. *)

val airline_fleet :
  ?flights_per_db:int -> ?seed:int -> n:int -> unit -> t
(** A synthetic federation of [n] airline databases ([airline1] ..
    [airlinen]), each with a [flights] table of [flights_per_db] rows
    (default 100) — the workload generator for the parameter-sweep
    benchmarks. All engines are ingres-like 2PC. *)
