(** Parser for extended MSQL.

    Concrete syntax follows the paper:

    {v
    USE continental VITAL delta united VITAL
    UPDATE flight% SET rate% = rate% * 1.1
    WHERE sour% = 'Houston' AND dest% = 'San Antonio'
    COMP continental
      UPDATE flights SET rate = rate / 1.1
      WHERE source = 'Houston' AND destination = 'San Antonio'
    v}

    Aliases in USE require the parenthesized form of the paper's grammar:
    [USE (continental cont) VITAL (delta d)]. Multitransactions are
    bracketed by [BEGIN MULTITRANSACTION] / [END MULTITRANSACTION] with a
    [COMMIT] statement listing acceptable states, one conjunction
    ([db AND db ...]) per state. *)

exception Error of string * int * int

val parse_toplevel : string -> Ast.toplevel
(** Parse exactly one top-level MSQL statement. *)

val parse_script : string -> Ast.toplevel list
(** Parse a sequence of top-level statements (each optionally terminated
    by [;]). *)

val parse_query : string -> Ast.query
(** Parse a single multiple query (USE ... LET ... body ... COMP ...). *)
