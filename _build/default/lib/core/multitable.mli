(** Multitables: the result of a multiple retrieval query (§2) — a set of
    tables, one per database that produced a partial result. The parts are
    deliberately {e not} merged: MSQL leaves sets of tables visible to the
    user, who may aggregate them with multitable built-ins. *)

type part = {
  part_db : string;  (** database the partial result came from *)
  part_table : Sqlcore.Relation.t;
}

type t

val make : part list -> t
val parts : t -> part list
val databases : t -> string list
val total_rows : t -> int
val is_empty : t -> bool

val find : t -> string -> Sqlcore.Relation.t option
(** Partial result of a given database. When a database contributed
    several partial tables, they are returned unioned if compatible, the
    first otherwise. *)

val flatten : t -> Sqlcore.Relation.t option
(** Union of all parts when they are union-compatible — the "merge into
    the final result" step of §2 for identically-shaped partial results;
    [None] if shapes differ. *)

(** {2 Multiple-table built-ins}

    §2 lists "new built-in functions for aggregation and manipulation of
    multiple tables" among MSQL's features. These operate across all
    partial results of a multitable; a column is addressed by name and
    evaluated in every part that has it (parts lacking the column are
    skipped, matching the permissive spirit of optional columns). *)

type agg = Count | Sum | Avg | Min | Max

val aggregate : t -> agg -> column:string -> Sqlcore.Value.t
(** Aggregate a named column over every part that carries it. NULLs are
    ignored as in SQL; [Count] counts non-null values. Returns [Null] when
    no part has the column or no non-null value exists. *)

val aggregate_per_part : t -> agg -> column:string -> (string * Sqlcore.Value.t) list
(** The same aggregate computed part by part (db name, value), skipping
    parts without the column. *)

val total_count : t -> int
(** Rows across all parts — the multitable row count. *)

val restrict : t -> (string -> bool) -> t
(** Keep only the parts of the named databases. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
