open Sqlcore
module Caps = Ldbms.Capabilities

type t = {
  session : Msession.t;
  world : Netsim.World.t;
  directory : Narada.Directory.t;
}

let default_caps =
  [
    ("continental", Caps.ingres_like);
    ("delta", Caps.oracle_like);
    ("united", Caps.ingres_like);
    ("avis", Caps.ingres_like);
    ("national", Caps.oracle_like);
  ]

let col = Schema.column
let s = Value.(fun x -> Str x)
let i = Value.(fun x -> Int x)
let f = Value.(fun x -> Float x)

(* CONTINENTAL: flights (flnu, source, dep, destination, arr, day, rate)
                f838 (seatnu, seatty, seatstatus, clientname) *)
let continental db =
  Ldbms.Database.load db ~name:"flights"
    [ col "flnu" Ty.Int; col ~width:20 "source" Ty.Str; col ~width:8 "dep" Ty.Str;
      col ~width:20 "destination" Ty.Str; col ~width:8 "arr" Ty.Str;
      col ~width:10 "day" Ty.Str; col "rate" Ty.Float ]
    [
      [| i 101; s "Houston"; s "08:00"; s "San Antonio"; s "09:05"; s "mon"; f 100.0 |];
      [| i 102; s "Houston"; s "12:30"; s "San Antonio"; s "13:35"; s "tue"; f 120.0 |];
      [| i 103; s "Houston"; s "17:45"; s "Dallas"; s "18:40"; s "mon"; f 80.0 |];
      [| i 104; s "Austin"; s "07:20"; s "San Antonio"; s "07:55"; s "wed"; f 60.0 |];
    ];
  Ldbms.Database.load db ~name:"f838"
    [ col "seatnu" Ty.Int; col ~width:4 "seatty" Ty.Str;
      col ~width:8 "seatstatus" Ty.Str; col ~width:30 "clientname" Ty.Str ]
    [
      [| i 1; s "1A"; s "TAKEN"; s "smith" |];
      [| i 2; s "1B"; s "FREE"; Value.Null |];
      [| i 3; s "2A"; s "FREE"; Value.Null |];
      [| i 4; s "2B"; s "TAKEN"; s "jones" |];
    ]

(* DELTA: flight (fnu, source, dest, dep, arr, day, rate)
          f747 (snu, sty, sstat, passname) *)
let delta db =
  Ldbms.Database.load db ~name:"flight"
    [ col "fnu" Ty.Int; col ~width:20 "source" Ty.Str; col ~width:20 "dest" Ty.Str;
      col ~width:8 "dep" Ty.Str; col ~width:8 "arr" Ty.Str;
      col ~width:10 "day" Ty.Str; col "rate" Ty.Float ]
    [
      [| i 201; s "Houston"; s "San Antonio"; s "09:10"; s "10:10"; s "mon"; f 110.0 |];
      [| i 202; s "Houston"; s "New Orleans"; s "11:00"; s "12:20"; s "fri"; f 140.0 |];
      [| i 203; s "Houston"; s "San Antonio"; s "19:30"; s "20:30"; s "sun"; f 90.0 |];
    ];
  Ldbms.Database.load db ~name:"f747"
    [ col "snu" Ty.Int; col ~width:4 "sty" Ty.Str; col ~width:8 "sstat" Ty.Str;
      col ~width:30 "passname" Ty.Str ]
    [
      [| i 1; s "1A"; s "FREE"; Value.Null |];
      [| i 2; s "1B"; s "TAKEN"; s "garcia" |];
      [| i 3; s "2A"; s "FREE"; Value.Null |];
    ]

(* UNITED: flight (fn, sour, dest, depa, arri, day, rates)
           fn727 (sn, st, sst, pasna) *)
let united db =
  Ldbms.Database.load db ~name:"flight"
    [ col "fn" Ty.Int; col ~width:20 "sour" Ty.Str; col ~width:20 "dest" Ty.Str;
      col ~width:8 "depa" Ty.Str; col ~width:8 "arri" Ty.Str;
      col ~width:10 "day" Ty.Str; col "rates" Ty.Float ]
    [
      [| i 301; s "Houston"; s "San Antonio"; s "06:45"; s "07:50"; s "mon"; f 95.0 |];
      [| i 302; s "Houston"; s "Chicago"; s "10:15"; s "12:40"; s "tue"; f 210.0 |];
      [| i 303; s "Houston"; s "San Antonio"; s "21:00"; s "22:05"; s "sat"; f 85.0 |];
    ];
  Ldbms.Database.load db ~name:"fn727"
    [ col "sn" Ty.Int; col ~width:4 "st" Ty.Str; col ~width:8 "sst" Ty.Str;
      col ~width:30 "pasna" Ty.Str ]
    [
      [| i 1; s "1A"; s "FREE"; Value.Null |];
      [| i 2; s "1B"; s "FREE"; Value.Null |];
    ]

(* AVIS: cars (code, cartype, rate, carst, from, to, client) *)
let avis db =
  Ldbms.Database.load db ~name:"cars"
    [ col "code" Ty.Int; col ~width:12 "cartype" Ty.Str; col "rate" Ty.Float;
      col ~width:10 "carst" Ty.Str; col ~width:10 "from" Ty.Str;
      col ~width:10 "to" Ty.Str; col ~width:30 "client" Ty.Str ]
    [
      [| i 1; s "sedan"; f 45.0; s "available"; Value.Null; Value.Null; Value.Null |];
      [| i 2; s "suv"; f 65.0; s "rented"; s "07-01-92"; s "07-09-92"; s "smith" |];
      [| i 3; s "compact"; f 35.0; s "available"; Value.Null; Value.Null; Value.Null |];
      [| i 4; s "sedan"; f 50.0; s "available"; Value.Null; Value.Null; Value.Null |];
    ]

(* NATIONAL: vehicle (vcode, vty, vstat, from, to, client) — no rate column *)
let national db =
  Ldbms.Database.load db ~name:"vehicle"
    [ col "vcode" Ty.Int; col ~width:12 "vty" Ty.Str; col ~width:10 "vstat" Ty.Str;
      col ~width:10 "from" Ty.Str; col ~width:10 "to" Ty.Str;
      col ~width:30 "client" Ty.Str ]
    [
      [| i 11; s "sedan"; s "available"; Value.Null; Value.Null; Value.Null |];
      [| i 12; s "van"; s "rented"; s "06-28-92"; s "07-05-92"; s "brown" |];
      [| i 13; s "compact"; s "available"; Value.Null; Value.Null; Value.Null |];
    ]

let loaders =
  [
    ("continental", continental);
    ("delta", delta);
    ("united", united);
    ("avis", avis);
    ("national", national);
  ]

let make ?(caps = []) () =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let session = Msession.create ~world ~directory () in
  List.iteri
    (fun idx (name, load) ->
      let site = Printf.sprintf "site%d" (idx + 1) in
      Netsim.World.add_site world (Netsim.Site.make site);
      let db = Ldbms.Database.create name in
      load db;
      let engine_caps =
        match Sqlcore.Names.assoc_opt name caps with
        | Some c -> c
        | None -> List.assoc name default_caps
      in
      Narada.Directory.register directory
        (Narada.Service.make ~site ~caps:engine_caps db);
      (match Msession.incorporate_auto session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m);
      match Msession.import_all session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m)
    loaders;
  { session; world; directory }

let database t name =
  (Narada.Directory.find t.directory name).Narada.Service.database

let scan t ~db ~table =
  Ldbms.Table.to_relation (Ldbms.Database.find_table (database t db) table)

let airline_fleet ?(flights_per_db = 100) ?(seed = 42) ~n () =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let session = Msession.create ~world ~directory () in
  let rng = Random.State.make [| seed |] in
  let cities =
    [| "Houston"; "San Antonio"; "Dallas"; "Austin"; "Chicago"; "Denver" |]
  in
  for k = 1 to n do
    let name = Printf.sprintf "airline%d" k in
    let site = Printf.sprintf "asite%d" k in
    Netsim.World.add_site world (Netsim.Site.make site);
    let db = Ldbms.Database.create name in
    let rows =
      List.init flights_per_db (fun j ->
          let src = cities.(Random.State.int rng (Array.length cities)) in
          let dst = cities.(Random.State.int rng (Array.length cities)) in
          [|
            i ((k * 1000) + j);
            s src;
            s dst;
            f (50.0 +. Random.State.float rng 200.0);
          |])
    in
    Ldbms.Database.load db ~name:"flights"
      [ col "flnu" Ty.Int; col ~width:20 "source" Ty.Str;
        col ~width:20 "destination" Ty.Str; col "rate" Ty.Float ]
      rows;
    Narada.Directory.register directory
      (Narada.Service.make ~site ~caps:Caps.ingres_like db);
    (match Msession.incorporate_auto session ~service:name with
    | Ok () -> ()
    | Error m -> failwith m);
    match Msession.import_all session ~service:name with
    | Ok () -> ()
    | Error m -> failwith m
  done;
  { session; world; directory }
