type t = {
  name : string;
  schema : Sqlcore.Schema.t;
  mutable rows : Sqlcore.Row.t list;  (* newest last *)
  mutable version : int;
  (* lazy equality-lookup cache: column -> (version built at, hash map) *)
  lookup_cache : (int, int * (string, Sqlcore.Row.t list) Hashtbl.t) Hashtbl.t;
}

let create ~name schema =
  { name; schema; rows = []; version = 0; lookup_cache = Hashtbl.create 4 }
let name t = t.name
let schema t = t.schema
let rows t = t.rows
let cardinality t = List.length t.rows
let touch t = t.version <- t.version + 1

let set_rows t rows =
  t.rows <- rows;
  touch t

let insert t row =
  if Array.length row <> Sqlcore.Schema.arity t.schema then
    invalid_arg (Printf.sprintf "Table.insert(%s): arity mismatch" t.name);
  t.rows <- t.rows @ [ row ];
  touch t

let to_relation t = Sqlcore.Relation.make t.schema t.rows
let copy t = { t with rows = t.rows; lookup_cache = Hashtbl.create 4 }

let version t = t.version

let lookup_eq t ~col v =
  if Sqlcore.Value.is_null v then []
  else begin
    let map =
      match Hashtbl.find_opt t.lookup_cache col with
      | Some (built_at, map) when built_at = t.version -> map
      | Some _ | None ->
          let map = Hashtbl.create (List.length t.rows) in
          List.iter
            (fun row ->
              let key = Sqlcore.Value.to_literal row.(col) in
              let prev = Option.value (Hashtbl.find_opt map key) ~default:[] in
              Hashtbl.replace map key (row :: prev))
            t.rows;
          Hashtbl.replace t.lookup_cache col (t.version, map);
          map
    in
    match Hashtbl.find_opt map (Sqlcore.Value.to_literal v) with
    | Some rows -> List.rev rows
    | None -> []
  end
