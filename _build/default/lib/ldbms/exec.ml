module Ast = Sqlfront.Ast
module Sql_pp = Sqlfront.Sql_pp
open Sqlcore

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let wrap f =
  try f () with
  | Eval.Type_error m -> err "type error: %s" m
  | Eval.Unknown_column c -> err "unknown column: %s" c
  | Eval.Ambiguous_column c -> err "ambiguous column: %s" c
  | Database.No_such_table t -> err "no such table: %s" t
  | Database.Table_exists t -> err "table already exists: %s" t
  | Database.No_such_view v -> err "no such view: %s" v
  | Database.View_exists v -> err "view already exists: %s" v
  | Database.No_such_index i -> err "no such index: %s" i
  | Database.Index_exists i -> err "index already exists: %s" i

(* ---- output-schema type inference ------------------------------------- *)

let rec infer_expr_ty schema = function
  | Ast.Lit v -> Option.value (Value.ty v) ~default:Ty.Str
  | Ast.Col { qualifier; name } -> (
      match Schema.find_index schema ?qualifier name with
      | Some i -> (List.nth schema i).Schema.ty
      | None -> Ty.Str)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) -> (
      match infer_expr_ty schema a, infer_expr_ty schema b with
      | Ty.Int, Ty.Int -> Ty.Int
      | _ -> Ty.Float)
  | Ast.Binop (Ast.Concat, _, _) -> Ty.Str
  | Ast.Binop
      ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _)
    ->
      Ty.Bool
  | Ast.Unop (Ast.Neg, a) -> infer_expr_ty schema a
  | Ast.Unop (Ast.Not, _) -> Ty.Bool
  | Ast.Is_null _ | Ast.Like _ | Ast.In_list _ | Ast.Between _ | Ast.In_subquery _
  | Ast.Exists _ ->
      Ty.Bool
  | Ast.Agg { fn = Count_star | Count; _ } -> Ty.Int
  | Ast.Agg { fn = Avg; _ } -> Ty.Float
  | Ast.Agg { fn = Sum | Min | Max; arg; _ } -> (
      match arg with Some a -> infer_expr_ty schema a | None -> Ty.Int)
  | Ast.Scalar_subquery q -> (
      match q.Ast.projections with
      | [ Ast.Proj_expr (e, _) ] -> infer_expr_ty [] e
      | _ -> Ty.Str)

(* ---- projection naming ------------------------------------------------- *)

let agg_fn_name = function
  | Ast.Count_star | Ast.Count -> "count"
  | Ast.Sum -> "sum"
  | Ast.Avg -> "avg"
  | Ast.Min -> "min"
  | Ast.Max -> "max"

let derived_name = function
  | Ast.Col { name; _ } -> name
  | Ast.Agg { fn; arg; _ } -> (
      match arg with
      | Some (Ast.Col { name; _ }) -> agg_fn_name fn ^ "_" ^ name
      | Some _ | None -> agg_fn_name fn)
  | e -> Sql_pp.expr_to_string e

(* ---- FROM clause ------------------------------------------------------- *)

(* Views expand to their evaluated definition; [depth] guards against
   mutually recursive view definitions. *)
let max_view_depth = 16

let relation_of_from ~eval_select ~depth db (from : Ast.table_ref list) =
  if from = [] then err "empty FROM clause";
  let one (r : Ast.table_ref) =
    let qualifier = Some (Option.value r.Ast.alias ~default:r.Ast.table) in
    match Database.find_table_opt db r.Ast.table with
    | Some tbl -> Relation.requalify qualifier (Table.to_relation tbl)
    | None -> (
        match Database.find_view_opt db r.Ast.table with
        | Some q ->
            if depth >= max_view_depth then
              err "view expansion too deep (recursive views?) at %s" r.Ast.table
            else Relation.requalify qualifier (eval_select q)
        | None -> err "no such table: %s" r.Ast.table)
  in
  match List.map one from with
  | [] -> assert false
  | first :: rest -> List.fold_left Relation.product first rest

(* ---- aggregates -------------------------------------------------------- *)

let compute_agg ctx schema rows (fn, distinct, arg) =
  let values_of e =
    List.filter_map
      (fun row ->
        let v = Eval.eval ctx (Eval.env schema row) e in
        if Value.is_null v then None else Some v)
      rows
  in
  let dedup vs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        let k = Value.to_literal v in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      vs
  in
  match fn, arg with
  | Ast.Count_star, _ -> Value.Int (List.length rows)
  | Ast.Count, Some e ->
      let vs = values_of e in
      Value.Int (List.length (if distinct then dedup vs else vs))
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), Some e -> (
      let vs = values_of e in
      let vs = if distinct then dedup vs else vs in
      match vs with
      | [] -> Value.Null
      | v0 :: _ -> (
          match fn with
          | Ast.Min ->
              List.fold_left (fun a v -> if Value.compare v a < 0 then v else a) v0 vs
          | Ast.Max ->
              List.fold_left (fun a v -> if Value.compare v a > 0 then v else a) v0 vs
          | Ast.Sum ->
              if List.for_all (fun v -> Value.as_int v <> None) vs then
                Value.Int
                  (List.fold_left (fun a v -> a + Option.get (Value.as_int v)) 0 vs)
              else
                let total =
                  List.fold_left
                    (fun a v ->
                      match Value.as_float v with
                      | Some f -> a +. f
                      | None -> raise (Eval.Type_error "SUM of non-numeric value"))
                    0.0 vs
                in
                Value.Float total
          | Ast.Avg ->
              let total =
                List.fold_left
                  (fun a v ->
                    match Value.as_float v with
                    | Some f -> a +. f
                    | None -> raise (Eval.Type_error "AVG of non-numeric value"))
                  0.0 vs
              in
              Value.Float (total /. float_of_int (List.length vs))
          | Ast.Count | Ast.Count_star -> assert false))
  | (Ast.Count | Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
      raise (Eval.Type_error "aggregate function needs an argument")

(* ---- index fast path ----------------------------------------------------- *)

(* When the FROM clause is a single base table and the WHERE clause contains
   a top-level conjunct [col = literal] on a declared-indexed column, seed
   the scan from the hash lookup instead of the full table. The complete
   predicate is still applied afterwards, so this is purely a physical
   optimization. *)
let rec where_conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> where_conjuncts a @ where_conjuncts b
  | e -> [ e ]

let indexed_scan db (s : Ast.select) =
  match s.Ast.from, s.Ast.where with
  | [ { Ast.table; alias } ], Some pred -> (
      match Database.find_table_opt db table with
      | None -> None
      | Some tbl ->
          let schema = Table.schema tbl in
          let label = Option.value alias ~default:table in
          let col_matches q name =
            (match q with
            | Some q -> Sqlcore.Names.equal q label
            | None -> true)
            && Schema.mem schema name
            && Database.has_index db ~table ~column:name
          in
          let candidate = function
            | Ast.Binop (Ast.Eq, Ast.Col { qualifier; name }, Ast.Lit v)
            | Ast.Binop (Ast.Eq, Ast.Lit v, Ast.Col { qualifier; name })
              when col_matches qualifier name ->
                Schema.find_index schema name
                |> Option.map (fun i -> (i, v))
            | _ -> None
          in
          List.find_map candidate (where_conjuncts pred)
          |> Option.map (fun (col, v) ->
                 Relation.requalify (Some label)
                   (Relation.make schema (Table.lookup_eq tbl ~col v))))
  | _ -> None

(* ---- SELECT ------------------------------------------------------------ *)

let rec run_select db ?outer (s : Ast.select) : Relation.t =
  wrap (fun () -> select_unwrapped ~depth:0 db ?outer s)

and select_unwrapped ~depth db ?outer (s : Ast.select) =
  let ctx_plain =
    { Eval.subquery = (fun env q -> subquery_eval ~depth db env q); agg = None }
  in
  let input =
    match indexed_scan db s with
    | Some rel -> rel
    | None ->
        relation_of_from
          ~eval_select:(fun q -> select_unwrapped ~depth:(depth + 1) db q)
          ~depth db s.Ast.from
  in
  let schema = Relation.schema input in
  let mkenv row = { (Eval.env schema row) with Eval.outer } in
  let filtered =
    match s.Ast.where with
    | None -> input
    | Some pred ->
        Relation.filter
          (fun row -> Eval.truthy (Eval.eval ctx_plain (mkenv row) pred))
          input
  in
  let result =
    if Ast.is_aggregate_query s then
      aggregate_select ~depth db ~outer schema filtered s
    else plain_select ~depth db ~outer schema filtered s
  in
  if s.Ast.distinct then Relation.distinct result else result

and subquery_eval ~depth db env q =
  (* [env] is the enclosing row environment, which becomes the subquery's
     outer scope for correlated references. *)
  select_unwrapped ~depth db ?outer:env q

and expand_projections schema (projections : Ast.projection list) =
  (* -> (output column, value expr) list, where the expr is either a
     concrete index (for stars) or an AST expression *)
  List.concat_map
    (fun p ->
      match p with
      | Ast.Star ->
          List.mapi (fun i (c : Schema.column) -> (c, `Index i)) schema
      | Ast.Qualified_star q ->
          let cols =
            List.mapi (fun i c -> (i, c)) schema
            |> List.filter (fun (_, (c : Schema.column)) ->
                   match c.Schema.qualifier with
                   | Some cq -> Names.equal cq q
                   | None -> false)
          in
          if cols = [] then err "unknown table or alias in %s.*" q
          else List.map (fun (i, c) -> (c, `Index i)) cols
      | Ast.Proj_expr (e, alias) ->
          let name = match alias with Some a -> a | None -> derived_name e in
          let ty = infer_expr_ty schema e in
          ([ (Schema.column name ty, `Expr e) ] : (Schema.column * _) list))
    projections

and plain_select ~depth db ~outer schema input (s : Ast.select) =
  let ctx =
    { Eval.subquery = (fun env q -> subquery_eval ~depth db env q); agg = None }
  in
  let cols = expand_projections schema s.Ast.projections in
  let out_schema = List.map fst cols in
  let mkenv row = { (Eval.env schema row) with Eval.outer } in
  let eval_row row =
    Array.of_list
      (List.map
         (fun (_, src) ->
           match src with
           | `Index i -> Row.get row i
           | `Expr e -> Eval.eval ctx (mkenv row) e)
         cols)
  in
  (* ORDER BY keys are computed against the pre-projection row *)
  let sorted =
    match s.Ast.order_by with
    | [] -> input
    | items ->
        let key row =
          List.map (fun (o : Ast.order_item) -> Eval.eval ctx (mkenv row) o.Ast.sort_expr) items
        in
        let cmp ra rb =
          let ka = key ra and kb = key rb in
          let rec go ks items =
            match ks, items with
            | [], [] -> 0
            | (a, b) :: rest, (o : Ast.order_item) :: orest ->
                let c = Value.compare a b in
                let c = if o.Ast.descending then -c else c in
                if c <> 0 then c else go rest orest
            | _ -> 0
          in
          go (List.combine ka kb) items
        in
        Relation.order_by cmp input
  in
  Relation.make out_schema (List.map eval_row (Relation.rows sorted))

and aggregate_select ~depth db ~outer schema input (s : Ast.select) =
  let plain_ctx =
    { Eval.subquery = (fun env q -> subquery_eval ~depth db env q); agg = None }
  in
  let mkenv row = { (Eval.env schema row) with Eval.outer } in
  (* partition rows into groups by the GROUP BY key *)
  let groups =
    match s.Ast.group_by with
    | [] -> (
        match Relation.rows input with [] -> [ [] ] | rows -> [ rows ])
    | keys ->
        let tbl = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun row ->
            let k =
              List.map
                (fun e -> Value.to_literal (Eval.eval plain_ctx (mkenv row) e))
                keys
              |> String.concat "\x00"
            in
            (match Hashtbl.find_opt tbl k with
            | Some rows -> Hashtbl.replace tbl k (row :: rows)
            | None ->
                order := k :: !order;
                Hashtbl.add tbl k [ row ]);
            ())
          (Relation.rows input);
        List.rev !order |> List.map (fun k -> List.rev (Hashtbl.find tbl k))
  in
  (* drop the synthetic empty group when grouping produced no rows at all *)
  let groups =
    match s.Ast.group_by, groups with
    | _ :: _, _ -> groups
    | [], gs -> gs
  in
  let group_ctx rows =
    let agg_f = function
      | Ast.Agg { fn; distinct; arg } ->
          compute_agg plain_ctx schema rows (fn, distinct, arg)
      | _ -> assert false
    in
    {
      Eval.subquery = (fun env q -> subquery_eval ~depth db env q);
      agg = Some agg_f;
    }
  in
  let rep_env rows =
    match rows with
    | row :: _ -> mkenv row
    | [] -> mkenv (Array.make (List.length schema) Value.Null)
  in
  let kept =
    match s.Ast.having with
    | None -> groups
    | Some pred ->
        List.filter
          (fun rows -> Eval.truthy (Eval.eval (group_ctx rows) (rep_env rows) pred))
          groups
  in
  let cols = expand_projections schema s.Ast.projections in
  let out_schema = List.map fst cols in
  let eval_group rows =
    let ctx = group_ctx rows in
    let env = rep_env rows in
    Array.of_list
      (List.map
         (fun (_, src) ->
           match src with
           | `Index i -> Row.get env.Eval.row i
           | `Expr e -> Eval.eval ctx env e)
         cols)
  in
  let sorted_groups =
    match s.Ast.order_by with
    | [] -> kept
    | items ->
        let key rows =
          let ctx = group_ctx rows in
          let env = rep_env rows in
          List.map (fun (o : Ast.order_item) -> Eval.eval ctx env o.Ast.sort_expr) items
        in
        let cmp ga gb =
          let ka = key ga and kb = key gb in
          let rec go ks items =
            match ks, items with
            | (a, b) :: rest, (o : Ast.order_item) :: orest ->
                let c = Value.compare a b in
                let c = if o.Ast.descending then -c else c in
                if c <> 0 then c else go rest orest
            | _, _ -> 0
          in
          go (List.combine ka kb) items
        in
        List.stable_sort cmp kept
  in
  Relation.make out_schema (List.map eval_group sorted_groups)

(* ---- DML ---------------------------------------------------------------- *)

(* constraint validation: the prospective full contents of a table *)
let validate_constraints ~table schema rows =
  List.iteri
    (fun i (c : Schema.column) ->
      if c.Schema.not_null then
        List.iter
          (fun row ->
            if Value.is_null (Row.get row i) then
              err "NOT NULL constraint on %s.%s violated" table c.Schema.name)
          rows;
      if c.Schema.unique then begin
        let seen = Hashtbl.create 64 in
        List.iter
          (fun row ->
            let v = Row.get row i in
            if not (Value.is_null v) then begin
              let k = Value.to_literal v in
              if Hashtbl.mem seen k then
                err "UNIQUE constraint on %s.%s violated by %s" table
                  c.Schema.name (Value.to_string v);
              Hashtbl.add seen k ()
            end)
          rows
      end)
    schema

let coerce_for_column (c : Schema.column) v =
  match v, c.Schema.ty with
  | Value.Null, _ -> Value.Null
  | Value.Int i, Ty.Float -> Value.Float (float_of_int i)
  | Value.Int _, Ty.Int
  | Value.Float _, Ty.Float
  | Value.Str _, Ty.Str
  | Value.Bool _, Ty.Bool ->
      v
  | _ ->
      err "value %s does not fit column %s of type %s" (Value.to_string v)
        c.Schema.name (Ty.to_string c.Schema.ty)

let run_insert db ~txn ~table ~columns ~source =
  wrap (fun () ->
      let tbl = Database.find_table db table in
      let schema = Table.schema tbl in
      let ctx =
        { Eval.subquery = (fun env q -> subquery_eval ~depth:0 db env q); agg = None }
      in
      let empty_env = Eval.env [] [||] in
      let make_full_row provided_cols values =
        match provided_cols with
        | None ->
            if List.length values <> Schema.arity schema then
              err "INSERT arity mismatch on %s" table;
            Array.of_list (List.map2 coerce_for_column schema values)
        | Some cols ->
            if List.length cols <> List.length values then
              err "INSERT column/value count mismatch on %s" table;
            let pairs = List.combine (List.map Names.canon cols) values in
            Array.of_list
              (List.map
                 (fun (c : Schema.column) ->
                   match List.assoc_opt (Names.canon c.Schema.name) pairs with
                   | Some v -> coerce_for_column c v
                   | None -> Value.Null)
                 schema)
      in
      let rows =
        match source with
        | Ast.Values exprs ->
            List.map
              (fun row_exprs ->
                make_full_row columns (List.map (Eval.eval ctx empty_env) row_exprs))
              exprs
        | Ast.Query q ->
            let r = select_unwrapped ~depth:0 db q in
            List.map
              (fun row -> make_full_row columns (Row.to_list row))
              (Relation.rows r)
      in
      validate_constraints ~table schema (Table.rows tbl @ rows);
      Txn.touch_table txn tbl;
      List.iter (Table.insert tbl) rows;
      List.length rows)

let run_update db ~txn ~table ~assignments ~where =
  wrap (fun () ->
      let tbl = Database.find_table db table in
      let schema = Table.schema tbl in
      let ctx =
        { Eval.subquery = (fun env q -> subquery_eval ~depth:0 db env q); agg = None }
      in
      let targets =
        List.map
          (fun (cname, e) ->
            match Schema.find_index schema cname with
            | Some i -> (i, List.nth schema i, e)
            | None -> err "unknown column %s in UPDATE %s" cname table)
          assignments
      in
      let matches row =
        match where with
        | None -> true
        | Some pred -> Eval.truthy (Eval.eval ctx (Eval.env schema row) pred)
      in
      (* Evaluate the row set (including subqueries in WHERE) against the
         pre-update state, then apply. *)
      let before = Table.rows tbl in
      let planned =
        List.map
          (fun row ->
            if matches row then begin
              let updated = Array.copy row in
              List.iter
                (fun (i, col, e) ->
                  updated.(i) <-
                    coerce_for_column col (Eval.eval ctx (Eval.env schema row) e))
                targets;
              (updated, true)
            end
            else (row, false))
          before
      in
      validate_constraints ~table schema (List.map fst planned);
      Txn.touch_table txn tbl;
      Table.set_rows tbl (List.map fst planned);
      List.length (List.filter snd planned))

let run_delete db ~txn ~table ~where =
  wrap (fun () ->
      let tbl = Database.find_table db table in
      let schema = Table.schema tbl in
      let ctx =
        { Eval.subquery = (fun env q -> subquery_eval ~depth:0 db env q); agg = None }
      in
      let matches row =
        match where with
        | None -> true
        | Some pred -> Eval.truthy (Eval.eval ctx (Eval.env schema row) pred)
      in
      let before = Table.rows tbl in
      let kept = List.filter (fun r -> not (matches r)) before in
      Txn.touch_table txn tbl;
      Table.set_rows tbl kept;
      List.length before - List.length kept)

let run_create_table db ~txn ~table ~columns =
  wrap (fun () ->
      let schema =
        List.map
          (fun (c : Ast.column_def) ->
            Schema.column ?width:c.Ast.col_width ~not_null:c.Ast.col_not_null
              ~unique:c.Ast.col_unique c.Ast.col_name c.Ast.col_ty)
          columns
      in
      ignore (Database.create_table db ~name:table schema);
      Txn.log_create txn db table)

let run_drop_table db ~txn ~table =
  wrap (fun () ->
      let tbl = Database.drop_table db table in
      Txn.log_drop txn db tbl)

let run_create_view db ~txn ~view ~query =
  wrap (fun () ->
      (* validate by evaluating once; errors surface before registration *)
      ignore (select_unwrapped ~depth:0 db query);
      Database.create_view db ~name:view query;
      Txn.log_create_view txn db view)

let run_drop_view db ~txn ~view =
  wrap (fun () ->
      let q = Database.drop_view db view in
      Txn.log_drop_view txn db view q)

let view_schema db query =
  wrap (fun () -> Relation.schema (select_unwrapped ~depth:0 db query))

let run_create_index db ~txn ~index ~table ~column =
  wrap (fun () ->
      (match Database.create_index db ~name:index ~table ~column with
      | () -> ()
      | exception Invalid_argument m -> err "%s" m);
      Txn.log_create_index txn db index)

let run_drop_index db ~txn ~index =
  wrap (fun () ->
      let table, column = Database.drop_index db index in
      Txn.log_drop_index txn db index ~table ~column)
