lib/ldbms/capabilities.ml: Format
