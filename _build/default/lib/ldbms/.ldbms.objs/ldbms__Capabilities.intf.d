lib/ldbms/capabilities.mli: Format
