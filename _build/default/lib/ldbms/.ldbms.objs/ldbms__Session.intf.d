lib/ldbms/session.mli: Capabilities Database Failure_injector Sqlcore Sqlfront Stdlib Txn
