lib/ldbms/database.ml: Hashtbl List Option Printf Sqlcore Sqlfront String Table
