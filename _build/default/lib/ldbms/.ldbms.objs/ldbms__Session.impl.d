lib/ldbms/session.ml: Capabilities Database Exec Failure_injector List Printf Sqlcore Sqlfront Txn
