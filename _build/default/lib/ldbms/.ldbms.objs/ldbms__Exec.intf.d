lib/ldbms/exec.mli: Database Eval Sqlcore Sqlfront Txn
