lib/ldbms/table.ml: Array Hashtbl List Option Printf Sqlcore
