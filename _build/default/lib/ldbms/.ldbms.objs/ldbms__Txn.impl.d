lib/ldbms/txn.ml: Database List Table
