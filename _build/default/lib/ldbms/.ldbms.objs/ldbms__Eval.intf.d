lib/ldbms/eval.mli: Sqlcore Sqlfront
