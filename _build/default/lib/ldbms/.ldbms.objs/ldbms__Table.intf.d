lib/ldbms/table.mli: Sqlcore
