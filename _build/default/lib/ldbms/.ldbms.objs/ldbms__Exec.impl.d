lib/ldbms/exec.ml: Array Database Eval Hashtbl List Names Option Printf Relation Row Schema Sqlcore Sqlfront String Table Txn Ty Value
