lib/ldbms/failure_injector.mli:
