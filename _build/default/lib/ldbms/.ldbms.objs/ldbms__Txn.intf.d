lib/ldbms/txn.mli: Database Sqlfront Table
