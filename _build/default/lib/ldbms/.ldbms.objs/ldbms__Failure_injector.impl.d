lib/ldbms/failure_injector.ml: Option Random
