lib/ldbms/eval.ml: Array Like List Printf Relation Row Schema Sqlcore Sqlfront Value
