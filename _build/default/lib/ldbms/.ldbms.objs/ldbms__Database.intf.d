lib/ldbms/database.mli: Sqlcore Sqlfront Table
