module Ast = Sqlfront.Ast
open Sqlcore

exception Type_error of string
exception Unknown_column of string
exception Ambiguous_column of string

type env = { schema : Schema.t; row : Row.t; outer : env option }

let env ?outer schema row = { schema; row; outer }

type ctx = {
  subquery : env option -> Ast.select -> Relation.t;
  agg : (Ast.expr -> Value.t) option;
}

let rec lookup e ?qualifier name =
  match Schema.find_indices e.schema ?qualifier name with
  | [ i ] -> Row.get e.row i
  | [] -> (
      match e.outer with
      | Some outer -> lookup outer ?qualifier name
      | None ->
          let q = match qualifier with Some q -> q ^ "." | None -> "" in
          raise (Unknown_column (q ^ name)))
  | _ :: _ :: _ ->
      let q = match qualifier with Some q -> q ^ "." | None -> "" in
      raise (Ambiguous_column (q ^ name))

let truthy = function Value.Bool true -> true | _ -> false

let value_compare_sql a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> None
  | Value.Int _, Value.Int _
  | Value.Float _, Value.Float _
  | Value.Int _, Value.Float _
  | Value.Float _, Value.Int _
  | Value.Str _, Value.Str _
  | Value.Bool _, Value.Bool _ ->
      Some (Value.compare a b)
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "cannot compare %s with %s" (Value.to_string a)
              (Value.to_string b)))

let arith op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | Ast.Add -> Value.Int (x + y)
      | Ast.Sub -> Value.Int (x - y)
      | Ast.Mul -> Value.Int (x * y)
      | Ast.Div ->
          if y = 0 then raise (Type_error "division by zero") else Value.Int (x / y)
      | Ast.Mod ->
          if y = 0 then raise (Type_error "modulo by zero") else Value.Int (x mod y)
      | _ -> assert false)
  | _, _ -> (
      match Value.as_float a, Value.as_float b with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Value.Float (x +. y)
          | Ast.Sub -> Value.Float (x -. y)
          | Ast.Mul -> Value.Float (x *. y)
          | Ast.Div ->
              if y = 0. then raise (Type_error "division by zero")
              else Value.Float (x /. y)
          | Ast.Mod -> raise (Type_error "modulo on non-integers")
          | _ -> assert false)
      | _ ->
          raise
            (Type_error
               (Printf.sprintf "arithmetic on non-numeric values %s, %s"
                  (Value.to_string a) (Value.to_string b))))

(* Kleene three-valued logic *)
let logic_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | (Value.Bool true | Value.Null), (Value.Bool true | Value.Null) -> Value.Null
  | _ -> raise (Type_error "AND on non-boolean values")

let logic_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | (Value.Bool false | Value.Null), (Value.Bool false | Value.Null) -> Value.Null
  | _ -> raise (Type_error "OR on non-boolean values")

let logic_not = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | v -> raise (Type_error ("NOT on non-boolean value " ^ Value.to_string v))

let comparison op a b =
  match value_compare_sql a b with
  | None -> Value.Null
  | Some c ->
      let r =
        match op with
        | Ast.Eq -> c = 0
        | Ast.Neq -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
        | _ -> assert false
      in
      Value.Bool r

let concat a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | a, b -> Value.Str (Value.to_string a ^ Value.to_string b)

let negate_tv negated v =
  if negated then logic_not v else v

let rec eval ctx e expr =
  match expr with
  | Ast.Lit v -> v
  | Ast.Col { qualifier; name } -> lookup e ?qualifier name
  | Ast.Binop (Ast.And, a, b) -> logic_and (eval ctx e a) (eval ctx e b)
  | Ast.Binop (Ast.Or, a, b) -> logic_or (eval ctx e a) (eval ctx e b)
  | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    ->
      comparison op (eval ctx e a) (eval ctx e b)
  | Ast.Binop (Ast.Concat, a, b) -> concat (eval ctx e a) (eval ctx e b)
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b) ->
      arith op (eval ctx e a) (eval ctx e b)
  | Ast.Unop (Ast.Not, a) -> logic_not (eval ctx e a)
  | Ast.Unop (Ast.Neg, a) -> (
      match eval ctx e a with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> raise (Type_error ("negation of " ^ Value.to_string v)))
  | Ast.Is_null { arg; negated } ->
      let v = eval ctx e arg in
      Value.Bool (if negated then not (Value.is_null v) else Value.is_null v)
  | Ast.Like { arg; pattern; negated } -> (
      match eval ctx e arg with
      | Value.Null -> Value.Null
      | Value.Str s -> negate_tv negated (Value.Bool (Like.sql_like ~pattern s))
      | v -> raise (Type_error ("LIKE on non-string " ^ Value.to_string v)))
  | Ast.In_list { arg; items; negated } ->
      let v = eval ctx e arg in
      let vs = List.map (eval ctx e) items in
      negate_tv negated (in_values v vs)
  | Ast.Between { arg; lo; hi; negated } ->
      let v = eval ctx e arg in
      let lo = eval ctx e lo and hi = eval ctx e hi in
      negate_tv negated
        (logic_and (comparison Ast.Ge v lo) (comparison Ast.Le v hi))
  | Ast.Agg _ as agg_node -> (
      match ctx.agg with
      | Some f -> f agg_node
      | None -> raise (Type_error "aggregate used outside an aggregate query"))
  | Ast.Scalar_subquery q -> (
      let r = ctx.subquery (Some e) q in
      match Relation.rows r with
      | [] -> Value.Null
      | [ row ] ->
          if Array.length row <> 1 then
            raise (Type_error "scalar subquery must return one column")
          else Row.get row 0
      | _ :: _ :: _ -> raise (Type_error "scalar subquery returned more than one row"))
  | Ast.In_subquery { arg; query; negated } ->
      let v = eval ctx e arg in
      let r = ctx.subquery (Some e) query in
      let vs =
        List.map
          (fun row ->
            if Array.length row <> 1 then
              raise (Type_error "IN subquery must return one column")
            else Row.get row 0)
          (Relation.rows r)
      in
      negate_tv negated (in_values v vs)
  | Ast.Exists q ->
      let r = ctx.subquery (Some e) q in
      Value.Bool (not (Relation.is_empty r))

(* SQL IN semantics: TRUE if an equal member exists; otherwise UNKNOWN if
   any comparison was with NULL (or the needle is NULL); otherwise FALSE. *)
and in_values v vs =
  if Value.is_null v then Value.Null
  else
    let saw_null = ref false in
    let found =
      List.exists
        (fun x ->
          match value_compare_sql v x with
          | None ->
              saw_null := true;
              false
          | Some 0 -> true
          | Some _ -> false)
        vs
    in
    if found then Value.Bool true
    else if !saw_null then Value.Null
    else Value.Bool false
