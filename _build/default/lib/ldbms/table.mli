(** Mutable stored tables. Row order is insertion order. *)

type t

val create : name:string -> Sqlcore.Schema.t -> t
val name : t -> string
val schema : t -> Sqlcore.Schema.t
val rows : t -> Sqlcore.Row.t list
val cardinality : t -> int

val set_rows : t -> Sqlcore.Row.t list -> unit
(** Wholesale replacement; transaction rollback restores before-images this
    way. *)

val insert : t -> Sqlcore.Row.t -> unit
(** Appends; raises [Invalid_argument] on arity mismatch. *)

val to_relation : t -> Sqlcore.Relation.t
val copy : t -> t

val version : t -> int
(** Bumped on every mutation; lets caches detect staleness. *)

val lookup_eq : t -> col:int -> Sqlcore.Value.t -> Sqlcore.Row.t list
(** Rows whose [col]-th field equals the value (never matches NULL), via a
    lazily built hash map that is rebuilt when the table changes. Row
    order is preserved. *)
