(** Local transactions with before-image undo logging and a visible
    prepared-to-commit state (the first phase of 2PC, §3.2.1). *)

type state = Active | Prepared | Committed | Aborted

type t

val begin_ : unit -> t
val state : t -> state

val touch_table : t -> Table.t -> unit
(** Record the table's before-image on first touch; later touches are
    no-ops. Must be called before any modification of the table inside the
    transaction. *)

val log_create : t -> Database.t -> string -> unit
(** Record that the transaction created the named table. *)

val log_drop : t -> Database.t -> Table.t -> unit
(** Record that the transaction dropped the given table. *)

val log_create_view : t -> Database.t -> string -> unit
val log_drop_view : t -> Database.t -> string -> Sqlfront.Ast.select -> unit
val log_create_index : t -> Database.t -> string -> unit
val log_drop_index : t -> Database.t -> string -> table:string -> column:string -> unit

val prepare : t -> unit
(** Active -> Prepared. Raises [Invalid_argument] from any other state. *)

val commit : t -> unit
(** Active or Prepared -> Committed; discards the undo log. *)

val rollback : t -> unit
(** Active or Prepared -> Aborted; undoes all logged changes in reverse
    order. *)

val is_finished : t -> bool
val state_to_string : state -> string
