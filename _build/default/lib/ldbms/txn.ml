type state = Active | Prepared | Committed | Aborted

type t = {
  mutable state : state;
  mutable undo : (unit -> unit) list;  (* newest first *)
  mutable touched : Table.t list;
}

let begin_ () = { state = Active; undo = []; touched = [] }
let state t = t.state

let check_modifiable t =
  match t.state with
  | Active -> ()
  | Prepared -> invalid_arg "Txn: cannot modify a prepared transaction"
  | Committed | Aborted -> invalid_arg "Txn: transaction already finished"

let touch_table t tbl =
  check_modifiable t;
  if not (List.memq tbl t.touched) then begin
    t.touched <- tbl :: t.touched;
    let before = Table.rows tbl in
    t.undo <- (fun () -> Table.set_rows tbl before) :: t.undo
  end

let log_create t db name =
  check_modifiable t;
  t.undo <- (fun () -> ignore (Database.drop_table db name)) :: t.undo

let log_drop t db tbl =
  check_modifiable t;
  t.undo <- (fun () -> Database.restore_table db tbl) :: t.undo

let log_create_view t db name =
  check_modifiable t;
  t.undo <- (fun () -> ignore (Database.drop_view db name)) :: t.undo

let log_drop_view t db name q =
  check_modifiable t;
  t.undo <- (fun () -> Database.restore_view db ~name q) :: t.undo

let log_create_index t db name =
  check_modifiable t;
  t.undo <- (fun () -> ignore (Database.drop_index db name)) :: t.undo

let log_drop_index t db name ~table ~column =
  check_modifiable t;
  t.undo <- (fun () -> Database.restore_index db ~name ~table ~column) :: t.undo

let prepare t =
  match t.state with
  | Active -> t.state <- Prepared
  | Prepared | Committed | Aborted ->
      invalid_arg "Txn.prepare: transaction not active"

let commit t =
  match t.state with
  | Active | Prepared ->
      t.state <- Committed;
      t.undo <- [];
      t.touched <- []
  | Committed | Aborted -> invalid_arg "Txn.commit: transaction already finished"

let rollback t =
  match t.state with
  | Active | Prepared ->
      List.iter (fun undo -> undo ()) t.undo;
      t.state <- Aborted;
      t.undo <- [];
      t.touched <- []
  | Committed | Aborted -> invalid_arg "Txn.rollback: transaction already finished"

let is_finished t = match t.state with Committed | Aborted -> true | Active | Prepared -> false

let state_to_string = function
  | Active -> "active"
  | Prepared -> "prepared"
  | Committed -> "committed"
  | Aborted -> "aborted"
