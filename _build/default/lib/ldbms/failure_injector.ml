type point = At_execute | At_prepare | At_commit

type t = {
  mutable pending : point list;  (* oldest first *)
  mutable random : (float * Random.State.t) option;
}

let create () = { pending = []; random = None }
let fail_next t p = t.pending <- t.pending @ [ p ]
let set_random t ~seed ~prob = t.random <- Some (prob, Random.State.make [| seed |])

let clear t =
  t.pending <- [];
  t.random <- None

let fires t p =
  let rec remove_first = function
    | [] -> None
    | x :: rest when x = p -> Some rest
    | x :: rest -> Option.map (fun r -> x :: r) (remove_first rest)
  in
  match remove_first t.pending with
  | Some rest ->
      t.pending <- rest;
      true
  | None -> (
      match t.random with
      | Some (prob, st) -> Random.State.float st 1.0 < prob
      | None -> false)

let point_to_string = function
  | At_execute -> "execute"
  | At_prepare -> "prepare"
  | At_commit -> "commit"
