type connect_mode = Connect | No_connect
type commit_mode = Autocommit | Two_phase
type ddl_behavior = Ddl_rollbackable | Ddl_autocommits

type t = {
  connect_mode : connect_mode;
  commit_mode : commit_mode;
  ddl_behavior : ddl_behavior;
  create_commits : bool;
  insert_commits : bool;
  drop_commits : bool;
  engine_name : string;
}

let supports_2pc t = t.commit_mode = Two_phase

let make ?(connect_mode = Connect) ?(commit_mode = Two_phase)
    ?(ddl_behavior = Ddl_rollbackable) ?(create_commits = false)
    ?(insert_commits = false) ?(drop_commits = false) engine_name =
  {
    connect_mode;
    commit_mode;
    ddl_behavior;
    create_commits;
    insert_commits;
    drop_commits;
    engine_name;
  }

let ingres_like = make ~ddl_behavior:Ddl_rollbackable "ingres-like"
let oracle_like = make ~ddl_behavior:Ddl_autocommits ~create_commits:true ~drop_commits:true "oracle-like"

let sybase_like =
  make ~commit_mode:Autocommit ~ddl_behavior:Ddl_autocommits ~create_commits:true
    ~insert_commits:true ~drop_commits:true "sybase-like"

let basic_autocommit =
  make ~connect_mode:No_connect ~commit_mode:Autocommit
    ~ddl_behavior:Ddl_autocommits ~create_commits:true ~insert_commits:true
    ~drop_commits:true "basic-autocommit"

let pp ppf t =
  Format.fprintf ppf "%s(%s,%s,%s)" t.engine_name
    (match t.connect_mode with Connect -> "connect" | No_connect -> "noconnect")
    (match t.commit_mode with Autocommit -> "autocommit" | Two_phase -> "2pc")
    (match t.ddl_behavior with
    | Ddl_rollbackable -> "ddl-rollback"
    | Ddl_autocommits -> "ddl-autocommit")
