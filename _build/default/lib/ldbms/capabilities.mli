(** Commitment capabilities of a local DBMS.

    The paper's heterogeneity model (§3.1, §3.2.2): LDBMSs differ in

    - whether they serve a single default database or many
      ([CONNECT]/[NOCONNECT] in the INCORPORATE statement);
    - whether they only autocommit or expose a visible prepared-to-commit
      state ([COMMITMODE COMMIT]/[NOCOMMIT]);
    - what each DDL statement does to the enclosing transaction: e.g. one
      of the paper's systems (Ingres-like) lets DDL be rolled back while
      the other (Oracle-like) commits DDL together with all previously
      issued uncommitted statements. *)

type connect_mode = Connect | No_connect

type commit_mode =
  | Autocommit  (** every statement commits on its own; no 2PC interface *)
  | Two_phase  (** visible prepared-to-commit state *)

type ddl_behavior =
  | Ddl_rollbackable  (** DDL joins the transaction and can be rolled back *)
  | Ddl_autocommits
      (** DDL first commits the current transaction, then executes and
          commits itself *)

type t = {
  connect_mode : connect_mode;
  commit_mode : commit_mode;
  ddl_behavior : ddl_behavior;
  create_commits : bool;  (** CREATE forces a commit (paper's CREATE COMMIT) *)
  insert_commits : bool;  (** INSERT forces a commit *)
  drop_commits : bool;  (** DROP forces a commit *)
  engine_name : string;  (** profile label, e.g. "oracle-like" *)
}

val supports_2pc : t -> bool

val make :
  ?connect_mode:connect_mode ->
  ?commit_mode:commit_mode ->
  ?ddl_behavior:ddl_behavior ->
  ?create_commits:bool ->
  ?insert_commits:bool ->
  ?drop_commits:bool ->
  string ->
  t
(** Defaults model a well-behaved 2PC engine: [Connect], [Two_phase],
    [Ddl_rollbackable], and no per-statement forced commits. *)

val ingres_like : t
(** 2PC with rollbackable DDL. *)

val oracle_like : t
(** 2PC but DDL autocommits, committing prior uncommitted work (§3.2.2). *)

val sybase_like : t
(** Autocommit-only engine: no prepared state; the vital-set machinery must
    fall back to compensation (§3.3). *)

val basic_autocommit : t
(** Minimal single-database autocommit engine ([No_connect]). *)

val pp : Format.formatter -> t -> unit
