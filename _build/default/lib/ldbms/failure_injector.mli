(** Deterministic failure injection.

    Stands in for the paper's "local conflicts, failure, deadlock, etc."
    (§3.2) that force an LDBMS to abort a subquery. Failures can be queued
    one-shot at a named point, or drawn from a seeded random source for
    benchmarks. *)

type point =
  | At_execute  (** while executing a statement (local conflict/deadlock) *)
  | At_prepare  (** failing to reach the prepared-to-commit state *)
  | At_commit  (** failing during commit of a prepared transaction *)

type t

val create : unit -> t
(** No failures. *)

val fail_next : t -> point -> unit
(** Queue a one-shot failure for the next occurrence of [point]. Multiple
    queued failures at the same point fire in order. *)

val set_random : t -> seed:int -> prob:float -> unit
(** Additionally fail each point check with probability [prob], drawn from
    a private PRNG seeded with [seed]. *)

val clear : t -> unit

val fires : t -> point -> bool
(** Check-and-consume: [true] when a failure should be injected here. *)

val point_to_string : point -> string
