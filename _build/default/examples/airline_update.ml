(* The paper's §3.2–§3.3 airline scenario: a multiple update over three
   airline databases, first NON VITAL, then with VITAL designators, then —
   after downgrading Continental to an autocommit-only engine — with a
   user-supplied compensating action. Failure injection walks the paper's
   execution paths.

   Run with:  dune exec examples/airline_update.exe *)

module F = Msql.Fixtures
module M = Msql.Msession
module Inject = Ldbms.Failure_injector

let update = {|
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|}

let update_comp = update ^ {|
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
|}

let run session sql =
  match M.exec session sql with
  | Ok r -> print_endline (M.result_to_string r)
  | Error m -> print_endline ("refused: " ^ m)

let inject fx db point =
  Inject.fail_next
    (Narada.Directory.find fx.F.directory db).Narada.Service.injector point

let () =
  print_endline "== all three airlines support 2PC; the vital update commits ==";
  let fx = F.make () in
  print_endline (Narada.Dol_pp.program_to_string
    (Result.get_ok (M.translate fx.F.session update)));
  run fx.F.session update;

  print_endline "\n== United aborts its subquery: the vital set rolls back ==";
  let fx = F.make () in
  inject fx "united" Inject.At_execute;
  run fx.F.session update;

  print_endline "\n== Continental is autocommit-only: the query is refused (§3.3) ==";
  let fx = F.make ~caps:[ ("continental", Ldbms.Capabilities.sybase_like) ] () in
  run fx.F.session update;

  print_endline "\n== ... unless a COMP clause is provided ==";
  let fx = F.make ~caps:[ ("continental", Ldbms.Capabilities.sybase_like) ] () in
  run fx.F.session update_comp;

  print_endline
    "\n== with COMP: United aborts, Continental's committed update is compensated ==";
  let fx = F.make ~caps:[ ("continental", Ldbms.Capabilities.sybase_like) ] () in
  inject fx "united" Inject.At_execute;
  run fx.F.session update_comp;
  let flights = F.scan fx ~db:"continental" ~table:"flights" in
  print_endline "continental.flights after compensation:";
  print_endline (Sqlcore.Relation.to_string flights)
