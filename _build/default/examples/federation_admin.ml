(* A tour of the administrative extensions around the core language:
   local views exported with IMPORT ... VIEW, virtual databases (named
   scopes), interdatabase triggers, the multitable built-ins, and the DOL
   optimizer.

   Run with:  dune exec examples/federation_admin.exe *)

module F = Msql.Fixtures
module M = Msql.Msession
module Mt = Msql.Multitable

let run session sql =
  print_endline ("msql> " ^ String.trim sql);
  (match M.exec session sql with
  | Ok r -> print_endline (M.result_to_string r)
  | Error m -> print_endline ("error: " ^ m));
  print_newline ()

let () =
  let fx = F.make () in
  let session = fx.F.session in

  print_endline "== 1. a local view at AVIS, exported to the federation ==";
  let avis = F.database fx "avis" in
  let local = Ldbms.Session.connect avis Ldbms.Capabilities.ingres_like in
  (match
     Ldbms.Session.exec_sql local
       "CREATE VIEW premium AS SELECT code, cartype, rate FROM cars WHERE rate > 40"
   with
  | Ok _ -> ignore (Ldbms.Session.commit local)
  | Error m -> print_endline ("local DDL failed: " ^ m));
  run session "IMPORT DATABASE avis FROM SERVICE avis VIEW premium";
  run session "USE avis SELECT code, rate FROM premium";

  print_endline "== 2. a virtual database groups the rental companies ==";
  run session "CREATE MULTIDATABASE rentals AS avis national";
  run session
    {|USE rentals
      LET car.status BE cars.carst vehicle.vstat
      SELECT %code FROM car WHERE status = 'available'|};

  print_endline "== 3. multitable built-ins aggregate across the parts ==";
  (match
     M.exec session
       {|USE rentals
         LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
         SELECT %code, type, ~rate FROM car WHERE status = 'available'|}
   with
  | Ok (M.Multitable mt) ->
      Printf.printf "rows across the federation: %d\n" (Mt.total_count mt);
      Printf.printf "cheapest advertised rate:   %s\n"
        (Sqlcore.Value.to_string (Mt.aggregate mt Mt.Min ~column:"rate"));
      List.iter
        (fun (db, v) ->
          Printf.printf "available per company:      %s = %s\n" db
            (Sqlcore.Value.to_string v))
        (Mt.aggregate_per_part mt Mt.Count ~column:"code"
        @ Mt.aggregate_per_part mt Mt.Count ~column:"vcode")
  | Ok _ | Error _ -> print_endline "query failed");
  print_newline ();

  print_endline "== 4. an interdatabase trigger ==";
  run session
    {|CREATE TRIGGER overflow ON avis
      WHEN SELECT code FROM cars WHERE rate > 200
      DO USE national UPDATE vehicle SET vstat = 'available' WHERE vstat = 'rented'|};
  run session "USE avis UPDATE cars SET rate = rate * 10 WHERE carst = 'available'";
  List.iter print_endline (M.trigger_log session);
  print_newline ();

  print_endline "== 5. the DOL optimizer at work ==";
  let sql =
    "USE continental delta united avis national SELECT %nu FROM flight%"
  in
  (match M.translate session sql with
  | Ok prog ->
      let optimized, stats = Narada.Dol_opt.optimize_with_stats prog in
      Printf.printf "plain plan: %d statements; optimizer parallelized %d opens\n"
        (List.length prog) stats.Narada.Dol_opt.opens_parallelized;
      print_endline (Narada.Dol_pp.program_to_string optimized)
  | Error m -> print_endline ("error: " ^ m))
