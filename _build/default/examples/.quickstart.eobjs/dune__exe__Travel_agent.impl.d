examples/travel_agent.ml: Array List Msql Narada Netsim Printf Sqlcore
