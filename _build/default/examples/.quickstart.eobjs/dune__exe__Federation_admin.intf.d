examples/federation_admin.mli:
