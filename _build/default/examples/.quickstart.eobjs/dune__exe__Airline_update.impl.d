examples/airline_update.ml: Ldbms Msql Narada Result Sqlcore
