examples/federation_admin.ml: Ldbms List Msql Narada Printf Sqlcore String
