examples/travel_agent.mli:
