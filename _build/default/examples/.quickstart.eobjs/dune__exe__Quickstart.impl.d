examples/quickstart.ml: Ldbms Msql Narada Netsim Printf Schema Sqlcore Ty Value
