examples/car_rental.mli:
