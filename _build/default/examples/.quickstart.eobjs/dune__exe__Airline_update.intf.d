examples/airline_update.mli:
