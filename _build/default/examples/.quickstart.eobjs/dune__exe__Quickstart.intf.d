examples/quickstart.mli:
