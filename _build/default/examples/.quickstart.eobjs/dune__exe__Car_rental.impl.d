examples/car_rental.ml: Msql Narada String
