(* The paper's §3.4 travel-agent multitransaction: book a flight with
   Continental or Delta AND a car with Avis or National, preferring
   Continental+National, accepting Delta+Avis — function replication with
   acceptable termination states.

   Run with:  dune exec examples/travel_agent.exe *)

module F = Msql.Fixtures
module M = Msql.Msession

let mtx = {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
    cars.code.carst
    vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', from = '07-04-64', to = '04-16-92', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
COMMIT
  continental AND national
  delta AND avis
END MULTITRANSACTION
|}

let run fx =
  (match M.exec fx.F.session mtx with
  | Ok r -> print_endline (M.result_to_string r)
  | Error m -> print_endline ("error: " ^ m));
  let show db table col_status col_client =
    let rel = F.scan fx ~db ~table in
    let taken =
      List.filter
        (fun row -> Sqlcore.Value.equal row.(col_status) (Sqlcore.Value.Str "TAKEN"))
        (Sqlcore.Relation.rows rel)
    in
    Printf.printf "  %s.%s: %d TAKEN%s\n" db table (List.length taken)
      (match taken with
      | row :: _ when col_client >= 0 ->
          " (client " ^ Sqlcore.Value.to_string row.(col_client) ^ ")"
      | _ -> "")
  in
  show "continental" "f838" 2 3;
  show "delta" "f747" 2 3;
  show "avis" "cars" 3 6;
  show "national" "vehicle" 2 5

let () =
  print_endline "== everything up: the preferred state (continental AND national) wins ==";
  run (F.make ());

  print_endline "\n== continental's site is down: fall back to delta AND avis ==";
  let fx = F.make () in
  Netsim.World.set_down fx.F.world "site1" true;
  run fx;

  print_endline "\n== both airlines down: no acceptable state, everything undone ==";
  let fx = F.make () in
  Netsim.World.set_down fx.F.world "site1" true;
  Netsim.World.set_down fx.F.world "site2" true;
  run fx;

  print_endline "\n== the DOL program generated for the multitransaction ==";
  let fx = F.make () in
  match M.translate fx.F.session mtx with
  | Ok prog -> print_endline (Narada.Dol_pp.program_to_string prog)
  | Error m -> print_endline ("error: " ^ m)
