(* The paper's §2 car-rental scenario: one compact MSQL multiple query
   resolving naming heterogeneity (cars vs vehicle, code vs vcode) with a
   LET statement and an implicit %code variable, and schema heterogeneity
   (NATIONAL has no rate column) with the ~ optional marker.

   Run with:  dune exec examples/car_rental.exe *)

module F = Msql.Fixtures
module M = Msql.Msession

let run session sql =
  print_endline ("msql> " ^ String.trim sql);
  (match M.exec session sql with
  | Ok r -> print_endline (M.result_to_string r)
  | Error m -> print_endline ("error: " ^ m));
  print_newline ()

let () =
  let fx = F.make () in
  let session = fx.F.session in

  print_endline "== the paper's §2 multiple query ==";
  run session
    {|USE avis national
      LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
      SELECT %code, type, ~rate
      FROM car
      WHERE status = 'available'|};

  print_endline "== aggregation per company (multiple query, one result per db) ==";
  run session
    {|USE avis national
      LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
      SELECT type, COUNT(*)
      FROM car
      GROUP BY type
      ORDER BY type|};

  print_endline "== a cross-database join: same car types in both fleets ==";
  run session
    {|USE avis national
      SELECT c.code, c.cartype, c.rate, v.vcode
      FROM avis.cars c, national.vehicle v
      WHERE c.cartype = v.vty AND c.carst = 'available'|};

  print_endline "== and the DOL plan the translator generates for it ==";
  (match
     M.translate session
       {|USE avis national
         SELECT c.code, c.cartype, c.rate, v.vcode
         FROM avis.cars c, national.vehicle v
         WHERE c.cartype = v.vty AND c.carst = 'available'|}
   with
  | Ok prog -> print_endline (Narada.Dol_pp.program_to_string prog)
  | Error m -> print_endline ("error: " ^ m))
