(* Quickstart: build a two-database federation from scratch with the public
   API, incorporate and import the services, and run a multiple query.

   Run with:  dune exec examples/quickstart.exe *)

open Sqlcore

let () =
  (* 1. A simulated network with two remote sites. *)
  let world = Netsim.World.create () in
  Netsim.World.add_site world (Netsim.Site.make ~latency_ms:5.0 "paris");
  Netsim.World.add_site world (Netsim.Site.make ~latency_ms:8.0 "berlin");

  (* 2. Two autonomous local databases with heterogeneous schemas: the same
     book catalogue under different names. *)
  let col = Schema.column in
  let s x = Value.Str x and i x = Value.Int x and f x = Value.Float x in
  let paris_db = Ldbms.Database.create "paris_books" in
  Ldbms.Database.load paris_db ~name:"livres"
    [ col "isbn" Ty.Int; col "titre" Ty.Str; col "prix" Ty.Float ]
    [
      [| i 1001; s "Les Misérables"; f 12.5 |];
      [| i 1002; s "Candide"; f 7.0 |];
    ];
  let berlin_db = Ldbms.Database.create "berlin_books" in
  Ldbms.Database.load berlin_db ~name:"buecher"
    [ col "isbn" Ty.Int; col "titel" Ty.Str; col "preis" Ty.Float ]
    [
      [| i 2001; s "Faust"; f 9.0 |];
      [| i 2002; s "Die Verwandlung"; f 6.5 |];
    ];

  (* 3. Register them as services in the Narada resource directory: one on a
     2PC engine, one autocommit-only. *)
  let directory = Narada.Directory.create () in
  Narada.Directory.register directory
    (Narada.Service.make ~site:"paris" ~caps:Ldbms.Capabilities.ingres_like
       paris_db);
  Narada.Directory.register directory
    (Narada.Service.make ~site:"berlin" ~caps:Ldbms.Capabilities.sybase_like
       berlin_db);

  (* 4. A multidatabase session; INCORPORATE the services into the Auxiliary
     Dictionary and IMPORT their schemas into the Global Data Dictionary —
     the paper's §3.1 statements, here as MSQL text. *)
  let session = Msql.Msession.create ~world ~directory () in
  let run sql =
    match Msql.Msession.exec session sql with
    | Ok r -> print_endline (Msql.Msession.result_to_string r)
    | Error m -> print_endline ("error: " ^ m)
  in
  run "INCORPORATE SERVICE paris_books SITE paris CONNECTMODE CONNECT COMMITMODE NOCOMMIT";
  run "INCORPORATE SERVICE berlin_books SITE berlin CONNECTMODE CONNECT COMMITMODE COMMIT";
  run "IMPORT DATABASE paris_books FROM SERVICE paris_books";
  run "IMPORT DATABASE berlin_books FROM SERVICE berlin_books";

  (* 5. One multiple query over both catalogues. The LET statement resolves
     the naming heterogeneity; the result is a multitable with one partial
     result per database. *)
  print_endline "\n-- all books under 10, across both shops --";
  run
    {|USE paris_books berlin_books
      LET book.title.price BE livres.titre.prix buecher.titel.preis
      SELECT isbn, title, price
      FROM book
      WHERE price < 10|};

  (* 6. A multiple update touching both shops at once: %-patterns pick the
     right column names per database. *)
  print_endline "\n-- 5% discount everywhere --";
  run
    {|USE paris_books berlin_books
      LET book.price BE livres.prix buecher.preis
      UPDATE book SET price = price * 0.95|};

  Printf.printf "\nvirtual network time consumed: %.2f ms, %d messages\n"
    (Netsim.World.now_ms world)
    (Netsim.World.stats world).Netsim.World.messages
