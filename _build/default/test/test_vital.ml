(* Exhaustive outcome matrices for the VITAL designators (§3.2.1) and
   compensation (§3.3) — every execution path of the paper's case analyses,
   driven by failure injection. *)
open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession
module D = Narada.Dol_ast
module Inject = Ldbms.Failure_injector

let inject fx db point =
  Inject.fail_next
    (Narada.Directory.find fx.F.directory db).Narada.Service.injector point

let exec fx sql =
  match M.exec fx.F.session sql with
  | Ok r -> r
  | Error m -> Alcotest.fail ("MSQL error: " ^ m)

let update_report fx sql =
  match exec fx sql with
  | M.Update_report { outcome; details; _ } -> (outcome, details)
  | r -> Alcotest.fail ("expected update report, got " ^ M.result_to_string r)

let status details db =
  match List.find_opt (fun r -> r.M.rdb = db) details with
  | Some r -> r.M.rstatus
  | None -> D.N

let rate_101 fx =
  let flights = F.scan fx ~db:"continental" ~table:"flights" in
  List.find_map
    (fun row ->
      if Value.equal row.(0) (Value.Int 101) then Value.as_float row.(6) else None)
    (Relation.rows flights)
  |> Option.get

let united_301 fx =
  let flights = F.scan fx ~db:"united" ~table:"flight" in
  List.find_map
    (fun row ->
      if Value.equal row.(0) (Value.Int 301) then Value.as_float row.(6) else None)
    (Relation.rows flights)
  |> Option.get

let vital_update = {|
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|}

let comp_update = {|
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
|}

let check_float name expected actual =
  Alcotest.(check (float 1e-6)) name expected actual

(* ---- E3: all engines 2PC ----------------------------------------------------- *)

let test_all_prepared_commits () =
  let fx = F.make () in
  let outcome, details = update_report fx vital_update in
  Alcotest.(check bool) "success" true (outcome = M.Success);
  Alcotest.(check bool) "cont C" true (status details "continental" = D.C);
  check_float "continental raised" 110.0 (rate_101 fx);
  check_float "united raised" 104.5 (united_301 fx)

let test_vital_execute_failure_aborts_all_vitals () =
  let fx = F.make () in
  inject fx "united" Inject.At_execute;
  let outcome, details = update_report fx vital_update in
  Alcotest.(check bool) "aborted" true (outcome = M.Aborted);
  Alcotest.(check bool) "cont rolled back" true (status details "continental" = D.A);
  Alcotest.(check bool) "united aborted" true (status details "united" = D.A);
  (* delta is NON VITAL: it committed independently *)
  Alcotest.(check bool) "delta committed" true (status details "delta" = D.C);
  check_float "continental unchanged" 100.0 (rate_101 fx);
  check_float "united unchanged" 95.0 (united_301 fx)

let test_vital_prepare_failure_aborts () =
  let fx = F.make () in
  inject fx "continental" Inject.At_prepare;
  let outcome, details = update_report fx vital_update in
  Alcotest.(check bool) "aborted" true (outcome = M.Aborted);
  Alcotest.(check bool) "united rolled back" true (status details "united" = D.A);
  check_float "united unchanged" 95.0 (united_301 fx)

let test_commit_window_gives_incorrect () =
  (* both vital subqueries prepared, but one fails during the second phase:
     the vital set splits — the execution the paper calls incorrect *)
  let fx = F.make () in
  inject fx "united" Inject.At_commit;
  let outcome, details = update_report fx vital_update in
  Alcotest.(check bool) "incorrect" true (outcome = M.Incorrect);
  Alcotest.(check bool) "cont committed" true (status details "continental" = D.C);
  Alcotest.(check bool) "united aborted" true (status details "united" = D.A);
  check_float "continental raised" 110.0 (rate_101 fx);
  check_float "united unchanged" 95.0 (united_301 fx)

let test_non_vital_failure_is_still_success () =
  let fx = F.make () in
  inject fx "delta" Inject.At_execute;
  let outcome, details = update_report fx vital_update in
  Alcotest.(check bool) "success despite delta" true (outcome = M.Success);
  Alcotest.(check bool) "delta aborted" true (status details "delta" = D.A)

let test_all_non_vital_always_successful () =
  let fx = F.make () in
  inject fx "continental" Inject.At_execute;
  inject fx "delta" Inject.At_execute;
  inject fx "united" Inject.At_execute;
  let plain = {|
USE continental delta united
UPDATE flight% SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|} in
  let outcome, _ = update_report fx plain in
  Alcotest.(check bool) "always successful (§3.2.1)" true (outcome = M.Success)

(* ---- E4: continental autocommit-only, with COMP (§3.3 four paths) ------------- *)

let autocommit_cont = [ ("continental", Ldbms.Capabilities.sybase_like) ]

let test_e4_path1_both_ok () =
  (* continental committed, united prepared -> commit united: success *)
  let fx = F.make ~caps:autocommit_cont () in
  let outcome, details = update_report fx comp_update in
  Alcotest.(check bool) "success" true (outcome = M.Success);
  Alcotest.(check bool) "cont C" true (status details "continental" = D.C);
  Alcotest.(check bool) "united C" true (status details "united" = D.C);
  check_float "continental raised" 110.0 (rate_101 fx);
  check_float "united raised" 104.5 (united_301 fx)

let test_e4_path2_united_aborts_cont_compensated () =
  let fx = F.make ~caps:autocommit_cont () in
  inject fx "united" Inject.At_execute;
  let outcome, details = update_report fx comp_update in
  Alcotest.(check bool) "aborted" true (outcome = M.Aborted);
  Alcotest.(check bool) "cont compensated" true (status details "continental" = D.X);
  Alcotest.(check bool) "united aborted" true (status details "united" = D.A);
  (* the compensation divided the rate back *)
  check_float "continental compensated" 100.0 (rate_101 fx);
  check_float "united unchanged" 95.0 (united_301 fx)

let test_e4_path3_cont_aborts_united_rolled_back () =
  let fx = F.make ~caps:autocommit_cont () in
  inject fx "continental" Inject.At_execute;
  let outcome, details = update_report fx comp_update in
  Alcotest.(check bool) "aborted" true (outcome = M.Aborted);
  Alcotest.(check bool) "cont aborted" true (status details "continental" = D.A);
  Alcotest.(check bool) "united rolled back" true (status details "united" = D.A);
  check_float "continental unchanged" 100.0 (rate_101 fx);
  check_float "united unchanged" 95.0 (united_301 fx)

let test_e4_path4_both_abort () =
  let fx = F.make ~caps:autocommit_cont () in
  inject fx "continental" Inject.At_execute;
  inject fx "united" Inject.At_execute;
  let outcome, details = update_report fx comp_update in
  Alcotest.(check bool) "aborted" true (outcome = M.Aborted);
  Alcotest.(check bool) "cont A" true (status details "continental" = D.A);
  Alcotest.(check bool) "united A" true (status details "united" = D.A);
  check_float "continental unchanged" 100.0 (rate_101 fx)

let test_two_autocommit_vitals_refused_without_comp () =
  (* §3.3: two or more VITAL databases without 2PC -> refuse *)
  let caps =
    [ ("continental", Ldbms.Capabilities.sybase_like);
      ("united", Ldbms.Capabilities.sybase_like) ]
  in
  let fx = F.make ~caps () in
  match M.exec fx.F.session vital_update with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected refusal"

let test_single_autocommit_vital_allowed () =
  (* with exactly one vital database the commit decision is that
     database's own: no compensation needed *)
  let fx = F.make ~caps:autocommit_cont () in
  let single = {|
USE continental VITAL delta
UPDATE flight% SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|} in
  let outcome, _ = update_report fx single in
  Alcotest.(check bool) "success" true (outcome = M.Success)

(* ---- vital retrieval ------------------------------------------------------------ *)

let test_vital_retrieval_failure_aborts_query () =
  let fx = F.make () in
  Netsim.World.set_down fx.F.world "site1" true;
  let sql = {|
USE continental VITAL delta
SELECT %nu FROM flight%
|} in
  match M.exec fx.F.session sql with
  | Error m ->
      Alcotest.(check bool) "names the db" true
        (Astring_contains.contains m "continental")
  | Ok _ -> Alcotest.fail "expected abort"

let test_non_vital_retrieval_partial_result () =
  let fx = F.make () in
  Netsim.World.set_down fx.F.world "site1" true;
  let sql = "USE continental delta SELECT %nu FROM flight%" in
  match exec fx sql with
  | M.Multitable mt ->
      Alcotest.(check (list string)) "delta part only" [ "delta" ]
        (Msql.Multitable.databases mt)
  | r -> Alcotest.fail ("expected multitable, got " ^ M.result_to_string r)

let () =
  Alcotest.run "vital"
    [
      ( "E3 two-phase vital set",
        [
          Alcotest.test_case "all prepared commits" `Quick test_all_prepared_commits;
          Alcotest.test_case "execute failure" `Quick test_vital_execute_failure_aborts_all_vitals;
          Alcotest.test_case "prepare failure" `Quick test_vital_prepare_failure_aborts;
          Alcotest.test_case "commit window incorrect" `Quick test_commit_window_gives_incorrect;
          Alcotest.test_case "non-vital failure ok" `Quick test_non_vital_failure_is_still_success;
          Alcotest.test_case "all non-vital" `Quick test_all_non_vital_always_successful;
        ] );
      ( "E4 compensation paths",
        [
          Alcotest.test_case "path 1: both ok" `Quick test_e4_path1_both_ok;
          Alcotest.test_case "path 2: compensate" `Quick test_e4_path2_united_aborts_cont_compensated;
          Alcotest.test_case "path 3: rollback" `Quick test_e4_path3_cont_aborts_united_rolled_back;
          Alcotest.test_case "path 4: both abort" `Quick test_e4_path4_both_abort;
          Alcotest.test_case "refusal without comp" `Quick test_two_autocommit_vitals_refused_without_comp;
          Alcotest.test_case "single autocommit vital" `Quick test_single_autocommit_vital_allowed;
        ] );
      ( "vital retrieval",
        [
          Alcotest.test_case "vital failure aborts" `Quick test_vital_retrieval_failure_aborts_query;
          Alcotest.test_case "partial multitable" `Quick test_non_vital_retrieval_partial_result;
        ] );
    ]
