test/test_dictionaries.ml: Alcotest Ldbms List Msql Schema Sqlcore Ty
