test/test_paper_examples.ml: Alcotest Array Astring_contains Ldbms List Msql Narada Netsim Option Relation Schema Sqlcore Value
