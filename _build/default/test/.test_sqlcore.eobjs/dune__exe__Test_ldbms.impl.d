test/test_ldbms.ml: Alcotest Ldbms List Printf QCheck QCheck_alcotest Relation Result Row Schema Sqlcore Ty Value
