test/test_mtx.ml: Alcotest Array Astring_contains Ldbms List Msql Narada Relation Sqlcore Value
