test/test_dol_opt.mli:
