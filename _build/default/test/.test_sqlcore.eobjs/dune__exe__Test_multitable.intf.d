test/test_multitable.mli:
