test/test_msql_parser.ml: Alcotest List Msql Sqlfront
