test/test_indexes.ml: Alcotest Ldbms List Printf QCheck QCheck_alcotest Relation Row Schema Sqlcore Ty Value
