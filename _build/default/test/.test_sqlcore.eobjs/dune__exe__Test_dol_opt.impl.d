test/test_dol_opt.ml: Alcotest List Msql Narada Printf Relation Row Sqlcore
