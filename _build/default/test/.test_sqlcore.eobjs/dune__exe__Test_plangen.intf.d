test/test_plangen.mli:
