test/test_triggers.mli:
