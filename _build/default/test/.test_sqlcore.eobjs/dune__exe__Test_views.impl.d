test/test_views.ml: Alcotest Ldbms List Msql Option Relation Schema Sqlcore Ty Value
