test/test_triggers.ml: Alcotest Array Astring_contains List Msql Relation Sqlcore Value
