test/test_vital.ml: Alcotest Array Astring_contains Ldbms List Msql Narada Netsim Option Relation Sqlcore Value
