test/test_sqlfront.mli:
