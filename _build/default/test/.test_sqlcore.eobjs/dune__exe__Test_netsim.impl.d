test/test_netsim.ml: Alcotest List Netsim QCheck QCheck_alcotest
