test/test_mtx.mli:
