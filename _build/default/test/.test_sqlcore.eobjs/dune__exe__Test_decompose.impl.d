test/test_decompose.ml: Alcotest Astring_contains List Msql Schema Sqlcore Sqlfront Ty Value
