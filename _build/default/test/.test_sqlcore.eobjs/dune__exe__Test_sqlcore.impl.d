test/test_sqlcore.ml: Alcotest Array Like List Names Printf QCheck QCheck_alcotest Relation Row Scan Schema Sqlcore String Ty Value
