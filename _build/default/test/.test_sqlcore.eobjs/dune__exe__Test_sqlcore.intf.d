test/test_sqlcore.mli:
