test/test_multitable.ml: Alcotest Array Ldbms List Msql Narada QCheck QCheck_alcotest Relation Row Schema Sqlcore Ty Value
