test/test_dol.ml: Alcotest Array Astring_contains Format Ldbms List Narada Netsim Printf QCheck QCheck_alcotest Relation Schema Sqlcore String Ty Value
