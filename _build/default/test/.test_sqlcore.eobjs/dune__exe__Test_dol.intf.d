test/test_dol.mli:
