test/test_ldbms.mli:
