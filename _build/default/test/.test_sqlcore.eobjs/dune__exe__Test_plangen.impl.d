test/test_plangen.ml: Alcotest Astring_contains Ldbms List Msql Narada Option Sqlcore
