test/test_sqlfront.ml: Alcotest List Printf QCheck QCheck_alcotest Sqlcore Sqlfront
