test/test_eval.ml: Alcotest Gen Ldbms List QCheck QCheck_alcotest Schema Sqlcore Sqlfront Ty Value
