test/test_msql_parser.mli:
