test/test_dictionaries.mli:
