test/test_integration.ml: Alcotest Array Astring_contains Format Ldbms List Msql Netsim Option Relation Row Schema Sqlcore String Value
