test/test_expand.ml: Alcotest Ldbms List Msql Printf QCheck QCheck_alcotest Schema Sqlcore Sqlfront String Ty
