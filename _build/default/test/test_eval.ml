(* The expression evaluator in isolation: exhaustive Kleene truth tables,
   comparison/arithmetic NULL propagation, LIKE/IN/BETWEEN corner cases,
   and correlated lookup through environment chains. *)
open Sqlcore
module Eval = Ldbms.Eval
module Ast = Sqlfront.Ast

let value = Alcotest.testable Value.pp Value.equal

let no_subquery _ _ = Alcotest.fail "unexpected subquery"
let ctx = { Eval.subquery = no_subquery; agg = None }
let empty = Eval.env [] [||]
let eval e = Eval.eval ctx empty e
let eval_sql s = eval (Sqlfront.Parser.parse_expr s)

let t3 = Value.Bool true
let f3 = Value.Bool false
let u3 = Value.Null

let test_and_truth_table () =
  let cases =
    [ (t3, t3, t3); (t3, f3, f3); (t3, u3, u3);
      (f3, t3, f3); (f3, f3, f3); (f3, u3, f3);
      (u3, t3, u3); (u3, f3, f3); (u3, u3, u3) ]
  in
  List.iter
    (fun (a, b, expected) ->
      Alcotest.check value "and"
        expected
        (eval (Ast.Binop (Ast.And, Ast.Lit a, Ast.Lit b))))
    cases

let test_or_truth_table () =
  let cases =
    [ (t3, t3, t3); (t3, f3, t3); (t3, u3, t3);
      (f3, t3, t3); (f3, f3, f3); (f3, u3, u3);
      (u3, t3, t3); (u3, f3, u3); (u3, u3, u3) ]
  in
  List.iter
    (fun (a, b, expected) ->
      Alcotest.check value "or" expected
        (eval (Ast.Binop (Ast.Or, Ast.Lit a, Ast.Lit b))))
    cases

let test_not_truth_table () =
  Alcotest.check value "not true" f3 (eval_sql "NOT TRUE");
  Alcotest.check value "not false" t3 (eval_sql "NOT FALSE");
  Alcotest.check value "not null" u3 (eval_sql "NOT NULL")

let test_comparison_nulls () =
  List.iter
    (fun sql -> Alcotest.check value sql u3 (eval_sql sql))
    [ "1 = NULL"; "NULL = 1"; "NULL <> NULL"; "NULL < 1"; "'a' >= NULL" ]

let test_numeric_comparisons () =
  Alcotest.check value "int lt float" t3 (eval_sql "1 < 1.5");
  Alcotest.check value "float eq int" t3 (eval_sql "2.0 = 2");
  Alcotest.check value "neg" t3 (eval_sql "-3 < -2")

let test_cross_class_comparison_errors () =
  (match eval_sql "1 = 'x'" with
  | exception Eval.Type_error _ -> ()
  | _ -> Alcotest.fail "int vs string must be a type error");
  match eval_sql "TRUE > 0" with
  | exception Eval.Type_error _ -> ()
  | _ -> Alcotest.fail "bool vs int must be a type error"

let test_arithmetic () =
  Alcotest.check value "int div truncates" (Value.Int 2) (eval_sql "7 / 3");
  Alcotest.check value "mixed promotes" (Value.Float 3.5) (eval_sql "7 / 2.0");
  Alcotest.check value "mod" (Value.Int 1) (eval_sql "7 % 3");
  Alcotest.check value "null propagates" u3 (eval_sql "1 + NULL");
  Alcotest.check value "precedence" (Value.Int 7) (eval_sql "1 + 2 * 3");
  (match eval_sql "1 / 0" with
  | exception Eval.Type_error _ -> ()
  | _ -> Alcotest.fail "div by zero");
  match eval_sql "1.0 % 2.0" with
  | exception Eval.Type_error _ -> ()
  | _ -> Alcotest.fail "float mod"

let test_concat () =
  Alcotest.check value "strings" (Value.Str "ab") (eval_sql "'a' || 'b'");
  Alcotest.check value "number coerces" (Value.Str "x1") (eval_sql "'x' || 1");
  Alcotest.check value "null" u3 (eval_sql "'x' || NULL")

let test_like_cases () =
  Alcotest.check value "match" t3 (eval_sql "'sedan' LIKE 's%n'");
  Alcotest.check value "no match" f3 (eval_sql "'suv' LIKE 's%n'");
  Alcotest.check value "underscore" t3 (eval_sql "'cat' LIKE 'c_t'");
  Alcotest.check value "not like" f3 (eval_sql "'sedan' NOT LIKE 's%'");
  Alcotest.check value "null arg" u3 (eval_sql "NULL LIKE 'a%'");
  match eval_sql "1 LIKE 'a'" with
  | exception Eval.Type_error _ -> ()
  | _ -> Alcotest.fail "LIKE on int"

let test_in_matrix () =
  Alcotest.check value "hit" t3 (eval_sql "2 IN (1, 2, 3)");
  Alcotest.check value "miss" f3 (eval_sql "9 IN (1, 2, 3)");
  Alcotest.check value "miss with null" u3 (eval_sql "9 IN (1, NULL)");
  Alcotest.check value "hit despite null" t3 (eval_sql "1 IN (NULL, 1)");
  Alcotest.check value "null needle" u3 (eval_sql "NULL IN (1, 2)");
  Alcotest.check value "not in hit" f3 (eval_sql "2 NOT IN (1, 2)");
  Alcotest.check value "not in with null" u3 (eval_sql "9 NOT IN (1, NULL)")

let test_between () =
  Alcotest.check value "inside" t3 (eval_sql "2 BETWEEN 1 AND 3");
  Alcotest.check value "boundary" t3 (eval_sql "3 BETWEEN 1 AND 3");
  Alcotest.check value "outside" f3 (eval_sql "4 BETWEEN 1 AND 3");
  Alcotest.check value "null bound unknown" u3 (eval_sql "2 BETWEEN NULL AND 3");
  Alcotest.check value "definitely out despite null" f3
    (eval_sql "9 BETWEEN NULL AND 3")

let test_is_null () =
  Alcotest.check value "null is null" t3 (eval_sql "NULL IS NULL");
  Alcotest.check value "value is not null" t3 (eval_sql "1 IS NOT NULL");
  Alcotest.check value "value is null" f3 (eval_sql "1 IS NULL")

let test_env_lookup_and_outer () =
  let inner_schema = Schema.requalify (Some "i") [ Schema.column "x" Ty.Int ] in
  let outer_schema = Schema.requalify (Some "o") [ Schema.column "y" Ty.Int ] in
  let outer = Eval.env outer_schema [| Value.Int 10 |] in
  let env = { (Eval.env inner_schema [| Value.Int 1 |]) with Eval.outer = Some outer } in
  Alcotest.check value "inner" (Value.Int 1) (Eval.lookup env "x");
  Alcotest.check value "outer fallback" (Value.Int 10) (Eval.lookup env "y");
  Alcotest.check value "qualified outer" (Value.Int 10)
    (Eval.lookup env ~qualifier:"o" "y");
  (match Eval.lookup env "z" with
  | exception Eval.Unknown_column _ -> ()
  | _ -> Alcotest.fail "unknown column");
  (* inner shadows outer for same name *)
  let shadow_outer = Eval.env (Schema.requalify (Some "o") [ Schema.column "x" Ty.Int ]) [| Value.Int 99 |] in
  let env2 = { (Eval.env inner_schema [| Value.Int 1 |]) with Eval.outer = Some shadow_outer } in
  Alcotest.check value "shadowing" (Value.Int 1) (Eval.lookup env2 "x")

let test_ambiguous_lookup () =
  let schema =
    Schema.requalify (Some "a") [ Schema.column "x" Ty.Int ]
    @ Schema.requalify (Some "b") [ Schema.column "x" Ty.Int ]
  in
  let env = Eval.env schema [| Value.Int 1; Value.Int 2 |] in
  (match Eval.lookup env "x" with
  | exception Eval.Ambiguous_column _ -> ()
  | _ -> Alcotest.fail "ambiguity expected");
  Alcotest.check value "qualified resolves" (Value.Int 2)
    (Eval.lookup env ~qualifier:"b" "x")

let test_agg_outside_context () =
  match eval (Ast.Agg { fn = Ast.Count_star; distinct = false; arg = None }) with
  | exception Eval.Type_error _ -> ()
  | _ -> Alcotest.fail "aggregate without context"

let prop_not_involutive_on_booleans =
  QCheck.Test.make ~name:"NOT . NOT = id on booleans" ~count:50
    QCheck.(make Gen.bool) (fun b ->
      eval (Ast.Unop (Ast.Not, Ast.Unop (Ast.Not, Ast.Lit (Value.Bool b))))
      = Value.Bool b)

let prop_and_commutes =
  let tv = QCheck.Gen.oneofl [ t3; f3; u3 ] in
  QCheck.Test.make ~name:"AND commutes in 3VL" ~count:100
    (QCheck.make QCheck.Gen.(pair tv tv)) (fun (a, b) ->
      eval (Ast.Binop (Ast.And, Ast.Lit a, Ast.Lit b))
      = eval (Ast.Binop (Ast.And, Ast.Lit b, Ast.Lit a)))

let prop_de_morgan =
  let tv = QCheck.Gen.oneofl [ t3; f3; u3 ] in
  QCheck.Test.make ~name:"De Morgan holds in 3VL" ~count:100
    (QCheck.make QCheck.Gen.(pair tv tv)) (fun (a, b) ->
      let nand =
        eval (Ast.Unop (Ast.Not, Ast.Binop (Ast.And, Ast.Lit a, Ast.Lit b)))
      in
      let or_nots =
        eval
          (Ast.Binop
             (Ast.Or, Ast.Unop (Ast.Not, Ast.Lit a), Ast.Unop (Ast.Not, Ast.Lit b)))
      in
      nand = or_nots)

let () =
  Alcotest.run "eval"
    [
      ( "three-valued logic",
        [
          Alcotest.test_case "AND table" `Quick test_and_truth_table;
          Alcotest.test_case "OR table" `Quick test_or_truth_table;
          Alcotest.test_case "NOT table" `Quick test_not_truth_table;
          Alcotest.test_case "comparisons with NULL" `Quick test_comparison_nulls;
          Alcotest.test_case "is null" `Quick test_is_null;
        ] );
      ( "operators",
        [
          Alcotest.test_case "numeric comparisons" `Quick test_numeric_comparisons;
          Alcotest.test_case "cross-class errors" `Quick test_cross_class_comparison_errors;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "like" `Quick test_like_cases;
          Alcotest.test_case "in" `Quick test_in_matrix;
          Alcotest.test_case "between" `Quick test_between;
        ] );
      ( "environments",
        [
          Alcotest.test_case "lookup and outer" `Quick test_env_lookup_and_outer;
          Alcotest.test_case "ambiguity" `Quick test_ambiguous_lookup;
          Alcotest.test_case "agg context" `Quick test_agg_outside_context;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_not_involutive_on_booleans; prop_and_commutes; prop_de_morgan ] );
    ]
