module A = Msql.Ast
module E = Msql.Expand
module G = Msql.Gdd
module S = Sqlfront.Ast
open Sqlcore

(* a GDD mirroring the paper's appendix, built directly (no live DBs) *)
let gdd () =
  let g = G.create () in
  let col = Schema.column in
  G.import_database g ~db:"avis"
    [ ("cars",
       [ col "code" Ty.Int; col "cartype" Ty.Str; col "rate" Ty.Float;
         col "carst" Ty.Str ]) ];
  G.import_database g ~db:"national"
    [ ("vehicle", [ col "vcode" Ty.Int; col "vty" Ty.Str; col "vstat" Ty.Str ]) ];
  G.import_database g ~db:"continental"
    [ ("flights",
       [ col "flnu" Ty.Int; col "source" Ty.Str; col "destination" Ty.Str;
         col "rate" Ty.Float ]);
      ("f838", [ col "seatnu" Ty.Int; col "seatstatus" Ty.Str ]) ];
  G.import_database g ~db:"united"
    [ ("flight",
       [ col "fn" Ty.Int; col "sour" Ty.Str; col "dest" Ty.Str;
         col "rates" Ty.Float ]) ];
  g

let q s = Msql.Mparser.parse_query s

let expand s = E.expand (gdd ()) (q s)

let elems s =
  match expand s with
  | E.Replicated es -> es
  | E.Global _ | E.Transfer _ -> Alcotest.fail "expected replicated expansion"

let sql_of (e : E.elementary) =
  String.concat "; " (List.map Sqlfront.Sql_pp.stmt_to_string e.E.stmts)

let find_db es db =
  match List.find_opt (fun (e : E.elementary) -> e.E.edb = db) es with
  | Some e -> e
  | None -> Alcotest.failf "no elementary query for %s" db

(* ---- explicit semantic variables (LET) ------------------------------------- *)

let test_let_substitution () =
  let es =
    elems
      "USE avis national LET car.type.status BE cars.cartype.carst \
       vehicle.vty.vstat SELECT type FROM car WHERE status = 'available'"
  in
  Alcotest.(check int) "both pertinent" 2 (List.length es);
  Alcotest.(check string) "avis" "SELECT cartype FROM cars WHERE (carst = 'available')"
    (sql_of (find_db es "avis"));
  Alcotest.(check string) "national" "SELECT vty FROM vehicle WHERE (vstat = 'available')"
    (sql_of (find_db es "national"))

let test_let_ambiguous_binding () =
  (* both bindings resolve in avis: ambiguous *)
  let g = gdd () in
  G.import_table g ~db:"avis" ~table:"vehicle"
    [ Schema.column "vty" Ty.Str ];
  match
    E.expand g
      (q "USE avis LET car.type BE cars.cartype vehicle.vty SELECT type FROM car")
  with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "expected ambiguity error"

let test_let_bad_column () =
  match
    expand "USE avis LET car.type BE cars.nonexistent SELECT type FROM car"
  with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "expected bad-column error"

(* ---- implicit semantic variables (%) ----------------------------------------- *)

let test_implicit_column_pattern () =
  let es =
    elems "USE avis national SELECT %code FROM %"
  in
  Alcotest.(check string) "avis code" "SELECT code FROM cars"
    (sql_of (find_db es "avis"));
  Alcotest.(check string) "national vcode" "SELECT vcode FROM vehicle"
    (sql_of (find_db es "national"))

let test_table_pattern_update () =
  let es =
    elems
      "USE continental united UPDATE flight% SET rate% = rate% * 1.1 WHERE \
       sour% = 'Houston'"
  in
  Alcotest.(check string) "continental"
    "UPDATE flights SET rate = (rate * 1.1) WHERE (source = 'Houston')"
    (sql_of (find_db es "continental"));
  Alcotest.(check string) "united"
    "UPDATE flight SET rates = (rates * 1.1) WHERE (sour = 'Houston')"
    (sql_of (find_db es "united"))

let test_disambiguation_discards () =
  (* 'vehicle' only exists in national; avis is non-pertinent *)
  let es = elems "USE avis national SELECT vcode FROM vehicle" in
  Alcotest.(check int) "one db" 1 (List.length es);
  Alcotest.(check string) "national only" "national" (List.hd es).E.edb

let test_not_pertinent_anywhere_is_error () =
  match expand "USE avis national SELECT x FROM nonexistent" with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_pattern_multiple_tables_same_db () =
  (* f% matches both flights and f838 in continental: two statements *)
  let es = elems "USE continental SELECT %nu FROM f%" in
  let c = find_db es "continental" in
  Alcotest.(check int) "two alternatives" 2 (List.length c.E.stmts)

let test_ambiguous_pattern_in_predicate () =
  (* %e matches both cartype and rate... in a predicate it must be unique *)
  match expand "USE avis SELECT code FROM cars WHERE %t% = 'x'" with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "expected ambiguity error"

let test_pattern_expands_in_projection () =
  (* %t% matches cartype, rate and carst: all are projected *)
  let es = elems "USE avis SELECT %t% FROM cars" in
  Alcotest.(check string) "expanded" "SELECT cartype, rate, carst FROM cars"
    (sql_of (find_db es "avis"))

(* ---- optional columns (~) ----------------------------------------------------- *)

let test_optional_column_dropped () =
  let es =
    elems
      "USE avis national LET car.status BE cars.carst vehicle.vstat \
       SELECT %code, ~rate FROM car"
  in
  Alcotest.(check string) "avis keeps rate" "SELECT code, rate FROM cars"
    (sql_of (find_db es "avis"));
  Alcotest.(check string) "national drops rate" "SELECT vcode FROM vehicle"
    (sql_of (find_db es "national"))

let test_optional_outside_projection_rejected () =
  match expand "USE avis SELECT code FROM cars WHERE ~rate = 1" with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "expected error for ~ in predicate"

let test_all_projections_optional_and_missing () =
  (* national has no rate; the lone optional projection vanishes -> not pertinent *)
  let es =
    elems "USE avis national SELECT ~rate FROM %"
  in
  Alcotest.(check int) "only avis" 1 (List.length es);
  Alcotest.(check string) "avis" "avis" (List.hd es).E.edb

(* ---- subqueries ----------------------------------------------------------------- *)

let test_subquery_rewritten () =
  let es =
    elems
      "USE continental UPDATE f838 SET seatstatus = 'TAKEN' WHERE seatnu = \
       (SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE')"
  in
  Alcotest.(check string) "subquery"
    "UPDATE f838 SET seatstatus = 'TAKEN' WHERE (seatnu = (SELECT MIN(seatnu) \
     FROM f838 WHERE (seatstatus = 'FREE')))"
    (sql_of (find_db es "continental"))

(* ---- create/drop ------------------------------------------------------------------ *)

let test_create_table_replicates () =
  let es = elems "USE avis national CREATE TABLE log (id INT, note CHAR(10))" in
  Alcotest.(check int) "both dbs" 2 (List.length es)

let test_drop_pattern () =
  let es = elems "USE continental DROP TABLE f8%" in
  Alcotest.(check string) "drops f838" "DROP TABLE f838"
    (sql_of (find_db es "continental"))

(* ---- global (db-qualified) -------------------------------------------------------- *)

let test_global_detected () =
  match
    expand
      "USE avis national SELECT c.code, v.vcode FROM avis.cars c, \
       national.vehicle v WHERE c.cartype = v.vty"
  with
  | E.Global { grefs; _ } ->
      Alcotest.(check (list string)) "dbs" [ "avis"; "national" ]
        (List.map (fun g -> g.E.gdb) grefs)
  | E.Replicated _ | E.Transfer _ -> Alcotest.fail "expected global"

let test_global_unqualified_unique () =
  match expand "USE avis national SELECT code FROM cars, national.vehicle" with
  | E.Global { grefs; _ } ->
      Alcotest.(check string) "cars found in avis" "avis" (List.hd grefs).E.gdb
  | E.Replicated _ | E.Transfer _ -> Alcotest.fail "expected global"

let test_global_scope_violation () =
  match expand "USE avis SELECT v.vcode FROM avis.cars c, national.vehicle v" with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "national not in scope"

let test_global_rejects_patterns () =
  match expand "USE avis national SELECT %code FROM avis.car%" with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "patterns with qualified tables"

let test_db_qualified_dml () =
  match expand "USE avis national UPDATE avis.cars SET rate = 0" with
  | E.Replicated [ e ] ->
      Alcotest.(check string) "only avis" "avis" e.E.edb;
      Alcotest.(check string) "stmt" "UPDATE cars SET rate = 0" (sql_of e)
  | _ -> Alcotest.fail "expected single-db dml"

(* ---- substitution_for --------------------------------------------------------------- *)

let test_substitution_for () =
  let subst =
    E.substitution_for (gdd ()) ~db:"national"
      [ { A.var_path = [ "car"; "type" ]; bindings = [ [ "cars"; "cartype" ]; [ "vehicle"; "vty" ] ] } ]
  in
  Alcotest.(check (option string)) "car" (Some "vehicle") (List.assoc_opt "car" subst);
  Alcotest.(check (option string)) "type" (Some "vty") (List.assoc_opt "type" subst)

let test_unknown_db_in_scope () =
  match expand "USE nowhere SELECT a FROM t" with
  | exception E.Error _ -> ()
  | _ -> Alcotest.fail "expected unknown-db error"

(* ---- property: elementary statements are executable ------------------------- *)

(* Random multiple queries over a random federation: whenever expansion
   succeeds, every elementary statement must run without semantic errors
   against an empty materialization of its database's schema — i.e.
   disambiguation really did discard everything non-pertinent. *)
let table_pool = [ "cars"; "carts"; "vehicle"; "flights" ]
let column_pool = [ "code"; "vcode"; "rate"; "rates"; "name" ]

let gen_federation =
  QCheck.Gen.(
    let gen_table =
      pair (oneofl table_pool)
        (map
           (fun cols -> List.sort_uniq compare cols)
           (list_size (1 -- 4) (oneofl column_pool)))
    in
    list_size (1 -- 3) (list_size (1 -- 3) gen_table))

let gen_pattern =
  QCheck.Gen.(
    oneof
      [
        oneofl table_pool;
        oneofl column_pool;
        map (fun s -> String.sub s 0 (min 2 (String.length s)) ^ "%")
          (oneofl (table_pool @ column_pool));
        map (fun s -> "%" ^ String.sub s 1 (String.length s - 1))
          (oneofl column_pool);
      ])

let gen_query_parts =
  QCheck.Gen.(pair gen_pattern (pair gen_pattern (opt gen_pattern)))

let prop_elementaries_are_executable =
  let gen = QCheck.Gen.pair gen_federation gen_query_parts in
  QCheck.Test.make ~name:"elementary statements execute on their db" ~count:300
    (QCheck.make gen)
    (fun (fed, (table_pat, (proj_pat, where_pat))) ->
      let gdd = G.create () in
      let dbs =
        List.mapi
          (fun i tables ->
            let db = Printf.sprintf "db%d" (i + 1) in
            List.iter
              (fun (tname, cols) ->
                G.import_table gdd ~db ~table:tname
                  (List.map (fun c -> Schema.column c Ty.Int) cols))
              tables;
            (db, tables))
          fed
      in
      let sql =
        Printf.sprintf "USE %s SELECT %s FROM %s%s"
          (String.concat " " (List.map fst dbs))
          proj_pat table_pat
          (match where_pat with
          | Some w -> Printf.sprintf " WHERE %s = 1" w
          | None -> "")
      in
      match E.expand gdd (Msql.Mparser.parse_query sql) with
      | exception E.Error _ -> true (* refusal is always acceptable *)
      | E.Global _ | E.Transfer _ -> true
      | E.Replicated elems ->
          List.for_all
            (fun (el : E.elementary) ->
              (* materialize the db with empty tables and run each stmt *)
              let db = Ldbms.Database.create el.E.edb in
              List.iter
                (fun (tname, schema) ->
                  Ldbms.Database.load db ~name:tname schema [])
                (G.tables gdd ~db:el.E.edb);
              List.for_all
                (fun stmt ->
                  match stmt with
                  | S.Select sel -> (
                      match Ldbms.Exec.run_select db sel with
                      | _ -> true
                      | exception Ldbms.Exec.Error _ -> false)
                  | _ -> true)
                el.E.stmts)
            elems)

let prop_expansion_deterministic =
  let gen = QCheck.Gen.pair gen_federation gen_query_parts in
  QCheck.Test.make ~name:"expansion is deterministic" ~count:100
    (QCheck.make gen)
    (fun (fed, (table_pat, (proj_pat, where_pat))) ->
      let build () =
        let gdd = G.create () in
        let dbs =
          List.mapi
            (fun i tables ->
              let db = Printf.sprintf "db%d" (i + 1) in
              List.iter
                (fun (tname, cols) ->
                  G.import_table gdd ~db ~table:tname
                    (List.map (fun c -> Schema.column c Ty.Int) cols))
                tables;
              db)
            fed
        in
        let sql =
          Printf.sprintf "USE %s SELECT %s FROM %s%s" (String.concat " " dbs)
            proj_pat table_pat
            (match where_pat with
            | Some w -> Printf.sprintf " WHERE %s = 1" w
            | None -> "")
        in
        match E.expand gdd (Msql.Mparser.parse_query sql) with
        | exception E.Error m -> Error m
        | E.Global _ | E.Transfer _ -> Ok []
        | E.Replicated elems ->
            Ok
              (List.map
                 (fun (el : E.elementary) ->
                   (el.E.edb, List.map Sqlfront.Sql_pp.stmt_to_string el.E.stmts))
                 elems)
      in
      build () = build ())

let () =
  Alcotest.run "expand"
    [
      ( "let",
        [
          Alcotest.test_case "substitution" `Quick test_let_substitution;
          Alcotest.test_case "ambiguous binding" `Quick test_let_ambiguous_binding;
          Alcotest.test_case "bad column" `Quick test_let_bad_column;
          Alcotest.test_case "substitution_for" `Quick test_substitution_for;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "implicit column" `Quick test_implicit_column_pattern;
          Alcotest.test_case "table pattern update" `Quick test_table_pattern_update;
          Alcotest.test_case "discard non-pertinent" `Quick test_disambiguation_discards;
          Alcotest.test_case "no pertinent db" `Quick test_not_pertinent_anywhere_is_error;
          Alcotest.test_case "multi-table pattern" `Quick test_pattern_multiple_tables_same_db;
          Alcotest.test_case "ambiguous predicate" `Quick test_ambiguous_pattern_in_predicate;
          Alcotest.test_case "projection expansion" `Quick test_pattern_expands_in_projection;
        ] );
      ( "optional",
        [
          Alcotest.test_case "dropped when missing" `Quick test_optional_column_dropped;
          Alcotest.test_case "rejected in predicate" `Quick test_optional_outside_projection_rejected;
          Alcotest.test_case "all optional missing" `Quick test_all_projections_optional_and_missing;
        ] );
      ( "statements",
        [
          Alcotest.test_case "subquery" `Quick test_subquery_rewritten;
          Alcotest.test_case "create replicates" `Quick test_create_table_replicates;
          Alcotest.test_case "drop pattern" `Quick test_drop_pattern;
          Alcotest.test_case "db-qualified dml" `Quick test_db_qualified_dml;
        ] );
      ( "global",
        [
          Alcotest.test_case "detected" `Quick test_global_detected;
          Alcotest.test_case "unqualified unique" `Quick test_global_unqualified_unique;
          Alcotest.test_case "scope violation" `Quick test_global_scope_violation;
          Alcotest.test_case "rejects patterns" `Quick test_global_rejects_patterns;
        ] );
      ( "errors",
        [ Alcotest.test_case "unknown db" `Quick test_unknown_db_in_scope ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_elementaries_are_executable; prop_expansion_deterministic ] );
    ]
