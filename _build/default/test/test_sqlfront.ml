module Ast = Sqlfront.Ast
module Parser = Sqlfront.Parser
module Sql_pp = Sqlfront.Sql_pp
module Lexer = Sqlfront.Lexer
module Token = Sqlfront.Token

(* ---- lexer --------------------------------------------------------------- *)

let toks s = List.map (fun l -> l.Token.tok) (Lexer.tokenize s)

let test_lexer_basic () =
  Alcotest.(check int) "count" 5 (List.length (toks "SELECT a FROM t"));
  (match toks "x <= 3.5 <> 'a''b'" with
  | [ Token.Ident "x"; Token.Sym "<="; Token.Float 3.5; Token.Sym "<>";
      Token.Str "a'b"; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "unexpected tokens");
  match toks "a!=b||c" with
  | [ Token.Ident "a"; Token.Sym "<>"; Token.Ident "b"; Token.Sym "||";
      Token.Ident "c"; Token.Eof ] ->
      ()
  | _ -> Alcotest.fail "!= and || lexing"

let test_lexer_comments () =
  Alcotest.(check int) "line comment" 2 (List.length (toks "a -- b c d"));
  Alcotest.(check int) "block comment" 3 (List.length (toks "a /* x */ b"))

let test_lexer_error () =
  match toks "a @ b" with
  | exception Lexer.Error (_, 1, 3) -> ()
  | exception Lexer.Error (_, l, c) ->
      Alcotest.failf "wrong position %d:%d" l c
  | _ -> Alcotest.fail "expected lexer error"

(* ---- parser -------------------------------------------------------------- *)

let roundtrips s =
  let ast = Parser.parse_stmt s in
  let printed = Sql_pp.stmt_to_string ast in
  let ast2 = Parser.parse_stmt printed in
  Alcotest.(check bool) (Printf.sprintf "roundtrip: %s" s) true (Ast.equal_stmt ast ast2)

let test_roundtrip_corpus () =
  List.iter roundtrips
    [
      "SELECT code, cartype, rate FROM cars WHERE carst = 'available'";
      "SELECT DISTINCT a FROM t ORDER BY a DESC, b ASC";
      "SELECT c.code, v.vcode FROM cars c, vehicle v WHERE c.code = v.vcode";
      "SELECT * FROM t WHERE a LIKE 'x%' AND b NOT LIKE '_y'";
      "SELECT * FROM t WHERE a IN (1, 2, 3) OR b NOT IN (SELECT x FROM u)";
      "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN 2 AND 3";
      "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL";
      "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.x)";
      "SELECT cartype, COUNT(*), SUM(rate), AVG(rate), MIN(rate), MAX(rate) \
       FROM cars GROUP BY cartype HAVING COUNT(*) > 1";
      "SELECT COUNT(DISTINCT cartype) FROM cars";
      "SELECT a + b * c - d / e FROM t";
      "SELECT -a, a || b FROM t";
      "SELECT t.* FROM t, u";
      "SELECT a AS alpha, b beta FROM t";
      "INSERT INTO t VALUES (1, 'x', NULL)";
      "INSERT INTO t (a, b) VALUES (1, 2), (3, 4)";
      "INSERT INTO t SELECT a, b FROM u WHERE a > 0";
      "UPDATE t SET a = a + 1, b = 'x' WHERE c < 0";
      "UPDATE f SET s = 'TAKEN' WHERE n = (SELECT MIN(n) FROM f WHERE s = 'FREE')";
      "DELETE FROM t WHERE a NOT IN (SELECT b FROM u)";
      "DELETE FROM t";
      "CREATE TABLE t (a INT, b CHAR(30), c FLOAT, d BOOL)";
      "DROP TABLE t";
      "CREATE VIEW v AS SELECT a, b FROM t WHERE a > 0";
      "DROP VIEW v";
      "CREATE INDEX i ON t (a)";
      "DROP INDEX i";
      "CREATE TABLE k (id INT NOT NULL UNIQUE, tag CHAR(8) UNIQUE, v FLOAT NOT NULL)";
      "BEGIN"; "COMMIT"; "ROLLBACK"; "PREPARE";
    ]

let test_precedence () =
  (* a + b * c parses as a + (b * c) *)
  match Parser.parse_expr "a + b * c" with
  | Ast.Binop (Ast.Add, Ast.Col _, Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence of * over +"

let test_and_or_precedence () =
  match Parser.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | Ast.Binop (Ast.Or, _, Ast.Binop (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "AND binds tighter than OR"

let test_not_precedence () =
  match Parser.parse_expr "NOT a = 1 AND b = 2" with
  | Ast.Binop (Ast.And, Ast.Unop (Ast.Not, _), _) -> ()
  | _ -> Alcotest.fail "NOT binds tighter than AND"

let test_parse_errors () =
  let expect_error s =
    match Parser.parse_stmt s with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error: %s" s
  in
  expect_error "SELECT";
  expect_error "SELECT a FROM";
  expect_error "SELECT a FROM t WHERE";
  expect_error "INSERT INTO t";
  expect_error "UPDATE t SET";
  expect_error "SELECT a FROM t GROUP a";
  expect_error "SELECT a FROM t trailing garbage (";
  expect_error "FOO BAR"

let test_db_qualified_table () =
  match Parser.parse_stmt "SELECT a FROM avis.cars c" with
  | Ast.Select { from = [ { table = "avis.cars"; alias = Some "c" } ]; _ } -> ()
  | _ -> Alcotest.fail "db-qualified table ref"

let test_script () =
  let stmts = Parser.parse_script "SELECT a FROM t; UPDATE t SET a = 1;; COMMIT" in
  Alcotest.(check int) "three statements" 3 (List.length stmts)

let test_keyword_case_insensitive () =
  roundtrips "select A from T where B = 'x' order by A desc"

let test_keywordish_column_names () =
  (* the paper's AVIS schema has columns named from/to *)
  roundtrips "UPDATE cars SET from = '07-04-64', to = '04-16-92' WHERE code = 1";
  roundtrips "SELECT from, to FROM cars WHERE from IS NOT NULL"

(* ---- aggregate detection --------------------------------------------------- *)

let test_is_aggregate () =
  let is_agg s =
    match Parser.parse_stmt s with
    | Ast.Select sel -> Ast.is_aggregate_query sel
    | _ -> false
  in
  Alcotest.(check bool) "count" true (is_agg "SELECT COUNT(*) FROM t");
  Alcotest.(check bool) "group" true (is_agg "SELECT a FROM t GROUP BY a");
  Alcotest.(check bool) "plain" false (is_agg "SELECT a FROM t");
  Alcotest.(check bool) "subquery agg does not leak" false
    (is_agg "SELECT a FROM t WHERE a = (SELECT MAX(b) FROM u)")

let test_tables_of_stmt () =
  let tables s = Ast.tables_of_stmt (Parser.parse_stmt s) in
  Alcotest.(check (list string)) "select" [ "t"; "u" ]
    (tables "SELECT a FROM t WHERE a IN (SELECT b FROM u)");
  Alcotest.(check (list string)) "update" [ "t"; "u" ]
    (tables "UPDATE t SET a = 1 WHERE b = (SELECT MAX(c) FROM u)")

(* ---- random expression roundtrip ------------------------------------------- *)

let gen_expr =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c"; "rate" ] in
  let leaf =
    oneof
      [
        map (fun i -> Ast.Lit (Sqlcore.Value.Int i)) small_nat;
        map (fun s -> Ast.Lit (Sqlcore.Value.Str s)) (oneofl [ "x"; "it's" ]);
        map (fun n -> Ast.col n) ident;
        map (fun n -> Ast.col ~qualifier:"t" n) ident;
        return (Ast.Lit Sqlcore.Value.Null);
      ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      oneof
        [
          leaf;
          map2
            (fun op (a, b) -> Ast.Binop (op, a, b))
            (oneofl Ast.[ Add; Sub; Mul; Concat ])
            (pair (expr (n - 1)) (expr (n - 1)));
          map2
            (fun op (a, b) ->
              Ast.Binop (Ast.Or, Ast.Binop (op, a, b), Ast.Binop (op, b, a)))
            (oneofl Ast.[ Eq; Neq; Lt; Le; Gt; Ge ])
            (pair (expr (n - 1)) (expr (n - 1)));
          map (fun a -> Ast.Unop (Ast.Neg, a)) (expr (n - 1));
          map (fun a -> Ast.Is_null { arg = a; negated = false }) (expr (n - 1));
          map
            (fun (a, items) -> Ast.In_list { arg = a; items; negated = true })
            (pair (expr (n - 1)) (list_size (1 -- 3) (expr (n - 1))));
        ]
  in
  expr 3

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expression print/parse roundtrip" ~count:300
    (QCheck.make gen_expr) (fun e ->
      let s = "SELECT a FROM t WHERE " ^ Sql_pp.expr_to_string (Ast.Is_null { arg = e; negated = false }) in
      match Parser.parse_stmt s with
      | Ast.Select { where = Some (Ast.Is_null { arg = e2; negated = false }); _ } ->
          Ast.equal_stmt
            (Ast.Update { table = "t"; assignments = [ ("x", e) ]; where = None })
            (Ast.Update { table = "t"; assignments = [ ("x", e2) ]; where = None })
      | _ -> false)

let () =
  Alcotest.run "sqlfront"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "error position" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip corpus" `Quick test_roundtrip_corpus;
          Alcotest.test_case "arith precedence" `Quick test_precedence;
          Alcotest.test_case "and/or precedence" `Quick test_and_or_precedence;
          Alcotest.test_case "not precedence" `Quick test_not_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "db-qualified table" `Quick test_db_qualified_table;
          Alcotest.test_case "script" `Quick test_script;
          Alcotest.test_case "keyword case" `Quick test_keyword_case_insensitive;
          Alcotest.test_case "from/to columns" `Quick test_keywordish_column_names;
        ] );
      ( "ast",
        [
          Alcotest.test_case "is_aggregate" `Quick test_is_aggregate;
          Alcotest.test_case "tables_of_stmt" `Quick test_tables_of_stmt;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_expr_roundtrip ] );
    ]
