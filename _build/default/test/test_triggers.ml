(* Interdatabase triggers: a condition on one database drives an action on
   another (§2 lists the feature; syntax and firing rules are this
   implementation's, documented in DESIGN.md). *)
open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession

let exec fx sql =
  match M.exec fx.F.session sql with
  | Ok r -> r
  | Error m -> Alcotest.fail ("MSQL error: " ^ m)

(* when avis runs out of available cars, lower national's standards:
   mark rented vehicles available again *)
let make_trigger = {|
CREATE TRIGGER restock ON avis
WHEN SELECT code FROM cars WHERE carst = 'available' AND rate > 100
DO USE national UPDATE vehicle SET vstat = 'available' WHERE vstat = 'rented'
|}

let test_create_and_list () =
  let fx = F.make () in
  (match exec fx make_trigger with
  | M.Info _ -> ()
  | _ -> Alcotest.fail "expected info");
  Alcotest.(check int) "registered" 1 (List.length (M.triggers fx.F.session));
  match M.exec fx.F.session make_trigger with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate trigger must be rejected"

let test_drop () =
  let fx = F.make () in
  ignore (exec fx make_trigger);
  (match exec fx "DROP TRIGGER restock" with
  | M.Info _ -> ()
  | _ -> Alcotest.fail "expected info");
  Alcotest.(check int) "gone" 0 (List.length (M.triggers fx.F.session));
  match M.exec fx.F.session "DROP TRIGGER restock" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double drop must fail"

let test_unknown_db_rejected () =
  let fx = F.make () in
  match
    M.exec fx.F.session
      "CREATE TRIGGER t ON nowhere WHEN SELECT a FROM b DO USE avis UPDATE cars SET rate = 1"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown monitored db"

let test_fires_on_condition () =
  let fx = F.make () in
  ignore (exec fx make_trigger);
  (* raise rates: afterwards avis has an available car over 100 -> fires *)
  ignore (exec fx "USE avis UPDATE cars SET rate = rate * 3 WHERE carst = 'available'");
  let vehicles = F.scan fx ~db:"national" ~table:"vehicle" in
  Alcotest.(check bool) "national restocked" true
    (List.for_all
       (fun row -> Value.equal row.(2) (Value.Str "available"))
       (Relation.rows vehicles));
  let log = M.trigger_log fx.F.session in
  Alcotest.(check bool) "fired logged" true
    (List.exists (fun m -> Astring_contains.contains m "restock fired") log);
  Alcotest.(check bool) "action logged" true
    (List.exists (fun m -> Astring_contains.contains m "action completed") log)

let test_does_not_fire_when_condition_empty () =
  let fx = F.make () in
  ignore (exec fx make_trigger);
  (* lower rates: no available car above 100 -> no firing *)
  ignore (exec fx "USE avis UPDATE cars SET rate = rate - 1 WHERE carst = 'available'");
  Alcotest.(check (list string)) "no log" [] (M.trigger_log fx.F.session);
  let vehicles = F.scan fx ~db:"national" ~table:"vehicle" in
  Alcotest.(check bool) "rented vehicle untouched" true
    (List.exists
       (fun row -> Value.equal row.(2) (Value.Str "rented"))
       (Relation.rows vehicles))

let test_does_not_fire_on_other_db_updates () =
  let fx = F.make () in
  ignore (exec fx make_trigger);
  (* an update on continental must not evaluate the avis trigger *)
  ignore (exec fx "USE continental UPDATE flights SET rate = 999");
  Alcotest.(check (list string)) "no firing" [] (M.trigger_log fx.F.session)

let test_does_not_fire_on_retrieval () =
  let fx = F.make () in
  ignore (exec fx make_trigger);
  ignore (exec fx "USE avis SELECT code FROM cars");
  Alcotest.(check (list string)) "reads don't fire" [] (M.trigger_log fx.F.session)

let test_cascade_depth_limit () =
  let fx = F.make () in
  (* two triggers feeding each other through avis and national *)
  ignore
    (exec fx
       {|CREATE TRIGGER ping ON avis
         WHEN SELECT code FROM cars WHERE rate > 0
         DO USE national UPDATE vehicle SET vty = vty|});
  ignore
    (exec fx
       {|CREATE TRIGGER pong ON national
         WHEN SELECT vcode FROM vehicle
         DO USE avis UPDATE cars SET cartype = cartype|});
  ignore (exec fx "USE avis UPDATE cars SET rate = rate + 1");
  let log = M.trigger_log fx.F.session in
  Alcotest.(check bool) "depth limit reported" true
    (List.exists (fun m -> Astring_contains.contains m "depth limit") log)

let test_trigger_action_failure_logged () =
  let fx = F.make () in
  ignore
    (exec fx
       {|CREATE TRIGGER bad ON avis
         WHEN SELECT code FROM cars
         DO USE avis UPDATE cars SET nonexistent = 1|});
  ignore (exec fx "USE avis UPDATE cars SET rate = rate + 1");
  let log = M.trigger_log fx.F.session in
  Alcotest.(check bool) "failure logged" true
    (List.exists (fun m -> Astring_contains.contains m "action failed") log)

let test_fires_after_multitransaction () =
  let fx = F.make () in
  ignore
    (exec fx
       {|CREATE TRIGGER seatwatch ON continental
         WHEN SELECT seatnu FROM f838 WHERE seatstatus = 'TAKEN' AND clientname = 'wenders'
         DO USE avis UPDATE cars SET client = 'notified' WHERE carst = 'rented'|});
  ignore
    (exec fx
       {|BEGIN MULTITRANSACTION
           USE continental
           UPDATE f838 SET seatstatus = 'TAKEN', clientname = 'wenders'
           WHERE seatnu = 2;
         COMMIT
           continental
         END MULTITRANSACTION|});
  let cars = F.scan fx ~db:"avis" ~table:"cars" in
  Alcotest.(check bool) "action applied" true
    (List.exists
       (fun row -> Value.equal row.(6) (Value.Str "notified"))
       (Relation.rows cars))

let () =
  Alcotest.run "triggers"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "create/list" `Quick test_create_and_list;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "unknown db" `Quick test_unknown_db_rejected;
        ] );
      ( "firing",
        [
          Alcotest.test_case "fires" `Quick test_fires_on_condition;
          Alcotest.test_case "condition empty" `Quick test_does_not_fire_when_condition_empty;
          Alcotest.test_case "other db" `Quick test_does_not_fire_on_other_db_updates;
          Alcotest.test_case "retrieval" `Quick test_does_not_fire_on_retrieval;
          Alcotest.test_case "cascade limit" `Quick test_cascade_depth_limit;
          Alcotest.test_case "action failure" `Quick test_trigger_action_failure_logged;
          Alcotest.test_case "after mtx" `Quick test_fires_after_multitransaction;
        ] );
    ]
