open Sqlcore
module Session = Ldbms.Session
module Caps = Ldbms.Capabilities
module Inject = Ldbms.Failure_injector

let value = Alcotest.testable Value.pp Value.equal

(* ---- shared fixture -------------------------------------------------------- *)

let cars_schema =
  [ Schema.column "code" Ty.Int; Schema.column "cartype" Ty.Str;
    Schema.column "rate" Ty.Float; Schema.column "carst" Ty.Str ]

let fresh_db () =
  let db = Ldbms.Database.create "avis" in
  Ldbms.Database.load db ~name:"cars" cars_schema
    [
      [| Value.Int 1; Value.Str "sedan"; Value.Float 45.0; Value.Str "available" |];
      [| Value.Int 2; Value.Str "suv"; Value.Float 65.0; Value.Str "rented" |];
      [| Value.Int 3; Value.Str "compact"; Value.Null; Value.Str "available" |];
    ];
  db

let connect ?(caps = Caps.ingres_like) () = Session.connect (fresh_db ()) caps

let rows_of = function
  | Ok (Session.Rows r) -> Relation.rows r
  | Ok _ -> Alcotest.fail "expected rows"
  | Error m -> Alcotest.fail ("error: " ^ m)

let affected = function
  | Ok (Session.Affected n) -> n
  | Ok _ -> Alcotest.fail "expected affected count"
  | Error m -> Alcotest.fail ("error: " ^ m)

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let q s sql = Session.exec_sql s sql
let scalar s sql = match rows_of (q s sql) with
  | [ [| v |] ] -> v
  | _ -> Alcotest.fail "expected a single scalar"

(* ---- SELECT ---------------------------------------------------------------- *)

let test_select_where () =
  let s = connect () in
  Alcotest.(check int) "two available" 2
    (List.length (rows_of (q s "SELECT code FROM cars WHERE carst = 'available'")))

let test_select_null_semantics () =
  let s = connect () in
  (* NULL rate must not satisfy rate > 0, nor rate <= 0 *)
  Alcotest.(check int) "gt" 2 (List.length (rows_of (q s "SELECT code FROM cars WHERE rate > 0")));
  Alcotest.(check int) "le" 0 (List.length (rows_of (q s "SELECT code FROM cars WHERE rate <= 0")));
  Alcotest.(check int) "is null" 1
    (List.length (rows_of (q s "SELECT code FROM cars WHERE rate IS NULL")));
  (* NOT (NULL comparison) stays unknown *)
  Alcotest.(check int) "not of unknown" 0
    (List.length (rows_of (q s "SELECT code FROM cars WHERE NOT rate > 0")))

let test_select_in_and_between () =
  let s = connect () in
  Alcotest.(check int) "in list" 2
    (List.length (rows_of (q s "SELECT code FROM cars WHERE code IN (1, 2, 9)")));
  Alcotest.(check int) "between" 2
    (List.length (rows_of (q s "SELECT code FROM cars WHERE code BETWEEN 1 AND 2")));
  (* x NOT IN (... NULL ...) is never true when no match *)
  Alcotest.(check int) "not in with null" 0
    (List.length (rows_of (q s "SELECT code FROM cars WHERE code NOT IN (9, NULL)")))

let test_select_like () =
  let s = connect () in
  Alcotest.(check int) "like s%" 2
    (List.length (rows_of (q s "SELECT code FROM cars WHERE cartype LIKE 's%'")))

let test_select_order_distinct () =
  let s = connect () in
  (match rows_of (q s "SELECT code FROM cars ORDER BY code DESC") with
  | [| Value.Int 3 |] :: _ -> ()
  | _ -> Alcotest.fail "desc order");
  Alcotest.(check int) "distinct status" 2
    (List.length (rows_of (q s "SELECT DISTINCT carst FROM cars")))

let test_select_aggregates () =
  let s = connect () in
  Alcotest.check value "count star" (Value.Int 3) (scalar s "SELECT COUNT(*) FROM cars");
  Alcotest.check value "count rate skips null" (Value.Int 2)
    (scalar s "SELECT COUNT(rate) FROM cars");
  Alcotest.check value "sum" (Value.Float 110.0) (scalar s "SELECT SUM(rate) FROM cars");
  Alcotest.check value "avg" (Value.Float 55.0) (scalar s "SELECT AVG(rate) FROM cars");
  Alcotest.check value "min" (Value.Float 45.0) (scalar s "SELECT MIN(rate) FROM cars");
  Alcotest.check value "max over empty is null" Value.Null
    (scalar s "SELECT MAX(rate) FROM cars WHERE code > 99")

let test_group_by_having () =
  let s = connect () in
  let rows = rows_of (q s "SELECT carst, COUNT(*) FROM cars GROUP BY carst HAVING COUNT(*) > 1") in
  (match rows with
  | [ [| Value.Str "available"; Value.Int 2 |] ] -> ()
  | _ -> Alcotest.fail "group/having result")

let test_join_product () =
  let s = connect () in
  Alcotest.(check int) "self product" 9
    (List.length (rows_of (q s "SELECT a.code FROM cars a, cars b")));
  Alcotest.(check int) "self join" 3
    (List.length (rows_of (q s "SELECT a.code FROM cars a, cars b WHERE a.code = b.code")))

let test_subqueries () =
  let s = connect () in
  Alcotest.check value "scalar min" (Value.Int 1)
    (scalar s "SELECT code FROM cars WHERE code = (SELECT MIN(code) FROM cars)");
  Alcotest.(check int) "correlated exists" 3
    (List.length
       (rows_of (q s "SELECT code FROM cars c WHERE EXISTS (SELECT * FROM cars d WHERE d.code = c.code)")));
  expect_error (q s "SELECT code FROM cars WHERE code = (SELECT code FROM cars)")

let test_ambiguous_column () =
  let s = connect () in
  expect_error (q s "SELECT code FROM cars a, cars b")

let test_unknown_objects () =
  let s = connect () in
  expect_error (q s "SELECT nope FROM cars");
  expect_error (q s "SELECT code FROM nope")

(* ---- DML -------------------------------------------------------------------- *)

let test_insert_variants () =
  let s = connect () in
  Alcotest.(check int) "plain" 1
    (affected (q s "INSERT INTO cars VALUES (4, 'van', 80.0, 'available')"));
  Alcotest.(check int) "columns reordered" 1
    (affected (q s "INSERT INTO cars (carst, code, cartype) VALUES ('rented', 5, 'bus')"));
  Alcotest.check value "missing column null" Value.Null
    (scalar s "SELECT rate FROM cars WHERE code = 5");
  Alcotest.(check int) "insert select" 5
    (affected (q s "INSERT INTO cars SELECT code + 100, cartype, rate, carst FROM cars"));
  Alcotest.check value "total" (Value.Int 10) (scalar s "SELECT COUNT(*) FROM cars")

let test_insert_type_checking () =
  let s = connect () in
  expect_error (q s "INSERT INTO cars VALUES ('x', 'y', 1.0, 'z')");
  (* int coerces into float column *)
  Alcotest.(check int) "int to float" 1
    (affected (q s "INSERT INTO cars VALUES (9, 'van', 80, 'free')"));
  Alcotest.check value "coerced" (Value.Float 80.0)
    (scalar s "SELECT rate FROM cars WHERE code = 9")

let test_update_delete () =
  let s = connect () in
  Alcotest.(check int) "update" 2
    (affected (q s "UPDATE cars SET rate = rate * 2 WHERE rate IS NOT NULL"));
  Alcotest.check value "doubled" (Value.Float 90.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1");
  Alcotest.(check int) "delete" 1 (affected (q s "DELETE FROM cars WHERE code = 2"));
  Alcotest.check value "left" (Value.Int 2) (scalar s "SELECT COUNT(*) FROM cars")

let test_update_uses_pre_state () =
  (* the paper's seat reservation: subquery in WHERE sees the pre-update state *)
  let s = connect () in
  Alcotest.(check int) "reserve one" 1
    (affected
       (q s "UPDATE cars SET carst = 'TAKEN' WHERE code = (SELECT MIN(code) FROM cars WHERE carst = 'available')"));
  Alcotest.check value "car 1 taken" (Value.Str "TAKEN")
    (scalar s "SELECT carst FROM cars WHERE code = 1");
  Alcotest.check value "car 3 untouched" (Value.Str "available")
    (scalar s "SELECT carst FROM cars WHERE code = 3")

let test_create_drop () =
  let s = connect () in
  (match q s "CREATE TABLE extras (id INT, note CHAR(40))" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "insert into new" 1
    (affected (q s "INSERT INTO extras VALUES (1, 'hi')"));
  (match q s "DROP TABLE extras" with Ok _ -> () | Error m -> Alcotest.fail m);
  expect_error (q s "SELECT * FROM extras");
  expect_error (q s "DROP TABLE extras")

(* ---- transactions ------------------------------------------------------------ *)

let test_rollback_restores () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  ignore (affected (q s "DELETE FROM cars WHERE code = 2"));
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.check value "rate restored" (Value.Float 45.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1");
  Alcotest.check value "row restored" (Value.Int 3) (scalar s "SELECT COUNT(*) FROM cars")

let test_commit_makes_durable () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.check value "still zero" (Value.Float 0.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1")

let test_prepare_then_commit () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 1 WHERE code = 1"));
  (match Session.prepare s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "prepared" true (Session.txn_state s = Some Ldbms.Txn.Prepared);
  (* no statements allowed while prepared; the transaction survives,
     since its fate belongs to the coordinator *)
  expect_error (q s "UPDATE cars SET rate = 2 WHERE code = 1");
  Alcotest.(check bool) "still prepared" true
    (Session.txn_state s = Some Ldbms.Txn.Prepared);
  (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.check value "committed" (Value.Float 1.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1")

let test_prepare_rollback () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 1 WHERE code = 1"));
  (match Session.prepare s with Ok () -> () | Error m -> Alcotest.fail m);
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.check value "restored" (Value.Float 45.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1")

let test_ddl_rollback_ingres_like () =
  let s = connect () in
  (* Ingres-like: DDL joins the transaction *)
  (match q s "CREATE TABLE tmp (a INT)" with Ok _ -> () | Error m -> Alcotest.fail m);
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  expect_error (q s "SELECT * FROM tmp")

let test_ddl_autocommit_oracle_like () =
  let s = connect ~caps:Caps.oracle_like () in
  (* the paper's trap: DDL commits all previously issued uncommitted work *)
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  (match q s "CREATE TABLE tmp (a INT)" with Ok _ -> () | Error m -> Alcotest.fail m);
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  (* rollback had nothing to undo: the CREATE committed the UPDATE *)
  Alcotest.check value "update survived rollback" (Value.Float 0.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1");
  Alcotest.check value "table survived" (Value.Int 0) (scalar s "SELECT COUNT(*) FROM tmp")

let test_autocommit_engine () =
  let s = connect ~caps:Caps.sybase_like () in
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  (* autocommit: a later rollback is a no-op *)
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.check value "committed at once" (Value.Float 0.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1");
  expect_error (Session.prepare s |> Result.map (fun () -> Session.Done));
  expect_error (q s "BEGIN")

let test_semantic_error_aborts_txn () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  expect_error (q s "UPDATE cars SET nonexistent = 1");
  (* the error rolled back the whole transaction *)
  Alcotest.check value "first update undone" (Value.Float 45.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1")

let test_constraints () =
  let s = connect () in
  (match
     q s "CREATE TABLE keyed (id INT NOT NULL UNIQUE, label CHAR(10) NOT NULL)"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "first row" 1
    (affected (q s "INSERT INTO keyed VALUES (1, 'a')"));
  (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
  (* NULL into NOT NULL *)
  expect_error (q s "INSERT INTO keyed VALUES (NULL, 'b')");
  expect_error (q s "INSERT INTO keyed (id) VALUES (2)");
  (* duplicate key *)
  expect_error (q s "INSERT INTO keyed VALUES (1, 'dup')");
  (* duplicate within one batch *)
  expect_error (q s "INSERT INTO keyed VALUES (7, 'x'), (7, 'y')");
  (* update into violation *)
  Alcotest.(check int) "second row" 1
    (affected (q s "INSERT INTO keyed VALUES (2, 'b')"));
  (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
  expect_error (q s "UPDATE keyed SET id = 1 WHERE id = 2");
  expect_error (q s "UPDATE keyed SET label = NULL WHERE id = 1");
  (* legal update still fine, and failed attempts rolled back cleanly *)
  Alcotest.(check int) "rename ok" 1
    (affected (q s "UPDATE keyed SET id = 3 WHERE id = 2"));
  Alcotest.check value "intact" (Value.Int 2) (scalar s "SELECT COUNT(*) FROM keyed")

let test_constraint_roundtrip_in_ddl () =
  let s = connect () in
  (match q s "CREATE TABLE c (a INT NOT NULL, b CHAR(4) UNIQUE)" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let tbl = Ldbms.Database.find_table (Session.database s) "c" in
  match Ldbms.Table.schema tbl with
  | [ a; b ] ->
      Alcotest.(check bool) "a not null" true a.Schema.not_null;
      Alcotest.(check bool) "a not unique" false a.Schema.unique;
      Alcotest.(check bool) "b unique" true b.Schema.unique
  | _ -> Alcotest.fail "schema shape"

(* ---- failure injection --------------------------------------------------------- *)

let test_inject_execute () =
  let s = connect () in
  Inject.fail_next (Session.injector s) Inject.At_execute;
  expect_error (q s "UPDATE cars SET rate = 0 WHERE code = 1");
  Alcotest.check value "nothing applied" (Value.Float 45.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1");
  (* one-shot: next statement is fine *)
  Alcotest.(check int) "recovered" 1 (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"))

let test_inject_prepare () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  Inject.fail_next (Session.injector s) Inject.At_prepare;
  expect_error (Session.prepare s |> Result.map (fun () -> Session.Done));
  Alcotest.check value "rolled back" (Value.Float 45.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1")

let test_inject_commit () =
  let s = connect () in
  ignore (affected (q s "UPDATE cars SET rate = 0 WHERE code = 1"));
  (match Session.prepare s with Ok () -> () | Error m -> Alcotest.fail m);
  Inject.fail_next (Session.injector s) Inject.At_commit;
  expect_error (Session.commit s |> Result.map (fun () -> Session.Done));
  Alcotest.check value "rolled back at commit" (Value.Float 45.0)
    (scalar s "SELECT rate FROM cars WHERE code = 1")

let test_stats () =
  let s = connect () in
  ignore (q s "SELECT * FROM cars");
  ignore (q s "UPDATE cars SET rate = 0 WHERE code = 1");
  ignore (Session.commit s);
  let st = Session.stats s in
  Alcotest.(check int) "statements" 2 st.Session.statements;
  Alcotest.(check int) "commits" 1 st.Session.commits

(* ---- properties ------------------------------------------------------------------ *)

let prop_update_rollback_identity =
  (* any UPDATE followed by ROLLBACK leaves the table unchanged *)
  let gen = QCheck.Gen.(pair (int_range 0 4) (int_range (-10) 10)) in
  QCheck.Test.make ~name:"update+rollback is identity" ~count:100 (QCheck.make gen)
    (fun (code, delta) ->
      let s = connect () in
      let before = rows_of (q s "SELECT * FROM cars") in
      let sql =
        Printf.sprintf "UPDATE cars SET rate = rate + %d WHERE code = %d" delta code
      in
      ignore (q s sql);
      ignore (Session.rollback s);
      let after = rows_of (q s "SELECT * FROM cars") in
      List.length before = List.length after
      && List.for_all2 Row.equal before after)

let prop_delete_then_count =
  let gen = QCheck.Gen.int_range 0 5 in
  QCheck.Test.make ~name:"delete count consistent" ~count:100 (QCheck.make gen)
    (fun code ->
      let s = connect () in
      let total = match scalar s "SELECT COUNT(*) FROM cars" with
        | Value.Int n -> n | _ -> 0
      in
      let deleted =
        affected (q s (Printf.sprintf "DELETE FROM cars WHERE code = %d" code))
      in
      let left = match scalar s "SELECT COUNT(*) FROM cars" with
        | Value.Int n -> n | _ -> -1
      in
      total = deleted + left)

let () =
  Alcotest.run "ldbms"
    [
      ( "select",
        [
          Alcotest.test_case "where" `Quick test_select_where;
          Alcotest.test_case "null 3vl" `Quick test_select_null_semantics;
          Alcotest.test_case "in/between" `Quick test_select_in_and_between;
          Alcotest.test_case "like" `Quick test_select_like;
          Alcotest.test_case "order/distinct" `Quick test_select_order_distinct;
          Alcotest.test_case "aggregates" `Quick test_select_aggregates;
          Alcotest.test_case "group by/having" `Quick test_group_by_having;
          Alcotest.test_case "joins" `Quick test_join_product;
          Alcotest.test_case "subqueries" `Quick test_subqueries;
          Alcotest.test_case "ambiguity" `Quick test_ambiguous_column;
          Alcotest.test_case "unknown objects" `Quick test_unknown_objects;
        ] );
      ( "dml",
        [
          Alcotest.test_case "insert" `Quick test_insert_variants;
          Alcotest.test_case "insert types" `Quick test_insert_type_checking;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "update pre-state" `Quick test_update_uses_pre_state;
          Alcotest.test_case "create/drop" `Quick test_create_drop;
          Alcotest.test_case "constraints" `Quick test_constraints;
          Alcotest.test_case "constraint ddl" `Quick test_constraint_roundtrip_in_ddl;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "rollback restores" `Quick test_rollback_restores;
          Alcotest.test_case "commit durable" `Quick test_commit_makes_durable;
          Alcotest.test_case "prepared blocks dml" `Quick test_prepare_then_commit;
          Alcotest.test_case "prepare rollback" `Quick test_prepare_rollback;
          Alcotest.test_case "ddl rollback (ingres)" `Quick test_ddl_rollback_ingres_like;
          Alcotest.test_case "ddl autocommit (oracle)" `Quick test_ddl_autocommit_oracle_like;
          Alcotest.test_case "autocommit engine" `Quick test_autocommit_engine;
          Alcotest.test_case "error aborts txn" `Quick test_semantic_error_aborts_txn;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "at execute" `Quick test_inject_execute;
          Alcotest.test_case "at prepare" `Quick test_inject_prepare;
          Alcotest.test_case "at commit" `Quick test_inject_commit;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_update_rollback_identity; prop_delete_then_count ] );
    ]
