module A = Msql.Ast
module P = Msql.Mparser
module S = Sqlfront.Ast

let parse_q s = P.parse_query s

let test_use_simple () =
  let q = parse_q "USE avis national SELECT code FROM cars" in
  Alcotest.(check int) "two dbs" 2 (List.length q.A.scope);
  Alcotest.(check (list string)) "names" [ "avis"; "national" ] (A.scope_db_names q);
  List.iter
    (fun u -> Alcotest.(check bool) "non-vital default" true (u.A.vital = A.Non_vital))
    q.A.scope

let test_use_vital () =
  let q =
    parse_q "USE continental VITAL delta united VITAL UPDATE flight% SET rate% = 1"
  in
  (match q.A.scope with
  | [ c; d; u ] ->
      Alcotest.(check bool) "cont vital" true (c.A.vital = A.Vital);
      Alcotest.(check bool) "delta non" true (d.A.vital = A.Non_vital);
      Alcotest.(check bool) "united vital" true (u.A.vital = A.Vital)
  | _ -> Alcotest.fail "scope arity")

let test_use_alias () =
  let q = parse_q "USE (continental cont) VITAL (delta d) SELECT a FROM t" in
  (match q.A.scope with
  | [ c; d ] ->
      Alcotest.(check (option string)) "alias" (Some "cont") c.A.alias;
      Alcotest.(check bool) "vital" true (c.A.vital = A.Vital);
      Alcotest.(check (option string)) "alias2" (Some "d") d.A.alias
  | _ -> Alcotest.fail "scope arity");
  Alcotest.(check bool) "find by alias" true
    (A.find_in_scope q.A.scope "cont" <> None);
  Alcotest.(check bool) "find by name" true
    (A.find_in_scope q.A.scope "delta" <> None)

let test_let () =
  let q =
    parse_q
      "USE avis national LET car.type.status BE cars.cartype.carst \
       vehicle.vty.vstat SELECT %code, type, ~rate FROM car WHERE status = 'available'"
  in
  (match q.A.lets with
  | [ { A.var_path; bindings } ] ->
      Alcotest.(check (list string)) "path" [ "car"; "type"; "status" ] var_path;
      Alcotest.(check int) "bindings" 2 (List.length bindings)
  | _ -> Alcotest.fail "one let expected");
  match q.A.body with
  | S.Select { projections = [ _; _; S.Proj_expr (S.Col { name = "~rate"; _ }, None) ]; _ } -> ()
  | _ -> Alcotest.fail "optional column token preserved"

let test_let_arity_mismatch () =
  match parse_q "USE a b LET x.y BE t.c u SELECT x FROM t" with
  | exception P.Error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_multiple_identifiers_lexing () =
  let q =
    parse_q
      "USE continental UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'"
  in
  match q.A.body with
  | S.Update { table = "flight%"; assignments = [ ("rate%", _) ]; where = Some _ } -> ()
  | _ -> Alcotest.fail "patterns preserved in body"

let test_comp_clause () =
  let q =
    parse_q
      "USE continental VITAL united VITAL UPDATE flight% SET rate% = rate% * 1.1 \
       COMP continental UPDATE flights SET rate = rate / 1.1"
  in
  (match q.A.comps with
  | [ { A.comp_db = "continental"; comp_stmt = S.Update _ } ] -> ()
  | _ -> Alcotest.fail "comp clause")

let test_multitransaction () =
  let t =
    P.parse_toplevel
      {|
BEGIN MULTITRANSACTION
  USE continental delta
  UPDATE flight% SET rate% = 1;
  USE avis national
  UPDATE %code SET client = 'x';
COMMIT
  continental AND national
  delta AND avis
END MULTITRANSACTION
|}
  in
  match t with
  | A.Multitransaction { queries; acceptable } ->
      Alcotest.(check int) "queries" 2 (List.length queries);
      Alcotest.(check (list (list string))) "states"
        [ [ "continental"; "national" ]; [ "delta"; "avis" ] ]
        acceptable
  | _ -> Alcotest.fail "expected multitransaction"

let test_incorporate () =
  let t =
    P.parse_toplevel
      "INCORPORATE SERVICE oracle1 SITE siteA CONNECTMODE CONNECT COMMITMODE \
       NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP COMMIT"
  in
  match t with
  | A.Incorporate i ->
      Alcotest.(check string) "service" "oracle1" i.A.inc_service;
      Alcotest.(check (option string)) "site" (Some "siteA") i.A.inc_site;
      Alcotest.(check bool) "2pc" true (i.A.inc_commitmode = A.Supports_prepare);
      Alcotest.(check bool) "create" false i.A.inc_create_commit;
      Alcotest.(check bool) "drop" true i.A.inc_drop_commit
  | _ -> Alcotest.fail "expected incorporate"

let test_incorporate_defaults_follow_commitmode () =
  match P.parse_toplevel "INCORPORATE SERVICE s COMMITMODE COMMIT" with
  | A.Incorporate i ->
      Alcotest.(check bool) "autocommit" true (i.A.inc_commitmode = A.Commits_automatically);
      Alcotest.(check bool) "create defaults to commit" true i.A.inc_create_commit
  | _ -> Alcotest.fail "expected incorporate"

let test_import () =
  (match P.parse_toplevel "IMPORT DATABASE avis FROM SERVICE avis" with
  | A.Import { imp_scope = A.Import_all; _ } -> ()
  | _ -> Alcotest.fail "import all");
  (match P.parse_toplevel "IMPORT DATABASE avis FROM SERVICE avis TABLE cars" with
  | A.Import { imp_scope = A.Import_table { itable = "cars"; icolumns = None }; _ } -> ()
  | _ -> Alcotest.fail "import table");
  match
    P.parse_toplevel "IMPORT DATABASE avis FROM SERVICE avis TABLE cars COLUMN code rate"
  with
  | A.Import { imp_scope = A.Import_table { icolumns = Some [ "code"; "rate" ]; _ }; _ } -> ()
  | _ -> Alcotest.fail "import columns"

let test_script_parsing () =
  let tls =
    P.parse_script
      "IMPORT DATABASE a FROM SERVICE a; USE a SELECT x FROM t; USE a b UPDATE t SET x = 1"
  in
  Alcotest.(check int) "three statements" 3 (List.length tls)

let test_parse_errors () =
  let bad =
    [ "USE"; "USE a LET x BE SELECT 1 FROM t"; "SELECT a FROM t";
      "BEGIN MULTITRANSACTION COMMIT a END MULTITRANSACTION";
      "BEGIN MULTITRANSACTION USE a UPDATE t SET x = 1; END MULTITRANSACTION";
      "USE a SELECT x FROM t COMP"; "INCORPORATE foo" ]
  in
  List.iter
    (fun s ->
      match P.parse_toplevel s with
      | exception P.Error _ -> ()
      | _ -> Alcotest.failf "expected error: %s" s)
    bad

let test_use_current_flag () =
  let q = parse_q "USE CURRENT avis SELECT code FROM cars" in
  Alcotest.(check bool) "current" true q.A.use_current;
  let q2 = parse_q "USE avis SELECT code FROM cars" in
  Alcotest.(check bool) "not current" false q2.A.use_current

let test_explain () =
  (match P.parse_toplevel "EXPLAIN USE avis SELECT code FROM cars" with
  | A.Explain (A.Query _) -> ()
  | _ -> Alcotest.fail "explain query");
  match
    P.parse_toplevel
      "EXPLAIN BEGIN MULTITRANSACTION USE a UPDATE t SET x = 1; COMMIT a END MULTITRANSACTION"
  with
  | A.Explain (A.Multitransaction _) -> ()
  | _ -> Alcotest.fail "explain mtx"

let test_retrieval_flag () =
  Alcotest.(check bool) "select" true
    (A.is_retrieval (parse_q "USE a SELECT x FROM t"));
  Alcotest.(check bool) "update" false
    (A.is_retrieval (parse_q "USE a UPDATE t SET x = 1"))

let () =
  Alcotest.run "msql-parser"
    [
      ( "use",
        [
          Alcotest.test_case "simple" `Quick test_use_simple;
          Alcotest.test_case "vital" `Quick test_use_vital;
          Alcotest.test_case "alias" `Quick test_use_alias;
          Alcotest.test_case "current flag" `Quick test_use_current_flag;
        ] );
      ( "let",
        [
          Alcotest.test_case "bindings" `Quick test_let;
          Alcotest.test_case "arity mismatch" `Quick test_let_arity_mismatch;
        ] );
      ( "body",
        [
          Alcotest.test_case "multiple identifiers" `Quick test_multiple_identifiers_lexing;
          Alcotest.test_case "comp clause" `Quick test_comp_clause;
          Alcotest.test_case "retrieval flag" `Quick test_retrieval_flag;
        ] );
      ( "toplevel",
        [
          Alcotest.test_case "multitransaction" `Quick test_multitransaction;
          Alcotest.test_case "incorporate" `Quick test_incorporate;
          Alcotest.test_case "incorporate defaults" `Quick test_incorporate_defaults_follow_commitmode;
          Alcotest.test_case "import" `Quick test_import;
          Alcotest.test_case "script" `Quick test_script_parsing;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
