(* Unit tests for the two dictionaries of §3.1: the Auxiliary Dictionary
   (service capabilities) and the Global Data Dictionary (imported
   schemas), independent of any live database. *)
open Sqlcore
module Ad = Msql.Ad
module Gdd = Msql.Gdd
module A = Msql.Ast

let col = Schema.column

(* ---- AD -------------------------------------------------------------------- *)

let incorporate_stmt =
  {
    A.inc_service = "oracle1";
    inc_site = Some "siteX";
    inc_connectmode = A.Connect_many;
    inc_commitmode = A.Supports_prepare;
    inc_create_commit = false;
    inc_insert_commit = false;
    inc_drop_commit = true;
  }

let test_ad_roundtrip () =
  let ad = Ad.create () in
  Ad.incorporate ad incorporate_stmt;
  (match Ad.find ad "ORACLE1" with
  | Some e ->
      Alcotest.(check bool) "2pc" true (Ad.supports_2pc e);
      Alcotest.(check (option string)) "site" (Some "siteX") e.Ad.site;
      Alcotest.(check bool) "drop commit" true e.Ad.drop_commit
  | None -> Alcotest.fail "entry missing");
  Alcotest.(check (list string)) "services" [ "oracle1" ] (Ad.services ad)

let test_ad_replace () =
  let ad = Ad.create () in
  Ad.incorporate ad incorporate_stmt;
  Ad.incorporate ad
    { incorporate_stmt with A.inc_commitmode = A.Commits_automatically };
  (match Ad.find ad "oracle1" with
  | Some e -> Alcotest.(check bool) "replaced" false (Ad.supports_2pc e)
  | None -> Alcotest.fail "entry missing");
  Alcotest.(check int) "still one" 1 (List.length (Ad.services ad))

let test_ad_of_capabilities () =
  let e =
    Ad.of_capabilities ~service:"s" ~site:"x" Ldbms.Capabilities.sybase_like
  in
  Alcotest.(check bool) "autocommit engine" false (Ad.supports_2pc e);
  Alcotest.(check bool) "insert commits" true e.Ad.insert_commit;
  let e2 = Ad.of_capabilities ~service:"s" Ldbms.Capabilities.ingres_like in
  Alcotest.(check bool) "2pc engine" true (Ad.supports_2pc e2);
  Alcotest.(check (option string)) "no site" None e2.Ad.site

(* ---- GDD ------------------------------------------------------------------- *)

let sample_gdd () =
  let g = Gdd.create () in
  Gdd.import_database g ~db:"avis"
    [ ("cars", [ col ~width:8 "code" Ty.Int; col "rate" Ty.Float ]);
      ("staff", [ col "sid" Ty.Int ]) ];
  g

let test_gdd_import_and_lookup () =
  let g = sample_gdd () in
  Alcotest.(check bool) "has db" true (Gdd.has_database g "AVIS");
  Alcotest.(check bool) "no other" false (Gdd.has_database g "hertz");
  (match Gdd.find_table g ~db:"avis" "CARS" with
  | Some schema ->
      Alcotest.(check int) "arity" 2 (Schema.arity schema);
      (* widths survive the import *)
      (match schema with
      | { Schema.width = Some 8; _ } :: _ -> ()
      | _ -> Alcotest.fail "width lost")
  | None -> Alcotest.fail "cars missing");
  Alcotest.(check (list string)) "tables sorted" [ "cars"; "staff" ]
    (List.map fst (Gdd.tables g ~db:"avis"))

let test_gdd_replace_and_forget () =
  let g = sample_gdd () in
  Gdd.import_table g ~db:"avis" ~table:"cars" [ col "only" Ty.Str ];
  (match Gdd.find_table g ~db:"avis" "cars" with
  | Some [ { Schema.name = "only"; _ } ] -> ()
  | _ -> Alcotest.fail "replace failed");
  Gdd.forget_database g "avis";
  Alcotest.(check bool) "forgotten" false (Gdd.has_database g "avis")

let test_gdd_partial_import () =
  let g = Gdd.create () in
  let schema = [ col "a" Ty.Int; col "b" Ty.Str; col "c" Ty.Float ] in
  Gdd.import_columns g ~db:"d" ~table:"t" schema [ "c"; "a" ];
  (match Gdd.find_table g ~db:"d" "t" with
  | Some s -> Alcotest.(check (list string)) "order kept" [ "c"; "a" ] (Schema.names s)
  | None -> Alcotest.fail "missing");
  match Gdd.import_columns g ~db:"d" ~table:"t" schema [ "nope" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bad column must fail"

let test_gdd_pattern_matching () =
  let g = sample_gdd () in
  Alcotest.(check int) "all tables" 2
    (List.length (Gdd.match_tables g ~db:"avis" ~pattern:"%"));
  Alcotest.(check int) "prefix" 1
    (List.length (Gdd.match_tables g ~db:"avis" ~pattern:"ca%"));
  Alcotest.(check int) "none" 0
    (List.length (Gdd.match_tables g ~db:"avis" ~pattern:"x%"));
  let schema = [ col "code" Ty.Int; col "vcode" Ty.Int; col "name" Ty.Str ] in
  Alcotest.(check (list string)) "column pattern" [ "code"; "vcode" ]
    (Gdd.match_columns schema ~pattern:"%code")

let test_gdd_unknown_db_empty () =
  let g = sample_gdd () in
  Alcotest.(check (list string)) "no tables" []
    (List.map fst (Gdd.tables g ~db:"hertz"));
  Alcotest.(check bool) "no match" true
    (Gdd.match_tables g ~db:"hertz" ~pattern:"%" = [])

let () =
  Alcotest.run "dictionaries"
    [
      ( "auxiliary dictionary",
        [
          Alcotest.test_case "roundtrip" `Quick test_ad_roundtrip;
          Alcotest.test_case "replace" `Quick test_ad_replace;
          Alcotest.test_case "of capabilities" `Quick test_ad_of_capabilities;
        ] );
      ( "global data dictionary",
        [
          Alcotest.test_case "import/lookup" `Quick test_gdd_import_and_lookup;
          Alcotest.test_case "replace/forget" `Quick test_gdd_replace_and_forget;
          Alcotest.test_case "partial import" `Quick test_gdd_partial_import;
          Alcotest.test_case "patterns" `Quick test_gdd_pattern_matching;
          Alcotest.test_case "unknown db" `Quick test_gdd_unknown_db_empty;
        ] );
    ]
