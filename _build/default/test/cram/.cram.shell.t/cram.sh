  $ ../../bin/msql_shell.exe --script demo.msql
  $ ../../bin/msql_shell.exe --script mtx.msql --stats
  $ ../../bin/msql_shell.exe --script admin.msql
