(* Local views: CREATE/DROP VIEW in the LDBMS, expansion in FROM clauses,
   transactional behaviour, and the IMPORT ... VIEW path of §3.1. *)
open Sqlcore
module Session = Ldbms.Session
module Caps = Ldbms.Capabilities
module F = Msql.Fixtures
module M = Msql.Msession

let value = Alcotest.testable Value.pp Value.equal

let fresh () =
  let db = Ldbms.Database.create "shop" in
  Ldbms.Database.load db ~name:"items"
    [ Schema.column "id" Ty.Int; Schema.column "price" Ty.Float;
      Schema.column "kind" Ty.Str ]
    [
      [| Value.Int 1; Value.Float 5.0; Value.Str "food" |];
      [| Value.Int 2; Value.Float 50.0; Value.Str "tool" |];
      [| Value.Int 3; Value.Float 7.5; Value.Str "food" |];
    ];
  db

let connect ?(caps = Caps.ingres_like) () = Session.connect (fresh ()) caps
let q s sql = Session.exec_sql s sql

let rows_of = function
  | Ok (Session.Rows r) -> Relation.rows r
  | Ok _ -> Alcotest.fail "expected rows"
  | Error m -> Alcotest.fail ("error: " ^ m)

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let test_create_and_select () =
  let s = connect () in
  (match q s "CREATE VIEW cheap AS SELECT id, price FROM items WHERE price < 10" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "two cheap items" 2
    (List.length (rows_of (q s "SELECT id FROM cheap")));
  (* views reflect base-table changes *)
  ignore (q s "UPDATE items SET price = 3 WHERE id = 2");
  Alcotest.(check int) "three now" 3
    (List.length (rows_of (q s "SELECT id FROM cheap")))

let test_view_with_alias_and_join () =
  let s = connect () in
  ignore (q s "CREATE VIEW food AS SELECT id, price FROM items WHERE kind = 'food'");
  Alcotest.(check int) "self join through view" 2
    (List.length
       (rows_of (q s "SELECT f.id FROM food f, items i WHERE f.id = i.id")))

let test_view_over_view () =
  let s = connect () in
  ignore (q s "CREATE VIEW cheap AS SELECT id, price, kind FROM items WHERE price < 10");
  ignore (q s "CREATE VIEW cheap_food AS SELECT id FROM cheap WHERE kind = 'food'");
  Alcotest.(check int) "stacked views" 2
    (List.length (rows_of (q s "SELECT id FROM cheap_food")))

let test_name_collisions () =
  let s = connect () in
  expect_error (q s "CREATE VIEW items AS SELECT id FROM items");
  ignore (q s "CREATE VIEW v AS SELECT id FROM items");
  (* commit: the engine aborts the whole transaction on a failed statement,
     which would otherwise undo the CREATE VIEW too *)
  (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
  expect_error (q s "CREATE VIEW v AS SELECT id FROM items");
  expect_error (q s "CREATE TABLE v (a INT)")

let test_invalid_definition_rejected () =
  let s = connect () in
  expect_error (q s "CREATE VIEW broken AS SELECT nonexistent FROM items");
  expect_error (q s "SELECT * FROM broken")

let test_drop_view () =
  let s = connect () in
  ignore (q s "CREATE VIEW v AS SELECT id FROM items");
  (match q s "DROP VIEW v" with Ok _ -> () | Error m -> Alcotest.fail m);
  expect_error (q s "SELECT * FROM v");
  expect_error (q s "DROP VIEW v")

let test_view_ddl_rollback () =
  let s = connect () in
  ignore (q s "CREATE VIEW v AS SELECT id FROM items");
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  (* ingres-like: the CREATE VIEW was rolled back *)
  expect_error (q s "SELECT * FROM v")

let test_view_ddl_autocommit () =
  let s = connect ~caps:Caps.oracle_like () in
  ignore (q s "CREATE VIEW v AS SELECT id FROM items");
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "view survived" 3
    (List.length (rows_of (q s "SELECT * FROM v")))

let test_update_through_view_rejected () =
  let s = connect () in
  ignore (q s "CREATE VIEW v AS SELECT id FROM items");
  (* views are not updatable in this engine *)
  expect_error (q s "UPDATE v SET id = 9");
  expect_error (q s "INSERT INTO v VALUES (9)")

(* ---- IMPORT ... VIEW through MSQL -------------------------------------------- *)

let test_import_view_and_query () =
  let fx = F.make () in
  (* define a view locally at avis, as the DBA of the autonomous LDBS *)
  let avis = F.database fx "avis" in
  let session = Ldbms.Session.connect avis Caps.ingres_like in
  (match
     Ldbms.Session.exec_sql session
       "CREATE VIEW fleet AS SELECT code, cartype FROM cars WHERE carst = 'available'"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Ldbms.Session.commit session with Ok () -> () | Error m -> Alcotest.fail m);
  (* export it to the multidatabase level *)
  (match M.exec fx.F.session "IMPORT DATABASE avis FROM SERVICE avis VIEW fleet" with
  | Ok (M.Info _) -> ()
  | Ok _ -> Alcotest.fail "expected info"
  | Error m -> Alcotest.fail m);
  (match Msql.Gdd.find_table (M.gdd fx.F.session) ~db:"avis" "fleet" with
  | Some schema ->
      Alcotest.(check (list string)) "schema" [ "code"; "cartype" ]
        (Schema.names schema)
  | None -> Alcotest.fail "fleet not imported");
  (* and query it through MSQL like any table *)
  match M.exec fx.F.session "USE avis SELECT code FROM fleet" with
  | Ok (M.Multitable mt) ->
      let rel = Option.get (Msql.Multitable.find mt "avis") in
      Alcotest.(check int) "three available" 3 (Relation.cardinality rel)
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let test_view_rows_values () =
  let s = connect () in
  ignore (q s "CREATE VIEW total AS SELECT kind, SUM(price) FROM items GROUP BY kind");
  match rows_of (q s "SELECT * FROM total ORDER BY kind") with
  | [ [| Value.Str "food"; food |]; [| Value.Str "tool"; tool |] ] ->
      Alcotest.check value "food sum" (Value.Float 12.5) food;
      Alcotest.check value "tool sum" (Value.Float 50.0) tool
  | _ -> Alcotest.fail "unexpected view contents"

let () =
  Alcotest.run "views"
    [
      ( "local",
        [
          Alcotest.test_case "create/select" `Quick test_create_and_select;
          Alcotest.test_case "alias and join" `Quick test_view_with_alias_and_join;
          Alcotest.test_case "view over view" `Quick test_view_over_view;
          Alcotest.test_case "name collisions" `Quick test_name_collisions;
          Alcotest.test_case "invalid definition" `Quick test_invalid_definition_rejected;
          Alcotest.test_case "drop" `Quick test_drop_view;
          Alcotest.test_case "ddl rollback" `Quick test_view_ddl_rollback;
          Alcotest.test_case "ddl autocommit" `Quick test_view_ddl_autocommit;
          Alcotest.test_case "not updatable" `Quick test_update_through_view_rejected;
          Alcotest.test_case "aggregate view" `Quick test_view_rows_values;
        ] );
      ( "import",
        [ Alcotest.test_case "import view via MSQL" `Quick test_import_view_and_query ] );
    ]
