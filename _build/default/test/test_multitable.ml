(* Multitable semantics and the §2 multiple-table built-ins, plus
   end-to-end property tests over random failure configurations. *)
open Sqlcore
module Mt = Msql.Multitable
module F = Msql.Fixtures
module M = Msql.Msession
module D = Narada.Dol_ast
module Inject = Ldbms.Failure_injector

let value = Alcotest.testable Value.pp Value.equal

let part db names rows =
  {
    Mt.part_db = db;
    part_table =
      Relation.make
        (List.map (fun (n, ty) -> Schema.column n ty) names)
        (List.map Row.of_list rows);
  }

let sample =
  Mt.make
    [
      part "avis" [ ("code", Ty.Int); ("rate", Ty.Float) ]
        [ [ Value.Int 1; Value.Float 40.0 ];
          [ Value.Int 2; Value.Float 60.0 ];
          [ Value.Int 3; Value.Null ] ];
      part "national" [ ("vcode", Ty.Int); ("rate", Ty.Float) ]
        [ [ Value.Int 11; Value.Float 30.0 ] ];
      part "hertz" [ ("hid", Ty.Int) ] [ [ Value.Int 7 ] ];
    ]

let test_basics () =
  Alcotest.(check (list string)) "dbs" [ "avis"; "national"; "hertz" ]
    (Mt.databases sample);
  Alcotest.(check int) "total rows" 5 (Mt.total_count sample);
  Alcotest.(check bool) "not empty" false (Mt.is_empty sample)

let test_aggregate_across_parts () =
  Alcotest.check value "count skips null and missing" (Value.Int 3)
    (Mt.aggregate sample Mt.Count ~column:"rate");
  Alcotest.check value "sum" (Value.Float 130.0)
    (Mt.aggregate sample Mt.Sum ~column:"rate");
  Alcotest.check value "min" (Value.Float 30.0)
    (Mt.aggregate sample Mt.Min ~column:"rate");
  Alcotest.check value "max" (Value.Float 60.0)
    (Mt.aggregate sample Mt.Max ~column:"rate");
  (match Mt.aggregate sample Mt.Avg ~column:"rate" with
  | Value.Float f -> Alcotest.(check (float 1e-6)) "avg" (130.0 /. 3.0) f
  | _ -> Alcotest.fail "avg type");
  Alcotest.check value "unknown column" Value.Null
    (Mt.aggregate sample Mt.Sum ~column:"ghost")

let test_aggregate_per_part () =
  match Mt.aggregate_per_part sample Mt.Count ~column:"rate" with
  | [ ("avis", Value.Int 2); ("national", Value.Int 1) ] -> ()
  | _ -> Alcotest.fail "per-part counts"

let test_restrict () =
  let only = Mt.restrict sample (fun db -> db = "hertz") in
  Alcotest.(check (list string)) "restricted" [ "hertz" ] (Mt.databases only)

let test_flatten_incompatible () =
  Alcotest.(check bool) "mixed shapes" true (Mt.flatten sample = None);
  let compat = Mt.restrict sample (fun db -> db <> "hertz") in
  match Mt.flatten compat with
  | Some rel -> Alcotest.(check int) "flattened" 4 (Relation.cardinality rel)
  | None -> Alcotest.fail "compatible parts must flatten"

let test_find_unions_multi_parts () =
  let doubled =
    Mt.make
      [
        part "avis" [ ("x", Ty.Int) ] [ [ Value.Int 1 ] ];
        part "avis" [ ("x", Ty.Int) ] [ [ Value.Int 2 ] ];
      ]
  in
  match Mt.find doubled "avis" with
  | Some rel -> Alcotest.(check int) "united" 2 (Relation.cardinality rel)
  | None -> Alcotest.fail "missing part"

(* ---- end-to-end properties over random failures -------------------------------- *)

(* Inject a random subset of execute/prepare failures into a vital update:
   the outcome must never be Incorrect (only commit-phase failures can
   split the vital set), and Aborted implies all airline rates unchanged. *)
let prop_no_incorrect_without_commit_failures =
  let gen = QCheck.Gen.(array_size (return 3) (int_bound 2)) in
  (* per db: 0 = no failure, 1 = fail execute, 2 = fail prepare *)
  QCheck.Test.make ~name:"incorrect needs a commit-phase failure" ~count:60
    (QCheck.make gen) (fun spec ->
      let fx = F.make () in
      let dbs = [| "continental"; "delta"; "united" |] in
      Array.iteri
        (fun i mode ->
          let inj =
            (Narada.Directory.find fx.F.directory dbs.(i)).Narada.Service.injector
          in
          match mode with
          | 1 -> Inject.fail_next inj Inject.At_execute
          | 2 -> Inject.fail_next inj Inject.At_prepare
          | _ -> ())
        spec;
      match
        M.exec fx.F.session
          {|USE continental VITAL delta united VITAL
            UPDATE flight% SET rate% = rate% * 1.1
            WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}
      with
      | Ok (M.Update_report { outcome; _ }) -> outcome <> M.Incorrect
      | Ok _ -> false
      | Error _ -> false)

let rates_of fx db table col =
  List.map (fun row -> row.(col)) (Relation.rows (F.scan fx ~db ~table))

let prop_aborted_restores_vital_state =
  let gen = QCheck.Gen.(pair (int_bound 1) (int_bound 1)) in
  (* which vital db fails at execute: continental and/or united *)
  QCheck.Test.make ~name:"aborted implies vital state restored" ~count:40
    (QCheck.make gen) (fun (fail_cont, fail_united) ->
      QCheck.assume (fail_cont = 1 || fail_united = 1);
      let fx = F.make () in
      let before_c = rates_of fx "continental" "flights" 6 in
      let before_u = rates_of fx "united" "flight" 6 in
      let inject db =
        Inject.fail_next
          (Narada.Directory.find fx.F.directory db).Narada.Service.injector
          Inject.At_execute
      in
      if fail_cont = 1 then inject "continental";
      if fail_united = 1 then inject "united";
      match
        M.exec fx.F.session
          {|USE continental VITAL united VITAL
            UPDATE flight% SET rate% = rate% * 1.1
            WHERE sour% = 'Houston'|}
      with
      | Ok (M.Update_report { outcome = M.Aborted; _ }) ->
          rates_of fx "continental" "flights" 6 = before_c
          && rates_of fx "united" "flight" 6 = before_u
      | Ok _ | Error _ -> false)

let prop_mtx_exclusion_invariant =
  (* whatever fails, a committed mtx never leaves both alternatives
     committed: continental and delta are mutually exclusive *)
  let gen = QCheck.Gen.(int_bound 3) in
  QCheck.Test.make ~name:"mtx never commits both alternatives" ~count:40
    (QCheck.make gen) (fun mode ->
      let fx = F.make () in
      let inject db p =
        Inject.fail_next
          (Narada.Directory.find fx.F.directory db).Narada.Service.injector p
      in
      (match mode with
      | 1 -> inject "continental" Inject.At_execute
      | 2 -> inject "delta" Inject.At_execute
      | 3 ->
          inject "continental" Inject.At_execute;
          inject "delta" Inject.At_execute
      | _ -> ());
      match
        M.exec fx.F.session
          {|BEGIN MULTITRANSACTION
              USE continental delta
              LET fltab.sstat BE f838.seatstatus f747.sstat
              UPDATE fltab SET sstat = 'HOLD' WHERE sstat = 'FREE';
            COMMIT
              continental
              delta
            END MULTITRANSACTION|}
      with
      | Ok (M.Mtx_report { details; _ }) ->
          let committed db =
            List.exists
              (fun r -> r.M.rdb = db && r.M.rstatus = D.C)
              details
          in
          not (committed "continental" && committed "delta")
      | Ok _ | Error _ -> false)

let () =
  Alcotest.run "multitable"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "flatten" `Quick test_flatten_incompatible;
          Alcotest.test_case "find unions" `Quick test_find_unions_multi_parts;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "aggregate across" `Quick test_aggregate_across_parts;
          Alcotest.test_case "aggregate per part" `Quick test_aggregate_per_part;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_no_incorrect_without_commit_failures;
            prop_aborted_restores_vital_state;
            prop_mtx_exclusion_invariant;
          ] );
    ]
