module World = Netsim.World
module Site = Netsim.Site

let make_world () =
  let w = World.create () in
  World.add_site w (Site.make ~latency_ms:10.0 ~per_byte_ms:0.001 "alpha");
  World.add_site w (Site.make ~latency_ms:20.0 ~per_byte_ms:0.002 "beta");
  w

let test_site_cost () =
  let s = Site.make ~latency_ms:5.0 ~per_byte_ms:0.01 "x" in
  Alcotest.(check (float 1e-9)) "cost" 7.0 (Site.message_cost_ms s ~bytes:200)

let test_send_advances_clock () =
  let w = make_world () in
  World.send w ~src:"mdbs" ~dst:"alpha" ~bytes:1000;
  (* mdbs is free; alpha: 10 + 1000*0.001 = 11 *)
  Alcotest.(check (float 1e-9)) "clock" 11.0 (World.now_ms w);
  World.send w ~src:"alpha" ~dst:"beta" ~bytes:0;
  Alcotest.(check (float 1e-9)) "clock2" (11.0 +. 30.0) (World.now_ms w)

let test_stats () =
  let w = make_world () in
  World.send w ~src:"mdbs" ~dst:"alpha" ~bytes:100;
  World.send w ~src:"mdbs" ~dst:"beta" ~bytes:50;
  let st = World.stats w in
  Alcotest.(check int) "messages" 2 st.World.messages;
  Alcotest.(check int) "bytes" 150 st.World.bytes_moved;
  World.reset_stats w;
  Alcotest.(check int) "reset" 0 (World.stats w).World.messages

let test_unknown_site () =
  let w = make_world () in
  Alcotest.check_raises "unknown" (World.Unknown_site "gamma") (fun () ->
      World.send w ~src:"mdbs" ~dst:"gamma" ~bytes:1)

let test_site_down () =
  let w = make_world () in
  World.set_down w "alpha" true;
  Alcotest.(check bool) "down" true (World.is_down w "alpha");
  Alcotest.check_raises "send fails" (World.Site_down "alpha") (fun () ->
      World.send w ~src:"mdbs" ~dst:"alpha" ~bytes:1);
  World.set_down w "alpha" false;
  World.send w ~src:"mdbs" ~dst:"alpha" ~bytes:1;
  Alcotest.(check bool) "recovered" true (World.now_ms w > 0.0)

let test_parallel_max_semantics () =
  let w = make_world () in
  let slow () = World.advance_ms w 100.0 in
  let fast () = World.advance_ms w 10.0 in
  ignore (World.parallel w [ slow; fast; fast ]);
  Alcotest.(check (float 1e-9)) "max not sum" 100.0 (World.now_ms w)

let test_parallel_sequential_contrast () =
  let w = make_world () in
  let task () = World.advance_ms w 50.0 in
  task (); task ();
  Alcotest.(check (float 1e-9)) "sequential sums" 100.0 (World.now_ms w);
  World.reset_clock w;
  ignore (World.parallel w [ task; task ]);
  Alcotest.(check (float 1e-9)) "parallel maxes" 50.0 (World.now_ms w)

let test_parallel_results_in_order () =
  let w = make_world () in
  let r = World.parallel w [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] r

let prop_parallel_le_sequential =
  let gen = QCheck.Gen.(list_size (1 -- 6) (float_bound_exclusive 50.0)) in
  QCheck.Test.make ~name:"parallel time <= sequential time" ~count:100
    (QCheck.make gen) (fun durations ->
      let w = World.create () in
      List.iter (fun d -> World.advance_ms w d) durations;
      let seq = World.now_ms w in
      World.reset_clock w;
      ignore
        (World.parallel w (List.map (fun d () -> World.advance_ms w d) durations));
      World.now_ms w <= seq +. 1e-9)

let () =
  Alcotest.run "netsim"
    [
      ( "world",
        [
          Alcotest.test_case "site cost" `Quick test_site_cost;
          Alcotest.test_case "send advances clock" `Quick test_send_advances_clock;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "unknown site" `Quick test_unknown_site;
          Alcotest.test_case "site down" `Quick test_site_down;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "max semantics" `Quick test_parallel_max_semantics;
          Alcotest.test_case "vs sequential" `Quick test_parallel_sequential_contrast;
          Alcotest.test_case "result order" `Quick test_parallel_results_in_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_parallel_le_sequential ] );
    ]
