(* Declared indexes: lifecycle, the equality fast path's correctness, and
   its interaction with transactions. *)
open Sqlcore
module Session = Ldbms.Session
module Caps = Ldbms.Capabilities

let big_db n =
  let db = Ldbms.Database.create "warehouse" in
  Ldbms.Database.load db ~name:"stock"
    [ Schema.column "sku" Ty.Int; Schema.column "bin" Ty.Str;
      Schema.column "qty" Ty.Int ]
    (List.init n (fun i ->
         [| Value.Int i; Value.Str (Printf.sprintf "bin%d" (i mod 17));
            Value.Int (i mod 5) |]));
  db

let connect ?(n = 500) () = Session.connect (big_db n) Caps.ingres_like
let q s sql = Session.exec_sql s sql

let rows_of = function
  | Ok (Session.Rows r) -> Relation.rows r
  | Ok _ -> Alcotest.fail "expected rows"
  | Error m -> Alcotest.fail ("error: " ^ m)

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let test_lifecycle () =
  let s = connect () in
  (match q s "CREATE INDEX by_sku ON stock (sku)" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (* commit: a failed statement aborts the transaction, which would undo
     the CREATE INDEX too *)
  (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
  expect_error (q s "CREATE INDEX by_sku ON stock (bin)");
  expect_error (q s "CREATE INDEX broken ON stock (nonexistent)");
  expect_error (q s "CREATE INDEX broken ON nonexistent (sku)");
  (match q s "DROP INDEX by_sku" with Ok _ -> () | Error m -> Alcotest.fail m);
  expect_error (q s "DROP INDEX by_sku")

let test_lookup_correctness () =
  (* indexed and unindexed runs must agree, including after updates *)
  let s_idx = connect () in
  ignore (q s_idx "CREATE INDEX by_bin ON stock (bin)");
  let s_plain = connect () in
  let compare_on sql =
    let a = rows_of (q s_idx sql) and b = rows_of (q s_plain sql) in
    Alcotest.(check int) ("cardinality: " ^ sql) (List.length b) (List.length a);
    List.iter2
      (fun x y -> Alcotest.(check bool) "row" true (Row.equal x y))
      a b
  in
  compare_on "SELECT sku FROM stock WHERE bin = 'bin3'";
  compare_on "SELECT sku FROM stock WHERE bin = 'bin3' AND qty > 2";
  compare_on "SELECT sku FROM stock WHERE 'bin3' = bin ORDER BY sku DESC";
  compare_on "SELECT COUNT(*) FROM stock WHERE bin = 'nope'";
  (* mutate both identically; caches must refresh *)
  ignore (q s_idx "UPDATE stock SET bin = 'bin3' WHERE sku = 1");
  ignore (q s_plain "UPDATE stock SET bin = 'bin3' WHERE sku = 1");
  compare_on "SELECT sku FROM stock WHERE bin = 'bin3'";
  ignore (q s_idx "DELETE FROM stock WHERE bin = 'bin3'");
  ignore (q s_plain "DELETE FROM stock WHERE bin = 'bin3'");
  compare_on "SELECT sku FROM stock WHERE bin = 'bin3'"

let test_alias_and_qualified () =
  let s = connect () in
  ignore (q s "CREATE INDEX by_bin ON stock (bin)");
  Alcotest.(check int) "qualified through alias"
    (List.length (rows_of (q s "SELECT sku FROM stock WHERE bin = 'bin1'")))
    (List.length (rows_of (q s "SELECT t.sku FROM stock t WHERE t.bin = 'bin1'")))

let test_index_does_not_match_null () =
  let s = connect ~n:3 () in
  ignore (q s "INSERT INTO stock VALUES (99, NULL, 1)");
  ignore (q s "CREATE INDEX by_bin ON stock (bin)");
  Alcotest.(check int) "NULL = NULL never matches" 0
    (List.length (rows_of (q s "SELECT sku FROM stock WHERE bin = NULL")))

let test_create_index_rollback () =
  let s = connect () in
  ignore (q s "CREATE INDEX by_bin ON stock (bin)");
  (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
  (* ingres-like: rolled back; creating it again must succeed *)
  match q s "CREATE INDEX by_bin ON stock (bin)" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let test_lookup_eq_directly () =
  let db = big_db 50 in
  let tbl = Ldbms.Database.find_table db "stock" in
  let hits = Ldbms.Table.lookup_eq tbl ~col:1 (Value.Str "bin4") in
  Alcotest.(check int) "hash hits" 3 (List.length hits);
  (* preserves insertion order *)
  (match hits with
  | [| Value.Int a; _; _ |] :: [| Value.Int b; _; _ |] :: _ ->
      Alcotest.(check bool) "ascending skus" true (a < b)
  | _ -> Alcotest.fail "shape");
  Alcotest.(check int) "null never matches" 0
    (List.length (Ldbms.Table.lookup_eq tbl ~col:1 Value.Null))

let prop_indexed_equals_scan =
  let gen = QCheck.Gen.(pair (int_bound 20) (int_bound 6)) in
  QCheck.Test.make ~name:"indexed select equals scan" ~count:100
    (QCheck.make gen) (fun (bin, qty) ->
      let sql =
        Printf.sprintf
          "SELECT sku FROM stock WHERE bin = 'bin%d' AND qty <> %d" bin qty
      in
      let s1 = connect ~n:120 () in
      ignore (q s1 "CREATE INDEX i ON stock (bin)");
      let s2 = connect ~n:120 () in
      rows_of (q s1 sql) = rows_of (q s2 sql))

let () =
  Alcotest.run "indexes"
    [
      ( "index",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "correctness" `Quick test_lookup_correctness;
          Alcotest.test_case "alias" `Quick test_alias_and_qualified;
          Alcotest.test_case "null" `Quick test_index_does_not_match_null;
          Alcotest.test_case "rollback" `Quick test_create_index_rollback;
          Alcotest.test_case "lookup_eq" `Quick test_lookup_eq_directly;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_indexed_equals_scan ] );
    ]
