(* Multitransaction semantics (§3.4) beyond the paper's worked example:
   state preference order, exclusion, compensation of committed autocommit
   subqueries, aliasing, and specification errors. *)
open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession
module D = Narada.Dol_ast
module Inject = Ldbms.Failure_injector

let inject fx db point =
  Inject.fail_next
    (Narada.Directory.find fx.F.directory db).Narada.Service.injector point

let exec fx sql =
  match M.exec fx.F.session sql with
  | Ok r -> r
  | Error m -> Alcotest.fail ("MSQL error: " ^ m)

let mtx_report fx sql =
  match exec fx sql with
  | M.Mtx_report { chosen; incorrect; details; _ } -> (chosen, incorrect, details)
  | r -> Alcotest.fail ("expected mtx report, got " ^ M.result_to_string r)

let status details db =
  match List.find_opt (fun r -> r.M.rdb = db) details with
  | Some r -> r.M.rstatus
  | None -> D.N

(* reserve a seat on either airline; prefer continental *)
let seat_mtx = {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
COMMIT
  continental
  delta
END MULTITRANSACTION
|}

let test_prefers_first_state () =
  let fx = F.make () in
  let chosen, incorrect, details = mtx_report fx seat_mtx in
  Alcotest.(check (option int)) "first" (Some 0) chosen;
  Alcotest.(check bool) "correct" false incorrect;
  Alcotest.(check bool) "continental C" true (status details "continental" = D.C);
  (* exclusion: delta must be rolled back even though it succeeded *)
  Alcotest.(check bool) "delta excluded" true (status details "delta" = D.A)

let test_falls_back_when_preferred_fails () =
  let fx = F.make () in
  inject fx "continental" Inject.At_execute;
  let chosen, incorrect, details = mtx_report fx seat_mtx in
  Alcotest.(check (option int)) "second" (Some 1) chosen;
  Alcotest.(check bool) "correct" false incorrect;
  Alcotest.(check bool) "delta C" true (status details "delta" = D.C)

let test_all_fail () =
  let fx = F.make () in
  inject fx "continental" Inject.At_execute;
  inject fx "delta" Inject.At_execute;
  let chosen, incorrect, _ = mtx_report fx seat_mtx in
  Alcotest.(check (option int)) "none" None chosen;
  Alcotest.(check bool) "clean failure" false incorrect

let test_aliases_in_states () =
  let fx = F.make () in
  let sql = {|
BEGIN MULTITRANSACTION
  USE (continental c1) (delta d1)
  LET fltab.sstat BE f838.seatstatus f747.sstat
  UPDATE fltab SET sstat = 'HOLD' WHERE sstat = 'FREE';
COMMIT
  c1
  d1
END MULTITRANSACTION
|} in
  let chosen, _, details = mtx_report fx sql in
  Alcotest.(check (option int)) "first via alias" (Some 0) chosen;
  Alcotest.(check bool) "continental C" true (status details "continental" = D.C)

let test_conjunction_requires_all () =
  (* acceptable state is continental AND delta: if delta fails, fail all *)
  let fx = F.make () in
  inject fx "delta" Inject.At_execute;
  let sql = {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.sstat BE f838.seatstatus f747.sstat
  UPDATE fltab SET sstat = 'HOLD' WHERE sstat = 'FREE';
COMMIT
  continental AND delta
END MULTITRANSACTION
|} in
  let chosen, incorrect, details = mtx_report fx sql in
  Alcotest.(check (option int)) "none" None chosen;
  Alcotest.(check bool) "clean" false incorrect;
  Alcotest.(check bool) "continental rolled back" true
    (status details "continental" = D.A);
  (* data assertion: no HOLD seats anywhere *)
  let seats = F.scan fx ~db:"continental" ~table:"f838" in
  List.iter
    (fun row ->
      Alcotest.(check bool) "no hold" false (Value.equal row.(2) (Value.Str "HOLD")))
    (Relation.rows seats)

let test_autocommit_participant_compensated_on_exclusion () =
  (* avis runs on an autocommit engine with a COMP clause; when the state
     machine excludes it, its committed effects are compensated *)
  let caps = [ ("avis", Ldbms.Capabilities.sybase_like) ] in
  let fx = F.make ~caps () in
  let sql = {|
BEGIN MULTITRANSACTION
  USE avis national
  LET cartab.ccode.cstat BE cars.code.carst vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available')
  COMP avis
  UPDATE cars SET carst = 'available' WHERE carst = 'TAKEN';
COMMIT
  national
  avis
END MULTITRANSACTION
|} in
  let chosen, incorrect, details = mtx_report fx sql in
  Alcotest.(check (option int)) "national preferred" (Some 0) chosen;
  Alcotest.(check bool) "correct" false incorrect;
  Alcotest.(check bool) "avis compensated" true (status details "avis" = D.X);
  (* data: car 1 is available again, vehicle 11 is taken *)
  let cars = F.scan fx ~db:"avis" ~table:"cars" in
  List.iter
    (fun row ->
      Alcotest.(check bool) "no taken car" false
        (Value.equal row.(3) (Value.Str "TAKEN")))
    (Relation.rows cars);
  let vehicles = F.scan fx ~db:"national" ~table:"vehicle" in
  Alcotest.(check bool) "vehicle taken" true
    (List.exists
       (fun row -> Value.equal row.(2) (Value.Str "TAKEN"))
       (Relation.rows vehicles))

let test_autocommit_without_comp_not_excludable () =
  (* without a COMP clause a committed autocommit participant cannot be
     excluded: preferring national is impossible once avis committed *)
  let caps = [ ("avis", Ldbms.Capabilities.sybase_like) ] in
  let fx = F.make ~caps () in
  let sql = {|
BEGIN MULTITRANSACTION
  USE avis national
  LET cartab.cstat BE cars.carst vehicle.vstat
  UPDATE cartab SET cstat = 'HOLD' WHERE cstat = 'available';
COMMIT
  national
END MULTITRANSACTION
|} in
  let chosen, incorrect, details = mtx_report fx sql in
  (* avis committed and cannot be undone: the only acceptable state is
     unreachable and the result is an incorrect mixed execution *)
  Alcotest.(check (option int)) "no state" None chosen;
  Alcotest.(check bool) "incorrect" true incorrect;
  Alcotest.(check bool) "avis stuck committed" true (status details "avis" = D.C)

let test_db_in_two_queries_rejected () =
  let fx = F.make () in
  let sql = {|
BEGIN MULTITRANSACTION
  USE continental
  UPDATE flights SET rate = rate * 1.1;
  USE continental
  UPDATE flights SET rate = rate * 0.9;
COMMIT
  continental
END MULTITRANSACTION
|} in
  match M.exec fx.F.session sql with
  | Error m -> Alcotest.(check bool) "explains" true
      (Astring_contains.contains m "several queries")
  | Ok _ -> Alcotest.fail "expected rejection"

let test_unknown_db_in_state_rejected () =
  let fx = F.make () in
  let sql = {|
BEGIN MULTITRANSACTION
  USE continental
  UPDATE flights SET rate = rate * 1.1;
COMMIT
  sabena
END MULTITRANSACTION
|} in
  match M.exec fx.F.session sql with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection"

let test_paper_exclusion_is_implicit_not () =
  (* the state "continental AND national" implies NOT delta AND NOT avis *)
  let fx = F.make () in
  let sql = {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.sstat BE f838.seatstatus f747.sstat
  UPDATE fltab SET sstat = 'HOLD' WHERE sstat = 'FREE';
  USE avis national
  LET cartab.cstat BE cars.carst vehicle.vstat
  UPDATE cartab SET cstat = 'HOLD' WHERE cstat = 'available';
COMMIT
  continental AND national
END MULTITRANSACTION
|} in
  let chosen, _, details = mtx_report fx sql in
  Alcotest.(check (option int)) "reached" (Some 0) chosen;
  Alcotest.(check bool) "delta excluded" true (status details "delta" = D.A);
  Alcotest.(check bool) "avis excluded" true (status details "avis" = D.A);
  Alcotest.(check bool) "national in" true (status details "national" = D.C);
  (* delta's seats must show no HOLD rows *)
  let dseats = F.scan fx ~db:"delta" ~table:"f747" in
  List.iter
    (fun row ->
      Alcotest.(check bool) "delta clean" false
        (Value.equal row.(2) (Value.Str "HOLD")))
    (Relation.rows dseats)

let () =
  Alcotest.run "mtx"
    [
      ( "states",
        [
          Alcotest.test_case "prefers first" `Quick test_prefers_first_state;
          Alcotest.test_case "falls back" `Quick test_falls_back_when_preferred_fails;
          Alcotest.test_case "all fail" `Quick test_all_fail;
          Alcotest.test_case "aliases" `Quick test_aliases_in_states;
          Alcotest.test_case "conjunction" `Quick test_conjunction_requires_all;
          Alcotest.test_case "implicit exclusion" `Quick test_paper_exclusion_is_implicit_not;
        ] );
      ( "compensation",
        [
          Alcotest.test_case "excluded autocommit compensated" `Quick
            test_autocommit_participant_compensated_on_exclusion;
          Alcotest.test_case "no comp means stuck" `Quick
            test_autocommit_without_comp_not_excludable;
        ] );
      ( "errors",
        [
          Alcotest.test_case "db twice" `Quick test_db_in_two_queries_rejected;
          Alcotest.test_case "unknown state db" `Quick test_unknown_db_in_state_rejected;
        ] );
    ]
