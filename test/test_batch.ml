(* The columnar data plane: batch layout and kernels against their
   row-at-a-time references, randomized differential fuzz of the compiled
   predicate tiers against the interpreted Eval walker, and chunk-size
   invariance of the streamed MOVE path (results, traffic, metrics). *)
open Sqlcore
module M = Msql.Msession
module Trace = Narada.Trace
module Ast = Sqlfront.Ast
module Eval = Ldbms.Eval
module Compile = Ldbms.Compile

let col = Schema.column
let s x = Value.Str x
let i x = Value.Int x
let f x = Value.Float x

(* a schema exercising every column class, including values the batch
   layer must keep exact: ints above 2^53 and a column mixing Int with
   Float (which must stay Boxed) *)
let wide_schema =
  [
    col "id" Ty.Int;
    col "price" Ty.Float;
    col ~width:12 "origin" Ty.Str;
    col "ok" Ty.Bool;
    col "mixed" Ty.Int;
    col "ghost" Ty.Str;
  ]

let big = (1 lsl 53) + 1

let wide_rows =
  [
    [| i 1; f 10.5; s "domestic"; Value.Bool true; i big; Value.Null |];
    [| i 2; Value.Null; s "imported"; Value.Bool false; f 2.5; Value.Null |];
    [| i big; f 0.0; Value.Null; Value.Null; i 3; Value.Null |];
    [| i (-4); f (-1.25); s ""; Value.Bool true; f (float_of_int big); Value.Null |];
  ]

let wide () = Batch.of_rows wide_schema wide_rows

(* ---- layout ----------------------------------------------------------- *)

let test_roundtrip () =
  let b = wide () in
  Alcotest.(check int) "length" 4 (Batch.length b);
  Alcotest.(check bool) "to_rows round-trips exactly" true
    (Batch.to_rows b = wide_rows);
  (* empty batches round-trip too, typed from the schema *)
  let e = Batch.of_rows wide_schema [] in
  Alcotest.(check int) "empty length" 0 (Batch.length e);
  Alcotest.(check bool) "empty to_rows" true (Batch.to_rows e = [])

let test_column_classes () =
  let b = wide () in
  let class_of j =
    match b.Batch.cols.(j).Batch.data with
    | Batch.Ints _ -> "ints"
    | Batch.Floats _ -> "floats"
    | Batch.Strs _ -> "strs"
    | Batch.Bools _ -> "bools"
    | Batch.Boxed _ -> "boxed"
  in
  Alcotest.(check string) "all-int column" "ints" (class_of 0);
  Alcotest.(check string) "float column with nulls" "floats" (class_of 1);
  Alcotest.(check string) "string column with nulls" "strs" (class_of 2);
  Alcotest.(check string) "bool column with nulls" "bools" (class_of 3);
  Alcotest.(check string) "Int/Float mix stays boxed" "boxed" (class_of 4);
  (* the all-NULL column is typed from the declared schema *)
  Alcotest.(check string) "all-NULL column typed from schema" "strs"
    (class_of 5);
  Alcotest.(check bool) "its null bitmap is full" true
    (List.for_all (fun k -> Batch.is_null b k 5) [ 0; 1; 2; 3 ]);
  (* 2^53 + 1 survives: reading it back is the exact int, not a double *)
  Alcotest.(check bool) "big int exact" true (Batch.get b 2 0 = i big)

let test_size_bytes_parity () =
  let check_rel schema rows name =
    let b = Batch.of_rows schema rows in
    let row_sum = List.fold_left (fun acc r -> acc + Row.size_bytes r) 0 rows in
    Alcotest.(check int) name row_sum (Batch.size_bytes b)
  in
  check_rel wide_schema wide_rows "wide batch";
  check_rel wide_schema [] "empty batch";
  check_rel
    [ col "a" Ty.Str ]
    [ [| s "xyz" |]; [| Value.Null |]; [| s "" |] ]
    "strings and nulls"

let test_project_zero_copy () =
  let b = wide () in
  let sub_schema = [ List.nth wide_schema 2; List.nth wide_schema 0 ] in
  let p = Batch.project b [ 2; 0 ] sub_schema in
  Alcotest.(check int) "projected arity" 2 (Array.length p.Batch.cols);
  (* physical sharing, not a copy *)
  Alcotest.(check bool) "column 0 shared" true
    (p.Batch.cols.(0) == b.Batch.cols.(2));
  Alcotest.(check bool) "column 1 shared" true
    (p.Batch.cols.(1) == b.Batch.cols.(0))

let test_mask_filter () =
  let b = wide () in
  let m = Batch.mask_create 4 in
  Batch.mask_set m 0;
  Batch.mask_set m 3;
  Alcotest.(check int) "mask count" 2 (Batch.mask_count m 4);
  let kept = Batch.filter m b in
  Alcotest.(check bool) "filter keeps rows in order" true
    (Batch.to_rows kept = [ List.nth wide_rows 0; List.nth wide_rows 3 ])

(* ---- hash join vs the row join ---------------------------------------- *)

let join_case name a_schema a_rows b_schema b_rows keys =
  let ra = Relation.make a_schema a_rows and rb = Relation.make b_schema b_rows in
  let row = Relation.hash_join ra rb ~keys in
  let batch =
    Relation.of_batch
      (Batch.hash_join (Relation.to_batch ra) (Relation.to_batch rb) ~keys)
  in
  Alcotest.(check bool)
    (name ^ ": batch join identical to row join (rows and order)")
    true (Relation.equal batch row)

let test_hash_join_matches_row_join () =
  (* int keys with duplicates, a NULL key, and values above 2^53 on both
     sides: the int fast path must not fold them *)
  join_case "int keys"
    [ col "a" Ty.Int; col "ak" Ty.Int ]
    [
      [| i 0; i 7 |]; [| i 1; i 7 |]; [| i 2; Value.Null |]; [| i 3; i big |];
      [| i 4; i (big + 2) |]; [| i 5; i (-3) |];
    ]
    [ col "b" Ty.Int; col "bk" Ty.Int ]
    [
      [| i 10; i 7 |]; [| i 11; i big |]; [| i 12; Value.Null |];
      [| i 13; i 7 |]; [| i 14; i (-3) |];
    ]
    [ (1, 1) ];
  (* mixed Int/Float keys force the generic path; numeric equality must
     still hold (5 joins 5.0) and big ints must stay exact *)
  join_case "mixed numeric keys"
    [ col "a" Ty.Int; col "ak" Ty.Int ]
    [ [| i 0; i 5 |]; [| i 1; i big |]; [| i 2; i 9 |] ]
    [ col "b" Ty.Int; col "bk" Ty.Float ]
    [
      [| i 10; f 5.0 |]; [| i 11; f (float_of_int big) |]; [| i 12; f 9.5 |];
    ]
    [ (1, 1) ];
  (* multi-column keys, string + int *)
  join_case "two-column keys"
    [ col "a" Ty.Int; col "k1" Ty.Str; col "k2" Ty.Int ]
    [
      [| i 0; s "x"; i 1 |]; [| i 1; s "x"; i 2 |]; [| i 2; Value.Null; i 1 |];
    ]
    [ col "b" Ty.Int; col "j1" Ty.Str; col "j2" Ty.Int ]
    [
      [| i 10; s "x"; i 1 |]; [| i 11; s "x"; i 1 |]; [| i 12; s "y"; i 2 |];
    ]
    [ (1, 1); (2, 2) ];
  (* empty sides *)
  join_case "empty probe"
    [ col "a" Ty.Int ] []
    [ col "b" Ty.Int ]
    [ [| i 1 |] ]
    [ (0, 0) ];
  join_case "empty build"
    [ col "a" Ty.Int ]
    [ [| i 1 |] ]
    [ col "b" Ty.Int ] []
    [ (0, 0) ]

(* ---- differential fuzz: compiled tiers vs the interpreter -------------- *)

let fuzz_schema =
  [
    col "n" Ty.Int;
    col "x" Ty.Float;
    col "t" Ty.Str;
    col "b" Ty.Bool;
    col "m" Ty.Int;
  ]

(* values skewed towards the traps: NULLs, ints above 2^53, negative
   zero-adjacent floats, empty strings *)
let gen_value rng j =
  match (j, Random.State.int rng 8) with
  | _, 0 -> Value.Null
  | 0, _ -> i (Random.State.int rng 20 - 10)
  | 1, _ -> f (float_of_int (Random.State.int rng 40 - 20) /. 4.)
  | 2, _ ->
      s
        (List.nth
           [ "alpha"; "beta"; "al"; ""; "gamma%" ]
           (Random.State.int rng 5))
  | 3, _ -> Value.Bool (Random.State.int rng 2 = 0)
  | _, 1 | _, 2 -> i (big + Random.State.int rng 3)
  | _, 3 | _, 4 -> f (float_of_int big)
  | _, _ -> i (Random.State.int rng 10)

let gen_row rng = Array.init 5 (fun j -> gen_value rng j)

let col_name j = List.nth [ "n"; "x"; "t"; "b"; "m" ] j

(* random predicates spanning the whole compile_row coverage: literals,
   columns, comparisons, arithmetic, Kleene connectives, IS NULL, LIKE,
   IN, BETWEEN — including ill-typed ones, whose Type_error must match *)
let rec gen_expr rng depth =
  let open Ast in
  let leaf () =
    if Random.State.bool rng then col (col_name (Random.State.int rng 5))
    else Lit (gen_value rng (Random.State.int rng 5))
  in
  if depth = 0 then leaf ()
  else
    match Random.State.int rng 12 with
    | 0 | 1 ->
        let op =
          List.nth [ Eq; Neq; Lt; Le; Gt; Ge ] (Random.State.int rng 6)
        in
        Binop (op, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 2 -> Binop (And, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 3 -> Binop (Or, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 4 -> Unop (Not, gen_expr rng (depth - 1))
    | 5 ->
        Is_null
          { arg = gen_expr rng (depth - 1); negated = Random.State.bool rng }
    | 6 ->
        Like
          {
            arg = gen_expr rng (depth - 1);
            pattern =
              List.nth [ "al%"; "%a"; "_eta"; "%"; "" ] (Random.State.int rng 5);
            negated = Random.State.bool rng;
          }
    | 7 ->
        In_list
          {
            arg = gen_expr rng (depth - 1);
            items = [ leaf (); leaf () ];
            negated = Random.State.bool rng;
          }
    | 8 ->
        Between
          {
            arg = gen_expr rng (depth - 1);
            lo = leaf ();
            hi = leaf ();
            negated = Random.State.bool rng;
          }
    | 9 ->
        let op = List.nth [ Add; Sub; Mul ] (Random.State.int rng 3) in
        Binop (op, gen_expr rng (depth - 1), gen_expr rng (depth - 1))
    | 10 -> Unop (Neg, gen_expr rng (depth - 1))
    | _ -> leaf ()

let ctx = { Eval.subquery = (fun _ _ -> failwith "no subqueries"); agg = None }

let outcome f = try Ok (f ()) with e -> Error (Printexc.to_string e)

let test_fuzz_compile_row () =
  let rng = Random.State.make [| 4177 |] in
  let compiled = ref 0 in
  for _ = 1 to 2000 do
    let e = gen_expr rng 3 in
    match Compile.compile_row fuzz_schema e with
    | None -> ()
    | Some closure ->
        incr compiled;
        for _ = 1 to 5 do
          let row = gen_row rng in
          let want =
            outcome (fun () -> Eval.eval ctx (Eval.env fuzz_schema row) e)
          in
          let got = outcome (fun () -> closure row) in
          if want <> got then
            Alcotest.failf "compiled row closure diverges on %s: %s vs %s"
              (match want with Ok v -> Value.to_string v | Error m -> m)
              (match got with Ok v -> Value.to_string v | Error m -> m)
              "interpreter"
        done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fuzz exercised the compiler (%d compiled)" !compiled)
    true
    (!compiled > 300)

(* predicates shaped to the batch tier's coverage — column-vs-literal
   comparisons (both orientations), Kleene connectives, IS NULL, LIKE,
   BETWEEN — with literal classes usually, not always, matching the
   column, so both the typed kernels and the fallback-to-None edges run *)
let rec gen_batch_expr rng depth =
  let open Ast in
  let cmp () =
    let j = Random.State.int rng 5 in
    let c = col (col_name j) in
    let lit =
      (* same-class literal three times out of four *)
      Lit
        (gen_value rng
           (if Random.State.int rng 4 = 0 then Random.State.int rng 5 else j))
    in
    let op = List.nth [ Eq; Neq; Lt; Le; Gt; Ge ] (Random.State.int rng 6) in
    if Random.State.bool rng then Binop (op, c, lit) else Binop (op, lit, c)
  in
  if depth = 0 then cmp ()
  else
    match Random.State.int rng 8 with
    | 0 ->
        Binop
          (And, gen_batch_expr rng (depth - 1), gen_batch_expr rng (depth - 1))
    | 1 ->
        Binop
          (Or, gen_batch_expr rng (depth - 1), gen_batch_expr rng (depth - 1))
    | 2 -> Unop (Not, gen_batch_expr rng (depth - 1))
    | 3 ->
        Is_null
          {
            arg = col (col_name (Random.State.int rng 5));
            negated = Random.State.bool rng;
          }
    | 4 ->
        Like
          {
            arg = col "t";
            pattern =
              List.nth [ "al%"; "%a"; "_eta"; "%"; "" ] (Random.State.int rng 5);
            negated = Random.State.bool rng;
          }
    | 5 ->
        let j = Random.State.int rng 5 in
        Between
          {
            arg = col (col_name j);
            lo = Lit (gen_value rng j);
            hi = Lit (gen_value rng j);
            negated = Random.State.bool rng;
          }
    | _ -> cmp ()

let test_fuzz_compile_batch () =
  let rng = Random.State.make [| 90210 |] in
  let covered = ref 0 in
  for _ = 1 to 800 do
    let e = gen_batch_expr rng 2 in
    let nrows = 1 + Random.State.int rng 40 in
    let rows = List.init nrows (fun _ -> gen_row rng) in
    let b = Batch.of_rows fuzz_schema rows in
    match Compile.compile_batch b e with
    | None -> ()
    | Some kernel ->
        incr covered;
        (* evaluate in two uneven windows to exercise the lo/len path *)
        let split = nrows / 2 in
        let t1, n1 = kernel 0 split and t2, n2 = kernel split (nrows - split) in
        List.iteri
          (fun k row ->
            let t_bit, n_bit =
              if k < split then (Batch.mask_get t1 k, Batch.mask_get n1 k)
              else
                ( Batch.mask_get t2 (k - split),
                  Batch.mask_get n2 (k - split) )
            in
            let want = Eval.eval ctx (Eval.env fuzz_schema row) e in
            let want_t = want = Value.Bool true in
            let want_n = Value.is_null want in
            if t_bit <> want_t || n_bit <> want_n then
              Alcotest.failf
                "batch kernel diverges at row %d: kernel (t=%b,n=%b) vs \
                 interpreter %s"
                k t_bit n_bit (Value.to_string want))
          rows
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fuzz exercised the batch compiler (%d kernels)" !covered)
    true
    (!covered > 100)

(* ---- chunk-size invariance of the full pipeline ------------------------ *)

(* same three-database federation as test_observability: a global join
   whose plan ships two MOVEs *)
let sales_schema = [ col "sid" Ty.Int; col "part_id" Ty.Int; col "qty" Ty.Int ]

let parts_schema =
  [ col "pid" Ty.Int; col ~width:16 "pname" Ty.Str; col "price" Ty.Float ]

let stock_schema = [ col "spid" Ty.Int; col ~width:16 "wh" Ty.Str ]

let make_fed3 () =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let session = M.create ~world ~directory () in
  let sales = List.init 10 (fun k -> [| i k; i (k mod 5); i (k + 1) |]) in
  let parts =
    List.init 200 (fun k -> [| i k; s (Printf.sprintf "part%d" k); f 9.5 |])
  in
  let stock =
    List.init 150 (fun k -> [| i (k mod 50); s (Printf.sprintf "wh%d" k) |])
  in
  List.iter
    (fun (name, site, tname, schema, rows) ->
      Netsim.World.add_site world (Netsim.Site.make site);
      let db = Ldbms.Database.create name in
      Ldbms.Database.load db ~name:tname schema rows;
      Narada.Directory.register directory
        (Narada.Service.make ~site ~caps:Ldbms.Capabilities.ingres_like db);
      (match M.incorporate_auto session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m);
      match M.import_all session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m)
    [
      ("market", "msite", "sales", sales_schema, sales);
      ("store", "ssite", "parts", parts_schema, parts);
      ("depot", "dsite", "stock", stock_schema, stock);
    ];
  (session, world)

let join3 =
  "USE market store depot SELECT s.sid, p.pname, st.wh FROM market.sales s, \
   store.parts p, depot.stock st WHERE s.part_id = p.pid AND s.part_id = \
   st.spid"

type run_record = {
  rr_result : string;
  rr_messages : int;
  rr_bytes : int;
  rr_ms : float;
  rr_moved : (int * int) list;  (* Moved (rows, bytes), in order *)
  rr_chunks : Trace.kind list;
}

let run_at_chunk_size chunk_rows =
  Narada.Lam.set_move_streaming ~chunk_rows ~window:4 ();
  let session, world = make_fed3 () in
  let moved = ref [] and chunks = ref [] in
  M.set_typed_trace session
    (Some
       (fun e ->
         match e.Trace.kind with
         | Trace.Moved { rows; bytes; _ } -> moved := (rows, bytes) :: !moved
         | Trace.Chunk _ as k -> chunks := k :: !chunks
         | _ -> ()));
  let result =
    match M.exec session join3 with
    | Ok r -> M.result_to_string r
    | Error m -> failwith m
  in
  let st = Netsim.World.stats world in
  {
    rr_result = result;
    rr_messages = st.Netsim.World.messages;
    rr_bytes = st.Netsim.World.bytes_moved;
    rr_ms = Netsim.World.now_ms world;
    rr_moved = List.rev !moved;
    rr_chunks = List.rev !chunks;
  }

let test_chunk_size_invariance () =
  Fun.protect ~finally:(fun () -> Narada.Lam.set_move_streaming ~chunk_rows:512 ~window:4 ())
  @@ fun () ->
  let base = run_at_chunk_size 0 (* monolithic legacy path *) in
  Alcotest.(check bool) "baseline shipped something" true (base.rr_bytes > 0);
  Alcotest.(check int) "monolithic run has no chunk events" 0
    (List.length base.rr_chunks);
  List.iter
    (fun chunk_rows ->
      let r = run_at_chunk_size chunk_rows in
      let tag fmt = Printf.sprintf fmt chunk_rows in
      Alcotest.(check string) (tag "results equal at chunk size %d")
        base.rr_result r.rr_result;
      Alcotest.(check int) (tag "messages equal at chunk size %d")
        base.rr_messages r.rr_messages;
      Alcotest.(check int) (tag "bytes equal at chunk size %d") base.rr_bytes
        r.rr_bytes;
      Alcotest.(check (float 0.0)) (tag "virtual time equal at chunk size %d")
        base.rr_ms r.rr_ms;
      Alcotest.(check bool) (tag "Moved events equal at chunk size %d") true
        (base.rr_moved = r.rr_moved);
      (* every streamed MOVE's installments: seq 1..total, rows summing to
         the Moved row count (chunk bytes also carry protocol overhead,
         so they are not compared to the payload figure) *)
      let by_move = Hashtbl.create 4 in
      List.iter
        (function
          | Trace.Chunk { mname; seq; total; rows; window; _ } ->
              Alcotest.(check int) (tag "window recorded at chunk size %d") 4
                window;
              let seqs, rowsum =
                Option.value ~default:([], 0) (Hashtbl.find_opt by_move mname)
              in
              Alcotest.(check bool) (tag "seq within total at %d") true
                (seq >= 1 && seq <= total);
              Hashtbl.replace by_move mname (seq :: seqs, rowsum + rows)
          | _ -> ())
        r.rr_chunks;
      Alcotest.(check bool) (tag "chunked runs emit chunk events at %d") true
        (Hashtbl.length by_move > 0);
      Hashtbl.iter
        (fun _ (seqs, _) ->
          let sorted = List.sort compare seqs in
          Alcotest.(check bool) (tag "contiguous stream at chunk size %d")
            true
            (sorted = List.init (List.length sorted) (fun k -> k + 1)))
        by_move;
      (* at one row per chunk, each shipped relation streams row-count
         installments: the per-move row sums match the Moved totals *)
      if chunk_rows = 1 then
        List.iter
          (fun (rows, _) ->
            Alcotest.(check bool) "a move streamed its rows one per chunk"
              true
              (Hashtbl.fold
                 (fun _ (_, rowsum) acc -> acc || rowsum = rows)
                 by_move false))
          r.rr_moved)
    [ 1; 7; 4096 ]

(* the metrics JSON document is byte-identical across chunk sizes: Chunk
   events have no metric dimension and Moved carries the totals *)
let test_chunk_size_invariant_metrics () =
  Fun.protect ~finally:(fun () -> Narada.Lam.set_move_streaming ~chunk_rows:512 ~window:4 ())
  @@ fun () ->
  let metrics_at chunk_rows =
    Narada.Lam.set_move_streaming ~chunk_rows ~window:4 ();
    let session, _world = make_fed3 () in
    (match M.exec session join3 with
    | Ok _ -> ()
    | Error m -> failwith m);
    M.metrics_json session
  in
  let base = metrics_at 0 in
  List.iter
    (fun chunk_rows ->
      Alcotest.(check string)
        (Printf.sprintf "metrics JSON identical at chunk size %d" chunk_rows)
        base (metrics_at chunk_rows))
    [ 1; 7; 4096 ]

let () =
  Alcotest.run "batch"
    [
      ( "layout",
        [
          Alcotest.test_case "of_rows/to_rows round-trip" `Quick test_roundtrip;
          Alcotest.test_case "column classes" `Quick test_column_classes;
          Alcotest.test_case "size_bytes parity" `Quick test_size_bytes_parity;
          Alcotest.test_case "project shares columns" `Quick
            test_project_zero_copy;
          Alcotest.test_case "mask filter" `Quick test_mask_filter;
        ] );
      ( "join",
        [
          Alcotest.test_case "batch join == row join" `Quick
            test_hash_join_matches_row_join;
        ] );
      ( "differential",
        [
          Alcotest.test_case "compiled row closures vs interpreter" `Quick
            test_fuzz_compile_row;
          Alcotest.test_case "batch kernels vs interpreter" `Quick
            test_fuzz_compile_batch;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "chunk-size invariance" `Quick
            test_chunk_size_invariance;
          Alcotest.test_case "metrics JSON invariant" `Quick
            test_chunk_size_invariant_metrics;
        ] );
    ]
