(* F1/F2 integration: the full Figure-1 pipeline and the Figure-2 schema
   architecture (INCORPORATE / IMPORT), plus cross-database join
   correctness against a locally computed reference. *)
open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession

let exec fx sql =
  match M.exec fx.F.session sql with
  | Ok r -> r
  | Error m -> Alcotest.fail ("MSQL error: " ^ m)

(* ---- F2: dictionary round trips -------------------------------------------- *)

let test_incorporate_statement () =
  let fx = F.make () in
  let r =
    exec fx
      "INCORPORATE SERVICE avis SITE site4 CONNECTMODE CONNECT COMMITMODE \
       NOCOMMIT CREATE NOCOMMIT INSERT NOCOMMIT DROP NOCOMMIT"
  in
  (match r with
  | M.Info _ -> ()
  | _ -> Alcotest.fail "expected info");
  match Msql.Ad.find (M.ad fx.F.session) "avis" with
  | Some e ->
      Alcotest.(check bool) "2pc" true (Msql.Ad.supports_2pc e);
      Alcotest.(check (option string)) "site" (Some "site4") e.Msql.Ad.site
  | None -> Alcotest.fail "no AD entry"

let test_incorporate_lying_about_2pc_rejected () =
  (* united really is 2PC; redeclare it truthfully as autocommit is fine,
     but an autocommit engine cannot be declared 2PC *)
  let caps = [ ("united", Ldbms.Capabilities.sybase_like) ] in
  let fx = F.make ~caps () in
  match
    M.exec fx.F.session
      "INCORPORATE SERVICE united CONNECTMODE CONNECT COMMITMODE NOCOMMIT"
  with
  | Error m -> Alcotest.(check bool) "explains" true
      (Astring_contains.contains m "autocommit")
  | Ok _ -> Alcotest.fail "expected rejection"

let test_incorporate_downgrade_allowed () =
  let fx = F.make () in
  (* declaring a 2PC engine as autocommit-only is allowed (capability
     under-use); subsequent vital queries must then be refused *)
  (match
     M.exec fx.F.session
       "INCORPORATE SERVICE continental CONNECTMODE CONNECT COMMITMODE COMMIT"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match
     M.exec fx.F.session
       "INCORPORATE SERVICE united CONNECTMODE CONNECT COMMITMODE COMMIT"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  match
    M.exec fx.F.session
      {|USE continental VITAL united VITAL
        UPDATE flight% SET rate% = rate% * 1.1|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vital update on declared-autocommit dbs must be refused"

let test_import_statement () =
  let fx = F.make () in
  let g = M.gdd fx.F.session in
  Msql.Gdd.forget_database g "avis";
  Alcotest.(check bool) "gone" false (Msql.Gdd.has_database g "avis");
  (match exec fx "IMPORT DATABASE avis FROM SERVICE avis" with
  | M.Info _ -> ()
  | _ -> Alcotest.fail "expected info");
  Alcotest.(check bool) "back" true (Msql.Gdd.has_database g "avis");
  match Msql.Gdd.find_table g ~db:"avis" "cars" with
  | Some schema -> Alcotest.(check int) "columns" 7 (Schema.arity schema)
  | None -> Alcotest.fail "cars missing"

let test_import_partial_columns () =
  let fx = F.make () in
  let g = M.gdd fx.F.session in
  Msql.Gdd.forget_database g "avis";
  (match exec fx "IMPORT DATABASE avis FROM SERVICE avis TABLE cars COLUMN code rate" with
  | M.Info _ -> ()
  | _ -> Alcotest.fail "expected info");
  (match Msql.Gdd.find_table g ~db:"avis" "cars" with
  | Some schema ->
      Alcotest.(check (list string)) "partial" [ "code"; "rate" ] (Schema.names schema)
  | None -> Alcotest.fail "cars missing");
  (* importing again replaces the definition *)
  (match exec fx "IMPORT DATABASE avis FROM SERVICE avis" with
  | M.Info _ -> ()
  | _ -> Alcotest.fail "expected info");
  match Msql.Gdd.find_table g ~db:"avis" "cars" with
  | Some schema -> Alcotest.(check int) "full again" 7 (Schema.arity schema)
  | None -> Alcotest.fail "cars missing"

let test_import_errors () =
  let fx = F.make () in
  (match M.exec fx.F.session "IMPORT DATABASE avis FROM SERVICE hertz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown service");
  (match M.exec fx.F.session "IMPORT DATABASE hertz FROM SERVICE avis" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "db/service mismatch");
  match M.exec fx.F.session "IMPORT DATABASE avis FROM SERVICE avis TABLE nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown table"

let test_query_without_import_fails () =
  let fx = F.make () in
  Msql.Gdd.forget_database (M.gdd fx.F.session) "avis";
  match M.exec fx.F.session "USE avis SELECT code FROM cars" with
  | Error m -> Alcotest.(check bool) "mentions import" true
      (Astring_contains.contains m "IMPORT")
  | Ok _ -> Alcotest.fail "expected error"

(* ---- F1: end-to-end pipeline -------------------------------------------------- *)

let test_script_pipeline () =
  let fx = F.make () in
  match
    M.exec_script fx.F.session
      {|
IMPORT DATABASE avis FROM SERVICE avis;
USE avis SELECT code FROM cars WHERE carst = 'available';
USE avis UPDATE cars SET carst = 'gone' WHERE code = 1;
USE avis SELECT code FROM cars WHERE carst = 'available';
|}
  with
  | Error m -> Alcotest.fail m
  | Ok results -> (
      Alcotest.(check int) "four results" 4 (List.length results);
      match results with
      | [ _; M.Multitable before; M.Update_report _; M.Multitable after ] ->
          let count mt =
            Relation.cardinality (Option.get (Msql.Multitable.find mt "avis"))
          in
          Alcotest.(check int) "before" 3 (count before);
          Alcotest.(check int) "after" 2 (count after)
      | _ -> Alcotest.fail "unexpected result shapes")

(* ---- cross-database join vs local reference ------------------------------------- *)

let test_global_join_matches_reference () =
  let fx = F.make () in
  let joined =
    match
      exec fx
        {|USE avis national
          SELECT c.code, v.vcode
          FROM avis.cars c, national.vehicle v
          WHERE c.cartype = v.vty|}
    with
    | M.Multitable mt -> Option.get (Msql.Multitable.flatten mt)
    | r -> Alcotest.fail ("expected multitable, got " ^ M.result_to_string r)
  in
  (* reference: compute the join locally over direct table scans *)
  let cars = F.scan fx ~db:"avis" ~table:"cars" in
  let vehicles = F.scan fx ~db:"national" ~table:"vehicle" in
  let expected =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun v -> if Value.equal c.(1) v.(1) then Some [| c.(0); v.(0) |] else None)
          (Relation.rows vehicles))
      (Relation.rows cars)
  in
  Alcotest.(check int) "cardinality" (List.length expected)
    (Relation.cardinality joined);
  let sort rows = List.sort Row.compare rows in
  List.iter2
    (fun a b -> Alcotest.(check bool) "row" true (Row.equal a b))
    (sort expected)
    (sort (Relation.rows joined))

let test_global_join_with_aggregates () =
  let fx = F.make () in
  match
    exec fx
      {|USE avis national
        SELECT v.vty, COUNT(*)
        FROM avis.cars c, national.vehicle v
        WHERE c.cartype = v.vty
        GROUP BY v.vty
        ORDER BY v.vty|}
  with
  | M.Multitable mt -> (
      let rel = Option.get (Msql.Multitable.flatten mt) in
      match Relation.rows rel with
      | [ [| Value.Str "compact"; Value.Int 1 |]; [| Value.Str "sedan"; Value.Int 2 |] ]
        ->
          ()
      | rows ->
          Alcotest.failf "unexpected rows: %s"
            (String.concat ";" (List.map (Format.asprintf "%a" Row.pp) rows)))
  | r -> Alcotest.fail ("expected multitable, got " ^ M.result_to_string r)

let test_global_join_cleans_temporaries () =
  let fx = F.make () in
  ignore
    (exec fx
       {|USE avis national
         SELECT c.code, v.vcode FROM avis.cars c, national.vehicle v
         WHERE c.cartype = v.vty|});
  (* temporary tables dropped at the coordinator *)
  let db = F.database fx "avis" in
  List.iter
    (fun t ->
      Alcotest.(check bool) "no msql_tmp left" false
        (Astring_contains.contains t "msql_tmp"))
    (Ldbms.Database.table_names db);
  let db2 = F.database fx "national" in
  List.iter
    (fun t ->
      Alcotest.(check bool) "no msql_tmp left" false
        (Astring_contains.contains t "msql_tmp"))
    (Ldbms.Database.table_names db2)

let test_message_accounting () =
  let fx = F.make () in
  Netsim.World.reset_stats fx.F.world;
  ignore (exec fx "USE avis national SELECT %code FROM %");
  let st = Netsim.World.stats fx.F.world in
  Alcotest.(check bool) "messages flowed" true (st.Netsim.World.messages > 0);
  Alcotest.(check bool) "bytes moved" true (st.Netsim.World.bytes_moved > 0)

let test_create_table_in_multiple_databases () =
  let fx = F.make () in
  (match exec fx "USE avis national CREATE TABLE audit (id INT, note CHAR(20))" with
  | M.Update_report { outcome = M.Success; _ } -> ()
  | r -> Alcotest.fail (M.result_to_string r));
  Alcotest.(check bool) "avis has audit" true
    (Ldbms.Database.find_table_opt (F.database fx "avis") "audit" <> None);
  Alcotest.(check bool) "national has audit" true
    (Ldbms.Database.find_table_opt (F.database fx "national") "audit" <> None)

let test_insert_through_msql () =
  let fx = F.make () in
  (match
     exec fx
       "USE avis INSERT INTO cars VALUES (9, 'limo', 120.0, 'available', NULL, NULL, NULL)"
   with
  | M.Update_report { outcome = M.Success; _ } -> ()
  | r -> Alcotest.fail (M.result_to_string r));
  let cars = F.scan fx ~db:"avis" ~table:"cars" in
  Alcotest.(check int) "five cars" 5 (Relation.cardinality cars)

let test_delete_through_msql () =
  let fx = F.make () in
  (match exec fx "USE avis DELETE FROM cars WHERE carst = 'rented'" with
  | M.Update_report { outcome = M.Success; details; _ } ->
      Alcotest.(check (option int)) "one deleted" (Some 1)
        (List.hd details).M.raffected
  | r -> Alcotest.fail (M.result_to_string r));
  let cars = F.scan fx ~db:"avis" ~table:"cars" in
  Alcotest.(check int) "three left" 3 (Relation.cardinality cars)

let test_use_current_scope () =
  let fx = F.make () in
  let s = fx.F.session in
  (match M.exec s "USE avis SELECT code FROM cars" with
  | Ok (M.Multitable _) -> ()
  | _ -> Alcotest.fail "seed scope");
  Alcotest.(check int) "one db" 1 (List.length (M.current_scope s));
  (* extend with national: both partial results now *)
  (match M.exec s "USE CURRENT national SELECT %code FROM %" with
  | Ok (M.Multitable mt) ->
      Alcotest.(check (list string)) "both" [ "avis"; "national" ]
        (Msql.Multitable.databases mt)
  | Ok _ | Error _ -> Alcotest.fail "use current extend");
  Alcotest.(check int) "two dbs" 2 (List.length (M.current_scope s));
  (* a plain USE replaces the scope *)
  (match M.exec s "USE national SELECT vcode FROM vehicle" with
  | Ok (M.Multitable mt) ->
      Alcotest.(check (list string)) "replaced" [ "national" ]
        (Msql.Multitable.databases mt)
  | Ok _ | Error _ -> Alcotest.fail "plain use");
  Alcotest.(check int) "one again" 1 (List.length (M.current_scope s));
  (* USE CURRENT with an empty session scope on a fresh session errors *)
  let fx2 = F.make () in
  match M.exec fx2.F.session "USE CURRENT SELECT code FROM cars" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty current scope must error"

(* a statement that fails before a plan exists must not disturb the
   session's current scope: USE names an unimported database, planning
   fails, and the previous scope still answers USE CURRENT *)
let test_failed_plan_leaves_scope_intact () =
  let fx = F.make () in
  let s = fx.F.session in
  (match M.exec s "USE avis SELECT code FROM cars" with
  | Ok (M.Multitable _) -> ()
  | _ -> Alcotest.fail "seed scope");
  let before = List.map (fun u -> u.Msql.Ast.db) (M.current_scope s) in
  Alcotest.(check (list string)) "seeded" [ "avis" ] before;
  (match M.exec s "USE ghostdb SELECT x FROM ghostdb.t" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unimported database must fail to plan");
  Alcotest.(check (list string)) "scope untouched" [ "avis" ]
    (List.map (fun u -> u.Msql.Ast.db) (M.current_scope s));
  (* and USE CURRENT still resolves against the surviving scope *)
  match M.exec s "USE CURRENT SELECT code FROM cars" with
  | Ok (M.Multitable _) -> ()
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let test_data_transfer_insert_select () =
  let fx = F.make () in
  (* copy national's available vehicles into avis's cars fleet (§2: data
     transfer between databases) *)
  (match
     M.exec fx.F.session
       {|USE avis national
         INSERT INTO avis.cars (code, cartype, carst)
         SELECT v.vcode, v.vty, v.vstat
         FROM national.vehicle v
         WHERE v.vstat = 'available'|}
   with
  | Ok (M.Update_report { outcome = M.Success; details; _ }) ->
      Alcotest.(check (option int)) "two transferred" (Some 2)
        (List.find (fun r -> r.M.rdb = "avis") details).M.raffected
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m);
  let cars = F.scan fx ~db:"avis" ~table:"cars" in
  Alcotest.(check int) "fleet grew" 6 (Relation.cardinality cars);
  (* transferred rows carry national's codes; unnamed columns are NULL *)
  Alcotest.(check bool) "vcode 11 present" true
    (List.exists
       (fun row -> Sqlcore.Value.equal row.(0) (Sqlcore.Value.Int 11))
       (Relation.rows cars));
  (* the transfer staging table is cleaned up *)
  List.iter
    (fun db ->
      List.iter
        (fun t ->
          Alcotest.(check bool) "no staging left" false
            (Astring_contains.contains t "msql_xfer"))
        (Ldbms.Database.table_names (F.database fx db)))
    [ "avis"; "national" ]

let test_data_transfer_with_join_source () =
  let fx = F.make () in
  (* source is itself a cross-database join *)
  match
    M.exec fx.F.session
      {|USE avis national continental
        INSERT INTO continental.f838 (seatnu, seatstatus)
        SELECT c.code, v.vstat
        FROM avis.cars c, national.vehicle v
        WHERE c.cartype = v.vty|}
  with
  | Ok (M.Update_report { outcome = M.Success; details; _ }) ->
      let n =
        (List.find (fun r -> r.M.rdb = "continental") details).M.raffected
      in
      Alcotest.(check (option int)) "joined rows inserted" (Some 3) n
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let test_data_transfer_local_degenerate () =
  let fx = F.make () in
  (* source and target in the same database: a local INSERT ... SELECT *)
  match
    M.exec fx.F.session
      {|USE avis
        INSERT INTO avis.cars (code, cartype)
        SELECT c.code + 100, c.cartype FROM avis.cars c|}
  with
  | Ok (M.Update_report { outcome = M.Success; _ }) ->
      let cars = F.scan fx ~db:"avis" ~table:"cars" in
      Alcotest.(check int) "doubled" 8 (Relation.cardinality cars)
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let test_explain_returns_plan () =
  let fx = F.make () in
  match
    M.exec fx.F.session
      "EXPLAIN USE continental VITAL united VITAL UPDATE flight% SET rate% = rate% * 1.1"
  with
  | Ok (M.Info text) ->
      Alcotest.(check bool) "is DOL" true
        (Astring_contains.contains text "DOLBEGIN");
      Alcotest.(check bool) "has tasks" true
        (Astring_contains.contains text "NOCOMMIT");
      (* nothing was executed *)
      let flights = F.scan fx ~db:"continental" ~table:"flights" in
      List.iter
        (fun row ->
          Alcotest.(check bool) "rates untouched" false
            (Sqlcore.Value.equal row.(6) (Sqlcore.Value.Float 110.0)))
        (Relation.rows flights)
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let test_virtual_databases () =
  let fx = F.make () in
  let s = fx.F.session in
  (match M.exec s "CREATE MULTIDATABASE rentals AS avis national" with
  | Ok (M.Info _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "create multidatabase");
  (* USE of the virtual database expands to its members *)
  (match M.exec s "USE rentals SELECT %code FROM %" with
  | Ok (M.Multitable mt) ->
      Alcotest.(check (list string)) "expanded" [ "avis"; "national" ]
        (Msql.Multitable.databases mt)
  | Ok _ | Error _ -> Alcotest.fail "use virtual db");
  (* VITAL on the virtual database distributes to the members *)
  (match
     M.exec s
       {|USE rentals VITAL
         LET cartab.cstat BE cars.carst vehicle.vstat
         UPDATE cartab SET cstat = cstat|}
   with
  | Ok (M.Update_report { details; _ }) ->
      Alcotest.(check int) "two members" 2 (List.length details);
      List.iter
        (fun r -> Alcotest.(check bool) "vital" true (r.M.rvital = Msql.Ast.Vital))
        details
  | Ok _ | Error _ -> Alcotest.fail "vital distribution");
  (* nested virtual databases expand transitively *)
  (match M.exec s "CREATE MULTIDATABASE everything AS rentals continental" with
  | Ok (M.Info _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "nested create");
  (match M.exec s "USE everything SELECT % FROM %" with
  | Ok (M.Multitable mt) ->
      Alcotest.(check bool) "three dbs" true
        (List.length (Msql.Multitable.databases mt) = 3)
  | Ok _ -> Alcotest.fail "nested use: wrong result"
  | Error m -> Alcotest.fail ("nested use: " ^ m));
  (* lifecycle errors *)
  (match M.exec s "CREATE MULTIDATABASE rentals AS avis" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate must fail");
  (match M.exec s "CREATE MULTIDATABASE avis AS national" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shadowing an imported db must fail");
  (match M.exec s "CREATE MULTIDATABASE bad AS nosuchdb" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown member must fail");
  (match M.exec s "DROP MULTIDATABASE rentals" with
  | Ok (M.Info _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "drop");
  match M.exec s "DROP MULTIDATABASE rentals" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double drop must fail"

let () =
  Alcotest.run "integration"
    [
      ( "F2 dictionaries",
        [
          Alcotest.test_case "incorporate" `Quick test_incorporate_statement;
          Alcotest.test_case "lying incorporate" `Quick test_incorporate_lying_about_2pc_rejected;
          Alcotest.test_case "downgrade" `Quick test_incorporate_downgrade_allowed;
          Alcotest.test_case "import" `Quick test_import_statement;
          Alcotest.test_case "partial import" `Quick test_import_partial_columns;
          Alcotest.test_case "import errors" `Quick test_import_errors;
          Alcotest.test_case "query needs import" `Quick test_query_without_import_fails;
        ] );
      ( "F1 pipeline",
        [
          Alcotest.test_case "script" `Quick test_script_pipeline;
          Alcotest.test_case "message accounting" `Quick test_message_accounting;
          Alcotest.test_case "create in many dbs" `Quick test_create_table_in_multiple_databases;
          Alcotest.test_case "insert" `Quick test_insert_through_msql;
          Alcotest.test_case "delete" `Quick test_delete_through_msql;
          Alcotest.test_case "use current" `Quick test_use_current_scope;
          Alcotest.test_case "failed plan keeps scope" `Quick
            test_failed_plan_leaves_scope_intact;
          Alcotest.test_case "virtual databases" `Quick test_virtual_databases;
          Alcotest.test_case "explain" `Quick test_explain_returns_plan;
          Alcotest.test_case "data transfer" `Quick test_data_transfer_insert_select;
          Alcotest.test_case "transfer join source" `Quick test_data_transfer_with_join_source;
          Alcotest.test_case "transfer local" `Quick test_data_transfer_local_degenerate;
        ] );
      ( "global join",
        [
          Alcotest.test_case "matches reference" `Quick test_global_join_matches_reference;
          Alcotest.test_case "aggregates" `Quick test_global_join_with_aggregates;
          Alcotest.test_case "cleans temporaries" `Quick test_global_join_cleans_temporaries;
        ] );
    ]
